#include "src/exec/execution_context.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"

namespace trafficbench::exec {

// ---- OpKind -----------------------------------------------------------------

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kMatMul: return "MatMul";
    case OpKind::kMatMulBackward: return "MatMulBwd";
    case OpKind::kSpMM: return "SpMM";
    case OpKind::kSpMMBackward: return "SpMMBwd";
    case OpKind::kConv2d: return "Conv2d";
    case OpKind::kConv2dBackward: return "Conv2dBwd";
    case OpKind::kUnary: return "Unary";
    case OpKind::kUnaryBackward: return "UnaryBwd";
    case OpKind::kBinary: return "Binary";
    case OpKind::kBinaryBackward: return "BinaryBwd";
    case OpKind::kSoftmax: return "Softmax";
    case OpKind::kSoftmaxBackward: return "SoftmaxBwd";
    case OpKind::kReduce: return "Reduce";
    case OpKind::kReduceBackward: return "ReduceBwd";
    case OpKind::kDataMovement: return "DataMove";
    case OpKind::kDropoutMask: return "DropoutMask";
    case OpKind::kAdamStep: return "AdamStep";
    case OpKind::kFusedEpilogue: return "FusedEpilogue";
    case OpKind::kNumKinds: break;
  }
  return "Unknown";
}

// ---- OpProfiler -------------------------------------------------------------

void OpProfiler::Record(OpKind kind, double seconds, double flops) {
  std::lock_guard<std::mutex> lock(mu_);
  OpStats& s = stats_[static_cast<size_t>(kind)];
  ++s.calls;
  s.seconds += seconds;
  s.flops += flops;
}

void OpProfiler::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.fill(OpStats{});
}

OpStats OpProfiler::stats(OpKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_[static_cast<size_t>(kind)];
}

double OpProfiler::TotalSeconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  double total = 0.0;
  for (const OpStats& s : stats_) total += s.seconds;
  return total;
}

std::vector<std::pair<OpKind, OpStats>> OpProfiler::SortedNonEmpty() const {
  std::vector<std::pair<OpKind, OpStats>> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < stats_.size(); ++i) {
      if (stats_[i].calls > 0) {
        entries.emplace_back(static_cast<OpKind>(i), stats_[i]);
      }
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              return a.second.seconds > b.second.seconds;
            });
  return entries;
}

Table OpProfiler::ToTable() const {
  const std::vector<std::pair<OpKind, OpStats>> entries = SortedNonEmpty();
  double total = 0.0;
  for (const auto& [kind, s] : entries) total += s.seconds;
  Table table({"Op", "Calls", "Time (s)", "Share %", "GFLOP", "GFLOP/s"});
  for (const auto& [kind, s] : entries) {
    const double share = total > 0.0 ? 100.0 * s.seconds / total : 0.0;
    const double gflop = s.flops * 1e-9;
    const double rate = s.seconds > 0.0 ? gflop / s.seconds : 0.0;
    table.AddRow({OpKindName(kind), std::to_string(s.calls),
                  Table::Num(s.seconds, 4), Table::Num(share, 1),
                  Table::Num(gflop, 3), Table::Num(rate, 3)});
  }
  return table;
}

std::string OpProfiler::ToCsv() const { return ToTable().ToCsv(); }

std::string OpProfiler::TopKindsSummary(int k) const {
  const std::vector<std::pair<OpKind, OpStats>> entries = SortedNonEmpty();
  double total = 0.0;
  for (const auto& [kind, s] : entries) total += s.seconds;
  if (entries.empty() || total <= 0.0) return "";
  std::string out;
  const int limit = std::min<int>(k, static_cast<int>(entries.size()));
  for (int i = 0; i < limit; ++i) {
    if (i > 0) out += " | ";
    out += OpKindName(entries[i].first);
    out += " ";
    out += Table::Num(100.0 * entries[i].second.seconds / total, 0);
    out += "%";
  }
  return out;
}

// ---- ThreadPool -------------------------------------------------------------

ThreadPool::ThreadPool(int threads) : threads_(std::max(1, threads)) {
  workers_.reserve(threads_ - 1);
  for (int i = 0; i < threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Drain(RunState* state) {
  for (;;) {
    const int64_t i = state->next.fetch_add(1);
    if (i >= state->total) break;
    try {
      (*state->fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!state->error) state->error = std::current_exception();
    }
    if (state->pending.fetch_sub(1) == 1) {
      std::lock_guard<std::mutex> lock(mu_);
      cv_done_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  std::shared_ptr<RunState> last;
  for (;;) {
    std::shared_ptr<RunState> state;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] {
        return shutdown_ || (run_ != nullptr && run_ != last);
      });
      if (shutdown_) return;
      state = run_;
    }
    Drain(state.get());
    last = std::move(state);
  }
}

void ThreadPool::Run(int64_t count, const std::function<void(int64_t)>& fn) {
  if (count <= 0) return;
  auto state = std::make_shared<RunState>();
  state->fn = &fn;
  state->total = count;
  state->pending.store(count);
  {
    std::lock_guard<std::mutex> lock(mu_);
    run_ = state;
  }
  cv_start_.notify_all();
  Drain(state.get());
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&] { return state->pending.load() <= 0; });
  if (state->error) {
    std::exception_ptr error = state->error;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

// ---- ExecutionContext -------------------------------------------------------

namespace {

thread_local ExecutionContext* g_current_context = nullptr;

}  // namespace

ExecutionContext::ExecutionContext(const ExecOptions& options)
    : options_(options), pool_buffers_(std::make_shared<BufferPool>()) {
  TB_CHECK_GE(options_.threads, 1) << "execution context needs >= 1 thread";
  if (options_.threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.threads);
  }
}

ExecutionContext::~ExecutionContext() = default;

void ExecutionContext::ParallelFor(
    int64_t total, int64_t grain,
    const std::function<void(int64_t, int64_t)>& fn) {
  if (total <= 0) return;
  grain = std::max<int64_t>(1, grain);
  const int64_t chunks = (total + grain - 1) / grain;
  if (pool_ == nullptr || chunks <= 1) {
    // Chunks are executed in index order; since every chunk's arithmetic is
    // self-contained this equals the parallel result bit-for-bit.
    for (int64_t c = 0; c < chunks; ++c) {
      fn(c * grain, std::min(total, (c + 1) * grain));
    }
    return;
  }
  pool_->Run(chunks, [&](int64_t c) {
    fn(c * grain, std::min(total, (c + 1) * grain));
  });
}

Table ExecutionContext::ProfileTable() const {
  Table table = profiler_.ToTable();
  const BufferPool::Stats s = pool_buffers_->stats();
  const int64_t acquires = s.hits + s.misses;
  if (acquires > 0) {
    // Pool traffic is not an op, so the Time/Share/GFLOP columns carry the
    // hit rate, acquire count and MiB served from cache instead.
    table.AddRow({"BufferPool", std::to_string(acquires),
                  "hit " + Table::Num(100.0 * s.HitRate(), 1) + "%",
                  Table::Num(static_cast<double>(s.served_bytes) /
                                 (1024.0 * 1024.0),
                             1) +
                      " MiB",
                  "", ""});
  }
  return table;
}

std::string ExecutionContext::PoolSummary() const {
  return pool_buffers_->Summary();
}

ExecutionContext& ExecutionContext::Current() {
  if (g_current_context != nullptr) return *g_current_context;
  static ExecutionContext* serial = new ExecutionContext(ExecOptions{});
  return *serial;
}

ExecutionContext::Bind::Bind(ExecutionContext* context)
    : previous_(g_current_context), active_(context != nullptr) {
  if (active_) g_current_context = context;
}

ExecutionContext::Bind::~Bind() {
  if (active_) g_current_context = previous_;
}

// ---- ScopedOpTimer ----------------------------------------------------------

ScopedOpTimer::ScopedOpTimer(OpKind kind, double flops)
    : context_(&ExecutionContext::Current()),
      kind_(kind),
      flops_(flops),
      enabled_(context_->profiling_enabled()) {}

ScopedOpTimer::~ScopedOpTimer() {
  if (enabled_) {
    context_->profiler().Record(kind_, watch_.ElapsedSeconds(), flops_);
  }
}

}  // namespace trafficbench::exec
