#include "src/exec/shard.h"

#include <algorithm>
#include <exception>
#include <thread>
#include <utility>

#include "src/util/check.h"

namespace trafficbench::exec {

ShardGroup::ShardGroup(const ShardOptions& options) : options_(options) {
  TB_CHECK_GE(options_.shards, 1);
  TB_CHECK_GE(options_.threads_per_shard, 1);
  contexts_.reserve(options_.shards);
  for (int s = 0; s < options_.shards; ++s) {
    ExecOptions exec;
    exec.threads = options_.threads_per_shard;
    exec.profile = options_.profile;
    contexts_.push_back(std::make_unique<ExecutionContext>(exec));
  }
}

void ShardGroup::Run(const std::function<void(int shard)>& fn) {
  const int n = options_.shards;
  if (!options_.parallel || n == 1) {
    for (int s = 0; s < n; ++s) {
      ExecutionContext::Bind bind(contexts_[s].get());
      fn(s);
    }
    return;
  }
  std::vector<std::exception_ptr> errors(n);
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (int s = 0; s < n; ++s) {
    threads.emplace_back([this, s, &fn, &errors] {
      ExecutionContext::Bind bind(contexts_[s].get());
      try {
        fn(s);
      } catch (...) {
        errors[s] = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Rethrow by ascending shard index so the surfaced error is deterministic
  // even when several shards failed.
  for (int s = 0; s < n; ++s) {
    if (errors[s]) std::rethrow_exception(errors[s]);
  }
}

std::pair<int64_t, int64_t> ShardGroup::Range(int shard, int64_t total,
                                              int64_t align) const {
  TB_CHECK(shard >= 0 && shard < options_.shards);
  TB_CHECK_GE(align, 1);
  const int64_t shards = options_.shards;
  int64_t per = (total + shards - 1) / shards;
  per = (per + align - 1) / align * align;  // round the stride up to align
  const int64_t begin = std::min<int64_t>(total, shard * per);
  const int64_t end = std::min<int64_t>(total, begin + per);
  return {begin, end};
}

void ReduceShardBuffers(const std::vector<const float*>& buffers, int64_t n,
                        float scale, float* dst) {
  TB_CHECK(!buffers.empty());
  for (int64_t i = 0; i < n; ++i) dst[i] = 0.0f;
  for (const float* buffer : buffers) {
    TB_CHECK(buffer != nullptr);
    for (int64_t i = 0; i < n; ++i) dst[i] += scale * buffer[i];
  }
}

void ReduceShardBuffers(const std::vector<const float*>& buffers,
                        const std::vector<float>& scales, int64_t n,
                        float* dst) {
  TB_CHECK(!buffers.empty());
  TB_CHECK_EQ(buffers.size(), scales.size());
  for (int64_t i = 0; i < n; ++i) dst[i] = 0.0f;
  for (size_t s = 0; s < buffers.size(); ++s) {
    const float* buffer = buffers[s];
    if (buffer == nullptr) continue;  // empty micro-batch: all-zero gradient
    const float scale = scales[s];
    for (int64_t i = 0; i < n; ++i) dst[i] += scale * buffer[i];
  }
}

}  // namespace trafficbench::exec
