#ifndef TRAFFICBENCH_EXEC_SHARD_H_
#define TRAFFICBENCH_EXEC_SHARD_H_

// Sharded execution: a fixed group of ExecutionContexts, one per shard,
// each with its own thread pool and buffer pool. The sharded trainer and
// evaluator (src/eval/trainer.h) run one model replica per shard —
// micro-batches in parallel, gradients reduced in a fixed order — to scale
// the 2k/4k-node profiles across cores without touching the kernels'
// single-context determinism story (see DESIGN.md §15).
//
// Determinism contract: Run() executes fn(shard) for every shard, each
// bound to its own context; shards share NO mutable state except what the
// caller hands them (disjoint output slots, by construction). The
// reduction helper below combines per-shard buffers strictly in ascending
// shard order, so the reduced floats are a pure function of the shard
// results — identical whether Run() executed serially or on threads.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/exec/execution_context.h"

namespace trafficbench::exec {

struct ShardOptions {
  /// Number of shards (model replicas / eval ranges).
  int shards = 1;
  /// Worker threads inside each shard's ExecutionContext.
  int threads_per_shard = 1;
  /// When false, Run() executes the shards sequentially on the calling
  /// thread (same bits, easier debugging; also the TSan-friendly mode).
  bool parallel = true;
  /// Forwarded to each shard's ExecOptions.
  bool profile = false;
};

/// A fixed team of per-shard ExecutionContexts.
class ShardGroup {
 public:
  explicit ShardGroup(const ShardOptions& options);

  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  int shards() const { return options_.shards; }
  const ShardOptions& options() const { return options_; }
  ExecutionContext& context(int shard) { return *contexts_[shard]; }

  /// Runs fn(shard) for every shard in [0, shards), each bound (Bind) to
  /// its shard's context — on std::threads when `parallel`, else serially
  /// in ascending shard order. Blocks until all shards finish; the first
  /// exception (by shard index) is rethrown on the caller.
  void Run(const std::function<void(int shard)>& fn);

  /// Splits [0, total) into shards() contiguous ranges: shard s gets
  /// [s * ceil(total / shards), ...) clamped to total — the same balance
  /// rule as graph partitioning, and a pure function of (total, shards).
  /// When `align` > 1, the boundary is rounded up to a multiple of `align`
  /// (batch-aligned eval ranges). Returns {begin, end} of one shard.
  std::pair<int64_t, int64_t> Range(int shard, int64_t total,
                                    int64_t align = 1) const;

 private:
  ShardOptions options_;
  std::vector<std::unique_ptr<ExecutionContext>> contexts_;
};

/// Fixed-order reduction: dst[i] = sum_s scale * buffers[s][i], accumulated
/// in ascending shard order — the deterministic gradient all-reduce of the
/// sharded trainer. All buffers must have length `n`.
void ReduceShardBuffers(const std::vector<const float*>& buffers, int64_t n,
                        float scale, float* dst);

/// Per-shard-weighted variant: dst[i] = sum_s scales[s] * buffers[s][i],
/// still accumulated in ascending shard order. A null buffer contributes
/// zeros (a shard whose micro-batch was empty, or whose parameter never
/// received a gradient). `scales.size()` must equal `buffers.size()`.
void ReduceShardBuffers(const std::vector<const float*>& buffers,
                        const std::vector<float>& scales, int64_t n,
                        float* dst);

}  // namespace trafficbench::exec

#endif  // TRAFFICBENCH_EXEC_SHARD_H_
