#ifndef TRAFFICBENCH_EXEC_EXECUTION_CONTEXT_H_
#define TRAFFICBENCH_EXEC_EXECUTION_CONTEXT_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/tensor/buffer_pool.h"
#include "src/util/stopwatch.h"
#include "src/util/table.h"

namespace trafficbench::exec {

/// How the engine should execute tensor kernels.
struct ExecOptions {
  /// Worker count for parallel kernels. 1 (the default) keeps the engine's
  /// historical single-threaded behaviour bit-for-bit.
  int threads = 1;
  /// When true, every kernel dispatch records call count / FLOPs / wall
  /// time into the context's OpProfiler.
  bool profile = false;
};

/// Kernel kinds tracked by the profiler. Forward and backward passes of the
/// same op are distinct kinds so Table III breakdowns can separate them.
enum class OpKind : int {
  kMatMul = 0,
  kMatMulBackward,
  kSpMM,
  kSpMMBackward,
  kConv2d,
  kConv2dBackward,
  kUnary,
  kUnaryBackward,
  kBinary,
  kBinaryBackward,
  kSoftmax,
  kSoftmaxBackward,
  kReduce,
  kReduceBackward,
  kDataMovement,
  kDropoutMask,
  kAdamStep,
  /// Plan-execution dispatch of a GEMM/SpMM/conv with a fused bias and/or
  /// activation epilogue (DESIGN.md §12). Counted separately so profiler
  /// tables show fused vs unfused dispatch counts and FLOPs side by side.
  kFusedEpilogue,
  kNumKinds,  // sentinel
};

/// Stable display name of an op kind ("MatMul", "Conv2dBwd", ...).
const char* OpKindName(OpKind kind);

/// Aggregate statistics of one op kind.
struct OpStats {
  int64_t calls = 0;
  double seconds = 0.0;
  double flops = 0.0;  // estimated floating-point operations
};

/// Per-op-kind call counts, FLOP estimates and wall time. Recording is
/// mutex-guarded so profiled kernels may be dispatched from any thread;
/// in practice the engine records from the dispatching (main) thread only.
class OpProfiler {
 public:
  void Record(OpKind kind, double seconds, double flops);
  void Reset();

  OpStats stats(OpKind kind) const;
  /// Sum of recorded wall time across all kinds.
  double TotalSeconds() const;

  /// Aligned table of all kinds with at least one call, sorted by time.
  Table ToTable() const;
  /// The same rows as RFC-4180-ish CSV.
  std::string ToCsv() const;
  /// Compact "MatMul 62% | Conv2d 21% | Binary 9%" of the top `k` kinds by
  /// time share (empty string when nothing was recorded).
  std::string TopKindsSummary(int k) const;

 private:
  std::vector<std::pair<OpKind, OpStats>> SortedNonEmpty() const;

  mutable std::mutex mu_;
  std::array<OpStats, static_cast<size_t>(OpKind::kNumKinds)> stats_{};
};

/// A persistent pool of `threads - 1` workers (the calling thread
/// participates in every run). Work items are claimed with an atomic
/// counter, so *scheduling* is dynamic — determinism comes from the chunk
/// decomposition (fixed by problem shape) and from chunks writing disjoint
/// output ranges, never from thread assignment.
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  /// Runs fn(i) for every i in [0, count), blocking until all complete.
  /// The first exception thrown by `fn` is rethrown on the calling thread.
  void Run(int64_t count, const std::function<void(int64_t)>& fn);

 private:
  /// One parallel run. Heap-allocated and shared so a worker that wakes up
  /// late drains a stale (already exhausted) run harmlessly instead of
  /// racing with the next run's counters.
  struct RunState {
    const std::function<void(int64_t)>* fn = nullptr;
    int64_t total = 0;
    std::atomic<int64_t> next{0};
    std::atomic<int64_t> pending{0};
    std::exception_ptr error;  // guarded by the pool mutex
  };

  void WorkerLoop();
  void Drain(RunState* state);

  const int threads_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::shared_ptr<RunState> run_;  // guarded by mu_
  bool shutdown_ = false;          // guarded by mu_
  std::vector<std::thread> workers_;
};

/// Threads execution policy and observability through the whole stack.
///
/// The tensor kernels read the *current* context (a thread-local binding,
/// like grad mode) instead of taking an extra argument on every op; the
/// consumer layers (trainer, evaluator, experiment runner, CLI) own a
/// context and bind it around their forward/backward work.
///
/// Deterministic-chunking contract: ParallelFor decomposes [0, total) into
/// ceil(total / grain) chunks, where `grain` must be a pure function of the
/// problem shape (never of the thread count). Kernels either write disjoint
/// output ranges per chunk or keep each output element's accumulation chain
/// entirely inside one chunk, so results are bit-identical for every
/// `threads` value, including 1.
class ExecutionContext {
 public:
  explicit ExecutionContext(const ExecOptions& options = {});
  ~ExecutionContext();

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  int threads() const { return options_.threads; }
  bool profiling_enabled() const { return options_.profile; }
  OpProfiler& profiler() { return profiler_; }
  const OpProfiler& profiler() const { return profiler_; }

  /// The context's buffer pool. Shared so pooled tensors can hold a
  /// reference and release their buffers safely after the context dies.
  const std::shared_ptr<BufferPool>& buffer_pool() const { return pool_buffers_; }

  /// The OpProfiler table with a trailing "BufferPool" row (hit rate,
  /// acquires, MiB served from cache) when the pool saw any traffic.
  Table ProfileTable() const;
  /// One-line pool summary (BufferPool::Summary of this context's pool).
  std::string PoolSummary() const;

  /// Runs fn(begin, end) over the fixed chunk decomposition of [0, total).
  /// Serial contexts (and single-chunk problems) run inline on the caller.
  void ParallelFor(int64_t total, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

  /// The context bound to this thread; a process-wide serial context when
  /// nothing was bound (preserving the seed single-threaded behaviour).
  static ExecutionContext& Current();

  /// RAII thread-local binding. Binding nullptr is a no-op, which lets
  /// optional `ExecutionContext*` config fields be forwarded unconditionally.
  class Bind {
   public:
    explicit Bind(ExecutionContext* context);
    ~Bind();
    Bind(const Bind&) = delete;
    Bind& operator=(const Bind&) = delete;

   private:
    ExecutionContext* previous_;
    bool active_;
  };

 private:
  ExecOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // null when threads <= 1
  OpProfiler profiler_;
  std::shared_ptr<BufferPool> pool_buffers_;
};

/// Times one kernel dispatch and records it into the current context's
/// profiler on destruction. Free when profiling is disabled.
class ScopedOpTimer {
 public:
  explicit ScopedOpTimer(OpKind kind, double flops = 0.0);
  ~ScopedOpTimer();
  ScopedOpTimer(const ScopedOpTimer&) = delete;
  ScopedOpTimer& operator=(const ScopedOpTimer&) = delete;

 private:
  ExecutionContext* context_;
  OpKind kind_;
  double flops_;
  bool enabled_;
  Stopwatch watch_;
};

}  // namespace trafficbench::exec

#endif  // TRAFFICBENCH_EXEC_EXECUTION_CONTEXT_H_
