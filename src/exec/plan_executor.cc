#include "src/exec/plan_executor.h"

#include <cstring>

#include "src/exec/execution_context.h"
#include "src/util/check.h"

namespace trafficbench::exec {

using plan::InferencePlan;
using plan::PlanStep;
using plan::Slot;

PlanExecutor::PlanExecutor(std::shared_ptr<const InferencePlan> plan)
    : plan_(std::move(plan)),
      pool_(ExecutionContext::Current().buffer_pool()) {
  TB_CHECK(plan_ != nullptr);
  buffers_.reserve(plan_->buffer_sizes.size());
  for (const int64_t n : plan_->buffer_sizes) {
    buffers_.push_back(pool_->Acquire(n));
  }

  // Resolve what is resolvable now; remember the rest as patch locations.
  // A slot resolves to: its constant's storage, its bound buffer, or (input
  // / output slots) nullptr + a patch entry.
  const int num_steps = static_cast<int>(plan_->steps.size());
  step_inputs_.resize(num_steps);
  step_output_.resize(num_steps, nullptr);
  step_aux_.resize(num_steps);
  auto resolve = [&](int slot) -> const float* {
    const Slot& s = plan_->slots[slot];
    if (slot == plan_->output_slot) return nullptr;  // caller memory
    switch (s.kind) {
      case Slot::Kind::kInput: return nullptr;  // caller memory
      case Slot::Kind::kConstant: return s.constant->data.data();
      case Slot::Kind::kBuffer: return buffers_[s.buffer].data();
    }
    return nullptr;
  };
  for (int i = 0; i < num_steps; ++i) {
    const PlanStep& p = plan_->steps[i];
    step_inputs_[i].reserve(p.inputs.size());
    for (size_t a = 0; a < p.inputs.size(); ++a) {
      const int slot = p.inputs[a];
      step_inputs_[i].push_back(resolve(slot));
      if (slot == plan_->output_slot) {
        output_arg_patches_.emplace_back(i, static_cast<int>(a));
      } else if (plan_->slots[slot].kind == Slot::Kind::kInput) {
        input_arg_patches_.emplace_back(i, static_cast<int>(a));
      }
    }
    if (p.output == plan_->output_slot) {
      output_step_patches_.push_back(i);
    } else {
      const Slot& out = plan_->slots[p.output];
      TB_CHECK(out.kind == Slot::Kind::kBuffer && out.buffer >= 0);
      step_output_[i] = buffers_[out.buffer].data();
    }
    step_aux_[i].reserve(p.aux.size());
    for (const int b : p.aux) step_aux_[i].push_back(buffers_[b].data());
  }
}

PlanExecutor::~PlanExecutor() {
  for (std::vector<float>& b : buffers_) pool_->Release(std::move(b));
}

void PlanExecutor::Run(const float* input, int64_t input_numel, float* output,
                       int64_t output_numel) {
  TB_CHECK_EQ(input_numel, plan_->input_shape.numel());
  TB_CHECK_EQ(output_numel, plan_->output_shape.numel());

  // Degenerate plans: the output is the input or a folded constant.
  const Slot& out_slot = plan_->slots[plan_->output_slot];
  if (plan_->output_slot == plan_->input_slot) {
    std::memcpy(output, input, output_numel * sizeof(float));
    return;
  }
  if (out_slot.kind == Slot::Kind::kConstant) {
    std::memcpy(output, out_slot.constant->data.data(),
                output_numel * sizeof(float));
    return;
  }

  for (const auto& [step, arg] : input_arg_patches_) {
    step_inputs_[step][arg] = input;
  }
  for (const auto& [step, arg] : output_arg_patches_) {
    step_inputs_[step][arg] = output;
  }
  for (const int step : output_step_patches_) step_output_[step] = output;

  const int num_steps = static_cast<int>(plan_->steps.size());
  for (int i = 0; i < num_steps; ++i) {
    trace::ReplayArgs args;
    args.inputs = step_inputs_[i].data();
    args.output = step_output_[i];
    args.aux = step_aux_[i].data();
    plan_->steps[i].replay(args);
  }
}

}  // namespace trafficbench::exec
