#ifndef TRAFFICBENCH_EXEC_PLAN_EXECUTOR_H_
#define TRAFFICBENCH_EXEC_PLAN_EXECUTOR_H_

// Executes a compiled InferencePlan against pre-bound buffers
// (DESIGN.md §12).
//
// Construction binds everything once: every intermediate/scratch buffer is
// acquired from the current ExecutionContext's BufferPool (and released to
// it on destruction), every step's input/aux pointer array is resolved, and
// the few entries that depend on the caller — the plan input and the plan
// output — are remembered as patch locations. Run() then patches those
// entries and dispatches the replay closures in order: no allocations, no
// pool traffic, no autograd, no shape checks on the hot path. Per-step
// profiler accounting comes from the timers inside the replay closures
// (fused steps record under OpKind::kFusedEpilogue).
//
// Not thread-safe: Run() rewrites the patched pointer slots in place. Give
// each serving worker its own executor (they are cheap — the buffers come
// from the shared pool) or serialize access externally.

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/plan/plan.h"
#include "src/tensor/buffer_pool.h"

namespace trafficbench::exec {

class PlanExecutor {
 public:
  /// Binds buffers from the *current* execution context's pool.
  explicit PlanExecutor(std::shared_ptr<const plan::InferencePlan> plan);
  ~PlanExecutor();

  PlanExecutor(const PlanExecutor&) = delete;
  PlanExecutor& operator=(const PlanExecutor&) = delete;

  const plan::InferencePlan& plan() const { return *plan_; }

  /// Runs the schedule: reads `input_numel` floats from `input`, writes
  /// `output_numel` floats to `output` (the plan's traced shapes). The
  /// final step writes the caller's buffer directly. Uses the execution
  /// context bound to the calling thread, so worker threads parallelize
  /// kernels exactly like the eager path.
  void Run(const float* input, int64_t input_numel, float* output,
           int64_t output_numel);

 private:
  std::shared_ptr<const plan::InferencePlan> plan_;
  std::shared_ptr<BufferPool> pool_;
  /// Owned intermediates, index-aligned with plan_->buffer_sizes.
  std::vector<std::vector<float>> buffers_;
  /// Per-step resolved pointer arrays (constants and buffers fixed at
  /// construction; input/output references patched per Run).
  std::vector<std::vector<const float*>> step_inputs_;
  std::vector<float*> step_output_;
  std::vector<std::vector<float*>> step_aux_;
  /// (step, arg) locations whose pointer is the caller's input / output.
  std::vector<std::pair<int, int>> input_arg_patches_;
  std::vector<std::pair<int, int>> output_arg_patches_;
  /// Steps writing the plan output (patched to the caller's pointer).
  std::vector<int> output_step_patches_;
};

}  // namespace trafficbench::exec

#endif  // TRAFFICBENCH_EXEC_PLAN_EXECUTOR_H_
