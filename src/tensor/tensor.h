#ifndef TRAFFICBENCH_TENSOR_TENSOR_H_
#define TRAFFICBENCH_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/tensor/shape.h"

namespace trafficbench {

class BufferPool;
class Rng;
class Tensor;

namespace internal_tensor {

/// Shared storage + autograd node. Users interact with Tensor handles only.
struct TensorImpl {
  Shape shape;
  std::vector<float> data;

  /// True for leaves the optimizer updates and for any op output whose
  /// inputs require grad (while grad mode is on).
  bool requires_grad = false;

  /// Accumulated gradient; allocated lazily on first accumulation.
  std::vector<float> grad;

  /// Inputs of the op that produced this tensor (keeps the graph alive).
  std::vector<std::shared_ptr<TensorImpl>> parents;

  /// Propagates this->grad into the parents' grad buffers.
  std::function<void(TensorImpl&)> backward_fn;

  /// Set by MakeOp on op outputs: the buffer pool `data`/`grad` return to
  /// on destruction. Shared so the buffers release safely even after the
  /// owning ExecutionContext has died.
  std::shared_ptr<BufferPool> pool;

  TensorImpl() = default;
  ~TensorImpl();
  TensorImpl(const TensorImpl&) = delete;
  TensorImpl& operator=(const TensorImpl&) = delete;

  void EnsureGrad();
};

/// Thread-local flag: when false, ops do not record the autograd graph.
bool GradModeEnabled();
void SetGradMode(bool enabled);

}  // namespace internal_tensor

/// RAII guard disabling gradient recording (evaluation / inference).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// A dense float32 tensor with reverse-mode autograd, value-semantic handle
/// over shared storage. All layouts are contiguous row-major.
class Tensor {
 public:
  /// An undefined tensor (no storage). defined() is false.
  Tensor() = default;

  // ---- Factories -----------------------------------------------------------

  static Tensor Zeros(const Shape& shape);
  static Tensor Ones(const Shape& shape);
  static Tensor Full(const Shape& shape, float value);
  /// Takes ownership of `values`; size must equal shape.numel().
  static Tensor FromVector(const Shape& shape, std::vector<float> values);
  static Tensor Scalar(float value);
  /// I.i.d. N(0, stddev^2) entries.
  static Tensor Randn(const Shape& shape, Rng* rng, float stddev = 1.0f);
  /// I.i.d. U[lo, hi) entries.
  static Tensor Rand(const Shape& shape, Rng* rng, float lo, float hi);
  /// [0, 1, ..., n-1] as a rank-1 tensor.
  static Tensor Arange(int64_t n);

  // ---- Metadata ------------------------------------------------------------

  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const;
  int rank() const { return shape().rank(); }
  int64_t numel() const { return shape().numel(); }
  int64_t dim(int axis) const { return shape().dim(axis); }

  // ---- Data access ---------------------------------------------------------

  float* data();
  const float* data() const;
  /// Element at a (fully-specified) multi-index. Convenience for tests.
  float At(std::initializer_list<int64_t> index) const;
  /// Value of a 1-element tensor.
  float Item() const;
  std::vector<float> ToVector() const;

  // ---- Autograd ------------------------------------------------------------

  /// Marks this tensor as a gradient leaf (e.g. a learnable parameter).
  Tensor& set_requires_grad(bool requires_grad);
  bool requires_grad() const;

  /// Gradient accumulated by Backward(); undefined Tensor if none yet.
  Tensor GradTensor() const;
  /// Raw gradient buffer (empty if none yet).
  const std::vector<float>& grad() const;
  void ZeroGrad();

  /// Runs reverse-mode autodiff from this tensor. If it is not a scalar,
  /// `seed` must be supplied with a matching shape.
  void Backward(const Tensor& seed = Tensor());

  /// A tensor sharing storage but detached from the autograd graph.
  Tensor Detach() const;
  /// A deep copy (fresh storage, no graph).
  Tensor Clone() const;

  // ---- Shape ops (differentiable) -------------------------------------------

  Tensor Reshape(const Shape& new_shape) const;
  /// Swaps two axes (materializes a permuted copy).
  Tensor Transpose(int axis_a, int axis_b) const;
  /// General axis permutation; `perm` must be a permutation of [0, rank).
  Tensor Permute(const std::vector<int>& perm) const;
  /// Contiguous range [start, end) along `axis`.
  Tensor Slice(int axis, int64_t start, int64_t end) const;
  /// Inserts a size-1 axis at `axis` (may be rank(), appending).
  Tensor Unsqueeze(int axis) const;
  /// Removes a size-1 axis.
  Tensor Squeeze(int axis) const;
  /// Broadcasts to a larger shape (differentiable; grad sums back).
  Tensor BroadcastTo(const Shape& target) const;

  // ---- Reductions (differentiable) ------------------------------------------

  Tensor Sum(const std::vector<int>& axes, bool keepdim = false) const;
  Tensor Mean(const std::vector<int>& axes, bool keepdim = false) const;
  /// Sum over all elements, producing a scalar.
  Tensor SumAll() const;
  Tensor MeanAll() const;

  // ---- Elementwise (differentiable) ------------------------------------------

  Tensor Neg() const;
  Tensor Exp() const;
  Tensor Log() const;
  Tensor Sqrt() const;
  Tensor Abs() const;
  Tensor Relu() const;
  Tensor LeakyRelu(float negative_slope = 0.01f) const;
  Tensor Sigmoid() const;
  Tensor Tanh() const;
  /// Elementwise power with a constant exponent.
  Tensor Pow(float exponent) const;
  /// Numerically-stable softmax along `axis`.
  Tensor Softmax(int axis) const;

  /// Internal handle (used by the op library and optimizers).
  const std::shared_ptr<internal_tensor::TensorImpl>& impl() const {
    return impl_;
  }

  /// Wraps an impl (op-library use only).
  static Tensor FromImpl(std::shared_ptr<internal_tensor::TensorImpl> impl);

 private:
  std::shared_ptr<internal_tensor::TensorImpl> impl_;
};

// ---- Binary ops with NumPy broadcasting (differentiable) ---------------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
/// Elementwise maximum of two broadcastable tensors (subgradient to the max).
Tensor Maximum(const Tensor& a, const Tensor& b);
Tensor Minimum(const Tensor& a, const Tensor& b);

inline Tensor operator+(const Tensor& a, const Tensor& b) { return Add(a, b); }
inline Tensor operator-(const Tensor& a, const Tensor& b) { return Sub(a, b); }
inline Tensor operator*(const Tensor& a, const Tensor& b) { return Mul(a, b); }
inline Tensor operator/(const Tensor& a, const Tensor& b) { return Div(a, b); }

// Scalar convenience overloads.
Tensor operator+(const Tensor& a, float s);
Tensor operator+(float s, const Tensor& a);
Tensor operator-(const Tensor& a, float s);
Tensor operator-(float s, const Tensor& a);
Tensor operator*(const Tensor& a, float s);
Tensor operator*(float s, const Tensor& a);
Tensor operator/(const Tensor& a, float s);
Tensor operator/(float s, const Tensor& a);
inline Tensor operator-(const Tensor& a) { return a.Neg(); }

// ---- Linear algebra -----------------------------------------------------------

/// Matrix product. Both operands must have rank >= 2; leading (batch) axes
/// broadcast NumPy-style. [.., M, K] x [.., K, N] -> [.., M, N].
Tensor MatMul(const Tensor& a, const Tensor& b);

// ---- Structural ops -------------------------------------------------------------

/// Concatenates along `axis`; all other dims must match.
Tensor Concat(const std::vector<Tensor>& tensors, int axis);
/// Stacks along a new leading `axis`.
Tensor Stack(const std::vector<Tensor>& tensors, int axis);
/// Zero-pads `before`/`after` elements along `axis`.
Tensor Pad(const Tensor& t, int axis, int64_t before, int64_t after);
/// Gathers rows along `axis` by integer indices (embedding lookup).
/// Gradient scatter-adds into the source.
Tensor IndexSelect(const Tensor& t, int axis,
                   const std::vector<int64_t>& indices);

/// 2-D convolution over NCHW input with OIHW weights.
/// Used throughout as a temporal convolution with kernel (1, k).
/// Output: [B, Cout, Hout, Wout] with
///   Hout = (H + 2*pad_h - dil_h*(kh-1) - 1)/stride_h + 1 (likewise W).
Tensor Conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              int stride_h = 1, int stride_w = 1, int pad_h = 0, int pad_w = 0,
              int dil_h = 1, int dil_w = 1);

// ---- Debug ----------------------------------------------------------------------

/// Human-readable dump (small tensors only).
std::string ToDebugString(const Tensor& t, int max_elements = 64);

}  // namespace trafficbench

#endif  // TRAFFICBENCH_TENSOR_TENSOR_H_
