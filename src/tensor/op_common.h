#ifndef TRAFFICBENCH_TENSOR_OP_COMMON_H_
#define TRAFFICBENCH_TENSOR_OP_COMMON_H_

// Internal helpers shared by the op library. Not part of the public API.

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/tensor/shape.h"
#include "src/tensor/tensor.h"

namespace trafficbench::internal_tensor {

/// Creates an op output: wraps `data` with `shape`, and if grad mode is on
/// and any input requires grad, wires `backward` into the autograd graph.
/// The output is tagged with the current context's buffer pool, so `data`
/// (and the lazily-allocated grad) return to the pool on destruction —
/// op call sites should produce `data` with AcquireBuffer below.
Tensor MakeOp(Shape shape, std::vector<float> data,
              const std::vector<Tensor>& inputs,
              std::function<void(TensorImpl&)> backward);

/// Buffer-pool access for op scratch/output vectors, routed through the
/// current ExecutionContext's pool. Acquired buffers either flow into
/// MakeOp (which owns returning them) or must be handed back with
/// ReleaseBuffer once consumed (backward scratch).
std::vector<float> AcquireBuffer(int64_t n);
std::vector<float> AcquireZeroedBuffer(int64_t n);
void ReleaseBuffer(std::vector<float>&& buffer);

/// Accumulates `g` (same numel) into `t`'s grad buffer if it requires grad.
void AccumulateGrad(TensorImpl* t, const std::vector<float>& g);

/// Sums a gradient of shape `from` down to shape `to` (undoing broadcast).
std::vector<float> ReduceGradToShape(const std::vector<float>& grad,
                                     const Shape& from, const Shape& to);

/// Input strides aligned to an output of rank `out_rank`, with 0 strides on
/// broadcast axes. Used by the generic broadcast iterator.
std::vector<int64_t> BroadcastStrides(const Shape& in, int out_rank,
                                      const std::vector<int64_t>& out_dims);

}  // namespace trafficbench::internal_tensor

#endif  // TRAFFICBENCH_TENSOR_OP_COMMON_H_
