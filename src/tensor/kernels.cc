#include "src/tensor/kernels.h"

#include <algorithm>
#include <cmath>

namespace trafficbench::kernels {

// ---- Naive reference kernels ------------------------------------------------
// The historical triple loops, kept bit-for-bit as the property-test oracle
// and as the "pre-PR kernel" row in the perf trajectory.

void GemmRefNNRows(const float* a, const float* b, float* c,
                   int64_t row_begin, int64_t row_end, int64_t k, int64_t n) {
  for (int64_t i = row_begin; i < row_end; ++i) {
    float* crow = c + i * n;
    const float* arow = a + i * k;
    for (int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void GemmRefNTRows(const float* a, const float* b, float* c,
                   int64_t row_begin, int64_t row_end, int64_t n, int64_t k) {
  for (int64_t i = row_begin; i < row_end; ++i) {
    const float* arow = a + i * n;
    float* crow = c + i * k;
    for (int64_t p = 0; p < k; ++p) {
      const float* brow = b + p * n;
      float acc = 0.0f;
      for (int64_t j = 0; j < n; ++j) acc += arow[j] * brow[j];
      crow[p] += acc;
    }
  }
}

void GemmRefTNRows(const float* a, const float* b, float* c,
                   int64_t p_begin, int64_t p_end, int64_t m, int64_t k,
                   int64_t n) {
  for (int64_t p = p_begin; p < p_end; ++p) {
    float* crow = c + p * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = a[i * k + p];
      if (av == 0.0f) continue;
      const float* brow = b + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// ---- Blocked, packed kernels ------------------------------------------------
//
// All three layouts funnel into one blocked driver: C rows are walked in
// kGemmRowChunk sub-chunks, the shared (depth) dimension is blocked at
// kGemmDepthBlock, and per block a zero-padded A panel (micro-tile
// interleaved) and B panel (kGemmMicroCols-wide) are packed into aligned
// stack scratch. The micro-kernel then accumulates a full register tile
// with no branches in the inner loop. Templates select how each operand is
// addressed while packing:
//   NN: A row-major rows (lda=k),  B depth-major (ldb=n)
//   NT: A row-major rows (lda=n),  B column-major (ldb=n, the transpose)
//   TN: A column-major rows (lda=k), B depth-major (ldb=n)
// Per C element the accumulation chain is "ascending depth inside fixed
// depth blocks" — independent of row chunking, column panels and thread
// count, which is what keeps exec-layer bit-identity intact.

namespace {

/// Packs the A panel for rows [row0, row0+rows) x depth [d0, d0+kc) as
/// kGemmMicroRows-interleaved micro-tiles: pa[tile][d][r]. Tail rows are
/// zero-filled so the micro-kernel never branches on the row count.
template <bool kAColMajor>
[[gnu::always_inline]] inline void PackA(const float* a, int64_t lda,
                                         int64_t row0, int64_t rows,
                                         int64_t d0, int64_t kc, float* pa) {
  constexpr int64_t mr = kGemmMicroRows;
  const int64_t tiles = (rows + mr - 1) / mr;
  for (int64_t t = 0; t < tiles; ++t) {
    float* dst = pa + t * kc * mr;
    const int64_t r0 = row0 + t * mr;
    const int64_t tile_rows = std::min<int64_t>(mr, row0 + rows - r0);
    if (tile_rows < mr) {
      for (int64_t i = 0; i < kc * mr; ++i) dst[i] = 0.0f;
    }
    if constexpr (kAColMajor) {
      // a[(d0+d)*lda + (r0+r)]: contiguous reads along r.
      for (int64_t d = 0; d < kc; ++d) {
        const float* src = a + (d0 + d) * lda + r0;
        for (int64_t r = 0; r < tile_rows; ++r) dst[d * mr + r] = src[r];
      }
    } else {
      // a[(r0+r)*lda + (d0+d)]: contiguous reads along d.
      for (int64_t r = 0; r < tile_rows; ++r) {
        const float* src = a + (r0 + r) * lda + d0;
        for (int64_t d = 0; d < kc; ++d) dst[d * mr + r] = src[d];
      }
    }
  }
}

/// Packs the B panel for depth [d0, d0+kc) x columns [j0, j0+nr) as
/// pb[d][j], zero-padding the column tail to kGemmMicroCols.
template <bool kBColMajor>
[[gnu::always_inline]] inline void PackB(const float* b, int64_t ldb,
                                         int64_t d0, int64_t kc, int64_t j0,
                                         int64_t nr, float* pb) {
  constexpr int64_t nc = kGemmMicroCols;
  if constexpr (kBColMajor) {
    // b[(j0+j)*ldb + (d0+d)]: the transpose gather (NT layout).
    for (int64_t j = 0; j < nc; ++j) {
      if (j < nr) {
        const float* src = b + (j0 + j) * ldb + d0;
        for (int64_t d = 0; d < kc; ++d) pb[d * nc + j] = src[d];
      } else {
        for (int64_t d = 0; d < kc; ++d) pb[d * nc + j] = 0.0f;
      }
    }
  } else {
    for (int64_t d = 0; d < kc; ++d) {
      const float* src = b + (d0 + d) * ldb + j0;
      float* dst = pb + d * nc;
      for (int64_t j = 0; j < nr; ++j) dst[j] = src[j];
      for (int64_t j = nr; j < nc; ++j) dst[j] = 0.0f;
    }
  }
}

/// Accumulates a kGemmMicroRows x kGemmMicroCols register tile over the
/// packed panels, then adds the valid mr x nr corner into C. The d-loop is
/// branch-free with constant-bound inner loops: the compiler keeps `acc`
/// in vector registers and turns the j-loop into independent (non-reducing)
/// vector FMAs.
[[gnu::always_inline]] inline void MicroKernel(const float* pa,
                                               const float* pb, int64_t kc,
                                               float* c, int64_t ldc,
                                               int64_t mr, int64_t nr) {
  constexpr int64_t kMr = kGemmMicroRows;
  constexpr int64_t kNr = kGemmMicroCols;
  float acc[kMr][kNr] = {};
  for (int64_t d = 0; d < kc; ++d) {
    const float* ap = pa + d * kMr;
    const float* bp = pb + d * kNr;
    for (int64_t r = 0; r < kMr; ++r) {
      const float av = ap[r];
      for (int64_t j = 0; j < kNr; ++j) acc[r][j] += av * bp[j];
    }
  }
  if (mr == kMr && nr == kNr) {
    for (int64_t r = 0; r < kMr; ++r) {
      float* crow = c + r * ldc;
      for (int64_t j = 0; j < kNr; ++j) crow[j] += acc[r][j];
    }
  } else {
    for (int64_t r = 0; r < mr; ++r) {
      float* crow = c + r * ldc;
      for (int64_t j = 0; j < nr; ++j) crow[j] += acc[r][j];
    }
  }
}

/// The blocked driver shared by all three layouts. Computes
/// C[rows, cols] += op(A) * op(B) for C rows [row_begin, row_end), where
/// `depth` is the contraction extent.
template <bool kAColMajor, bool kBColMajor>
[[gnu::always_inline]] inline void BlockedGemm(const float* a, int64_t lda,
                                               const float* b, int64_t ldb,
                                               float* c, int64_t ldc,
                                               int64_t row_begin,
                                               int64_t row_end, int64_t depth,
                                               int64_t cols) {
  alignas(64) float pa[kGemmRowChunk * kGemmDepthBlock];
  alignas(64) float pb[kGemmDepthBlock * kGemmMicroCols];
  for (int64_t i0 = row_begin; i0 < row_end; i0 += kGemmRowChunk) {
    const int64_t rows = std::min(kGemmRowChunk, row_end - i0);
    for (int64_t d0 = 0; d0 < depth; d0 += kGemmDepthBlock) {
      const int64_t kc = std::min(kGemmDepthBlock, depth - d0);
      PackA<kAColMajor>(a, lda, i0, rows, d0, kc, pa);
      const int64_t tiles = (rows + kGemmMicroRows - 1) / kGemmMicroRows;
      for (int64_t j0 = 0; j0 < cols; j0 += kGemmMicroCols) {
        const int64_t nr = std::min(kGemmMicroCols, cols - j0);
        PackB<kBColMajor>(b, ldb, d0, kc, j0, nr, pb);
        for (int64_t t = 0; t < tiles; ++t) {
          const int64_t mr = std::min(kGemmMicroRows,
                                      rows - t * kGemmMicroRows);
          MicroKernel(pa + t * kc * kGemmMicroRows, pb, kc,
                      c + (i0 + t * kGemmMicroRows) * ldc + j0, ldc, mr, nr);
        }
      }
    }
  }
}

#if defined(__x86_64__) || defined(__i386__)
#define TB_KERNELS_X86 1
#else
#define TB_KERNELS_X86 0
#endif

// Two compilations of the identical blocked driver: the default-ISA build
// and (on x86) an AVX2+FMA build selected once at load time. One process-
// wide decision shared by every thread, so it cannot break thread-count
// bit-identity; it does change float contraction (FMA), which the property
// tests cover with tolerances against the naive reference.

void BlockedNNDefault(const float* a, const float* b, float* c, int64_t rb,
                      int64_t re, int64_t k, int64_t n) {
  BlockedGemm<false, false>(a, k, b, n, c, n, rb, re, k, n);
}
void BlockedNTDefault(const float* a, const float* b, float* c, int64_t rb,
                      int64_t re, int64_t n, int64_t k) {
  BlockedGemm<false, true>(a, n, b, n, c, k, rb, re, n, k);
}
void BlockedTNDefault(const float* a, const float* b, float* c, int64_t pb,
                      int64_t pe, int64_t m, int64_t k, int64_t n) {
  BlockedGemm<true, false>(a, k, b, n, c, n, pb, pe, m, n);
}

#if TB_KERNELS_X86
__attribute__((target("avx2,fma"))) void BlockedNNAvx2(
    const float* a, const float* b, float* c, int64_t rb, int64_t re,
    int64_t k, int64_t n) {
  BlockedGemm<false, false>(a, k, b, n, c, n, rb, re, k, n);
}
__attribute__((target("avx2,fma"))) void BlockedNTAvx2(
    const float* a, const float* b, float* c, int64_t rb, int64_t re,
    int64_t n, int64_t k) {
  BlockedGemm<false, true>(a, n, b, n, c, k, rb, re, n, k);
}
__attribute__((target("avx2,fma"))) void BlockedTNAvx2(
    const float* a, const float* b, float* c, int64_t pb, int64_t pe,
    int64_t m, int64_t k, int64_t n) {
  BlockedGemm<true, false>(a, k, b, n, c, n, pb, pe, m, n);
}
#endif  // TB_KERNELS_X86

// SpMM row-range body. The inner axpy over the feature axis is contiguous
// and branch-free, so both compilations vectorize it; the AVX2+FMA clone is
// selected by the same process-wide decision as the GEMM kernels (one
// choice for every thread → thread-count bit-identity holds). Accumulation
// per y element is "ascending column within the row", fixed by the
// sparsity pattern alone.
void SpmmRowsDefault(const int64_t* row_ptr, const int32_t* col_idx,
                     const float* values, const float* x, float* y,
                     int64_t row_begin, int64_t row_end, int64_t f) {
  for (int64_t i = row_begin; i < row_end; ++i) {
    float* yi = y + i * f;
    for (int64_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const float v = values[k];
      const float* xc = x + static_cast<int64_t>(col_idx[k]) * f;
      for (int64_t j = 0; j < f; ++j) yi[j] += v * xc[j];
    }
  }
}

#if TB_KERNELS_X86
__attribute__((target("avx2,fma"))) void SpmmRowsAvx2(
    const int64_t* row_ptr, const int32_t* col_idx, const float* values,
    const float* x, float* y, int64_t row_begin, int64_t row_end, int64_t f) {
  for (int64_t i = row_begin; i < row_end; ++i) {
    float* yi = y + i * f;
    for (int64_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const float v = values[k];
      const float* xc = x + static_cast<int64_t>(col_idx[k]) * f;
      for (int64_t j = 0; j < f; ++j) yi[j] += v * xc[j];
    }
  }
}
#endif  // TB_KERNELS_X86

bool DetectAvx2Fma() {
#if TB_KERNELS_X86
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const bool g_gemm_avx2 = DetectAvx2Fma();

}  // namespace

bool GemmUsesAvx2() { return g_gemm_avx2; }

void GemmAccNNRows(const float* a, const float* b, float* c,
                   int64_t row_begin, int64_t row_end, int64_t k, int64_t n) {
#if TB_KERNELS_X86
  if (g_gemm_avx2) {
    BlockedNNAvx2(a, b, c, row_begin, row_end, k, n);
    return;
  }
#endif
  BlockedNNDefault(a, b, c, row_begin, row_end, k, n);
}

void GemmAccNTRows(const float* a, const float* b, float* c,
                   int64_t row_begin, int64_t row_end, int64_t n, int64_t k) {
#if TB_KERNELS_X86
  if (g_gemm_avx2) {
    BlockedNTAvx2(a, b, c, row_begin, row_end, n, k);
    return;
  }
#endif
  BlockedNTDefault(a, b, c, row_begin, row_end, n, k);
}

void GemmAccTNRows(const float* a, const float* b, float* c,
                   int64_t p_begin, int64_t p_end, int64_t m, int64_t k,
                   int64_t n) {
#if TB_KERNELS_X86
  if (g_gemm_avx2) {
    BlockedTNAvx2(a, b, c, p_begin, p_end, m, k, n);
    return;
  }
#endif
  BlockedTNDefault(a, b, c, p_begin, p_end, m, k, n);
}

// ---- Batched drivers --------------------------------------------------------

void GemmBatchedNN(exec::ExecutionContext& ctx, const float* a,
                   const float* b, float* c, const int64_t* a_offsets,
                   const int64_t* b_offsets, int64_t num_batches, int64_t m,
                   int64_t k, int64_t n) {
  const int64_t row_chunks = (m + kGemmRowChunk - 1) / kGemmRowChunk;
  ctx.ParallelFor(
      num_batches * row_chunks, /*grain=*/1, [&](int64_t begin, int64_t end) {
        for (int64_t task = begin; task < end; ++task) {
          const int64_t batch = task / row_chunks;
          const int64_t chunk = task % row_chunks;
          const int64_t row_begin = chunk * kGemmRowChunk;
          const int64_t row_end = std::min(m, row_begin + kGemmRowChunk);
          GemmAccNNRows(a + a_offsets[batch], b + b_offsets[batch],
                        c + batch * m * n, row_begin, row_end, k, n);
        }
      });
}

void GemmBatchedNT(exec::ExecutionContext& ctx, const float* dc,
                   const float* b, float* da, const int64_t* da_offsets,
                   const int64_t* b_offsets, int64_t num_batches, int64_t m,
                   int64_t n, int64_t k) {
  const int64_t row_chunks = (m + kGemmRowChunk - 1) / kGemmRowChunk;
  ctx.ParallelFor(row_chunks, /*grain=*/1, [&](int64_t begin, int64_t end) {
    for (int64_t chunk = begin; chunk < end; ++chunk) {
      const int64_t row_begin = chunk * kGemmRowChunk;
      const int64_t row_end = std::min(m, row_begin + kGemmRowChunk);
      for (int64_t batch = 0; batch < num_batches; ++batch) {
        GemmAccNTRows(dc + batch * m * n, b + b_offsets[batch],
                      da + da_offsets[batch], row_begin, row_end, n, k);
      }
    }
  });
}

void GemmBatchedTN(exec::ExecutionContext& ctx, const float* a,
                   const float* dc, float* db, const int64_t* a_offsets,
                   const int64_t* db_offsets, int64_t num_batches, int64_t m,
                   int64_t k, int64_t n) {
  const int64_t row_chunks = (k + kGemmRowChunk - 1) / kGemmRowChunk;
  ctx.ParallelFor(row_chunks, /*grain=*/1, [&](int64_t begin, int64_t end) {
    for (int64_t chunk = begin; chunk < end; ++chunk) {
      const int64_t p_begin = chunk * kGemmRowChunk;
      const int64_t p_end = std::min(k, p_begin + kGemmRowChunk);
      for (int64_t batch = 0; batch < num_batches; ++batch) {
        GemmAccTNRows(a + a_offsets[batch], dc + batch * m * n,
                      db + db_offsets[batch], p_begin, p_end, m, k, n);
      }
    }
  });
}

// ---- Fused epilogue drivers -------------------------------------------------

namespace {

/// Applies bias-add then activation to rows [row_begin, row_end) of an
/// [*, n] block. Statement-per-element with no multiply-add pairs; see the
/// contraction-safety note in kernels.h.
void ApplyEpilogueRows(float* c, int64_t row_begin, int64_t row_end,
                       int64_t n, const EpilogueSpec& e) {
  for (int64_t i = row_begin; i < row_end; ++i) {
    float* crow = c + i * n;
    if (e.bias != nullptr) {
      for (int64_t j = 0; j < n; ++j) crow[j] = crow[j] + e.bias[j];
    }
    switch (e.act) {
      case EpilogueAct::kNone:
        break;
      case EpilogueAct::kRelu:
        for (int64_t j = 0; j < n; ++j) {
          const float v = crow[j];
          crow[j] = v > 0.0f ? v : 0.0f;
        }
        break;
      case EpilogueAct::kSigmoid:
        for (int64_t j = 0; j < n; ++j) {
          crow[j] = 1.0f / (1.0f + std::exp(-crow[j]));
        }
        break;
      case EpilogueAct::kTanh:
        for (int64_t j = 0; j < n; ++j) crow[j] = std::tanh(crow[j]);
        break;
      case EpilogueAct::kLeakyRelu:
        for (int64_t j = 0; j < n; ++j) {
          const float v = crow[j];
          crow[j] = v > 0.0f ? v : e.leaky_slope * v;
        }
        break;
    }
  }
}

}  // namespace

void GemmBatchedNNFused(exec::ExecutionContext& ctx, const float* a,
                        const float* b, float* c, const int64_t* a_offsets,
                        const int64_t* b_offsets, int64_t num_batches,
                        int64_t m, int64_t k, int64_t n,
                        const EpilogueSpec& epilogue) {
  const int64_t row_chunks = (m + kGemmRowChunk - 1) / kGemmRowChunk;
  ctx.ParallelFor(
      num_batches * row_chunks, /*grain=*/1, [&](int64_t begin, int64_t end) {
        for (int64_t task = begin; task < end; ++task) {
          const int64_t batch = task / row_chunks;
          const int64_t chunk = task % row_chunks;
          const int64_t row_begin = chunk * kGemmRowChunk;
          const int64_t row_end = std::min(m, row_begin + kGemmRowChunk);
          float* c_block = c + batch * m * n;
          GemmAccNNRows(a + a_offsets[batch], b + b_offsets[batch], c_block,
                        row_begin, row_end, k, n);
          // Each output row lives in exactly one (batch, chunk) task, so
          // the epilogue runs once per element, after its full
          // accumulation chain.
          ApplyEpilogueRows(c_block, row_begin, row_end, n, epilogue);
        }
      });
}

void SpmmBatchedFused(exec::ExecutionContext& ctx, const int64_t* row_ptr,
                      const int32_t* col_idx, const float* values,
                      const float* x, float* y, int64_t num_batches,
                      int64_t rows, int64_t cols, int64_t f,
                      const EpilogueSpec& epilogue) {
  const int64_t row_chunks = (rows + kSpmmRowChunk - 1) / kSpmmRowChunk;
  ctx.ParallelFor(
      num_batches * row_chunks, /*grain=*/1, [&](int64_t begin, int64_t end) {
        for (int64_t task = begin; task < end; ++task) {
          const int64_t batch = task / row_chunks;
          const int64_t chunk = task % row_chunks;
          const int64_t row_begin = chunk * kSpmmRowChunk;
          const int64_t row_end = std::min(rows, row_begin + kSpmmRowChunk);
          float* y_block = y + batch * rows * f;
          SpmmAccRows(row_ptr, col_idx, values, x + batch * cols * f,
                      y_block, row_begin, row_end, f);
          ApplyEpilogueRows(y_block, row_begin, row_end, f, epilogue);
        }
      });
}

// ---- Sparse drivers ---------------------------------------------------------

void SpmmAccRows(const int64_t* row_ptr, const int32_t* col_idx,
                 const float* values, const float* x, float* y,
                 int64_t row_begin, int64_t row_end, int64_t f) {
#if TB_KERNELS_X86
  if (g_gemm_avx2) {
    SpmmRowsAvx2(row_ptr, col_idx, values, x, y, row_begin, row_end, f);
    return;
  }
#endif
  SpmmRowsDefault(row_ptr, col_idx, values, x, y, row_begin, row_end, f);
}

void SpmmBatched(exec::ExecutionContext& ctx, const int64_t* row_ptr,
                 const int32_t* col_idx, const float* values, const float* x,
                 float* y, int64_t num_batches, int64_t rows, int64_t cols,
                 int64_t f) {
  const int64_t row_chunks = (rows + kSpmmRowChunk - 1) / kSpmmRowChunk;
  ctx.ParallelFor(
      num_batches * row_chunks, /*grain=*/1, [&](int64_t begin, int64_t end) {
        for (int64_t task = begin; task < end; ++task) {
          const int64_t batch = task / row_chunks;
          const int64_t chunk = task % row_chunks;
          const int64_t row_begin = chunk * kSpmmRowChunk;
          const int64_t row_end = std::min(rows, row_begin + kSpmmRowChunk);
          SpmmAccRows(row_ptr, col_idx, values, x + batch * cols * f,
                      y + batch * rows * f, row_begin, row_end, f);
        }
      });
}

}  // namespace trafficbench::kernels
