#include "src/tensor/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace trafficbench::kernels {

// ---- Naive reference kernels ------------------------------------------------
// The historical triple loops, kept bit-for-bit as the property-test oracle
// and as the "pre-PR kernel" row in the perf trajectory.

void GemmRefNNRows(const float* a, const float* b, float* c,
                   int64_t row_begin, int64_t row_end, int64_t k, int64_t n) {
  for (int64_t i = row_begin; i < row_end; ++i) {
    float* crow = c + i * n;
    const float* arow = a + i * k;
    for (int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void GemmRefNTRows(const float* a, const float* b, float* c,
                   int64_t row_begin, int64_t row_end, int64_t n, int64_t k) {
  for (int64_t i = row_begin; i < row_end; ++i) {
    const float* arow = a + i * n;
    float* crow = c + i * k;
    for (int64_t p = 0; p < k; ++p) {
      const float* brow = b + p * n;
      float acc = 0.0f;
      for (int64_t j = 0; j < n; ++j) acc += arow[j] * brow[j];
      crow[p] += acc;
    }
  }
}

void GemmRefTNRows(const float* a, const float* b, float* c,
                   int64_t p_begin, int64_t p_end, int64_t m, int64_t k,
                   int64_t n) {
  for (int64_t p = p_begin; p < p_end; ++p) {
    float* crow = c + p * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = a[i * k + p];
      if (av == 0.0f) continue;
      const float* brow = b + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// ---- Blocked, packed kernels ------------------------------------------------
//
// All three layouts funnel into one blocked driver: C rows are walked in
// kGemmRowChunk sub-chunks, the shared (depth) dimension is blocked at
// kGemmDepthBlock, and per block a zero-padded A panel (micro-tile
// interleaved) and B panel (kGemmMicroCols-wide) are packed into aligned
// stack scratch. The micro-kernel then accumulates a full register tile
// with no branches in the inner loop. Templates select how each operand is
// addressed while packing:
//   NN: A row-major rows (lda=k),  B depth-major (ldb=n)
//   NT: A row-major rows (lda=n),  B column-major (ldb=n, the transpose)
//   TN: A column-major rows (lda=k), B depth-major (ldb=n)
// Per C element the accumulation chain is "ascending depth inside fixed
// depth blocks" — independent of row chunking, column panels and thread
// count, which is what keeps exec-layer bit-identity intact.

namespace {

/// Packs the A panel for rows [row0, row0+rows) x depth [d0, d0+kc) as
/// kGemmMicroRows-interleaved micro-tiles: pa[tile][d][r]. Tail rows are
/// zero-filled so the micro-kernel never branches on the row count.
template <bool kAColMajor>
[[gnu::always_inline]] inline void PackA(const float* a, int64_t lda,
                                         int64_t row0, int64_t rows,
                                         int64_t d0, int64_t kc, float* pa) {
  constexpr int64_t mr = kGemmMicroRows;
  const int64_t tiles = (rows + mr - 1) / mr;
  for (int64_t t = 0; t < tiles; ++t) {
    float* dst = pa + t * kc * mr;
    const int64_t r0 = row0 + t * mr;
    const int64_t tile_rows = std::min<int64_t>(mr, row0 + rows - r0);
    if (tile_rows < mr) {
      for (int64_t i = 0; i < kc * mr; ++i) dst[i] = 0.0f;
    }
    if constexpr (kAColMajor) {
      // a[(d0+d)*lda + (r0+r)]: contiguous reads along r.
      for (int64_t d = 0; d < kc; ++d) {
        const float* src = a + (d0 + d) * lda + r0;
        for (int64_t r = 0; r < tile_rows; ++r) dst[d * mr + r] = src[r];
      }
    } else {
      // a[(r0+r)*lda + (d0+d)]: contiguous reads along d.
      for (int64_t r = 0; r < tile_rows; ++r) {
        const float* src = a + (r0 + r) * lda + d0;
        for (int64_t d = 0; d < kc; ++d) dst[d * mr + r] = src[d];
      }
    }
  }
}

/// Packs the B panel for depth [d0, d0+kc) x columns [j0, j0+nr) as
/// pb[d][j], zero-padding the column tail to kGemmMicroCols.
template <bool kBColMajor>
[[gnu::always_inline]] inline void PackB(const float* b, int64_t ldb,
                                         int64_t d0, int64_t kc, int64_t j0,
                                         int64_t nr, float* pb) {
  constexpr int64_t nc = kGemmMicroCols;
  if constexpr (kBColMajor) {
    // b[(j0+j)*ldb + (d0+d)]: the transpose gather (NT layout).
    for (int64_t j = 0; j < nc; ++j) {
      if (j < nr) {
        const float* src = b + (j0 + j) * ldb + d0;
        for (int64_t d = 0; d < kc; ++d) pb[d * nc + j] = src[d];
      } else {
        for (int64_t d = 0; d < kc; ++d) pb[d * nc + j] = 0.0f;
      }
    }
  } else {
    for (int64_t d = 0; d < kc; ++d) {
      const float* src = b + (d0 + d) * ldb + j0;
      float* dst = pb + d * nc;
      for (int64_t j = 0; j < nr; ++j) dst[j] = src[j];
      for (int64_t j = nr; j < nc; ++j) dst[j] = 0.0f;
    }
  }
}

/// Accumulates a kGemmMicroRows x kGemmMicroCols register tile over the
/// packed panels, then adds the valid mr x nr corner into C. The d-loop is
/// branch-free with constant-bound inner loops: the compiler keeps `acc`
/// in vector registers and turns the j-loop into independent (non-reducing)
/// vector FMAs.
[[gnu::always_inline]] inline void MicroKernel(const float* pa,
                                               const float* pb, int64_t kc,
                                               float* c, int64_t ldc,
                                               int64_t mr, int64_t nr) {
  constexpr int64_t kMr = kGemmMicroRows;
  constexpr int64_t kNr = kGemmMicroCols;
  float acc[kMr][kNr] = {};
  for (int64_t d = 0; d < kc; ++d) {
    const float* ap = pa + d * kMr;
    const float* bp = pb + d * kNr;
    for (int64_t r = 0; r < kMr; ++r) {
      const float av = ap[r];
      for (int64_t j = 0; j < kNr; ++j) acc[r][j] += av * bp[j];
    }
  }
  if (mr == kMr && nr == kNr) {
    for (int64_t r = 0; r < kMr; ++r) {
      float* crow = c + r * ldc;
      for (int64_t j = 0; j < kNr; ++j) crow[j] += acc[r][j];
    }
  } else {
    for (int64_t r = 0; r < mr; ++r) {
      float* crow = c + r * ldc;
      for (int64_t j = 0; j < nr; ++j) crow[j] += acc[r][j];
    }
  }
}

/// The blocked driver shared by all three layouts. Computes
/// C[rows, cols] += op(A) * op(B) for C rows [row_begin, row_end), where
/// `depth` is the contraction extent.
template <bool kAColMajor, bool kBColMajor>
[[gnu::always_inline]] inline void BlockedGemm(const float* a, int64_t lda,
                                               const float* b, int64_t ldb,
                                               float* c, int64_t ldc,
                                               int64_t row_begin,
                                               int64_t row_end, int64_t depth,
                                               int64_t cols) {
  alignas(64) float pa[kGemmRowChunk * kGemmDepthBlock];
  alignas(64) float pb[kGemmDepthBlock * kGemmMicroCols];
  for (int64_t i0 = row_begin; i0 < row_end; i0 += kGemmRowChunk) {
    const int64_t rows = std::min(kGemmRowChunk, row_end - i0);
    for (int64_t d0 = 0; d0 < depth; d0 += kGemmDepthBlock) {
      const int64_t kc = std::min(kGemmDepthBlock, depth - d0);
      PackA<kAColMajor>(a, lda, i0, rows, d0, kc, pa);
      const int64_t tiles = (rows + kGemmMicroRows - 1) / kGemmMicroRows;
      for (int64_t j0 = 0; j0 < cols; j0 += kGemmMicroCols) {
        const int64_t nr = std::min(kGemmMicroCols, cols - j0);
        PackB<kBColMajor>(b, ldb, d0, kc, j0, nr, pb);
        for (int64_t t = 0; t < tiles; ++t) {
          const int64_t mr = std::min(kGemmMicroRows,
                                      rows - t * kGemmMicroRows);
          MicroKernel(pa + t * kc * kGemmMicroRows, pb, kc,
                      c + (i0 + t * kGemmMicroRows) * ldc + j0, ldc, mr, nr);
        }
      }
    }
  }
}

#if defined(__x86_64__) || defined(__i386__)
#define TB_KERNELS_X86 1
#else
#define TB_KERNELS_X86 0
#endif

// Two compilations of the identical blocked driver: the default-ISA build
// and (on x86) an AVX2+FMA build selected once at load time. One process-
// wide decision shared by every thread, so it cannot break thread-count
// bit-identity; it does change float contraction (FMA), which the property
// tests cover with tolerances against the naive reference.

void BlockedNNDefault(const float* a, const float* b, float* c, int64_t rb,
                      int64_t re, int64_t k, int64_t n) {
  BlockedGemm<false, false>(a, k, b, n, c, n, rb, re, k, n);
}
void BlockedNTDefault(const float* a, const float* b, float* c, int64_t rb,
                      int64_t re, int64_t n, int64_t k) {
  BlockedGemm<false, true>(a, n, b, n, c, k, rb, re, n, k);
}
void BlockedTNDefault(const float* a, const float* b, float* c, int64_t pb,
                      int64_t pe, int64_t m, int64_t k, int64_t n) {
  BlockedGemm<true, false>(a, k, b, n, c, n, pb, pe, m, n);
}

#if TB_KERNELS_X86
__attribute__((target("avx2,fma"))) void BlockedNNAvx2(
    const float* a, const float* b, float* c, int64_t rb, int64_t re,
    int64_t k, int64_t n) {
  BlockedGemm<false, false>(a, k, b, n, c, n, rb, re, k, n);
}
__attribute__((target("avx2,fma"))) void BlockedNTAvx2(
    const float* a, const float* b, float* c, int64_t rb, int64_t re,
    int64_t n, int64_t k) {
  BlockedGemm<false, true>(a, n, b, n, c, k, rb, re, n, k);
}
__attribute__((target("avx2,fma"))) void BlockedTNAvx2(
    const float* a, const float* b, float* c, int64_t pb, int64_t pe,
    int64_t m, int64_t k, int64_t n) {
  BlockedGemm<true, false>(a, k, b, n, c, n, pb, pe, m, n);
}
#endif  // TB_KERNELS_X86

// SpMM row-range body. The inner axpy over the feature axis is contiguous
// and branch-free, so both compilations vectorize it; the AVX2+FMA clone is
// selected by the same process-wide decision as the GEMM kernels (one
// choice for every thread → thread-count bit-identity holds). Accumulation
// per y element is "ascending column within the row", fixed by the
// sparsity pattern alone.
void SpmmRowsDefault(const int64_t* row_ptr, const int32_t* col_idx,
                     const float* values, const float* x, float* y,
                     int64_t row_begin, int64_t row_end, int64_t f) {
  for (int64_t i = row_begin; i < row_end; ++i) {
    float* yi = y + i * f;
    for (int64_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const float v = values[k];
      const float* xc = x + static_cast<int64_t>(col_idx[k]) * f;
      for (int64_t j = 0; j < f; ++j) yi[j] += v * xc[j];
    }
  }
}

#if TB_KERNELS_X86
__attribute__((target("avx2,fma"))) void SpmmRowsAvx2(
    const int64_t* row_ptr, const int32_t* col_idx, const float* values,
    const float* x, float* y, int64_t row_begin, int64_t row_end, int64_t f) {
  for (int64_t i = row_begin; i < row_end; ++i) {
    float* yi = y + i * f;
    for (int64_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const float v = values[k];
      const float* xc = x + static_cast<int64_t>(col_idx[k]) * f;
      for (int64_t j = 0; j < f; ++j) yi[j] += v * xc[j];
    }
  }
}
#endif  // TB_KERNELS_X86

bool DetectAvx2Fma() {
#if TB_KERNELS_X86
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const bool g_gemm_avx2 = DetectAvx2Fma();

}  // namespace

bool GemmUsesAvx2() { return g_gemm_avx2; }

void GemmAccNNRows(const float* a, const float* b, float* c,
                   int64_t row_begin, int64_t row_end, int64_t k, int64_t n) {
#if TB_KERNELS_X86
  if (g_gemm_avx2) {
    BlockedNNAvx2(a, b, c, row_begin, row_end, k, n);
    return;
  }
#endif
  BlockedNNDefault(a, b, c, row_begin, row_end, k, n);
}

void GemmAccNTRows(const float* a, const float* b, float* c,
                   int64_t row_begin, int64_t row_end, int64_t n, int64_t k) {
#if TB_KERNELS_X86
  if (g_gemm_avx2) {
    BlockedNTAvx2(a, b, c, row_begin, row_end, n, k);
    return;
  }
#endif
  BlockedNTDefault(a, b, c, row_begin, row_end, n, k);
}

void GemmAccTNRows(const float* a, const float* b, float* c,
                   int64_t p_begin, int64_t p_end, int64_t m, int64_t k,
                   int64_t n) {
#if TB_KERNELS_X86
  if (g_gemm_avx2) {
    BlockedTNAvx2(a, b, c, p_begin, p_end, m, k, n);
    return;
  }
#endif
  BlockedTNDefault(a, b, c, p_begin, p_end, m, k, n);
}

// ---- Batched drivers --------------------------------------------------------

void GemmBatchedNN(exec::ExecutionContext& ctx, const float* a,
                   const float* b, float* c, const int64_t* a_offsets,
                   const int64_t* b_offsets, int64_t num_batches, int64_t m,
                   int64_t k, int64_t n) {
  const int64_t row_chunks = (m + kGemmRowChunk - 1) / kGemmRowChunk;
  ctx.ParallelFor(
      num_batches * row_chunks, /*grain=*/1, [&](int64_t begin, int64_t end) {
        for (int64_t task = begin; task < end; ++task) {
          const int64_t batch = task / row_chunks;
          const int64_t chunk = task % row_chunks;
          const int64_t row_begin = chunk * kGemmRowChunk;
          const int64_t row_end = std::min(m, row_begin + kGemmRowChunk);
          GemmAccNNRows(a + a_offsets[batch], b + b_offsets[batch],
                        c + batch * m * n, row_begin, row_end, k, n);
        }
      });
}

void GemmBatchedNT(exec::ExecutionContext& ctx, const float* dc,
                   const float* b, float* da, const int64_t* da_offsets,
                   const int64_t* b_offsets, int64_t num_batches, int64_t m,
                   int64_t n, int64_t k) {
  const int64_t row_chunks = (m + kGemmRowChunk - 1) / kGemmRowChunk;
  ctx.ParallelFor(row_chunks, /*grain=*/1, [&](int64_t begin, int64_t end) {
    for (int64_t chunk = begin; chunk < end; ++chunk) {
      const int64_t row_begin = chunk * kGemmRowChunk;
      const int64_t row_end = std::min(m, row_begin + kGemmRowChunk);
      for (int64_t batch = 0; batch < num_batches; ++batch) {
        GemmAccNTRows(dc + batch * m * n, b + b_offsets[batch],
                      da + da_offsets[batch], row_begin, row_end, n, k);
      }
    }
  });
}

void GemmBatchedTN(exec::ExecutionContext& ctx, const float* a,
                   const float* dc, float* db, const int64_t* a_offsets,
                   const int64_t* db_offsets, int64_t num_batches, int64_t m,
                   int64_t k, int64_t n) {
  const int64_t row_chunks = (k + kGemmRowChunk - 1) / kGemmRowChunk;
  ctx.ParallelFor(row_chunks, /*grain=*/1, [&](int64_t begin, int64_t end) {
    for (int64_t chunk = begin; chunk < end; ++chunk) {
      const int64_t p_begin = chunk * kGemmRowChunk;
      const int64_t p_end = std::min(k, p_begin + kGemmRowChunk);
      for (int64_t batch = 0; batch < num_batches; ++batch) {
        GemmAccTNRows(a + a_offsets[batch], dc + batch * m * n,
                      db + db_offsets[batch], p_begin, p_end, m, k, n);
      }
    }
  });
}

// ---- Fused epilogue drivers -------------------------------------------------

void ApplyEpilogueRows(float* c, int64_t row_begin, int64_t row_end,
                       int64_t n, const EpilogueSpec& e) {
  for (int64_t i = row_begin; i < row_end; ++i) {
    float* crow = c + i * n;
    if (e.bias != nullptr) {
      for (int64_t j = 0; j < n; ++j) crow[j] = crow[j] + e.bias[j];
    }
    switch (e.act) {
      case EpilogueAct::kNone:
        break;
      case EpilogueAct::kRelu:
        for (int64_t j = 0; j < n; ++j) {
          const float v = crow[j];
          crow[j] = v > 0.0f ? v : 0.0f;
        }
        break;
      case EpilogueAct::kSigmoid:
        for (int64_t j = 0; j < n; ++j) {
          crow[j] = 1.0f / (1.0f + std::exp(-crow[j]));
        }
        break;
      case EpilogueAct::kTanh:
        for (int64_t j = 0; j < n; ++j) crow[j] = std::tanh(crow[j]);
        break;
      case EpilogueAct::kLeakyRelu:
        for (int64_t j = 0; j < n; ++j) {
          const float v = crow[j];
          crow[j] = v > 0.0f ? v : e.leaky_slope * v;
        }
        break;
    }
  }
}


void GemmBatchedNNFused(exec::ExecutionContext& ctx, const float* a,
                        const float* b, float* c, const int64_t* a_offsets,
                        const int64_t* b_offsets, int64_t num_batches,
                        int64_t m, int64_t k, int64_t n,
                        const EpilogueSpec& epilogue) {
  const int64_t row_chunks = (m + kGemmRowChunk - 1) / kGemmRowChunk;
  ctx.ParallelFor(
      num_batches * row_chunks, /*grain=*/1, [&](int64_t begin, int64_t end) {
        for (int64_t task = begin; task < end; ++task) {
          const int64_t batch = task / row_chunks;
          const int64_t chunk = task % row_chunks;
          const int64_t row_begin = chunk * kGemmRowChunk;
          const int64_t row_end = std::min(m, row_begin + kGemmRowChunk);
          float* c_block = c + batch * m * n;
          GemmAccNNRows(a + a_offsets[batch], b + b_offsets[batch], c_block,
                        row_begin, row_end, k, n);
          // Each output row lives in exactly one (batch, chunk) task, so
          // the epilogue runs once per element, after its full
          // accumulation chain.
          ApplyEpilogueRows(c_block, row_begin, row_end, n, epilogue);
        }
      });
}

void SpmmBatchedFused(exec::ExecutionContext& ctx, const int64_t* row_ptr,
                      const int32_t* col_idx, const float* values,
                      const float* x, float* y, int64_t num_batches,
                      int64_t rows, int64_t cols, int64_t f,
                      const EpilogueSpec& epilogue) {
  const int64_t row_chunks = (rows + kSpmmRowChunk - 1) / kSpmmRowChunk;
  ctx.ParallelFor(
      num_batches * row_chunks, /*grain=*/1, [&](int64_t begin, int64_t end) {
        for (int64_t task = begin; task < end; ++task) {
          const int64_t batch = task / row_chunks;
          const int64_t chunk = task % row_chunks;
          const int64_t row_begin = chunk * kSpmmRowChunk;
          const int64_t row_end = std::min(rows, row_begin + kSpmmRowChunk);
          float* y_block = y + batch * rows * f;
          SpmmAccRows(row_ptr, col_idx, values, x + batch * cols * f,
                      y_block, row_begin, row_end, f);
          ApplyEpilogueRows(y_block, row_begin, row_end, f, epilogue);
        }
      });
}

// ---- Sparse drivers ---------------------------------------------------------

void SpmmAccRows(const int64_t* row_ptr, const int32_t* col_idx,
                 const float* values, const float* x, float* y,
                 int64_t row_begin, int64_t row_end, int64_t f) {
#if TB_KERNELS_X86
  if (g_gemm_avx2) {
    SpmmRowsAvx2(row_ptr, col_idx, values, x, y, row_begin, row_end, f);
    return;
  }
#endif
  SpmmRowsDefault(row_ptr, col_idx, values, x, y, row_begin, row_end, f);
}

void SpmmBatched(exec::ExecutionContext& ctx, const int64_t* row_ptr,
                 const int32_t* col_idx, const float* values, const float* x,
                 float* y, int64_t num_batches, int64_t rows, int64_t cols,
                 int64_t f) {
  const int64_t row_chunks = (rows + kSpmmRowChunk - 1) / kSpmmRowChunk;
  ctx.ParallelFor(
      num_batches * row_chunks, /*grain=*/1, [&](int64_t begin, int64_t end) {
        for (int64_t task = begin; task < end; ++task) {
          const int64_t batch = task / row_chunks;
          const int64_t chunk = task % row_chunks;
          const int64_t row_begin = chunk * kSpmmRowChunk;
          const int64_t row_end = std::min(rows, row_begin + kSpmmRowChunk);
          SpmmAccRows(row_ptr, col_idx, values, x + batch * cols * f,
                      y + batch * rows * f, row_begin, row_end, f);
        }
      });
}

// ---- Reduced-precision tiers ------------------------------------------------
//
// Packed-weight kernels for compiled plans (DESIGN.md §13). Unlike the
// fp32 kernels above — whose AVX2 and default builds may differ by FMA
// contraction — each tier's scalar and AVX2 kernels are bit-identical by
// construction: one fused multiply-add per (element, depth) step (std::fma
// is correctly rounded, i.e. the same operation vfmadd performs), identical
// ascending-depth chains, one plain add into C at the end.

const char* PrecisionName(Precision p) {
  switch (p) {
    case Precision::kFp32: return "fp32";
    case Precision::kBf16: return "bf16";
    case Precision::kInt8: return "int8";
  }
  return "?";
}

bool ParsePrecision(const std::string& text, Precision* out) {
  if (text == "fp32") { *out = Precision::kFp32; return true; }
  if (text == "bf16") { *out = Precision::kBf16; return true; }
  if (text == "int8") { *out = Precision::kInt8; return true; }
  return false;
}

uint16_t FloatToBf16(float v) {
  uint32_t u;
  std::memcpy(&u, &v, sizeof(u));
  // NaN: quiet the payload instead of letting the rounding increment carry
  // into the exponent (which would turn NaN into infinity).
  if ((u & 0x7FFFFFFFu) > 0x7F800000u) {
    return static_cast<uint16_t>((u >> 16) | 0x0040u);
  }
  u += 0x7FFFu + ((u >> 16) & 1u);  // round to nearest, ties to even
  return static_cast<uint16_t>(u >> 16);
}

void PackBf16(const float* src, uint16_t* dst, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] = FloatToBf16(src[i]);
}

void QuantizeInt8PerColumn(const float* b, int64_t k, int64_t n, int8_t* q,
                           float* scales) {
  for (int64_t j = 0; j < n; ++j) {
    float max_abs = 0.0f;
    for (int64_t d = 0; d < k; ++d) {
      max_abs = std::max(max_abs, std::fabs(b[d * n + j]));
    }
    const float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
    scales[j] = scale;
    for (int64_t d = 0; d < k; ++d) {
      // Default fenv rounds to nearest-even; clamp keeps the symmetric
      // [-127, 127] range (never -128, so negation stays exact).
      long qi = std::lrintf(b[d * n + j] / scale);
      qi = std::min<long>(127, std::max<long>(-127, qi));
      q[d * n + j] = static_cast<int8_t>(qi);
    }
  }
}

void PackBf16Panels(const float* b, int64_t k, int64_t n, uint16_t* dst) {
  constexpr int64_t nc = kGemmMicroCols;
  for (int64_t j0 = 0; j0 < n; j0 += nc) {
    const int64_t nr = std::min(nc, n - j0);
    uint16_t* block = dst + (j0 / nc) * k * nc;
    for (int64_t d = 0; d < k; ++d) {
      const float* src = b + d * n + j0;
      uint16_t* out = block + d * nc;
      for (int64_t j = 0; j < nr; ++j) out[j] = FloatToBf16(src[j]);
      for (int64_t j = nr; j < nc; ++j) out[j] = 0;
    }
  }
}

void PackInt8Panels(const int8_t* q, int64_t k, int64_t n, int8_t* dst) {
  constexpr int64_t nc = kGemmMicroCols;
  for (int64_t j0 = 0; j0 < n; j0 += nc) {
    const int64_t nr = std::min(nc, n - j0);
    int8_t* block = dst + (j0 / nc) * k * nc;
    for (int64_t d = 0; d < k; ++d) {
      const int8_t* src = q + d * n + j0;
      int8_t* out = block + d * nc;
      for (int64_t j = 0; j < nr; ++j) out[j] = src[j];
      for (int64_t j = nr; j < nc; ++j) out[j] = 0;
    }
  }
}

void PadScales(const float* scales, int64_t n, float* dst) {
  const int64_t padded = PaddedScaleElems(n);
  for (int64_t j = 0; j < n; ++j) dst[j] = scales[j];
  for (int64_t j = n; j < padded; ++j) dst[j] = 0.0f;
}

namespace {

/// Scalar bf16 micro-kernel: std::fma per (element, depth) step, matching
/// the AVX2 build bit for bit (see the section comment). A is read straight
/// from the source rows (at + r*lda) — no packed A panel. Rows past mr
/// alias the last valid row: their lanes are computed and discarded, which
/// keeps the loop branch-free without reading out of bounds.
void MicroKernelBf16Scalar(const float* at, int64_t lda, const uint16_t* pb,
                           int64_t kc, float* c, int64_t ldc, int64_t mr,
                           int64_t nr) {
  constexpr int64_t kMr = kGemmMicroRows;
  constexpr int64_t kNr = kGemmMicroCols;
  const float* ar[kMr];
  for (int64_t r = 0; r < kMr; ++r) {
    ar[r] = at + (r < mr ? r : mr - 1) * lda;
  }
  float acc[kMr][kNr] = {};
  for (int64_t d = 0; d < kc; ++d) {
    const uint16_t* bp = pb + d * kNr;
    float bv[kNr];
    for (int64_t j = 0; j < kNr; ++j) bv[j] = Bf16ToFloat(bp[j]);
    for (int64_t r = 0; r < kMr; ++r) {
      const float av = ar[r][d];
      for (int64_t j = 0; j < kNr; ++j) {
        acc[r][j] = std::fma(av, bv[j], acc[r][j]);
      }
    }
  }
  for (int64_t r = 0; r < mr; ++r) {
    float* crow = c + r * ldc;
    for (int64_t j = 0; j < nr; ++j) crow[j] += acc[r][j];
  }
}

/// Scalar gather bf16 micro-kernel: identical FMA chain to
/// MicroKernelBf16Scalar, but row r's depth-d element is read from
/// rows[r][offs[d]] instead of a materialized contiguous A row. Rows past
/// mr alias the last valid row, as in the contiguous kernel.
void MicroKernelBf16GatherScalar(const float* const* rows,
                                 const int32_t* offs, const uint16_t* pb,
                                 int64_t kc, float* c, int64_t ldc,
                                 int64_t mr, int64_t nr) {
  constexpr int64_t kMr = kGemmMicroRows;
  constexpr int64_t kNr = kGemmMicroCols;
  const float* ar[kMr];
  for (int64_t r = 0; r < kMr; ++r) {
    ar[r] = rows[r < mr ? r : mr - 1];
  }
  float acc[kMr][kNr] = {};
  for (int64_t d = 0; d < kc; ++d) {
    const uint16_t* bp = pb + d * kNr;
    float bv[kNr];
    for (int64_t j = 0; j < kNr; ++j) bv[j] = Bf16ToFloat(bp[j]);
    const int64_t o = offs[d];
    for (int64_t r = 0; r < kMr; ++r) {
      const float av = ar[r][o];
      for (int64_t j = 0; j < kNr; ++j) {
        acc[r][j] = std::fma(av, bv[j], acc[r][j]);
      }
    }
  }
  for (int64_t r = 0; r < mr; ++r) {
    float* crow = c + r * ldc;
    for (int64_t j = 0; j < nr; ++j) crow[j] += acc[r][j];
  }
}

/// Scalar int8 micro-kernel. The dequantized weight scales[j] * q is
/// rounded once by the scalar multiply — the identical rounding vmulps
/// performs in the AVX2 build.
void MicroKernelInt8Scalar(const float* at, int64_t lda, const int8_t* pq,
                           const float* pscales, int64_t kc, float* c,
                           int64_t ldc, int64_t mr, int64_t nr) {
  constexpr int64_t kMr = kGemmMicroRows;
  constexpr int64_t kNr = kGemmMicroCols;
  const float* ar[kMr];
  for (int64_t r = 0; r < kMr; ++r) {
    ar[r] = at + (r < mr ? r : mr - 1) * lda;
  }
  float acc[kMr][kNr] = {};
  for (int64_t d = 0; d < kc; ++d) {
    const int8_t* bp = pq + d * kNr;
    float bv[kNr];
    for (int64_t j = 0; j < kNr; ++j) {
      bv[j] = pscales[j] * static_cast<float>(bp[j]);
    }
    for (int64_t r = 0; r < kMr; ++r) {
      const float av = ar[r][d];
      for (int64_t j = 0; j < kNr; ++j) {
        acc[r][j] = std::fma(av, bv[j], acc[r][j]);
      }
    }
  }
  for (int64_t r = 0; r < mr; ++r) {
    float* crow = c + r * ldc;
    for (int64_t j = 0; j < nr; ++j) crow[j] += acc[r][j];
  }
}

#if TB_KERNELS_X86

/// AVX2 bf16 micro-kernel: up-converts 16 bf16 weights per depth step in
/// registers (zero-extend + shift — exact), then one vfmadd per row.
__attribute__((target("avx2,fma"))) void MicroKernelBf16Avx2(
    const float* at, int64_t lda, const uint16_t* pb, int64_t kc, float* c,
    int64_t ldc, int64_t mr, int64_t nr) {
  constexpr int kMr = static_cast<int>(kGemmMicroRows);
  const float* ar[kMr];
  for (int r = 0; r < kMr; ++r) {
    ar[r] = at + (r < mr ? r : mr - 1) * lda;
  }
  __m256 acc0[kMr], acc1[kMr];
  for (int r = 0; r < kMr; ++r) {
    acc0[r] = _mm256_setzero_ps();
    acc1[r] = _mm256_setzero_ps();
  }
  for (int64_t d = 0; d < kc; ++d) {
    const uint16_t* bp = pb + d * kGemmMicroCols;
    const __m256 b0 = _mm256_castsi256_ps(_mm256_slli_epi32(
        _mm256_cvtepu16_epi32(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(bp))),
        16));
    const __m256 b1 = _mm256_castsi256_ps(_mm256_slli_epi32(
        _mm256_cvtepu16_epi32(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(bp + 8))),
        16));
    for (int r = 0; r < kMr; ++r) {
      const __m256 av = _mm256_broadcast_ss(ar[r] + d);
      acc0[r] = _mm256_fmadd_ps(av, b0, acc0[r]);
      acc1[r] = _mm256_fmadd_ps(av, b1, acc1[r]);
    }
  }
  if (mr == kGemmMicroRows && nr == kGemmMicroCols) {
    for (int r = 0; r < kMr; ++r) {
      float* crow = c + r * ldc;
      _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), acc0[r]));
      _mm256_storeu_ps(crow + 8,
                       _mm256_add_ps(_mm256_loadu_ps(crow + 8), acc1[r]));
    }
  } else {
    alignas(32) float tmp[kGemmMicroRows][kGemmMicroCols];
    for (int r = 0; r < kMr; ++r) {
      _mm256_store_ps(tmp[r], acc0[r]);
      _mm256_store_ps(tmp[r] + 8, acc1[r]);
    }
    for (int64_t r = 0; r < mr; ++r) {
      float* crow = c + r * ldc;
      for (int64_t j = 0; j < nr; ++j) crow[j] += tmp[r][j];
    }
  }
}

/// AVX2 gather bf16 micro-kernel: MicroKernelBf16Avx2 with the per-row
/// broadcast redirected through the shared offset table.
__attribute__((target("avx2,fma"))) void MicroKernelBf16GatherAvx2(
    const float* const* rows, const int32_t* offs, const uint16_t* pb,
    int64_t kc, float* c, int64_t ldc, int64_t mr, int64_t nr) {
  constexpr int kMr = static_cast<int>(kGemmMicroRows);
  const float* ar[kMr];
  for (int r = 0; r < kMr; ++r) {
    ar[r] = rows[r < mr ? r : mr - 1];
  }
  __m256 acc0[kMr], acc1[kMr];
  for (int r = 0; r < kMr; ++r) {
    acc0[r] = _mm256_setzero_ps();
    acc1[r] = _mm256_setzero_ps();
  }
  for (int64_t d = 0; d < kc; ++d) {
    const uint16_t* bp = pb + d * kGemmMicroCols;
    const __m256 b0 = _mm256_castsi256_ps(_mm256_slli_epi32(
        _mm256_cvtepu16_epi32(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(bp))),
        16));
    const __m256 b1 = _mm256_castsi256_ps(_mm256_slli_epi32(
        _mm256_cvtepu16_epi32(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(bp + 8))),
        16));
    const int64_t o = offs[d];
    for (int r = 0; r < kMr; ++r) {
      const __m256 av = _mm256_broadcast_ss(ar[r] + o);
      acc0[r] = _mm256_fmadd_ps(av, b0, acc0[r]);
      acc1[r] = _mm256_fmadd_ps(av, b1, acc1[r]);
    }
  }
  if (mr == kGemmMicroRows && nr == kGemmMicroCols) {
    for (int r = 0; r < kMr; ++r) {
      float* crow = c + r * ldc;
      _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), acc0[r]));
      _mm256_storeu_ps(crow + 8,
                       _mm256_add_ps(_mm256_loadu_ps(crow + 8), acc1[r]));
    }
  } else {
    alignas(32) float tmp[kGemmMicroRows][kGemmMicroCols];
    for (int r = 0; r < kMr; ++r) {
      _mm256_store_ps(tmp[r], acc0[r]);
      _mm256_store_ps(tmp[r] + 8, acc1[r]);
    }
    for (int64_t r = 0; r < mr; ++r) {
      float* crow = c + r * ldc;
      for (int64_t j = 0; j < nr; ++j) crow[j] += tmp[r][j];
    }
  }
}

/// AVX2 int8 micro-kernel: sign-extend + int→float convert (exact for the
/// int8 range) + one vmulps by the hoisted scales, then vfmadd.
__attribute__((target("avx2,fma"))) void MicroKernelInt8Avx2(
    const float* at, int64_t lda, const int8_t* pq, const float* pscales,
    int64_t kc, float* c, int64_t ldc, int64_t mr, int64_t nr) {
  constexpr int kMr = static_cast<int>(kGemmMicroRows);
  const float* ar[kMr];
  for (int r = 0; r < kMr; ++r) {
    ar[r] = at + (r < mr ? r : mr - 1) * lda;
  }
  const __m256 s0 = _mm256_loadu_ps(pscales);
  const __m256 s1 = _mm256_loadu_ps(pscales + 8);
  __m256 acc0[kMr], acc1[kMr];
  for (int r = 0; r < kMr; ++r) {
    acc0[r] = _mm256_setzero_ps();
    acc1[r] = _mm256_setzero_ps();
  }
  for (int64_t d = 0; d < kc; ++d) {
    const __m128i q = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(pq + d * kGemmMicroCols));
    const __m256 b0 = _mm256_mul_ps(
        _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(q)), s0);
    const __m256 b1 = _mm256_mul_ps(
        _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(_mm_srli_si128(q, 8))), s1);
    for (int r = 0; r < kMr; ++r) {
      const __m256 av = _mm256_broadcast_ss(ar[r] + d);
      acc0[r] = _mm256_fmadd_ps(av, b0, acc0[r]);
      acc1[r] = _mm256_fmadd_ps(av, b1, acc1[r]);
    }
  }
  if (mr == kGemmMicroRows && nr == kGemmMicroCols) {
    for (int r = 0; r < kMr; ++r) {
      float* crow = c + r * ldc;
      _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), acc0[r]));
      _mm256_storeu_ps(crow + 8,
                       _mm256_add_ps(_mm256_loadu_ps(crow + 8), acc1[r]));
    }
  } else {
    alignas(32) float tmp[kGemmMicroRows][kGemmMicroCols];
    for (int r = 0; r < kMr; ++r) {
      _mm256_store_ps(tmp[r], acc0[r]);
      _mm256_store_ps(tmp[r] + 8, acc1[r]);
    }
    for (int64_t r = 0; r < mr; ++r) {
      float* crow = c + r * ldc;
      for (int64_t j = 0; j < nr; ++j) crow[j] += tmp[r][j];
    }
  }
}

#endif  // TB_KERNELS_X86

/// Blocked bf16 driver: the fp32 BlockedGemm loop structure, but neither
/// operand is repacked in the hot loop — B is already in the blocked panel
/// layout (packed once at plan-compile time) and A is broadcast straight
/// from its four source rows by the micro-kernel. The fp32 path pays a
/// PackB per row chunk and a PackA per depth block; at the skinny serving
/// shapes (k, n of a few dozen) that packing rivals the FMA work itself,
/// so skipping it is most of the tier's speedup.
void BlockedGemmBf16(const float* a, const uint16_t* b, float* c,
                     int64_t row_begin, int64_t row_end, int64_t k, int64_t n,
                     [[maybe_unused]] bool use_avx2) {
  for (int64_t i0 = row_begin; i0 < row_end; i0 += kGemmRowChunk) {
    const int64_t rows = std::min(kGemmRowChunk, row_end - i0);
    for (int64_t d0 = 0; d0 < k; d0 += kGemmDepthBlock) {
      const int64_t kc = std::min(kGemmDepthBlock, k - d0);
      const int64_t tiles = (rows + kGemmMicroRows - 1) / kGemmMicroRows;
      for (int64_t j0 = 0; j0 < n; j0 += kGemmMicroCols) {
        const int64_t nr = std::min(kGemmMicroCols, n - j0);
        const uint16_t* pb =
            b + (j0 / kGemmMicroCols) * k * kGemmMicroCols +
            d0 * kGemmMicroCols;
        for (int64_t t = 0; t < tiles; ++t) {
          const int64_t mr =
              std::min(kGemmMicroRows, rows - t * kGemmMicroRows);
          const float* at = a + (i0 + t * kGemmMicroRows) * k + d0;
          float* ct = c + (i0 + t * kGemmMicroRows) * n + j0;
#if TB_KERNELS_X86
          if (use_avx2) {
            MicroKernelBf16Avx2(at, k, pb, kc, ct, n, mr, nr);
            continue;
          }
#endif
          MicroKernelBf16Scalar(at, k, pb, kc, ct, n, mr, nr);
        }
      }
    }
  }
}

/// Gather variant of the blocked bf16 driver: same chunk / depth-block /
/// column-block decomposition, but each micro-tile receives its four row
/// base pointers plus the depth-block slice of the shared offset table.
void BlockedGemmBf16Gather(const float* const* rows, const int32_t* offs,
                           const uint16_t* b, float* c, int64_t m, int64_t k,
                           int64_t n, [[maybe_unused]] bool use_avx2) {
  for (int64_t i0 = 0; i0 < m; i0 += kGemmRowChunk) {
    const int64_t chunk_rows = std::min(kGemmRowChunk, m - i0);
    for (int64_t d0 = 0; d0 < k; d0 += kGemmDepthBlock) {
      const int64_t kc = std::min(kGemmDepthBlock, k - d0);
      const int64_t tiles =
          (chunk_rows + kGemmMicroRows - 1) / kGemmMicroRows;
      for (int64_t j0 = 0; j0 < n; j0 += kGemmMicroCols) {
        const int64_t nr = std::min(kGemmMicroCols, n - j0);
        const uint16_t* pb =
            b + (j0 / kGemmMicroCols) * k * kGemmMicroCols +
            d0 * kGemmMicroCols;
        for (int64_t t = 0; t < tiles; ++t) {
          const int64_t mr =
              std::min(kGemmMicroRows, chunk_rows - t * kGemmMicroRows);
          const float* const* rt = rows + i0 + t * kGemmMicroRows;
          float* ct = c + (i0 + t * kGemmMicroRows) * n + j0;
#if TB_KERNELS_X86
          if (use_avx2) {
            MicroKernelBf16GatherAvx2(rt, offs + d0, pb, kc, ct, n, mr, nr);
            continue;
          }
#endif
          MicroKernelBf16GatherScalar(rt, offs + d0, pb, kc, ct, n, mr, nr);
        }
      }
    }
  }
}

void BlockedGemmInt8(const float* a, const int8_t* q, const float* scales,
                     float* c, int64_t row_begin, int64_t row_end, int64_t k,
                     int64_t n, [[maybe_unused]] bool use_avx2) {
  for (int64_t i0 = row_begin; i0 < row_end; i0 += kGemmRowChunk) {
    const int64_t rows = std::min(kGemmRowChunk, row_end - i0);
    for (int64_t d0 = 0; d0 < k; d0 += kGemmDepthBlock) {
      const int64_t kc = std::min(kGemmDepthBlock, k - d0);
      const int64_t tiles = (rows + kGemmMicroRows - 1) / kGemmMicroRows;
      for (int64_t j0 = 0; j0 < n; j0 += kGemmMicroCols) {
        const int64_t nr = std::min(kGemmMicroCols, n - j0);
        const int8_t* pq = q + (j0 / kGemmMicroCols) * k * kGemmMicroCols +
                           d0 * kGemmMicroCols;
        const float* pscales = scales + j0;  // PadScales zero-pads the tail
        for (int64_t t = 0; t < tiles; ++t) {
          const int64_t mr =
              std::min(kGemmMicroRows, rows - t * kGemmMicroRows);
          const float* at = a + (i0 + t * kGemmMicroRows) * k + d0;
          float* ct = c + (i0 + t * kGemmMicroRows) * n + j0;
#if TB_KERNELS_X86
          if (use_avx2) {
            MicroKernelInt8Avx2(at, k, pq, pscales, kc, ct, n, mr, nr);
            continue;
          }
#endif
          MicroKernelInt8Scalar(at, k, pq, pscales, kc, ct, n, mr, nr);
        }
      }
    }
  }
}

/// SpMM with bf16 values, scalar build: one std::fma per (element, nnz).
void SpmmBf16RowsScalar(const int64_t* row_ptr, const int32_t* col_idx,
                        const uint16_t* values, const float* x, float* y,
                        int64_t row_begin, int64_t row_end, int64_t f) {
  for (int64_t i = row_begin; i < row_end; ++i) {
    float* yi = y + i * f;
    for (int64_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const float v = Bf16ToFloat(values[k]);
      const float* xc = x + static_cast<int64_t>(col_idx[k]) * f;
      for (int64_t j = 0; j < f; ++j) yi[j] = std::fma(v, xc[j], yi[j]);
    }
  }
}

#if TB_KERNELS_X86
__attribute__((target("avx2,fma"))) void SpmmBf16RowsAvx2(
    const int64_t* row_ptr, const int32_t* col_idx, const uint16_t* values,
    const float* x, float* y, int64_t row_begin, int64_t row_end, int64_t f) {
  for (int64_t i = row_begin; i < row_end; ++i) {
    float* yi = y + i * f;
    for (int64_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const float v = Bf16ToFloat(values[k]);
      const __m256 vv = _mm256_set1_ps(v);
      const float* xc = x + static_cast<int64_t>(col_idx[k]) * f;
      int64_t j = 0;
      for (; j + 8 <= f; j += 8) {
        _mm256_storeu_ps(
            yi + j, _mm256_fmadd_ps(vv, _mm256_loadu_ps(xc + j),
                                    _mm256_loadu_ps(yi + j)));
      }
      for (; j < f; ++j) yi[j] = std::fma(v, xc[j], yi[j]);
    }
  }
}
#endif  // TB_KERNELS_X86

}  // namespace

void GemmBf16AccNNRows(const float* a, const uint16_t* b, float* c,
                       int64_t row_begin, int64_t row_end, int64_t k,
                       int64_t n) {
  BlockedGemmBf16(a, b, c, row_begin, row_end, k, n, g_gemm_avx2);
}

void GemmBf16RefNNRows(const float* a, const uint16_t* b, float* c,
                       int64_t row_begin, int64_t row_end, int64_t k,
                       int64_t n) {
  BlockedGemmBf16(a, b, c, row_begin, row_end, k, n, /*use_avx2=*/false);
}

void GemmBf16GatherAccNNRows(const float* const* rows, const int32_t* offs,
                             const uint16_t* b, float* c, int64_t m,
                             int64_t k, int64_t n) {
  BlockedGemmBf16Gather(rows, offs, b, c, m, k, n, g_gemm_avx2);
}

void GemmBf16GatherRefNNRows(const float* const* rows, const int32_t* offs,
                             const uint16_t* b, float* c, int64_t m,
                             int64_t k, int64_t n) {
  BlockedGemmBf16Gather(rows, offs, b, c, m, k, n, /*use_avx2=*/false);
}

void GemmInt8AccNNRows(const float* a, const int8_t* q, const float* scales,
                       float* c, int64_t row_begin, int64_t row_end,
                       int64_t k, int64_t n) {
  BlockedGemmInt8(a, q, scales, c, row_begin, row_end, k, n, g_gemm_avx2);
}

void GemmInt8RefNNRows(const float* a, const int8_t* q, const float* scales,
                       float* c, int64_t row_begin, int64_t row_end,
                       int64_t k, int64_t n) {
  BlockedGemmInt8(a, q, scales, c, row_begin, row_end, k, n,
                  /*use_avx2=*/false);
}

void SpmmBf16AccRows(const int64_t* row_ptr, const int32_t* col_idx,
                     const uint16_t* values, const float* x, float* y,
                     int64_t row_begin, int64_t row_end, int64_t f) {
#if TB_KERNELS_X86
  if (g_gemm_avx2) {
    SpmmBf16RowsAvx2(row_ptr, col_idx, values, x, y, row_begin, row_end, f);
    return;
  }
#endif
  SpmmBf16RowsScalar(row_ptr, col_idx, values, x, y, row_begin, row_end, f);
}

void SpmmBf16RefRows(const int64_t* row_ptr, const int32_t* col_idx,
                     const uint16_t* values, const float* x, float* y,
                     int64_t row_begin, int64_t row_end, int64_t f) {
  SpmmBf16RowsScalar(row_ptr, col_idx, values, x, y, row_begin, row_end, f);
}

void GemmBatchedNNBf16Fused(exec::ExecutionContext& ctx, const float* a,
                            const uint16_t* b, float* c,
                            const int64_t* a_offsets, int64_t num_batches,
                            int64_t m, int64_t k, int64_t n,
                            const EpilogueSpec& epilogue) {
  const int64_t row_chunks = (m + kGemmRowChunk - 1) / kGemmRowChunk;
  ctx.ParallelFor(
      num_batches * row_chunks, /*grain=*/1, [&](int64_t begin, int64_t end) {
        for (int64_t task = begin; task < end; ++task) {
          const int64_t batch = task / row_chunks;
          const int64_t chunk = task % row_chunks;
          const int64_t row_begin = chunk * kGemmRowChunk;
          const int64_t row_end = std::min(m, row_begin + kGemmRowChunk);
          float* c_block = c + batch * m * n;
          GemmBf16AccNNRows(a + a_offsets[batch], b, c_block, row_begin,
                            row_end, k, n);
          ApplyEpilogueRows(c_block, row_begin, row_end, n, epilogue);
        }
      });
}

void GemmBatchedNNInt8Fused(exec::ExecutionContext& ctx, const float* a,
                            const int8_t* q, const float* scales, float* c,
                            const int64_t* a_offsets, int64_t num_batches,
                            int64_t m, int64_t k, int64_t n,
                            const EpilogueSpec& epilogue) {
  const int64_t row_chunks = (m + kGemmRowChunk - 1) / kGemmRowChunk;
  ctx.ParallelFor(
      num_batches * row_chunks, /*grain=*/1, [&](int64_t begin, int64_t end) {
        for (int64_t task = begin; task < end; ++task) {
          const int64_t batch = task / row_chunks;
          const int64_t chunk = task % row_chunks;
          const int64_t row_begin = chunk * kGemmRowChunk;
          const int64_t row_end = std::min(m, row_begin + kGemmRowChunk);
          float* c_block = c + batch * m * n;
          GemmInt8AccNNRows(a + a_offsets[batch], q, scales, c_block,
                            row_begin, row_end, k, n);
          ApplyEpilogueRows(c_block, row_begin, row_end, n, epilogue);
        }
      });
}

void SpmmBatchedBf16Fused(exec::ExecutionContext& ctx, const int64_t* row_ptr,
                          const int32_t* col_idx, const uint16_t* values,
                          const float* x, float* y, int64_t num_batches,
                          int64_t rows, int64_t cols, int64_t f,
                          const EpilogueSpec& epilogue) {
  const int64_t row_chunks = (rows + kSpmmRowChunk - 1) / kSpmmRowChunk;
  ctx.ParallelFor(
      num_batches * row_chunks, /*grain=*/1, [&](int64_t begin, int64_t end) {
        for (int64_t task = begin; task < end; ++task) {
          const int64_t batch = task / row_chunks;
          const int64_t chunk = task % row_chunks;
          const int64_t row_begin = chunk * kSpmmRowChunk;
          const int64_t row_end = std::min(rows, row_begin + kSpmmRowChunk);
          float* y_block = y + batch * rows * f;
          SpmmBf16AccRows(row_ptr, col_idx, values, x + batch * cols * f,
                          y_block, row_begin, row_end, f);
          ApplyEpilogueRows(y_block, row_begin, row_end, f, epilogue);
        }
      });
}

}  // namespace trafficbench::kernels
