#include "src/tensor/kernels.h"

#include <algorithm>

namespace trafficbench::kernels {

void GemmAccNNRows(const float* a, const float* b, float* c,
                   int64_t row_begin, int64_t row_end, int64_t k, int64_t n) {
  for (int64_t i = row_begin; i < row_end; ++i) {
    float* crow = c + i * n;
    const float* arow = a + i * k;
    for (int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void GemmAccNTRows(const float* a, const float* b, float* c,
                   int64_t row_begin, int64_t row_end, int64_t n, int64_t k) {
  for (int64_t i = row_begin; i < row_end; ++i) {
    const float* arow = a + i * n;
    float* crow = c + i * k;
    for (int64_t p = 0; p < k; ++p) {
      const float* brow = b + p * n;
      float acc = 0.0f;
      for (int64_t j = 0; j < n; ++j) acc += arow[j] * brow[j];
      crow[p] += acc;
    }
  }
}

void GemmAccTNRows(const float* a, const float* b, float* c,
                   int64_t p_begin, int64_t p_end, int64_t m, int64_t k,
                   int64_t n) {
  for (int64_t p = p_begin; p < p_end; ++p) {
    float* crow = c + p * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = a[i * k + p];
      if (av == 0.0f) continue;
      const float* brow = b + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void GemmBatchedNN(exec::ExecutionContext& ctx, const float* a,
                   const float* b, float* c, const int64_t* a_offsets,
                   const int64_t* b_offsets, int64_t num_batches, int64_t m,
                   int64_t k, int64_t n) {
  const int64_t row_chunks = (m + kGemmRowChunk - 1) / kGemmRowChunk;
  ctx.ParallelFor(
      num_batches * row_chunks, /*grain=*/1, [&](int64_t begin, int64_t end) {
        for (int64_t task = begin; task < end; ++task) {
          const int64_t batch = task / row_chunks;
          const int64_t chunk = task % row_chunks;
          const int64_t row_begin = chunk * kGemmRowChunk;
          const int64_t row_end = std::min(m, row_begin + kGemmRowChunk);
          GemmAccNNRows(a + a_offsets[batch], b + b_offsets[batch],
                        c + batch * m * n, row_begin, row_end, k, n);
        }
      });
}

void GemmBatchedNT(exec::ExecutionContext& ctx, const float* dc,
                   const float* b, float* da, const int64_t* da_offsets,
                   const int64_t* b_offsets, int64_t num_batches, int64_t m,
                   int64_t n, int64_t k) {
  const int64_t row_chunks = (m + kGemmRowChunk - 1) / kGemmRowChunk;
  ctx.ParallelFor(row_chunks, /*grain=*/1, [&](int64_t begin, int64_t end) {
    for (int64_t chunk = begin; chunk < end; ++chunk) {
      const int64_t row_begin = chunk * kGemmRowChunk;
      const int64_t row_end = std::min(m, row_begin + kGemmRowChunk);
      for (int64_t batch = 0; batch < num_batches; ++batch) {
        GemmAccNTRows(dc + batch * m * n, b + b_offsets[batch],
                      da + da_offsets[batch], row_begin, row_end, n, k);
      }
    }
  });
}

void GemmBatchedTN(exec::ExecutionContext& ctx, const float* a,
                   const float* dc, float* db, const int64_t* a_offsets,
                   const int64_t* db_offsets, int64_t num_batches, int64_t m,
                   int64_t k, int64_t n) {
  const int64_t row_chunks = (k + kGemmRowChunk - 1) / kGemmRowChunk;
  ctx.ParallelFor(row_chunks, /*grain=*/1, [&](int64_t begin, int64_t end) {
    for (int64_t chunk = begin; chunk < end; ++chunk) {
      const int64_t p_begin = chunk * kGemmRowChunk;
      const int64_t p_end = std::min(k, p_begin + kGemmRowChunk);
      for (int64_t batch = 0; batch < num_batches; ++batch) {
        GemmAccTNRows(a + a_offsets[batch], dc + batch * m * n,
                      db + db_offsets[batch], p_begin, p_end, m, k, n);
      }
    }
  });
}

}  // namespace trafficbench::kernels
