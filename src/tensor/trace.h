#ifndef TRAFFICBENCH_TENSOR_TRACE_H_
#define TRAFFICBENCH_TENSOR_TRACE_H_

// Tracing seam of the tensor engine (DESIGN.md §12).
//
// A Tracer rides one eager forward pass and records, per op, a TraceStep:
// the op's inputs/output (as TensorImpl identities), its profiler kind and
// FLOP estimate, and a *replay closure* that re-executes the op's numeric
// kernel on raw pointers. The plan compiler (src/plan) turns the recorded
// tape into a static InferencePlan; the executor (src/exec/plan_executor)
// then runs the closures against pre-bound buffers — no autograd nodes, no
// shape checks, no pool traffic on the hot path.
//
// Determinism contract: a replay closure must perform the exact same
// floating-point operations, per output element in the exact same order,
// as the eager op it was recorded from. Op sites guarantee this by sharing
// the kernel core between the eager call and the captured closure (same
// translation unit, same grains, same accumulation chains), so plan output
// is bit-identical to the eager forward at any thread count.
//
// Robustness: an op that creates a tensor through MakeOp without recording
// a step while a tracer is active is remembered as "untraced"; the plan
// compiler refuses to compile a tape whose dataflow passes through such a
// tensor (the value would be silently baked in as a constant). Host-side
// computations that *read* tensor data (e.g. time-of-day rollout features)
// must go through HostOp below to stay traceable.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/exec/execution_context.h"
#include "src/tensor/shape.h"
#include "src/tensor/tensor.h"

namespace trafficbench::trace {

/// Pointer bundle handed to a replay closure by the plan executor. Inputs
/// follow the recorded order; aux buffers (scratch the closure asked for
/// via TraceStep::aux_sizes) are pre-bound like the output.
struct ReplayArgs {
  const float* const* inputs = nullptr;
  float* output = nullptr;
  float* const* aux = nullptr;
};

using ReplayFn = std::function<void(const ReplayArgs&)>;

/// Structural role of a step, read by the plan compiler's peephole passes
/// (reshape elision, GEMM/SpMM/conv epilogue fusion).
enum class OpPattern : int {
  kOpaque = 0,
  kReshape,  // pure copy with a new shape; elided by slot aliasing
  kMatMul,   // fusion head: batched GEMM
  kSpMM,     // fusion head: batched sparse matmul
  kConv2d,   // fusion head: conv (activation-only epilogue)
  kAdd,      // fusable bias add (when one operand is a constant vector)
  kRelu,
  kSigmoid,
  kTanh,
  kLeakyRelu,
};

/// Epilogue geometry for fusion-head steps: `n` is the output's innermost
/// extent (the length a fused bias vector must have).
struct StepInfo {
  OpPattern pattern = OpPattern::kOpaque;
  int64_t n = 0;
  float leaky_slope = 0.0f;
  /// Index (into TraceStep::inputs) of the constant weight operand that
  /// precision lowering may pack, or -1 when the weight is captured inside
  /// the replay closure (SpMM's CSR support). Only meaningful on steps that
  /// provide make_lowered.
  int weight_input = -1;
};

/// Factory for a fused replay closure, provided by fusion-head op sites.
/// `act` selects the epilogue activation (kernels::EpilogueAct as int, to
/// keep this header light); when `with_bias` is true the bias vector is the
/// step's last input.
using FusedReplayFactory =
    std::function<ReplayFn(int act, float slope, bool with_bias)>;

/// Factory for a reduced-precision replay closure (DESIGN.md §13), provided
/// by op sites whose constant weight operand can be packed at plan-compile
/// time. `precision` is kernels::Precision as int; `weights` points at the
/// constant weight data when StepInfo::weight_input >= 0 (null otherwise —
/// the site packs from state captured in the closure). The epilogue
/// parameters mirror FusedReplayFactory so lowering composes with fusion;
/// when StepInfo::weight_input >= 0 the returned closure no longer reads
/// that input (the compiler removes it from the step), shifting any bias
/// input down by one. On success `*packed_bytes` reports the packed storage
/// size; a null return means the step stays at fp32.
using LoweredReplayFactory = std::function<ReplayFn(
    int precision, int act, float slope, bool with_bias, const float* weights,
    int64_t* packed_bytes)>;

struct TraceStep {
  const char* name = "";
  exec::OpKind kind = exec::OpKind::kUnary;
  double flops = 0.0;
  StepInfo info;
  std::vector<std::shared_ptr<internal_tensor::TensorImpl>> inputs;
  std::shared_ptr<internal_tensor::TensorImpl> output;
  /// Sizes (in floats) of scratch buffers the replay needs, pre-bound by
  /// the executor and passed via ReplayArgs::aux.
  std::vector<int64_t> aux_sizes;
  ReplayFn replay;
  FusedReplayFactory make_fused;      // fusion heads only
  LoweredReplayFactory make_lowered;  // packable-weight steps only
};

/// Records one forward pass. Activate with Tracer::Scope around the eager
/// forward; op sites call Record() through the thread-local binding. Not
/// thread-safe: one tracer, one thread, one forward.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  const std::vector<TraceStep>& steps() const { return steps_; }
  bool failed() const { return failed_; }
  const std::string& failure() const { return failure_; }

  /// True when `impl` was created by MakeOp under this tracer but never
  /// recorded as a step output (an unhooked op; unsafe to compile through).
  bool IsUntraced(const internal_tensor::TensorImpl* impl) const {
    return untraced_.count(impl) > 0;
  }

  /// RAII thread-local activation.
  class Scope {
   public:
    explicit Scope(Tracer* tracer);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Tracer* previous_;
  };

  /// The tracer bound to this thread, or null.
  static Tracer* Active();
  /// Appends a step to the active tracer (no-op without one).
  static void Record(TraceStep step);
  /// Poisons the active trace: `op_name` cannot be replayed.
  static void Fail(const char* op_name);
  /// MakeOp bookkeeping: marks `impl` as produced-but-not-yet-recorded.
  static void NoteOpOutput(const internal_tensor::TensorImpl* impl);

 private:
  std::vector<TraceStep> steps_;
  std::unordered_set<const internal_tensor::TensorImpl*> untraced_;
  bool failed_ = false;
  std::string failure_;
};

/// Host-computed op: runs `fn` over the inputs' raw data into a fresh
/// tensor of `out_shape`, eagerly and on every plan replay. This is the
/// seam for forward-pass logic that must read tensor *values* on the host
/// (e.g. autoregressive time-of-day features): routed through HostOp it
/// stays input-dependent in the plan instead of being baked in as a
/// constant. The output is an autograd leaf (like Tensor::FromVector).
/// `fn` must write every output element and be deterministic.
using HostFn = std::function<void(const float* const* inputs, float* output)>;
Tensor HostOp(const char* name, const std::vector<Tensor>& inputs,
              const Shape& out_shape, HostFn fn);

}  // namespace trafficbench::trace

#endif  // TRAFFICBENCH_TENSOR_TRACE_H_
