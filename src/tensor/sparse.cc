#include "src/tensor/sparse.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"

namespace trafficbench::sparse {

std::shared_ptr<const CsrMatrix> CsrMatrix::FromDense(const Tensor& dense) {
  TB_CHECK(dense.defined());
  TB_CHECK_EQ(dense.rank(), 2);
  const int64_t rows = dense.dim(0);
  const int64_t cols = dense.dim(1);
  const float* d = dense.data();

  auto csr = std::shared_ptr<CsrMatrix>(new CsrMatrix());
  csr->rows_ = rows;
  csr->cols_ = cols;
  csr->row_ptr_.assign(rows + 1, 0);

  int64_t nnz = 0;
  for (int64_t i = 0; i < rows * cols; ++i) nnz += d[i] != 0.0f;
  csr->col_idx_.reserve(nnz);
  csr->values_.reserve(nnz);

  // Row-major scan: columns come out strictly ascending within each row,
  // which the SpMM determinism contract relies on.
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      const float v = d[i * cols + j];
      if (v != 0.0f) {
        csr->col_idx_.push_back(static_cast<int32_t>(j));
        csr->values_.push_back(v);
      }
    }
    csr->row_ptr_[i + 1] = static_cast<int64_t>(csr->values_.size());
  }

  csr->BuildTranspose();
  return csr;
}

void CsrMatrix::BuildTranspose() {
  // Transpose CSR by counting sort over the forward arrays. Scattering the
  // forward entries in order makes the transpose's column indices (original
  // row indices) ascending within each transpose row automatically.
  const int64_t nnz = static_cast<int64_t>(values_.size());
  t_row_ptr_.assign(cols_ + 1, 0);
  t_col_idx_.resize(nnz);
  t_values_.resize(nnz);
  for (int32_t j : col_idx_) ++t_row_ptr_[j + 1];
  for (int64_t j = 0; j < cols_; ++j) {
    t_row_ptr_[j + 1] += t_row_ptr_[j];
  }
  std::vector<int64_t> cursor(t_row_ptr_.begin(), t_row_ptr_.end() - 1);
  for (int64_t i = 0; i < rows_; ++i) {
    for (int64_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      const int32_t j = col_idx_[k];
      const int64_t slot = cursor[j]++;
      t_col_idx_[slot] = static_cast<int32_t>(i);
      t_values_[slot] = values_[k];
    }
  }
}

std::shared_ptr<const CsrMatrix> CsrMatrix::FromCoo(int64_t rows, int64_t cols,
                                                    std::vector<CooEntry> coo) {
  TB_CHECK_GE(rows, 0);
  TB_CHECK_GE(cols, 0);
  // Stable sort keeps duplicates of a coordinate in original order, so their
  // left-to-right accumulation matches whatever sum the caller would have
  // produced writing into a dense tensor sequentially.
  std::stable_sort(coo.begin(), coo.end(),
                   [](const CooEntry& a, const CooEntry& b) {
                     return a.row != b.row ? a.row < b.row : a.col < b.col;
                   });

  auto csr = std::shared_ptr<CsrMatrix>(new CsrMatrix());
  csr->rows_ = rows;
  csr->cols_ = cols;
  csr->row_ptr_.assign(rows + 1, 0);
  csr->col_idx_.reserve(coo.size());
  csr->values_.reserve(coo.size());

  for (size_t i = 0; i < coo.size();) {
    const int32_t row = coo[i].row;
    const int32_t col = coo[i].col;
    TB_CHECK(row >= 0 && row < rows && col >= 0 && col < cols)
        << "FromCoo: entry (" << row << ", " << col << ") out of bounds";
    float sum = 0.0f;
    for (; i < coo.size() && coo[i].row == row && coo[i].col == col; ++i) {
      sum += coo[i].value;
    }
    if (sum != 0.0f) {
      csr->col_idx_.push_back(col);
      csr->values_.push_back(sum);
      csr->row_ptr_[row + 1] = static_cast<int64_t>(csr->values_.size());
    }
  }
  // Rows with no surviving entries still need cumulative pointers.
  for (int64_t i = 0; i < rows; ++i) {
    csr->row_ptr_[i + 1] = std::max(csr->row_ptr_[i + 1], csr->row_ptr_[i]);
  }

  csr->BuildTranspose();
  return csr;
}

std::shared_ptr<const CsrMatrix> CsrMatrix::Multiply(const CsrMatrix& a,
                                                     const CsrMatrix& b) {
  TB_CHECK_EQ(a.cols(), b.rows());
  const int64_t rows = a.rows();
  const int64_t cols = b.cols();

  auto csr = std::shared_ptr<CsrMatrix>(new CsrMatrix());
  csr->rows_ = rows;
  csr->cols_ = cols;
  csr->row_ptr_.assign(rows + 1, 0);

  // Dense scratch row: accumulate each output row over a's columns in
  // ascending order, then sweep the touched columns in ascending order. The
  // accumulation order is a pure function of the two sparsity patterns.
  std::vector<float> scratch(cols, 0.0f);
  std::vector<char> touched(cols, 0);
  std::vector<int32_t> touched_cols;
  for (int64_t i = 0; i < rows; ++i) {
    touched_cols.clear();
    for (int64_t ka = a.row_ptr_[i]; ka < a.row_ptr_[i + 1]; ++ka) {
      const int32_t k = a.col_idx_[ka];
      const float av = a.values_[ka];
      for (int64_t kb = b.row_ptr_[k]; kb < b.row_ptr_[k + 1]; ++kb) {
        const int32_t j = b.col_idx_[kb];
        scratch[j] += av * b.values_[kb];
        if (!touched[j]) {
          touched[j] = 1;
          touched_cols.push_back(j);
        }
      }
    }
    std::sort(touched_cols.begin(), touched_cols.end());
    for (int32_t j : touched_cols) {
      if (scratch[j] != 0.0f) {
        csr->col_idx_.push_back(j);
        csr->values_.push_back(scratch[j]);
      }
      scratch[j] = 0.0f;
      touched[j] = 0;
    }
    csr->row_ptr_[i + 1] = static_cast<int64_t>(csr->values_.size());
  }

  csr->BuildTranspose();
  return csr;
}

std::shared_ptr<const CsrMatrix> CsrMatrix::FromDenseIfSparse(
    const Tensor& dense, double max_density) {
  TB_CHECK(dense.defined());
  TB_CHECK_EQ(dense.rank(), 2);
  const int64_t numel = dense.numel();
  const float* d = dense.data();
  int64_t nnz = 0;
  for (int64_t i = 0; i < numel; ++i) nnz += d[i] != 0.0f;
  if (numel > 0 &&
      static_cast<double>(nnz) / static_cast<double>(numel) > max_density) {
    return nullptr;
  }
  return FromDense(dense);
}

double CsrMatrix::density() const {
  const int64_t numel = rows_ * cols_;
  return numel > 0 ? static_cast<double>(nnz()) / static_cast<double>(numel)
                   : 0.0;
}

Tensor CsrMatrix::ToDense() const {
  std::vector<float> out(rows_ * cols_, 0.0f);
  for (int64_t i = 0; i < rows_; ++i) {
    for (int64_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      out[i * cols_ + col_idx_[k]] = values_[k];
    }
  }
  return Tensor::FromVector(Shape({rows_, cols_}), std::move(out));
}

}  // namespace trafficbench::sparse
