#include "src/tensor/sparse.h"

#include <utility>

#include "src/util/check.h"

namespace trafficbench::sparse {

std::shared_ptr<const CsrMatrix> CsrMatrix::FromDense(const Tensor& dense) {
  TB_CHECK(dense.defined());
  TB_CHECK_EQ(dense.rank(), 2);
  const int64_t rows = dense.dim(0);
  const int64_t cols = dense.dim(1);
  const float* d = dense.data();

  auto csr = std::shared_ptr<CsrMatrix>(new CsrMatrix());
  csr->rows_ = rows;
  csr->cols_ = cols;
  csr->row_ptr_.assign(rows + 1, 0);

  int64_t nnz = 0;
  for (int64_t i = 0; i < rows * cols; ++i) nnz += d[i] != 0.0f;
  csr->col_idx_.reserve(nnz);
  csr->values_.reserve(nnz);

  // Row-major scan: columns come out strictly ascending within each row,
  // which the SpMM determinism contract relies on.
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      const float v = d[i * cols + j];
      if (v != 0.0f) {
        csr->col_idx_.push_back(static_cast<int32_t>(j));
        csr->values_.push_back(v);
      }
    }
    csr->row_ptr_[i + 1] = static_cast<int64_t>(csr->values_.size());
  }

  // Transpose CSR by counting sort over the forward arrays. Scattering the
  // forward entries in order makes the transpose's column indices (original
  // row indices) ascending within each transpose row automatically.
  csr->t_row_ptr_.assign(cols + 1, 0);
  csr->t_col_idx_.resize(nnz);
  csr->t_values_.resize(nnz);
  for (int32_t j : csr->col_idx_) ++csr->t_row_ptr_[j + 1];
  for (int64_t j = 0; j < cols; ++j) {
    csr->t_row_ptr_[j + 1] += csr->t_row_ptr_[j];
  }
  std::vector<int64_t> cursor(csr->t_row_ptr_.begin(),
                              csr->t_row_ptr_.end() - 1);
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t k = csr->row_ptr_[i]; k < csr->row_ptr_[i + 1]; ++k) {
      const int32_t j = csr->col_idx_[k];
      const int64_t slot = cursor[j]++;
      csr->t_col_idx_[slot] = static_cast<int32_t>(i);
      csr->t_values_[slot] = csr->values_[k];
    }
  }
  return csr;
}

std::shared_ptr<const CsrMatrix> CsrMatrix::FromDenseIfSparse(
    const Tensor& dense, double max_density) {
  TB_CHECK(dense.defined());
  TB_CHECK_EQ(dense.rank(), 2);
  const int64_t numel = dense.numel();
  const float* d = dense.data();
  int64_t nnz = 0;
  for (int64_t i = 0; i < numel; ++i) nnz += d[i] != 0.0f;
  if (numel > 0 &&
      static_cast<double>(nnz) / static_cast<double>(numel) > max_density) {
    return nullptr;
  }
  return FromDense(dense);
}

double CsrMatrix::density() const {
  const int64_t numel = rows_ * cols_;
  return numel > 0 ? static_cast<double>(nnz()) / static_cast<double>(numel)
                   : 0.0;
}

Tensor CsrMatrix::ToDense() const {
  std::vector<float> out(rows_ * cols_, 0.0f);
  for (int64_t i = 0; i < rows_; ++i) {
    for (int64_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      out[i * cols_ + col_idx_[k]] = values_[k];
    }
  }
  return Tensor::FromVector(Shape({rows_, cols_}), std::move(out));
}

}  // namespace trafficbench::sparse
