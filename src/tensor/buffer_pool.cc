#include "src/tensor/buffer_pool.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace trafficbench {
namespace {

constexpr int64_t kFloatBytes = static_cast<int64_t>(sizeof(float));

}  // namespace

BufferPool::BufferPool(int64_t max_pooled_bytes)
    : max_pooled_bytes_(max_pooled_bytes) {}

int64_t BufferPool::BucketCapacity(int64_t n) {
  int64_t cap = kMinBucketFloats;
  while (cap < n) cap <<= 1;
  return cap;
}

std::vector<float> BufferPool::Acquire(int64_t n) {
  const int64_t cap = BucketCapacity(n);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = buckets_.find(cap);
    if (it != buckets_.end() && !it->second.empty()) {
      std::vector<float> buffer = std::move(it->second.back());
      it->second.pop_back();
      ++stats_.hits;
      stats_.pooled_bytes -= cap * kFloatBytes;
      stats_.served_bytes += cap * kFloatBytes;
      buffer.resize(static_cast<size_t>(n));
      return buffer;
    }
    ++stats_.misses;
  }
  std::vector<float> buffer;
  buffer.reserve(static_cast<size_t>(cap));
  buffer.resize(static_cast<size_t>(n));
  return buffer;
}

std::vector<float> BufferPool::AcquireZeroed(int64_t n) {
  std::vector<float> buffer = Acquire(n);
  std::fill(buffer.begin(), buffer.end(), 0.0f);
  return buffer;
}

void BufferPool::Release(std::vector<float>&& buffer) {
  const int64_t cap = static_cast<int64_t>(buffer.capacity());
  // Buffers that never came from the pool (capacity not a bucket size) would
  // poison the bucket keyed by their exact capacity; only exact bucket
  // capacities are accepted so Acquire's lookup always finds full-size
  // buffers.
  const bool bucket_sized = cap >= kMinBucketFloats && BucketCapacity(cap) == cap;
  std::lock_guard<std::mutex> lock(mu_);
  if (!bucket_sized ||
      stats_.pooled_bytes + cap * kFloatBytes > max_pooled_bytes_) {
    ++stats_.dropped;
    return;  // `buffer` frees normally as the rvalue dies at the caller.
  }
  ++stats_.releases;
  stats_.pooled_bytes += cap * kFloatBytes;
  buckets_[cap].push_back(std::move(buffer));
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void BufferPool::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t pooled = stats_.pooled_bytes;
  stats_ = Stats{};
  stats_.pooled_bytes = pooled;  // still cached; only the counters reset
}

void BufferPool::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  buckets_.clear();
  stats_.pooled_bytes = 0;
}

std::string BufferPool::Summary() const {
  Stats s = stats();
  const int64_t acquires = s.hits + s.misses;
  if (acquires == 0) return "";
  char line[160];
  std::snprintf(line, sizeof(line),
                "pool: %.1f%% hit (%lld/%lld acquires), %.1f MiB pooled, "
                "%lld dropped",
                100.0 * s.HitRate(), static_cast<long long>(s.hits),
                static_cast<long long>(acquires),
                static_cast<double>(s.pooled_bytes) / (1024.0 * 1024.0),
                static_cast<long long>(s.dropped));
  return std::string(line);
}

}  // namespace trafficbench
