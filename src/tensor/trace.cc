#include "src/tensor/trace.h"

#include <utility>

#include "src/tensor/op_common.h"

namespace trafficbench::trace {
namespace {

thread_local Tracer* t_active = nullptr;

}  // namespace

Tracer::Scope::Scope(Tracer* tracer) : previous_(t_active) { t_active = tracer; }

Tracer::Scope::~Scope() { t_active = previous_; }

Tracer* Tracer::Active() { return t_active; }

void Tracer::Record(TraceStep step) {
  Tracer* tracer = t_active;
  if (tracer == nullptr) return;
  tracer->untraced_.erase(step.output.get());
  tracer->steps_.push_back(std::move(step));
}

void Tracer::Fail(const char* op_name) {
  Tracer* tracer = t_active;
  if (tracer == nullptr) return;
  if (!tracer->failed_) {
    tracer->failed_ = true;
    tracer->failure_ = std::string("op has no replay: ") + op_name;
  }
}

void Tracer::NoteOpOutput(const internal_tensor::TensorImpl* impl) {
  Tracer* tracer = t_active;
  if (tracer == nullptr) return;
  tracer->untraced_.insert(impl);
}

Tensor HostOp(const char* name, const std::vector<Tensor>& inputs,
              const Shape& out_shape, HostFn fn) {
  using internal_tensor::MakeOp;
  std::vector<const float*> in_ptrs;
  in_ptrs.reserve(inputs.size());
  for (const Tensor& t : inputs) in_ptrs.push_back(t.data());
  std::vector<float> out = internal_tensor::AcquireBuffer(out_shape.numel());
  fn(in_ptrs.data(), out.data());
  // No parent edges: the output is an autograd leaf, matching the
  // FromVector-built tensors these host computations used to produce.
  Tensor result =
      MakeOp(out_shape, std::move(out), /*inputs=*/{}, /*backward=*/nullptr);
  if (Tracer::Active() != nullptr) {
    TraceStep step;
    step.name = name;
    step.kind = exec::OpKind::kDataMovement;
    step.flops = 0.0;
    step.inputs.reserve(inputs.size());
    for (const Tensor& t : inputs) step.inputs.push_back(t.impl());
    step.output = result.impl();
    step.replay = [fn = std::move(fn)](const ReplayArgs& args) {
      fn(args.inputs, args.output);
    };
    Tracer::Record(std::move(step));
  }
  return result;
}

}  // namespace trafficbench::trace
