#ifndef TRAFFICBENCH_TENSOR_SPARSE_H_
#define TRAFFICBENCH_TENSOR_SPARSE_H_

// Compressed-sparse-row support matrices for graph propagation.
//
// Road-network supports (thresholded Gaussian adjacencies and the
// random-walk / Chebyshev operators derived from them) are mostly zeros on
// real sensor networks — METR-LA's released 207-node adjacency keeps ~4% of
// entries, PeMS-BAY's 325-node one ~2.5% — so the N x N side of every graph
// convolution can skip the zero columns entirely. A CsrMatrix is an
// immutable snapshot of one such support: it is built once at model-build
// time (supports are constants, never trained) and consumed by the
// SparseMatMul op below.
//
// The matrix stores BOTH the forward CSR arrays and the CSR of its
// transpose. The forward arrays drive the SpMM forward pass
// (y = A * x); the transpose arrays drive the backward pass
// (dx = A^T * dy) with the exact same row-parallel kernel. Both are built
// eagerly at construction (a counting sort over the forward arrays), which
// keeps the type immutable and lock-free to share across threads.
//
// Determinism: column indices are strictly ascending within every row of
// both directions, so each output element's accumulation chain is a pure
// function of the sparsity pattern — see kernels.h for the contract that
// makes SpMM bit-identical at any thread count.

#include <cstdint>
#include <memory>
#include <vector>

#include "src/tensor/tensor.h"

namespace trafficbench::sparse {

/// Supports denser than this stay on the blocked dense GEMM path: with a
/// register-tiled AVX2 GEMM on the other side, indirect column gathers only
/// pay off when most of the inner dimension can be skipped. The synthetic
/// corridor adjacencies (all-pairs Gaussian kernel, ~58% dense) fall back;
/// identity-like Chebyshev T0 terms, windowed STSGCN block adjacencies and
/// real-data-scale supports convert.
inline constexpr double kDefaultDensityThreshold = 0.25;

/// One nonzero of a COO (coordinate-list) matrix.
struct CooEntry {
  int32_t row = 0;
  int32_t col = 0;
  float value = 0.0f;
};

/// Immutable CSR matrix (forward + transpose index arrays). Create through
/// the factories and share as CsrPtr; the SparseMatMul autograd op and the
/// SpMM kernels read it concurrently without synchronization.
class CsrMatrix {
 public:
  /// Converts a dense [rows, cols] tensor, keeping every nonzero entry.
  static std::shared_ptr<const CsrMatrix> FromDense(const Tensor& dense);

  /// Like FromDense, but returns null when nnz/numel exceeds `max_density`
  /// — the caller keeps such supports on the dense GEMM path.
  static std::shared_ptr<const CsrMatrix> FromDenseIfSparse(
      const Tensor& dense, double max_density = kDefaultDensityThreshold);

  /// Builds directly from coordinate-list entries in O(nnz log nnz) — the
  /// sparse-native build path for city-scale supports, which must never
  /// materialize (or scan) an N x N dense tensor. Entries may arrive in any
  /// order; duplicates of the same (row, col) are accumulated in ascending
  /// (row, col, original-position) order, and exact-zero values (including
  /// zero-summing duplicates) are dropped, so the result is bit-identical
  /// to FromDense over the equivalent dense tensor.
  static std::shared_ptr<const CsrMatrix> FromCoo(int64_t rows, int64_t cols,
                                                  std::vector<CooEntry> coo);

  /// Sparse-sparse product a @ b as a new CSR matrix. Each output row is
  /// accumulated over a's columns in ascending order (a dense scratch row of
  /// b->cols() floats), a pure function of the two sparsity patterns —
  /// deterministic across runs and thread counts. Used to build diffusion
  /// powers (A^2) on the dense-free support path.
  static std::shared_ptr<const CsrMatrix> Multiply(const CsrMatrix& a,
                                                   const CsrMatrix& b);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }
  /// nnz / (rows * cols).
  double density() const;

  /// Materializes the matrix back to a dense [rows, cols] tensor.
  Tensor ToDense() const;

  /// Forward CSR arrays: row_ptr has rows()+1 entries; col_idx/values hold
  /// nnz() entries with strictly ascending columns within each row.
  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int32_t>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }

  /// CSR arrays of the transpose ([cols, rows]); same ordering guarantees.
  const std::vector<int64_t>& t_row_ptr() const { return t_row_ptr_; }
  const std::vector<int32_t>& t_col_idx() const { return t_col_idx_; }
  const std::vector<float>& t_values() const { return t_values_; }

 private:
  CsrMatrix() = default;

  /// Builds the transpose arrays by counting sort over the (already final)
  /// forward arrays. Shared by every factory.
  void BuildTranspose();

  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<int64_t> row_ptr_;
  std::vector<int32_t> col_idx_;
  std::vector<float> values_;
  std::vector<int64_t> t_row_ptr_;
  std::vector<int32_t> t_col_idx_;
  std::vector<float> t_values_;
};

using CsrPtr = std::shared_ptr<const CsrMatrix>;

}  // namespace trafficbench::sparse

namespace trafficbench {

/// Sparse graph propagation: support [R, C] applied to features
/// [..., C, F] -> [..., R, F] (leading axes are batch; the support is
/// shared across batches). Differentiable w.r.t. `features` only — support
/// matrices are constants, so no gradient flows into the CSR values.
/// FLOPs are profiled as 2 * nnz * F per batch (OpKind::kSpMM), the true
/// cost, not the dense 2 * R * C * F.
Tensor SparseMatMul(const sparse::CsrPtr& support, const Tensor& features);

}  // namespace trafficbench

#endif  // TRAFFICBENCH_TENSOR_SPARSE_H_
