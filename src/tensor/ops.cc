// Differentiable tensor ops. Shape/autograd logic lives here; the numeric
// loops are dispatched through the kernel seam (kernels.h) onto the current
// ExecutionContext, which selects serial or thread-pool execution and
// records per-op profiling. See execution_context.h for the deterministic
// chunking contract that keeps results bit-identical across thread counts.
//
// Tracing seam (DESIGN.md §12): when a trace::Tracer is active, every op
// additionally records a TraceStep whose replay closure captures the same
// forward functor / geometry the eager dispatch just used and re-runs the
// identical kernel core on raw pointers. Replay closures never touch the
// buffer pool — broadcast/permute scratch is pre-bound by the plan executor
// through TraceStep::aux_sizes — and never build autograd state.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <mutex>
#include <utility>
#include <vector>

#include "src/exec/execution_context.h"
#include "src/tensor/conv_core.h"
#include "src/tensor/kernels.h"
#include "src/tensor/op_common.h"
#include "src/tensor/partitioned.h"
#include "src/tensor/sparse.h"
#include "src/tensor/tensor.h"
#include "src/tensor/trace.h"
#include "src/util/check.h"
#include "src/util/fault.h"

namespace trafficbench {

namespace {

using internal_tensor::AccumulateGrad;
using internal_tensor::AcquireBuffer;
using internal_tensor::AcquireZeroedBuffer;
using internal_tensor::BroadcastStrides;
using internal_tensor::MakeOp;
using internal_tensor::ReduceGradToShape;
using internal_tensor::ReleaseBuffer;
using internal_tensor::TensorImpl;

using ImplPtr = std::shared_ptr<TensorImpl>;

exec::ExecutionContext& Ctx() { return exec::ExecutionContext::Current(); }

/// Corrupts a freshly packed reduced-precision weight panel when the
/// precision_verify fault site fires: XORs bit 0x40 into a 64-byte stripe
/// at the panel's midpoint. For bf16 panels the stripe's odd bytes are
/// exponent bytes (values scale by 2^±64); for int8 panels each byte moves
/// by ±64 of a ±127 range — either way far outside the serving registry's
/// epsilon bounds, which must reject the plan (the downgrade-ladder test).
/// The global injector is not thread-safe; concurrent plan compiles for
/// different models serialize here (cf. the plan_compile mutex in
/// CompileBucketLocked).
void MaybeCorruptPackedPanel(void* data, size_t bytes) {
  static std::mutex fault_mu;
  std::lock_guard<std::mutex> lock(fault_mu);
  if (bytes == 0 ||
      !FaultInjector::Global().Should(FaultSite::kPrecisionVerify)) {
    return;
  }
  unsigned char* p = static_cast<unsigned char*>(data);
  const size_t begin = bytes / 2;
  const size_t end = std::min(bytes, begin + 64);
  for (size_t i = begin; i < end; ++i) p[i] ^= 0x40u;
}

/// Broadcast-materializes `src` (of shape `from`) to `target` into `out`
/// (caller-provided, target.numel() floats). The shared core of eager
/// broadcast expansion and its plan replay.
void ExpandDataInto(const float* src, const Shape& from, const Shape& target,
                    float* out) {
  const int64_t n = target.numel();
  if (from == target) {
    std::memcpy(out, src, sizeof(float) * n);
    return;
  }
  const std::vector<int64_t>& out_dims = target.dims();
  const int out_rank = target.rank();
  const std::vector<int64_t> strides =
      BroadcastStrides(from, out_rank, out_dims);
  std::vector<int64_t> index(out_rank, 0);
  int64_t offset = 0;
  for (int64_t linear = 0; linear < n; ++linear) {
    out[linear] = src[offset];
    for (int axis = out_rank - 1; axis >= 0; --axis) {
      ++index[axis];
      offset += strides[axis];
      if (index[axis] < out_dims[axis]) break;
      offset -= strides[axis] * out_dims[axis];
      index[axis] = 0;
    }
  }
}

/// Materializes `src` (of shape `from`) broadcast to `target` into a pooled
/// buffer. Callers own the result: move it into MakeOp or ReleaseBuffer it.
std::vector<float> ExpandData(const float* src, const Shape& from,
                              const Shape& target) {
  std::vector<float> out = AcquireBuffer(target.numel());
  ExpandDataInto(src, from, target, out.data());
  return out;
}

/// Materializes `t` broadcast to `target` as a flat (pooled) buffer.
std::vector<float> ExpandToShape(const Tensor& t, const Shape& target) {
  return ExpandData(t.data(), t.shape(), target);
}

// ---- Generic unary op -------------------------------------------------------

/// fwd(x) -> y; dydx(x, y) -> local derivative. `name`/`pattern` feed the
/// tracing seam (pattern lets the plan compiler fuse activation tails).
template <typename Fwd, typename Dydx>
Tensor Unary(const char* name, trace::OpPattern pattern, const Tensor& x,
             Fwd fwd, Dydx dydx, float leaky_slope = 0.0f) {
  TB_CHECK(x.defined());
  const std::vector<float>& xd = x.impl()->data;
  const int64_t n = static_cast<int64_t>(xd.size());
  std::vector<float> out = AcquireBuffer(n);
  {
    exec::ScopedOpTimer timer(exec::OpKind::kUnary, static_cast<double>(n));
    const float* xp = xd.data();
    float* op = out.data();
    kernels::ParallelMap(Ctx(), n, [&](int64_t i) { op[i] = fwd(xp[i]); });
  }
  ImplPtr xi = x.impl();
  Tensor result = MakeOp(x.shape(), std::move(out), {x},
                [xi, dydx](TensorImpl& self) {
                  const int64_t count =
                      static_cast<int64_t>(xi->data.size());
                  exec::ScopedOpTimer timer(exec::OpKind::kUnaryBackward,
                                            2.0 * count);
                  std::vector<float> gx = AcquireBuffer(count);
                  const float* xp = xi->data.data();
                  const float* yp = self.data.data();
                  const float* gp = self.grad.data();
                  float* gxp = gx.data();
                  kernels::ParallelMap(Ctx(), count, [&](int64_t i) {
                    gxp[i] = dydx(xp[i], yp[i]) * gp[i];
                  });
                  AccumulateGrad(xi.get(), gx);
                  ReleaseBuffer(std::move(gx));
                });
  if (trace::Tracer::Active() != nullptr) {
    trace::TraceStep step;
    step.name = name;
    step.kind = exec::OpKind::kUnary;
    step.flops = static_cast<double>(n);
    step.info.pattern = pattern;
    step.info.leaky_slope = leaky_slope;
    step.inputs = {x.impl()};
    step.output = result.impl();
    step.replay = [fwd, n](const trace::ReplayArgs& args) {
      exec::ScopedOpTimer timer(exec::OpKind::kUnary, static_cast<double>(n));
      const float* xp = args.inputs[0];
      float* op = args.output;
      kernels::ParallelMap(Ctx(), n, [&](int64_t i) { op[i] = fwd(xp[i]); });
    };
    trace::Tracer::Record(std::move(step));
  }
  return result;
}

// ---- Generic broadcasting binary op -----------------------------------------

/// fwd(a, b) -> out; dfda(a, b) and dfdb(a, b) give local derivatives.
/// `name`/`pattern` feed the tracing seam (kAdd marks bias-add candidates).
template <typename Fwd, typename Dfda, typename Dfdb>
Tensor Binary(const char* name, trace::OpPattern pattern, const Tensor& a,
              const Tensor& b, Fwd fwd, Dfda dfda, Dfdb dfdb) {
  TB_CHECK(a.defined() && b.defined());
  const Shape out_shape = Shape::Broadcast(a.shape(), b.shape());
  // Same-shape operands (the common case) are read in place; only genuinely
  // broadcast operands are materialized, into pooled scratch.
  const bool a_same = a.shape() == out_shape;
  const bool b_same = b.shape() == out_shape;
  std::vector<float> av, bv;
  if (!a_same) av = ExpandToShape(a, out_shape);
  if (!b_same) bv = ExpandToShape(b, out_shape);
  const int64_t n = out_shape.numel();
  std::vector<float> out = AcquireBuffer(n);
  {
    exec::ScopedOpTimer timer(exec::OpKind::kBinary, static_cast<double>(n));
    const float* ap = a_same ? a.data() : av.data();
    const float* bp = b_same ? b.data() : bv.data();
    float* op = out.data();
    kernels::ParallelMap(Ctx(), n,
                         [&](int64_t i) { op[i] = fwd(ap[i], bp[i]); });
  }
  if (!a_same) ReleaseBuffer(std::move(av));
  if (!b_same) ReleaseBuffer(std::move(bv));
  ImplPtr ai = a.impl();
  ImplPtr bi = b.impl();
  const Shape a_shape = a.shape();
  const Shape b_shape = b.shape();
  Tensor result = MakeOp(
      out_shape, std::move(out), {a, b},
      [ai, bi, a_same, b_same, a_shape, b_shape, out_shape, dfda,
       dfdb](TensorImpl& self) {
        const int64_t n = static_cast<int64_t>(self.grad.size());
        exec::ScopedOpTimer timer(exec::OpKind::kBinaryBackward, 2.0 * n);
        // Broadcast operands are re-expanded from the parent data (immutable
        // between forward and backward) instead of captured, so the scratch
        // round-trips through the pool within this call.
        std::vector<float> av, bv;
        if (!a_same) av = ExpandData(ai->data.data(), a_shape, out_shape);
        if (!b_same) bv = ExpandData(bi->data.data(), b_shape, out_shape);
        const float* ap = a_same ? ai->data.data() : av.data();
        const float* bp = b_same ? bi->data.data() : bv.data();
        const float* gp = self.grad.data();
        if (ai->requires_grad) {
          std::vector<float> ga = AcquireBuffer(n);
          float* gap = ga.data();
          kernels::ParallelMap(Ctx(), n, [&](int64_t i) {
            gap[i] = dfda(ap[i], bp[i]) * gp[i];
          });
          if (a_same) {
            AccumulateGrad(ai.get(), ga);
          } else {
            std::vector<float> reduced =
                ReduceGradToShape(ga, out_shape, a_shape);
            AccumulateGrad(ai.get(), reduced);
            ReleaseBuffer(std::move(reduced));
          }
          ReleaseBuffer(std::move(ga));
        }
        if (bi->requires_grad) {
          std::vector<float> gb = AcquireBuffer(n);
          float* gbp = gb.data();
          kernels::ParallelMap(Ctx(), n, [&](int64_t i) {
            gbp[i] = dfdb(ap[i], bp[i]) * gp[i];
          });
          if (b_same) {
            AccumulateGrad(bi.get(), gb);
          } else {
            std::vector<float> reduced =
                ReduceGradToShape(gb, out_shape, b_shape);
            AccumulateGrad(bi.get(), reduced);
            ReleaseBuffer(std::move(reduced));
          }
          ReleaseBuffer(std::move(gb));
        }
        if (!a_same) ReleaseBuffer(std::move(av));
        if (!b_same) ReleaseBuffer(std::move(bv));
      });
  if (trace::Tracer::Active() != nullptr) {
    trace::TraceStep step;
    step.name = name;
    step.kind = exec::OpKind::kBinary;
    step.flops = static_cast<double>(n);
    step.info.pattern = pattern;
    step.info.n = out_shape.rank() > 0
                      ? out_shape.dims()[out_shape.rank() - 1]
                      : 1;
    step.inputs = {a.impl(), b.impl()};
    step.output = result.impl();
    // Broadcast operands are expanded into executor-bound aux scratch with
    // the same odometer walk the eager path used; the map itself is then
    // the identical ParallelMap over same-length arrays.
    if (!a_same) step.aux_sizes.push_back(n);
    if (!b_same) step.aux_sizes.push_back(n);
    step.replay = [fwd, a_same, b_same, a_shape, b_shape, out_shape,
                   n](const trace::ReplayArgs& args) {
      int aux = 0;
      const float* ap = args.inputs[0];
      const float* bp = args.inputs[1];
      if (!a_same) {
        ExpandDataInto(ap, a_shape, out_shape, args.aux[aux]);
        ap = args.aux[aux++];
      }
      if (!b_same) {
        ExpandDataInto(bp, b_shape, out_shape, args.aux[aux]);
        bp = args.aux[aux++];
      }
      exec::ScopedOpTimer timer(exec::OpKind::kBinary, static_cast<double>(n));
      float* op = args.output;
      kernels::ParallelMap(Ctx(), n,
                           [&](int64_t i) { op[i] = fwd(ap[i], bp[i]); });
    };
    trace::Tracer::Record(std::move(step));
  }
  return result;
}

/// Per-batch float offsets for a broadcast batched matmul operand.
std::vector<int64_t> BatchOffsets(const Shape& operand_batch,
                                  const Shape& out_batch,
                                  int64_t block_elems) {
  const int64_t num_batches = out_batch.numel();
  std::vector<int64_t> offsets(num_batches, 0);
  if (out_batch.rank() == 0) return offsets;
  const std::vector<int64_t> strides = BroadcastStrides(
      operand_batch, out_batch.rank(), out_batch.dims());
  const std::vector<int64_t>& out_dims = out_batch.dims();
  std::vector<int64_t> index(out_batch.rank(), 0);
  int64_t offset = 0;
  for (int64_t linear = 0; linear < num_batches; ++linear) {
    offsets[linear] = offset * block_elems;
    for (int axis = out_batch.rank() - 1; axis >= 0; --axis) {
      ++index[axis];
      offset += strides[axis];
      if (index[axis] < out_dims[axis]) break;
      offset -= strides[axis] * out_dims[axis];
      index[axis] = 0;
    }
  }
  return offsets;
}

Shape BatchShapeOf(const Shape& s) {
  std::vector<int64_t> dims(s.dims().begin(), s.dims().end() - 2);
  return Shape(std::move(dims));
}

/// Decomposes a shape around `axis` into (outer, mid, inner) extents.
void OuterMidInner(const Shape& shape, int axis, int64_t* outer, int64_t* mid,
                   int64_t* inner) {
  *outer = 1;
  *mid = shape.dims()[axis];
  *inner = 1;
  for (int i = 0; i < axis; ++i) *outer *= shape.dims()[i];
  for (int i = axis + 1; i < shape.rank(); ++i) *inner *= shape.dims()[i];
}

/// Gathers `data` (of `shape`) permuted by `perm` into `out` (caller-
/// provided, shape.numel() floats). Shared by the eager path and replays.
void PermuteDataInto(const float* data, const Shape& shape,
                     const std::vector<int>& perm, float* out) {
  const int rank = shape.rank();
  std::vector<int64_t> out_dims(rank);
  for (int i = 0; i < rank; ++i) out_dims[i] = shape.dims()[perm[i]];
  const std::vector<int64_t> in_strides = shape.Strides();
  // stride of output axis i in the input buffer
  std::vector<int64_t> strides(rank);
  for (int i = 0; i < rank; ++i) strides[i] = in_strides[perm[i]];
  const int64_t n = shape.numel();
  std::vector<int64_t> index(rank, 0);
  int64_t offset = 0;
  for (int64_t linear = 0; linear < n; ++linear) {
    out[linear] = data[offset];
    for (int axis = rank - 1; axis >= 0; --axis) {
      ++index[axis];
      offset += strides[axis];
      if (index[axis] < out_dims[axis]) break;
      offset -= strides[axis] * out_dims[axis];
      index[axis] = 0;
    }
  }
}

std::vector<float> PermuteData(const std::vector<float>& data,
                               const Shape& shape,
                               const std::vector<int>& perm) {
  std::vector<float> out = AcquireBuffer(shape.numel());
  PermuteDataInto(data.data(), shape, perm, out.data());
  return out;
}

}  // namespace

// ---- Elementwise unary ---------------------------------------------------------

Tensor Tensor::Neg() const {
  return Unary(
      "Neg", trace::OpPattern::kOpaque, *this, [](float x) { return -x; },
      [](float, float) { return -1.0f; });
}

Tensor Tensor::Exp() const {
  return Unary(
      "Exp", trace::OpPattern::kOpaque, *this,
      [](float x) { return std::exp(x); }, [](float, float y) { return y; });
}

Tensor Tensor::Log() const {
  return Unary(
      "Log", trace::OpPattern::kOpaque, *this,
      [](float x) { return std::log(x); },
      [](float x, float) { return 1.0f / x; });
}

Tensor Tensor::Sqrt() const {
  return Unary(
      "Sqrt", trace::OpPattern::kOpaque, *this,
      [](float x) { return std::sqrt(x); },
      [](float, float y) { return y > 0.0f ? 0.5f / y : 0.0f; });
}

Tensor Tensor::Abs() const {
  return Unary(
      "Abs", trace::OpPattern::kOpaque, *this,
      [](float x) { return std::fabs(x); },
      [](float x, float) { return x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f); });
}

Tensor Tensor::Relu() const {
  return Unary(
      "Relu", trace::OpPattern::kRelu, *this,
      [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor Tensor::LeakyRelu(float negative_slope) const {
  return Unary(
      "LeakyRelu", trace::OpPattern::kLeakyRelu, *this,
      [negative_slope](float x) { return x > 0.0f ? x : negative_slope * x; },
      [negative_slope](float x, float) {
        return x > 0.0f ? 1.0f : negative_slope;
      },
      negative_slope);
}

Tensor Tensor::Sigmoid() const {
  return Unary(
      "Sigmoid", trace::OpPattern::kSigmoid, *this,
      [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor Tensor::Tanh() const {
  return Unary(
      "Tanh", trace::OpPattern::kTanh, *this,
      [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Tensor::Pow(float exponent) const {
  return Unary(
      "Pow", trace::OpPattern::kOpaque, *this,
      [exponent](float x) { return std::pow(x, exponent); },
      [exponent](float x, float) {
        return exponent * std::pow(x, exponent - 1.0f);
      });
}

// ---- Binary -----------------------------------------------------------------------

Tensor Add(const Tensor& a, const Tensor& b) {
  return Binary(
      "Add", trace::OpPattern::kAdd, a, b,
      [](float x, float y) { return x + y; },
      [](float, float) { return 1.0f; }, [](float, float) { return 1.0f; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return Binary(
      "Sub", trace::OpPattern::kOpaque, a, b,
      [](float x, float y) { return x - y; },
      [](float, float) { return 1.0f; }, [](float, float) { return -1.0f; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return Binary(
      "Mul", trace::OpPattern::kOpaque, a, b,
      [](float x, float y) { return x * y; },
      [](float, float y) { return y; }, [](float x, float) { return x; });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return Binary(
      "Div", trace::OpPattern::kOpaque, a, b,
      [](float x, float y) { return x / y; },
      [](float, float y) { return 1.0f / y; },
      [](float x, float y) { return -x / (y * y); });
}

Tensor Maximum(const Tensor& a, const Tensor& b) {
  return Binary(
      "Maximum", trace::OpPattern::kOpaque, a, b,
      [](float x, float y) { return x > y ? x : y; },
      [](float x, float y) { return x >= y ? 1.0f : 0.0f; },
      [](float x, float y) { return x >= y ? 0.0f : 1.0f; });
}

Tensor Minimum(const Tensor& a, const Tensor& b) {
  return Binary(
      "Minimum", trace::OpPattern::kOpaque, a, b,
      [](float x, float y) { return x < y ? x : y; },
      [](float x, float y) { return x <= y ? 1.0f : 0.0f; },
      [](float x, float y) { return x <= y ? 0.0f : 1.0f; });
}

Tensor operator+(const Tensor& a, float s) { return Add(a, Tensor::Scalar(s)); }
Tensor operator+(float s, const Tensor& a) { return Add(Tensor::Scalar(s), a); }
Tensor operator-(const Tensor& a, float s) { return Sub(a, Tensor::Scalar(s)); }
Tensor operator-(float s, const Tensor& a) { return Sub(Tensor::Scalar(s), a); }
Tensor operator*(const Tensor& a, float s) { return Mul(a, Tensor::Scalar(s)); }
Tensor operator*(float s, const Tensor& a) { return Mul(Tensor::Scalar(s), a); }
Tensor operator/(const Tensor& a, float s) { return Div(a, Tensor::Scalar(s)); }
Tensor operator/(float s, const Tensor& a) { return Div(Tensor::Scalar(s), a); }

// ---- Shape ops ----------------------------------------------------------------------

Tensor Tensor::Reshape(const Shape& new_shape) const {
  TB_CHECK(defined());
  TB_CHECK_EQ(new_shape.numel(), numel())
      << "reshape " << shape().ToString() << " -> " << new_shape.ToString();
  std::vector<float> out = AcquireBuffer(numel());
  std::memcpy(out.data(), data(), sizeof(float) * numel());
  ImplPtr self = impl();
  Tensor result = MakeOp(new_shape, std::move(out), {*this},
                         [self](TensorImpl& node) {
                           AccumulateGrad(self.get(), node.grad);
                         });
  if (trace::Tracer::Active() != nullptr) {
    trace::TraceStep step;
    step.name = "Reshape";
    step.kind = exec::OpKind::kDataMovement;
    step.info.pattern = trace::OpPattern::kReshape;
    step.inputs = {impl()};
    step.output = result.impl();
    const int64_t n = numel();
    step.replay = [n](const trace::ReplayArgs& args) {
      std::memcpy(args.output, args.inputs[0], sizeof(float) * n);
    };
    trace::Tracer::Record(std::move(step));
  }
  return result;
}

Tensor Tensor::Unsqueeze(int axis) const {
  TB_CHECK(defined());
  const int r = rank();
  TB_CHECK(axis >= -(r + 1) && axis <= r);
  if (axis < 0) axis += r + 1;
  std::vector<int64_t> dims = shape().dims();
  dims.insert(dims.begin() + axis, 1);
  return Reshape(Shape(std::move(dims)));
}

Tensor Tensor::Squeeze(int axis) const {
  TB_CHECK(defined());
  const int a = shape().CanonicalAxis(axis);
  TB_CHECK_EQ(shape().dims()[a], 1);
  std::vector<int64_t> dims = shape().dims();
  dims.erase(dims.begin() + a);
  return Reshape(Shape(std::move(dims)));
}

Tensor Tensor::Permute(const std::vector<int>& perm) const {
  TB_CHECK(defined());
  const int r = rank();
  TB_CHECK_EQ(static_cast<int>(perm.size()), r);
  std::vector<bool> seen(r, false);
  for (int p : perm) {
    TB_CHECK(p >= 0 && p < r && !seen[p]) << "invalid permutation";
    seen[p] = true;
  }
  std::vector<int64_t> out_dims(r);
  for (int i = 0; i < r; ++i) out_dims[i] = shape().dims()[perm[i]];
  std::vector<float> out;
  {
    exec::ScopedOpTimer timer(exec::OpKind::kDataMovement,
                              static_cast<double>(numel()));
    out = PermuteData(impl()->data, shape(), perm);
  }
  // Inverse permutation maps output axes back to input axes.
  std::vector<int> inverse(r);
  for (int i = 0; i < r; ++i) inverse[perm[i]] = i;
  ImplPtr self = impl();
  Shape out_shape(std::move(out_dims));
  Tensor result = MakeOp(out_shape, std::move(out), {*this},
                         [self, inverse, out_shape](TensorImpl& node) {
                           std::vector<float> gx =
                               PermuteData(node.grad, out_shape, inverse);
                           AccumulateGrad(self.get(), gx);
                           ReleaseBuffer(std::move(gx));
                         });
  if (trace::Tracer::Active() != nullptr) {
    trace::TraceStep step;
    step.name = "Permute";
    step.kind = exec::OpKind::kDataMovement;
    step.flops = static_cast<double>(numel());
    step.inputs = {impl()};
    step.output = result.impl();
    const Shape in_shape = shape();
    step.replay = [in_shape, perm](const trace::ReplayArgs& args) {
      exec::ScopedOpTimer timer(exec::OpKind::kDataMovement,
                                static_cast<double>(in_shape.numel()));
      PermuteDataInto(args.inputs[0], in_shape, perm, args.output);
    };
    trace::Tracer::Record(std::move(step));
  }
  return result;
}

Tensor Tensor::Transpose(int axis_a, int axis_b) const {
  const int a = shape().CanonicalAxis(axis_a);
  const int b = shape().CanonicalAxis(axis_b);
  std::vector<int> perm(rank());
  for (int i = 0; i < rank(); ++i) perm[i] = i;
  std::swap(perm[a], perm[b]);
  return Permute(perm);
}

Tensor Tensor::Slice(int axis, int64_t start, int64_t end) const {
  TB_CHECK(defined());
  const int a = shape().CanonicalAxis(axis);
  const int64_t extent = shape().dims()[a];
  TB_CHECK(start >= 0 && start <= end && end <= extent)
      << "slice [" << start << ", " << end << ") on axis of extent " << extent;
  int64_t outer, mid, inner;
  OuterMidInner(shape(), a, &outer, &mid, &inner);
  const int64_t out_mid = end - start;
  std::vector<int64_t> out_dims = shape().dims();
  out_dims[a] = out_mid;
  std::vector<float> out = AcquireBuffer(outer * out_mid * inner);
  const float* src = data();
  {
    exec::ScopedOpTimer timer(exec::OpKind::kDataMovement,
                              static_cast<double>(out.size()));
    for (int64_t o = 0; o < outer; ++o) {
      std::memcpy(out.data() + o * out_mid * inner,
                  src + (o * mid + start) * inner,
                  sizeof(float) * out_mid * inner);
    }
  }
  ImplPtr self = impl();
  Tensor result =
      MakeOp(Shape(std::move(out_dims)), std::move(out), {*this},
             [self, outer, mid, inner, out_mid, start](TensorImpl& node) {
               if (!self->requires_grad) return;
               self->EnsureGrad();
               for (int64_t o = 0; o < outer; ++o) {
                 float* dst = self->grad.data() + (o * mid + start) * inner;
                 const float* g = node.grad.data() + o * out_mid * inner;
                 for (int64_t i = 0; i < out_mid * inner; ++i) dst[i] += g[i];
               }
             });
  if (trace::Tracer::Active() != nullptr) {
    trace::TraceStep step;
    step.name = "Slice";
    step.kind = exec::OpKind::kDataMovement;
    step.flops = static_cast<double>(outer * out_mid * inner);
    step.inputs = {impl()};
    step.output = result.impl();
    step.replay = [outer, mid, inner, out_mid,
                   start](const trace::ReplayArgs& args) {
      exec::ScopedOpTimer timer(exec::OpKind::kDataMovement,
                                static_cast<double>(outer * out_mid * inner));
      for (int64_t o = 0; o < outer; ++o) {
        std::memcpy(args.output + o * out_mid * inner,
                    args.inputs[0] + (o * mid + start) * inner,
                    sizeof(float) * out_mid * inner);
      }
    };
    trace::Tracer::Record(std::move(step));
  }
  return result;
}

Tensor Tensor::BroadcastTo(const Shape& target) const {
  TB_CHECK(defined());
  TB_CHECK(Shape::BroadcastsTo(shape(), target))
      << shape().ToString() << " does not broadcast to " << target.ToString();
  std::vector<float> out;
  {
    exec::ScopedOpTimer timer(exec::OpKind::kDataMovement,
                              static_cast<double>(target.numel()));
    out = ExpandToShape(*this, target);
  }
  ImplPtr self = impl();
  const Shape in_shape = shape();
  Tensor result = MakeOp(target, std::move(out), {*this},
                         [self, in_shape, target](TensorImpl& node) {
                           std::vector<float> gx =
                               ReduceGradToShape(node.grad, target, in_shape);
                           AccumulateGrad(self.get(), gx);
                           ReleaseBuffer(std::move(gx));
                         });
  if (trace::Tracer::Active() != nullptr) {
    trace::TraceStep step;
    step.name = "BroadcastTo";
    step.kind = exec::OpKind::kDataMovement;
    step.flops = static_cast<double>(target.numel());
    step.inputs = {impl()};
    step.output = result.impl();
    step.replay = [in_shape, target](const trace::ReplayArgs& args) {
      exec::ScopedOpTimer timer(exec::OpKind::kDataMovement,
                                static_cast<double>(target.numel()));
      ExpandDataInto(args.inputs[0], in_shape, target, args.output);
    };
    trace::Tracer::Record(std::move(step));
  }
  return result;
}

// ---- Reductions ------------------------------------------------------------------------

namespace {

/// The keepdim-sum kernel core shared by the eager dispatch and plan
/// replays. Every output cell's accumulation chain visits its inputs in
/// ascending linear order (the same order the historical serial
/// scatter-scan used), so results are bit-identical at any thread count.
void SumKeepdimInto(const float* src, float* out,
                    const std::vector<int64_t>& kept_dims,
                    const std::vector<int64_t>& kept_strides,
                    const std::vector<int64_t>& red_dims,
                    const std::vector<int64_t>& red_strides,
                    int64_t red_count, int64_t out_numel) {
  const int64_t grain =
      std::max<int64_t>(1, kernels::kReduceGrainElems /
                               std::max<int64_t>(1, red_count));
  Ctx().ParallelFor(out_numel, grain, [&](int64_t begin, int64_t end) {
    std::vector<int64_t> rindex(red_dims.size(), 0);
    for (int64_t o = begin; o < end; ++o) {
      // Base input offset of this output cell (row-major kept index).
      int64_t rem = o;
      int64_t base = 0;
      for (int i = static_cast<int>(kept_dims.size()) - 1; i >= 0; --i) {
        base += (rem % kept_dims[i]) * kept_strides[i];
        rem /= kept_dims[i];
      }
      // Odometer walk of the reduced subspace in row-major order.
      std::fill(rindex.begin(), rindex.end(), 0);
      int64_t roff = 0;
      float acc = 0.0f;
      for (int64_t c = 0; c < red_count; ++c) {
        acc += src[base + roff];
        for (int axis = static_cast<int>(red_dims.size()) - 1; axis >= 0;
             --axis) {
          ++rindex[axis];
          roff += red_strides[axis];
          if (rindex[axis] < red_dims[axis]) break;
          roff -= red_strides[axis] * red_dims[axis];
          rindex[axis] = 0;
        }
      }
      out[o] = acc;
    }
  });
}

/// Sum with keepdim=true over canonicalized, deduplicated axes.
Tensor SumKeepdim(const Tensor& t, const std::vector<int>& axes) {
  const Shape& in_shape = t.shape();
  const int rank = in_shape.rank();
  std::vector<bool> is_reduced(rank, false);
  for (int axis : axes) is_reduced[in_shape.CanonicalAxis(axis)] = true;
  std::vector<int64_t> out_dims = in_shape.dims();
  for (int i = 0; i < rank; ++i) {
    if (is_reduced[i]) out_dims[i] = 1;
  }
  Shape out_shape(out_dims);
  const std::vector<int64_t> in_strides = in_shape.Strides();
  // Kept and reduced axes, both in original axis order.
  std::vector<int64_t> kept_dims, kept_strides, red_dims, red_strides;
  for (int i = 0; i < rank; ++i) {
    if (is_reduced[i]) {
      red_dims.push_back(in_shape.dims()[i]);
      red_strides.push_back(in_strides[i]);
    } else {
      kept_dims.push_back(in_shape.dims()[i]);
      kept_strides.push_back(in_strides[i]);
    }
  }
  int64_t red_count = 1;
  for (int64_t d : red_dims) red_count *= d;
  const int64_t out_numel = out_shape.numel();
  std::vector<float> out = AcquireBuffer(out_numel);
  const float* src = t.data();
  {
    exec::ScopedOpTimer timer(exec::OpKind::kReduce,
                              static_cast<double>(in_shape.numel()));
    SumKeepdimInto(src, out.data(), kept_dims, kept_strides, red_dims,
                   red_strides, red_count, out_numel);
  }
  ImplPtr self = t.impl();
  Tensor result =
      MakeOp(out_shape, std::move(out), {t},
             [self, in_shape, out_shape](TensorImpl& node) {
               exec::ScopedOpTimer timer(
                   exec::OpKind::kReduceBackward,
                   static_cast<double>(in_shape.numel()));
               // Each input element receives the grad of its output cell.
               std::vector<float> gx =
                   ExpandData(node.grad.data(), out_shape, in_shape);
               AccumulateGrad(self.get(), gx);
               ReleaseBuffer(std::move(gx));
             });
  if (trace::Tracer::Active() != nullptr) {
    trace::TraceStep step;
    step.name = "Sum";
    step.kind = exec::OpKind::kReduce;
    step.flops = static_cast<double>(in_shape.numel());
    step.inputs = {t.impl()};
    step.output = result.impl();
    const double flops = static_cast<double>(in_shape.numel());
    step.replay = [kept_dims, kept_strides, red_dims, red_strides, red_count,
                   out_numel, flops](const trace::ReplayArgs& args) {
      exec::ScopedOpTimer timer(exec::OpKind::kReduce, flops);
      SumKeepdimInto(args.inputs[0], args.output, kept_dims, kept_strides,
                     red_dims, red_strides, red_count, out_numel);
    };
    trace::Tracer::Record(std::move(step));
  }
  return result;
}

}  // namespace

Tensor Tensor::Sum(const std::vector<int>& axes, bool keepdim) const {
  TB_CHECK(defined());
  TB_CHECK(!axes.empty());
  Tensor result = SumKeepdim(*this, axes);
  if (keepdim) return result;
  std::vector<bool> reduced(rank(), false);
  for (int axis : axes) reduced[shape().CanonicalAxis(axis)] = true;
  std::vector<int64_t> dims;
  for (int i = 0; i < rank(); ++i) {
    if (!reduced[i]) dims.push_back(shape().dims()[i]);
  }
  return result.Reshape(Shape(std::move(dims)));
}

Tensor Tensor::Mean(const std::vector<int>& axes, bool keepdim) const {
  TB_CHECK(defined());
  int64_t count = 1;
  std::vector<bool> reduced(rank(), false);
  for (int axis : axes) {
    const int a = shape().CanonicalAxis(axis);
    if (!reduced[a]) count *= shape().dims()[a];
    reduced[a] = true;
  }
  return Sum(axes, keepdim) * (1.0f / static_cast<float>(count));
}

Tensor Tensor::SumAll() const {
  TB_CHECK(defined());
  if (rank() == 0) return *this;
  std::vector<int> axes(rank());
  for (int i = 0; i < rank(); ++i) axes[i] = i;
  return Sum(axes, /*keepdim=*/false);
}

Tensor Tensor::MeanAll() const {
  TB_CHECK(defined());
  if (rank() == 0) return *this;
  return SumAll() * (1.0f / static_cast<float>(numel()));
}

// ---- Softmax ----------------------------------------------------------------------------

namespace {

/// The stable-softmax kernel core shared by the eager dispatch and plan
/// replays. Per-row max/exp/normalize with the row's full chain inside one
/// chunk (see the determinism contract in execution_context.h).
void SoftmaxInto(const float* src, float* out, int64_t outer, int64_t mid,
                 int64_t inner) {
  const int64_t grain = std::max<int64_t>(
      1, kernels::kReduceGrainElems / std::max<int64_t>(1, mid));
  Ctx().ParallelFor(outer * inner, grain, [&](int64_t begin, int64_t end) {
    for (int64_t t = begin; t < end; ++t) {
      const int64_t o = t / inner;
      const int64_t in = t % inner;
      const int64_t base = o * mid * inner + in;
      float max_val = src[base];
      for (int64_t m = 1; m < mid; ++m) {
        max_val = std::max(max_val, src[base + m * inner]);
      }
      float denom = 0.0f;
      for (int64_t m = 0; m < mid; ++m) {
        const float e = std::exp(src[base + m * inner] - max_val);
        out[base + m * inner] = e;
        denom += e;
      }
      const float inv = 1.0f / denom;
      for (int64_t m = 0; m < mid; ++m) out[base + m * inner] *= inv;
    }
  });
}

}  // namespace

Tensor Tensor::Softmax(int axis) const {
  TB_CHECK(defined());
  const int a = shape().CanonicalAxis(axis);
  int64_t outer, mid, inner;
  OuterMidInner(shape(), a, &outer, &mid, &inner);
  const float* src = data();
  std::vector<float> out = AcquireBuffer(numel());
  {
    exec::ScopedOpTimer timer(exec::OpKind::kSoftmax, 5.0 * numel());
    SoftmaxInto(src, out.data(), outer, mid, inner);
  }
  ImplPtr self = impl();
  Tensor result = MakeOp(
      shape(), std::move(out), {*this},
      [self, outer, mid, inner](TensorImpl& node) {
        if (!self->requires_grad) return;
        exec::ScopedOpTimer timer(exec::OpKind::kSoftmaxBackward,
                                  4.0 * static_cast<double>(node.data.size()));
        // dx = y * (dy - sum(dy * y over the softmax axis))
        std::vector<float> gx =
            AcquireBuffer(static_cast<int64_t>(node.data.size()));
        const float* y = node.data.data();
        const float* gy = node.grad.data();
        const int64_t grain = std::max<int64_t>(
            1, kernels::kReduceGrainElems / std::max<int64_t>(1, mid));
        Ctx().ParallelFor(outer * inner, grain,
                          [&](int64_t begin, int64_t end) {
          for (int64_t t = begin; t < end; ++t) {
            const int64_t o = t / inner;
            const int64_t in = t % inner;
            const int64_t base = o * mid * inner + in;
            float dot = 0.0f;
            for (int64_t m = 0; m < mid; ++m) {
              const int64_t idx = base + m * inner;
              dot += gy[idx] * y[idx];
            }
            for (int64_t m = 0; m < mid; ++m) {
              const int64_t idx = base + m * inner;
              gx[idx] = y[idx] * (gy[idx] - dot);
            }
          }
        });
        AccumulateGrad(self.get(), gx);
        ReleaseBuffer(std::move(gx));
      });
  if (trace::Tracer::Active() != nullptr) {
    trace::TraceStep step;
    step.name = "Softmax";
    step.kind = exec::OpKind::kSoftmax;
    step.flops = 5.0 * static_cast<double>(numel());
    step.inputs = {impl()};
    step.output = result.impl();
    const double flops = step.flops;
    step.replay = [outer, mid, inner, flops](const trace::ReplayArgs& args) {
      exec::ScopedOpTimer timer(exec::OpKind::kSoftmax, flops);
      SoftmaxInto(args.inputs[0], args.output, outer, mid, inner);
    };
    trace::Tracer::Record(std::move(step));
  }
  return result;
}

// ---- MatMul -------------------------------------------------------------------------------

Tensor MatMul(const Tensor& a, const Tensor& b) {
  TB_CHECK(a.defined() && b.defined());
  TB_CHECK_GE(a.rank(), 2);
  TB_CHECK_GE(b.rank(), 2);
  const int64_t m = a.dim(-2);
  const int64_t k = a.dim(-1);
  const int64_t kb = b.dim(-2);
  const int64_t n = b.dim(-1);
  TB_CHECK_EQ(k, kb) << "matmul inner dims: " << a.shape().ToString() << " x "
                     << b.shape().ToString();
  const Shape a_batch = BatchShapeOf(a.shape());
  const Shape b_batch = BatchShapeOf(b.shape());
  const Shape out_batch = Shape::Broadcast(a_batch, b_batch);
  std::vector<int64_t> out_dims = out_batch.dims();
  out_dims.push_back(m);
  out_dims.push_back(n);
  Shape out_shape(std::move(out_dims));

  const std::vector<int64_t> a_offsets = BatchOffsets(a_batch, out_batch, m * k);
  const std::vector<int64_t> b_offsets = BatchOffsets(b_batch, out_batch, k * n);
  const int64_t num_batches = out_batch.numel();

  std::vector<float> out = AcquireZeroedBuffer(out_shape.numel());
  {
    exec::ScopedOpTimer timer(
        exec::OpKind::kMatMul,
        2.0 * static_cast<double>(m * k * n) * num_batches);
    kernels::GemmBatchedNN(Ctx(), a.data(), b.data(), out.data(),
                           a_offsets.data(), b_offsets.data(), num_batches, m,
                           k, n);
  }

  ImplPtr ai = a.impl();
  ImplPtr bi = b.impl();
  Tensor result = MakeOp(
      out_shape, std::move(out), {a, b},
      [ai, bi, a_offsets, b_offsets, num_batches, m, k, n](TensorImpl& node) {
        const int grads = (ai->requires_grad ? 1 : 0) +
                          (bi->requires_grad ? 1 : 0);
        exec::ScopedOpTimer timer(
            exec::OpKind::kMatMulBackward,
            2.0 * grads * static_cast<double>(m * k * n) * num_batches);
        const float* gout = node.grad.data();
        if (ai->requires_grad) {
          ai->EnsureGrad();
          // dA = dC * B^T
          kernels::GemmBatchedNT(Ctx(), gout, bi->data.data(),
                                 ai->grad.data(), a_offsets.data(),
                                 b_offsets.data(), num_batches, m, n, k);
        }
        if (bi->requires_grad) {
          bi->EnsureGrad();
          // dB = A^T * dC
          kernels::GemmBatchedTN(Ctx(), ai->data.data(), gout,
                                 bi->grad.data(), a_offsets.data(),
                                 b_offsets.data(), num_batches, m, k, n);
        }
      });
  if (trace::Tracer::Active() != nullptr) {
    trace::TraceStep step;
    step.name = "MatMul";
    step.kind = exec::OpKind::kMatMul;
    step.flops = 2.0 * static_cast<double>(m * k * n) * num_batches;
    step.info.pattern = trace::OpPattern::kMatMul;
    step.info.n = n;
    step.inputs = {a.impl(), b.impl()};
    step.output = result.impl();
    const double flops = step.flops;
    const int64_t out_n = out_shape.numel();
    step.replay = [a_offsets, b_offsets, num_batches, m, k, n, out_n,
                   flops](const trace::ReplayArgs& args) {
      std::fill(args.output, args.output + out_n, 0.0f);
      exec::ScopedOpTimer timer(exec::OpKind::kMatMul, flops);
      kernels::GemmBatchedNN(Ctx(), args.inputs[0], args.inputs[1],
                             args.output, a_offsets.data(), b_offsets.data(),
                             num_batches, m, k, n);
    };
    step.make_fused = [a_offsets, b_offsets, num_batches, m, k, n, out_n,
                       flops](int act, float slope,
                              bool with_bias) -> trace::ReplayFn {
      return [=](const trace::ReplayArgs& args) {
        std::fill(args.output, args.output + out_n, 0.0f);
        exec::ScopedOpTimer timer(exec::OpKind::kFusedEpilogue, flops);
        kernels::EpilogueSpec epilogue;
        epilogue.bias = with_bias ? args.inputs[2] : nullptr;
        epilogue.act = static_cast<kernels::EpilogueAct>(act);
        epilogue.leaky_slope = slope;
        kernels::GemmBatchedNNFused(Ctx(), args.inputs[0], args.inputs[1],
                                    args.output, a_offsets.data(),
                                    b_offsets.data(), num_batches, m, k, n,
                                    epilogue);
      };
    };
    // Precision lowering (DESIGN.md §13) applies when B is one shared
    // constant across batches — true for weight matmuls; attention-style
    // products with per-batch B blocks stay fp32.
    bool b_shared = true;
    for (const int64_t off : b_offsets) b_shared = b_shared && off == 0;
    if (b_shared) {
      step.info.weight_input = 1;
      step.make_lowered = [a_offsets, num_batches, m, k, n, out_n, flops](
                              int precision, int act, float slope,
                              bool with_bias, const float* weights,
                              int64_t* packed_bytes) -> trace::ReplayFn {
        const auto p = static_cast<kernels::Precision>(precision);
        const exec::OpKind kind = (act != 0 || with_bias)
                                      ? exec::OpKind::kFusedEpilogue
                                      : exec::OpKind::kMatMul;
        if (p == kernels::Precision::kBf16) {
          auto packed = std::make_shared<std::vector<uint16_t>>(
              kernels::PackedPanelElems(k, n));
          kernels::PackBf16Panels(weights, k, n, packed->data());
          MaybeCorruptPackedPanel(packed->data(),
                                  packed->size() * sizeof(uint16_t));
          *packed_bytes =
              static_cast<int64_t>(packed->size() * sizeof(uint16_t));
          return [=](const trace::ReplayArgs& args) {
            std::fill(args.output, args.output + out_n, 0.0f);
            exec::ScopedOpTimer timer(kind, flops);
            kernels::EpilogueSpec epilogue;
            epilogue.bias = with_bias ? args.inputs[1] : nullptr;
            epilogue.act = static_cast<kernels::EpilogueAct>(act);
            epilogue.leaky_slope = slope;
            kernels::GemmBatchedNNBf16Fused(Ctx(), args.inputs[0],
                                            packed->data(), args.output,
                                            a_offsets.data(), num_batches, m,
                                            k, n, epilogue);
          };
        }
        if (p == kernels::Precision::kInt8) {
          std::vector<int8_t> row_q(k * n);
          std::vector<float> col_scales(n);
          kernels::QuantizeInt8PerColumn(weights, k, n, row_q.data(),
                                         col_scales.data());
          auto q = std::make_shared<std::vector<int8_t>>(
              kernels::PackedPanelElems(k, n));
          kernels::PackInt8Panels(row_q.data(), k, n, q->data());
          auto scales = std::make_shared<std::vector<float>>(
              kernels::PaddedScaleElems(n));
          kernels::PadScales(col_scales.data(), n, scales->data());
          MaybeCorruptPackedPanel(q->data(), q->size());
          *packed_bytes = static_cast<int64_t>(
              q->size() + scales->size() * sizeof(float));
          return [=](const trace::ReplayArgs& args) {
            std::fill(args.output, args.output + out_n, 0.0f);
            exec::ScopedOpTimer timer(kind, flops);
            kernels::EpilogueSpec epilogue;
            epilogue.bias = with_bias ? args.inputs[1] : nullptr;
            epilogue.act = static_cast<kernels::EpilogueAct>(act);
            epilogue.leaky_slope = slope;
            kernels::GemmBatchedNNInt8Fused(
                Ctx(), args.inputs[0], q->data(), scales->data(), args.output,
                a_offsets.data(), num_batches, m, k, n, epilogue);
          };
        }
        return nullptr;
      };
    }
    trace::Tracer::Record(std::move(step));
  }
  return result;
}

// ---- SparseMatMul -------------------------------------------------------------------------

Tensor SparseMatMul(const sparse::CsrPtr& support, const Tensor& features) {
  TB_CHECK(support != nullptr);
  TB_CHECK(features.defined());
  TB_CHECK_GE(features.rank(), 2);
  const int64_t rows = support->rows();
  const int64_t cols = support->cols();
  const int64_t f = features.dim(-1);
  TB_CHECK_EQ(features.dim(-2), cols)
      << "sparse matmul inner dims: [" << rows << ", " << cols << "] x "
      << features.shape().ToString();
  std::vector<int64_t> out_dims = features.shape().dims();
  out_dims[out_dims.size() - 2] = rows;
  Shape out_shape(std::move(out_dims));
  const int64_t num_batches = features.numel() / (cols * f);
  const double flops =
      2.0 * static_cast<double>(support->nnz() * f) * num_batches;

  std::vector<float> out = AcquireZeroedBuffer(out_shape.numel());
  {
    exec::ScopedOpTimer timer(exec::OpKind::kSpMM, flops);
    kernels::SpmmBatched(Ctx(), support->row_ptr().data(),
                         support->col_idx().data(), support->values().data(),
                         features.data(), out.data(), num_batches, rows, cols,
                         f);
  }

  ImplPtr xi = features.impl();
  Tensor result = MakeOp(
      out_shape, std::move(out), {features},
      [xi, support, num_batches, rows, cols, f, flops](TensorImpl& node) {
        if (!xi->requires_grad) return;
        exec::ScopedOpTimer timer(exec::OpKind::kSpMMBackward, flops);
        xi->EnsureGrad();
        // dX = A^T * dY via the transpose CSR; same row-parallel kernel
        // with the roles of rows/cols swapped.
        kernels::SpmmBatched(Ctx(), support->t_row_ptr().data(),
                             support->t_col_idx().data(),
                             support->t_values().data(), node.grad.data(),
                             xi->grad.data(), num_batches, cols, rows, f);
      });
  if (trace::Tracer::Active() != nullptr) {
    trace::TraceStep step;
    step.name = "SparseMatMul";
    step.kind = exec::OpKind::kSpMM;
    step.flops = flops;
    step.info.pattern = trace::OpPattern::kSpMM;
    step.info.n = f;
    step.inputs = {features.impl()};
    step.output = result.impl();
    const int64_t out_n = out_shape.numel();
    // The CsrPtr is captured by value: the plan keeps the support alive.
    step.replay = [support, num_batches, rows, cols, f, out_n,
                   flops](const trace::ReplayArgs& args) {
      std::fill(args.output, args.output + out_n, 0.0f);
      exec::ScopedOpTimer timer(exec::OpKind::kSpMM, flops);
      kernels::SpmmBatched(Ctx(), support->row_ptr().data(),
                           support->col_idx().data(),
                           support->values().data(), args.inputs[0],
                           args.output, num_batches, rows, cols, f);
    };
    step.make_fused = [support, num_batches, rows, cols, f, out_n,
                       flops](int act, float slope,
                              bool with_bias) -> trace::ReplayFn {
      return [=](const trace::ReplayArgs& args) {
        std::fill(args.output, args.output + out_n, 0.0f);
        exec::ScopedOpTimer timer(exec::OpKind::kFusedEpilogue, flops);
        kernels::EpilogueSpec epilogue;
        epilogue.bias = with_bias ? args.inputs[1] : nullptr;
        epilogue.act = static_cast<kernels::EpilogueAct>(act);
        epilogue.leaky_slope = slope;
        kernels::SpmmBatchedFused(Ctx(), support->row_ptr().data(),
                                  support->col_idx().data(),
                                  support->values().data(), args.inputs[0],
                                  args.output, num_batches, rows, cols, f,
                                  epilogue);
      };
    };
    // Precision lowering: both reduced tiers store CSR values as bf16
    // (per-column int8 scaling is meaningless for scalar-per-edge
    // supports). weight_input stays -1 — the support lives in the closure.
    step.make_lowered = [support, num_batches, rows, cols, f, out_n, flops](
                            int precision, int act, float slope,
                            bool with_bias, const float* /*weights*/,
                            int64_t* packed_bytes) -> trace::ReplayFn {
      if (static_cast<kernels::Precision>(precision) ==
          kernels::Precision::kFp32) {
        return nullptr;
      }
      auto packed = std::make_shared<std::vector<uint16_t>>(support->nnz());
      kernels::PackBf16(support->values().data(), packed->data(),
                        support->nnz());
      MaybeCorruptPackedPanel(packed->data(),
                              packed->size() * sizeof(uint16_t));
      *packed_bytes = static_cast<int64_t>(packed->size() * sizeof(uint16_t));
      const exec::OpKind kind = (act != 0 || with_bias)
                                    ? exec::OpKind::kFusedEpilogue
                                    : exec::OpKind::kSpMM;
      return [=](const trace::ReplayArgs& args) {
        std::fill(args.output, args.output + out_n, 0.0f);
        exec::ScopedOpTimer timer(kind, flops);
        kernels::EpilogueSpec epilogue;
        epilogue.bias = with_bias ? args.inputs[1] : nullptr;
        epilogue.act = static_cast<kernels::EpilogueAct>(act);
        epilogue.leaky_slope = slope;
        kernels::SpmmBatchedBf16Fused(Ctx(), support->row_ptr().data(),
                                      support->col_idx().data(),
                                      packed->data(), args.inputs[0],
                                      args.output, num_batches, rows, cols, f,
                                      epilogue);
      };
    };
    trace::Tracer::Record(std::move(step));
  }
  return result;
}

namespace {

/// Partitioned forward dispatch into a pre-zeroed y, falling back to the
/// monolithic kernel (and latching `degraded`) when a halo verification
/// fails. Either path produces bitwise-identical output.
void PartitionedSpmmForward(const sparse::PartitionedCsrPtr& partitioned,
                            const float* x, float* y, int64_t num_batches,
                            int64_t rows, int64_t cols, int64_t f,
                            int64_t out_n) {
  if (!partitioned->degraded()) {
    if (sparse::SpmmPartitionedBatched(Ctx(), partitioned->forward_blocks(), x,
                                       y, num_batches, rows, cols, f)) {
      return;
    }
    partitioned->MarkDegraded("halo gather verification mismatch (forward)");
    std::fill(y, y + out_n, 0.0f);
  }
  const sparse::CsrPtr& s = partitioned->source();
  kernels::SpmmBatched(Ctx(), s->row_ptr().data(), s->col_idx().data(),
                       s->values().data(), x, y, num_batches, rows, cols, f);
}

}  // namespace

Tensor SparseMatMul(const sparse::PartitionedCsrPtr& partitioned,
                    const Tensor& features) {
  TB_CHECK(partitioned != nullptr);
  const sparse::CsrPtr& support = partitioned->source();
  TB_CHECK(features.defined());
  TB_CHECK_GE(features.rank(), 2);
  const int64_t rows = support->rows();
  const int64_t cols = support->cols();
  const int64_t f = features.dim(-1);
  TB_CHECK_EQ(features.dim(-2), cols)
      << "sparse matmul inner dims: [" << rows << ", " << cols << "] x "
      << features.shape().ToString();
  std::vector<int64_t> out_dims = features.shape().dims();
  out_dims[out_dims.size() - 2] = rows;
  Shape out_shape(std::move(out_dims));
  const int64_t out_n = out_shape.numel();
  const int64_t num_batches = features.numel() / (cols * f);
  const double flops =
      2.0 * static_cast<double>(support->nnz() * f) * num_batches;

  std::vector<float> out = AcquireZeroedBuffer(out_n);
  {
    exec::ScopedOpTimer timer(exec::OpKind::kSpMM, flops);
    PartitionedSpmmForward(partitioned, features.data(), out.data(),
                           num_batches, rows, cols, f, out_n);
  }

  ImplPtr xi = features.impl();
  Tensor result = MakeOp(
      out_shape, std::move(out), {features},
      [xi, partitioned, support, num_batches, rows, cols, f,
       flops](TensorImpl& node) {
        if (!xi->requires_grad) return;
        exec::ScopedOpTimer timer(exec::OpKind::kSpMMBackward, flops);
        xi->EnsureGrad();
        float* dst = xi->grad.data();
        const float* dy = node.grad.data();
        const int64_t grad_n = num_batches * cols * f;
        // dX = A^T * dY over the backward blocks, accumulating straight into
        // the gradient buffer — the same per-element chains as the
        // monolithic transpose SpMM. The partitioned path accumulates
        // in-place, so a mid-dispatch halo failure must restore the
        // pre-dispatch gradient before the monolithic redo; the snapshot is
        // one contiguous copy, cheap next to the SpMM itself.
        bool done = false;
        if (!partitioned->degraded()) {
          std::vector<float> snapshot = AcquireBuffer(grad_n);
          std::memcpy(snapshot.data(), dst,
                      static_cast<size_t>(grad_n) * sizeof(float));
          done = sparse::SpmmPartitionedBatched(
              Ctx(), partitioned->backward_blocks(), dy, dst, num_batches,
              cols, rows, f);
          if (!done) {
            partitioned->MarkDegraded(
                "halo gather verification mismatch (backward)");
            std::memcpy(dst, snapshot.data(),
                        static_cast<size_t>(grad_n) * sizeof(float));
          }
          ReleaseBuffer(std::move(snapshot));
        }
        if (!done) {
          kernels::SpmmBatched(Ctx(), support->t_row_ptr().data(),
                               support->t_col_idx().data(),
                               support->t_values().data(), dy, dst,
                               num_batches, cols, rows, f);
        }
      });
  if (trace::Tracer::Active() != nullptr) {
    trace::TraceStep step;
    step.name = "SparseMatMul";
    step.kind = exec::OpKind::kSpMM;
    step.flops = flops;
    step.info.pattern = trace::OpPattern::kSpMM;
    step.info.n = f;
    step.inputs = {features.impl()};
    step.output = result.impl();
    step.replay = [partitioned, num_batches, rows, cols, f, out_n,
                   flops](const trace::ReplayArgs& args) {
      std::fill(args.output, args.output + out_n, 0.0f);
      exec::ScopedOpTimer timer(exec::OpKind::kSpMM, flops);
      PartitionedSpmmForward(partitioned, args.inputs[0], args.output,
                             num_batches, rows, cols, f, out_n);
    };
    // Fused and reduced-precision lowering run the monolithic kernels over
    // the source CSR: the partitioned accumulation chains are identical, so
    // nothing is lost by fusing on the monolithic arrays (and the packed
    // bf16 values are shared rather than per-block).
    step.make_fused = [support, num_batches, rows, cols, f, out_n,
                       flops](int act, float slope,
                              bool with_bias) -> trace::ReplayFn {
      return [=](const trace::ReplayArgs& args) {
        std::fill(args.output, args.output + out_n, 0.0f);
        exec::ScopedOpTimer timer(exec::OpKind::kFusedEpilogue, flops);
        kernels::EpilogueSpec epilogue;
        epilogue.bias = with_bias ? args.inputs[1] : nullptr;
        epilogue.act = static_cast<kernels::EpilogueAct>(act);
        epilogue.leaky_slope = slope;
        kernels::SpmmBatchedFused(Ctx(), support->row_ptr().data(),
                                  support->col_idx().data(),
                                  support->values().data(), args.inputs[0],
                                  args.output, num_batches, rows, cols, f,
                                  epilogue);
      };
    };
    step.make_lowered = [support, num_batches, rows, cols, f, out_n, flops](
                            int precision, int act, float slope,
                            bool with_bias, const float* /*weights*/,
                            int64_t* packed_bytes) -> trace::ReplayFn {
      if (static_cast<kernels::Precision>(precision) ==
          kernels::Precision::kFp32) {
        return nullptr;
      }
      auto packed = std::make_shared<std::vector<uint16_t>>(support->nnz());
      kernels::PackBf16(support->values().data(), packed->data(),
                        support->nnz());
      MaybeCorruptPackedPanel(packed->data(),
                              packed->size() * sizeof(uint16_t));
      *packed_bytes = static_cast<int64_t>(packed->size() * sizeof(uint16_t));
      const exec::OpKind kind = (act != 0 || with_bias)
                                    ? exec::OpKind::kFusedEpilogue
                                    : exec::OpKind::kSpMM;
      return [=](const trace::ReplayArgs& args) {
        std::fill(args.output, args.output + out_n, 0.0f);
        exec::ScopedOpTimer timer(kind, flops);
        kernels::EpilogueSpec epilogue;
        epilogue.bias = with_bias ? args.inputs[1] : nullptr;
        epilogue.act = static_cast<kernels::EpilogueAct>(act);
        epilogue.leaky_slope = slope;
        kernels::SpmmBatchedBf16Fused(Ctx(), support->row_ptr().data(),
                                      support->col_idx().data(),
                                      packed->data(), args.inputs[0],
                                      args.output, num_batches, rows, cols, f,
                                      epilogue);
      };
    };
    trace::Tracer::Record(std::move(step));
  }
  return result;
}

// ---- Structural ----------------------------------------------------------------------------

Tensor Concat(const std::vector<Tensor>& tensors, int axis) {
  TB_CHECK(!tensors.empty());
  const Shape& first = tensors[0].shape();
  const int a = first.CanonicalAxis(axis);
  int64_t total_mid = 0;
  for (const Tensor& t : tensors) {
    TB_CHECK_EQ(t.rank(), first.rank());
    for (int i = 0; i < first.rank(); ++i) {
      if (i != a) {
        TB_CHECK_EQ(t.shape().dims()[i], first.dims()[i])
            << "concat shape mismatch on axis " << i;
      }
    }
    total_mid += t.shape().dims()[a];
  }
  std::vector<int64_t> out_dims = first.dims();
  out_dims[a] = total_mid;
  Shape out_shape(std::move(out_dims));

  int64_t outer = 1, inner = 1;
  for (int i = 0; i < a; ++i) outer *= first.dims()[i];
  for (int i = a + 1; i < first.rank(); ++i) inner *= first.dims()[i];

  std::vector<float> out = AcquireBuffer(out_shape.numel());
  std::vector<int64_t> mid_offsets(tensors.size());
  {
    int64_t acc = 0;
    for (size_t t = 0; t < tensors.size(); ++t) {
      mid_offsets[t] = acc;
      acc += tensors[t].shape().dims()[a];
    }
  }
  {
    exec::ScopedOpTimer timer(exec::OpKind::kDataMovement,
                              static_cast<double>(out_shape.numel()));
    for (size_t t = 0; t < tensors.size(); ++t) {
      const int64_t mid = tensors[t].shape().dims()[a];
      const float* src = tensors[t].data();
      for (int64_t o = 0; o < outer; ++o) {
        std::memcpy(out.data() + (o * total_mid + mid_offsets[t]) * inner,
                    src + o * mid * inner, sizeof(float) * mid * inner);
      }
    }
  }

  std::vector<ImplPtr> impls;
  impls.reserve(tensors.size());
  for (const Tensor& t : tensors) impls.push_back(t.impl());
  std::vector<int64_t> mids;
  mids.reserve(tensors.size());
  for (const Tensor& t : tensors) mids.push_back(t.shape().dims()[a]);

  Tensor result =
      MakeOp(out_shape, std::move(out), tensors,
             [impls, mids, mid_offsets, outer, inner,
              total_mid](TensorImpl& node) {
               for (size_t t = 0; t < impls.size(); ++t) {
                 TensorImpl* dst = impls[t].get();
                 if (!dst->requires_grad) continue;
                 dst->EnsureGrad();
                 const int64_t mid = mids[t];
                 for (int64_t o = 0; o < outer; ++o) {
                   const float* g = node.grad.data() +
                                    (o * total_mid + mid_offsets[t]) * inner;
                   float* gd = dst->grad.data() + o * mid * inner;
                   for (int64_t i = 0; i < mid * inner; ++i) gd[i] += g[i];
                 }
               }
             });
  if (trace::Tracer::Active() != nullptr) {
    trace::TraceStep step;
    step.name = "Concat";
    step.kind = exec::OpKind::kDataMovement;
    step.flops = static_cast<double>(out_shape.numel());
    step.inputs = impls;
    step.output = result.impl();
    const double flops = step.flops;
    step.replay = [mids, mid_offsets, outer, inner, total_mid,
                   flops](const trace::ReplayArgs& args) {
      exec::ScopedOpTimer timer(exec::OpKind::kDataMovement, flops);
      for (size_t t = 0; t < mids.size(); ++t) {
        const int64_t mid = mids[t];
        const float* src = args.inputs[t];
        for (int64_t o = 0; o < outer; ++o) {
          std::memcpy(args.output + (o * total_mid + mid_offsets[t]) * inner,
                      src + o * mid * inner, sizeof(float) * mid * inner);
        }
      }
    };
    trace::Tracer::Record(std::move(step));
  }
  return result;
}

Tensor Stack(const std::vector<Tensor>& tensors, int axis) {
  TB_CHECK(!tensors.empty());
  std::vector<Tensor> unsqueezed;
  unsqueezed.reserve(tensors.size());
  for (const Tensor& t : tensors) unsqueezed.push_back(t.Unsqueeze(axis));
  return Concat(unsqueezed, axis);
}

Tensor Pad(const Tensor& t, int axis, int64_t before, int64_t after) {
  TB_CHECK(t.defined());
  TB_CHECK_GE(before, 0);
  TB_CHECK_GE(after, 0);
  const int a = t.shape().CanonicalAxis(axis);
  if (before == 0 && after == 0) return t.Reshape(t.shape());
  int64_t outer, mid, inner;
  OuterMidInner(t.shape(), a, &outer, &mid, &inner);
  const int64_t out_mid = mid + before + after;
  std::vector<int64_t> out_dims = t.shape().dims();
  out_dims[a] = out_mid;
  Shape out_shape(std::move(out_dims));
  std::vector<float> out = AcquireZeroedBuffer(out_shape.numel());
  const float* src = t.data();
  for (int64_t o = 0; o < outer; ++o) {
    std::memcpy(out.data() + (o * out_mid + before) * inner,
                src + o * mid * inner, sizeof(float) * mid * inner);
  }
  ImplPtr self = t.impl();
  Tensor result =
      MakeOp(out_shape, std::move(out), {t},
             [self, outer, mid, inner, out_mid, before](TensorImpl& node) {
               if (!self->requires_grad) return;
               self->EnsureGrad();
               for (int64_t o = 0; o < outer; ++o) {
                 const float* g =
                     node.grad.data() + (o * out_mid + before) * inner;
                 float* gd = self->grad.data() + o * mid * inner;
                 for (int64_t i = 0; i < mid * inner; ++i) gd[i] += g[i];
               }
             });
  if (trace::Tracer::Active() != nullptr) {
    trace::TraceStep step;
    step.name = "Pad";
    step.kind = exec::OpKind::kDataMovement;
    step.flops = static_cast<double>(outer * out_mid * inner);
    step.inputs = {t.impl()};
    step.output = result.impl();
    step.replay = [outer, mid, inner, out_mid,
                   before](const trace::ReplayArgs& args) {
      exec::ScopedOpTimer timer(exec::OpKind::kDataMovement,
                                static_cast<double>(outer * out_mid * inner));
      std::fill(args.output, args.output + outer * out_mid * inner, 0.0f);
      for (int64_t o = 0; o < outer; ++o) {
        std::memcpy(args.output + (o * out_mid + before) * inner,
                    args.inputs[0] + o * mid * inner,
                    sizeof(float) * mid * inner);
      }
    };
    trace::Tracer::Record(std::move(step));
  }
  return result;
}

Tensor IndexSelect(const Tensor& t, int axis,
                   const std::vector<int64_t>& indices) {
  TB_CHECK(t.defined());
  const int a = t.shape().CanonicalAxis(axis);
  int64_t outer, mid, inner;
  OuterMidInner(t.shape(), a, &outer, &mid, &inner);
  for (int64_t idx : indices) {
    TB_CHECK(idx >= 0 && idx < mid) << "index " << idx << " out of range";
  }
  const int64_t out_mid = static_cast<int64_t>(indices.size());
  std::vector<int64_t> out_dims = t.shape().dims();
  out_dims[a] = out_mid;
  Shape out_shape(std::move(out_dims));
  std::vector<float> out = AcquireBuffer(out_shape.numel());
  const float* src = t.data();
  {
    exec::ScopedOpTimer timer(exec::OpKind::kDataMovement,
                              static_cast<double>(out_shape.numel()));
    for (int64_t o = 0; o < outer; ++o) {
      for (int64_t j = 0; j < out_mid; ++j) {
        std::memcpy(out.data() + (o * out_mid + j) * inner,
                    src + (o * mid + indices[j]) * inner,
                    sizeof(float) * inner);
      }
    }
  }
  ImplPtr self = t.impl();
  Tensor result =
      MakeOp(out_shape, std::move(out), {t},
             [self, indices, outer, mid, inner, out_mid](TensorImpl& node) {
               if (!self->requires_grad) return;
               self->EnsureGrad();
               for (int64_t o = 0; o < outer; ++o) {
                 for (int64_t j = 0; j < out_mid; ++j) {
                   const float* g =
                       node.grad.data() + (o * out_mid + j) * inner;
                   float* gd =
                       self->grad.data() + (o * mid + indices[j]) * inner;
                   for (int64_t i = 0; i < inner; ++i) gd[i] += g[i];
                 }
               }
             });
  if (trace::Tracer::Active() != nullptr) {
    trace::TraceStep step;
    step.name = "IndexSelect";
    step.kind = exec::OpKind::kDataMovement;
    step.flops = static_cast<double>(out_shape.numel());
    step.inputs = {t.impl()};
    step.output = result.impl();
    const double flops = step.flops;
    step.replay = [indices, outer, mid, inner, out_mid,
                   flops](const trace::ReplayArgs& args) {
      exec::ScopedOpTimer timer(exec::OpKind::kDataMovement, flops);
      for (int64_t o = 0; o < outer; ++o) {
        for (int64_t j = 0; j < out_mid; ++j) {
          std::memcpy(args.output + (o * out_mid + j) * inner,
                      args.inputs[0] + (o * mid + indices[j]) * inner,
                      sizeof(float) * inner);
        }
      }
    };
    trace::Tracer::Record(std::move(step));
  }
  return result;
}

// ---- Conv2d --------------------------------------------------------------------------------

Tensor Conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              int stride_h, int stride_w, int pad_h, int pad_w, int dil_h,
              int dil_w) {
  TB_CHECK(input.defined() && weight.defined());
  TB_CHECK_EQ(input.rank(), 4);
  TB_CHECK_EQ(weight.rank(), 4);
  const int64_t batch = input.dim(0);
  const int64_t c_in = input.dim(1);
  const int64_t h = input.dim(2);
  const int64_t w = input.dim(3);
  const int64_t c_out = weight.dim(0);
  TB_CHECK_EQ(weight.dim(1), c_in);
  const int64_t kh = weight.dim(2);
  const int64_t kw = weight.dim(3);
  if (bias.defined()) {
    TB_CHECK_EQ(bias.numel(), c_out);
  }
  const int64_t h_out = (h + 2 * pad_h - dil_h * (kh - 1) - 1) / stride_h + 1;
  const int64_t w_out = (w + 2 * pad_w - dil_w * (kw - 1) - 1) / stride_w + 1;
  TB_CHECK_GT(h_out, 0);
  TB_CHECK_GT(w_out, 0);

  Shape out_shape({batch, c_out, h_out, w_out});
  std::vector<float> out = AcquireZeroedBuffer(out_shape.numel());
  const float* in_data = input.data();
  const float* w_data = weight.data();
  const float* b_data = bias.defined() ? bias.data() : nullptr;
  const double flops =
      2.0 * static_cast<double>(batch * c_out * c_in * kh * kw) *
      static_cast<double>(h_out * w_out);

  conv::Conv2dGeometry geom;
  geom.batch = batch;
  geom.c_in = c_in;
  geom.h = h;
  geom.w = w;
  geom.c_out = c_out;
  geom.kh = kh;
  geom.kw = kw;
  geom.h_out = h_out;
  geom.w_out = w_out;
  geom.stride_h = stride_h;
  geom.stride_w = stride_w;
  geom.pad_h = pad_h;
  geom.pad_w = pad_w;
  geom.dil_h = dil_h;
  geom.dil_w = dil_w;

  {
    exec::ScopedOpTimer timer(exec::OpKind::kConv2d, flops);
    conv::Conv2dNaive(Ctx(), in_data, w_data, b_data, out.data(), geom);
  }

  ImplPtr in_impl = input.impl();
  ImplPtr w_impl = weight.impl();
  ImplPtr b_impl = bias.defined() ? bias.impl() : nullptr;
  std::vector<Tensor> inputs = {input, weight};
  if (bias.defined()) inputs.push_back(bias);

  Tensor result = MakeOp(
      out_shape, std::move(out), inputs,
      [in_impl, w_impl, b_impl, batch, c_in, c_out, h, w, kh, kw, h_out, w_out,
       stride_h, stride_w, pad_h, pad_w, dil_h, dil_w, flops](TensorImpl& node) {
        exec::ScopedOpTimer timer(exec::OpKind::kConv2dBackward, 2.0 * flops);
        const float* gout = node.grad.data();
        if (b_impl != nullptr && b_impl->requires_grad) {
          b_impl->EnsureGrad();
          for (int64_t b = 0; b < batch; ++b) {
            for (int64_t co = 0; co < c_out; ++co) {
              const float* plane = gout + (b * c_out + co) * h_out * w_out;
              float acc = 0.0f;
              for (int64_t i = 0; i < h_out * w_out; ++i) acc += plane[i];
              b_impl->grad[co] += acc;
            }
          }
        }
        const bool need_din = in_impl->requires_grad;
        const bool need_dw = w_impl->requires_grad;
        if (!need_din && !need_dw) return;
        if (need_din) in_impl->EnsureGrad();
        if (need_dw) w_impl->EnsureGrad();
        // Chunked over input channels: d(input)[b, ci] and d(weight)[co, ci]
        // are both disjoint across ci, and for any fixed gradient element
        // the (b-ascending, co-ascending) accumulation order matches the
        // serial kernel, keeping backward bit-identical at any thread count.
        Ctx().ParallelFor(c_in, /*grain=*/1, [&](int64_t ci_begin,
                                                 int64_t ci_end) {
          for (int64_t ci = ci_begin; ci < ci_end; ++ci) {
            for (int64_t b = 0; b < batch; ++b) {
              const float* in_plane =
                  in_impl->data.data() + (b * c_in + ci) * h * w;
              float* gin_plane =
                  need_din ? in_impl->grad.data() + (b * c_in + ci) * h * w
                           : nullptr;
              for (int64_t co = 0; co < c_out; ++co) {
                const float* gout_plane =
                    gout + (b * c_out + co) * h_out * w_out;
                const float* w_block =
                    w_impl->data.data() + (co * c_in + ci) * kh * kw;
                float* gw_block =
                    need_dw ? w_impl->grad.data() + (co * c_in + ci) * kh * kw
                            : nullptr;
                for (int64_t ki = 0; ki < kh; ++ki) {
                  for (int64_t kj = 0; kj < kw; ++kj) {
                    const float wv = w_block[ki * kw + kj];
                    float gw_acc = 0.0f;
                    for (int64_t ho = 0; ho < h_out; ++ho) {
                      const int64_t hi = ho * stride_h - pad_h + ki * dil_h;
                      if (hi < 0 || hi >= h) continue;
                      const float* gout_row = gout_plane + ho * w_out;
                      const float* in_row = in_plane + hi * w;
                      float* gin_row = need_din ? gin_plane + hi * w : nullptr;
                      for (int64_t wo = 0; wo < w_out; ++wo) {
                        const int64_t wi = wo * stride_w - pad_w + kj * dil_w;
                        if (wi < 0 || wi >= w) continue;
                        const float g = gout_row[wo];
                        if (need_din) gin_row[wi] += g * wv;
                        if (need_dw) gw_acc += g * in_row[wi];
                      }
                    }
                    if (need_dw) gw_block[ki * kw + kj] += gw_acc;
                  }
                }
              }
            }
          }
        });
      });
  if (trace::Tracer::Active() != nullptr) {
    trace::TraceStep step;
    step.name = "Conv2d";
    step.kind = exec::OpKind::kConv2d;
    step.flops = flops;
    step.info.pattern = trace::OpPattern::kConv2d;
    step.inputs.reserve(inputs.size());
    for (const Tensor& t : inputs) step.inputs.push_back(t.impl());
    step.output = result.impl();
    const bool has_bias = bias.defined();
    // Plan replays use the permuted-layout core (contiguous accumulation
    // over the long H axis) — bit-identical to the naive core, much faster
    // on temporal convs. Scratch is executor-bound.
    // Aux scratch covers both replay cores: the fp32 Conv2dPlan transposes
    // (aux_in/aux_out) and the reduced-tier Conv2dGemmBf16 im2col/GEMM
    // buffers. Sizes are fixed at trace time, before the precision tier is
    // chosen, so each slot takes the max of the two.
    step.aux_sizes = {std::max(conv::Conv2dPlanAuxIn(geom),
                               conv::Conv2dGemmAuxCol(geom)),
                      std::max(conv::Conv2dPlanAuxOut(geom),
                               conv::Conv2dGemmAuxOut(geom))};
    step.replay = [geom, has_bias, flops](const trace::ReplayArgs& args) {
      exec::ScopedOpTimer timer(exec::OpKind::kConv2d, flops);
      conv::Conv2dPlan(Ctx(), args.inputs[0], args.inputs[1],
                       has_bias ? args.inputs[2] : nullptr, args.output,
                       args.aux[0], args.aux[1], geom,
                       kernels::EpilogueAct::kNone, 0.0f);
    };
    step.make_fused = [geom, has_bias, flops](int act, float slope,
                                              bool) -> trace::ReplayFn {
      return [=](const trace::ReplayArgs& args) {
        exec::ScopedOpTimer timer(exec::OpKind::kFusedEpilogue, flops);
        conv::Conv2dPlan(Ctx(), args.inputs[0], args.inputs[1],
                         has_bias ? args.inputs[2] : nullptr, args.output,
                         args.aux[0], args.aux[1], geom,
                         static_cast<kernels::EpilogueAct>(act), slope);
      };
    };
    // Precision lowering: taps are rounded through bf16 (both reduced
    // tiers — per-column int8 scaling does not fit the [co, ci, kh, kw]
    // layout), transposed to the [C_in*Kh*Kw, C_out] GEMM weight matrix
    // and packed into blocked bf16 panels at compile time. The replay runs
    // the conv as im2col + bf16 GEMM (Conv2dGemmBf16), which reads tap
    // bytes at half the fp32 width with no per-call packing — the tier's
    // bandwidth win applies to convs, not just MatMul lowerings.
    step.info.weight_input = 1;
    step.make_lowered = [geom, has_bias, flops](
                            int precision, int act, float slope,
                            bool /*with_bias*/, const float* weights,
                            int64_t* packed_bytes) -> trace::ReplayFn {
      if (static_cast<kernels::Precision>(precision) ==
          kernels::Precision::kFp32) {
        return nullptr;
      }
      const int64_t kk = geom.c_in * geom.kh * geom.kw;
      const int64_t c_out = geom.c_out;
      // weight[co, ci, ki, kj] row-major is [c_out, kk]; the GEMM wants the
      // transpose, whose rows follow the im2col column order.
      std::vector<float> bmat(kk * c_out);
      for (int64_t co = 0; co < c_out; ++co) {
        for (int64_t d = 0; d < kk; ++d) {
          bmat[d * c_out + co] = weights[co * kk + d];
        }
      }
      auto packed = std::make_shared<std::vector<uint16_t>>(
          kernels::PackedPanelElems(kk, c_out));
      kernels::PackBf16Panels(bmat.data(), kk, c_out, packed->data());
      MaybeCorruptPackedPanel(packed->data(),
                              packed->size() * sizeof(uint16_t));
      *packed_bytes = static_cast<int64_t>(packed->size() * sizeof(uint16_t));
      const exec::OpKind kind = act != 0 ? exec::OpKind::kFusedEpilogue
                                         : exec::OpKind::kConv2d;
      // The weight input is removed by the compiler, so a fused bias (an
      // original op input, not an appended one) shifts down to index 1.
      return [=](const trace::ReplayArgs& args) {
        exec::ScopedOpTimer timer(kind, flops);
        conv::Conv2dGemmBf16(Ctx(), args.inputs[0], packed->data(),
                             has_bias ? args.inputs[1] : nullptr, args.output,
                             args.aux[0], args.aux[1], geom,
                             static_cast<kernels::EpilogueAct>(act), slope);
      };
    };
    trace::Tracer::Record(std::move(step));
  }
  return result;
}

}  // namespace trafficbench
