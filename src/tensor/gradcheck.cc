#include "src/tensor/gradcheck.h"

#include <cmath>
#include <sstream>

#include "src/util/check.h"

namespace trafficbench {

GradCheckResult CheckGradients(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    std::vector<Tensor> inputs, double epsilon, double tolerance) {
  GradCheckResult result;

  // Analytic gradients.
  for (Tensor& t : inputs) t.ZeroGrad();
  Tensor loss = fn(inputs);
  TB_CHECK_EQ(loss.numel(), 1) << "gradcheck requires a scalar loss";
  loss.Backward();

  std::vector<std::vector<float>> analytic;
  analytic.reserve(inputs.size());
  for (const Tensor& t : inputs) {
    TB_CHECK(t.requires_grad());
    std::vector<float> g = t.grad();
    if (g.empty()) g.assign(t.numel(), 0.0f);
    analytic.push_back(std::move(g));
  }

  // Numerical gradients by central differences.
  for (size_t ti = 0; ti < inputs.size(); ++ti) {
    Tensor& t = inputs[ti];
    float* data = t.data();
    for (int64_t i = 0; i < t.numel(); ++i) {
      const float saved = data[i];
      data[i] = saved + static_cast<float>(epsilon);
      const double up = fn(inputs).Item();
      data[i] = saved - static_cast<float>(epsilon);
      const double down = fn(inputs).Item();
      data[i] = saved;
      const double numeric = (up - down) / (2.0 * epsilon);
      const double a = analytic[ti][i];
      const double abs_err = std::fabs(a - numeric);
      const double denom = std::max(std::fabs(a), std::fabs(numeric));
      const double rel_err = denom > 1e-8 ? abs_err / denom : 0.0;
      result.max_abs_error = std::max(result.max_abs_error, abs_err);
      result.max_rel_error = std::max(result.max_rel_error, rel_err);
      if (std::min(abs_err, rel_err) > tolerance && result.passed) {
        result.passed = false;
        std::ostringstream out;
        out << "input " << ti << " elem " << i << ": analytic " << a
            << " vs numeric " << numeric;
        result.detail = out.str();
      }
    }
  }
  return result;
}

}  // namespace trafficbench
