#ifndef TRAFFICBENCH_TENSOR_KERNELS_H_
#define TRAFFICBENCH_TENSOR_KERNELS_H_

// Kernel-dispatch seam of the tensor engine. The op library (ops.cc) builds
// autograd nodes and shape logic; the numeric loops live here and are
// executed serially or on the current ExecutionContext's thread pool.
//
// Determinism contract: every kernel decomposes its work into chunks that
// depend only on the problem shape (fixed grains below, never the thread
// count), and each output element's accumulation chain stays inside one
// chunk. Results are therefore bit-identical for any --threads value.
//
// GEMM architecture (see DESIGN.md §8): the row-range primitives below are
// cache-blocked and register-tiled. Panels of A and B are packed into
// aligned, zero-padded stack scratch (no heap allocation on the hot path),
// the depth dimension is blocked at kGemmDepthBlock, and a fixed
// kGemmMicroRows x kGemmMicroCols micro-kernel accumulates a register tile
// with a branch-free, contiguous-innermost loop the compiler vectorizes.
// At load time the engine picks an AVX2+FMA compilation of the identical
// source when the CPU supports it (one decision per process, shared by all
// threads, so thread-count bit-identity is unaffected). Every C element's
// accumulation chain is "ascending depth within fixed depth blocks" — a
// pure function of the problem shape, the same for every row chunk, panel
// and thread count. Absolute values may differ from the historical naive
// kernels (kept below as GemmRef*Rows) by float reassociation only.

#include <cstdint>
#include <string>

#include "src/exec/execution_context.h"

namespace trafficbench::kernels {

/// Fixed chunk grains (pure functions of problem shape; see contract above).
inline constexpr int64_t kElementwiseGrain = 8192;
inline constexpr int64_t kGemmRowChunk = 16;
inline constexpr int64_t kReduceGrainElems = 4096;

/// GEMM blocking parameters. The micro-kernel computes a
/// kGemmMicroRows x kGemmMicroCols register tile (4x16 floats = 8 YMM
/// accumulators under AVX2, leaving registers for the B row and the A
/// broadcasts); kGemmDepthBlock bounds the packed panels (16 KiB A panel +
/// 16 KiB B panel) so both stay L1/L2-resident.
inline constexpr int64_t kGemmMicroRows = 4;
inline constexpr int64_t kGemmMicroCols = 16;
inline constexpr int64_t kGemmDepthBlock = 256;

/// Row-range GEMM primitives (the serial bodies both paths share), blocked
/// and packed as described above. All of them *accumulate* into C.
/// C[M,N] += A[M,K] * B[K,N], rows [row_begin, row_end) of C.
void GemmAccNNRows(const float* a, const float* b, float* c,
                   int64_t row_begin, int64_t row_end, int64_t k, int64_t n);
/// C[M,K] += A[M,N] * B[K,N]^T, rows [row_begin, row_end) of C.
void GemmAccNTRows(const float* a, const float* b, float* c,
                   int64_t row_begin, int64_t row_end, int64_t n, int64_t k);
/// C[K,N] += A[M,K]^T * B[M,N], rows [p_begin, p_end) of C.
void GemmAccTNRows(const float* a, const float* b, float* c,
                   int64_t p_begin, int64_t p_end, int64_t m, int64_t k,
                   int64_t n);

/// Naive reference GEMMs (the pre-blocking kernels, bit-for-bit). Retained
/// as the ground truth for the blocked-kernel property tests and as the
/// "before" row of the perf trajectory (BENCH_2.json). Same accumulate-into-C
/// semantics and row-range contracts as the GemmAcc*Rows primitives.
void GemmRefNNRows(const float* a, const float* b, float* c,
                   int64_t row_begin, int64_t row_end, int64_t k, int64_t n);
void GemmRefNTRows(const float* a, const float* b, float* c,
                   int64_t row_begin, int64_t row_end, int64_t n, int64_t k);
void GemmRefTNRows(const float* a, const float* b, float* c,
                   int64_t p_begin, int64_t p_end, int64_t m, int64_t k,
                   int64_t n);

/// True when the runtime dispatch selected the AVX2+FMA kernel build.
bool GemmUsesAvx2();

/// Batched C[batch] += A[batch] * B[batch] over per-batch element offsets.
/// Output blocks are disjoint per batch, so work is chunked over
/// (batch, row-chunk) pairs.
void GemmBatchedNN(exec::ExecutionContext& ctx, const float* a,
                   const float* b, float* c, const int64_t* a_offsets,
                   const int64_t* b_offsets, int64_t num_batches, int64_t m,
                   int64_t k, int64_t n);

/// Gradient GEMMs. The `acc_offsets` side may repeat blocks (broadcast
/// batches accumulate into the same buffer), so chunking is over output
/// rows only and every chunk walks all batches in ascending order — the
/// same per-element accumulation chain as the serial kernel.
/// dA[M,K] += dC[M,N] * B[K,N]^T per batch.
void GemmBatchedNT(exec::ExecutionContext& ctx, const float* dc,
                   const float* b, float* da, const int64_t* da_offsets,
                   const int64_t* b_offsets, int64_t num_batches, int64_t m,
                   int64_t n, int64_t k);
/// dB[K,N] += A[M,K]^T * dC[M,N] per batch.
void GemmBatchedTN(exec::ExecutionContext& ctx, const float* a,
                   const float* dc, float* db, const int64_t* a_offsets,
                   const int64_t* db_offsets, int64_t num_batches, int64_t m,
                   int64_t k, int64_t n);

/// Sparse-support row chunk. Smaller than a dense GEMM chunk would need:
/// one SpMM row touches only nnz-per-row feature rows, so chunks are cheap
/// and a finer grain keeps all workers busy at METR-LA-scale row counts.
inline constexpr int64_t kSpmmRowChunk = 16;

/// Row-range SpMM primitive: y[i, :] += sum_k values[k] * x[col_idx[k], :]
/// for rows i in [row_begin, row_end), k in [row_ptr[i], row_ptr[i+1]).
/// Column indices must be ascending within each row (CsrMatrix guarantees
/// this), making every y element's accumulation chain a pure function of
/// the sparsity pattern — the same contract as the dense kernels above.
void SpmmAccRows(const int64_t* row_ptr, const int32_t* col_idx,
                 const float* values, const float* x, float* y,
                 int64_t row_begin, int64_t row_end, int64_t f);

/// Batched y[batch] += A * x[batch] with one shared CSR support: x strides
/// by cols * f, y by rows * f. Output blocks are disjoint per batch, so
/// work is chunked over (batch, row-chunk) pairs like GemmBatchedNN.
void SpmmBatched(exec::ExecutionContext& ctx, const int64_t* row_ptr,
                 const int32_t* col_idx, const float* values, const float* x,
                 float* y, int64_t num_batches, int64_t rows, int64_t cols,
                 int64_t f);

// ---- Fused elementwise epilogues (plan execution path) ----------------------
//
// A compiled InferencePlan may fold a trailing bias add and/or activation
// into the producing GEMM/SpMM dispatch: the epilogue is applied to each
// output row chunk right after its accumulation completes, while the rows
// are still cache-hot. Per output element the float sequence is exactly
// "full accumulation chain, then + bias, then activation" — the same ops in
// the same order as the separate eager passes, so fusion preserves the
// bit-identity contract. The epilogue loops carry no multiply-add pairs, so
// they are contraction-safe under every ISA this file is compiled for.

enum class EpilogueAct : int { kNone = 0, kRelu, kSigmoid, kTanh, kLeakyRelu };

struct EpilogueSpec {
  /// Per-column bias of length `n` (the output's innermost extent), or null.
  const float* bias = nullptr;
  EpilogueAct act = EpilogueAct::kNone;
  float leaky_slope = 0.0f;
};

/// Applies bias-add then activation to rows [row_begin, row_end) of a
/// row-major [*, n] block — the exact per-element op order the fused
/// drivers below use. Statement-per-element with no multiply-add pairs, so
/// it is contraction-safe (see the note above).
void ApplyEpilogueRows(float* c, int64_t row_begin, int64_t row_end,
                       int64_t n, const EpilogueSpec& e);

/// GemmBatchedNN with a fused per-row epilogue (same chunk decomposition).
void GemmBatchedNNFused(exec::ExecutionContext& ctx, const float* a,
                        const float* b, float* c, const int64_t* a_offsets,
                        const int64_t* b_offsets, int64_t num_batches,
                        int64_t m, int64_t k, int64_t n,
                        const EpilogueSpec& epilogue);

/// SpmmBatched with a fused per-row epilogue (same chunk decomposition).
void SpmmBatchedFused(exec::ExecutionContext& ctx, const int64_t* row_ptr,
                      const int32_t* col_idx, const float* values,
                      const float* x, float* y, int64_t num_batches,
                      int64_t rows, int64_t cols, int64_t f,
                      const EpilogueSpec& epilogue);

// ---- Reduced-precision weight tiers (plan execution path) -------------------
//
// Compiled plans may store *constant weight operands* (GEMM B panels, CSR
// values, conv taps) in a reduced-precision format packed once at plan
// compile time; activations, accumulators and outputs stay fp32 throughout
// (see DESIGN.md §13). The kernels below read the packed operand and
// up-convert in registers, halving (bf16) or quartering (int8) the weight
// bandwidth of the inner loop.
//
// Determinism contract, extended: for a FIXED precision tier the results
// are bit-identical at any thread count AND across the AVX2/scalar kernel
// pair. The latter is stronger than the fp32 kernels (where the two ISA
// builds differ by contraction) and is achieved by construction: both
// builds perform one fused multiply-add per (element, depth) step — the
// scalar build via std::fma (correctly rounded, the same operation as the
// hardware vfmadd) and the AVX2 build via _mm256_fmadd_ps — over identical
// ascending-depth chains, followed by one plain add into C. Up-conversion
// is exact for bf16 (bit shift) and single-rounded for int8
// (scale * int, rounded identically by vmulps and scalar multiply).

enum class Precision : int { kFp32 = 0, kBf16 = 1, kInt8 = 2 };

const char* PrecisionName(Precision p);
/// Parses "fp32" / "bf16" / "int8". Returns false on anything else.
bool ParsePrecision(const std::string& text, Precision* out);

/// bf16 <-> fp32 scalar conversions. Packing rounds to nearest-even (NaN
/// payloads are quieted, never rounded up into infinity); unpacking is an
/// exact bit shift.
uint16_t FloatToBf16(float v);
inline float Bf16ToFloat(uint16_t v) {
  union { uint32_t u; float f; } bits;
  bits.u = static_cast<uint32_t>(v) << 16;
  return bits.f;
}

/// Rounds src[0, n) to bf16 (round-to-nearest-even) into dst.
void PackBf16(const float* src, uint16_t* dst, int64_t n);

/// Symmetric per-output-column int8 quantization of a row-major B[k, n]:
/// scales[j] = max|B[:, j]| / 127 (1.0 for an all-zero column), and
/// q[d, j] = round_to_nearest_even(B[d, j] / scales[j]) in [-127, 127].
void QuantizeInt8PerColumn(const float* b, int64_t k, int64_t n, int8_t* q,
                           float* scales);

// The reduced-precision GEMM weight is stored in the *blocked panel
// layout* the micro-kernel consumes, produced once at plan-compile time:
// column blocks of kGemmMicroCols, each holding its k depth rows
// contiguously (dst[block][d][j], zero-padded column tail). The hot loop
// therefore performs no per-call packing at all: B is pre-panelized and A
// is broadcast straight from its source rows by the micro-kernel. The fp32
// path repacks its B panel once per 16-row chunk and its A tile once per
// depth block — at serving-shaped GEMMs (k, n of a few dozen) that packing
// rivals the FMA work itself — while the reduced path skips both and reads
// the weight sequentially at half (bf16) or a quarter (int8) of the fp32
// bytes.

/// Elements of the blocked panel buffer for a [k, n] weight.
inline constexpr int64_t PackedPanelElems(int64_t k, int64_t n) {
  return ((n + kGemmMicroCols - 1) / kGemmMicroCols) * k * kGemmMicroCols;
}
/// Elements of the zero-padded per-column scale vector (int8 tier).
inline constexpr int64_t PaddedScaleElems(int64_t n) {
  return ((n + kGemmMicroCols - 1) / kGemmMicroCols) * kGemmMicroCols;
}

/// Packs a row-major fp32 B[k, n] to bf16 blocked panels (layout above).
void PackBf16Panels(const float* b, int64_t k, int64_t n, uint16_t* dst);
/// Re-lays a row-major int8 Q[k, n] (from QuantizeInt8PerColumn) into
/// blocked panels; `PadScales` zero-pads the matching scale vector.
void PackInt8Panels(const int8_t* q, int64_t k, int64_t n, int8_t* dst);
void PadScales(const float* scales, int64_t n, float* dst);

/// Row-range bf16 GEMM: C[M,N] += A[M,K] * bf16(B)[K,N], rows
/// [row_begin, row_end). `b` is the blocked bf16 panel buffer from
/// PackBf16Panels. Dispatches to the AVX2 micro-kernel when the
/// process-wide CPUID decision selected it; bit-identical to
/// GemmBf16RefNNRows either way.
void GemmBf16AccNNRows(const float* a, const uint16_t* b, float* c,
                       int64_t row_begin, int64_t row_end, int64_t k,
                       int64_t n);
/// The scalar (std::fma) build of the same kernel, always. Test oracle for
/// the AVX2-vs-scalar bit-identity property.
void GemmBf16RefNNRows(const float* a, const uint16_t* b, float* c,
                       int64_t row_begin, int64_t row_end, int64_t k,
                       int64_t n);

/// Gather-addressed bf16 GEMM: logical A row i lives at an arbitrary base
/// pointer rows[i], and depth step d reads rows[i][offs[d]] — an offset
/// table shared by every row. This is the reduced-tier conv core's
/// zero-copy im2col: for an unpadded convolution every tap of every output
/// element is an in-bounds input element, so the [M, K] im2col matrix never
/// needs to be materialized; the micro-kernel broadcasts A straight out of
/// the NCHW input. Same blocked loop, same FMA order, and the same source
/// values as GemmBf16AccNNRows over the materialized matrix, so the output
/// is bit-identical to it (and across the AVX2/scalar pair). All offsets
/// must be valid reads from their row's base pointer.
void GemmBf16GatherAccNNRows(const float* const* rows, const int32_t* offs,
                             const uint16_t* b, float* c, int64_t m,
                             int64_t k, int64_t n);
/// The scalar build of the gather kernel, always. Test oracle.
void GemmBf16GatherRefNNRows(const float* const* rows, const int32_t* offs,
                             const uint16_t* b, float* c, int64_t m,
                             int64_t k, int64_t n);

/// Row-range int8 GEMM: C[M,N] += A[M,K] * (scales ⊙ q)[K,N] with fp32
/// accumulation; `q` is the blocked panel buffer from PackInt8Panels and
/// `scales` the zero-padded vector from PadScales.
void GemmInt8AccNNRows(const float* a, const int8_t* q, const float* scales,
                       float* c, int64_t row_begin, int64_t row_end,
                       int64_t k, int64_t n);
void GemmInt8RefNNRows(const float* a, const int8_t* q, const float* scales,
                       float* c, int64_t row_begin, int64_t row_end,
                       int64_t k, int64_t n);

/// Row-range bf16 SpMM: like SpmmAccRows with bf16-packed CSR values.
void SpmmBf16AccRows(const int64_t* row_ptr, const int32_t* col_idx,
                     const uint16_t* values, const float* x, float* y,
                     int64_t row_begin, int64_t row_end, int64_t f);
void SpmmBf16RefRows(const int64_t* row_ptr, const int32_t* col_idx,
                     const uint16_t* values, const float* x, float* y,
                     int64_t row_begin, int64_t row_end, int64_t f);

/// Batched reduced-precision drivers with fused epilogues, mirroring the
/// fp32 *Fused drivers' chunk decomposition. The weight operand is shared
/// across batches (plan lowering only rewrites steps whose B has no
/// per-batch offsets), so there is no b_offsets argument; GEMM weights are
/// in the blocked panel layout (PackBf16Panels / PackInt8Panels).
void GemmBatchedNNBf16Fused(exec::ExecutionContext& ctx, const float* a,
                            const uint16_t* b, float* c,
                            const int64_t* a_offsets, int64_t num_batches,
                            int64_t m, int64_t k, int64_t n,
                            const EpilogueSpec& epilogue);
void GemmBatchedNNInt8Fused(exec::ExecutionContext& ctx, const float* a,
                            const int8_t* q, const float* scales, float* c,
                            const int64_t* a_offsets, int64_t num_batches,
                            int64_t m, int64_t k, int64_t n,
                            const EpilogueSpec& epilogue);
void SpmmBatchedBf16Fused(exec::ExecutionContext& ctx, const int64_t* row_ptr,
                          const int32_t* col_idx, const uint16_t* values,
                          const float* x, float* y, int64_t num_batches,
                          int64_t rows, int64_t cols, int64_t f,
                          const EpilogueSpec& epilogue);

/// Elementwise map out[i] = fn(i) for i in [0, n). Disjoint writes.
template <typename Fn>
void ParallelMap(exec::ExecutionContext& ctx, int64_t n, Fn fn) {
  ctx.ParallelFor(n, kElementwiseGrain, [&fn](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) fn(i);
  });
}

}  // namespace trafficbench::kernels

#endif  // TRAFFICBENCH_TENSOR_KERNELS_H_
