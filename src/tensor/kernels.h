#ifndef TRAFFICBENCH_TENSOR_KERNELS_H_
#define TRAFFICBENCH_TENSOR_KERNELS_H_

// Kernel-dispatch seam of the tensor engine. The op library (ops.cc) builds
// autograd nodes and shape logic; the numeric loops live here and are
// executed serially or on the current ExecutionContext's thread pool.
//
// Determinism contract: every kernel decomposes its work into chunks that
// depend only on the problem shape (fixed grains below, never the thread
// count), and each output element's accumulation chain stays inside one
// chunk. Results are therefore bit-identical for any --threads value.
//
// GEMM architecture (see DESIGN.md §8): the row-range primitives below are
// cache-blocked and register-tiled. Panels of A and B are packed into
// aligned, zero-padded stack scratch (no heap allocation on the hot path),
// the depth dimension is blocked at kGemmDepthBlock, and a fixed
// kGemmMicroRows x kGemmMicroCols micro-kernel accumulates a register tile
// with a branch-free, contiguous-innermost loop the compiler vectorizes.
// At load time the engine picks an AVX2+FMA compilation of the identical
// source when the CPU supports it (one decision per process, shared by all
// threads, so thread-count bit-identity is unaffected). Every C element's
// accumulation chain is "ascending depth within fixed depth blocks" — a
// pure function of the problem shape, the same for every row chunk, panel
// and thread count. Absolute values may differ from the historical naive
// kernels (kept below as GemmRef*Rows) by float reassociation only.

#include <cstdint>

#include "src/exec/execution_context.h"

namespace trafficbench::kernels {

/// Fixed chunk grains (pure functions of problem shape; see contract above).
inline constexpr int64_t kElementwiseGrain = 8192;
inline constexpr int64_t kGemmRowChunk = 16;
inline constexpr int64_t kReduceGrainElems = 4096;

/// GEMM blocking parameters. The micro-kernel computes a
/// kGemmMicroRows x kGemmMicroCols register tile (4x16 floats = 8 YMM
/// accumulators under AVX2, leaving registers for the B row and the A
/// broadcasts); kGemmDepthBlock bounds the packed panels (16 KiB A panel +
/// 16 KiB B panel) so both stay L1/L2-resident.
inline constexpr int64_t kGemmMicroRows = 4;
inline constexpr int64_t kGemmMicroCols = 16;
inline constexpr int64_t kGemmDepthBlock = 256;

/// Row-range GEMM primitives (the serial bodies both paths share), blocked
/// and packed as described above. All of them *accumulate* into C.
/// C[M,N] += A[M,K] * B[K,N], rows [row_begin, row_end) of C.
void GemmAccNNRows(const float* a, const float* b, float* c,
                   int64_t row_begin, int64_t row_end, int64_t k, int64_t n);
/// C[M,K] += A[M,N] * B[K,N]^T, rows [row_begin, row_end) of C.
void GemmAccNTRows(const float* a, const float* b, float* c,
                   int64_t row_begin, int64_t row_end, int64_t n, int64_t k);
/// C[K,N] += A[M,K]^T * B[M,N], rows [p_begin, p_end) of C.
void GemmAccTNRows(const float* a, const float* b, float* c,
                   int64_t p_begin, int64_t p_end, int64_t m, int64_t k,
                   int64_t n);

/// Naive reference GEMMs (the pre-blocking kernels, bit-for-bit). Retained
/// as the ground truth for the blocked-kernel property tests and as the
/// "before" row of the perf trajectory (BENCH_2.json). Same accumulate-into-C
/// semantics and row-range contracts as the GemmAcc*Rows primitives.
void GemmRefNNRows(const float* a, const float* b, float* c,
                   int64_t row_begin, int64_t row_end, int64_t k, int64_t n);
void GemmRefNTRows(const float* a, const float* b, float* c,
                   int64_t row_begin, int64_t row_end, int64_t n, int64_t k);
void GemmRefTNRows(const float* a, const float* b, float* c,
                   int64_t p_begin, int64_t p_end, int64_t m, int64_t k,
                   int64_t n);

/// True when the runtime dispatch selected the AVX2+FMA kernel build.
bool GemmUsesAvx2();

/// Batched C[batch] += A[batch] * B[batch] over per-batch element offsets.
/// Output blocks are disjoint per batch, so work is chunked over
/// (batch, row-chunk) pairs.
void GemmBatchedNN(exec::ExecutionContext& ctx, const float* a,
                   const float* b, float* c, const int64_t* a_offsets,
                   const int64_t* b_offsets, int64_t num_batches, int64_t m,
                   int64_t k, int64_t n);

/// Gradient GEMMs. The `acc_offsets` side may repeat blocks (broadcast
/// batches accumulate into the same buffer), so chunking is over output
/// rows only and every chunk walks all batches in ascending order — the
/// same per-element accumulation chain as the serial kernel.
/// dA[M,K] += dC[M,N] * B[K,N]^T per batch.
void GemmBatchedNT(exec::ExecutionContext& ctx, const float* dc,
                   const float* b, float* da, const int64_t* da_offsets,
                   const int64_t* b_offsets, int64_t num_batches, int64_t m,
                   int64_t n, int64_t k);
/// dB[K,N] += A[M,K]^T * dC[M,N] per batch.
void GemmBatchedTN(exec::ExecutionContext& ctx, const float* a,
                   const float* dc, float* db, const int64_t* a_offsets,
                   const int64_t* db_offsets, int64_t num_batches, int64_t m,
                   int64_t k, int64_t n);

/// Sparse-support row chunk. Smaller than a dense GEMM chunk would need:
/// one SpMM row touches only nnz-per-row feature rows, so chunks are cheap
/// and a finer grain keeps all workers busy at METR-LA-scale row counts.
inline constexpr int64_t kSpmmRowChunk = 16;

/// Row-range SpMM primitive: y[i, :] += sum_k values[k] * x[col_idx[k], :]
/// for rows i in [row_begin, row_end), k in [row_ptr[i], row_ptr[i+1]).
/// Column indices must be ascending within each row (CsrMatrix guarantees
/// this), making every y element's accumulation chain a pure function of
/// the sparsity pattern — the same contract as the dense kernels above.
void SpmmAccRows(const int64_t* row_ptr, const int32_t* col_idx,
                 const float* values, const float* x, float* y,
                 int64_t row_begin, int64_t row_end, int64_t f);

/// Batched y[batch] += A * x[batch] with one shared CSR support: x strides
/// by cols * f, y by rows * f. Output blocks are disjoint per batch, so
/// work is chunked over (batch, row-chunk) pairs like GemmBatchedNN.
void SpmmBatched(exec::ExecutionContext& ctx, const int64_t* row_ptr,
                 const int32_t* col_idx, const float* values, const float* x,
                 float* y, int64_t num_batches, int64_t rows, int64_t cols,
                 int64_t f);

// ---- Fused elementwise epilogues (plan execution path) ----------------------
//
// A compiled InferencePlan may fold a trailing bias add and/or activation
// into the producing GEMM/SpMM dispatch: the epilogue is applied to each
// output row chunk right after its accumulation completes, while the rows
// are still cache-hot. Per output element the float sequence is exactly
// "full accumulation chain, then + bias, then activation" — the same ops in
// the same order as the separate eager passes, so fusion preserves the
// bit-identity contract. The epilogue loops carry no multiply-add pairs, so
// they are contraction-safe under every ISA this file is compiled for.

enum class EpilogueAct : int { kNone = 0, kRelu, kSigmoid, kTanh, kLeakyRelu };

struct EpilogueSpec {
  /// Per-column bias of length `n` (the output's innermost extent), or null.
  const float* bias = nullptr;
  EpilogueAct act = EpilogueAct::kNone;
  float leaky_slope = 0.0f;
};

/// GemmBatchedNN with a fused per-row epilogue (same chunk decomposition).
void GemmBatchedNNFused(exec::ExecutionContext& ctx, const float* a,
                        const float* b, float* c, const int64_t* a_offsets,
                        const int64_t* b_offsets, int64_t num_batches,
                        int64_t m, int64_t k, int64_t n,
                        const EpilogueSpec& epilogue);

/// SpmmBatched with a fused per-row epilogue (same chunk decomposition).
void SpmmBatchedFused(exec::ExecutionContext& ctx, const int64_t* row_ptr,
                      const int32_t* col_idx, const float* values,
                      const float* x, float* y, int64_t num_batches,
                      int64_t rows, int64_t cols, int64_t f,
                      const EpilogueSpec& epilogue);

/// Elementwise map out[i] = fn(i) for i in [0, n). Disjoint writes.
template <typename Fn>
void ParallelMap(exec::ExecutionContext& ctx, int64_t n, Fn fn) {
  ctx.ParallelFor(n, kElementwiseGrain, [&fn](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) fn(i);
  });
}

}  // namespace trafficbench::kernels

#endif  // TRAFFICBENCH_TENSOR_KERNELS_H_
