#include "src/tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>

#include "src/exec/execution_context.h"
#include "src/tensor/buffer_pool.h"
#include "src/tensor/op_common.h"
#include "src/tensor/trace.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace trafficbench {

namespace internal_tensor {

namespace {
thread_local bool g_grad_mode = true;
}  // namespace

bool GradModeEnabled() { return g_grad_mode; }
void SetGradMode(bool enabled) { g_grad_mode = enabled; }

TensorImpl::~TensorImpl() {
  if (pool == nullptr) return;
  if (!data.empty()) pool->Release(std::move(data));
  if (!grad.empty()) pool->Release(std::move(grad));
}

void TensorImpl::EnsureGrad() {
  if (!grad.empty()) return;
  if (pool != nullptr) {
    grad = pool->AcquireZeroed(static_cast<int64_t>(data.size()));
  } else {
    grad.assign(data.size(), 0.0f);
  }
}

std::vector<float> AcquireBuffer(int64_t n) {
  return exec::ExecutionContext::Current().buffer_pool()->Acquire(n);
}

std::vector<float> AcquireZeroedBuffer(int64_t n) {
  return exec::ExecutionContext::Current().buffer_pool()->AcquireZeroed(n);
}

void ReleaseBuffer(std::vector<float>&& buffer) {
  exec::ExecutionContext::Current().buffer_pool()->Release(std::move(buffer));
}

Tensor MakeOp(Shape shape, std::vector<float> data,
              const std::vector<Tensor>& inputs,
              std::function<void(TensorImpl&)> backward) {
  TB_CHECK_EQ(static_cast<int64_t>(data.size()), shape.numel());
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->data = std::move(data);
  impl->pool = exec::ExecutionContext::Current().buffer_pool();
  // While a tracer rides this forward, remember the output as untraced
  // until the op site records its step; the plan compiler refuses tapes
  // whose dataflow passes through an op that never did.
  trace::Tracer::NoteOpOutput(impl.get());
  if (GradModeEnabled()) {
    bool any = false;
    for (const Tensor& t : inputs) any = any || t.requires_grad();
    if (any) {
      impl->requires_grad = true;
      for (const Tensor& t : inputs) impl->parents.push_back(t.impl());
      impl->backward_fn = std::move(backward);
    }
  }
  return Tensor::FromImpl(std::move(impl));
}

void AccumulateGrad(TensorImpl* t, const std::vector<float>& g) {
  if (t == nullptr || !t->requires_grad) return;
  TB_CHECK_EQ(g.size(), t->data.size());
  t->EnsureGrad();
  float* dst = t->grad.data();
  const float* src = g.data();
  const size_t n = g.size();
  for (size_t i = 0; i < n; ++i) dst[i] += src[i];
}

std::vector<int64_t> BroadcastStrides(const Shape& in, int out_rank,
                                      const std::vector<int64_t>& out_dims) {
  std::vector<int64_t> strides(out_rank, 0);
  const std::vector<int64_t> in_strides = in.Strides();
  const int offset = out_rank - in.rank();
  for (int i = 0; i < in.rank(); ++i) {
    const int64_t in_dim = in.dims()[i];
    TB_CHECK(in_dim == out_dims[i + offset] || in_dim == 1);
    strides[i + offset] = (in_dim == 1) ? 0 : in_strides[i];
  }
  return strides;
}

std::vector<float> ReduceGradToShape(const std::vector<float>& grad,
                                     const Shape& from, const Shape& to) {
  if (from == to) {
    std::vector<float> out = AcquireBuffer(static_cast<int64_t>(grad.size()));
    std::copy(grad.begin(), grad.end(), out.begin());
    return out;
  }
  std::vector<float> out = AcquireZeroedBuffer(to.numel());
  const int out_rank = from.rank();
  const std::vector<int64_t>& from_dims = from.dims();
  const std::vector<int64_t> to_strides =
      BroadcastStrides(to, out_rank, from_dims);
  // Odometer walk over the full (broadcast) shape, accumulating into the
  // reduced target offset.
  std::vector<int64_t> index(out_rank, 0);
  int64_t to_offset = 0;
  const int64_t n = from.numel();
  for (int64_t linear = 0; linear < n; ++linear) {
    out[to_offset] += grad[linear];
    for (int axis = out_rank - 1; axis >= 0; --axis) {
      ++index[axis];
      to_offset += to_strides[axis];
      if (index[axis] < from_dims[axis]) break;
      to_offset -= to_strides[axis] * from_dims[axis];
      index[axis] = 0;
    }
  }
  return out;
}

}  // namespace internal_tensor

using internal_tensor::GradModeEnabled;
using internal_tensor::SetGradMode;
using internal_tensor::TensorImpl;

NoGradGuard::NoGradGuard() : previous_(GradModeEnabled()) {
  SetGradMode(false);
}
NoGradGuard::~NoGradGuard() { SetGradMode(previous_); }

Tensor Tensor::FromImpl(std::shared_ptr<TensorImpl> impl) {
  Tensor t;
  t.impl_ = std::move(impl);
  return t;
}

namespace {
Tensor MakeFilled(const Shape& shape, float value) {
  return Tensor::FromVector(shape,
                            std::vector<float>(shape.numel(), value));
}
}  // namespace

Tensor Tensor::Zeros(const Shape& shape) { return MakeFilled(shape, 0.0f); }
Tensor Tensor::Ones(const Shape& shape) { return MakeFilled(shape, 1.0f); }
Tensor Tensor::Full(const Shape& shape, float value) {
  return MakeFilled(shape, value);
}

Tensor Tensor::FromVector(const Shape& shape, std::vector<float> values) {
  TB_CHECK_EQ(static_cast<int64_t>(values.size()), shape.numel())
      << "for shape " << shape.ToString();
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->data = std::move(values);
  return FromImpl(std::move(impl));
}

Tensor Tensor::Scalar(float value) {
  return FromVector(Shape({}), {value});
}

Tensor Tensor::Randn(const Shape& shape, Rng* rng, float stddev) {
  TB_CHECK(rng != nullptr);
  std::vector<float> values(shape.numel());
  for (float& v : values) v = static_cast<float>(rng->Normal()) * stddev;
  return FromVector(shape, std::move(values));
}

Tensor Tensor::Rand(const Shape& shape, Rng* rng, float lo, float hi) {
  TB_CHECK(rng != nullptr);
  std::vector<float> values(shape.numel());
  for (float& v : values) v = static_cast<float>(rng->Uniform(lo, hi));
  return FromVector(shape, std::move(values));
}

Tensor Tensor::Arange(int64_t n) {
  std::vector<float> values(n);
  for (int64_t i = 0; i < n; ++i) values[i] = static_cast<float>(i);
  return FromVector(Shape({n}), std::move(values));
}

const Shape& Tensor::shape() const {
  TB_CHECK(defined());
  return impl_->shape;
}

float* Tensor::data() {
  TB_CHECK(defined());
  return impl_->data.data();
}

const float* Tensor::data() const {
  TB_CHECK(defined());
  return impl_->data.data();
}

float Tensor::At(std::initializer_list<int64_t> index) const {
  TB_CHECK(defined());
  TB_CHECK_EQ(static_cast<int>(index.size()), rank());
  const std::vector<int64_t> strides = shape().Strides();
  int64_t offset = 0;
  int axis = 0;
  for (int64_t i : index) {
    TB_CHECK(i >= 0 && i < shape().dims()[axis])
        << "index " << i << " out of bounds on axis " << axis;
    offset += i * strides[axis];
    ++axis;
  }
  return impl_->data[offset];
}

float Tensor::Item() const {
  TB_CHECK(defined());
  TB_CHECK_EQ(numel(), 1);
  return impl_->data[0];
}

std::vector<float> Tensor::ToVector() const {
  TB_CHECK(defined());
  return impl_->data;
}

Tensor& Tensor::set_requires_grad(bool requires_grad) {
  TB_CHECK(defined());
  TB_CHECK(!impl_->backward_fn)
      << "set_requires_grad is for leaf tensors only";
  impl_->requires_grad = requires_grad;
  return *this;
}

bool Tensor::requires_grad() const {
  return defined() && impl_->requires_grad;
}

Tensor Tensor::GradTensor() const {
  TB_CHECK(defined());
  if (impl_->grad.empty()) return Tensor();
  return FromVector(impl_->shape, impl_->grad);
}

const std::vector<float>& Tensor::grad() const {
  TB_CHECK(defined());
  return impl_->grad;
}

void Tensor::ZeroGrad() {
  TB_CHECK(defined());
  std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
}

void Tensor::Backward(const Tensor& seed) {
  TB_CHECK(defined());
  TB_CHECK(impl_->requires_grad)
      << "Backward() on a tensor that does not require grad";
  if (seed.defined()) {
    TB_CHECK(seed.shape() == shape())
        << "seed shape " << seed.shape().ToString() << " vs "
        << shape().ToString();
  } else {
    TB_CHECK_EQ(numel(), 1)
        << "Backward() without a seed requires a scalar output";
  }

  // Iterative post-order DFS to get a topological order of the graph.
  std::vector<TensorImpl*> topo;
  std::unordered_set<TensorImpl*> visited;
  struct Frame {
    TensorImpl* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  if (visited.insert(impl_.get()).second) {
    stack.push_back({impl_.get(), 0});
  }
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      TensorImpl* parent = frame.node->parents[frame.next_parent++].get();
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      topo.push_back(frame.node);
      stack.pop_back();
    }
  }

  // Seed the output gradient.
  impl_->EnsureGrad();
  if (seed.defined()) {
    const std::vector<float>& sv = seed.impl()->data;
    for (size_t i = 0; i < sv.size(); ++i) impl_->grad[i] += sv[i];
  } else {
    impl_->grad[0] += 1.0f;
  }

  // Reverse topological order: outputs before inputs.
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    TensorImpl* node = *it;
    if (node->backward_fn) {
      node->EnsureGrad();
      node->backward_fn(*node);
    }
  }
}

Tensor Tensor::Detach() const {
  TB_CHECK(defined());
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = impl_->shape;
  impl->data = impl_->data;  // copy (storage sharing would alias grads)
  return FromImpl(std::move(impl));
}

Tensor Tensor::Clone() const { return Detach(); }

std::string ToDebugString(const Tensor& t, int max_elements) {
  if (!t.defined()) return "Tensor(undefined)";
  std::ostringstream out;
  out << "Tensor" << t.shape().ToString() << " {";
  const int64_t n = std::min<int64_t>(t.numel(), max_elements);
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) out << ", ";
    out << t.data()[i];
  }
  if (n < t.numel()) out << ", ...";
  out << "}";
  return out.str();
}

}  // namespace trafficbench
