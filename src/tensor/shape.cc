#include "src/tensor/shape.h"

#include <sstream>

#include "src/util/check.h"

namespace trafficbench {

Shape::Shape(std::initializer_list<int64_t> dims) : dims_(dims) {
  for (int64_t d : dims_) TB_CHECK_GE(d, 0) << "in shape " << ToString();
}

Shape::Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {
  for (int64_t d : dims_) TB_CHECK_GE(d, 0) << "in shape " << ToString();
}

int64_t Shape::numel() const {
  int64_t n = 1;
  for (int64_t d : dims_) n *= d;
  return n;
}

int Shape::CanonicalAxis(int axis) const {
  const int r = rank();
  TB_CHECK(axis >= -r && axis < r)
      << "axis " << axis << " out of range for shape " << ToString();
  return axis < 0 ? axis + r : axis;
}

int64_t Shape::dim(int axis) const { return dims_[CanonicalAxis(axis)]; }

std::vector<int64_t> Shape::Strides() const {
  std::vector<int64_t> strides(dims_.size(), 1);
  for (int i = rank() - 2; i >= 0; --i) {
    strides[i] = strides[i + 1] * dims_[i + 1];
  }
  return strides;
}

std::string Shape::ToString() const {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) out << ", ";
    out << dims_[i];
  }
  out << "]";
  return out.str();
}

Shape Shape::Broadcast(const Shape& a, const Shape& b) {
  const int rank = std::max(a.rank(), b.rank());
  std::vector<int64_t> dims(rank, 1);
  for (int i = 0; i < rank; ++i) {
    const int64_t da = i < rank - a.rank() ? 1 : a.dims()[i - (rank - a.rank())];
    const int64_t db = i < rank - b.rank() ? 1 : b.dims()[i - (rank - b.rank())];
    TB_CHECK(da == db || da == 1 || db == 1)
        << "cannot broadcast " << a.ToString() << " with " << b.ToString();
    dims[i] = std::max(da, db);
  }
  return Shape(std::move(dims));
}

bool Shape::BroadcastsTo(const Shape& from, const Shape& to) {
  if (from.rank() > to.rank()) return false;
  const int offset = to.rank() - from.rank();
  for (int i = 0; i < from.rank(); ++i) {
    const int64_t df = from.dims()[i];
    const int64_t dt = to.dims()[i + offset];
    if (df != dt && df != 1) return false;
  }
  return true;
}

}  // namespace trafficbench
