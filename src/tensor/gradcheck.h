#ifndef TRAFFICBENCH_TENSOR_GRADCHECK_H_
#define TRAFFICBENCH_TENSOR_GRADCHECK_H_

#include <functional>
#include <string>
#include <vector>

#include "src/tensor/tensor.h"

namespace trafficbench {

/// Result of a numerical gradient check.
struct GradCheckResult {
  bool passed = true;
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
  std::string detail;  // first failing entry, if any
};

/// Verifies reverse-mode gradients against central finite differences.
///
/// `fn` must map the inputs to a scalar tensor. Each input is perturbed
/// elementwise with step `epsilon`; a mismatch beyond `tolerance`
/// (on min(abs err, rel err)) fails the check. Inputs must already have
/// requires_grad set.
GradCheckResult CheckGradients(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    std::vector<Tensor> inputs, double epsilon = 1e-3,
    double tolerance = 2e-2);

}  // namespace trafficbench

#endif  // TRAFFICBENCH_TENSOR_GRADCHECK_H_
