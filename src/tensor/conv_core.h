#ifndef TRAFFICBENCH_TENSOR_CONV_CORE_H_
#define TRAFFICBENCH_TENSOR_CONV_CORE_H_

// Conv2d kernel cores, shared by the eager op (ops.cc) and compiled-plan
// replays (DESIGN.md §12).
//
// Two cores compute the identical convolution:
//   - Conv2dNaive: the historical NCHW loop nest, dispatched by the eager
//     op. Slow when W_out is small (the temporal-conv case: H = nodes,
//     W = time, so the contiguous inner loop is only a few elements).
//   - Conv2dPlan: the plan-path core. It transposes each input plane to
//     [W][H] scratch so the inner accumulation runs contiguously over the
//     long H axis (nodes), then transposes the result back.
//
// Bit-identity: for every output element both cores produce the exact same
// float sequence — terms ordered by ascending (ci, ki, kj) with the same
// zero-weight skip, one multiply-add per term, initialized from the same
// bias value (or 0). Transposes only move data. Both cores live in this
// translation unit ON PURPOSE: it is compiled with the base (non--march=
// native) flags like ops.cc, so the multiply-add here is never contracted
// to FMA even in NATIVE builds, keeping plan output bit-identical to the
// eager forward. Do not move these loops into kernels.cc.
//
// Parallelism: one task per (batch, channel) plane for the conv and the
// transposes; planes are disjoint and each output element's chain stays in
// one task, satisfying the deterministic-chunking contract.
//
// A third core, Conv2dGemmBf16, serves the reduced-precision plan tiers
// only (DESIGN.md §13): it rewrites the conv as im2col + a bf16
// blocked-panel GEMM. It is deliberately NOT bit-identical to the two fp32
// cores — reduced tiers are governed by the registry's epsilon contract —
// but keeps the per-tier determinism guarantees (thread count, AVX2 vs
// scalar). Its loops here are copies only; the arithmetic lives in
// kernels.cc behind the CPUID dispatch.

#include <cstdint>

#include "src/exec/execution_context.h"
#include "src/tensor/kernels.h"

namespace trafficbench::conv {

struct Conv2dGeometry {
  int64_t batch = 0, c_in = 0, h = 0, w = 0;
  int64_t c_out = 0, kh = 0, kw = 0, h_out = 0, w_out = 0;
  int stride_h = 1, stride_w = 1, pad_h = 0, pad_w = 0, dil_h = 1, dil_w = 1;
};

/// The historical NCHW loop nest. `out` must be pre-zeroed when `bias` is
/// null (with bias, every plane is initialized from it).
void Conv2dNaive(exec::ExecutionContext& ctx, const float* in,
                 const float* weight, const float* bias, float* out,
                 const Conv2dGeometry& g);

/// Scratch sizes (floats) for Conv2dPlan: the [B,C,W,H] input transpose and
/// the [B,C_out,W_out,H_out] pre-transpose output.
int64_t Conv2dPlanAuxIn(const Conv2dGeometry& g);
int64_t Conv2dPlanAuxOut(const Conv2dGeometry& g);

/// The permuted-layout core with an optional fused activation epilogue
/// (applied per output plane after its accumulation completes — the same
/// per-element op order as a separate eager activation pass). `out` need
/// not be pre-zeroed. `aux_in`/`aux_out` are caller-bound scratch of the
/// sizes above.
void Conv2dPlan(exec::ExecutionContext& ctx, const float* in,
                const float* weight, const float* bias, float* out,
                float* aux_in, float* aux_out, const Conv2dGeometry& g,
                kernels::EpilogueAct act, float leaky_slope);

/// Scratch sizes (floats) for Conv2dGemmBf16: the im2col matrix
/// [B*H_out*W_out, C_in*Kh*Kw] and the row-major GEMM output
/// [B*H_out*W_out, C_out].
int64_t Conv2dGemmAuxCol(const Conv2dGeometry& g);
int64_t Conv2dGemmAuxOut(const Conv2dGeometry& g);

/// Reduced-tier conv core: im2col + blocked-panel bf16 GEMM with a fused
/// bias/activation epilogue. `taps` is the [C_in*Kh*Kw, C_out] tap matrix
/// packed once at plan-compile time by kernels::PackBf16Panels; the matmul
/// runs through kernels::GemmBf16AccNNRows, so weight bytes are read at
/// half the fp32 width with no per-call packing. Unpadded convolutions
/// (every tap in-bounds) skip the im2col materialization entirely: the
/// gather GEMM broadcasts A straight out of the NCHW input through a
/// per-depth offset table, bit-identically to the materialized path.
/// Per output element the
/// accumulation still walks ascending (ci, ki, kj) — the same term order
/// as the fp32 cores — but each step is a fused multiply-add over bf16
/// taps, so the result is NOT bit-identical to Conv2dPlan. Callers are the
/// reduced-precision plan replays, bound by the registry's epsilon
/// contract (DESIGN.md §13), not by eager bit-parity; within a tier the
/// result is bit-identical at any thread count and across the AVX2/scalar
/// kernel pair, inherited from the GEMM driver.
void Conv2dGemmBf16(exec::ExecutionContext& ctx, const float* in,
                    const uint16_t* taps, const float* bias, float* out,
                    float* aux_col, float* aux_gemm, const Conv2dGeometry& g,
                    kernels::EpilogueAct act, float leaky_slope);

}  // namespace trafficbench::conv

#endif  // TRAFFICBENCH_TENSOR_CONV_CORE_H_
