#ifndef TRAFFICBENCH_TENSOR_BUFFER_POOL_H_
#define TRAFFICBENCH_TENSOR_BUFFER_POOL_H_

// Size-bucketed free-list recycler for the float buffers of the tensor
// engine. Every op output, gradient buffer and backward scratch vector used
// to be a fresh heap allocation per call; the pool makes the steady-state
// training loop allocation-free: buffers released when a step's autograd
// graph dies are handed back to the next step's ops.
//
// Ownership: each ExecutionContext owns one pool via shared_ptr, and every
// pooled tensor holds a reference, so buffers released after the context is
// gone still land in a live pool (which dies with its last holder).
//
// Thread-safety: all members are mutex-guarded; acquire/release may be
// called from any thread (the op layer calls from the dispatching thread,
// tests hammer it from ParallelFor workers).

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace trafficbench {

class BufferPool {
 public:
  /// Counters. `hits + misses` is the total number of acquires.
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t releases = 0;       // buffers accepted back into the pool
    int64_t dropped = 0;        // releases rejected (too small / over cap)
    int64_t pooled_bytes = 0;   // bytes currently cached and idle
    int64_t served_bytes = 0;   // cumulative bytes handed out from cache

    double HitRate() const {
      const int64_t acquires = hits + misses;
      return acquires > 0 ? static_cast<double>(hits) / acquires : 0.0;
    }
  };

  static constexpr int64_t kMinBucketFloats = 64;
  static constexpr int64_t kDefaultMaxPooledBytes = 512ll * 1024 * 1024;

  explicit BufferPool(int64_t max_pooled_bytes = kDefaultMaxPooledBytes);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// A vector of size n whose contents are unspecified (callers overwrite
  /// every element). Capacity is the bucket size, so a round-trip through
  /// Release lands back in the same bucket.
  std::vector<float> Acquire(int64_t n);
  /// A vector of size n filled with zeros.
  std::vector<float> AcquireZeroed(int64_t n);
  /// Hands a buffer back for reuse. Buffers smaller than the minimum
  /// bucket, or that would push the pool past its byte cap, are dropped
  /// (freed normally).
  void Release(std::vector<float>&& buffer);

  Stats stats() const;
  void ResetStats();
  /// Frees all cached buffers (counters are kept).
  void Clear();

  /// The capacity Acquire(n) reserves: the smallest power of two >=
  /// max(n, kMinBucketFloats). Exposed for the bucket-rounding tests.
  static int64_t BucketCapacity(int64_t n);

  /// One-line human summary, e.g.
  /// "pool: 97.8% hit (1893/1936 acquires), 12.4 MiB pooled, 0 dropped";
  /// empty string when nothing was acquired yet.
  std::string Summary() const;

 private:
  mutable std::mutex mu_;
  const int64_t max_pooled_bytes_;
  Stats stats_;
  /// Free lists keyed by bucket capacity (in floats).
  std::unordered_map<int64_t, std::vector<std::vector<float>>> buckets_;
};

}  // namespace trafficbench

#endif  // TRAFFICBENCH_TENSOR_BUFFER_POOL_H_
