#include "src/tensor/conv_core.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#ifdef __SSE2__
#include <emmintrin.h>
#endif

namespace trafficbench::conv {

namespace {

/// How many kernel taps one accumulation pass may fuse. Bounded so the
/// broadcast registers and source pointers stay in registers.
constexpr int kMaxFuseTaps = 4;

/// dst[i] += w[0]*src[0][i]; dst[i] += w[1]*src[1][i]; ... for i in
/// [0, n), terms applied in index order. The SSE2 body performs the exact
/// scalar operations per lane — one multiply then one add per term, each
/// individually rounded, in the same per-element order — so it is
/// bit-identical to `cnt` separate scalar passes (elements are
/// independent; no reassociation). This TU is compiled without FMA, so
/// neither body can be contracted. Fusing taps cuts the dst
/// read-modify-write traffic by `cnt`, which is what bounds this kernel.
inline void AxpyRunN(float* dst, const float* const* srcs, const float* ws,
                     int cnt, int64_t n) {
#ifdef __SSE2__
  __m128 w4[kMaxFuseTaps];
  for (int t = 0; t < cnt; ++t) w4[t] = _mm_set1_ps(ws[t]);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128 d = _mm_loadu_ps(dst + i);
    for (int t = 0; t < cnt; ++t) {
      d = _mm_add_ps(d, _mm_mul_ps(w4[t], _mm_loadu_ps(srcs[t] + i)));
    }
    _mm_storeu_ps(dst + i, d);
  }
  for (; i < n; ++i) {
    float v = dst[i];
    for (int t = 0; t < cnt; ++t) v += ws[t] * srcs[t][i];
    dst[i] = v;
  }
#else
  for (int64_t i = 0; i < n; ++i) {
    float v = dst[i];
    for (int t = 0; t < cnt; ++t) v += ws[t] * srcs[t][i];
    dst[i] = v;
  }
#endif
}

/// ceil(x / d) for d > 0 and x of any sign (truncation toward zero already
/// equals the ceiling for negative numerators).
inline int64_t CeilDiv(int64_t x, int64_t d) {
  return x >= 0 ? (x + d - 1) / d : -((-x) / d);
}

void ApplyActivation(float* data, int64_t n, kernels::EpilogueAct act,
                     float slope) {
  switch (act) {
    case kernels::EpilogueAct::kNone:
      break;
    case kernels::EpilogueAct::kRelu:
      for (int64_t i = 0; i < n; ++i) {
        const float v = data[i];
        data[i] = v > 0.0f ? v : 0.0f;
      }
      break;
    case kernels::EpilogueAct::kSigmoid:
      for (int64_t i = 0; i < n; ++i) {
        data[i] = 1.0f / (1.0f + std::exp(-data[i]));
      }
      break;
    case kernels::EpilogueAct::kTanh:
      for (int64_t i = 0; i < n; ++i) data[i] = std::tanh(data[i]);
      break;
    case kernels::EpilogueAct::kLeakyRelu:
      for (int64_t i = 0; i < n; ++i) {
        const float v = data[i];
        data[i] = v > 0.0f ? v : slope * v;
      }
      break;
  }
}

}  // namespace

void Conv2dNaive(exec::ExecutionContext& ctx, const float* in,
                 const float* weight, const float* bias, float* out,
                 const Conv2dGeometry& g) {
  // One task per (batch, out-channel) output plane: planes are disjoint
  // and each plane's accumulation order matches the serial kernel.
  ctx.ParallelFor(g.batch * g.c_out, /*grain=*/1,
                  [&](int64_t begin, int64_t end) {
    for (int64_t plane = begin; plane < end; ++plane) {
      const int64_t b = plane / g.c_out;
      const int64_t co = plane % g.c_out;
      float* out_plane = out + plane * g.h_out * g.w_out;
      if (bias != nullptr) {
        const float bv = bias[co];
        for (int64_t i = 0; i < g.h_out * g.w_out; ++i) out_plane[i] = bv;
      }
      for (int64_t ci = 0; ci < g.c_in; ++ci) {
        const float* in_plane = in + (b * g.c_in + ci) * g.h * g.w;
        const float* w_block = weight + (co * g.c_in + ci) * g.kh * g.kw;
        for (int64_t ki = 0; ki < g.kh; ++ki) {
          for (int64_t kj = 0; kj < g.kw; ++kj) {
            const float wv = w_block[ki * g.kw + kj];
            if (wv == 0.0f) continue;
            for (int64_t ho = 0; ho < g.h_out; ++ho) {
              const int64_t hi = ho * g.stride_h - g.pad_h + ki * g.dil_h;
              if (hi < 0 || hi >= g.h) continue;
              float* out_row = out_plane + ho * g.w_out;
              const float* in_row = in_plane + hi * g.w;
              for (int64_t wo = 0; wo < g.w_out; ++wo) {
                const int64_t wi = wo * g.stride_w - g.pad_w + kj * g.dil_w;
                if (wi < 0 || wi >= g.w) continue;
                out_row[wo] += wv * in_row[wi];
              }
            }
          }
        }
      }
    }
  });
}

int64_t Conv2dPlanAuxIn(const Conv2dGeometry& g) {
  return g.batch * g.c_in * g.h * g.w;
}

int64_t Conv2dPlanAuxOut(const Conv2dGeometry& g) {
  return g.batch * g.c_out * g.h_out * g.w_out;
}

void Conv2dPlan(exec::ExecutionContext& ctx, const float* in,
                const float* weight, const float* bias, float* out,
                float* aux_in, float* aux_out, const Conv2dGeometry& g,
                kernels::EpilogueAct act, float leaky_slope) {
  const int64_t h = g.h, w = g.w, h_out = g.h_out, w_out = g.w_out;
  // 1) Transpose every input plane [H][W] -> [W][H] so the accumulation
  //    below runs contiguously over H (the long axis in temporal convs).
  ctx.ParallelFor(g.batch * g.c_in, /*grain=*/1,
                  [&](int64_t begin, int64_t end) {
    for (int64_t plane = begin; plane < end; ++plane) {
      const float* src = in + plane * h * w;
      float* dst = aux_in + plane * h * w;
      for (int64_t y = 0; y < h; ++y) {
        for (int64_t x = 0; x < w; ++x) dst[x * h + y] = src[y * w + x];
      }
    }
  });
  // 2) Accumulate into [W_out][H_out] planes. Terms are ordered by
  //    ascending (ci, ki, kj) with the same zero-weight skip as
  //    Conv2dNaive, so every output element sees the identical float
  //    sequence; only the iteration over elements is rearranged.
  ctx.ParallelFor(g.batch * g.c_out, /*grain=*/1,
                  [&](int64_t begin, int64_t end) {
    for (int64_t plane = begin; plane < end; ++plane) {
      const int64_t b = plane / g.c_out;
      const int64_t co = plane % g.c_out;
      float* out_plane = aux_out + plane * h_out * w_out;
      const float init = bias != nullptr ? bias[co] : 0.0f;
      for (int64_t i = 0; i < h_out * w_out; ++i) out_plane[i] = init;
      for (int64_t ci = 0; ci < g.c_in; ++ci) {
        const float* in_plane = aux_in + (b * g.c_in + ci) * h * w;
        const float* w_block = weight + (co * g.c_in + ci) * g.kh * g.kw;
        for (int64_t ki = 0; ki < g.kh; ++ki) {
          const int64_t y_off = ki * g.dil_h - g.pad_h;
          const int64_t yo_lo =
              std::max<int64_t>(0, CeilDiv(-y_off, g.stride_h));
          const int64_t yo_hi =
              std::min<int64_t>(h_out, CeilDiv(h - y_off, g.stride_h));
          for (int64_t xo = 0; xo < w_out; ++xo) {
            float* dst_col = out_plane + xo * h_out;
            // All kj taps for this (ci, ki, xo) write the same yo range
            // (the bounds depend only on ki) and are consecutive in the
            // reference (ci, ki, kj) term order, so up to kMaxFuseTaps of
            // them fuse into one pass over the destination column.
            const float* srcs[kMaxFuseTaps];
            float ws[kMaxFuseTaps];
            int cnt = 0;
            for (int64_t kj = 0; kj < g.kw; ++kj) {
              const float wv = w_block[ki * g.kw + kj];
              if (wv == 0.0f) continue;
              const int64_t xi = xo * g.stride_w - g.pad_w + kj * g.dil_w;
              if (xi < 0 || xi >= w) continue;
              if (g.stride_h != 1) {
                const float* src_col = in_plane + xi * h;
                for (int64_t yo = yo_lo; yo < yo_hi; ++yo) {
                  dst_col[yo] += wv * src_col[yo * g.stride_h + y_off];
                }
                continue;
              }
              srcs[cnt] = in_plane + xi * h + y_off + yo_lo;
              ws[cnt] = wv;
              if (++cnt == kMaxFuseTaps) {
                AxpyRunN(dst_col + yo_lo, srcs, ws, cnt, yo_hi - yo_lo);
                cnt = 0;
              }
            }
            if (cnt > 0) {
              AxpyRunN(dst_col + yo_lo, srcs, ws, cnt, yo_hi - yo_lo);
            }
          }
        }
      }
      // Fused activation: applied once per element after its full
      // accumulation chain, matching a separate eager activation pass.
      ApplyActivation(out_plane, h_out * w_out, act, leaky_slope);
    }
  });
  // 3) Transpose output planes [W_out][H_out] -> [H_out][W_out].
  ctx.ParallelFor(g.batch * g.c_out, /*grain=*/1,
                  [&](int64_t begin, int64_t end) {
    for (int64_t plane = begin; plane < end; ++plane) {
      const float* src = aux_out + plane * h_out * w_out;
      float* dst = out + plane * h_out * w_out;
      for (int64_t x = 0; x < w_out; ++x) {
        for (int64_t y = 0; y < h_out; ++y) dst[y * w_out + x] = src[x * h_out + y];
      }
    }
  });
}

int64_t Conv2dGemmAuxCol(const Conv2dGeometry& g) {
  return g.batch * g.h_out * g.w_out * g.c_in * g.kh * g.kw;
}

int64_t Conv2dGemmAuxOut(const Conv2dGeometry& g) {
  return g.batch * g.h_out * g.w_out * g.c_out;
}

void Conv2dGemmBf16(exec::ExecutionContext& ctx, const float* in,
                    const uint16_t* taps, const float* bias, float* out,
                    float* aux_col, float* aux_gemm, const Conv2dGeometry& g,
                    kernels::EpilogueAct act, float leaky_slope) {
  const int64_t kk = g.c_in * g.kh * g.kw;
  const int64_t rows_per_batch = g.h_out * g.w_out;
  const int64_t m = g.batch * rows_per_batch;
  const int64_t n = g.c_out;
  kernels::EpilogueSpec epilogue;
  epilogue.bias = bias;
  epilogue.act = act;
  epilogue.leaky_slope = leaky_slope;
  // Zero-copy im2col (the gather path): with no padding, every tap of
  // every output element is an in-bounds input element, so im2col row
  // (b, ho, wo) is just a fixed per-depth offset pattern applied to the
  // base pointer in + b*C*H*W + ho*sh*W + wo*sw. The gather GEMM broadcasts
  // A straight out of the NCHW input through that shared table — the
  // materialized [m, kk] matrix is never written. Values and FMA order are
  // identical to the materialized path, so the two are bit-identical; the
  // int32 guard only matters for inputs too large to index (fall back to
  // materializing).
  const bool gather = g.pad_h == 0 && g.pad_w == 0 &&
                      g.c_in * g.h * g.w <=
                          std::numeric_limits<int32_t>::max();
  std::vector<int32_t> offs;
  if (gather) {
    offs.resize(kk);
    int64_t idx = 0;
    for (int64_t ci = 0; ci < g.c_in; ++ci) {
      for (int64_t ki = 0; ki < g.kh; ++ki) {
        for (int64_t kj = 0; kj < g.kw; ++kj) {
          offs[idx++] = static_cast<int32_t>(ci * g.h * g.w +
                                             ki * g.dil_h * g.w +
                                             kj * g.dil_w);
        }
      }
    }
  }
  // One task per kGemmRowChunk output rows, the GEMM micro-kernel's native
  // granularity. Each task runs the whole im2col -> GEMM -> epilogue ->
  // scatter chain on its tile while it is cache-hot, instead of streaming
  // the full [m, kk] im2col matrix through memory twice. The chunk grid
  // depends only on m, every output element's arithmetic stays inside one
  // task, and all writes are disjoint — so the result is bit-identical at
  // any thread count; AVX2-vs-scalar identity comes from the GEMM kernel
  // (the loops in this TU are copies and contraction-free epilogue ops).
  const int64_t row_chunks =
      (m + kernels::kGemmRowChunk - 1) / kernels::kGemmRowChunk;
  ctx.ParallelFor(row_chunks, /*grain=*/1, [&](int64_t begin, int64_t end) {
    for (int64_t chunk = begin; chunk < end; ++chunk) {
      const int64_t r0 = chunk * kernels::kGemmRowChunk;
      const int64_t r1 = std::min(m, r0 + kernels::kGemmRowChunk);
      float* acol = aux_col + r0 * kk;
      float* ctile = aux_gemm + r0 * n;
      if (gather) {
        const float* rows[kernels::kGemmRowChunk];
        for (int64_t r = r0; r < r1; ++r) {
          const int64_t b = r / rows_per_batch;
          const int64_t rem = r % rows_per_batch;
          const int64_t ho = rem / g.w_out;
          const int64_t wo = rem % g.w_out;
          rows[r - r0] = in + b * g.c_in * g.h * g.w +
                         ho * g.stride_h * g.w + wo * g.stride_w;
        }
        for (int64_t i = 0; i < (r1 - r0) * n; ++i) ctile[i] = 0.0f;
        kernels::GemmBf16GatherAccNNRows(rows, offs.data(), taps, ctile,
                                         r1 - r0, kk, n);
        kernels::ApplyEpilogueRows(ctile, 0, r1 - r0, n, epilogue);
        for (int64_t r = r0; r < r1; ++r) {
          const int64_t b = r / rows_per_batch;
          const int64_t rem = r % rows_per_batch;
          const float* src = ctile + (r - r0) * n;
          float* dst = out + b * n * rows_per_batch + rem;
          for (int64_t co = 0; co < n; ++co) {
            dst[co * rows_per_batch] = src[co];
          }
        }
        continue;
      }
      // im2col: tile row (r - r0) holds output element r's receptive field
      // ordered by ascending (ci, ki, kj) — the same term order the direct
      // cores accumulate in — with out-of-bounds taps zero-filled. A chunk
      // may straddle batch boundaries; b is derived per row.
      const bool single_row = g.kh == 1 && g.stride_h == 1 && g.dil_h == 1 &&
                              g.pad_h == 0;
      for (int64_t r = r0; r < r1; ++r) {
        const int64_t b = r / rows_per_batch;
        const int64_t rem = r % rows_per_batch;
        const int64_t ho = rem / g.w_out;
        const int64_t wo = rem % g.w_out;
        float* dst = acol + (r - r0) * kk;
        const float* in_b = in + b * g.c_in * g.h * g.w;
        if (single_row) {
          // Temporal-conv fast path (1 x Kw kernel, H untouched): each
          // channel contributes the strip in[ci][ho][base + kj*dil_w] for
          // kj in [0, kw), zero outside [0, w). The in-bounds tap range
          // [lo, hi) depends only on wo, so the per-tap branches reduce to
          // three short branch-free runs per channel (contiguous reads
          // when dil_w == 1, strided otherwise).
          const int64_t base = wo * g.stride_w - g.pad_w;
          const int64_t lo = std::min<int64_t>(
              g.kw, std::max<int64_t>(0, CeilDiv(-base, g.dil_w)));
          const int64_t hi = std::max<int64_t>(
              lo, std::min<int64_t>(g.kw, CeilDiv(g.w - base, g.dil_w)));
          const float* src = in_b + ho * g.w + base;
          for (int64_t ci = 0; ci < g.c_in; ++ci, src += g.h * g.w,
                       dst += g.kw) {
            for (int64_t kj = 0; kj < lo; ++kj) dst[kj] = 0.0f;
            for (int64_t kj = lo; kj < hi; ++kj) dst[kj] = src[kj * g.dil_w];
            for (int64_t kj = hi; kj < g.kw; ++kj) dst[kj] = 0.0f;
          }
          continue;
        }
        int64_t idx = 0;
        for (int64_t ci = 0; ci < g.c_in; ++ci) {
          const float* in_plane = in_b + ci * g.h * g.w;
          for (int64_t ki = 0; ki < g.kh; ++ki) {
            const int64_t hi = ho * g.stride_h - g.pad_h + ki * g.dil_h;
            const float* in_row =
                (hi >= 0 && hi < g.h) ? in_plane + hi * g.w : nullptr;
            for (int64_t kj = 0; kj < g.kw; ++kj) {
              const int64_t wi = wo * g.stride_w - g.pad_w + kj * g.dil_w;
              dst[idx++] = (in_row != nullptr && wi >= 0 && wi < g.w)
                               ? in_row[wi]
                               : 0.0f;
            }
          }
        }
      }
      // Tile GEMM: [r1-r0, kk] x bf16 [kk, n]. The kernel accumulates, so
      // zero the C tile first; then the driver-identical epilogue.
      for (int64_t i = 0; i < (r1 - r0) * n; ++i) ctile[i] = 0.0f;
      kernels::GemmBf16AccNNRows(acol, taps, ctile, 0, r1 - r0, kk, n);
      kernels::ApplyEpilogueRows(ctile, 0, r1 - r0, n, epilogue);
      // Scatter tile rows back to NCHW output planes.
      for (int64_t r = r0; r < r1; ++r) {
        const int64_t b = r / rows_per_batch;
        const int64_t rem = r % rows_per_batch;
        const float* src = ctile + (r - r0) * n;
        float* dst = out + b * n * rows_per_batch + rem;
        for (int64_t co = 0; co < n; ++co) dst[co * rows_per_batch] = src[co];
      }
    }
  });
}

}  // namespace trafficbench::conv
