#ifndef TRAFFICBENCH_TENSOR_SHAPE_H_
#define TRAFFICBENCH_TENSOR_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace trafficbench {

/// Dimensions of a dense row-major tensor. Rank 0 denotes a scalar.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims);
  explicit Shape(std::vector<int64_t> dims);

  int rank() const { return static_cast<int>(dims_.size()); }
  int64_t numel() const;

  /// Dimension extent along `axis`; negative axes count from the back.
  int64_t dim(int axis) const;

  const std::vector<int64_t>& dims() const { return dims_; }

  /// Row-major strides (in elements); stride of the last axis is 1.
  std::vector<int64_t> Strides() const;

  /// Canonicalizes a possibly negative axis into [0, rank).
  int CanonicalAxis(int axis) const;

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// Renders e.g. "[2, 3, 4]".
  std::string ToString() const;

  /// NumPy-style broadcast of two shapes. Check-fails on incompatibility.
  static Shape Broadcast(const Shape& a, const Shape& b);

  /// True if `from` can broadcast to `to`.
  static bool BroadcastsTo(const Shape& from, const Shape& to);

 private:
  std::vector<int64_t> dims_;
};

}  // namespace trafficbench

#endif  // TRAFFICBENCH_TENSOR_SHAPE_H_
