#ifndef TRAFFICBENCH_TENSOR_PARTITIONED_H_
#define TRAFFICBENCH_TENSOR_PARTITIONED_H_

// Partitioned sparse graph propagation (the execution side of
// src/graph/partition.h; see DESIGN.md §15).
//
// At city scale (2k-4k nodes) a monolithic SpMM streams the whole feature
// matrix through cache once per support application. A PartitionedCsr
// splits one square CsrMatrix into K per-partition blocks: each block owns
// a contiguous-in-partition-order set of rows and reads only the feature
// rows its nonzeros actually reference, gathered through a precomputed
// int32 index table into a compact scratch buffer that stays L2-resident.
// Columns owned by other partitions are the block's "halo"; the gather step
// is the halo exchange, and a verification pass re-checks the halo rows
// against their source before the block's SpMM consumes them (the
// `halo_exchange` fault site corrupts one gather buffer to prove the
// verifier works — on mismatch the driver reports failure and the op layer
// falls back to the monolithic SpMM, keeping results bit-identical).
//
// Bit-identity contract: a block keeps its rows' nonzeros in the exact
// global-CSR order (only column *indices* are remapped into gather-table
// space; the gather table is ascending in global column id, so local
// columns stay ascending too) and the gathered feature rows are bit-copies
// of the monolithic operand. Every output element therefore runs the same
// accumulation chain over the same float values as SpmmBatched — the
// partitioned result is bitwise equal to the monolithic one for ANY
// partition count and ANY thread count.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/exec/execution_context.h"
#include "src/graph/partition.h"
#include "src/tensor/sparse.h"

namespace trafficbench::sparse {

/// One partition's view of one propagation direction. `rows` are the owned
/// global row ids (ascending); the local CSR arrays index into `gather`,
/// the ascending table of global column ids this block reads.
struct PartitionBlock {
  /// Owned global row ids, strictly ascending.
  std::vector<int32_t> rows;
  /// Global column ids referenced by the owned rows, strictly ascending
  /// (owned and halo columns interleaved in global order).
  std::vector<int32_t> gather;
  /// Positions g in `gather` whose column is owned by another partition —
  /// the halo. Ascending.
  std::vector<int64_t> halo_slots;
  /// Local CSR over the owned rows: row_ptr has rows.size()+1 entries;
  /// col_idx holds positions into `gather` (ascending within each row);
  /// values are the source nonzeros in their original global order.
  std::vector<int64_t> row_ptr;
  std::vector<int32_t> col_idx;
  std::vector<float> values;

  int64_t num_rows() const { return static_cast<int64_t>(rows.size()); }
  int64_t gather_size() const { return static_cast<int64_t>(gather.size()); }
};

class PartitionedCsr;
using PartitionedCsrPtr = std::shared_ptr<const PartitionedCsr>;

/// A square CsrMatrix split into per-partition forward blocks (y = A x)
/// and backward blocks (dx = A^T dy) over one shared node partition.
/// Immutable after Build apart from the sticky `degraded` latch, which the
/// op layer sets when halo verification fails — from then on every apply
/// takes the monolithic path (the partitioned copy is no longer trusted).
class PartitionedCsr {
 public:
  /// Splits `csr` (square) over `partition` (covering csr->rows() nodes).
  static PartitionedCsrPtr Build(CsrPtr csr,
                                 const graph::GraphPartition& partition);

  const CsrPtr& source() const { return csr_; }
  int num_parts() const { return partition_.num_parts; }
  int64_t rows() const { return csr_->rows(); }
  const graph::GraphPartition& partition() const { return partition_; }
  const std::vector<PartitionBlock>& forward_blocks() const {
    return forward_;
  }
  const std::vector<PartitionBlock>& backward_blocks() const {
    return backward_;
  }

  /// Global ids of part `p`'s forward halo columns, ascending — exactly the
  /// support columns referenced by p's rows but owned elsewhere.
  std::vector<int32_t> HaloColumns(int p) const;

  /// Sticky failure latch (thread-safe; set once, first reason wins).
  bool degraded() const {
    return degraded_.load(std::memory_order_acquire);
  }
  std::string degrade_reason() const;
  void MarkDegraded(const std::string& reason) const;

 private:
  PartitionedCsr() = default;

  CsrPtr csr_;
  graph::GraphPartition partition_;
  std::vector<PartitionBlock> forward_;
  std::vector<PartitionBlock> backward_;

  mutable std::atomic<bool> degraded_{false};
  mutable std::mutex degrade_mu_;
  mutable std::string degrade_reason_;
};

/// Partitioned counterpart of kernels::SpmmBatched: y[batch] += A * x[batch]
/// over (batch, partition) tasks. `y` must be zeroed by the caller (the
/// blocks accumulate). Returns false when a halo verification failed — `y`
/// is then unspecified and the caller must redo the work monolithically.
/// Deterministic: the task decomposition is a pure function of
/// (num_batches, blocks), never the thread count.
bool SpmmPartitionedBatched(exec::ExecutionContext& ctx,
                            const std::vector<PartitionBlock>& blocks,
                            const float* x, float* y, int64_t num_batches,
                            int64_t rows, int64_t cols, int64_t f);

}  // namespace trafficbench::sparse

namespace trafficbench {

/// SparseMatMul through a PartitionedCsr: bitwise equal to
/// SparseMatMul(partitioned->source(), features) — forward and backward run
/// the partitioned driver, falling back to the monolithic kernel (and
/// latching `degraded`) if a halo verification fails. A degraded matrix
/// goes straight to the monolithic path.
Tensor SparseMatMul(const sparse::PartitionedCsrPtr& partitioned,
                    const Tensor& features);

}  // namespace trafficbench

#endif  // TRAFFICBENCH_TENSOR_PARTITIONED_H_
