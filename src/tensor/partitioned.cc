#include "src/tensor/partitioned.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <utility>

#include "src/tensor/buffer_pool.h"
#include "src/tensor/kernels.h"
#include "src/util/check.h"
#include "src/util/fault.h"

namespace trafficbench::sparse {

namespace {

// FaultInjector is not thread-safe and halo-exchange tasks run on pool
// workers, so their Should() calls serialize through this mutex (the
// exception documented in src/util/fault.h).
std::mutex& HaloFaultMutex() {
  static std::mutex mu;
  return mu;
}

/// Splits one CSR direction (forward or transpose arrays) into
/// per-partition blocks. Nonzeros keep their original per-row order;
/// columns are remapped through the ascending gather table, so local
/// columns stay ascending within each row (the kernel contract).
std::vector<PartitionBlock> BuildBlocks(
    const std::vector<int64_t>& row_ptr, const std::vector<int32_t>& col_idx,
    const std::vector<float>& values, const graph::GraphPartition& partition) {
  std::vector<PartitionBlock> blocks(partition.num_parts);
  // Scatter map global column id -> gather slot, reused (and reset) per
  // part so the build stays O(nnz + parts-touched-columns).
  std::vector<int32_t> local_of(partition.num_nodes, -1);
  for (int p = 0; p < partition.num_parts; ++p) {
    PartitionBlock& block = blocks[p];
    block.rows = partition.nodes[p];

    for (int32_t i : block.rows) {
      for (int64_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
        block.gather.push_back(col_idx[k]);
      }
    }
    std::sort(block.gather.begin(), block.gather.end());
    block.gather.erase(std::unique(block.gather.begin(), block.gather.end()),
                       block.gather.end());
    for (int64_t g = 0; g < block.gather_size(); ++g) {
      const int32_t col = block.gather[g];
      local_of[col] = static_cast<int32_t>(g);
      if (partition.owner[col] != p) block.halo_slots.push_back(g);
    }

    block.row_ptr.assign(block.rows.size() + 1, 0);
    block.col_idx.reserve(block.gather.size());
    for (size_t r = 0; r < block.rows.size(); ++r) {
      const int32_t i = block.rows[r];
      for (int64_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
        block.col_idx.push_back(local_of[col_idx[k]]);
        block.values.push_back(values[k]);
      }
      block.row_ptr[r + 1] = static_cast<int64_t>(block.values.size());
    }

    for (int32_t col : block.gather) local_of[col] = -1;
  }
  return blocks;
}

}  // namespace

PartitionedCsrPtr PartitionedCsr::Build(CsrPtr csr,
                                        const graph::GraphPartition& partition) {
  TB_CHECK(csr != nullptr);
  TB_CHECK_EQ(csr->rows(), csr->cols())
      << "partitioned SpMM needs a square support";
  TB_CHECK_EQ(csr->rows(), partition.num_nodes);
  TB_CHECK_GE(partition.num_parts, 1);

  auto out = std::shared_ptr<PartitionedCsr>(new PartitionedCsr());
  out->csr_ = std::move(csr);
  out->partition_ = partition;
  out->forward_ = BuildBlocks(out->csr_->row_ptr(), out->csr_->col_idx(),
                              out->csr_->values(), partition);
  out->backward_ = BuildBlocks(out->csr_->t_row_ptr(), out->csr_->t_col_idx(),
                               out->csr_->t_values(), partition);
  return out;
}

std::vector<int32_t> PartitionedCsr::HaloColumns(int p) const {
  TB_CHECK(p >= 0 && p < num_parts());
  const PartitionBlock& block = forward_[p];
  std::vector<int32_t> halo;
  halo.reserve(block.halo_slots.size());
  for (int64_t g : block.halo_slots) halo.push_back(block.gather[g]);
  return halo;
}

std::string PartitionedCsr::degrade_reason() const {
  std::lock_guard<std::mutex> lock(degrade_mu_);
  return degrade_reason_;
}

void PartitionedCsr::MarkDegraded(const std::string& reason) const {
  std::lock_guard<std::mutex> lock(degrade_mu_);
  if (!degraded_.load(std::memory_order_relaxed)) degrade_reason_ = reason;
  degraded_.store(true, std::memory_order_release);
}

bool SpmmPartitionedBatched(exec::ExecutionContext& ctx,
                            const std::vector<PartitionBlock>& blocks,
                            const float* x, float* y, int64_t num_batches,
                            int64_t rows, int64_t cols, int64_t f) {
  const int64_t num_parts = static_cast<int64_t>(blocks.size());
  TB_CHECK_GE(num_parts, 1);
  std::atomic<bool> failed{false};
  const std::shared_ptr<BufferPool>& pool = ctx.buffer_pool();

  // One task per (batch, partition): output rows are disjoint across tasks,
  // and each task's accumulation chains are fixed by the block structure, so
  // scheduling cannot affect bits.
  ctx.ParallelFor(
      num_batches * num_parts, 1, [&](int64_t begin, int64_t end) {
        for (int64_t t = begin; t < end; ++t) {
          if (failed.load(std::memory_order_relaxed)) return;
          const int64_t batch = t / num_parts;
          const PartitionBlock& block = blocks[t % num_parts];
          if (block.num_rows() == 0) continue;
          const float* xb = x + batch * cols * f;
          float* yb = y + batch * rows * f;

          // Halo exchange: gather every referenced feature row (owned and
          // halo alike) into compact scratch — bit-copies of the monolithic
          // operand rows.
          std::vector<float> scratch = pool->Acquire(block.gather_size() * f);
          for (int64_t g = 0; g < block.gather_size(); ++g) {
            std::memcpy(scratch.data() + g * f, xb + block.gather[g] * f,
                        static_cast<size_t>(f) * sizeof(float));
          }

          if (!block.halo_slots.empty()) {
            FaultInjector& fault = FaultInjector::Global();
            if (fault.enabled()) {
              bool fire = false;
              {
                std::lock_guard<std::mutex> lock(HaloFaultMutex());
                fire = fault.Should(FaultSite::kHaloExchange);
              }
              if (fire) {
                // Corrupt the first float of the first halo row: any bit
                // flip makes the verification memcmp below fail.
                uint32_t bits;
                float* target = scratch.data() + block.halo_slots[0] * f;
                std::memcpy(&bits, target, sizeof(bits));
                bits ^= 1u;
                std::memcpy(target, &bits, sizeof(bits));
              }
            }
          }

          // Verify the halo rows against their source before consuming
          // them. A mismatch poisons the whole dispatch: the caller redoes
          // the work monolithically.
          for (int64_t g : block.halo_slots) {
            if (std::memcmp(scratch.data() + g * f, xb + block.gather[g] * f,
                            static_cast<size_t>(f) * sizeof(float)) != 0) {
              failed.store(true, std::memory_order_relaxed);
              pool->Release(std::move(scratch));
              return;
            }
          }

          // Owned rows are ascending but not contiguous in global space;
          // each maximal run of consecutive global ids maps to one
          // SpmmAccRows call writing straight into the global output (the
          // base pointer is offset so local row ls lands on global row
          // rows[ls]).
          const int64_t nr = block.num_rows();
          for (int64_t ls = 0; ls < nr;) {
            int64_t le = ls + 1;
            while (le < nr && block.rows[le] == block.rows[le - 1] + 1) ++le;
            kernels::SpmmAccRows(block.row_ptr.data(), block.col_idx.data(),
                                 block.values.data(), scratch.data(),
                                 yb + (block.rows[ls] - ls) * f, ls, le, f);
            ls = le;
          }
          pool->Release(std::move(scratch));
        }
      });
  return !failed.load(std::memory_order_acquire);
}

}  // namespace trafficbench::sparse
