#include "src/graph/road_network.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <utility>

#include "src/util/check.h"

namespace trafficbench::graph {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Grid spacing used by the kGrid / kGridArterial generators, in miles.
/// DeriveCapacities recovers row/column indices from coordinates with it.
constexpr double kGridSpacing = 0.8;

/// Fills one segment's capacity attributes from its road class.
void StampClass(RoadSegment* segment, RoadClass road_class) {
  segment->road_class = road_class;
  switch (road_class) {
    case RoadClass::kFreeway:
      segment->lanes = 4;
      segment->free_flow_mph = 65.0;
      segment->capacity_per_step = 4 * 180.0;
      break;
    case RoadClass::kArterial:
      segment->lanes = 2;
      segment->free_flow_mph = 45.0;
      segment->capacity_per_step = 2 * 75.0;
      break;
    case RoadClass::kLocal:
      segment->lanes = 1;
      segment->free_flow_mph = 30.0;
      segment->capacity_per_step = 55.0;
      break;
    case RoadClass::kRamp:
      segment->lanes = 1;
      segment->free_flow_mph = 35.0;
      segment->capacity_per_step = 90.0;
      break;
    case RoadClass::kUnclassified:
      segment->lanes = 0;
      segment->free_flow_mph = 0.0;
      segment->capacity_per_step = 0.0;
      break;
  }
}
}  // namespace

const char* RoadClassName(RoadClass road_class) {
  switch (road_class) {
    case RoadClass::kUnclassified:
      return "?";
    case RoadClass::kFreeway:
      return "freeway";
    case RoadClass::kArterial:
      return "arterial";
    case RoadClass::kLocal:
      return "local";
    case RoadClass::kRamp:
      return "ramp";
  }
  return "?";
}

RoadNetwork::RoadNetwork(std::vector<Sensor> sensors,
                         std::vector<RoadSegment> segments)
    : sensors_(std::move(sensors)), segments_(std::move(segments)) {
  const int64_t n = num_nodes();
  TB_CHECK_GT(n, 0);
  distances_.assign(n * n, kInf);
  in_adj_.resize(n);
  out_adj_.resize(n);
  for (int64_t i = 0; i < n; ++i) distances_[i * n + i] = 0.0;
  for (const RoadSegment& seg : segments_) {
    TB_CHECK(seg.from >= 0 && seg.from < n);
    TB_CHECK(seg.to >= 0 && seg.to < n);
    TB_CHECK_GT(seg.distance_miles, 0.0);
    distances_[seg.from * n + seg.to] = seg.distance_miles;
    out_adj_[seg.from].push_back(seg.to);
    in_adj_[seg.to].push_back(seg.from);
  }
}

double RoadNetwork::distance(int64_t from, int64_t to) const {
  TB_CHECK(from >= 0 && from < num_nodes());
  TB_CHECK(to >= 0 && to < num_nodes());
  return distances_[from * num_nodes() + to];
}

const std::vector<int64_t>& RoadNetwork::InNeighbors(int64_t node) const {
  TB_CHECK(node >= 0 && node < num_nodes());
  return in_adj_[node];
}

const std::vector<int64_t>& RoadNetwork::OutNeighbors(int64_t node) const {
  TB_CHECK(node >= 0 && node < num_nodes());
  return out_adj_[node];
}

RoadNetwork RoadNetwork::Generate(NetworkTopology topology, int64_t num_nodes,
                                  Rng* rng) {
  TB_CHECK_GE(num_nodes, 2);
  TB_CHECK(rng != nullptr);
  std::vector<Sensor> sensors;
  std::vector<RoadSegment> segments;
  sensors.reserve(num_nodes);

  auto add_bidirectional = [&](int64_t a, int64_t b, double dist) {
    segments.push_back({a, b, dist});
    segments.push_back({b, a, dist});
  };

  switch (topology) {
    case NetworkTopology::kCorridor: {
      // Main corridor takes ~75% of sensors; the rest become short branches
      // (on/off ramps and parallel arterials) attached at random points.
      const int64_t main_count = std::max<int64_t>(2, num_nodes * 3 / 4);
      double x = 0.0;
      for (int64_t i = 0; i < main_count; ++i) {
        sensors.push_back({i, x, rng->Normal(0.0, 0.05)});
        x += rng->Uniform(0.4, 1.2);  // sensor spacing in miles
      }
      for (int64_t i = 1; i < main_count; ++i) {
        const double d = sensors[i].x - sensors[i - 1].x;
        add_bidirectional(i - 1, i, d);
      }
      for (int64_t i = main_count; i < num_nodes; ++i) {
        const int64_t anchor = static_cast<int64_t>(
            rng->UniformInt(static_cast<uint64_t>(main_count)));
        const double dist = rng->Uniform(0.3, 0.9);
        sensors.push_back({i, sensors[anchor].x + rng->Normal(0.0, 0.2),
                           sensors[anchor].y + (rng->Bernoulli(0.5) ? dist : -dist)});
        add_bidirectional(anchor, i, dist);
      }
      break;
    }
    case NetworkTopology::kGrid: {
      const int64_t cols = std::max<int64_t>(
          2, static_cast<int64_t>(std::lround(std::sqrt(
                 static_cast<double>(num_nodes)))));
      const int64_t rows = (num_nodes + cols - 1) / cols;
      for (int64_t i = 0; i < num_nodes; ++i) {
        const int64_t r = i / cols;
        const int64_t c = i % cols;
        sensors.push_back({i, static_cast<double>(c) * 0.8,
                           static_cast<double>(r) * 0.8});
      }
      (void)rows;
      for (int64_t i = 0; i < num_nodes; ++i) {
        const int64_t r = i / cols;
        const int64_t c = i % cols;
        if (c + 1 < cols && i + 1 < num_nodes) {
          add_bidirectional(i, i + 1, rng->Uniform(0.6, 1.0));
        }
        if (i + cols < num_nodes) {
          add_bidirectional(i, i + cols, rng->Uniform(0.6, 1.0));
        }
        (void)r;
      }
      break;
    }
    case NetworkTopology::kMultiCorridor: {
      // Three corridors of roughly equal length joined at two hub nodes.
      const int64_t per = num_nodes / 3;
      TB_CHECK_GE(per, 2) << "kMultiCorridor needs at least 6 nodes";
      int64_t id = 0;
      std::vector<int64_t> heads, tails;
      for (int corridor = 0; corridor < 3; ++corridor) {
        const int64_t count =
            corridor == 2 ? num_nodes - 2 * per : per;
        double x = 0.0;
        const double y0 = corridor * 2.0;
        int64_t first = id;
        for (int64_t i = 0; i < count; ++i) {
          sensors.push_back({id, x, y0 + rng->Normal(0.0, 0.05)});
          if (i > 0) {
            add_bidirectional(id - 1, id, rng->Uniform(0.4, 1.1));
          }
          x += rng->Uniform(0.4, 1.1);
          ++id;
        }
        heads.push_back(first);
        tails.push_back(id - 1);
      }
      // Interchange links between corridors.
      add_bidirectional(tails[0], heads[1], rng->Uniform(0.8, 1.5));
      add_bidirectional(tails[1], heads[2], rng->Uniform(0.8, 1.5));
      add_bidirectional(tails[2], heads[0], rng->Uniform(0.8, 1.5));
      break;
    }
    case NetworkTopology::kGridArterial: {
      // Composite city: a kGrid-style urban core takes ~80% of the sensors;
      // the remainder form a kCorridor-style freeway chained south of the
      // grid (y = -1.6) and linked to the grid's first row by interchange
      // ramps. Grid coordinates stay on the exact kGridSpacing lattice so
      // DeriveCapacities can recover row/column indices.
      TB_CHECK_GE(num_nodes, 8) << "kGridArterial needs at least 8 nodes";
      const int64_t grid_count =
          std::max<int64_t>(4, std::min(num_nodes - 2, num_nodes * 4 / 5));
      const int64_t cols = std::max<int64_t>(
          2, static_cast<int64_t>(std::lround(std::sqrt(
                 static_cast<double>(grid_count)))));
      for (int64_t i = 0; i < grid_count; ++i) {
        const int64_t r = i / cols;
        const int64_t c = i % cols;
        sensors.push_back({i, static_cast<double>(c) * kGridSpacing,
                           static_cast<double>(r) * kGridSpacing});
      }
      for (int64_t i = 0; i < grid_count; ++i) {
        const int64_t c = i % cols;
        if (c + 1 < cols && i + 1 < grid_count) {
          add_bidirectional(i, i + 1, rng->Uniform(0.6, 1.0));
        }
        if (i + cols < grid_count) {
          add_bidirectional(i, i + cols, rng->Uniform(0.6, 1.0));
        }
      }
      // Freeway corridor spanning the grid's width.
      const int64_t corridor_count = num_nodes - grid_count;
      const double grid_width = static_cast<double>(cols - 1) * kGridSpacing;
      const double spacing =
          std::max(0.8, grid_width / std::max<int64_t>(1, corridor_count - 1));
      for (int64_t j = 0; j < corridor_count; ++j) {
        const int64_t id = grid_count + j;
        sensors.push_back({id, static_cast<double>(j) * spacing, -1.6});
        if (j > 0) add_bidirectional(id - 1, id, spacing);
      }
      // Interchange ramps: every other corridor node drops onto the nearest
      // first-row grid node (ties broken by the lower column index).
      for (int64_t j = 0; j < corridor_count; j += 2) {
        const int64_t id = grid_count + j;
        int64_t best = 0;
        double best_dx = std::abs(sensors[id].x - sensors[0].x);
        for (int64_t c = 1; c < std::min(cols, grid_count); ++c) {
          const double dx = std::abs(sensors[id].x - sensors[c].x);
          if (dx < best_dx) {
            best_dx = dx;
            best = c;
          }
        }
        add_bidirectional(id, best, std::max(0.3, 1.6 + best_dx * 0.25));
      }
      break;
    }
  }
  return RoadNetwork(std::move(sensors), std::move(segments));
}

RoadNetwork RoadNetwork::DeriveCapacities(NetworkTopology topology) const {
  const int64_t n = num_nodes();
  // Undirected degree: number of distinct neighbours in either direction.
  std::vector<int> degree(n, 0);
  for (int64_t i = 0; i < n; ++i) {
    std::vector<int64_t> nbrs = out_adj_[i];
    nbrs.insert(nbrs.end(), in_adj_[i].begin(), in_adj_[i].end());
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    degree[i] = static_cast<int>(nbrs.size());
  }
  // Row/column index of a sensor on the generator's grid lattice.
  auto grid_rc = [&](int64_t node) {
    return std::pair<int64_t, int64_t>(
        static_cast<int64_t>(std::lround(sensors_[node].y / kGridSpacing)),
        static_cast<int64_t>(std::lround(sensors_[node].x / kGridSpacing)));
  };
  auto grid_class = [&](int64_t from, int64_t to) {
    const auto [r0, c0] = grid_rc(from);
    const auto [r1, c1] = grid_rc(to);
    // A segment lies on an arterial line when both endpoints share an
    // every-4th row or column; everything else is a local street.
    if (r0 == r1 && r0 % 4 == 0) return RoadClass::kArterial;
    if (c0 == c1 && c0 % 4 == 0) return RoadClass::kArterial;
    return RoadClass::kLocal;
  };

  std::vector<RoadSegment> stamped = segments_;
  for (RoadSegment& segment : stamped) {
    RoadClass road_class = RoadClass::kUnclassified;
    switch (topology) {
      case NetworkTopology::kCorridor:
      case NetworkTopology::kMultiCorridor:
        // Chain segments are freeway mainline; a segment touching a
        // degree-1 leaf is an on/off-ramp branch.
        road_class = (degree[segment.from] == 1 || degree[segment.to] == 1)
                         ? RoadClass::kRamp
                         : RoadClass::kFreeway;
        break;
      case NetworkTopology::kGrid:
        road_class = grid_class(segment.from, segment.to);
        break;
      case NetworkTopology::kGridArterial: {
        // Corridor nodes sit south of the grid (y < 0).
        const bool from_corridor = sensors_[segment.from].y < -0.5;
        const bool to_corridor = sensors_[segment.to].y < -0.5;
        if (from_corridor && to_corridor) {
          road_class = RoadClass::kFreeway;
        } else if (from_corridor || to_corridor) {
          road_class = RoadClass::kRamp;
        } else {
          road_class = grid_class(segment.from, segment.to);
        }
        break;
      }
    }
    StampClass(&segment, road_class);
  }
  return RoadNetwork(sensors_, std::move(stamped));
}

Tensor RoadNetwork::GaussianAdjacency(double threshold) const {
  // DCRNN's released preprocessing computes the kernel over *driving*
  // (all-pairs shortest-path) distances, so sigma — the std of all finite
  // pair distances — is large and direct neighbours keep weights near 1
  // while far pairs fall under the sparsity threshold.
  const int64_t n = num_nodes();
  std::vector<double> shortest = distances_;  // Floyd–Warshall
  for (int64_t k = 0; k < n; ++k) {
    for (int64_t i = 0; i < n; ++i) {
      const double dik = shortest[i * n + k];
      if (!std::isfinite(dik)) continue;
      for (int64_t j = 0; j < n; ++j) {
        const double through = dik + shortest[k * n + j];
        if (through < shortest[i * n + j]) shortest[i * n + j] = through;
      }
    }
  }
  double sum = 0.0, sq = 0.0;
  int64_t count = 0;
  for (int64_t i = 0; i < n * n; ++i) {
    const double d = shortest[i];
    if (std::isfinite(d) && d > 0.0) {
      sum += d;
      sq += d * d;
      ++count;
    }
  }
  TB_CHECK_GT(count, 0) << "network has no segments";
  const double mean = sum / count;
  const double sigma = std::sqrt(std::max(1e-12, sq / count - mean * mean));
  const double denom = std::max(sigma * sigma, 1e-6);

  std::vector<float> w(n * n, 0.0f);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      const double d = shortest[i * n + j];
      if (!std::isfinite(d)) continue;
      const double value = std::exp(-d * d / denom);
      if (value >= threshold) w[i * n + j] = static_cast<float>(value);
    }
  }
  return Tensor::FromVector(Shape({n, n}), std::move(w));
}

sparse::CsrPtr RoadNetwork::SparseGaussianAdjacency(double threshold,
                                                    int max_hops) const {
  TB_CHECK_GE(max_hops, 1);
  const int64_t n = num_nodes();
  // Weighted out-adjacency straight from the segments.
  std::vector<std::vector<std::pair<int32_t, double>>> out_w(n);
  for (const RoadSegment& seg : segments_) {
    out_w[seg.from].push_back({static_cast<int32_t>(seg.to),
                               seg.distance_miles});
  }

  // Hop-bounded Bellman–Ford per source: round h relaxes one segment from
  // the distances frozen at round h-1, so a reached node's distance is the
  // shortest path of at most max_hops segments. dist/touched are reused
  // across sources (reset via the touched list), keeping the whole build
  // O(N * degree^max_hops).
  std::vector<double> dist(n, kInf);
  std::vector<char> in_frontier(n, 0);
  struct Reach {
    int32_t from;
    int32_t to;
    double d;
  };
  std::vector<Reach> reaches;
  for (int64_t i = 0; i < n; ++i) {
    std::vector<int64_t> touched{i};
    dist[i] = 0.0;
    std::vector<int64_t> frontier{i};
    std::vector<std::pair<int64_t, double>> frozen;
    for (int h = 0; h < max_hops && !frontier.empty(); ++h) {
      frozen.clear();
      for (int64_t v : frontier) {
        frozen.push_back({v, dist[v]});
        in_frontier[v] = 0;
      }
      frontier.clear();
      for (const auto& [v, dv] : frozen) {
        for (const auto& [u, wt] : out_w[v]) {
          const double nd = dv + wt;
          if (nd < dist[u]) {
            if (dist[u] == kInf) touched.push_back(u);
            dist[u] = nd;
            if (!in_frontier[u]) {
              in_frontier[u] = 1;
              frontier.push_back(u);
            }
          }
        }
      }
    }
    for (int64_t v : frontier) in_frontier[v] = 0;
    for (int64_t j : touched) {
      reaches.push_back({static_cast<int32_t>(i), static_cast<int32_t>(j),
                         dist[j]});
      dist[j] = kInf;
    }
  }

  // Same sigma recipe as the dense builder, over the reachable pairs.
  double sum = 0.0, sq = 0.0;
  int64_t count = 0;
  for (const Reach& r : reaches) {
    if (r.d > 0.0) {
      sum += r.d;
      sq += r.d * r.d;
      ++count;
    }
  }
  TB_CHECK_GT(count, 0) << "network has no segments";
  const double mean = sum / count;
  const double sigma = std::sqrt(std::max(1e-12, sq / count - mean * mean));
  const double denom = std::max(sigma * sigma, 1e-6);

  std::vector<sparse::CooEntry> coo;
  coo.reserve(reaches.size());
  for (const Reach& r : reaches) {
    const double value = std::exp(-r.d * r.d / denom);
    if (value >= threshold) {
      coo.push_back({r.from, r.to, static_cast<float>(value)});
    }
  }
  return sparse::CsrMatrix::FromCoo(n, n, std::move(coo));
}

Tensor RoadNetwork::BinaryAdjacency() const {
  const int64_t n = num_nodes();
  std::vector<float> w(n * n, 0.0f);
  for (int64_t i = 0; i < n; ++i) w[i * n + i] = 1.0f;
  for (const RoadSegment& seg : segments_) {
    w[seg.from * n + seg.to] = 1.0f;
  }
  return Tensor::FromVector(Shape({n, n}), std::move(w));
}

std::vector<int> RoadNetwork::HopDistances(int64_t source, int max_hops,
                                           int unreachable) const {
  TB_CHECK(source >= 0 && source < num_nodes());
  std::vector<int> hops(num_nodes(), unreachable);
  std::deque<int64_t> queue;
  hops[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const int64_t node = queue.front();
    queue.pop_front();
    if (hops[node] >= max_hops) continue;
    for (int64_t next : out_adj_[node]) {
      if (hops[next] == unreachable) {
        hops[next] = hops[node] + 1;
        queue.push_back(next);
      }
    }
  }
  return hops;
}

// ---- Graph operators -------------------------------------------------------------

Tensor RandomWalkTransition(const Tensor& adjacency) {
  TB_CHECK_EQ(adjacency.rank(), 2);
  const int64_t n = adjacency.dim(0);
  TB_CHECK_EQ(adjacency.dim(1), n);
  std::vector<float> out(n * n, 0.0f);
  const float* w = adjacency.data();
  for (int64_t i = 0; i < n; ++i) {
    float degree = 0.0f;
    for (int64_t j = 0; j < n; ++j) degree += w[i * n + j];
    if (degree <= 0.0f) continue;
    const float inv = 1.0f / degree;
    for (int64_t j = 0; j < n; ++j) out[i * n + j] = w[i * n + j] * inv;
  }
  return Tensor::FromVector(adjacency.shape(), std::move(out));
}

Tensor ReverseRandomWalkTransition(const Tensor& adjacency) {
  return RandomWalkTransition(adjacency.Transpose(0, 1).Detach());
}

sparse::CsrPtr RandomWalkTransitionCsr(const sparse::CsrPtr& adjacency) {
  TB_CHECK(adjacency != nullptr);
  const int64_t n = adjacency->rows();
  TB_CHECK_EQ(adjacency->cols(), n);
  std::vector<sparse::CooEntry> coo;
  coo.reserve(adjacency->nnz());
  const std::vector<int64_t>& rp = adjacency->row_ptr();
  const std::vector<int32_t>& ci = adjacency->col_idx();
  const std::vector<float>& v = adjacency->values();
  for (int64_t i = 0; i < n; ++i) {
    // Summing only the stored nonzeros in ascending column order matches
    // the dense builder's full-row sum bit for bit (adding zeros is exact).
    float degree = 0.0f;
    for (int64_t k = rp[i]; k < rp[i + 1]; ++k) degree += v[k];
    if (degree <= 0.0f) continue;
    const float inv = 1.0f / degree;
    for (int64_t k = rp[i]; k < rp[i + 1]; ++k) {
      coo.push_back({static_cast<int32_t>(i), ci[k], v[k] * inv});
    }
  }
  return sparse::CsrMatrix::FromCoo(n, n, std::move(coo));
}

sparse::CsrPtr ReverseRandomWalkTransitionCsr(const sparse::CsrPtr& adjacency) {
  TB_CHECK(adjacency != nullptr);
  const int64_t n = adjacency->rows();
  TB_CHECK_EQ(adjacency->cols(), n);
  std::vector<sparse::CooEntry> coo;
  coo.reserve(adjacency->nnz());
  const std::vector<int64_t>& rp = adjacency->t_row_ptr();
  const std::vector<int32_t>& ci = adjacency->t_col_idx();
  const std::vector<float>& v = adjacency->t_values();
  for (int64_t i = 0; i < n; ++i) {
    float degree = 0.0f;
    for (int64_t k = rp[i]; k < rp[i + 1]; ++k) degree += v[k];
    if (degree <= 0.0f) continue;
    const float inv = 1.0f / degree;
    for (int64_t k = rp[i]; k < rp[i + 1]; ++k) {
      coo.push_back({static_cast<int32_t>(i), ci[k], v[k] * inv});
    }
  }
  return sparse::CsrMatrix::FromCoo(n, n, std::move(coo));
}

Tensor SymmetricNormalizedAdjacency(const Tensor& adjacency) {
  TB_CHECK_EQ(adjacency.rank(), 2);
  const int64_t n = adjacency.dim(0);
  TB_CHECK_EQ(adjacency.dim(1), n);
  std::vector<float> a(adjacency.data(), adjacency.data() + n * n);
  for (int64_t i = 0; i < n; ++i) {
    a[i * n + i] = std::max(a[i * n + i], 1.0f);  // ensure self-loop
  }
  std::vector<float> dinv(n, 0.0f);
  for (int64_t i = 0; i < n; ++i) {
    float degree = 0.0f;
    for (int64_t j = 0; j < n; ++j) degree += a[i * n + j];
    dinv[i] = degree > 0.0f ? 1.0f / std::sqrt(degree) : 0.0f;
  }
  std::vector<float> out(n * n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      out[i * n + j] = dinv[i] * a[i * n + j] * dinv[j];
    }
  }
  return Tensor::FromVector(adjacency.shape(), std::move(out));
}

namespace {

/// Largest eigenvalue of a symmetric matrix by power iteration.
double PowerIterationLambdaMax(const std::vector<float>& m, int64_t n) {
  std::vector<double> v(n, 1.0 / std::sqrt(static_cast<double>(n)));
  std::vector<double> mv(n);
  double lambda = 0.0;
  for (int iter = 0; iter < 100; ++iter) {
    for (int64_t i = 0; i < n; ++i) {
      double acc = 0.0;
      for (int64_t j = 0; j < n; ++j) acc += m[i * n + j] * v[j];
      mv[i] = acc;
    }
    double norm = 0.0;
    for (double x : mv) norm += x * x;
    norm = std::sqrt(norm);
    if (norm < 1e-12) return 0.0;
    for (int64_t i = 0; i < n; ++i) v[i] = mv[i] / norm;
    lambda = norm;
  }
  return lambda;
}

}  // namespace

Tensor ScaledLaplacian(const Tensor& adjacency) {
  TB_CHECK_EQ(adjacency.rank(), 2);
  const int64_t n = adjacency.dim(0);
  TB_CHECK_EQ(adjacency.dim(1), n);
  // Symmetrize: W_sym = max(W, W^T).
  std::vector<float> w(n * n);
  const float* src = adjacency.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      w[i * n + j] = std::max(src[i * n + j], src[j * n + i]);
    }
  }
  for (int64_t i = 0; i < n; ++i) w[i * n + i] = 0.0f;  // no self-loops in L
  std::vector<float> dinv(n);
  for (int64_t i = 0; i < n; ++i) {
    float degree = 0.0f;
    for (int64_t j = 0; j < n; ++j) degree += w[i * n + j];
    dinv[i] = degree > 0.0f ? 1.0f / std::sqrt(degree) : 0.0f;
  }
  std::vector<float> lap(n * n, 0.0f);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      const float norm = dinv[i] * w[i * n + j] * dinv[j];
      lap[i * n + j] = (i == j ? 1.0f : 0.0f) - norm;
    }
  }
  double lambda_max = PowerIterationLambdaMax(lap, n);
  if (lambda_max < 1e-6) lambda_max = 2.0;
  std::vector<float> out(n * n);
  const float scale = static_cast<float>(2.0 / lambda_max);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      out[i * n + j] = scale * lap[i * n + j] - (i == j ? 1.0f : 0.0f);
    }
  }
  return Tensor::FromVector(adjacency.shape(), std::move(out));
}

std::vector<Tensor> ChebyshevBasis(const Tensor& scaled_laplacian, int order) {
  TB_CHECK_GE(order, 1);
  TB_CHECK_EQ(scaled_laplacian.rank(), 2);
  const int64_t n = scaled_laplacian.dim(0);
  std::vector<Tensor> basis;
  basis.reserve(order);
  // T_0 = I
  std::vector<float> eye(n * n, 0.0f);
  for (int64_t i = 0; i < n; ++i) eye[i * n + i] = 1.0f;
  basis.push_back(Tensor::FromVector(Shape({n, n}), std::move(eye)));
  if (order == 1) return basis;
  // T_1 = L~
  basis.push_back(scaled_laplacian.Detach());
  // T_k = 2 L~ T_{k-1} - T_{k-2}
  for (int k = 2; k < order; ++k) {
    NoGradGuard guard;
    Tensor next =
        MatMul(scaled_laplacian, basis[k - 1]) * 2.0f - basis[k - 2];
    basis.push_back(next.Detach());
  }
  return basis;
}

int64_t SupportNnz(const Tensor& support) {
  TB_CHECK(support.defined());
  const float* d = support.data();
  int64_t nnz = 0;
  for (int64_t i = 0; i < support.numel(); ++i) nnz += d[i] != 0.0f;
  return nnz;
}

double SupportDensity(const Tensor& support) {
  const int64_t numel = support.numel();
  return numel > 0
             ? static_cast<double>(SupportNnz(support)) /
                   static_cast<double>(numel)
             : 0.0;
}

Tensor SpectralNodeEmbedding(const Tensor& adjacency, int64_t dim) {
  TB_CHECK_GE(dim, 1);
  const int64_t n = adjacency.dim(0);
  Tensor sym = SymmetricNormalizedAdjacency(adjacency);
  // Make it symmetric explicitly (Gaussian adjacency of a directed graph
  // may be slightly asymmetric).
  std::vector<float> m(n * n);
  const float* s = sym.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      m[i * n + j] = 0.5f * (s[i * n + j] + s[j * n + i]);
    }
  }
  std::vector<float> embedding(n * dim, 0.0f);
  std::vector<double> v(n), mv(n);
  for (int64_t d = 0; d < std::min(dim, n); ++d) {
    // deterministic start vector, distinct per component
    for (int64_t i = 0; i < n; ++i) {
      v[i] = std::cos(0.7 * static_cast<double>(i * (d + 1)) + 0.3);
    }
    double lambda = 0.0;
    for (int iter = 0; iter < 200; ++iter) {
      for (int64_t i = 0; i < n; ++i) {
        double acc = 0.0;
        for (int64_t j = 0; j < n; ++j) acc += m[i * n + j] * v[j];
        mv[i] = acc;
      }
      double norm = 0.0;
      for (double x : mv) norm += x * x;
      norm = std::sqrt(norm);
      if (norm < 1e-12) break;
      for (int64_t i = 0; i < n; ++i) v[i] = mv[i] / norm;
      lambda = norm;
    }
    for (int64_t i = 0; i < n; ++i) {
      embedding[i * dim + d] = static_cast<float>(v[i]);
    }
    // Deflate: m -= lambda v v^T.
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        m[i * n + j] -= static_cast<float>(lambda * v[i] * v[j]);
      }
    }
  }
  return Tensor::FromVector(Shape({n, dim}), std::move(embedding));
}

}  // namespace trafficbench::graph
