#ifndef TRAFFICBENCH_GRAPH_PARTITION_H_
#define TRAFFICBENCH_GRAPH_PARTITION_H_

// Deterministic edge-cut graph partitioning.
//
// City-scale support matrices (thousands of nodes) make monolithic N x N
// propagation the dominant cost of every graph model. The partitioner below
// splits the node set into K balanced parts by greedy BFS growth so that
// per-partition SpMM blocks stay cache-resident and only the cut-crossing
// ("halo") columns have to be exchanged between propagation hops — see
// src/tensor/partitioned.h for the execution side and DESIGN.md §15 for the
// determinism contract.
//
// The algorithm is a pure function of the adjacency structure and K:
// partitions are grown one at a time from the lowest-id unassigned seed,
// expanding a FIFO frontier whose neighbours are visited in ascending node
// id, until the part reaches its balance target ceil(N / K). Disconnected
// remainders re-seed from the lowest unassigned id, so every node lands in
// exactly one part regardless of connectivity. No randomness, no thread
// interaction: two runs (at any thread count) produce identical parts.

#include <cstdint>
#include <vector>

#include "src/tensor/sparse.h"

namespace trafficbench::graph {

class RoadNetwork;

/// A K-way node partition. Balance bound: every part holds at most
/// ceil(num_nodes / num_parts) nodes (the greedy target), and every node
/// belongs to exactly one part.
struct GraphPartition {
  int64_t num_nodes = 0;
  int num_parts = 1;
  /// owner[v] = part index of node v.
  std::vector<int32_t> owner;
  /// nodes[p] = node ids of part p, strictly ascending.
  std::vector<std::vector<int32_t>> nodes;

  /// ceil(num_nodes / num_parts) — the balance bound of every part.
  int64_t BalanceBound() const {
    return num_parts > 0 ? (num_nodes + num_parts - 1) / num_parts : 0;
  }
};

/// Partitions the sparsity pattern of a square CSR support. Neighbourhood
/// growth follows the *union* of the forward and transpose patterns
/// (undirected reachability), so strongly-coupled row/column pairs land in
/// the same part whichever direction the edge points.
GraphPartition PartitionCsr(const sparse::CsrMatrix& support, int num_parts);

/// Partitions a road network over its directed segments (same growth rule,
/// union of in- and out-neighbours).
GraphPartition PartitionRoadNetwork(const RoadNetwork& network, int num_parts);

/// Number of support entries A[i][j] != 0 whose endpoints live in different
/// parts — the edge-cut objective the greedy BFS keeps low.
int64_t EdgeCut(const sparse::CsrMatrix& support,
                const GraphPartition& partition);

}  // namespace trafficbench::graph

#endif  // TRAFFICBENCH_GRAPH_PARTITION_H_
