#ifndef TRAFFICBENCH_GRAPH_ROAD_NETWORK_H_
#define TRAFFICBENCH_GRAPH_ROAD_NETWORK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/tensor/sparse.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace trafficbench::graph {

/// Node count above which adjacency construction must stay sparse end to
/// end: the dense GaussianAdjacency path runs an O(N^3) Floyd–Warshall and
/// materializes N x N tensors, both prohibitive at city scale.
/// MakeModelContext switches to SparseGaussianAdjacency at this limit.
inline constexpr int64_t kDenseAdjacencyNodeLimit = 512;

/// A sensor (loop-detector) location on the road network.
struct Sensor {
  int64_t id = 0;
  double x = 0.0;  // planar coordinates, in miles
  double y = 0.0;
};

/// Functional class of a road segment — determines its capacity attributes
/// (DeriveCapacities below). kUnclassified marks segments that never went
/// through capacity derivation; the scenario engine refuses to route on
/// them.
enum class RoadClass : int {
  kUnclassified = 0,
  kFreeway,   // grade-separated mainline: high speed, high per-lane capacity
  kArterial,  // signalized major street
  kLocal,     // neighbourhood street
  kRamp,      // on/off-ramp or interchange link
};

/// "freeway" / "arterial" / "local" / "ramp" / "?".
const char* RoadClassName(RoadClass road_class);

/// A directed road segment between two sensors with a driving distance.
/// The capacity attributes are zero until DeriveCapacities stamps them from
/// the topology class; everything outside the scenario engine ignores them.
struct RoadSegment {
  int64_t from = 0;
  int64_t to = 0;
  double distance_miles = 0.0;
  RoadClass road_class = RoadClass::kUnclassified;
  int lanes = 0;
  double free_flow_mph = 0.0;
  /// Vehicles per 5-minute step this directed segment serves at capacity
  /// (lanes x per-lane service rate of the road class).
  double capacity_per_step = 0.0;
};

/// Topology families for the synthetic network generator.
enum class NetworkTopology {
  /// One main freeway corridor with short on/off-ramp branches — METR-LA-like.
  kCorridor,
  /// A rectangular grid of intersecting arterials — urban-core-like.
  kGrid,
  /// Several corridors joined at interchange hubs — regional-freeway-like.
  kMultiCorridor,
  /// Composite city: an urban grid core (kGrid family) with a freeway
  /// corridor (kCorridor family) laid alongside and linked by interchange
  /// ramps — the scenario engine's canonical world, where closures force
  /// demand between structurally different road classes.
  kGridArterial,
};

/// A directed, distance-weighted road graph over traffic sensors.
///
/// This is the substrate every model consumes: the paper's datasets ship a
/// distance file from which the weighted adjacency is built with a Gaussian
/// kernel, W_ij = exp(-dist_ij^2 / sigma^2), thresholded for sparsity.
class RoadNetwork {
 public:
  RoadNetwork(std::vector<Sensor> sensors, std::vector<RoadSegment> segments);

  /// Generates a synthetic network with `num_nodes` sensors.
  static RoadNetwork Generate(NetworkTopology topology, int64_t num_nodes,
                              Rng* rng);

  /// Returns a copy whose segments carry capacity attributes (road class,
  /// lanes, free-flow speed, vehicles/step) derived *deterministically*
  /// from the topology class and the graph structure — no RNG, so two
  /// generates from the same seed always agree:
  ///   kCorridor / kMultiCorridor  chain segments are freeway mainline,
  ///                               segments touching a leaf are ramps;
  ///   kGrid                       every 4th row/column is an arterial,
  ///                               the rest are local streets;
  ///   kGridArterial               corridor chain = freeway, interchange
  ///                               links = ramps, grid as kGrid.
  RoadNetwork DeriveCapacities(NetworkTopology topology) const;

  int64_t num_nodes() const { return static_cast<int64_t>(sensors_.size()); }
  const std::vector<Sensor>& sensors() const { return sensors_; }
  const std::vector<RoadSegment>& segments() const { return segments_; }

  /// Dense distance matrix [N, N]; +inf where there is no direct segment.
  const std::vector<double>& distance_matrix() const { return distances_; }
  double distance(int64_t from, int64_t to) const;

  /// Gaussian-kernel weighted adjacency (paper Sec. IV-B):
  /// W_ij = exp(-dist_ij^2 / sigma^2) for direct segments, 0 elsewhere and
  /// below `threshold`. sigma is the std of the finite distances. The
  /// diagonal is 1 (self-loops), as in DCRNN's released preprocessing.
  Tensor GaussianAdjacency(double threshold = 0.1) const;

  /// Sparse-native Gaussian adjacency for city-scale networks: the same
  /// kernel shape as GaussianAdjacency but over *hop-limited* shortest
  /// paths (at most `max_hops` segments), built entirely in COO/CSR form —
  /// O(N * degree^max_hops) work, never an N x N tensor. sigma is the std
  /// of the collected finite pair distances (local neighbourhoods instead
  /// of all pairs, so weights are not numerically identical to the dense
  /// builder's — this is the intended operator for 2k+ node profiles, not a
  /// drop-in bit-for-bit replacement). The diagonal is 1 (self-loops).
  sparse::CsrPtr SparseGaussianAdjacency(double threshold = 0.1,
                                         int max_hops = 3) const;

  /// Binary (0/1) adjacency with self-loops.
  Tensor BinaryAdjacency() const;

  /// Hop counts along directed edges (BFS); `unreachable` where no path.
  std::vector<int> HopDistances(int64_t source, int max_hops,
                                int unreachable = -1) const;

  /// Incoming neighbours of `node` (sources of edges into it).
  const std::vector<int64_t>& InNeighbors(int64_t node) const;
  /// Outgoing neighbours of `node`.
  const std::vector<int64_t>& OutNeighbors(int64_t node) const;

 private:
  std::vector<Sensor> sensors_;
  std::vector<RoadSegment> segments_;
  std::vector<double> distances_;              // dense N*N
  std::vector<std::vector<int64_t>> in_adj_;   // reverse adjacency lists
  std::vector<std::vector<int64_t>> out_adj_;  // forward adjacency lists
};

// ---- Graph operators used by the models ---------------------------------------

/// Row-normalized random-walk transition matrix D_out^{-1} W.
/// DCRNN / Graph-WaveNet diffusion step in the forward direction.
Tensor RandomWalkTransition(const Tensor& adjacency);

/// Transition on the reversed graph: D_in^{-1} W^T (backward diffusion).
Tensor ReverseRandomWalkTransition(const Tensor& adjacency);

/// Sparse-native counterparts of the two random-walk operators, for
/// adjacencies that were never dense. On the same sparsity pattern the
/// values are bitwise equal to the dense builders' (row sums only ever add
/// the stored nonzeros; adding the dense path's explicit zeros is exact).
sparse::CsrPtr RandomWalkTransitionCsr(const sparse::CsrPtr& adjacency);
sparse::CsrPtr ReverseRandomWalkTransitionCsr(const sparse::CsrPtr& adjacency);

/// Symmetrically normalized adjacency with self-loops,
/// D^{-1/2} (W + I) D^{-1/2} — the GCN propagation operator.
Tensor SymmetricNormalizedAdjacency(const Tensor& adjacency);

/// Scaled Laplacian 2 L / lambda_max - I with L = I - D^{-1/2} W D^{-1/2};
/// lambda_max estimated by power iteration. Input adjacency is symmetrized.
Tensor ScaledLaplacian(const Tensor& adjacency);

/// Chebyshev polynomial basis T_0..T_{K-1} of the scaled Laplacian
/// (spectral GCN support set used by STGCN / ASTGCN).
std::vector<Tensor> ChebyshevBasis(const Tensor& scaled_laplacian, int order);

/// Number of nonzero entries of a dense support matrix.
int64_t SupportNnz(const Tensor& support);

/// Fraction of nonzero entries, nnz / numel. Real sensor networks sit in
/// the low single-digit percents (METR-LA ~4%, PeMS-BAY ~2.5%); the
/// synthetic all-pairs Gaussian adjacencies are far denser. Reported per
/// dataset by bench_table3 and used for the sparse/dense dispatch decision.
double SupportDensity(const Tensor& support);

/// Deterministic spectral node embedding [N, dim]: leading eigenvectors of
/// the symmetric normalized adjacency via power iteration with deflation.
/// Stands in for GMAN's node2vec pre-trained embeddings.
Tensor SpectralNodeEmbedding(const Tensor& adjacency, int64_t dim);

}  // namespace trafficbench::graph

#endif  // TRAFFICBENCH_GRAPH_ROAD_NETWORK_H_
