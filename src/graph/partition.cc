#include "src/graph/partition.h"

#include <algorithm>
#include <deque>

#include "src/graph/road_network.h"
#include "src/util/check.h"

namespace trafficbench::graph {

namespace {

/// Greedy BFS growth over an adjacency-list view. `neighbors(v)` must
/// return ids in ascending order (both callers below guarantee it).
template <typename NeighborFn>
GraphPartition GrowPartitions(int64_t num_nodes, int num_parts,
                              const NeighborFn& neighbors) {
  TB_CHECK_GE(num_nodes, 0);
  TB_CHECK_GE(num_parts, 1);
  GraphPartition partition;
  partition.num_nodes = num_nodes;
  partition.num_parts = num_parts;
  partition.owner.assign(num_nodes, -1);
  partition.nodes.assign(num_parts, {});
  if (num_nodes == 0) return partition;

  const int64_t target = partition.BalanceBound();
  int64_t next_seed = 0;  // lowest unassigned id is always >= this cursor
  for (int p = 0; p < num_parts; ++p) {
    std::vector<int32_t>& members = partition.nodes[p];
    std::deque<int32_t> frontier;
    while (static_cast<int64_t>(members.size()) < target) {
      if (frontier.empty()) {
        while (next_seed < num_nodes && partition.owner[next_seed] >= 0) {
          ++next_seed;
        }
        if (next_seed >= num_nodes) break;  // everything assigned
        frontier.push_back(static_cast<int32_t>(next_seed));
        partition.owner[next_seed] = p;
        members.push_back(static_cast<int32_t>(next_seed));
        continue;  // the seed itself counted toward the target
      }
      const int32_t v = frontier.front();
      frontier.pop_front();
      for (int32_t u : neighbors(v)) {
        if (static_cast<int64_t>(members.size()) >= target) break;
        if (partition.owner[u] >= 0) continue;
        partition.owner[u] = p;
        members.push_back(u);
        frontier.push_back(u);
      }
    }
    // BFS discovery order is not ascending; the contract is.
    std::sort(members.begin(), members.end());
  }
  return partition;
}

}  // namespace

GraphPartition PartitionCsr(const sparse::CsrMatrix& support, int num_parts) {
  TB_CHECK_EQ(support.rows(), support.cols())
      << "partitioning needs a square support";
  const int64_t n = support.rows();
  // Merged (forward ∪ transpose) neighbour lists, ascending and deduped.
  // Built once so the BFS does no per-visit merging.
  std::vector<std::vector<int32_t>> adj(n);
  for (int64_t i = 0; i < n; ++i) {
    std::vector<int32_t>& out = adj[i];
    const auto& rp = support.row_ptr();
    const auto& trp = support.t_row_ptr();
    out.reserve((rp[i + 1] - rp[i]) + (trp[i + 1] - trp[i]));
    for (int64_t k = rp[i]; k < rp[i + 1]; ++k) {
      out.push_back(support.col_idx()[k]);
    }
    for (int64_t k = trp[i]; k < trp[i + 1]; ++k) {
      out.push_back(support.t_col_idx()[k]);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
  return GrowPartitions(n, num_parts,
                        [&adj](int32_t v) -> const std::vector<int32_t>& {
                          return adj[v];
                        });
}

GraphPartition PartitionRoadNetwork(const RoadNetwork& network,
                                    int num_parts) {
  const int64_t n = network.num_nodes();
  std::vector<std::vector<int32_t>> adj(n);
  for (int64_t i = 0; i < n; ++i) {
    std::vector<int32_t>& out = adj[i];
    for (int64_t j : network.OutNeighbors(i)) {
      out.push_back(static_cast<int32_t>(j));
    }
    for (int64_t j : network.InNeighbors(i)) {
      out.push_back(static_cast<int32_t>(j));
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
  return GrowPartitions(n, num_parts,
                        [&adj](int32_t v) -> const std::vector<int32_t>& {
                          return adj[v];
                        });
}

int64_t EdgeCut(const sparse::CsrMatrix& support,
                const GraphPartition& partition) {
  TB_CHECK_EQ(support.rows(), partition.num_nodes);
  TB_CHECK_EQ(support.cols(), partition.num_nodes);
  int64_t cut = 0;
  for (int64_t i = 0; i < support.rows(); ++i) {
    const int32_t owner = partition.owner[i];
    for (int64_t k = support.row_ptr()[i]; k < support.row_ptr()[i + 1]; ++k) {
      cut += partition.owner[support.col_idx()[k]] != owner;
    }
  }
  return cut;
}

}  // namespace trafficbench::graph
