#ifndef TRAFFICBENCH_SERVE_RESPONSE_CACHE_H_
#define TRAFFICBENCH_SERVE_RESPONSE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/serve/model_registry.h"
#include "src/tensor/tensor.h"

namespace trafficbench::serve {

struct ResponseCacheOptions {
  /// Entry bound of the shared LRU; 0 disables the cache entirely.
  int64_t capacity = 1024;
  /// Test seam: overrides the window hash (e.g. a constant, to force every
  /// insert onto one hash chain and exercise the collision check). Null
  /// uses the built-in CRC-based hash.
  uint64_t (*hash_fn)(const void* data, size_t size) = nullptr;
};

struct ResponseCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t evictions = 0;    // LRU pressure
  int64_t collisions = 0;   // same hash, different key bytes — never served
  int64_t poisoned = 0;     // checksum mismatch detected; entry dropped
  int64_t invalidated = 0;  // producing model swapped out of the registry
};

/// Window-keyed response cache: the degradation ladder's tier 1. Traffic
/// windows repeat across clients, so an overloaded lane can answer from a
/// recent identical window instead of queueing a full forward.
///
/// Correctness contract:
///  - The key is the *exact* normalized [T_in, N, 2] bytes (no float
///    tolerance) plus the (model, dataset) names. A hit additionally
///    compares the stored key bytes, so a hash collision can never return
///    another window's prediction (it counts as `collisions` and misses).
///  - Every entry stores a CRC32 checksum of its prediction bytes; a
///    lookup that finds a mismatching checksum (a poisoned entry — e.g.
///    the degrade_ladder fault site) drops the entry and reports a miss,
///    so corrupted data is never served and the ladder falls through to
///    the tier-2 baseline.
///  - Entries remember which LoadedModel instance produced them (weak
///    pointer); a registry swap changes the instance, so stale entries
///    invalidate themselves on their next lookup.
///
/// Thread-safe: one mutex shared by submit threads (Lookup) and workers
/// (Insert) — entries are small ([T_out, N] floats) and the critical
/// sections are memcmp/memcpy only.
class ResponseCache {
 public:
  explicit ResponseCache(const ResponseCacheOptions& options);

  bool enabled() const { return options_.capacity > 0; }

  /// Exact-key lookup for `model`'s prediction of `window` ([T_in, N, 2]).
  /// True only on a verified hit (key bytes equal, checksum intact, same
  /// registry instance); `*prediction` is then the cached [T_out, N].
  bool Lookup(const LoadedModelPtr& model, const Tensor& window,
              Tensor* prediction);

  /// Stores a tier-0 result. Re-inserting an existing key refreshes the
  /// entry; over capacity the least-recently-used entry is evicted.
  void Insert(const LoadedModelPtr& model, const Tensor& window,
              const Tensor& prediction);

  /// Fault hook (degrade_ladder): XORs one byte of the most recently used
  /// entry's prediction without refreshing its checksum, so the next
  /// lookup of that key must detect the poison. False when empty.
  bool CorruptMostRecent();

  /// Drops every entry (registry-wide swap/rollover).
  void Clear();

  int64_t size() const;
  ResponseCacheStats stats() const;

 private:
  struct Entry {
    uint64_t hash = 0;
    std::string model_name;
    std::string dataset_name;
    std::weak_ptr<const LoadedModel> producer;
    std::vector<float> key;         // exact normalized window bytes
    std::vector<int64_t> pred_dims;
    std::vector<float> prediction;
    uint32_t checksum = 0;  // CRC32 over the prediction bytes
  };
  using List = std::list<Entry>;

  uint64_t HashKey(const std::string& model_name,
                   const std::string& dataset_name,
                   const std::vector<float>& key) const;
  void EraseLocked(List::iterator it);

  const ResponseCacheOptions options_;
  mutable std::mutex mu_;
  List lru_;  // front = most recently used
  std::unordered_multimap<uint64_t, List::iterator> index_;
  ResponseCacheStats stats_;
};

}  // namespace trafficbench::serve

#endif  // TRAFFICBENCH_SERVE_RESPONSE_CACHE_H_
