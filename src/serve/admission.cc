#include "src/serve/admission.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace trafficbench::serve {

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kFull:
      return "full";
    case Tier::kCached:
      return "cache";
    case Tier::kBaseline:
      return "baseline";
  }
  return "?";
}

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : options_(options) {
  TB_CHECK_GT(options.slo_ms, 0.0);
  TB_CHECK_GT(options.latency_window, 0);
}

double AdmissionController::RecentP99Locked(const LaneState& state) const {
  if (state.recent.empty()) return 0.0;
  std::vector<double> sorted = state.recent;
  std::sort(sorted.begin(), sorted.end());
  const double rank =
      0.99 * static_cast<double>(sorted.size());  // nearest-rank, like the
  int64_t index = static_cast<int64_t>(std::ceil(rank)) - 1;  // recorder
  index = std::clamp<int64_t>(index, 0,
                              static_cast<int64_t>(sorted.size()) - 1);
  return sorted[static_cast<size_t>(index)];
}

double AdmissionController::RecentP99(const std::string& lane) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = lanes_.find(lane);
  return it != lanes_.end() ? RecentP99Locked(it->second) : 0.0;
}

double AdmissionController::Pressure(const std::string& lane,
                                     const LaneSignals& signals) const {
  const double depth =
      signals.queue_capacity > 0
          ? static_cast<double>(signals.queue_depth) /
                static_cast<double>(signals.queue_capacity)
          : 0.0;
  // Head age and recent p99 are scaled so that "at twice the SLO" maps to
  // pressure 1.0 — the same level as a completely full queue.
  const double age = 0.5 * signals.head_age_ms / options_.slo_ms;
  const double p99 = 0.5 * (RecentP99(lane) * 1e3) / options_.slo_ms;
  return std::max(depth, std::max(age, p99));
}

Tier AdmissionController::Admit(const std::string& lane,
                                const LaneSignals& signals) {
  const double pressure = Pressure(lane, signals);
  if (pressure >= options_.baseline_at) return Tier::kBaseline;
  if (pressure >= options_.degrade_at) return Tier::kCached;
  return Tier::kFull;
}

void AdmissionController::ObserveCompletion(const std::string& lane,
                                            double total_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  LaneState& state = lanes_[lane];
  if (static_cast<int64_t>(state.recent.size()) < options_.latency_window) {
    state.recent.push_back(total_seconds);
  } else {
    state.recent[state.next] = total_seconds;
    state.next = (state.next + 1) % state.recent.size();
  }
}

}  // namespace trafficbench::serve
