#ifndef TRAFFICBENCH_SERVE_SERVER_H_
#define TRAFFICBENCH_SERVE_SERVER_H_

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/admission.h"
#include "src/serve/batcher.h"
#include "src/serve/latency_recorder.h"
#include "src/serve/model_registry.h"
#include "src/serve/response_cache.h"
#include "src/tensor/tensor.h"

namespace trafficbench::serve {

/// One client request: predict the next T_out steps from a single input
/// window for a (model, dataset) pair already loaded into the registry.
struct PredictRequest {
  std::string model_name;
  std::string dataset_name;
  /// [T_in, N, 2] (a leading batch axis of 1 is also accepted).
  Tensor window;
};

struct ServerOptions {
  /// Worker loops pulling micro-batches. Each worker owns its own
  /// ExecutionContext of `threads_per_worker` kernel threads.
  int workers = 1;
  int threads_per_worker = 1;
  BatchOptions batch;
  /// Queue bound; submits past it are shed with ResourceExhausted — unless
  /// the admission controller is enabled, in which case they degrade down
  /// the ladder instead (only a closed queue still hard-rejects).
  int64_t queue_capacity = 256;
  /// Stall injected by the serve_slow_worker fault site, when armed.
  double fault_stall_ms = 25.0;
  /// Serve micro-batches from compiled inference plans (LoadedModel::
  /// Predict); false forces the eager reference path. Entries that failed
  /// plan compilation fall back to eager either way. The plans' weight-
  /// storage tier (fp32/bf16/int8, DESIGN.md §13) is chosen per model by
  /// ModelSpec::precision at load time.
  bool use_plan = true;
  /// Overload admission control (DESIGN.md §14). Disabled by default: the
  /// server sheds on a full queue exactly as the seed did.
  AdmissionOptions admission;
  /// Window-keyed response cache capacity (entries, shared across workers);
  /// 0 disables the cache and with it ladder tier 1.
  int64_t cache_capacity = 0;
};

/// Multi-worker inference server over a ModelRegistry.
///
/// Determinism contract: a request's prediction is a pure function of its
/// own window and the loaded model — bit-identical no matter which
/// micro-batch it rides in, how full that batch is, how many workers or
/// kernel threads the server runs, or what other traffic is in flight
/// (pinned by ServeDeterminism tests). The kernels guarantee this because
/// every output element's accumulation chain stays inside its own batch
/// element; the server preserves it by keeping per-request post-processing
/// (denormalization, splitting) elementwise.
///
/// Backpressure: the queue is bounded; when it is full, Submit sheds the
/// request immediately — the returned future is already fulfilled with
/// ResourceExhausted — instead of letting latency grow without bound.
///
/// Overload (DESIGN.md §14): with options.admission.enabled the server
/// executes a degradation ladder instead of shedding. The admission
/// controller reads the request's lane pressure and assigns a tier:
///   tier 0  full model through the queue and micro-batcher,
///   tier 1  window-keyed response-cache hit (exact normalized bytes),
///   tier 2  the registry's training-free baseline for the dataset.
/// A tier-1/2 decision that cannot be satisfied (cache miss and no loaded
/// baseline) falls back up to tier 0, and a full queue degrades rather than
/// drops, so enabling admission eliminates hard drops except on shutdown.
/// Every ok response carries the tier that produced it.
class Server {
 public:
  Server(const ModelRegistry* registry, const ServerOptions& options);
  ~Server();  // Stop()s if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  void Start();
  /// Closes the queue, drains queued requests, joins the workers.
  void Stop();
  bool running() const { return running_; }

  /// Enqueue one window. Always returns a valid future; shed or invalid
  /// requests resolve immediately with a non-ok PredictResponse::status.
  /// Degraded (tier 1/2) responses also resolve immediately — they never
  /// touch the queue.
  std::future<PredictResponse> Submit(PredictRequest request);

  /// Convenience: Submit + wait.
  PredictResponse Predict(PredictRequest request);

  LatencyRecorder& recorder() { return recorder_; }
  const LatencyRecorder& recorder() const { return recorder_; }
  AdmissionController& admission() { return admission_; }
  ResponseCache& cache() { return cache_; }
  const ResponseCache& cache() const { return cache_; }
  const ServerOptions& options() const { return options_; }

 private:
  void WorkerLoop();
  void ProcessBatch(MicroBatch batch);
  bool ShouldStall();
  /// degrade_ladder fault site: when it fires, one submit's admission
  /// decision is forced to the cache tier and the cache's most-recent
  /// entry is corrupted (checksum left stale) to exercise the poisoned-
  /// entry fall-through.
  bool ShouldForceDegrade();

  /// Resolves `promise` at the requested degraded tier, preferring the
  /// given tier but falling across (cache miss -> baseline, no baseline ->
  /// cache). Records the completion and returns true; false means neither
  /// degraded source could answer and the caller should run tier 0.
  bool RespondDegraded(Tier tier, const LoadedModelPtr& model,
                       const Tensor& window, const std::string& lane,
                       std::chrono::steady_clock::time_point start,
                       std::promise<PredictResponse>* promise);

  const ModelRegistry* const registry_;
  const ServerOptions options_;
  RequestQueue queue_;
  Batcher batcher_;
  LatencyRecorder recorder_;
  AdmissionController admission_;
  ResponseCache cache_;
  std::vector<std::thread> workers_;
  std::mutex fault_mu_;  // serializes FaultInjector access across workers
  bool running_ = false;
};

}  // namespace trafficbench::serve

#endif  // TRAFFICBENCH_SERVE_SERVER_H_
