#ifndef TRAFFICBENCH_SERVE_SERVER_H_
#define TRAFFICBENCH_SERVE_SERVER_H_

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/batcher.h"
#include "src/serve/latency_recorder.h"
#include "src/serve/model_registry.h"
#include "src/tensor/tensor.h"

namespace trafficbench::serve {

/// One client request: predict the next T_out steps from a single input
/// window for a (model, dataset) pair already loaded into the registry.
struct PredictRequest {
  std::string model_name;
  std::string dataset_name;
  /// [T_in, N, 2] (a leading batch axis of 1 is also accepted).
  Tensor window;
};

struct ServerOptions {
  /// Worker loops pulling micro-batches. Each worker owns its own
  /// ExecutionContext of `threads_per_worker` kernel threads.
  int workers = 1;
  int threads_per_worker = 1;
  BatchOptions batch;
  /// Queue bound; submits past it are shed with ResourceExhausted.
  int64_t queue_capacity = 256;
  /// Stall injected by the serve_slow_worker fault site, when armed.
  double fault_stall_ms = 25.0;
  /// Serve micro-batches from compiled inference plans (LoadedModel::
  /// Predict); false forces the eager reference path. Entries that failed
  /// plan compilation fall back to eager either way. The plans' weight-
  /// storage tier (fp32/bf16/int8, DESIGN.md §13) is chosen per model by
  /// ModelSpec::precision at load time.
  bool use_plan = true;
};

/// Multi-worker inference server over a ModelRegistry.
///
/// Determinism contract: a request's prediction is a pure function of its
/// own window and the loaded model — bit-identical no matter which
/// micro-batch it rides in, how full that batch is, how many workers or
/// kernel threads the server runs, or what other traffic is in flight
/// (pinned by ServeDeterminism tests). The kernels guarantee this because
/// every output element's accumulation chain stays inside its own batch
/// element; the server preserves it by keeping per-request post-processing
/// (denormalization, splitting) elementwise.
///
/// Backpressure: the queue is bounded; when it is full, Submit sheds the
/// request immediately — the returned future is already fulfilled with
/// ResourceExhausted — instead of letting latency grow without bound.
class Server {
 public:
  Server(const ModelRegistry* registry, const ServerOptions& options);
  ~Server();  // Stop()s if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  void Start();
  /// Closes the queue, drains queued requests, joins the workers.
  void Stop();
  bool running() const { return running_; }

  /// Enqueue one window. Always returns a valid future; shed or invalid
  /// requests resolve immediately with a non-ok PredictResponse::status.
  std::future<PredictResponse> Submit(PredictRequest request);

  /// Convenience: Submit + wait.
  PredictResponse Predict(PredictRequest request);

  LatencyRecorder& recorder() { return recorder_; }
  const LatencyRecorder& recorder() const { return recorder_; }
  const ServerOptions& options() const { return options_; }

 private:
  void WorkerLoop();
  void ProcessBatch(MicroBatch batch);
  bool ShouldStall();

  const ModelRegistry* const registry_;
  const ServerOptions options_;
  RequestQueue queue_;
  Batcher batcher_;
  LatencyRecorder recorder_;
  std::vector<std::thread> workers_;
  std::mutex fault_mu_;  // serializes FaultInjector access across workers
  bool running_ = false;
};

}  // namespace trafficbench::serve

#endif  // TRAFFICBENCH_SERVE_SERVER_H_
