#include "src/serve/latency_recorder.h"

#include <algorithm>
#include <cmath>

namespace trafficbench::serve {

namespace {

/// Nearest-rank percentile of an unsorted sample copy (q in [0, 100]).
double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = q / 100.0 * static_cast<double>(samples.size());
  int64_t index = static_cast<int64_t>(std::ceil(rank)) - 1;
  index = std::clamp<int64_t>(index, 0, static_cast<int64_t>(samples.size()) - 1);
  return samples[index];
}

double MaxOf(const std::vector<double>& samples) {
  return samples.empty() ? 0.0
                         : *std::max_element(samples.begin(), samples.end());
}

std::string Ms(double seconds) { return Table::Num(seconds * 1e3, 3); }

}  // namespace

LatencyRecorder::LatencyRecorder() { Reset(); }

void LatencyRecorder::RecordRequest(double queue_seconds,
                                    double total_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  queue_seconds_.push_back(queue_seconds);
  request_seconds_.push_back(total_seconds);
}

void LatencyRecorder::RecordBatch(int64_t size, double compute_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  batch_seconds_.push_back(compute_seconds);
  batched_requests_ += size;
  ++batches_;
}

void LatencyRecorder::RecordShed() {
  std::lock_guard<std::mutex> lock(mu_);
  ++shed_;
}

void LatencyRecorder::RecordQueueDepth(int64_t depth) {
  std::lock_guard<std::mutex> lock(mu_);
  ++depth_samples_;
  depth_sum_ += static_cast<double>(depth);
  depth_max_ = std::max(depth_max_, depth);
}

void LatencyRecorder::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  request_seconds_.clear();
  queue_seconds_.clear();
  batch_seconds_.clear();
  batched_requests_ = 0;
  batches_ = 0;
  shed_ = 0;
  depth_samples_ = 0;
  depth_sum_ = 0.0;
  depth_max_ = 0;
  start_ = std::chrono::steady_clock::now();
}

LatencySummary LatencyRecorder::Summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  LatencySummary s;
  s.requests = static_cast<int64_t>(request_seconds_.size());
  s.batches = batches_;
  s.shed = shed_;
  s.request_p50 = Percentile(request_seconds_, 50.0);
  s.request_p95 = Percentile(request_seconds_, 95.0);
  s.request_p99 = Percentile(request_seconds_, 99.0);
  s.request_max = MaxOf(request_seconds_);
  s.queue_p50 = Percentile(queue_seconds_, 50.0);
  s.queue_p99 = Percentile(queue_seconds_, 99.0);
  s.batch_p50 = Percentile(batch_seconds_, 50.0);
  s.batch_p99 = Percentile(batch_seconds_, 99.0);
  s.batch_max = MaxOf(batch_seconds_);
  s.mean_batch_size =
      batches_ > 0 ? static_cast<double>(batched_requests_) /
                         static_cast<double>(batches_)
                   : 0.0;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  s.throughput = elapsed > 0.0 ? static_cast<double>(s.requests) / elapsed
                               : 0.0;
  s.mean_queue_depth =
      depth_samples_ > 0 ? depth_sum_ / static_cast<double>(depth_samples_)
                         : 0.0;
  s.max_queue_depth = depth_max_;
  return s;
}

Table LatencyRecorder::ToTable() const {
  const LatencySummary s = Summary();
  Table table({"Metric", "Value"});
  table.AddRow({"requests completed", std::to_string(s.requests)});
  table.AddRow({"micro-batches", std::to_string(s.batches)});
  table.AddRow({"requests shed", std::to_string(s.shed)});
  table.AddRow({"request p50 (ms)", Ms(s.request_p50)});
  table.AddRow({"request p95 (ms)", Ms(s.request_p95)});
  table.AddRow({"request p99 (ms)", Ms(s.request_p99)});
  table.AddRow({"request max (ms)", Ms(s.request_max)});
  table.AddRow({"queue p50 (ms)", Ms(s.queue_p50)});
  table.AddRow({"queue p99 (ms)", Ms(s.queue_p99)});
  table.AddRow({"batch compute p50 (ms)", Ms(s.batch_p50)});
  table.AddRow({"batch compute p99 (ms)", Ms(s.batch_p99)});
  table.AddRow({"batch compute max (ms)", Ms(s.batch_max)});
  table.AddRow({"mean batch size", Table::Num(s.mean_batch_size, 2)});
  table.AddRow({"throughput (windows/s)", Table::Num(s.throughput, 1)});
  table.AddRow({"mean queue depth", Table::Num(s.mean_queue_depth, 2)});
  table.AddRow({"max queue depth", std::to_string(s.max_queue_depth)});
  return table;
}

std::string LatencyRecorder::ToCsv() const { return ToTable().ToCsv(); }

}  // namespace trafficbench::serve
