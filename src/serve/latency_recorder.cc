#include "src/serve/latency_recorder.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace trafficbench::serve {

namespace {

/// Nearest-rank percentile of an unsorted sample copy (q in [0, 100]).
double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = q / 100.0 * static_cast<double>(samples.size());
  int64_t index = static_cast<int64_t>(std::ceil(rank)) - 1;
  index = std::clamp<int64_t>(index, 0, static_cast<int64_t>(samples.size()) - 1);
  return samples[index];
}

double MaxOf(const std::vector<double>& samples) {
  return samples.empty() ? 0.0
                         : *std::max_element(samples.begin(), samples.end());
}

std::string Ms(double seconds) { return Table::Num(seconds * 1e3, 3); }

}  // namespace

const char* ShedReasonName(ShedReason reason) {
  switch (reason) {
    case ShedReason::kQueueFull:
      return "queue_full";
    case ShedReason::kAgedOut:
      return "aged_out";
    case ShedReason::kClosed:
      return "closed";
  }
  return "?";
}

LatencyRecorder::LatencyRecorder() { Reset(); }

void LatencyRecorder::RecordRequest(double queue_seconds,
                                    double total_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  queue_seconds_.push_back(queue_seconds);
  request_seconds_.push_back(total_seconds);
}

void LatencyRecorder::RecordDegraded(int tier, const std::string& lane,
                                     double total_seconds) {
  TB_CHECK(tier == 1 || tier == 2);
  std::lock_guard<std::mutex> lock(mu_);
  if (tier == 1) {
    tier1_seconds_.push_back(total_seconds);
    ++lanes_[lane].degraded_cache;
  } else {
    tier2_seconds_.push_back(total_seconds);
    ++lanes_[lane].degraded_baseline;
  }
}

void LatencyRecorder::RecordBatch(int64_t size, double compute_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  batch_seconds_.push_back(compute_seconds);
  batched_requests_ += size;
  ++batches_;
}

void LatencyRecorder::RecordShed(ShedReason reason, const std::string& lane) {
  std::lock_guard<std::mutex> lock(mu_);
  LaneCounters& counters = lanes_[lane];
  switch (reason) {
    case ShedReason::kQueueFull:
      ++shed_queue_full_;
      ++counters.shed_queue_full;
      break;
    case ShedReason::kAgedOut:
      ++shed_aged_out_;
      ++counters.shed_aged_out;
      break;
    case ShedReason::kClosed:
      ++shed_closed_;
      ++counters.shed_closed;
      break;
  }
}

void LatencyRecorder::RecordQueueDepth(int64_t depth) {
  std::lock_guard<std::mutex> lock(mu_);
  ++depth_samples_;
  depth_sum_ += static_cast<double>(depth);
  depth_max_ = std::max(depth_max_, depth);
}

void LatencyRecorder::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  request_seconds_.clear();
  queue_seconds_.clear();
  batch_seconds_.clear();
  tier1_seconds_.clear();
  tier2_seconds_.clear();
  batched_requests_ = 0;
  batches_ = 0;
  shed_queue_full_ = 0;
  shed_aged_out_ = 0;
  shed_closed_ = 0;
  depth_samples_ = 0;
  depth_sum_ = 0.0;
  depth_max_ = 0;
  lanes_.clear();
  start_ = std::chrono::steady_clock::now();
}

LatencySummary LatencyRecorder::Summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  LatencySummary s;
  s.tier0 = static_cast<int64_t>(request_seconds_.size());
  s.tier1 = static_cast<int64_t>(tier1_seconds_.size());
  s.tier2 = static_cast<int64_t>(tier2_seconds_.size());
  s.requests = s.tier0 + s.tier1 + s.tier2;
  s.batches = batches_;
  s.shed_queue_full = shed_queue_full_;
  s.shed_aged_out = shed_aged_out_;
  s.shed_closed = shed_closed_;
  s.shed = shed_queue_full_ + shed_aged_out_ + shed_closed_;

  // End-to-end percentiles cover every completed response, whatever tier
  // produced it — "p99 stays bounded under overload" is a statement about
  // the whole answer stream, not just the full-model slice.
  std::vector<double> all = request_seconds_;
  all.insert(all.end(), tier1_seconds_.begin(), tier1_seconds_.end());
  all.insert(all.end(), tier2_seconds_.begin(), tier2_seconds_.end());
  s.request_p50 = Percentile(all, 50.0);
  s.request_p95 = Percentile(all, 95.0);
  s.request_p99 = Percentile(all, 99.0);
  s.request_max = MaxOf(all);
  s.queue_p50 = Percentile(queue_seconds_, 50.0);
  s.queue_p99 = Percentile(queue_seconds_, 99.0);
  s.batch_p50 = Percentile(batch_seconds_, 50.0);
  s.batch_p99 = Percentile(batch_seconds_, 99.0);
  s.batch_max = MaxOf(batch_seconds_);
  s.tier1_p99 = Percentile(tier1_seconds_, 99.0);
  s.tier2_p99 = Percentile(tier2_seconds_, 99.0);
  s.mean_batch_size =
      batches_ > 0 ? static_cast<double>(batched_requests_) /
                         static_cast<double>(batches_)
                   : 0.0;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  s.throughput = elapsed > 0.0 ? static_cast<double>(s.requests) / elapsed
                               : 0.0;
  s.mean_queue_depth =
      depth_samples_ > 0 ? depth_sum_ / static_cast<double>(depth_samples_)
                         : 0.0;
  s.max_queue_depth = depth_max_;
  s.lanes = lanes_;
  return s;
}

Table LatencyRecorder::ToTable() const {
  const LatencySummary s = Summary();
  Table table({"Metric", "Value"});
  table.AddRow({"requests completed", std::to_string(s.requests)});
  table.AddRow({"micro-batches", std::to_string(s.batches)});
  table.AddRow({"tiers (full/cache/baseline)",
                std::to_string(s.tier0) + "/" + std::to_string(s.tier1) +
                    "/" + std::to_string(s.tier2)});
  table.AddRow({"requests shed", std::to_string(s.shed)});
  table.AddRow({"shed (queue_full/aged_out/closed)",
                std::to_string(s.shed_queue_full) + "/" +
                    std::to_string(s.shed_aged_out) + "/" +
                    std::to_string(s.shed_closed)});
  table.AddRow({"request p50 (ms)", Ms(s.request_p50)});
  table.AddRow({"request p95 (ms)", Ms(s.request_p95)});
  table.AddRow({"request p99 (ms)", Ms(s.request_p99)});
  table.AddRow({"request max (ms)", Ms(s.request_max)});
  table.AddRow({"queue p50 (ms)", Ms(s.queue_p50)});
  table.AddRow({"queue p99 (ms)", Ms(s.queue_p99)});
  table.AddRow({"batch compute p50 (ms)", Ms(s.batch_p50)});
  table.AddRow({"batch compute p99 (ms)", Ms(s.batch_p99)});
  table.AddRow({"batch compute max (ms)", Ms(s.batch_max)});
  table.AddRow({"tier1 p99 (ms)", Ms(s.tier1_p99)});
  table.AddRow({"tier2 p99 (ms)", Ms(s.tier2_p99)});
  table.AddRow({"mean batch size", Table::Num(s.mean_batch_size, 2)});
  table.AddRow({"throughput (windows/s)", Table::Num(s.throughput, 1)});
  table.AddRow({"mean queue depth", Table::Num(s.mean_queue_depth, 2)});
  table.AddRow({"max queue depth", std::to_string(s.max_queue_depth)});
  for (const auto& [lane, counters] : s.lanes) {
    table.AddRow({"lane " + lane + " shed (full/aged/closed)",
                  std::to_string(counters.shed_queue_full) + "/" +
                      std::to_string(counters.shed_aged_out) + "/" +
                      std::to_string(counters.shed_closed)});
    table.AddRow({"lane " + lane + " degraded (cache/baseline)",
                  std::to_string(counters.degraded_cache) + "/" +
                      std::to_string(counters.degraded_baseline)});
  }
  return table;
}

std::string LatencyRecorder::ToCsv() const { return ToTable().ToCsv(); }

}  // namespace trafficbench::serve
