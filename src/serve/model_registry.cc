#include "src/serve/model_registry.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>

#include "src/nn/serialize.h"
#include "src/tensor/trace.h"
#include "src/util/check.h"
#include "src/util/fault.h"

namespace trafficbench::serve {

namespace {

/// Batch-size bucket: the smallest power of two >= b. Requests share a
/// compiled plan per bucket; smaller batches are zero-padded up to it.
int64_t BucketFor(int64_t b) {
  int64_t bucket = 1;
  while (bucket < b) bucket <<= 1;
  return bucket;
}

/// Deterministic perturbation for the second verification input: remaps
/// every element (values and time channel alike) so a plan that baked any
/// host-read or folded any input-dependent value produces a mismatch.
void Perturb(std::vector<float>* values) {
  for (float& v : *values) v = v * 0.5f + 0.125f;
}

bool BitEqual(const float* a, const float* b, int64_t n) {
  return std::memcmp(a, b, static_cast<size_t>(n) * sizeof(float)) == 0;
}

/// Epsilon comparison for reduced-precision plans over normalized outputs:
/// per element |plan - eager| <= abs_bound + rel_bound * |eager|, written
/// as !(diff <= bound) so NaN/Inf from a corrupted packed panel fail; plus
/// the mean-abs-delta bound (see LoadedModel::kMaeDeltaFrac).
bool EpsilonClose(const float* plan_out, const float* eager, int64_t n,
                  float abs_bound, float rel_bound, float mae_bound) {
  double sum_abs = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const float diff = std::fabs(plan_out[i] - eager[i]);
    const float bound = abs_bound + rel_bound * std::fabs(eager[i]);
    if (!(diff <= bound)) return false;
    sum_abs += diff;
  }
  if (n == 0) return true;
  const double mean_abs = sum_abs / static_cast<double>(n);
  return mean_abs <= static_cast<double>(mae_bound);
}

}  // namespace

LoadedModel::LoadedModel(std::unique_ptr<models::TrafficModel> model,
                         const data::TrafficDataset& dataset,
                         std::string model_name, std::string dataset_name,
                         bool compile_plans, plan::Precision precision)
    : model_(std::move(model)),
      scaler_(dataset.scaler()),
      model_name_(std::move(model_name)),
      dataset_name_(std::move(dataset_name)),
      num_nodes_(dataset.num_nodes()),
      input_len_(dataset.input_len()),
      output_len_(dataset.output_len()),
      plans_enabled_(compile_plans),
      precision_(precision) {
  TB_CHECK(model_ != nullptr);
  parameter_count_ = model_->ParameterCount();
  trainable_ = model_->IsTrainable();
  model_->SetTraining(false);
  if (!compile_plans) plans_disabled_reason_ = "disabled by spec";
}

Tensor LoadedModel::DenormalizeTo(const Shape& shape,
                                  const float* normalized) const {
  // Scalar denormalization: per-element and thus independent of batch
  // composition (part of the bit-identity contract).
  const int64_t n = shape.numel();
  std::vector<float> raw(normalized, normalized + n);
  for (float& v : raw) v = scaler_.Denormalize(v);
  return Tensor::FromVector(shape, std::move(raw));
}

Tensor LoadedModel::PredictEagerLocked(const Tensor& x) const {
  Tensor normalized = model_->Forward(x, Tensor());
  return DenormalizeTo(normalized.shape(), normalized.data());
}

void LoadedModel::DisablePlansLocked(const std::string& reason) const {
  plans_enabled_ = false;
  plans_disabled_reason_ = reason;
  plans_.clear();  // executors release their buffers back to the pool
}

void LoadedModel::DowngradeToFp32Locked(const std::string& reason) const {
  precision_ = plan::Precision::kFp32;
  precision_downgrade_reason_ = reason;
  plans_.clear();  // every cached plan carried the rejected tier
}

LoadedModel::BucketPlan* LoadedModel::CompileBucketLocked(
    int64_t bucket) const {
  {
    // The global injector is not thread-safe; concurrent first requests to
    // *different* models may reach this site at once (cf. the server's
    // fault mutex for serve_slow_worker).
    static std::mutex fault_mu;
    std::lock_guard<std::mutex> fault_lock(fault_mu);
    if (FaultInjector::Global().Should(FaultSite::kPlanCompile)) {
      DisablePlansLocked("fault injected at plan_compile");
      return nullptr;
    }
  }

  const Shape in_shape({bucket, input_len_, num_nodes_, 2});
  const int64_t in_numel = in_shape.numel();

  // Trace one eager forward over a zero batch of the bucket shape.
  Tensor traced_in = Tensor::Zeros(in_shape);
  trace::Tracer tracer;
  Tensor traced_out;
  {
    trace::Tracer::Scope scope(&tracer);
    traced_out = model_->Forward(traced_in, Tensor());
  }

  plan::CompileOptions options;
  options.precision = precision_;
  const bool reduced = precision_ != plan::Precision::kFp32;
  Result<std::shared_ptr<const plan::InferencePlan>> compiled =
      plan::Compile(tracer, traced_in.impl(), traced_out.impl(), options);
  if (!compiled.ok()) {
    DisablePlansLocked("compile failed: " + compiled.status().message());
    return nullptr;
  }
  // Slicing the first `batch` windows out of the padded output requires the
  // batch axis to be outermost.
  if (traced_out.rank() < 1 || traced_out.dim(0) != bucket) {
    DisablePlansLocked("output batch axis is not outermost");
    return nullptr;
  }

  BucketPlan bp;
  bp.plan = std::move(compiled).value();
  bp.executor = std::make_unique<exec::PlanExecutor>(bp.plan);
  bp.staging_in.assign(in_numel, 0.0f);
  bp.staging_out.assign(bp.plan->output_shape.numel(), 0.0f);

  // Reduced-precision tiers are compared against the fp32 eager forward
  // within the documented epsilon bounds (header). A violation walks the
  // downgrade ladder: drop to fp32 plans and recompile this bucket — the
  // fp32 plan then faces the bitwise verifier, and its failure falls back
  // to eager. An unverified plan is never installed.
  auto epsilon_ok = [&](const float* eager, int64_t n) {
    return EpsilonClose(bp.staging_out.data(), eager, n, kEpsAbs, kEpsRel,
                        kMaeDeltaFrac);
  };

  // Verification 1: replaying the traced input must reproduce the traced
  // output — bit for bit at fp32, within epsilon at reduced tiers.
  bp.executor->Run(traced_in.data(), in_numel, bp.staging_out.data(),
                   static_cast<int64_t>(bp.staging_out.size()));
  if (reduced) {
    if (!epsilon_ok(traced_out.data(), traced_out.numel())) {
      DowngradeToFp32Locked(std::string(kernels::PrecisionName(precision_)) +
                            " plan outside epsilon on traced input");
      return CompileBucketLocked(bucket);
    }
  } else if (!BitEqual(bp.staging_out.data(), traced_out.data(),
                       traced_out.numel())) {
    DisablePlansLocked("verify failed: plan != eager on traced input");
    return nullptr;
  }

  // Verification 2: a perturbed input must also match the eager forward —
  // this catches any input-dependent value the compile baked in as a
  // constant (e.g. a host-side read that bypassed trace::HostOp). For
  // reduced tiers the nonzero activations make this the check that a
  // corrupted packed panel cannot survive (on the zero input a weight
  // never multiplies a nonzero activation).
  std::vector<float> perturbed = traced_in.ToVector();
  Perturb(&perturbed);
  Tensor check_in = Tensor::FromVector(in_shape, std::move(perturbed));
  Tensor check_out = model_->Forward(check_in, Tensor());
  bp.executor->Run(check_in.data(), in_numel, bp.staging_out.data(),
                   static_cast<int64_t>(bp.staging_out.size()));
  if (reduced) {
    if (!epsilon_ok(check_out.data(), check_out.numel())) {
      DowngradeToFp32Locked(std::string(kernels::PrecisionName(precision_)) +
                            " plan outside epsilon on perturbed input");
      return CompileBucketLocked(bucket);
    }
  } else if (!BitEqual(bp.staging_out.data(), check_out.data(),
                       check_out.numel())) {
    DisablePlansLocked("verify failed: plan != eager on perturbed input");
    return nullptr;
  }

  auto [it, inserted] = plans_.emplace(bucket, std::move(bp));
  TB_CHECK(inserted);
  return &it->second;
}

Tensor LoadedModel::Predict(const Tensor& x) const {
  TB_CHECK_EQ(x.rank(), 4);
  TB_CHECK_EQ(x.dim(1), input_len_);
  TB_CHECK_EQ(x.dim(2), num_nodes_);
  NoGradGuard no_grad;
  const int64_t batch = x.dim(0);
  std::lock_guard<std::mutex> lock(mu_);
  if (!plans_enabled_) return PredictEagerLocked(x);

  const int64_t bucket = BucketFor(batch);
  BucketPlan* bp = nullptr;
  auto it = plans_.find(bucket);
  if (it != plans_.end()) {
    bp = &it->second;
  } else {
    bp = CompileBucketLocked(bucket);
    if (bp == nullptr) return PredictEagerLocked(x);  // fell back
  }

  // Stage the batch into the bucket-shaped input. The tail beyond `batch`
  // is re-zeroed so plan execution is independent of request history; its
  // outputs are discarded (windows are batch-independent).
  const int64_t window = input_len_ * num_nodes_ * 2;
  std::memcpy(bp->staging_in.data(), x.data(),
              static_cast<size_t>(batch * window) * sizeof(float));
  std::fill(bp->staging_in.begin() + batch * window, bp->staging_in.end(),
            0.0f);
  bp->executor->Run(bp->staging_in.data(),
                    static_cast<int64_t>(bp->staging_in.size()),
                    bp->staging_out.data(),
                    static_cast<int64_t>(bp->staging_out.size()));
  std::vector<int64_t> out_dims = bp->plan->output_shape.dims();
  out_dims[0] = batch;  // slice the first `batch` windows off the bucket
  return DenormalizeTo(Shape(std::move(out_dims)), bp->staging_out.data());
}

Tensor LoadedModel::PredictReference(const Tensor& x) const {
  TB_CHECK_EQ(x.rank(), 4);
  TB_CHECK_EQ(x.dim(1), input_len_);
  TB_CHECK_EQ(x.dim(2), num_nodes_);
  NoGradGuard no_grad;
  std::lock_guard<std::mutex> lock(mu_);
  return PredictEagerLocked(x);
}

bool LoadedModel::plans_active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plans_enabled_;
}

plan::Precision LoadedModel::plan_precision() const {
  std::lock_guard<std::mutex> lock(mu_);
  return precision_;
}

std::string LoadedModel::plan_summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  if (!plans_enabled_) {
    return "plans off (" + plans_disabled_reason_ + ")";
  }
  if (!precision_downgrade_reason_.empty()) {
    out += "downgraded to fp32 (" + precision_downgrade_reason_ + "): ";
  }
  bool first = true;
  for (const auto& [bucket, bp] : plans_) {
    if (!first) out += "; ";
    first = false;
    out += "B" + std::to_string(bucket) + ": " + bp.plan->Summary();
  }
  return out;
}

Status ModelRegistry::Load(const ModelSpec& spec) {
  if (spec.dataset == nullptr) {
    return Status::InvalidArgument("ModelRegistry::Load: spec.dataset is null");
  }
  models::RegisterBuiltinModels();
  if (!models::ModelRegistry::Instance().Contains(spec.model_name)) {
    return Status::NotFound("ModelRegistry::Load: unknown model '" +
                            spec.model_name + "'");
  }
  std::unique_ptr<models::TrafficModel> model = models::CreateModel(
      spec.model_name, models::MakeModelContext(*spec.dataset, spec.seed));
  // Baselines estimate their statistics from the train split; for trainable
  // models Fit is a no-op and the checkpoint (if any) supplies the weights.
  model->Fit(*spec.dataset);
  if (!spec.checkpoint_path.empty()) {
    if (!std::filesystem::exists(spec.checkpoint_path)) {
      return Status::NotFound("ModelRegistry::Load: checkpoint '" +
                              spec.checkpoint_path + "' does not exist");
    }
    Status loaded = nn::LoadCheckpoint(model.get(), spec.checkpoint_path);
    if (!loaded.ok()) {
      return Status(loaded.code(), "ModelRegistry::Load(" + spec.model_name +
                                       ", " + spec.dataset_name +
                                       "): " + loaded.message());
    }
  }
  auto entry = std::make_shared<const LoadedModel>(
      std::move(model), *spec.dataset, spec.model_name, spec.dataset_name,
      spec.compile_plans, spec.precision);
  if (spec.warmup) {
    // Prime lazily-built scratch state (buffer pool, autoregressive
    // decode paths) with one real-shaped window of zeros.
    entry->Predict(Tensor::Zeros(
        {1, spec.dataset->input_len(), spec.dataset->num_nodes(), 2}));
  }
  const Key key(spec.model_name, spec.dataset_name);
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.emplace(key, entry).second) {
    load_order_.push_back(key);
  } else {
    entries_[key] = std::move(entry);
  }
  return Status::Ok();
}

LoadedModelPtr ModelRegistry::Find(const std::string& model_name,
                                   const std::string& dataset_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(Key(model_name, dataset_name));
  return it != entries_.end() ? it->second : nullptr;
}

LoadedModelPtr ModelRegistry::FindFallback(
    const std::string& dataset_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Key& key : load_order_) {
    if (key.second != dataset_name) continue;
    auto it = entries_.find(key);
    if (it != entries_.end() && !it->second->trainable()) return it->second;
  }
  return nullptr;
}

std::vector<std::pair<std::string, std::string>> ModelRegistry::Keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  return load_order_;
}

size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace trafficbench::serve
