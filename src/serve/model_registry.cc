#include "src/serve/model_registry.h"

#include <algorithm>
#include <filesystem>

#include "src/nn/serialize.h"
#include "src/util/check.h"

namespace trafficbench::serve {

LoadedModel::LoadedModel(std::unique_ptr<models::TrafficModel> model,
                         const data::TrafficDataset& dataset,
                         std::string model_name, std::string dataset_name)
    : model_(std::move(model)),
      scaler_(dataset.scaler()),
      model_name_(std::move(model_name)),
      dataset_name_(std::move(dataset_name)),
      num_nodes_(dataset.num_nodes()),
      input_len_(dataset.input_len()),
      output_len_(dataset.output_len()) {
  TB_CHECK(model_ != nullptr);
  parameter_count_ = model_->ParameterCount();
  model_->SetTraining(false);
}

Tensor LoadedModel::Predict(const Tensor& x) const {
  TB_CHECK_EQ(x.rank(), 4);
  TB_CHECK_EQ(x.dim(1), input_len_);
  TB_CHECK_EQ(x.dim(2), num_nodes_);
  NoGradGuard no_grad;
  Tensor normalized;
  {
    std::lock_guard<std::mutex> lock(mu_);
    normalized = model_->Forward(x, Tensor());
  }
  // Scalar denormalization outside the model lock: per-element and thus
  // independent of batch composition (part of the bit-identity contract).
  std::vector<float> raw = normalized.ToVector();
  for (float& v : raw) v = scaler_.Denormalize(v);
  return Tensor::FromVector(normalized.shape(), std::move(raw));
}

Status ModelRegistry::Load(const ModelSpec& spec) {
  if (spec.dataset == nullptr) {
    return Status::InvalidArgument("ModelRegistry::Load: spec.dataset is null");
  }
  models::RegisterBuiltinModels();
  if (!models::ModelRegistry::Instance().Contains(spec.model_name)) {
    return Status::NotFound("ModelRegistry::Load: unknown model '" +
                            spec.model_name + "'");
  }
  std::unique_ptr<models::TrafficModel> model = models::CreateModel(
      spec.model_name, models::MakeModelContext(*spec.dataset, spec.seed));
  // Baselines estimate their statistics from the train split; for trainable
  // models Fit is a no-op and the checkpoint (if any) supplies the weights.
  model->Fit(*spec.dataset);
  if (!spec.checkpoint_path.empty()) {
    if (!std::filesystem::exists(spec.checkpoint_path)) {
      return Status::NotFound("ModelRegistry::Load: checkpoint '" +
                              spec.checkpoint_path + "' does not exist");
    }
    Status loaded = nn::LoadCheckpoint(model.get(), spec.checkpoint_path);
    if (!loaded.ok()) {
      return Status(loaded.code(), "ModelRegistry::Load(" + spec.model_name +
                                       ", " + spec.dataset_name +
                                       "): " + loaded.message());
    }
  }
  auto entry = std::make_shared<const LoadedModel>(
      std::move(model), *spec.dataset, spec.model_name, spec.dataset_name);
  if (spec.warmup) {
    // Prime lazily-built scratch state (buffer pool, autoregressive
    // decode paths) with one real-shaped window of zeros.
    entry->Predict(Tensor::Zeros(
        {1, spec.dataset->input_len(), spec.dataset->num_nodes(), 2}));
  }
  const Key key(spec.model_name, spec.dataset_name);
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.emplace(key, entry).second) {
    load_order_.push_back(key);
  } else {
    entries_[key] = std::move(entry);
  }
  return Status::Ok();
}

LoadedModelPtr ModelRegistry::Find(const std::string& model_name,
                                   const std::string& dataset_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(Key(model_name, dataset_name));
  return it != entries_.end() ? it->second : nullptr;
}

std::vector<std::pair<std::string, std::string>> ModelRegistry::Keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  return load_order_;
}

size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace trafficbench::serve
