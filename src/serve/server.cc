#include "src/serve/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/exec/execution_context.h"
#include "src/util/check.h"
#include "src/util/fault.h"
#include "src/util/stopwatch.h"

namespace trafficbench::serve {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::string LaneName(const LoadedModel& model) {
  return model.model_name() + "/" + model.dataset_name();
}

ResponseCacheOptions CacheOptionsFor(const ServerOptions& options) {
  ResponseCacheOptions cache;
  cache.capacity = options.cache_capacity;
  return cache;
}

}  // namespace

Server::Server(const ModelRegistry* registry, const ServerOptions& options)
    : registry_(registry),
      options_(options),
      queue_(options.queue_capacity),
      batcher_(&queue_, options.batch),
      admission_(options.admission),
      cache_(CacheOptionsFor(options)) {
  TB_CHECK(registry != nullptr);
  TB_CHECK_GT(options.workers, 0);
  TB_CHECK_GT(options.threads_per_worker, 0);
}

Server::~Server() { Stop(); }

void Server::Start() {
  TB_CHECK(!running_);
  running_ = true;
  // No recorder reset here: requests may legitimately be submitted (and
  // shed) before the workers spin up, and those events belong to this
  // run's metrics. Callers wanting a fresh window call recorder().Reset().
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void Server::Stop() {
  if (!running_) return;
  queue_.Close();  // workers drain what is queued, then exit
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  running_ = false;
}

bool Server::RespondDegraded(Tier tier, const LoadedModelPtr& model,
                             const Tensor& window, const std::string& lane,
                             std::chrono::steady_clock::time_point start,
                             std::promise<PredictResponse>* promise) {
  TB_CHECK(tier == Tier::kCached || tier == Tier::kBaseline);
  PredictResponse response;

  // Tier 1: the exact same normalized window answered by the exact same
  // loaded instance before. A poisoned or stale entry reads as a miss
  // (detected inside the cache), so the ladder falls through to tier 2.
  const bool try_cache_first = tier == Tier::kCached;
  if (try_cache_first && cache_.Lookup(model, window, &response.prediction)) {
    response.tier = 1;
  } else {
    LoadedModelPtr fallback = registry_->FindFallback(model->dataset_name());
    if (fallback != nullptr) {
      const int64_t t_in = fallback->input_len();
      const int64_t n = fallback->num_nodes();
      Tensor batched = Tensor::FromVector({1, t_in, n, 2}, window.ToVector());
      Tensor prediction = options_.use_plan
                              ? fallback->Predict(batched)
                              : fallback->PredictReference(batched);
      response.prediction = Tensor::FromVector(
          {fallback->output_len(), n}, prediction.ToVector());
      response.tier = 2;
    } else if (!try_cache_first &&
               cache_.Lookup(model, window, &response.prediction)) {
      // Asked for the baseline tier but none is loaded; a cache hit is
      // still a better answer than forcing tier 0 under pressure.
      response.tier = 1;
    } else {
      return false;  // nothing degraded can answer; caller runs tier 0
    }
  }

  response.status = Status::Ok();
  response.queue_seconds = 0.0;
  response.compute_seconds = 0.0;
  response.batch_size = 0;
  response.total_seconds = SecondsSince(start);
  recorder_.RecordDegraded(response.tier, lane, response.total_seconds);
  promise->set_value(std::move(response));
  return true;
}

std::future<PredictResponse> Server::Submit(PredictRequest request) {
  std::promise<PredictResponse> promise;
  std::future<PredictResponse> future = promise.get_future();

  LoadedModelPtr model =
      registry_->Find(request.model_name, request.dataset_name);
  if (model == nullptr) {
    PredictResponse response;
    response.status = Status::NotFound(
        "Submit: no loaded model for (" + request.model_name + ", " +
        request.dataset_name + ")");
    promise.set_value(std::move(response));
    return future;
  }
  // Accept [T_in, N, 2] or [1, T_in, N, 2]. Copy through a vector rather
  // than Reshape: this detaches the window from any autograd graph and
  // normalizes its layout without needing contiguity.
  Tensor window = request.window;
  if (window.defined() && window.rank() == 4 && window.dim(0) == 1) {
    window = Tensor::FromVector({window.dim(1), window.dim(2), window.dim(3)},
                                window.ToVector());
  }
  if (!window.defined() || window.rank() != 3 ||
      window.dim(0) != model->input_len() ||
      window.dim(1) != model->num_nodes() || window.dim(2) != 2) {
    PredictResponse response;
    response.status = Status::InvalidArgument(
        "Submit: window must be [T_in, N, 2] = [" +
        std::to_string(model->input_len()) + ", " +
        std::to_string(model->num_nodes()) + ", 2]");
    promise.set_value(std::move(response));
    return future;
  }

  const auto submit_time = std::chrono::steady_clock::now();
  const std::string lane = LaneName(*model);

  // Admission: read the lane's pressure and pick a ladder tier. The
  // degrade_ladder fault site overrides the decision to the cache tier and
  // poisons the cache's freshest entry, pinning the corrupted-entry
  // fall-through end to end.
  Tier tier = Tier::kFull;
  if (options_.admission.enabled) {
    tier = admission_.Admit(
        lane, queue_.Signals(model->model_name(), model->dataset_name()));
  }
  if (ShouldForceDegrade()) {
    cache_.CorruptMostRecent();
    tier = Tier::kCached;
  }
  if (tier != Tier::kFull &&
      RespondDegraded(tier, model, window, lane, submit_time, &promise)) {
    return future;
  }

  PendingRequest pending;
  pending.model = std::move(model);
  pending.window = std::move(window);
  pending.promise = std::move(promise);
  pending.enqueue_time = submit_time;
  ShedReason why = ShedReason::kQueueFull;
  const Status pushed = queue_.Push(std::move(pending), &why);
  if (!pushed.ok()) {
    // Push consumes the request only on success, so the promise is still
    // inside `pending` and ours to fulfil. A full queue degrades when the
    // ladder is on (zero hard drops under overload); a closed queue — or a
    // full one with admission off — sheds with the recorded reason.
    if (options_.admission.enabled && why == ShedReason::kQueueFull &&
        RespondDegraded(Tier::kCached, pending.model, pending.window, lane,
                        submit_time, &pending.promise)) {
      return future;
    }
    recorder_.RecordShed(why, lane);
    PredictResponse response;
    response.status = pushed;
    pending.promise.set_value(std::move(response));
    return future;
  }
  recorder_.RecordQueueDepth(queue_.size());
  return future;
}

PredictResponse Server::Predict(PredictRequest request) {
  return Submit(std::move(request)).get();
}

bool Server::ShouldStall() {
  FaultInjector& fault = FaultInjector::Global();
  if (!fault.enabled()) return false;
  std::lock_guard<std::mutex> lock(fault_mu_);
  return fault.Should(FaultSite::kServeSlowWorker);
}

bool Server::ShouldForceDegrade() {
  FaultInjector& fault = FaultInjector::Global();
  if (!fault.enabled()) return false;
  std::lock_guard<std::mutex> lock(fault_mu_);
  return fault.Should(FaultSite::kDegradeLadder);
}

void Server::WorkerLoop() {
  // Each worker owns its execution context: contexts are not reentrant
  // across threads, and per-worker buffer pools keep scratch reuse local.
  exec::ExecutionContext context(
      {.threads = options_.threads_per_worker, .profile = false});
  exec::ExecutionContext::Bind bind(&context);
  NoGradGuard no_grad;
  while (std::optional<MicroBatch> batch = batcher_.NextBatch()) {
    ProcessBatch(std::move(*batch));
  }
}

void Server::ProcessBatch(MicroBatch batch) {
  const auto formed = std::chrono::steady_clock::now();

  // Requests the batcher aged out of their lanes: resolve them without
  // model compute. With the ladder on they degrade (their answer is stale
  // but bounded-latency); otherwise they shed with the aged_out reason.
  for (PendingRequest& expired : batch.expired) {
    const std::string lane = LaneName(*expired.model);
    if (options_.admission.enabled &&
        RespondDegraded(Tier::kCached, expired.model, expired.window, lane,
                        expired.enqueue_time, &expired.promise)) {
      continue;
    }
    recorder_.RecordShed(ShedReason::kAgedOut, lane);
    PredictResponse response;
    response.status = Status::ResourceExhausted(
        "request aged out after " +
        std::to_string(options_.batch.max_lane_age_ms) + " ms in lane " +
        lane);
    expired.promise.set_value(std::move(response));
  }
  if (batch.model == nullptr || batch.requests.empty()) return;

  const LoadedModel& model = *batch.model;
  const std::string lane = LaneName(model);
  const int64_t k = static_cast<int64_t>(batch.requests.size());
  const int64_t t_in = model.input_len();
  const int64_t t_out = model.output_len();
  const int64_t n = model.num_nodes();

  if (ShouldStall()) {
    // Deterministic injected worker stall (serve_slow_worker): the batch
    // still computes correctly, but its latency must show up in the
    // recorder's p99/max and, under pressure, in shed counts.
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        options_.fault_stall_ms));
  }

  // Coalesce the windows into one [K, T_in, N, 2] forward.
  std::vector<float> input(static_cast<size_t>(k * t_in * n * 2));
  for (int64_t i = 0; i < k; ++i) {
    const std::vector<float> w = batch.requests[i].window.ToVector();
    std::copy(w.begin(), w.end(), input.begin() + i * t_in * n * 2);
  }
  Stopwatch compute_watch;
  Tensor batched = Tensor::FromVector({k, t_in, n, 2}, std::move(input));
  Tensor prediction = options_.use_plan ? model.Predict(batched)
                                        : model.PredictReference(batched);
  const double compute_seconds = compute_watch.ElapsedSeconds();
  TB_CHECK_EQ(prediction.numel(), k * t_out * n);

  const float* out = prediction.data();
  for (int64_t i = 0; i < k; ++i) {
    PendingRequest& request = batch.requests[i];
    PredictResponse response;
    response.status = Status::Ok();
    response.tier = 0;
    response.prediction = Tensor::FromVector(
        {t_out, n},
        std::vector<float>(out + i * t_out * n, out + (i + 1) * t_out * n));
    response.queue_seconds =
        std::chrono::duration<double>(formed - request.enqueue_time).count();
    response.compute_seconds = compute_seconds;
    response.batch_size = k;
    response.total_seconds = SecondsSince(request.enqueue_time);
    // Populate the response cache from the full-model path: the next time
    // this exact window arrives under pressure, tier 1 can answer it.
    cache_.Insert(batch.model, request.window, response.prediction);
    recorder_.RecordRequest(response.queue_seconds, response.total_seconds);
    admission_.ObserveCompletion(lane, response.total_seconds);
    request.promise.set_value(std::move(response));
  }
  recorder_.RecordBatch(k, compute_seconds);
}

}  // namespace trafficbench::serve
