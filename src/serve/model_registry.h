#ifndef TRAFFICBENCH_SERVE_MODEL_REGISTRY_H_
#define TRAFFICBENCH_SERVE_MODEL_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/data/dataset.h"
#include "src/exec/plan_executor.h"
#include "src/models/traffic_model.h"
#include "src/plan/plan.h"
#include "src/tensor/tensor.h"
#include "src/util/status.h"

namespace trafficbench::serve {

/// What to load into the registry. The dataset supplies the model context
/// (node count, adjacency — from which the models pre-convert their graph
/// supports through models::GraphSupport at build time) and the z-score
/// scaler used to denormalize predictions; it must outlive the registry.
struct ModelSpec {
  std::string model_name;    // registry name, e.g. "Graph-WaveNet"
  std::string dataset_name;  // registry key half, e.g. "METR-LA-S"
  const data::TrafficDataset* dataset = nullptr;
  /// Optional trained weights: a TBCKPT1 (v1) or TBCKPT2 checkpoint read
  /// through nn::LoadCheckpoint. Empty serves the seed-initialized model
  /// (latency benchmarking does not need trained weights).
  std::string checkpoint_path;
  uint64_t seed = 2021;
  /// Run one batch-of-1 forward after loading so first-request latency is
  /// not dominated by lazily-built scratch state.
  bool warmup = true;
  /// Compile traced inference plans (DESIGN.md §12). The first request of
  /// each batch-size bucket traces the eager forward, compiles it, and
  /// verifies the plan bit-identical on two inputs before serving from it;
  /// any failure permanently falls back to the eager path for this entry.
  bool compile_plans = true;
  /// Weight-storage tier for compiled plans (DESIGN.md §13). kFp32 plans
  /// are verified bitwise against the eager forward; reduced tiers are
  /// verified within the registry's documented epsilon bounds, and any
  /// violation downgrades the entry to fp32 plans (then to eager if those
  /// fail too) — an unverified plan is never served.
  plan::Precision precision = plan::Precision::kFp32;
};

/// One warm, immutable serving instance: a built model (eval mode, graph
/// supports already CSR-converted where sparse enough), its dataset's
/// scaler, and the shape contract of its windows. Forward passes are
/// serialized per instance — TrafficModel::Forward is not reentrant — so
/// concurrent server workers can share one instance safely; different
/// instances run fully in parallel.
class LoadedModel {
 public:
  LoadedModel(std::unique_ptr<models::TrafficModel> model,
              const data::TrafficDataset& dataset, std::string model_name,
              std::string dataset_name, bool compile_plans = true,
              plan::Precision precision = plan::Precision::kFp32);

  /// Epsilon-verification bounds for reduced-precision plans (DESIGN.md
  /// §13). On the *normalized* outputs, every element must satisfy
  /// |plan - eager| <= kEpsAbs + kEpsRel * |eager| (NaN/Inf fail), and the
  /// mean absolute delta must stay within kMaeDeltaFrac — which, because
  /// denormalization is affine with scale stddev, bounds the denormalized
  /// (raw-scale) MAE delta of the verification window to
  /// kMaeDeltaFrac * stddev, i.e. 1% of one standard deviation of the data.
  static constexpr float kEpsAbs = 0.05f;
  static constexpr float kEpsRel = 0.05f;
  static constexpr float kMaeDeltaFrac = 0.01f;

  /// x: [B, T_in, N, 2] -> raw-scale (denormalized) predictions
  /// [B, T_out, N]. Runs under NoGrad; bit-identical for every batch
  /// composition and thread count (each output element's value depends only
  /// on its own window).
  ///
  /// When plan compilation is enabled, the hot path executes the compiled
  /// plan of the request's batch-size bucket (compiled and verified lazily
  /// on the bucket's first request; the batch is zero-padded to the bucket
  /// size and the padding outputs discarded — valid because each window's
  /// output is independent of its batchmates). Output is bit-identical to
  /// PredictReference by construction, and enforced at compile time by a
  /// two-input bitwise verification.
  Tensor Predict(const Tensor& x) const;

  /// The eager (autograd-graph) forward, always. The reference Predict is
  /// verified against; also the fallback when plans are disabled.
  Tensor PredictReference(const Tensor& x) const;

  /// True when plan execution is enabled and no compile/verify failure has
  /// forced the eager fallback.
  bool plans_active() const;
  /// The tier plans currently compile at: the spec's precision until an
  /// epsilon-verification failure downgrades the entry to kFp32.
  plan::Precision plan_precision() const;
  /// Per-bucket plan summaries and the fallback/downgrade reason (if any),
  /// for logs and serve-bench. Empty when no plan was ever compiled.
  std::string plan_summary() const;

  const std::string& model_name() const { return model_name_; }
  const std::string& dataset_name() const { return dataset_name_; }
  int64_t num_nodes() const { return num_nodes_; }
  int input_len() const { return input_len_; }
  int output_len() const { return output_len_; }
  int64_t parameter_count() const { return parameter_count_; }
  /// Whether the wrapped model learns by gradient descent. False for the
  /// training-free baselines (HistoricalAverage/LastValue) that the
  /// degradation ladder may substitute for the full model under overload.
  bool trainable() const { return trainable_; }

 private:
  /// A compiled plan for one batch-size bucket, with its executor and the
  /// zero-padded staging buffers (guarded by mu_, like the model).
  struct BucketPlan {
    std::shared_ptr<const plan::InferencePlan> plan;
    std::unique_ptr<exec::PlanExecutor> executor;
    std::vector<float> staging_in;
    std::vector<float> staging_out;
  };

  /// Eager forward + denormalization; `mu_` must be held by the caller.
  Tensor PredictEagerLocked(const Tensor& x) const;
  /// Applies the scaler to the first `numel` floats of `normalized`.
  Tensor DenormalizeTo(const Shape& shape, const float* normalized) const;
  /// Compiles + verifies the plan for `bucket`, or walks the downgrade
  /// ladder: a reduced-precision verification failure recompiles at fp32
  /// (bitwise-verified), and an fp32 failure disables plans for this entry
  /// (recording the reason). Requires mu_. Returns null on eager fallback.
  BucketPlan* CompileBucketLocked(int64_t bucket) const;
  void DisablePlansLocked(const std::string& reason) const;
  /// Drops every reduced-precision plan and pins the entry to fp32 plans.
  void DowngradeToFp32Locked(const std::string& reason) const;

  // Forward mutates transient module state, so the instance is logically
  // immutable (same input -> same output) but needs the mutex.
  mutable std::mutex mu_;
  mutable std::unique_ptr<models::TrafficModel> model_;
  data::ZScoreScaler scaler_;
  std::string model_name_;
  std::string dataset_name_;
  int64_t num_nodes_ = 0;
  int input_len_ = 0;
  int output_len_ = 0;
  int64_t parameter_count_ = 0;
  bool trainable_ = true;

  // Plan state (guarded by mu_).
  mutable bool plans_enabled_ = true;
  mutable std::string plans_disabled_reason_;
  mutable plan::Precision precision_ = plan::Precision::kFp32;  // active tier
  mutable std::string precision_downgrade_reason_;
  mutable std::map<int64_t, BucketPlan> plans_;  // keyed by bucket size
};

using LoadedModelPtr = std::shared_ptr<const LoadedModel>;

/// Registry of warm model instances keyed by (model, dataset). Load()
/// builds the model, applies the checkpoint (rejecting corrupt or missing
/// files with the serializer's CRC/byte-offset diagnostics), fits
/// non-trainable baselines, switches to eval mode and (optionally) runs a
/// warmup forward. Lookups after loading are lock-cheap and return shared
/// pointers, so entries stay valid even if the registry dies first.
class ModelRegistry {
 public:
  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Loads (or replaces) the entry for (spec.model_name, spec.dataset_name).
  Status Load(const ModelSpec& spec);

  /// The entry, or null when the pair was never loaded.
  LoadedModelPtr Find(const std::string& model_name,
                      const std::string& dataset_name) const;

  /// The first training-free entry (in load order) serving `dataset_name`,
  /// or null if none was loaded. The degradation ladder's tier 2 answers
  /// from this model; callers that want tier 2 available must load a
  /// baseline (e.g. HistoricalAverage) alongside the full models.
  LoadedModelPtr FindFallback(const std::string& dataset_name) const;

  /// Loaded (model, dataset) keys in load order.
  std::vector<std::pair<std::string, std::string>> Keys() const;
  size_t size() const;

 private:
  using Key = std::pair<std::string, std::string>;

  mutable std::mutex mu_;
  std::map<Key, LoadedModelPtr> entries_;
  std::vector<Key> load_order_;
};

}  // namespace trafficbench::serve

#endif  // TRAFFICBENCH_SERVE_MODEL_REGISTRY_H_
