#ifndef TRAFFICBENCH_SERVE_MODEL_REGISTRY_H_
#define TRAFFICBENCH_SERVE_MODEL_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/data/dataset.h"
#include "src/models/traffic_model.h"
#include "src/tensor/tensor.h"
#include "src/util/status.h"

namespace trafficbench::serve {

/// What to load into the registry. The dataset supplies the model context
/// (node count, adjacency — from which the models pre-convert their graph
/// supports through models::GraphSupport at build time) and the z-score
/// scaler used to denormalize predictions; it must outlive the registry.
struct ModelSpec {
  std::string model_name;    // registry name, e.g. "Graph-WaveNet"
  std::string dataset_name;  // registry key half, e.g. "METR-LA-S"
  const data::TrafficDataset* dataset = nullptr;
  /// Optional trained weights: a TBCKPT1 (v1) or TBCKPT2 checkpoint read
  /// through nn::LoadCheckpoint. Empty serves the seed-initialized model
  /// (latency benchmarking does not need trained weights).
  std::string checkpoint_path;
  uint64_t seed = 2021;
  /// Run one batch-of-1 forward after loading so first-request latency is
  /// not dominated by lazily-built scratch state.
  bool warmup = true;
};

/// One warm, immutable serving instance: a built model (eval mode, graph
/// supports already CSR-converted where sparse enough), its dataset's
/// scaler, and the shape contract of its windows. Forward passes are
/// serialized per instance — TrafficModel::Forward is not reentrant — so
/// concurrent server workers can share one instance safely; different
/// instances run fully in parallel.
class LoadedModel {
 public:
  LoadedModel(std::unique_ptr<models::TrafficModel> model,
              const data::TrafficDataset& dataset, std::string model_name,
              std::string dataset_name);

  /// x: [B, T_in, N, 2] -> raw-scale (denormalized) predictions
  /// [B, T_out, N]. Runs under NoGrad; bit-identical for every batch
  /// composition and thread count (each output element's value depends only
  /// on its own window).
  Tensor Predict(const Tensor& x) const;

  const std::string& model_name() const { return model_name_; }
  const std::string& dataset_name() const { return dataset_name_; }
  int64_t num_nodes() const { return num_nodes_; }
  int input_len() const { return input_len_; }
  int output_len() const { return output_len_; }
  int64_t parameter_count() const { return parameter_count_; }

 private:
  // Forward mutates transient module state, so the instance is logically
  // immutable (same input -> same output) but needs the mutex.
  mutable std::mutex mu_;
  mutable std::unique_ptr<models::TrafficModel> model_;
  data::ZScoreScaler scaler_;
  std::string model_name_;
  std::string dataset_name_;
  int64_t num_nodes_ = 0;
  int input_len_ = 0;
  int output_len_ = 0;
  int64_t parameter_count_ = 0;
};

using LoadedModelPtr = std::shared_ptr<const LoadedModel>;

/// Registry of warm model instances keyed by (model, dataset). Load()
/// builds the model, applies the checkpoint (rejecting corrupt or missing
/// files with the serializer's CRC/byte-offset diagnostics), fits
/// non-trainable baselines, switches to eval mode and (optionally) runs a
/// warmup forward. Lookups after loading are lock-cheap and return shared
/// pointers, so entries stay valid even if the registry dies first.
class ModelRegistry {
 public:
  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Loads (or replaces) the entry for (spec.model_name, spec.dataset_name).
  Status Load(const ModelSpec& spec);

  /// The entry, or null when the pair was never loaded.
  LoadedModelPtr Find(const std::string& model_name,
                      const std::string& dataset_name) const;

  /// Loaded (model, dataset) keys in load order.
  std::vector<std::pair<std::string, std::string>> Keys() const;
  size_t size() const;

 private:
  using Key = std::pair<std::string, std::string>;

  mutable std::mutex mu_;
  std::map<Key, LoadedModelPtr> entries_;
  std::vector<Key> load_order_;
};

}  // namespace trafficbench::serve

#endif  // TRAFFICBENCH_SERVE_MODEL_REGISTRY_H_
