#ifndef TRAFFICBENCH_SERVE_LATENCY_RECORDER_H_
#define TRAFFICBENCH_SERVE_LATENCY_RECORDER_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/table.h"

namespace trafficbench::serve {

/// Why a request was hard-rejected instead of served. Recorded per lane so
/// an overload postmortem can tell "the shared queue was full" apart from
/// "this lane's requests aged out" and "the server was shutting down".
enum class ShedReason : int {
  kQueueFull = 0,  // bounded queue at capacity at submit time
  kAgedOut,        // waited past BatchOptions::max_lane_age_ms in its lane
  kClosed,         // submit after Stop() closed the queue
};

const char* ShedReasonName(ShedReason reason);

/// Per-(model/dataset)-lane shed and degrade counters.
struct LaneCounters {
  int64_t shed_queue_full = 0;
  int64_t shed_aged_out = 0;
  int64_t shed_closed = 0;
  int64_t degraded_cache = 0;     // tier-1 responses
  int64_t degraded_baseline = 0;  // tier-2 responses
};

/// Latency-SLO view of one serving run: per-request and per-batch latency
/// percentiles, throughput, micro-batch fill, queue pressure, and the
/// overload accounting (per-tier response counts, shed reasons, per-lane
/// counters). All durations in seconds.
struct LatencySummary {
  int64_t requests = 0;  // completed at any ladder tier (shed not included)
  int64_t batches = 0;
  /// Hard-dropped requests (ResourceExhausted), by reason; shed is the sum.
  int64_t shed = 0;
  int64_t shed_queue_full = 0;
  int64_t shed_aged_out = 0;
  int64_t shed_closed = 0;
  /// Completed responses per degradation-ladder tier; their sum is
  /// `requests`. tier0 = full model, tier1 = cache hit, tier2 = baseline.
  int64_t tier0 = 0;
  int64_t tier1 = 0;
  int64_t tier2 = 0;

  // Per-request end-to-end latency (submit -> response ready), all tiers.
  double request_p50 = 0.0;
  double request_p95 = 0.0;
  double request_p99 = 0.0;
  double request_max = 0.0;
  // Per-request queueing share (submit -> batch formed), tier 0 only.
  double queue_p50 = 0.0;
  double queue_p99 = 0.0;
  // Per-micro-batch model compute latency.
  double batch_p50 = 0.0;
  double batch_p99 = 0.0;
  double batch_max = 0.0;
  // End-to-end latency of the degraded tiers alone.
  double tier1_p99 = 0.0;
  double tier2_p99 = 0.0;

  double mean_batch_size = 0.0;
  /// Completed windows per second of recording wall time (0 until Seal()
  /// or Summary() is called with a running clock).
  double throughput = 0.0;
  double mean_queue_depth = 0.0;
  int64_t max_queue_depth = 0;

  /// Shed/degrade counters keyed by "model/dataset" lane.
  std::map<std::string, LaneCounters> lanes;
};

/// Thread-safe sink for the serving pipeline's timing events. Workers and
/// the submit path record concurrently; Summary() sorts the samples and
/// reduces them to the SLO percentiles (nearest-rank, so p50 of one sample
/// is that sample). Reportable as an aligned table or CSV next to the
/// OpProfiler output; the table carries one row per active lane so shed
/// and degrade counts are attributable, not just a global total.
class LatencyRecorder {
 public:
  LatencyRecorder();

  /// One completed tier-0 request: queueing share and end-to-end latency.
  void RecordRequest(double queue_seconds, double total_seconds);
  /// One completed degraded request (tier 1 or 2) on `lane`.
  void RecordDegraded(int tier, const std::string& lane,
                      double total_seconds);
  /// One executed micro-batch of `size` requests.
  void RecordBatch(int64_t size, double compute_seconds);
  /// One request hard-dropped with ResourceExhausted, and why.
  void RecordShed(ShedReason reason, const std::string& lane);
  /// Queue depth observed after an enqueue (pressure gauge).
  void RecordQueueDepth(int64_t depth);

  /// Restarts the throughput clock and drops all samples and counters.
  void Reset();

  LatencySummary Summary() const;

  /// "Latency (serving)" table: one metric per row, values in ms except
  /// counts and windows/s; per-lane shed/degrade rows at the bottom.
  Table ToTable() const;
  std::string ToCsv() const;

 private:
  mutable std::mutex mu_;
  std::vector<double> request_seconds_;  // tier 0
  std::vector<double> queue_seconds_;
  std::vector<double> batch_seconds_;
  std::vector<double> tier1_seconds_;
  std::vector<double> tier2_seconds_;
  int64_t batched_requests_ = 0;
  int64_t batches_ = 0;
  int64_t shed_queue_full_ = 0;
  int64_t shed_aged_out_ = 0;
  int64_t shed_closed_ = 0;
  int64_t depth_samples_ = 0;
  double depth_sum_ = 0.0;
  int64_t depth_max_ = 0;
  std::map<std::string, LaneCounters> lanes_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace trafficbench::serve

#endif  // TRAFFICBENCH_SERVE_LATENCY_RECORDER_H_
