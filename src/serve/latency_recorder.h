#ifndef TRAFFICBENCH_SERVE_LATENCY_RECORDER_H_
#define TRAFFICBENCH_SERVE_LATENCY_RECORDER_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/table.h"

namespace trafficbench::serve {

/// Latency-SLO view of one serving run: per-request and per-batch latency
/// percentiles, throughput, micro-batch fill, queue pressure and shed
/// counts. All durations in seconds.
struct LatencySummary {
  int64_t requests = 0;  // completed (shed requests are not included)
  int64_t batches = 0;
  int64_t shed = 0;  // requests rejected with ResourceExhausted

  // Per-request end-to-end latency (submit -> response ready).
  double request_p50 = 0.0;
  double request_p95 = 0.0;
  double request_p99 = 0.0;
  double request_max = 0.0;
  // Per-request queueing share of the above (submit -> batch formed).
  double queue_p50 = 0.0;
  double queue_p99 = 0.0;
  // Per-micro-batch model compute latency.
  double batch_p50 = 0.0;
  double batch_p99 = 0.0;
  double batch_max = 0.0;

  double mean_batch_size = 0.0;
  /// Completed windows per second of recording wall time (0 until Seal()
  /// or Summary() is called with a running clock).
  double throughput = 0.0;
  double mean_queue_depth = 0.0;
  int64_t max_queue_depth = 0;
};

/// Thread-safe sink for the serving pipeline's timing events. Workers and
/// the submit path record concurrently; Summary() sorts the samples and
/// reduces them to the SLO percentiles (nearest-rank, so p50 of one sample
/// is that sample). Reportable as an aligned table or CSV next to the
/// OpProfiler output.
class LatencyRecorder {
 public:
  LatencyRecorder();

  /// One completed request: queueing share and end-to-end latency.
  void RecordRequest(double queue_seconds, double total_seconds);
  /// One executed micro-batch of `size` requests.
  void RecordBatch(int64_t size, double compute_seconds);
  /// One request shed at submit time (queue full).
  void RecordShed();
  /// Queue depth observed after an enqueue (pressure gauge).
  void RecordQueueDepth(int64_t depth);

  /// Restarts the throughput clock and drops all samples.
  void Reset();

  LatencySummary Summary() const;

  /// "Latency (serving)" table: one metric per row, values in ms except
  /// counts and windows/s.
  Table ToTable() const;
  std::string ToCsv() const;

 private:
  mutable std::mutex mu_;
  std::vector<double> request_seconds_;
  std::vector<double> queue_seconds_;
  std::vector<double> batch_seconds_;
  int64_t batched_requests_ = 0;
  int64_t batches_ = 0;
  int64_t shed_ = 0;
  int64_t depth_samples_ = 0;
  double depth_sum_ = 0.0;
  int64_t depth_max_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace trafficbench::serve

#endif  // TRAFFICBENCH_SERVE_LATENCY_RECORDER_H_
