#ifndef TRAFFICBENCH_SERVE_ADMISSION_H_
#define TRAFFICBENCH_SERVE_ADMISSION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace trafficbench::serve {

/// Degradation-ladder tier that answers one request. Overload never
/// hard-drops: instead the admission controller pushes requests down the
/// ladder, trading answer quality for bounded latency (ROADMAP item 3).
enum class Tier : int {
  kFull = 0,      // full model through the queue + micro-batcher
  kCached = 1,    // window-keyed response cache hit (exact-bytes key)
  kBaseline = 2,  // training-free baseline (HistoricalAverage/LastValue)
};

const char* TierName(Tier tier);

struct AdmissionOptions {
  /// Off by default: the server keeps the seed shed-on-full behaviour
  /// unless the caller opts into the degradation ladder.
  bool enabled = false;
  /// End-to-end latency SLO the controller defends (per request).
  double slo_ms = 50.0;
  /// Pressure thresholds for the ladder. Pressure 1.0 means "queue full or
  /// lane latency at twice the SLO"; a request degrades to the cache tier
  /// at `degrade_at` and straight to the baseline tier at `baseline_at`.
  double degrade_at = 0.5;
  double baseline_at = 0.9;
  /// Completed tier-0 latencies kept per lane for the recent-p99 signal.
  int64_t latency_window = 64;
};

/// Pressure signals sampled at submit time for one (model, dataset) lane.
struct LaneSignals {
  int64_t queue_depth = 0;     // waiting requests across all lanes
  int64_t queue_capacity = 1;  // the queue's bound
  int64_t lane_depth = 0;      // waiting requests in this lane
  double head_age_ms = 0.0;    // age of this lane's oldest waiting request
};

/// Assigns every incoming request a ladder tier instead of shedding.
/// Pressure is the max of three normalized signals: global queue fill
/// (depth / capacity), lane head age relative to twice the SLO, and the
/// lane's recent tier-0 p99 relative to twice the SLO. The decision is a
/// pure function of the observed signals, so tests can pin tier choices by
/// constructing signals directly. Thread-safe: submit threads Admit() while
/// workers ObserveCompletion().
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options);

  /// Ladder tier for one incoming request under the given lane pressure.
  Tier Admit(const std::string& lane, const LaneSignals& signals);

  /// Feedback from a completed tier-0 request (degraded responses are
  /// deliberately excluded: they are fast by construction and would mask
  /// the full-model path's latency from the p99 signal).
  void ObserveCompletion(const std::string& lane, double total_seconds);

  /// The normalized pressure in [0, inf) used by Admit (for tests/logs).
  double Pressure(const std::string& lane, const LaneSignals& signals) const;

  /// Recent tier-0 p99 for a lane in seconds (0 before any completion).
  double RecentP99(const std::string& lane) const;

 private:
  struct LaneState {
    std::vector<double> recent;  // ring buffer of tier-0 total_seconds
    size_t next = 0;
  };

  double RecentP99Locked(const LaneState& state) const;

  const AdmissionOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, LaneState> lanes_;
};

}  // namespace trafficbench::serve

#endif  // TRAFFICBENCH_SERVE_ADMISSION_H_
