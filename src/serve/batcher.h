#ifndef TRAFFICBENCH_SERVE_BATCHER_H_
#define TRAFFICBENCH_SERVE_BATCHER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/serve/admission.h"
#include "src/serve/latency_recorder.h"
#include "src/serve/model_registry.h"
#include "src/tensor/tensor.h"
#include "src/util/status.h"

namespace trafficbench::serve {

/// What a serving client gets back for one window.
struct PredictResponse {
  /// Ok, or ResourceExhausted (shed at submit), or NotFound (unknown
  /// model/dataset pair).
  Status status;
  /// Raw-scale predictions [T_out, N]; undefined unless status is ok.
  Tensor prediction;
  /// Degradation-ladder tier that produced the prediction: 0 = full model,
  /// 1 = response-cache hit, 2 = training-free baseline. Every ok response
  /// carries its tier so clients can tell a degraded answer from a full one.
  int tier = 0;
  /// Seconds spent queued (submit -> micro-batch formed).
  double queue_seconds = 0.0;
  /// Seconds of model compute for the micro-batch this request rode in.
  double compute_seconds = 0.0;
  /// End-to-end seconds (submit -> response fulfilled).
  double total_seconds = 0.0;
  /// Size of that micro-batch (1 when the request ran alone; 0 for
  /// degraded responses, which never ride a micro-batch).
  int64_t batch_size = 0;
};

/// One queued window plus its completion promise (internal to the serving
/// pipeline; clients see only the future).
struct PendingRequest {
  LoadedModelPtr model;
  Tensor window;  // [T_in, N, 2]
  std::promise<PredictResponse> promise;
  std::chrono::steady_clock::time_point enqueue_time;
};

/// A micro-batch handed to one server worker: requests for the same loaded
/// model instance, popped FIFO. `expired` carries requests whose lane wait
/// exceeded BatchOptions::max_lane_age_ms; the worker must resolve them
/// (degrade or shed) without running the model. An expired-only sweep has
/// `model == nullptr` and empty `requests`.
struct MicroBatch {
  LoadedModelPtr model;
  std::vector<PendingRequest> requests;
  std::vector<PendingRequest> expired;
};

/// Bounded multi-producer request queue with per-(model, dataset) FIFO
/// lanes. Push sheds with ResourceExhausted once `capacity` requests are
/// waiting (backpressure: clients must slow down or scale workers). Close()
/// wakes all consumers; a closed queue rejects further pushes and keeps
/// serving what is already queued (drain semantics).
class RequestQueue {
 public:
  explicit RequestQueue(int64_t capacity);

  /// Consumes `request` only on success; on shed/closed the caller still
  /// owns it (and its promise, which it must fulfil with the error). When
  /// `why` is non-null it is set to the shed reason on failure (kQueueFull
  /// or kClosed) so the caller can account for — or degrade — the request
  /// instead of collapsing both causes into one count.
  Status Push(PendingRequest&& request, ShedReason* why = nullptr);
  void Close();
  bool closed() const;

  /// Waiting requests across all lanes.
  int64_t size() const;
  int64_t capacity() const { return capacity_; }

  /// Pressure snapshot for one (model, dataset) lane: global depth and
  /// capacity, this lane's depth, and the age of its oldest waiting
  /// request. Feeds AdmissionController::Admit at submit time.
  LaneSignals Signals(const std::string& model_name,
                      const std::string& dataset_name) const;

 private:
  friend class Batcher;

  using Key = std::pair<std::string, std::string>;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<Key, std::deque<PendingRequest>> lanes_;
  int64_t size_ = 0;
  const int64_t capacity_;
  bool closed_ = false;
};

/// Dynamic micro-batching policy.
struct BatchOptions {
  /// Hard cap on the requests coalesced into one model forward.
  int64_t max_batch_size = 8;
  /// How long the oldest queued request may wait for the batch to fill
  /// before it is dispatched partially full.
  double max_queue_delay_ms = 2.0;
  /// Oldest a request may grow in its lane before the batcher pulls it out
  /// as expired (returned via MicroBatch::expired for the worker to degrade
  /// or shed). 0 disables age-out (the seed behaviour: requests wait
  /// however long the queue takes).
  double max_lane_age_ms = 0.0;
};

/// Coalesces queued requests into micro-batches. The lane whose head
/// request has waited longest is served first (oldest-first across lanes,
/// FIFO within a lane); a batch dispatches as soon as it is full or its
/// head request has aged past max_queue_delay_ms. Multiple workers may call
/// NextBatch concurrently; each request is handed out exactly once.
class Batcher {
 public:
  Batcher(RequestQueue* queue, const BatchOptions& options);

  /// Blocks for the next micro-batch; nullopt once the queue is closed and
  /// fully drained (worker shutdown signal). When max_lane_age_ms is set,
  /// over-age requests are swept out first and returned in `expired`
  /// (possibly as an expired-only batch with no model).
  std::optional<MicroBatch> NextBatch();

 private:
  RequestQueue* const queue_;
  const BatchOptions options_;
};

}  // namespace trafficbench::serve

#endif  // TRAFFICBENCH_SERVE_BATCHER_H_
