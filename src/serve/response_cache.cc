#include "src/serve/response_cache.h"

#include <cstring>

#include "src/util/check.h"
#include "src/util/crc32.h"

namespace trafficbench::serve {

ResponseCache::ResponseCache(const ResponseCacheOptions& options)
    : options_(options) {
  TB_CHECK_GE(options.capacity, 0);
}

uint64_t ResponseCache::HashKey(const std::string& model_name,
                                const std::string& dataset_name,
                                const std::vector<float>& key) const {
  const size_t bytes = key.size() * sizeof(float);
  if (options_.hash_fn != nullptr) {
    return options_.hash_fn(key.data(), bytes);
  }
  // Two independent CRC passes (window bytes, then names chained on top)
  // packed into 64 bits. Collisions are survivable either way — the stored
  // key bytes are compared on every candidate hit — the hash only has to
  // spread the index.
  uint32_t lo = Crc32(key.data(), bytes);
  uint32_t hi = Crc32(model_name.data(), model_name.size(), lo);
  hi = Crc32(dataset_name.data(), dataset_name.size(), hi);
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

void ResponseCache::EraseLocked(List::iterator it) {
  auto range = index_.equal_range(it->hash);
  for (auto idx = range.first; idx != range.second; ++idx) {
    if (idx->second == it) {
      index_.erase(idx);
      break;
    }
  }
  lru_.erase(it);
}

bool ResponseCache::Lookup(const LoadedModelPtr& model, const Tensor& window,
                           Tensor* prediction) {
  if (!enabled()) return false;
  TB_CHECK(model != nullptr);
  TB_CHECK(prediction != nullptr);
  const std::vector<float> key = window.ToVector();
  const uint64_t hash = HashKey(model->model_name(), model->dataset_name(),
                                key);
  std::lock_guard<std::mutex> lock(mu_);
  auto range = index_.equal_range(hash);
  for (auto idx = range.first; idx != range.second; ++idx) {
    List::iterator it = idx->second;
    if (it->model_name != model->model_name() ||
        it->dataset_name != model->dataset_name() ||
        it->key.size() != key.size() ||
        std::memcmp(it->key.data(), key.data(),
                    key.size() * sizeof(float)) != 0) {
      ++stats_.collisions;  // same hash, different window — never served
      continue;
    }
    if (it->producer.lock() != model) {
      // The registry swapped this (model, dataset) entry since the insert;
      // the cached prediction belongs to the old weights.
      ++stats_.invalidated;
      ++stats_.misses;
      EraseLocked(it);
      return false;
    }
    const uint32_t crc = Crc32(it->prediction.data(),
                               it->prediction.size() * sizeof(float));
    if (crc != it->checksum) {
      // Poisoned entry: detected, dropped, reported as a miss so the
      // ladder falls through to tier 2 instead of serving garbage.
      ++stats_.poisoned;
      ++stats_.misses;
      EraseLocked(it);
      return false;
    }
    lru_.splice(lru_.begin(), lru_, it);  // refresh to MRU
    ++stats_.hits;
    *prediction = Tensor::FromVector(Shape(it->pred_dims), it->prediction);
    return true;
  }
  ++stats_.misses;
  return false;
}

void ResponseCache::Insert(const LoadedModelPtr& model, const Tensor& window,
                           const Tensor& prediction) {
  if (!enabled()) return;
  TB_CHECK(model != nullptr);
  Entry entry;
  entry.model_name = model->model_name();
  entry.dataset_name = model->dataset_name();
  entry.producer = model;
  entry.key = window.ToVector();
  entry.pred_dims = prediction.shape().dims();
  entry.prediction = prediction.ToVector();
  entry.checksum = Crc32(entry.prediction.data(),
                         entry.prediction.size() * sizeof(float));
  entry.hash = HashKey(entry.model_name, entry.dataset_name, entry.key);

  std::lock_guard<std::mutex> lock(mu_);
  // Replace an existing entry for the same exact key (fresher producer).
  auto range = index_.equal_range(entry.hash);
  for (auto idx = range.first; idx != range.second; ++idx) {
    List::iterator it = idx->second;
    if (it->model_name == entry.model_name &&
        it->dataset_name == entry.dataset_name &&
        it->key.size() == entry.key.size() &&
        std::memcmp(it->key.data(), entry.key.data(),
                    entry.key.size() * sizeof(float)) == 0) {
      EraseLocked(it);
      break;
    }
  }
  while (static_cast<int64_t>(lru_.size()) >= options_.capacity) {
    EraseLocked(std::prev(lru_.end()));
    ++stats_.evictions;
  }
  lru_.push_front(std::move(entry));
  index_.emplace(lru_.front().hash, lru_.begin());
  ++stats_.insertions;
}

bool ResponseCache::CorruptMostRecent() {
  std::lock_guard<std::mutex> lock(mu_);
  if (lru_.empty() || lru_.front().prediction.empty()) return false;
  auto* bytes =
      reinterpret_cast<unsigned char*>(lru_.front().prediction.data());
  bytes[0] ^= 0x40;  // same single-byte flip the checkpoint tests use
  return true;
}

void ResponseCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

int64_t ResponseCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(lru_.size());
}

ResponseCacheStats ResponseCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace trafficbench::serve
