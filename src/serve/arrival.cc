#include "src/serve/arrival.h"

#include <cmath>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace trafficbench::serve {

bool ParseTraceKind(const std::string& name, TraceKind* out) {
  if (name == "uniform") {
    *out = TraceKind::kUniform;
  } else if (name == "burst") {
    *out = TraceKind::kBurst;
  } else if (name == "diurnal") {
    *out = TraceKind::kDiurnal;
  } else if (name == "flash") {
    *out = TraceKind::kFlash;
  } else {
    return false;
  }
  return true;
}

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kUniform:
      return "uniform";
    case TraceKind::kBurst:
      return "burst";
    case TraceKind::kDiurnal:
      return "diurnal";
    case TraceKind::kFlash:
      return "flash";
  }
  return "?";
}

double TraceRateMultiplier(TraceKind kind, double u) {
  switch (kind) {
    case TraceKind::kUniform:
      return 1.0;
    case TraceKind::kBurst: {
      // Six calm/burst cycles per run, one third of each cycle bursting.
      const double phase = u * 6.0 - std::floor(u * 6.0);
      return phase < 1.0 / 3.0 ? 2.5 : 0.4;
    }
    case TraceKind::kDiurnal: {
      // AM/PM rush peaks; 2.2x mirrors the simulator's rush_severity=0.55
      // (free-flow service rate scaled by 1/(1 - severity)).
      auto peak = [&](double center) {
        const double d = (u - center) / 0.08;
        return std::exp(-d * d);
      };
      return 0.45 + 1.75 * (peak(0.3) + peak(0.75));
    }
    case TraceKind::kFlash:
      return (u >= 0.45 && u < 0.55) ? 8.0 : 0.6;
  }
  return 1.0;
}

std::vector<double> ArrivalTimes(TraceKind kind, double base_rate, int64_t n,
                                 uint64_t seed) {
  TB_CHECK_GT(base_rate, 0.0);
  TB_CHECK_GE(n, 0);
  Rng rng(seed ^ 0x5e37a1ULL);
  std::vector<double> times;
  times.reserve(static_cast<size_t>(n));
  double t = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double u = n > 0 ? static_cast<double>(i) / static_cast<double>(n)
                           : 0.0;
    const double rate = base_rate * TraceRateMultiplier(kind, u);
    // The first request fires at t=0 (as the old fixed --rate loop did);
    // the multiplier at progress u shapes the gap *after* request i.
    times.push_back(t);
    double jitter = 1.0;
    if (kind != TraceKind::kUniform) jitter = rng.Uniform(0.8, 1.2);
    t += jitter / rate;
  }
  return times;
}

}  // namespace trafficbench::serve
