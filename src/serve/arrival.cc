#include "src/serve/arrival.h"

#include "src/util/timeline.h"

namespace trafficbench::serve {

bool ParseTraceKind(const std::string& name, TraceKind* out) {
  if (name == "uniform") {
    *out = TraceKind::kUniform;
  } else if (name == "burst") {
    *out = TraceKind::kBurst;
  } else if (name == "diurnal") {
    *out = TraceKind::kDiurnal;
  } else if (name == "flash") {
    *out = TraceKind::kFlash;
  } else {
    return false;
  }
  return true;
}

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kUniform:
      return "uniform";
    case TraceKind::kBurst:
      return "burst";
    case TraceKind::kDiurnal:
      return "diurnal";
    case TraceKind::kFlash:
      return "flash";
  }
  return "?";
}

double TraceRateMultiplier(TraceKind kind, double u) {
  switch (kind) {
    case TraceKind::kUniform:
      return 1.0;
    case TraceKind::kBurst:
      // Six calm/burst cycles per run, one third of each cycle bursting.
      return util::SquareWave(u, 6.0, 1.0 / 3.0, 2.5, 0.4);
    case TraceKind::kDiurnal:
      // AM/PM rush peaks; 2.2x mirrors the simulator's rush_severity=0.55
      // (free-flow service rate scaled by 1/(1 - severity)). Same curve
      // family as the scenario engine's diurnal demand profile.
      return 0.45 + 1.75 * (util::GaussianPeak(u, 0.3, 0.08) +
                            util::GaussianPeak(u, 0.75, 0.08));
    case TraceKind::kFlash:
      return util::Window(u, 0.45, 0.55, 8.0, 0.6);
  }
  return 1.0;
}

std::vector<double> ArrivalTimes(TraceKind kind, double base_rate, int64_t n,
                                 uint64_t seed) {
  return util::ProfiledArrivalTimes(
      [kind](double u) { return TraceRateMultiplier(kind, u); }, base_rate, n,
      seed ^ 0x5e37a1ULL, kind == TraceKind::kUniform ? 0.0 : 0.2);
}

}  // namespace trafficbench::serve
