#include "src/serve/batcher.h"

#include <algorithm>

#include "src/util/check.h"

namespace trafficbench::serve {

RequestQueue::RequestQueue(int64_t capacity) : capacity_(capacity) {
  TB_CHECK_GT(capacity, 0);
}

Status RequestQueue::Push(PendingRequest&& request, ShedReason* why) {
  TB_CHECK(request.model != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      if (why != nullptr) *why = ShedReason::kClosed;
      return Status::ResourceExhausted("request queue is closed");
    }
    if (size_ >= capacity_) {
      if (why != nullptr) *why = ShedReason::kQueueFull;
      return Status::ResourceExhausted(
          "request queue full (" + std::to_string(capacity_) +
          " waiting); shedding");
    }
    lanes_[Key(request.model->model_name(), request.model->dataset_name())]
        .push_back(std::move(request));
    ++size_;
  }
  // notify_all, not notify_one: the woken worker may be mid-wait on another
  // lane's fill deadline and go straight back to sleep; a second worker
  // parked on the outer wait must still see this request.
  cv_.notify_all();
  return Status::Ok();
}

void RequestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

int64_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

LaneSignals RequestQueue::Signals(const std::string& model_name,
                                  const std::string& dataset_name) const {
  LaneSignals signals;
  std::lock_guard<std::mutex> lock(mu_);
  signals.queue_depth = size_;
  signals.queue_capacity = capacity_;
  auto it = lanes_.find(Key(model_name, dataset_name));
  if (it != lanes_.end() && !it->second.empty()) {
    signals.lane_depth = static_cast<int64_t>(it->second.size());
    signals.head_age_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() -
            it->second.front().enqueue_time)
            .count();
  }
  return signals;
}

Batcher::Batcher(RequestQueue* queue, const BatchOptions& options)
    : queue_(queue), options_(options) {
  TB_CHECK(queue != nullptr);
  TB_CHECK_GT(options.max_batch_size, 0);
  TB_CHECK_GE(options.max_lane_age_ms, 0.0);
}

std::optional<MicroBatch> Batcher::NextBatch() {
  const auto max_delay = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(std::chrono::duration<double,
                                                                 std::milli>(
      std::max(0.0, options_.max_queue_delay_ms)));

  std::unique_lock<std::mutex> lock(queue_->mu_);
  for (;;) {
    queue_->cv_.wait(lock,
                     [&] { return queue_->size_ > 0 || queue_->closed_; });
    if (queue_->size_ == 0) return std::nullopt;  // closed and drained

    // Age-out sweep: requests that waited past max_lane_age_ms will not get
    // fresher by queueing longer — pull them out so the worker can resolve
    // them (degrade via the ladder, or shed with kAgedOut) without model
    // compute, and so they stop blocking their lane's head.
    if (options_.max_lane_age_ms > 0.0) {
      MicroBatch swept;
      const auto now = std::chrono::steady_clock::now();
      const auto max_age = std::chrono::duration_cast<
          std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(options_.max_lane_age_ms));
      for (auto it = queue_->lanes_.begin(); it != queue_->lanes_.end();) {
        auto& lane = it->second;
        while (!lane.empty() &&
               now - lane.front().enqueue_time > max_age) {
          swept.expired.push_back(std::move(lane.front()));
          lane.pop_front();
          --queue_->size_;
        }
        it = lane.empty() ? queue_->lanes_.erase(it) : std::next(it);
      }
      if (!swept.expired.empty()) {
        // Expired-only batch (model == nullptr): hand it back right away so
        // the stale promises are fulfilled promptly; a sibling worker picks
        // up whatever is still queued.
        if (queue_->size_ > 0) queue_->cv_.notify_one();
        return swept;
      }
      if (queue_->size_ == 0) {
        if (queue_->closed_) return std::nullopt;
        continue;
      }
    }

    // Oldest-first across lanes: serve the lane whose head has waited
    // longest, so no model starves behind a busier one.
    auto oldest = queue_->lanes_.end();
    for (auto it = queue_->lanes_.begin(); it != queue_->lanes_.end(); ++it) {
      if (it->second.empty()) continue;
      if (oldest == queue_->lanes_.end() ||
          it->second.front().enqueue_time <
              oldest->second.front().enqueue_time) {
        oldest = it;
      }
    }
    TB_CHECK(oldest != queue_->lanes_.end());

    // Give the batch a chance to fill: wait until the lane reaches
    // max_batch_size, the head request ages out, or the queue closes
    // (drain immediately on close — latency no longer matters).
    const auto deadline = oldest->second.front().enqueue_time + max_delay;
    const RequestQueue::Key key = oldest->first;
    queue_->cv_.wait_until(lock, deadline, [&] {
      auto it = queue_->lanes_.find(key);
      const int64_t lane_size =
          it != queue_->lanes_.end()
              ? static_cast<int64_t>(it->second.size())
              : 0;
      return lane_size >= options_.max_batch_size || lane_size == 0 ||
             queue_->closed_;
    });
    // Another worker may have drained the lane while we waited; restart
    // the scan in that case.
    auto it = queue_->lanes_.find(key);
    if (it == queue_->lanes_.end() || it->second.empty()) continue;

    MicroBatch batch;
    batch.model = it->second.front().model;
    const int64_t take = std::min<int64_t>(
        options_.max_batch_size, static_cast<int64_t>(it->second.size()));
    batch.requests.reserve(static_cast<size_t>(take));
    for (int64_t i = 0; i < take; ++i) {
      batch.requests.push_back(std::move(it->second.front()));
      it->second.pop_front();
    }
    queue_->size_ -= take;
    if (it->second.empty()) queue_->lanes_.erase(it);
    // Leftover work (this lane's tail or other lanes) may have no awake
    // worker: every Push notification could have been absorbed by waits
    // that went back to sleep. Hand the remainder to a sibling.
    if (queue_->size_ > 0) queue_->cv_.notify_one();
    return batch;
  }
}

}  // namespace trafficbench::serve
