#ifndef TRAFFICBENCH_SERVE_ARRIVAL_H_
#define TRAFFICBENCH_SERVE_ARRIVAL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace trafficbench::serve {

/// Deterministic arrival-trace shapes for serve-bench's open-loop request
/// stream. Each trace modulates a base arrival rate with a profile derived
/// from the traffic simulator's own rate structure (weekday AM/PM rush
/// hours, incident bursts), compressed into the run's [0, 1) progress axis:
///   kUniform  constant rate (exactly the old fixed --rate behaviour)
///   kBurst    alternating calm (0.4x) and burst (2.5x) phases — the
///             arrival-side analogue of the simulator's incident clusters
///   kDiurnal  double-peaked day: two rush-hour peaks at ~1/(1 - 0.55) =
///             2.2x the base rate (the simulator's default rush_severity)
///             over a 0.45x off-peak floor
///   kFlash    flash crowd: 0.6x background with one 8x spike over the
///             middle tenth of the run
enum class TraceKind : int {
  kUniform = 0,
  kBurst,
  kDiurnal,
  kFlash,
};

/// "uniform" / "burst" / "diurnal" / "flash" (CLI --trace values).
bool ParseTraceKind(const std::string& name, TraceKind* out);
const char* TraceKindName(TraceKind kind);

/// Rate multiplier of `kind` at run progress u in [0, 1). Pure function.
double TraceRateMultiplier(TraceKind kind, double u);

/// Arrival times in seconds from stream start for `n` requests whose mean
/// rate is `base_rate` (requests/second), shaped by `kind`. Strictly
/// nondecreasing and a pure function of (kind, base_rate, n, seed): the
/// seeded jitter (±20% per gap, none for kUniform) makes bursts ragged the
/// way real arrivals are while keeping every replay bit-reproducible.
std::vector<double> ArrivalTimes(TraceKind kind, double base_rate, int64_t n,
                                 uint64_t seed);

}  // namespace trafficbench::serve

#endif  // TRAFFICBENCH_SERVE_ARRIVAL_H_
