#include "src/data/io.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <vector>

#include "src/util/fault.h"

namespace trafficbench::data {

namespace {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream stream(line);
  while (std::getline(stream, field, ',')) fields.push_back(field);
  return fields;
}

bool ParseDouble(const std::string& text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0' && !text.empty();
}

bool ParseInt(const std::string& text, int64_t* out) {
  char* end = nullptr;
  *out = std::strtoll(text.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && !text.empty();
}

}  // namespace

Status WriteNetworkCsv(const graph::RoadNetwork& network,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path);
  out << std::setprecision(17);  // exact double round trip
  out << "# sensors\nid,x,y\n";
  for (const graph::Sensor& sensor : network.sensors()) {
    out << sensor.id << "," << sensor.x << "," << sensor.y << "\n";
  }
  out << "# segments\nfrom,to,distance_miles\n";
  for (const graph::RoadSegment& segment : network.segments()) {
    out << segment.from << "," << segment.to << ","
        << segment.distance_miles << "\n";
  }
  if (!out) return Status::IoError("failed writing " + path);
  return Status::Ok();
}

Result<graph::RoadNetwork> ReadNetworkCsv(const std::string& path) {
  if (FaultInjector::Global().Should(FaultSite::kIoOpenFail)) {
    return Status::IoError("cannot open " + path + " (injected io_open)");
  }
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::vector<graph::Sensor> sensors;
  std::vector<graph::RoadSegment> segments;
  enum class Section { kNone, kSensors, kSegments } section = Section::kNone;
  std::string line;
  int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (line == "# sensors") {
      section = Section::kSensors;
      std::getline(in, line);  // header row
      ++line_number;
      continue;
    }
    if (line == "# segments") {
      section = Section::kSegments;
      std::getline(in, line);
      ++line_number;
      continue;
    }
    const std::vector<std::string> fields = SplitCsvLine(line);
    const std::string where = path + ":" + std::to_string(line_number);
    if (section == Section::kSensors) {
      int64_t id = 0;
      double x = 0, y = 0;
      if (fields.size() != 3 || !ParseInt(fields[0], &id) ||
          !ParseDouble(fields[1], &x) || !ParseDouble(fields[2], &y)) {
        return Status::InvalidArgument("bad sensor row at " + where);
      }
      sensors.push_back({id, x, y});
    } else if (section == Section::kSegments) {
      int64_t from = 0, to = 0;
      double distance = 0;
      if (fields.size() != 3 || !ParseInt(fields[0], &from) ||
          !ParseInt(fields[1], &to) || !ParseDouble(fields[2], &distance)) {
        return Status::InvalidArgument("bad segment row at " + where);
      }
      segments.push_back({from, to, distance});
    } else {
      return Status::InvalidArgument("content before '# sensors' at " + where);
    }
  }
  if (sensors.empty()) {
    return Status::InvalidArgument(path + " contains no sensors");
  }
  // Validate dense ids so the constructor's checks become friendly errors.
  for (size_t i = 0; i < sensors.size(); ++i) {
    if (sensors[i].id != static_cast<int64_t>(i)) {
      return Status::InvalidArgument(
          "sensor ids must be dense 0..N-1 in " + path);
    }
  }
  const int64_t n = static_cast<int64_t>(sensors.size());
  for (const graph::RoadSegment& segment : segments) {
    if (segment.from < 0 || segment.from >= n || segment.to < 0 ||
        segment.to >= n || segment.distance_miles <= 0.0) {
      return Status::InvalidArgument("segment out of range in " + path);
    }
  }
  return graph::RoadNetwork(std::move(sensors), std::move(segments));
}

Result<TrafficSeries> ReadSeriesCsv(const std::string& path,
                                    FeatureKind kind) {
  if (FaultInjector::Global().Should(FaultSite::kIoOpenFail)) {
    return Status::IoError("cannot open " + path + " (injected io_open)");
  }
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument(path + " is empty");
  }
  const std::vector<std::string> header = SplitCsvLine(line);
  if (header.size() < 4 || header[0] != "step" ||
      header[1] != "time_of_day" || header[2] != "day_of_week") {
    return Status::InvalidArgument(
        path + " header must start with step,time_of_day,day_of_week");
  }
  const int64_t num_nodes = static_cast<int64_t>(header.size()) - 3;

  TrafficSeries series;
  series.kind = kind;
  series.num_nodes = num_nodes;
  int64_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitCsvLine(line);
    if (static_cast<int64_t>(fields.size()) != num_nodes + 3) {
      return Status::InvalidArgument("row arity mismatch at " + path + ":" +
                                     std::to_string(line_number));
    }
    double tod = 0;
    int64_t dow = 0;
    if (!ParseDouble(fields[1], &tod) || !ParseInt(fields[2], &dow) ||
        tod < 0.0 || tod >= 1.0 || dow < 0 || dow > 6) {
      return Status::InvalidArgument("bad calendar fields at " + path + ":" +
                                     std::to_string(line_number));
    }
    series.time_of_day.push_back(static_cast<float>(tod));
    series.day_of_week.push_back(static_cast<int>(dow));
    for (int64_t i = 0; i < num_nodes; ++i) {
      // Real PeMS exports have holes: empty cells and NaN/inf readings.
      // Those degrade to 0 — the PeMS missing-value marker every masked
      // metric already skips — rather than poisoning the whole load.
      // Genuinely malformed text is still a hard error.
      const std::string& field = fields[3 + i];
      double value = 0;
      if (field.empty()) {
        ++series.masked_entries;
        series.values.push_back(0.0f);
        continue;
      }
      if (!ParseDouble(field, &value)) {
        return Status::InvalidArgument("bad reading at " + path + ":" +
                                       std::to_string(line_number));
      }
      if (!std::isfinite(value)) {
        ++series.masked_entries;
        value = 0.0;
      }
      series.values.push_back(static_cast<float>(value));
    }
  }
  series.num_steps = static_cast<int64_t>(series.time_of_day.size());
  if (series.num_steps == 0) {
    return Status::InvalidArgument(path + " has no data rows");
  }
  return series;
}

Result<TrafficDataset> LoadDatasetCsv(const std::string& network_path,
                                      const std::string& series_path,
                                      FeatureKind kind, int input_len,
                                      int output_len) {
  Result<graph::RoadNetwork> network = ReadNetworkCsv(network_path);
  if (!network.ok()) return network.status();
  Result<TrafficSeries> series = ReadSeriesCsv(series_path, kind);
  if (!series.ok()) return series.status();
  if (network.value().num_nodes() != series.value().num_nodes) {
    return Status::InvalidArgument(
        "network has " + std::to_string(network.value().num_nodes()) +
        " sensors but series has " +
        std::to_string(series.value().num_nodes));
  }
  return TrafficDataset(std::move(network).value(),
                        std::move(series).value(), input_len, output_len);
}

}  // namespace trafficbench::data
