#ifndef TRAFFICBENCH_DATA_IO_H_
#define TRAFFICBENCH_DATA_IO_H_

// Dataset import/export. The CSV formats are deliberately simple so real
// PeMS extracts (or any other sensor data) can be converted and loaded in
// place of the synthetic mirrors.

#include <string>

#include "src/data/dataset.h"
#include "src/data/traffic_simulator.h"
#include "src/graph/road_network.h"
#include "src/util/status.h"

namespace trafficbench::data {

/// Writes the road network as CSV with two sections:
///   # sensors
///   id,x,y
///   ...
///   # segments
///   from,to,distance_miles
///   ...
Status WriteNetworkCsv(const graph::RoadNetwork& network,
                       const std::string& path);

/// Parses a network CSV written by WriteNetworkCsv (or hand-authored in
/// the same format, e.g. converted from a PeMS distance file). Sensor ids
/// must be dense 0..N-1.
Result<graph::RoadNetwork> ReadNetworkCsv(const std::string& path);

/// Parses a series CSV in the WriteSeriesCsv format:
///   step,time_of_day,day_of_week,node0,node1,...
/// `kind` declares what the readings measure.
Result<TrafficSeries> ReadSeriesCsv(const std::string& path,
                                    FeatureKind kind);

/// Loads a full dataset from a (network, series) CSV pair.
Result<TrafficDataset> LoadDatasetCsv(const std::string& network_path,
                                      const std::string& series_path,
                                      FeatureKind kind, int input_len = 12,
                                      int output_len = 12);

}  // namespace trafficbench::data

#endif  // TRAFFICBENCH_DATA_IO_H_
