#ifndef TRAFFICBENCH_DATA_TRAFFIC_SIMULATOR_H_
#define TRAFFICBENCH_DATA_TRAFFIC_SIMULATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/road_network.h"
#include "src/util/rng.h"

namespace trafficbench::data {

/// What the sensor channel measures.
enum class FeatureKind {
  kSpeed,  // mph, 5-minute mean
  kFlow,   // vehicles per 5-minute interval
};

/// Number of 5-minute steps per day.
inline constexpr int kStepsPerDay = 288;

/// One abrupt, non-recurring event in a series — a simulator incident
/// (accident, stalled vehicle) or a scenario-engine scripted disruption
/// (closure, surge, gridlock, blackout). Both emitters fill the same
/// struct, so difficult-interval labels come from ground truth instead of
/// post-hoc moving-std thresholding (see eval::IncidentDifficultMask).
struct TrafficIncident {
  /// Epicentre sensor (scripted events record their target node here).
  int64_t node = 0;
  /// First series step at which the event acts.
  int64_t onset_step = 0;
  /// Steps of full severity before recovery begins.
  int64_t duration = 0;
  /// Peak severity in [0, 1] for incidents; scripted events store their
  /// magnitude clamped to [0, 1] for reporting.
  double severity = 0.0;
};

/// Raw sensor series over a road network: the stand-in for a PeMS download.
struct TrafficSeries {
  FeatureKind kind = FeatureKind::kSpeed;
  int64_t num_nodes = 0;
  int64_t num_steps = 0;
  /// Row-major [num_steps, num_nodes]; 0 encodes a missing reading,
  /// following the PeMS convention the traffic literature masks out.
  std::vector<float> values;
  /// Fraction of the day in [0, 1) for each step.
  std::vector<float> time_of_day;
  /// 0 = Monday ... 6 = Sunday for each step.
  std::vector<int> day_of_week;
  /// Readings that arrived as empty or non-finite fields (NaN/inf) in a CSV
  /// load — or were blacked out by a scenario sensor-blackout event — and
  /// were masked to 0 (= missing under the PeMS convention).
  int64_t masked_entries = 0;
  /// Ground-truth event log: every incident the simulator sampled (or every
  /// scripted event the scenario engine compiled), in onset order.
  std::vector<TrafficIncident> incidents;

  float at(int64_t step, int64_t node) const {
    return values[step * num_nodes + node];
  }
};

/// Knobs for the congestion-wave traffic simulator.
struct SimulatorOptions {
  int64_t num_days = 14;
  /// First simulated day of week (0 = Monday).
  int start_day_of_week = 0;
  /// Skip Saturdays/Sundays entirely (PeMSD7(M) is weekday-only).
  bool weekdays_only = false;

  /// Mean number of incidents (accidents, stalled vehicles) per day across
  /// the whole network. Incidents produce the abrupt, non-recurring drops
  /// the paper's difficult-interval experiment targets.
  double incidents_per_day = 4.0;
  /// Peak fraction of free-flow speed lost during rush hour (0..1).
  double rush_severity = 0.55;
  /// Relative weight of weekend traffic vs weekday.
  double weekend_factor = 0.45;
  /// Standard deviation of the AR(1) short-term fluctuation, in mph.
  double noise_level = 1.6;
  /// Probability a reading is dropped (recorded as 0 / missing).
  double missing_rate = 0.003;
  /// Greenshields capacity scale for flow conversion (veh / 5 min / lane-mi).
  double max_flow = 220.0;
};

/// Generates a synthetic PeMS-like series on `network`.
///
/// The generative model combines the three phenomena the paper's analysis
/// depends on:
///   1. recurring temporal structure — weekday AM/PM rush hours with
///      node-specific intensity, weekend attenuation;
///   2. spatial correlation — per-node rush intensities are smoothed over
///      the graph, and incident congestion propagates upstream hop by hop
///      with one 5-minute step of delay per hop;
///   3. abrupt non-recurring events — Poisson incidents with sharp onset
///      and exponential recovery.
TrafficSeries SimulateTraffic(const graph::RoadNetwork& network,
                              FeatureKind kind,
                              const SimulatorOptions& options, Rng* rng);

}  // namespace trafficbench::data

#endif  // TRAFFICBENCH_DATA_TRAFFIC_SIMULATOR_H_
