#include "src/data/dataset.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "src/util/check.h"

namespace trafficbench::data {

std::vector<DatasetProfile> SpeedProfiles() {
  std::vector<DatasetProfile> profiles;
  // METR-LA: Los Angeles, 207 sensors, 122 days, noisy, incident-heavy.
  profiles.push_back({.name = "METR-LA-S",
                      .mirrors = "METR-LA",
                      .kind = FeatureKind::kSpeed,
                      .topology = graph::NetworkTopology::kCorridor,
                      .num_nodes = 32,
                      .num_days = 12,
                      .weekdays_only = false,
                      .incidents_per_day = 6.0,
                      .rush_severity = 0.62,
                      .noise_level = 2.0,
                      .seed = 101});
  // PeMS-BAY: Bay Area, 325 sensors, 181 days, famously smoother.
  profiles.push_back({.name = "PEMS-BAY-S",
                      .mirrors = "PeMS-BAY",
                      .kind = FeatureKind::kSpeed,
                      .topology = graph::NetworkTopology::kMultiCorridor,
                      .num_nodes = 40,
                      .num_days = 14,
                      .weekdays_only = false,
                      .incidents_per_day = 3.0,
                      .rush_severity = 0.45,
                      .noise_level = 1.2,
                      .seed = 102});
  // PeMSD7(M): Los Angeles, 228 sensors, 44 weekdays only.
  profiles.push_back({.name = "PEMSD7M-S",
                      .mirrors = "PeMSD7(M)",
                      .kind = FeatureKind::kSpeed,
                      .topology = graph::NetworkTopology::kCorridor,
                      .num_nodes = 34,
                      .num_days = 10,
                      .weekdays_only = true,
                      .incidents_per_day = 5.0,
                      .rush_severity = 0.58,
                      .noise_level = 1.7,
                      .seed = 103});
  return profiles;
}

std::vector<DatasetProfile> FlowProfiles() {
  std::vector<DatasetProfile> profiles;
  // PeMSD3: North Central, 358 sensors, 91 days.
  profiles.push_back({.name = "PEMSD3-F",
                      .mirrors = "PeMSD3",
                      .kind = FeatureKind::kFlow,
                      .topology = graph::NetworkTopology::kMultiCorridor,
                      .num_nodes = 36,
                      .num_days = 12,
                      .weekdays_only = false,
                      .incidents_per_day = 3.5,
                      .rush_severity = 0.50,
                      .noise_level = 1.5,
                      .seed = 201});
  // PeMSD4: Bay Area, 307 sensors, 59 days.
  profiles.push_back({.name = "PEMSD4-F",
                      .mirrors = "PeMSD4",
                      .kind = FeatureKind::kFlow,
                      .topology = graph::NetworkTopology::kMultiCorridor,
                      .num_nodes = 32,
                      .num_days = 10,
                      .weekdays_only = false,
                      .incidents_per_day = 4.0,
                      .rush_severity = 0.52,
                      .noise_level = 1.6,
                      .seed = 202});
  // PeMSD7: Los Angeles, 883 sensors (largest), 98 days.
  profiles.push_back({.name = "PEMSD7-F",
                      .mirrors = "PeMSD7",
                      .kind = FeatureKind::kFlow,
                      .topology = graph::NetworkTopology::kCorridor,
                      .num_nodes = 44,
                      .num_days = 12,
                      .weekdays_only = false,
                      .incidents_per_day = 6.0,
                      .rush_severity = 0.60,
                      .noise_level = 1.9,
                      .seed = 203});
  // PeMSD8: San Bernardino, 170 sensors (smallest), 62 days.
  profiles.push_back({.name = "PEMSD8-F",
                      .mirrors = "PeMSD8",
                      .kind = FeatureKind::kFlow,
                      .topology = graph::NetworkTopology::kCorridor,
                      .num_nodes = 24,
                      .num_days = 10,
                      .weekdays_only = false,
                      .incidents_per_day = 2.5,
                      .rush_severity = 0.48,
                      .noise_level = 1.3,
                      .seed = 204});
  return profiles;
}

std::vector<DatasetProfile> CityScaleProfiles() {
  std::vector<DatasetProfile> profiles;
  // SYNTH-2K: a regional freeway web at 2048 sensors — the smallest size
  // where the partitioner engages by default (>= 1024-node threshold).
  profiles.push_back({.name = "SYNTH-2K",
                      .mirrors = "synthetic-city-2k",
                      .kind = FeatureKind::kSpeed,
                      .topology = graph::NetworkTopology::kMultiCorridor,
                      .num_nodes = 2048,
                      .num_days = 4,
                      .weekdays_only = false,
                      .incidents_per_day = 8.0,
                      .rush_severity = 0.55,
                      .noise_level = 1.5,
                      .seed = 301});
  // SYNTH-4K: an urban-core grid at 4096 sensors, the stress size for the
  // per-node-cost headline in BENCH_9.
  profiles.push_back({.name = "SYNTH-4K",
                      .mirrors = "synthetic-city-4k",
                      .kind = FeatureKind::kSpeed,
                      .topology = graph::NetworkTopology::kGrid,
                      .num_nodes = 4096,
                      .num_days = 4,
                      .weekdays_only = false,
                      .incidents_per_day = 10.0,
                      .rush_severity = 0.60,
                      .noise_level = 1.8,
                      .seed = 302});
  return profiles;
}

Result<DatasetProfile> ProfileByName(const std::string& name) {
  for (const auto& p : SpeedProfiles()) {
    if (p.name == name) return p;
  }
  for (const auto& p : FlowProfiles()) {
    if (p.name == name) return p;
  }
  for (const auto& p : CityScaleProfiles()) {
    if (p.name == name) return p;
  }
  return Status::NotFound("no dataset profile named " + name);
}

DatasetProfile ScaleProfile(DatasetProfile profile, double scale) {
  TB_CHECK_GT(scale, 0.0);
  profile.num_nodes = std::max<int64_t>(
      8, static_cast<int64_t>(std::lround(profile.num_nodes * scale)));
  profile.num_days = std::max<int64_t>(
      4, static_cast<int64_t>(std::lround(profile.num_days * scale)));
  return profile;
}

ZScoreScaler::ZScoreScaler(float mean, float stddev)
    : mean_(mean), stddev_(stddev) {
  TB_CHECK_GT(stddev, 0.0f);
}

ZScoreScaler ZScoreScaler::Fit(const std::vector<float>& values,
                               int64_t limit) {
  const int64_t n = limit < 0 ? static_cast<int64_t>(values.size())
                              : std::min<int64_t>(limit, values.size());
  double sum = 0.0, sq = 0.0;
  int64_t count = 0;
  for (int64_t i = 0; i < n; ++i) {
    const float v = values[i];
    if (v == 0.0f) continue;  // missing marker
    sum += v;
    sq += static_cast<double>(v) * v;
    ++count;
  }
  TB_CHECK_GT(count, 1) << "cannot fit a scaler on all-missing data";
  const double mean = sum / count;
  const double var = std::max(1e-8, sq / count - mean * mean);
  return ZScoreScaler(static_cast<float>(mean),
                      static_cast<float>(std::sqrt(var)));
}

Tensor ZScoreScaler::Denormalize(const Tensor& t) const {
  return t * stddev_ + mean_;
}

TrafficDataset::TrafficDataset(graph::RoadNetwork network,
                               TrafficSeries series, int input_len,
                               int output_len,
                               const ZScoreScaler* scaler_override)
    : network_(std::move(network)),
      series_(std::move(series)),
      input_len_(input_len),
      output_len_(output_len) {
  TB_CHECK_GT(input_len, 0);
  TB_CHECK_GT(output_len, 0);
  TB_CHECK_EQ(network_.num_nodes(), series_.num_nodes);
  TB_CHECK_GT(num_samples(), 10) << "series too short for windowing";
  if (scaler_override != nullptr) {
    scaler_ = *scaler_override;
    return;
  }
  // Fit the scaler on the training portion only (no test leakage).
  const DatasetSplits splits = Splits();
  const int64_t train_steps =
      splits.train_end + input_len_;  // last step touched by training inputs
  ZScoreScaler fitted = ZScoreScaler::Fit(
      series_.values, train_steps * series_.num_nodes);
  scaler_ = fitted;
}

TrafficDataset TrafficDataset::FromProfile(const DatasetProfile& profile) {
  Rng rng(profile.seed);
  Rng net_rng = rng.Fork();
  graph::RoadNetwork network = graph::RoadNetwork::Generate(
      profile.topology, profile.num_nodes, &net_rng);
  SimulatorOptions options;
  options.num_days = profile.num_days;
  options.weekdays_only = profile.weekdays_only;
  options.incidents_per_day = profile.incidents_per_day;
  options.rush_severity = profile.rush_severity;
  options.noise_level = profile.noise_level;
  Rng sim_rng = rng.Fork();
  TrafficSeries series =
      SimulateTraffic(network, profile.kind, options, &sim_rng);
  return TrafficDataset(std::move(network), std::move(series));
}

int64_t TrafficDataset::num_samples() const {
  return std::max<int64_t>(
      0, series_.num_steps - input_len_ - output_len_ + 1);
}

DatasetSplits TrafficDataset::Splits() const {
  const int64_t n = num_samples();
  DatasetSplits splits;
  splits.train_begin = 0;
  splits.train_end = n * 7 / 10;
  splits.val_begin = splits.train_end;
  splits.val_end = n * 8 / 10;
  splits.test_begin = splits.val_end;
  splits.test_end = n;
  return splits;
}

Batch TrafficDataset::MakeBatch(
    const std::vector<int64_t>& sample_indices) const {
  TB_CHECK(!sample_indices.empty());
  const int64_t batch = static_cast<int64_t>(sample_indices.size());
  const int64_t n = series_.num_nodes;
  std::vector<float> x(batch * input_len_ * n * 2);
  std::vector<float> y(batch * output_len_ * n);
  for (int64_t b = 0; b < batch; ++b) {
    const int64_t start = sample_indices[b];
    TB_CHECK(start >= 0 && start < num_samples())
        << "sample index out of range";
    for (int64_t t = 0; t < input_len_; ++t) {
      const int64_t step = start + t;
      for (int64_t i = 0; i < n; ++i) {
        const int64_t base = ((b * input_len_ + t) * n + i) * 2;
        x[base] = scaler_.Normalize(series_.at(step, i));
        x[base + 1] = series_.time_of_day[step];
      }
    }
    for (int64_t t = 0; t < output_len_; ++t) {
      const int64_t step = start + input_len_ + t;
      for (int64_t i = 0; i < n; ++i) {
        y[(b * output_len_ + t) * n + i] = series_.at(step, i);
      }
    }
  }
  Batch out;
  out.x = Tensor::FromVector(Shape({batch, input_len_, n, 2}), std::move(x));
  out.y = Tensor::FromVector(Shape({batch, output_len_, n}), std::move(y));
  return out;
}

std::vector<int64_t> TrafficDataset::MakeIndices(int64_t begin, int64_t end,
                                                 Rng* shuffle_rng) {
  TB_CHECK_LE(begin, end);
  std::vector<int64_t> indices(end - begin);
  for (int64_t i = begin; i < end; ++i) indices[i - begin] = i;
  if (shuffle_rng != nullptr) shuffle_rng->Shuffle(&indices);
  return indices;
}

Status WriteSeriesCsv(const TrafficSeries& series, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path);
  out << std::setprecision(10);  // exact float round trip
  out << "step,time_of_day,day_of_week";
  for (int64_t i = 0; i < series.num_nodes; ++i) out << ",node" << i;
  out << "\n";
  for (int64_t step = 0; step < series.num_steps; ++step) {
    out << step << "," << series.time_of_day[step] << ","
        << series.day_of_week[step];
    for (int64_t i = 0; i < series.num_nodes; ++i) {
      out << "," << series.at(step, i);
    }
    out << "\n";
  }
  if (!out) return Status::IoError("failed writing " + path);
  return Status::Ok();
}

}  // namespace trafficbench::data
