#ifndef TRAFFICBENCH_DATA_DATASET_H_
#define TRAFFICBENCH_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/data/traffic_simulator.h"
#include "src/graph/road_network.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace trafficbench::data {

/// Configuration of one synthetic dataset, mirroring one of the paper's
/// seven PeMS datasets (Table I) at laptop scale. The mirrored properties
/// are the task (speed/flow), the relative network size, the day coverage
/// (weekday-only for PeMSD7(M)), and region character (incident rate,
/// rush-hour severity).
struct DatasetProfile {
  std::string name;     // e.g. "METR-LA-S"
  std::string mirrors;  // e.g. "METR-LA"
  FeatureKind kind = FeatureKind::kSpeed;
  graph::NetworkTopology topology = graph::NetworkTopology::kCorridor;
  int64_t num_nodes = 32;
  int64_t num_days = 12;
  bool weekdays_only = false;
  double incidents_per_day = 4.0;
  double rush_severity = 0.55;
  double noise_level = 1.6;
  uint64_t seed = 1;
};

/// The three speed-prediction profiles (METR-LA, PeMS-BAY, PeMSD7(M)).
std::vector<DatasetProfile> SpeedProfiles();
/// The four flow-prediction profiles (PeMSD3, PeMSD4, PeMSD7, PeMSD8).
std::vector<DatasetProfile> FlowProfiles();
/// City-scale synthetic profiles (SYNTH-2K, SYNTH-4K) for the partitioned
/// execution path: 2048-node multi-corridor and 4096-node grid networks,
/// few days (these exercise scaling, not accuracy tables). Both sit above
/// graph::kDenseAdjacencyNodeLimit, so models built on them take the
/// sparse-adjacency + partitioned-SpMM route end to end.
std::vector<DatasetProfile> CityScaleProfiles();
/// Looks up any of the nine profiles by name.
Result<DatasetProfile> ProfileByName(const std::string& name);

/// Multiplies node and day counts by `scale` (min 8 nodes / 4 days) so the
/// experiment binaries can trade fidelity for runtime.
DatasetProfile ScaleProfile(DatasetProfile profile, double scale);

/// Z-score normalizer fit on training data, ignoring missing (0) readings.
class ZScoreScaler {
 public:
  ZScoreScaler() = default;
  ZScoreScaler(float mean, float stddev);

  /// Fits over `values`, skipping exact zeros (the missing marker).
  static ZScoreScaler Fit(const std::vector<float>& values, int64_t limit = -1);

  float Normalize(float value) const { return (value - mean_) / stddev_; }
  float Denormalize(float value) const { return value * stddev_ + mean_; }

  /// Elementwise denormalization as a differentiable tensor op.
  Tensor Denormalize(const Tensor& t) const;

  float mean() const { return mean_; }
  float stddev() const { return stddev_; }

 private:
  float mean_ = 0.0f;
  float stddev_ = 1.0f;
};

/// One training/evaluation batch.
struct Batch {
  /// [B, T_in, N, 2] — channel 0: z-scored reading, channel 1: time of day
  /// in [0, 1) (the paper's two input features).
  Tensor x;
  /// [B, T_out, N] — raw-scale targets; 0 marks a missing reading, which
  /// the masked loss and metrics skip.
  Tensor y;
};

/// Index ranges of the chronological 7:1:2 split used by the paper.
struct DatasetSplits {
  int64_t train_begin = 0, train_end = 0;
  int64_t val_begin = 0, val_end = 0;
  int64_t test_begin = 0, test_end = 0;
};

/// A windowed spatiotemporal forecasting dataset: maps T_in historical
/// graph signals to T_out future ones (both 12 five-minute steps, i.e.
/// 60 minutes, as the paper fixes for fairness).
class TrafficDataset {
 public:
  /// `scaler_override` replaces the train-split-fitted scaler — the
  /// scenario-matrix harness passes the *baseline* world's scaler so a
  /// model trained there sees scenario inputs in the encoding it was
  /// trained with (a scenario's own distribution shift must show up as
  /// error, not be silently normalized away).
  TrafficDataset(graph::RoadNetwork network, TrafficSeries series,
                 int input_len = 12, int output_len = 12,
                 const ZScoreScaler* scaler_override = nullptr);

  /// Generates network + series from a profile.
  static TrafficDataset FromProfile(const DatasetProfile& profile);

  const graph::RoadNetwork& network() const { return network_; }
  const TrafficSeries& series() const { return series_; }
  const ZScoreScaler& scaler() const { return scaler_; }
  int input_len() const { return input_len_; }
  int output_len() const { return output_len_; }
  int64_t num_nodes() const { return series_.num_nodes; }

  /// Total number of sliding-window samples.
  int64_t num_samples() const;

  /// Chronological 7:1:2 split boundaries over sample indices.
  DatasetSplits Splits() const;

  /// Materializes a batch for the given sample indices.
  Batch MakeBatch(const std::vector<int64_t>& sample_indices) const;

  /// All indices of a [begin, end) range, optionally shuffled.
  static std::vector<int64_t> MakeIndices(int64_t begin, int64_t end,
                                          Rng* shuffle_rng = nullptr);

 private:
  graph::RoadNetwork network_;
  TrafficSeries series_;
  ZScoreScaler scaler_;
  int input_len_;
  int output_len_;
};

/// Writes the raw series as CSV (step, time_of_day, day_of_week, node...).
Status WriteSeriesCsv(const TrafficSeries& series, const std::string& path);

}  // namespace trafficbench::data

#endif  // TRAFFICBENCH_DATA_DATASET_H_
