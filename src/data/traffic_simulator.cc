#include "src/data/traffic_simulator.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace trafficbench::data {

namespace {

/// Smooth daily congestion profile in [0, 1]: two rush-hour bumps.
/// `am_weight`/`pm_weight` shape the node's directionality (inbound roads
/// peak in the morning, outbound in the evening).
double DailyCongestion(double hour, double am_weight, double pm_weight) {
  const double am = std::exp(-0.5 * std::pow((hour - 8.0) / 1.3, 2.0));
  const double pm = std::exp(-0.5 * std::pow((hour - 17.5) / 1.7, 2.0));
  const double midday = 0.25 * std::exp(-0.5 * std::pow((hour - 13.0) / 2.5, 2.0));
  return std::min(1.0, am_weight * am + pm_weight * pm + midday);
}

struct Incident {
  int64_t node = 0;
  int64_t start_step = 0;   // within the affected day
  int64_t duration = 12;    // steps of full severity before recovery
  double severity = 0.6;    // fraction of speed lost at the epicentre
};

}  // namespace

TrafficSeries SimulateTraffic(const graph::RoadNetwork& network,
                              FeatureKind kind,
                              const SimulatorOptions& options, Rng* rng) {
  TB_CHECK(rng != nullptr);
  TB_CHECK_GT(options.num_days, 0);
  const int64_t n = network.num_nodes();

  // --- Static per-node attributes -----------------------------------------
  std::vector<double> free_flow(n);
  std::vector<double> am_weight(n), pm_weight(n), rush_intensity(n);
  for (int64_t i = 0; i < n; ++i) {
    free_flow[i] = rng->Uniform(58.0, 70.0);
    am_weight[i] = rng->Uniform(0.4, 1.0);
    pm_weight[i] = rng->Uniform(0.4, 1.0);
    rush_intensity[i] = rng->Uniform(0.5, 1.0);
  }
  // Spatial smoothing over the (undirected) graph so neighbouring sensors
  // share congestion character, as real corridors do.
  for (int pass = 0; pass < 2; ++pass) {
    std::vector<double> sm_am(n), sm_pm(n), sm_ri(n);
    for (int64_t i = 0; i < n; ++i) {
      double wa = am_weight[i], wp = pm_weight[i], wr = rush_intensity[i];
      double weight = 1.0;
      for (int64_t j : network.OutNeighbors(i)) {
        wa += am_weight[j];
        wp += pm_weight[j];
        wr += rush_intensity[j];
        weight += 1.0;
      }
      sm_am[i] = wa / weight;
      sm_pm[i] = wp / weight;
      sm_ri[i] = wr / weight;
    }
    am_weight.swap(sm_am);
    pm_weight.swap(sm_pm);
    rush_intensity.swap(sm_ri);
  }

  // --- Upstream hop distances for incident propagation ---------------------
  // Congestion from an incident at node v backs up onto roads feeding v,
  // i.e. nodes with a directed path *into* v. Equivalently, v's forward
  // BFS on the reversed graph; reuse HopDistances by scanning all sources.
  constexpr int kMaxHops = 3;
  constexpr int kUnreachable = -1;
  // upstream_hops[v][u] = hops from u to v (u feeds v), or -1.
  std::vector<std::vector<int>> upstream_hops(n);
  for (int64_t v = 0; v < n; ++v) {
    upstream_hops[v].assign(n, kUnreachable);
  }
  for (int64_t u = 0; u < n; ++u) {
    std::vector<int> hops = network.HopDistances(u, kMaxHops, kUnreachable);
    for (int64_t v = 0; v < n; ++v) {
      if (hops[v] != kUnreachable) upstream_hops[v][u] = hops[v];
    }
  }

  // --- Day list -------------------------------------------------------------
  std::vector<int> days;  // day-of-week per simulated day
  {
    int dow = options.start_day_of_week;
    int64_t added = 0;
    while (added < options.num_days) {
      if (!options.weekdays_only || dow < 5) {
        days.push_back(dow);
        ++added;
      }
      dow = (dow + 1) % 7;
    }
  }

  const int64_t num_steps = static_cast<int64_t>(days.size()) * kStepsPerDay;
  TrafficSeries series;
  series.kind = kind;
  series.num_nodes = n;
  series.num_steps = num_steps;
  series.values.assign(num_steps * n, 0.0f);
  series.time_of_day.resize(num_steps);
  series.day_of_week.resize(num_steps);

  // --- Incident schedule ------------------------------------------------------
  // incident_load[step * n + node] accumulates severity contributions.
  std::vector<double> incident_load(num_steps * n, 0.0);
  for (size_t day = 0; day < days.size(); ++day) {
    const int count = rng->Poisson(options.incidents_per_day);
    for (int e = 0; e < count; ++e) {
      Incident incident;
      incident.node = static_cast<int64_t>(rng->UniformInt(n));
      // Incidents cluster in daytime hours (6:00–22:00).
      incident.start_step = static_cast<int64_t>(day) * kStepsPerDay +
                            static_cast<int64_t>(rng->UniformInt(192)) + 72;
      incident.duration = 6 + static_cast<int64_t>(rng->UniformInt(18));
      incident.severity = rng->Uniform(0.35, 0.85);
      const int64_t recovery = 6 + static_cast<int64_t>(rng->UniformInt(12));
      series.incidents.push_back({incident.node, incident.start_step,
                                  incident.duration, incident.severity});

      for (int64_t u = 0; u < n; ++u) {
        const int hops = upstream_hops[incident.node][u];
        if (hops == kUnreachable) continue;
        const double attenuation = std::pow(0.55, hops);
        // The wave reaches `u` one step per hop after onset.
        const int64_t onset = incident.start_step + hops;
        for (int64_t s = onset; s < num_steps; ++s) {
          const int64_t since = s - onset;
          double level;
          if (since < incident.duration) {
            // sharp onset: full severity after 2 steps
            level = std::min(1.0, (since + 1) / 2.0);
          } else {
            const double past =
                static_cast<double>(since - incident.duration);
            level = std::exp(-past / static_cast<double>(recovery));
            if (level < 0.02) break;
          }
          incident_load[s * n + u] +=
              incident.severity * attenuation * level;
        }
      }
    }
  }

  std::sort(series.incidents.begin(), series.incidents.end(),
            [](const TrafficIncident& a, const TrafficIncident& b) {
              return a.onset_step != b.onset_step ? a.onset_step < b.onset_step
                                                  : a.node < b.node;
            });

  // --- Main loop ---------------------------------------------------------------
  std::vector<double> ar_noise(n, 0.0);
  const double rho = 0.82;  // AR(1) persistence of short-term fluctuation
  for (int64_t step = 0; step < num_steps; ++step) {
    const int64_t day = step / kStepsPerDay;
    const int64_t step_in_day = step % kStepsPerDay;
    const double hour = static_cast<double>(step_in_day) * 24.0 / kStepsPerDay;
    const int dow = days[day];
    const bool weekend = dow >= 5;
    series.time_of_day[step] =
        static_cast<float>(step_in_day) / static_cast<float>(kStepsPerDay);
    series.day_of_week[step] = dow;

    // Slowly-varying day-level modifier (weather etc.), shared by all nodes.
    const double day_factor =
        1.0 + 0.08 * std::sin(2.0 * M_PI * static_cast<double>(day) / 9.0);

    for (int64_t i = 0; i < n; ++i) {
      ar_noise[i] = rho * ar_noise[i] +
                    rng->Normal(0.0, options.noise_level * std::sqrt(1 - rho * rho));

      double congestion = rush_intensity[i] * options.rush_severity *
                          DailyCongestion(hour, am_weight[i], pm_weight[i]) *
                          day_factor;
      if (weekend) congestion *= options.weekend_factor;
      congestion += incident_load[step * n + i];
      congestion = std::min(congestion, 0.93);

      double speed = free_flow[i] * (1.0 - congestion) + ar_noise[i];
      speed = std::clamp(speed, 3.0, free_flow[i] + 6.0);

      double value;
      if (kind == FeatureKind::kSpeed) {
        value = speed;
      } else {
        // Greenshields fundamental diagram: q = 4 q_max (v/vf)(1 - v/vf),
        // peaking at half free-flow speed — so flow and speed are related
        // but not monotonically, as the paper notes.
        const double ratio = std::clamp(speed / free_flow[i], 0.0, 1.0);
        const double q = 4.0 * options.max_flow * ratio * (1.0 - ratio);
        // Demand scaling: flow collapses at night even though speed is high.
        const double demand =
            0.15 + 0.85 * DailyCongestion(hour, 0.9, 0.9) +
            0.25 * (1.0 - std::exp(-congestion * 3.0));
        value = std::max(0.0, q * std::min(1.0, demand) +
                                  rng->Normal(0.0, options.max_flow * 0.02));
        if (ratio > 0.93 && demand < 0.45) {
          // free flow at low demand: flow proportional to demand
          value = options.max_flow * demand * rng->Uniform(0.85, 1.15);
        }
      }

      if (rng->Bernoulli(options.missing_rate)) {
        value = 0.0;  // missing reading, PeMS-style
      }
      series.values[step * n + i] = static_cast<float>(value);
    }
  }
  return series;
}

}  // namespace trafficbench::data
