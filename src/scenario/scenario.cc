#include "src/scenario/scenario.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <utility>

#include "src/util/check.h"
#include "src/util/timeline.h"

namespace trafficbench::scenario {

namespace {

/// Onset/recovery time constants per event kind (5-minute steps).
struct Envelope {
  int64_t onset = 3;
  int64_t recovery = 12;
};

Envelope EnvelopeFor(EventKind kind) {
  switch (kind) {
    case EventKind::kDemandSurge:
      return {6, 18};  // crowds build and disperse gradually
    case EventKind::kSensorBlackout:
      // Hard on/off, but the difficult window extends 12 steps (one input
      // length) past the end: targets *during* the blackout are masked out
      // of the metrics anyway — what is hard is forecasting right after
      // sensors return, from history that is still full of zeros.
      return {1, 12};
    default:
      return {3, 12};
  }
}

/// Demand multiplier applied inside a gridlock region at full severity
/// (on top of the capacity collapse — everyone converges on the event).
constexpr double kGridlockDemandBoost = 2.0;

/// Event windows: one per day, alternating AM (8:00) and PM (17:00) peaks.
int64_t WindowStart(int64_t day) {
  return day * data::kStepsPerDay + (day % 2 == 0 ? 96 : 204);
}

/// Index of the most-loaded segment under the free-flow peak assignment
/// (ties break to the lowest index).
int64_t MostLoadedEdge(const graph::RoadNetwork& network,
                       const DemandModel& demand) {
  const std::vector<double> flow = FreeFlowPeakFlows(network, demand);
  TB_CHECK(!flow.empty());
  int64_t best = 0;
  for (int64_t e = 1; e < static_cast<int64_t>(flow.size()); ++e) {
    if (flow[e] > flow[best]) best = e;
  }
  return best;
}

/// The segment running opposite to `edge`, or -1 when the road is one-way.
int64_t ReverseEdge(const graph::RoadNetwork& network, int64_t edge) {
  const auto& segments = network.segments();
  const graph::RoadSegment& seg = segments[edge];
  for (int64_t e = 0; e < static_cast<int64_t>(segments.size()); ++e) {
    if (segments[e].from == seg.to && segments[e].to == seg.from) return e;
  }
  return -1;
}

int64_t MostAttractiveNode(const DemandModel& demand) {
  TB_CHECK(!demand.attraction.empty());
  int64_t best = 0;
  for (int64_t i = 1; i < static_cast<int64_t>(demand.attraction.size());
       ++i) {
    if (demand.attraction[i] > demand.attraction[best]) best = i;
  }
  return best;
}

int64_t BestConnectedNode(const graph::RoadNetwork& network) {
  int64_t best = 0;
  size_t best_degree = 0;
  for (int64_t i = 0; i < network.num_nodes(); ++i) {
    const size_t degree =
        network.OutNeighbors(i).size() + network.InNeighbors(i).size();
    if (degree > best_degree) {
      best_degree = degree;
      best = i;
    }
  }
  return best;
}

/// One event compiled against the network: which segments and nodes it
/// touches, with its envelope constants resolved.
struct CompiledEvent {
  ScenarioEvent event;
  Envelope envelope;
  std::vector<int64_t> edges;  // capacity-scaled segments
  std::vector<int64_t> nodes;  // demand-scaled / blacked-out / labelled
};

std::vector<CompiledEvent> Compile(const graph::RoadNetwork& network,
                                   const Scenario& scenario) {
  const auto& segments = network.segments();
  std::vector<CompiledEvent> compiled;
  compiled.reserve(scenario.events.size());
  for (const ScenarioEvent& event : scenario.events) {
    CompiledEvent ce;
    ce.event = event;
    ce.envelope = EnvelopeFor(event.kind);
    std::vector<int64_t> seeds;
    switch (event.kind) {
      case EventKind::kRoadClosure:
      case EventKind::kCapacityCut: {
        TB_CHECK(event.target_edge >= 0 &&
                 event.target_edge < static_cast<int64_t>(segments.size()));
        ce.edges.push_back(event.target_edge);
        seeds = {segments[event.target_edge].from,
                 segments[event.target_edge].to};
        break;
      }
      case EventKind::kDemandSurge: {
        TB_CHECK_GE(event.target_node, 0);
        seeds = {event.target_node};
        break;
      }
      case EventKind::kGridlock:
      case EventKind::kSensorBlackout: {
        TB_CHECK_GE(event.target_node, 0);
        seeds = {event.target_node};
        break;
      }
    }
    ce.nodes = NodesWithinHops(network, seeds, event.radius_hops);
    if (event.kind == EventKind::kGridlock) {
      // Capacity collapses on every segment touching the region.
      std::vector<uint8_t> in_region(network.num_nodes(), 0);
      for (int64_t v : ce.nodes) in_region[v] = 1;
      for (int64_t e = 0; e < static_cast<int64_t>(segments.size()); ++e) {
        if (in_region[segments[e].from] || in_region[segments[e].to]) {
          ce.edges.push_back(e);
        }
      }
    }
    if (event.kind == EventKind::kDemandSurge) {
      // The surge multiplier lands on the target node only; the hop radius
      // is label spread (congestion backs up onto approaches).
      ce.nodes.clear();
      ce.nodes = NodesWithinHops(network, {event.target_node},
                                 event.radius_hops);
    }
    compiled.push_back(std::move(ce));
  }
  return compiled;
}

double EventSeverity(const ScenarioEvent& event) {
  switch (event.kind) {
    case EventKind::kRoadClosure:
    case EventKind::kCapacityCut:
    case EventKind::kGridlock:
      return std::clamp(1.0 - event.magnitude, 0.0, 1.0);
    case EventKind::kDemandSurge:
      return std::clamp(event.magnitude / 10.0, 0.0, 1.0);
    case EventKind::kSensorBlackout:
      return 1.0;
  }
  return 0.0;
}

}  // namespace

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kRoadClosure:
      return "closure";
    case EventKind::kCapacityCut:
      return "capacity_cut";
    case EventKind::kDemandSurge:
      return "surge";
    case EventKind::kGridlock:
      return "gridlock";
    case EventKind::kSensorBlackout:
      return "blackout";
  }
  return "?";
}

std::vector<int64_t> NodesWithinHops(const graph::RoadNetwork& network,
                                     const std::vector<int64_t>& seeds,
                                     int hops) {
  const int64_t n = network.num_nodes();
  std::vector<int> depth(n, -1);
  std::deque<int64_t> queue;
  for (int64_t s : seeds) {
    TB_CHECK(s >= 0 && s < n);
    if (depth[s] < 0) {
      depth[s] = 0;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    const int64_t u = queue.front();
    queue.pop_front();
    if (depth[u] >= hops) continue;
    for (int64_t v : network.OutNeighbors(u)) {
      if (depth[v] < 0) {
        depth[v] = depth[u] + 1;
        queue.push_back(v);
      }
    }
    for (int64_t v : network.InNeighbors(u)) {
      if (depth[v] < 0) {
        depth[v] = depth[u] + 1;
        queue.push_back(v);
      }
    }
  }
  std::vector<int64_t> out;
  for (int64_t v = 0; v < n; ++v) {
    if (depth[v] >= 0) out.push_back(v);
  }
  return out;
}

Scenario BaselineScenario() { return Scenario{"baseline", {}}; }

Scenario ClosureScenario(const graph::RoadNetwork& network,
                         const DemandModel& demand, int64_t num_days) {
  Scenario scenario;
  scenario.name = "closure";
  const int64_t edge = MostLoadedEdge(network, demand);
  const int64_t reverse = ReverseEdge(network, edge);
  for (int64_t day = 0; day < num_days; ++day) {
    for (int64_t e : {edge, reverse}) {
      if (e < 0) continue;
      ScenarioEvent event;
      event.kind = EventKind::kRoadClosure;
      event.start_step = WindowStart(day);
      event.duration = 36;
      event.magnitude = 0.02;
      event.target_edge = e;
      event.target_node = network.segments()[e].from;
      event.radius_hops = 2;
      scenario.events.push_back(event);
    }
  }
  return scenario;
}

Scenario SurgeScenario(const graph::RoadNetwork& network,
                       const DemandModel& demand, int64_t num_days) {
  (void)network;
  Scenario scenario;
  scenario.name = "surge";
  const int64_t target = MostAttractiveNode(demand);
  for (int64_t day = 0; day < num_days; ++day) {
    ScenarioEvent event;
    event.kind = EventKind::kDemandSurge;
    event.start_step = WindowStart(day);
    event.duration = 36;
    event.magnitude = 6.0;
    event.target_node = target;
    event.radius_hops = 2;
    scenario.events.push_back(event);
  }
  return scenario;
}

Scenario GridlockScenario(const graph::RoadNetwork& network,
                          const DemandModel& demand, int64_t num_days) {
  Scenario scenario;
  scenario.name = "gridlock";
  const int64_t edge = MostLoadedEdge(network, demand);
  const int64_t epicentre = network.segments()[edge].to;
  for (int64_t day = 0; day < num_days; ++day) {
    ScenarioEvent event;
    event.kind = EventKind::kGridlock;
    event.start_step = WindowStart(day);
    event.duration = 36;
    event.magnitude = 0.35;
    event.target_node = epicentre;
    event.radius_hops = 2;
    scenario.events.push_back(event);
  }
  return scenario;
}

Scenario BlackoutScenario(const graph::RoadNetwork& network,
                          const DemandModel& demand, int64_t num_days) {
  (void)demand;
  Scenario scenario;
  scenario.name = "blackout";
  const int64_t epicentre = BestConnectedNode(network);
  for (int64_t day = 0; day < num_days; ++day) {
    ScenarioEvent event;
    event.kind = EventKind::kSensorBlackout;
    event.start_step = WindowStart(day);
    event.duration = 48;
    event.magnitude = 0.0;
    event.target_node = epicentre;
    event.radius_hops = 2;
    scenario.events.push_back(event);
  }
  return scenario;
}

std::vector<Scenario> CanonicalScenarios(const graph::RoadNetwork& network,
                                         const DemandModel& demand,
                                         int64_t num_days) {
  return {ClosureScenario(network, demand, num_days),
          SurgeScenario(network, demand, num_days),
          GridlockScenario(network, demand, num_days),
          BlackoutScenario(network, demand, num_days)};
}

ScenarioRun RunScenario(const graph::RoadNetwork& network,
                        const DemandModel& demand, const Scenario& scenario,
                        const RoutingOptions& base_options, Rng* rng) {
  TB_CHECK(!base_options.modifiers)
      << "RunScenario owns the modifier timeline";
  const std::vector<CompiledEvent> compiled = Compile(network, scenario);

  RoutingOptions options = base_options;
  options.modifiers = [&compiled](int64_t step, StepModifiers* mods) {
    for (const CompiledEvent& ce : compiled) {
      const ScenarioEvent& event = ce.event;
      if (event.kind == EventKind::kSensorBlackout) continue;  // post-pass
      const double env =
          util::PulseEnvelope(step, event.start_step, ce.envelope.onset,
                              event.duration, ce.envelope.recovery);
      if (env < 1e-3) continue;
      switch (event.kind) {
        case EventKind::kRoadClosure:
        case EventKind::kCapacityCut:
        case EventKind::kGridlock: {
          const double scale = 1.0 - (1.0 - event.magnitude) * env;
          for (int64_t e : ce.edges) mods->capacity_scale[e] *= scale;
          if (event.kind == EventKind::kGridlock) {
            const double boost = 1.0 + (kGridlockDemandBoost - 1.0) * env;
            for (int64_t v : ce.nodes) mods->demand_dest_scale[v] *= boost;
          }
          break;
        }
        case EventKind::kDemandSurge: {
          mods->demand_dest_scale[event.target_node] *=
              1.0 + (event.magnitude - 1.0) * env;
          break;
        }
        case EventKind::kSensorBlackout:
          break;
      }
    }
  };

  ScenarioRun run;
  run.series = RouteTraffic(network, demand, options, rng, &run.report);
  const int64_t n = run.series.num_nodes;
  const int64_t steps = run.series.num_steps;

  // Blackout post-pass: zero the region's readings (the world itself was
  // normal; only sensing failed), accounting every newly masked entry.
  for (const CompiledEvent& ce : compiled) {
    if (ce.event.kind != EventKind::kSensorBlackout) continue;
    const int64_t begin = std::max<int64_t>(0, ce.event.start_step);
    const int64_t end =
        std::min<int64_t>(steps, ce.event.start_step + ce.event.duration);
    for (int64_t step = begin; step < end; ++step) {
      for (int64_t v : ce.nodes) {
        float& value = run.series.values[step * n + v];
        if (value != 0.0f) {
          value = 0.0f;
          ++run.series.masked_entries;
        }
      }
    }
  }

  // Ground-truth event log + difficult-interval labels.
  run.difficult_mask.assign(steps * n, 0);
  for (const CompiledEvent& ce : compiled) {
    const ScenarioEvent& event = ce.event;
    run.series.incidents.push_back({event.target_node, event.start_step,
                                    event.duration, EventSeverity(event)});
    const int64_t begin = std::max<int64_t>(0, event.start_step);
    const int64_t end = std::min<int64_t>(
        steps, event.start_step + event.duration + ce.envelope.recovery);
    for (int64_t step = begin; step < end; ++step) {
      for (int64_t v : ce.nodes) run.difficult_mask[step * n + v] = 1;
    }
  }
  std::sort(run.series.incidents.begin(), run.series.incidents.end(),
            [](const data::TrafficIncident& a, const data::TrafficIncident& b) {
              return a.onset_step != b.onset_step ? a.onset_step < b.onset_step
                                                  : a.node < b.node;
            });
  return run;
}

}  // namespace trafficbench::scenario
