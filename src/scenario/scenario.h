#ifndef TRAFFICBENCH_SCENARIO_SCENARIO_H_
#define TRAFFICBENCH_SCENARIO_SCENARIO_H_

// Scripted disruption scenarios over the routing engine (routing.h).
//
// A Scenario is a timeline of events compiled onto RouteTraffic's per-step
// modifiers: closures and capacity cuts reshape the network the demand must
// flow through, surges reshape the demand itself, blackouts corrupt the
// *sensing* of an otherwise normal world. Every event also emits a
// ground-truth TrafficIncident into the series' event log and a
// (step, node) difficult-interval label, so evaluation can score exactly
// the positions the disruption touched instead of estimating them post hoc.
//
// The canonical builders pick their targets deterministically from the
// network + demand structure (most-loaded segment, most attractive node),
// so a seeded world always yields the same scripted scenario.

#include <cstdint>
#include <string>
#include <vector>

#include "src/data/traffic_simulator.h"
#include "src/graph/road_network.h"
#include "src/scenario/routing.h"
#include "src/util/rng.h"

namespace trafficbench::scenario {

/// Disruption families of the robustness matrix.
enum class EventKind : int {
  /// A segment (and its reverse twin) drops to ~2% capacity: demand must
  /// reroute onto parallel paths.
  kRoadClosure = 0,
  /// A segment keeps operating at reduced capacity (lane closure, weather).
  kCapacityCut,
  /// One destination's arriving demand is multiplied (stadium event).
  kDemandSurge,
  /// Cascading regional failure: every segment within a hop radius of the
  /// epicentre loses capacity while regional demand rises — congestion
  /// spills outward through rerouting.
  kGridlock,
  /// Sensors in a region report 0 (missing) while traffic itself is
  /// unaffected; masked_entries accounts for every zeroed reading.
  kSensorBlackout,
};

/// "closure" / "capacity_cut" / "surge" / "gridlock" / "blackout".
const char* EventKindName(EventKind kind);

/// One scripted event on the scenario timeline.
struct ScenarioEvent {
  EventKind kind = EventKind::kRoadClosure;
  int64_t start_step = 0;
  /// Steps at full severity (onset ramp and recovery decay extend beyond).
  int64_t duration = 36;
  /// Kind-specific strength: surviving capacity fraction for closure /
  /// capacity_cut / gridlock (0.02 = closed), destination demand multiplier
  /// for surge, unused for blackout.
  double magnitude = 0.0;
  /// Epicentre node (reported in the event log; BFS seed for regional
  /// events; the blacked-out region's centre).
  int64_t target_node = -1;
  /// Segment index for closure / capacity_cut (network.segments() order).
  int64_t target_edge = -1;
  /// Undirected hop radius of regional events (gridlock, blackout) and of
  /// the difficult-interval label spread.
  int radius_hops = 2;
};

/// A named timeline of events.
struct Scenario {
  std::string name;
  std::vector<ScenarioEvent> events;
};

/// Nodes within `hops` undirected hops of any seed node (BFS over in- and
/// out-neighbours), ascending node order.
std::vector<int64_t> NodesWithinHops(const graph::RoadNetwork& network,
                                     const std::vector<int64_t>& seeds,
                                     int hops);

/// The undisturbed world (no events) — the matrix's reference column.
Scenario BaselineScenario();
/// Closes the most-loaded segment (free-flow peak assignment argmax) and
/// its reverse twin, one window per day alternating AM/PM peaks.
Scenario ClosureScenario(const graph::RoadNetwork& network,
                         const DemandModel& demand, int64_t num_days);
/// Multiplies demand arriving at the most attractive node, one window/day.
Scenario SurgeScenario(const graph::RoadNetwork& network,
                       const DemandModel& demand, int64_t num_days);
/// Regional capacity collapse + demand rise around the most-loaded
/// segment's tail node, one window per day.
Scenario GridlockScenario(const graph::RoadNetwork& network,
                          const DemandModel& demand, int64_t num_days);
/// Blacks out sensing within 2 hops of the best-connected node, one
/// window per day.
Scenario BlackoutScenario(const graph::RoadNetwork& network,
                          const DemandModel& demand, int64_t num_days);
/// The four disruption scenarios above, in matrix column order.
std::vector<Scenario> CanonicalScenarios(const graph::RoadNetwork& network,
                                         const DemandModel& demand,
                                         int64_t num_days);

/// A routed scenario: the sensor series (with event log and blackout
/// masking applied), the routing report, and the ground-truth
/// difficult-interval mask in series layout [num_steps * num_nodes].
struct ScenarioRun {
  data::TrafficSeries series;
  RoutingReport report;
  std::vector<uint8_t> difficult_mask;
};

/// Compiles `scenario` onto the routing engine and runs it.
/// `base_options.modifiers` must be empty (the scenario owns the timeline);
/// `rng` drives sensor noise only, so running two scenarios with equal
/// seeds differs exactly by what the events caused.
ScenarioRun RunScenario(const graph::RoadNetwork& network,
                        const DemandModel& demand, const Scenario& scenario,
                        const RoutingOptions& base_options, Rng* rng);

}  // namespace trafficbench::scenario

#endif  // TRAFFICBENCH_SCENARIO_SCENARIO_H_
