#include "src/scenario/routing.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "src/util/check.h"
#include "src/util/fault.h"
#include "src/util/timeline.h"

namespace trafficbench::scenario {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Tolerance of the path-cost invariant check, relative to the edge weight
/// scale (travel times are minutes, O(1)..O(100)).
constexpr double kInvariantEps = 1e-7;

/// Static routing view of the network: per-edge free-flow travel time
/// (minutes) and forward adjacency as edge indices, in segment order.
struct RoutingGraph {
  int64_t num_nodes = 0;
  std::vector<const graph::RoadSegment*> edges;
  std::vector<double> free_flow_minutes;
  std::vector<std::vector<int64_t>> out_edges;  // per node, ascending edge id

  explicit RoutingGraph(const graph::RoadNetwork& network)
      : num_nodes(network.num_nodes()) {
    const auto& segments = network.segments();
    edges.reserve(segments.size());
    free_flow_minutes.reserve(segments.size());
    out_edges.resize(num_nodes);
    for (size_t e = 0; e < segments.size(); ++e) {
      const graph::RoadSegment& seg = segments[e];
      TB_CHECK_GT(seg.capacity_per_step, 0.0)
          << "segment " << seg.from << "->" << seg.to
          << " has no capacity attributes; run DeriveCapacities first";
      TB_CHECK_GT(seg.free_flow_mph, 0.0);
      edges.push_back(&seg);
      free_flow_minutes.push_back(seg.distance_miles / seg.free_flow_mph *
                                  60.0);
      out_edges[seg.from].push_back(static_cast<int64_t>(e));
    }
  }
};

/// Deterministic Dijkstra from `origin` over `travel_time` (minutes per
/// edge). Ties on distance break by node id via the pair ordering. Writes
/// dist[] and parent_edge[] (-1 = unreachable / origin).
void Dijkstra(const RoutingGraph& g, const std::vector<double>& travel_time,
              int64_t origin, double* dist, int64_t* parent_edge) {
  const int64_t n = g.num_nodes;
  for (int64_t i = 0; i < n; ++i) {
    dist[i] = kInf;
    parent_edge[i] = -1;
  }
  dist[origin] = 0.0;
  using Entry = std::pair<double, int64_t>;  // (dist, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  heap.push({0.0, origin});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;  // stale entry
    for (int64_t e : g.out_edges[u]) {
      const int64_t v = g.edges[e]->to;
      const double nd = d + travel_time[e];
      if (nd < dist[v]) {
        dist[v] = nd;
        parent_edge[v] = e;
        heap.push({nd, v});
      }
    }
  }
}

/// Full verification of one origin's routing table: every edge must be
/// relaxed (no edge offers a shorter path than recorded) and every reached
/// node's distance must be realized by its parent edge. Returns false on
/// the first violated invariant — a corrupted table cannot hide, whichever
/// direction the corruption moved the entry.
bool RoutingTableValid(const RoutingGraph& g,
                       const std::vector<double>& travel_time, int64_t origin,
                       const double* dist, const int64_t* parent_edge) {
  for (size_t e = 0; e < g.edges.size(); ++e) {
    const int64_t u = g.edges[e]->from;
    const int64_t v = g.edges[e]->to;
    if (dist[u] == kInf) continue;
    if (dist[v] > dist[u] + travel_time[e] + kInvariantEps) return false;
  }
  for (int64_t v = 0; v < g.num_nodes; ++v) {
    if (v == origin || dist[v] == kInf) continue;
    const int64_t e = parent_edge[v];
    if (e < 0) return false;
    const int64_t u = g.edges[e]->from;
    if (std::abs(dist[v] - (dist[u] + travel_time[e])) > kInvariantEps) {
      return false;
    }
  }
  return true;
}

}  // namespace

double DemandModel::DiurnalIntensity(double u, double am_weight,
                                     double pm_weight) {
  // The same curve family as serve-bench's diurnal arrival trace
  // (util::GaussianPeak), with commute directionality mixed in.
  const double am = util::GaussianPeak(u, 8.0 / 24.0, 0.055);
  const double pm = util::GaussianPeak(u, 17.5 / 24.0, 0.07);
  const double midday = 0.30 * util::GaussianPeak(u, 13.0 / 24.0, 0.10);
  return std::min(1.0, 0.06 + am_weight * am + pm_weight * pm + midday);
}

DemandModel DemandModel::Generate(const graph::RoadNetwork& network,
                                  uint64_t seed) {
  const int64_t n = network.num_nodes();
  TB_CHECK_GT(n, 1);
  Rng rng(seed);
  DemandModel demand;
  demand.attraction.resize(n);
  for (int64_t i = 0; i < n; ++i) {
    // Attraction mass: random base plus a boost for well-connected nodes
    // (interchanges and grid hubs draw more trips).
    demand.attraction[i] =
        0.3 + rng.Uniform() +
        0.25 * static_cast<double>(network.OutNeighbors(i).size());
  }
  const int max_hops = static_cast<int>(n);
  for (int64_t origin = 0; origin < n; ++origin) {
    const std::vector<int> hops =
        network.HopDistances(origin, max_hops, /*unreachable=*/-1);
    std::vector<int64_t> candidates;
    for (int64_t v = 0; v < n; ++v) {
      if (v != origin && hops[v] >= 2) candidates.push_back(v);
    }
    if (candidates.empty()) continue;
    const int64_t want = 3 + static_cast<int64_t>(rng.UniformInt(3));
    const int64_t count =
        std::min<int64_t>(want, static_cast<int64_t>(candidates.size()));
    std::vector<double> weight(candidates.size());
    for (size_t c = 0; c < candidates.size(); ++c) {
      weight[c] = demand.attraction[candidates[c]];
    }
    for (int64_t k = 0; k < count; ++k) {
      double total = 0.0;
      for (double w : weight) total += w;
      double r = rng.Uniform() * total;
      size_t pick = 0;
      for (size_t c = 0; c < candidates.size(); ++c) {
        if (weight[c] <= 0.0) continue;
        r -= weight[c];
        pick = c;
        if (r <= 0.0) break;
      }
      OdPair pair;
      pair.origin = origin;
      pair.destination = candidates[pick];
      pair.base_demand = demand.attraction[pair.destination] *
                         (0.5 + rng.Uniform());
      pair.am_weight = 0.35 + 0.65 * rng.Uniform();
      pair.pm_weight = 0.35 + 0.65 * rng.Uniform();
      demand.pairs.push_back(pair);
      weight[pick] = 0.0;  // without replacement
    }
  }
  TB_CHECK(!demand.pairs.empty()) << "network produced no routable OD pairs";
  return demand;
}

std::vector<double> FreeFlowPeakFlows(const graph::RoadNetwork& network,
                                      const DemandModel& demand) {
  const RoutingGraph g(network);
  const int64_t n = g.num_nodes;
  std::vector<double> flow(g.edges.size(), 0.0);
  std::vector<double> dist(n);
  std::vector<int64_t> parent(n);
  // All-or-nothing free-flow assignment at each pair's own busiest hour.
  int64_t last_origin = -1;
  for (const OdPair& pair : demand.pairs) {
    if (pair.origin != last_origin) {
      Dijkstra(g, g.free_flow_minutes, pair.origin, dist.data(),
               parent.data());
      last_origin = pair.origin;
    }
    const double peak = std::max(
        DemandModel::DiurnalIntensity(8.0 / 24.0, pair.am_weight,
                                      pair.pm_weight),
        DemandModel::DiurnalIntensity(17.5 / 24.0, pair.am_weight,
                                      pair.pm_weight));
    const double d = pair.base_demand * peak;
    for (int64_t v = pair.destination; parent[v] >= 0;
         v = g.edges[parent[v]]->from) {
      flow[parent[v]] += d;
    }
  }
  return flow;
}

void CalibrateDemand(const graph::RoadNetwork& network, DemandModel* demand,
                     double target_peak_utilization) {
  TB_CHECK(demand != nullptr);
  TB_CHECK_GT(target_peak_utilization, 0.0);
  const std::vector<double> flow = FreeFlowPeakFlows(network, *demand);
  const auto& segments = network.segments();
  double peak_util = 0.0;
  for (size_t e = 0; e < flow.size(); ++e) {
    peak_util = std::max(peak_util, flow[e] / segments[e].capacity_per_step);
  }
  if (peak_util <= 0.0) return;
  const double scale = target_peak_utilization / peak_util;
  for (OdPair& pair : demand->pairs) pair.base_demand *= scale;
}

data::TrafficSeries RouteTraffic(const graph::RoadNetwork& network,
                                 const DemandModel& demand,
                                 const RoutingOptions& options, Rng* rng,
                                 RoutingReport* report) {
  TB_CHECK(rng != nullptr);
  TB_CHECK_GT(options.num_days, 0);
  TB_CHECK_GE(options.reroute_sweeps, 1);
  const RoutingGraph g(network);
  const int64_t n = g.num_nodes;
  const int64_t num_edges = static_cast<int64_t>(g.edges.size());
  const int64_t num_steps = options.num_days * data::kStepsPerDay;

  // Group OD pairs by origin, origins ascending (generation order already
  // satisfies this; assert rather than re-sort so the accumulation order is
  // self-evidently fixed).
  std::vector<int64_t> origins;
  std::vector<std::pair<int64_t, int64_t>> origin_pairs;  // [begin, end)
  for (int64_t p = 0; p < static_cast<int64_t>(demand.pairs.size()); ++p) {
    const int64_t o = demand.pairs[p].origin;
    if (origins.empty() || origins.back() != o) {
      TB_CHECK(origins.empty() || origins.back() < o)
          << "OD pairs must be grouped by ascending origin";
      origins.push_back(o);
      origin_pairs.push_back({p, p + 1});
    } else {
      origin_pairs.back().second = p + 1;
    }
  }
  const int64_t num_origins = static_cast<int64_t>(origins.size());
  TB_CHECK_GT(num_origins, 0);

  exec::ExecutionContext* exec =
      options.exec != nullptr ? options.exec : &exec::ExecutionContext::Current();

  data::TrafficSeries series;
  series.kind = data::FeatureKind::kSpeed;
  series.num_nodes = n;
  series.num_steps = num_steps;
  series.values.assign(num_steps * n, 0.0f);
  series.time_of_day.resize(num_steps);
  series.day_of_week.resize(num_steps);

  if (report != nullptr) {
    report->edge_utilization.assign(num_edges, EdgeUtilization{});
    report->fault_recomputes = 0;
  }

  // Per-node clamp ceiling: the fastest road touching the sensor.
  std::vector<double> node_free_flow(n, 0.0);
  for (int64_t e = 0; e < num_edges; ++e) {
    const graph::RoadSegment& seg = *g.edges[e];
    node_free_flow[seg.from] =
        std::max(node_free_flow[seg.from], seg.free_flow_mph);
    node_free_flow[seg.to] = std::max(node_free_flow[seg.to], seg.free_flow_mph);
  }
  for (int64_t i = 0; i < n; ++i) {
    TB_CHECK_GT(node_free_flow[i], 0.0) << "node " << i << " has no segments";
  }

  // Mutable per-step state.
  StepModifiers mods;
  std::vector<double> travel_time = g.free_flow_minutes;  // warm across steps
  std::vector<double> flow(num_edges, 0.0);
  std::vector<double> sweep_flow(num_edges, 0.0);
  std::vector<double> utilization(num_edges, 0.0);
  std::vector<double> edge_speed(num_edges, 0.0);
  // Per-origin routing-table slots for the parallel Dijkstra fan-out.
  std::vector<double> dist(num_origins * n);
  std::vector<int64_t> parent(num_origins * n);
  std::vector<uint8_t> corrupt(num_origins, 0);
  std::vector<double> ar_noise(n, 0.0);
  const double rho = 0.82;
  FaultInjector& fault = FaultInjector::Global();

  for (int64_t step = 0; step < num_steps; ++step) {
    const int64_t step_in_day = step % data::kStepsPerDay;
    const double u_day =
        static_cast<double>(step_in_day) / data::kStepsPerDay;
    const int dow = static_cast<int>(
        (options.start_day_of_week + step / data::kStepsPerDay) % 7);
    series.time_of_day[step] = static_cast<float>(u_day);
    series.day_of_week[step] = dow;
    const double weekend_factor = dow >= 5 ? 0.55 : 1.0;

    // Scripted modifiers for this step.
    mods.capacity_scale.assign(num_edges, 1.0);
    mods.demand_dest_scale.assign(n, 1.0);
    if (options.modifiers) options.modifiers(step, &mods);

    for (int sweep = 0; sweep < options.reroute_sweeps; ++sweep) {
      // Fault decisions are consumed sequentially before the fan-out (the
      // injector is not thread-safe); corruption itself is applied inside
      // each origin's own slot.
      for (int64_t o = 0; o < num_origins; ++o) {
        corrupt[o] = fault.Should(FaultSite::kScenarioRoute) ? 1 : 0;
      }
      const int64_t grain = std::max<int64_t>(1, num_origins / 32);
      exec->ParallelFor(num_origins, grain, [&](int64_t begin, int64_t end) {
        for (int64_t o = begin; o < end; ++o) {
          double* d = dist.data() + o * n;
          int64_t* p = parent.data() + o * n;
          Dijkstra(g, travel_time, origins[o], d, p);
          if (corrupt[o]) {
            // Corrupt the farthest reachable entry (deterministic victim).
            int64_t victim = -1;
            double worst = 0.0;
            for (int64_t v = 0; v < n; ++v) {
              if (d[v] != kInf && d[v] > worst) {
                worst = d[v];
                victim = v;
              }
            }
            if (victim >= 0) d[victim] *= 4.0;
          }
        }
      });
      // Sequential verification + flow accumulation, ascending origin order.
      std::fill(sweep_flow.begin(), sweep_flow.end(), 0.0);
      for (int64_t o = 0; o < num_origins; ++o) {
        double* d = dist.data() + o * n;
        int64_t* p = parent.data() + o * n;
        if (!RoutingTableValid(g, travel_time, origins[o], d, p)) {
          // Path-cost invariant violated: recompute this origin cleanly.
          Dijkstra(g, travel_time, origins[o], d, p);
          if (report != nullptr) ++report->fault_recomputes;
        }
        for (int64_t pi = origin_pairs[o].first; pi < origin_pairs[o].second;
             ++pi) {
          const OdPair& pair = demand.pairs[pi];
          const double trip_demand =
              pair.base_demand *
              DemandModel::DiurnalIntensity(u_day, pair.am_weight,
                                            pair.pm_weight) *
              weekend_factor * mods.demand_dest_scale[pair.destination];
          if (trip_demand <= 0.0 || d[pair.destination] == kInf) continue;
          for (int64_t v = pair.destination; p[v] >= 0;
               v = g.edges[p[v]]->from) {
            sweep_flow[p[v]] += trip_demand;
          }
        }
      }
      // Method of successive averages: blend, then refresh travel times.
      const double blend = 1.0 / static_cast<double>(sweep + 1);
      for (int64_t e = 0; e < num_edges; ++e) {
        flow[e] = sweep == 0
                      ? sweep_flow[e]
                      : (1.0 - blend) * flow[e] + blend * sweep_flow[e];
        const double capacity =
            g.edges[e]->capacity_per_step * mods.capacity_scale[e];
        utilization[e] = flow[e] / std::max(capacity, 1e-9);
        travel_time[e] =
            g.free_flow_minutes[e] *
            (1.0 + options.bpr_alpha *
                       std::pow(utilization[e], options.bpr_beta));
      }
    }

    // Emit sensor readings: each node reports the flow-weighted mean speed
    // of its incident segments (epsilon weight so empty roads read as
    // free-flow rather than 0/0).
    for (int64_t e = 0; e < num_edges; ++e) {
      edge_speed[e] =
          g.edges[e]->free_flow_mph /
          (1.0 + options.bpr_alpha *
                     std::pow(utilization[e], options.bpr_beta));
      if (report != nullptr) {
        report->edge_utilization[e].mean += utilization[e];
        report->edge_utilization[e].peak =
            std::max(report->edge_utilization[e].peak, utilization[e]);
      }
    }
    for (int64_t i = 0; i < n; ++i) {
      double weighted = 0.0, weight = 0.0;
      for (int64_t e : g.out_edges[i]) {
        weighted += (flow[e] + 1e-3) * edge_speed[e];
        weight += flow[e] + 1e-3;
      }
      // Incoming segments count too: a sensor sits at an interchange and
      // sees both directions of the roads meeting there.
      for (int64_t j : network.InNeighbors(i)) {
        for (int64_t e : g.out_edges[j]) {
          if (g.edges[e]->to != i) continue;
          weighted += (flow[e] + 1e-3) * edge_speed[e];
          weight += flow[e] + 1e-3;
        }
      }
      double speed = weight > 0.0 ? weighted / weight : node_free_flow[i];
      ar_noise[i] =
          rho * ar_noise[i] +
          rng->Normal(0.0, options.noise_level * std::sqrt(1.0 - rho * rho));
      speed = std::clamp(speed + ar_noise[i], 3.0, node_free_flow[i] + 6.0);
      if (rng->Bernoulli(options.missing_rate)) speed = 0.0;
      series.values[step * n + i] = static_cast<float>(speed);
    }
  }

  if (report != nullptr) {
    for (int64_t e = 0; e < num_edges; ++e) {
      report->edge_utilization[e].mean /= static_cast<double>(num_steps);
    }
  }
  return series;
}

}  // namespace trafficbench::scenario
