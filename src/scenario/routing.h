#ifndef TRAFFICBENCH_SCENARIO_ROUTING_H_
#define TRAFFICBENCH_SCENARIO_ROUTING_H_

// Capacity-aware demand routing: the scenario engine's traffic world.
//
// Where data::SimulateTraffic *samples* congestion from per-node profiles,
// this engine *derives* it: a seeded origin-destination demand model emits
// trips each 5-minute step, trips follow shortest travel-time paths
// (deterministic Dijkstra), edge loads map to speeds through the BPR
// congestion function, and travel times feed back into routing over a fixed
// number of reroute sweeps (method of successive averages). Because demand
// must flow *somewhere*, disruptions have causal consequences — closing a
// bridge reroutes its vehicles onto parallel streets and congests them —
// which is exactly the structure scripted scenarios need and profile
// sampling cannot give.
//
// Determinism contract: the emitted series is a pure function of (network,
// demand, options, rng seed) and is byte-identical at every thread count.
// Per-origin Dijkstra runs under ExecutionContext::ParallelFor with each
// origin writing its own result slot; flow accumulation and every RNG draw
// happen sequentially in fixed order on the caller thread.

#include <cstdint>
#include <functional>
#include <vector>

#include "src/data/traffic_simulator.h"
#include "src/exec/execution_context.h"
#include "src/graph/road_network.h"
#include "src/util/rng.h"

namespace trafficbench::scenario {

/// One origin-destination demand entry: `base_demand` vehicles per step at
/// unit diurnal intensity, shaped over the day by the am/pm weights
/// (commute pairs peak mornings one way, evenings the other).
struct OdPair {
  int64_t origin = 0;
  int64_t destination = 0;
  double base_demand = 0.0;
  double am_weight = 1.0;
  double pm_weight = 1.0;
};

/// Seeded OD demand over a road network.
struct DemandModel {
  std::vector<OdPair> pairs;
  /// Per-node attraction mass used to pick destinations; kept for the
  /// scenario layer, which targets surges at the most attractive node.
  std::vector<double> attraction;

  /// Diurnal demand intensity in (0, 1]: AM/PM commute peaks plus a midday
  /// shoulder, blended by the pair's directionality weights. `u` is the
  /// fraction of the day in [0, 1).
  static double DiurnalIntensity(double u, double am_weight, double pm_weight);

  /// Generates a demand model: every node originates trips to a handful of
  /// reachable destinations sampled by attraction mass. Deterministic given
  /// (network, seed).
  static DemandModel Generate(const graph::RoadNetwork& network,
                              uint64_t seed);
};

/// Per-step multiplicative modifiers the scenario layer scripts onto the
/// engine. All vectors are reset to 1.0 before each step's callback.
struct StepModifiers {
  /// Per-segment capacity scale (index = position in network.segments()).
  /// A closure is a scale near 0: BPR then prices the segment out of every
  /// shortest path and its demand spills onto parallel routes.
  std::vector<double> capacity_scale;
  /// Per-node scale on demand *arriving* at that destination (a stadium
  /// surge is a large scale on one node).
  std::vector<double> demand_dest_scale;
};

/// Scripts modifiers for one step. Called once per step, in step order, on
/// the caller thread; may be null (no modifiers).
using ModifierFn = std::function<void(int64_t step, StepModifiers* mods)>;

/// Knobs for the routing engine.
struct RoutingOptions {
  int64_t num_days = 8;
  int start_day_of_week = 0;
  /// Reroute sweeps per step (method of successive averages). Sweep s
  /// assigns all demand on current travel times, blends flows with weight
  /// 1/(s+1), and refreshes times through BPR.
  int reroute_sweeps = 3;
  /// BPR congestion function t = t0 * (1 + alpha * u^beta).
  double bpr_alpha = 0.15;
  double bpr_beta = 4.0;
  /// AR(1) sensor noise stddev, mph.
  double noise_level = 1.2;
  /// Probability a reading drops out (recorded as 0 / missing).
  double missing_rate = 0.003;
  /// Scripted per-step modifiers; null for an undisturbed baseline world.
  ModifierFn modifiers;
  /// Execution context for the per-origin Dijkstra fan-out. Null uses the
  /// currently bound context (serial by default).
  exec::ExecutionContext* exec = nullptr;
};

/// Per-segment utilization statistics over a routed run (utilization =
/// assigned flow / effective capacity, after modifiers).
struct EdgeUtilization {
  double mean = 0.0;
  double peak = 0.0;
};

/// Observability of one routed run.
struct RoutingReport {
  /// Indexed like network.segments().
  std::vector<EdgeUtilization> edge_utilization;
  /// Times the scenario_route fault corrupted an origin's routing table and
  /// the path-cost invariant check caught it (each one was recomputed).
  int64_t fault_recomputes = 0;
};

/// Per-segment vehicle flow of an all-or-nothing free-flow assignment with
/// every pair at its own busiest hour — the static "who carries the load"
/// picture. Used by demand calibration and by the scenario builders to aim
/// closures at the most-loaded segment. Deterministic; no RNG.
std::vector<double> FreeFlowPeakFlows(const graph::RoadNetwork& network,
                                      const DemandModel& demand);

/// Scales every pair's base demand so the busiest segment's peak-hour
/// free-flow assignment hits `target_peak_utilization` — keeps procedural
/// worlds in the congested-but-moving regime regardless of topology or
/// node count. Deterministic; no RNG.
void CalibrateDemand(const graph::RoadNetwork& network, DemandModel* demand,
                     double target_peak_utilization = 0.85);

/// Routes `demand` over `network` for num_days * 288 steps and returns the
/// sensor series (speed at each node = flow-weighted mean speed of its
/// incident segments). Every segment must carry capacity attributes
/// (RoadNetwork::DeriveCapacities or hand-stamped). `rng` drives only
/// sensor noise and dropouts — routing itself is noise-free.
data::TrafficSeries RouteTraffic(const graph::RoadNetwork& network,
                                 const DemandModel& demand,
                                 const RoutingOptions& options, Rng* rng,
                                 RoutingReport* report = nullptr);

}  // namespace trafficbench::scenario

#endif  // TRAFFICBENCH_SCENARIO_ROUTING_H_
