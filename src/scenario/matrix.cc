#include "src/scenario/matrix.h"

#include <algorithm>
#include <limits>
#include <cstdio>
#include <utility>

#include "src/data/dataset.h"
#include "src/eval/difficult_intervals.h"
#include "src/eval/trainer.h"
#include "src/exec/execution_context.h"
#include "src/models/traffic_model.h"
#include "src/util/check.h"

namespace trafficbench::scenario {

const MatrixCell* ScenarioMatrixResult::Cell(
    const std::string& model, const std::string& scenario) const {
  for (const MatrixCell& cell : cells) {
    if (cell.model == model && cell.scenario == scenario) return &cell;
  }
  return nullptr;
}

std::string ScenarioMatrixResult::WorstScenario(
    const std::string& model) const {
  std::string worst;
  double worst_ratio = -1.0;
  for (const MatrixCell& cell : cells) {
    if (cell.model != model || cell.scenario == "baseline") continue;
    if (cell.degradation > worst_ratio) {
      worst_ratio = cell.degradation;
      worst = cell.scenario;
    }
  }
  return worst;
}

ScenarioMatrixResult RunScenarioMatrix(const MatrixOptions& options) {
  TB_CHECK_GE(options.num_nodes, 8);
  TB_CHECK_GT(options.train_days, 0);
  TB_CHECK_GT(options.eval_days, 0);
  const core::ExperimentConfig& config = options.config;
  exec::ExecutionContext exec(config.ExecConfig());
  exec::ExecutionContext::Bind bind(&exec);

  // --- Seeded world: network, demand, baseline training traffic ----------
  Rng world_rng(config.seed);
  Rng net_rng = world_rng.Fork();
  const graph::RoadNetwork network =
      graph::RoadNetwork::Generate(graph::NetworkTopology::kGridArterial,
                                   options.num_nodes, &net_rng)
          .DeriveCapacities(graph::NetworkTopology::kGridArterial);
  Rng demand_rng = world_rng.Fork();
  DemandModel demand = DemandModel::Generate(network, demand_rng.NextUint64());
  CalibrateDemand(network, &demand, /*target_peak_utilization=*/0.85);

  RoutingOptions train_route;
  train_route.num_days = options.train_days;
  Rng train_rng = world_rng.Fork();
  data::TrafficSeries train_series =
      RouteTraffic(network, demand, train_route, &train_rng);
  const data::TrafficDataset train_dataset(network, std::move(train_series));

  // --- Evaluation scenarios ----------------------------------------------
  // Every scenario run draws the identical sensor-noise stream; cells then
  // differ from the baseline column only through what the events caused.
  std::vector<Scenario> scenarios;
  scenarios.push_back(BaselineScenario());
  for (Scenario& s : CanonicalScenarios(network, demand, options.eval_days)) {
    scenarios.push_back(std::move(s));
  }
  Rng eval_seed_rng = world_rng.Fork();
  const uint64_t eval_seed = eval_seed_rng.NextUint64();

  RoutingOptions eval_route;
  eval_route.num_days = options.eval_days;
  eval_route.start_day_of_week =
      static_cast<int>(options.train_days % 7);  // week continues

  ScenarioMatrixResult result;
  std::vector<ScenarioRun> runs;
  std::vector<data::TrafficDataset> eval_sets;
  runs.reserve(scenarios.size());
  for (const Scenario& scenario : scenarios) {
    Rng noise_rng(eval_seed);
    runs.push_back(
        RunScenario(network, demand, scenario, eval_route, &noise_rng));
    const ScenarioRun& run = runs.back();
    ScenarioSummary summary;
    summary.name = scenario.name;
    summary.events = static_cast<int64_t>(scenario.events.size());
    summary.difficult_fraction = eval::MaskFraction(run.difficult_mask);
    summary.masked_entries = run.series.masked_entries;
    summary.fault_recomputes = run.report.fault_recomputes;
    result.scenarios.push_back(summary);
    eval_sets.emplace_back(network, run.series, 12, 12,
                           &train_dataset.scaler());
  }

  // Shared scoring window: when the eval cap is on, a contiguous window of
  // samples anchored shortly before the earliest scripted event, identical
  // for every scenario — a cap that only covered the quiet start of the day
  // would score all columns on pre-event traffic and flatten the matrix.
  int64_t eval_begin = 0;
  if (config.eval_cap > 0) {
    int64_t first_event = std::numeric_limits<int64_t>::max();
    for (const Scenario& s : scenarios) {
      for (const ScenarioEvent& event : s.events) {
        first_event = std::min(first_event, event.start_step);
      }
    }
    if (first_event != std::numeric_limits<int64_t>::max()) {
      eval_begin = std::max<int64_t>(0, first_event - 36);
      eval_begin = std::min(eval_begin,
                            std::max<int64_t>(0, eval_sets[0].num_samples() - 1));
    }
  }

  // --- Train each model once, score it on every scenario ------------------
  std::vector<std::string> names = options.model_names;
  if (names.empty()) {
    names = models::BaselineModelNames();
    for (const std::string& m : models::PaperModelNames()) names.push_back(m);
  }

  eval::TrainConfig train_config;
  train_config.epochs = config.epochs;
  train_config.batch_size = config.batch_size;
  train_config.learning_rate = config.learning_rate;
  train_config.max_batches_per_epoch = config.max_batches_per_epoch;
  train_config.seed = config.seed;
  train_config.verbose = config.verbose;

  for (const std::string& name : names) {
    std::unique_ptr<models::TrafficModel> model = models::CreateModel(
        name, models::MakeModelContext(train_dataset, config.seed));
    const eval::TrainResult trained =
        eval::TrainModel(model.get(), train_dataset, train_config);
    if (!trained.status.ok()) {
      result.failed_models.push_back(name + ": " +
                                     trained.status.message());
      std::fprintf(stderr, "[scenario-matrix] %s failed: %s\n", name.c_str(),
                   trained.status.message().c_str());
      continue;
    }
    double baseline_mae = 0.0;
    for (size_t si = 0; si < scenarios.size(); ++si) {
      const data::TrafficDataset& eval_set = eval_sets[si];
      const int64_t begin = eval_begin;
      int64_t end = eval_set.num_samples();
      if (config.eval_cap > 0) end = std::min(end, begin + config.eval_cap);
      eval::EvalOptions eval_options;
      eval_options.batch_size = config.batch_size;
      MatrixCell cell;
      cell.model = name;
      cell.scenario = scenarios[si].name;
      cell.overall =
          eval::EvaluateModel(model.get(), eval_set, begin, end, eval_options)
              .average;
      if (eval::MaskFraction(runs[si].difficult_mask) > 0.0) {
        eval_options.difficult_mask = &runs[si].difficult_mask;
        cell.difficult =
            eval::EvaluateModel(model.get(), eval_set, begin, end, eval_options)
                .average;
      }
      if (si == 0) baseline_mae = cell.overall.mae;
      cell.degradation = baseline_mae > 0.0
                             ? cell.overall.mae / baseline_mae
                             : 1.0;
      result.cells.push_back(std::move(cell));
    }
  }
  return result;
}

Table MatrixToTable(const ScenarioMatrixResult& result) {
  Table table({"Model", "Scenario", "MAE", "RMSE", "MAPE%", "dMAE", "dRMSE",
               "dMAPE%", "Degradation"});
  for (const MatrixCell& cell : result.cells) {
    const bool has_difficult = cell.difficult.count > 0;
    table.AddRow({cell.model, cell.scenario, Table::Num(cell.overall.mae),
                  Table::Num(cell.overall.rmse), Table::Num(cell.overall.mape),
                  has_difficult ? Table::Num(cell.difficult.mae) : "-",
                  has_difficult ? Table::Num(cell.difficult.rmse) : "-",
                  has_difficult ? Table::Num(cell.difficult.mape) : "-",
                  Table::Num(cell.degradation, 3)});
  }
  return table;
}

Table DegradationSummary(const ScenarioMatrixResult& result) {
  std::vector<std::string> header = {"Model", "BaselineMAE"};
  for (const ScenarioSummary& s : result.scenarios) {
    if (s.name != "baseline") header.push_back("x" + s.name);
  }
  header.push_back("Worst");
  Table table(header);
  // Preserve cell (model) order while de-duplicating.
  std::vector<std::string> models;
  for (const MatrixCell& cell : result.cells) {
    if (std::find(models.begin(), models.end(), cell.model) == models.end()) {
      models.push_back(cell.model);
    }
  }
  for (const std::string& model : models) {
    std::vector<std::string> row = {model};
    const MatrixCell* base = result.Cell(model, "baseline");
    row.push_back(base != nullptr ? Table::Num(base->overall.mae) : "-");
    for (const ScenarioSummary& s : result.scenarios) {
      if (s.name == "baseline") continue;
      const MatrixCell* cell = result.Cell(model, s.name);
      row.push_back(cell != nullptr ? Table::Num(cell->degradation, 3) : "-");
    }
    row.push_back(result.WorstScenario(model));
    table.AddRow(std::move(row));
  }
  return table;
}

}  // namespace trafficbench::scenario
