#ifndef TRAFFICBENCH_SCENARIO_MATRIX_H_
#define TRAFFICBENCH_SCENARIO_MATRIX_H_

// The models × scenarios robustness matrix (CLI `scenario-matrix`,
// bench_scenario_matrix): train every model on an undisturbed routed world,
// then score it on each scripted disruption class. Because every scenario
// shares the baseline's sensor-noise stream and scaler, a cell's error
// movement is attributable to the disruption itself — the matrix measures
// how gracefully each architecture's inductive bias degrades when the
// world stops looking like the training distribution.

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/experiment.h"
#include "src/eval/metrics.h"
#include "src/scenario/scenario.h"
#include "src/util/table.h"

namespace trafficbench::scenario {

/// Knobs of one matrix run. Training fidelity (epochs, batches, eval cap,
/// threads) rides on the shared ExperimentConfig so the TB_* environment
/// overrides work here like everywhere else.
struct MatrixOptions {
  /// Sensors in the procedural kGridArterial world.
  int64_t num_nodes = 48;
  /// Days of undisturbed traffic the models train on.
  int64_t train_days = 6;
  /// Days each evaluation scenario runs for.
  int64_t eval_days = 2;
  /// Models to place on matrix rows. Empty = the two naive baselines plus
  /// the paper's eight deep models.
  std::vector<std::string> model_names;
  core::ExperimentConfig config;
};

/// One (model, scenario) cell.
struct MatrixCell {
  std::string model;
  std::string scenario;
  /// Masked metrics over every scored position.
  eval::MetricValues overall;
  /// Masked metrics restricted to the scenario's ground-truth
  /// difficult-interval labels (count == 0 for the baseline column).
  eval::MetricValues difficult;
  /// overall.mae / the same model's baseline-scenario MAE — 1.0 means the
  /// disruption cost the model nothing.
  double degradation = 1.0;
};

/// Per-scenario world facts, for the report header.
struct ScenarioSummary {
  std::string name;
  int64_t events = 0;
  /// Fraction of (step, node) positions carrying a difficult label.
  double difficult_fraction = 0.0;
  /// Readings zeroed by blackout events.
  int64_t masked_entries = 0;
  /// scenario_route fault detections during routing (0 without TB_FAULT).
  int64_t fault_recomputes = 0;
};

/// A full matrix run.
struct ScenarioMatrixResult {
  std::vector<ScenarioSummary> scenarios;  // baseline first
  std::vector<MatrixCell> cells;           // model-major, scenario-minor
  /// Models whose training failed, with the failure message (their cells
  /// are absent from `cells`).
  std::vector<std::string> failed_models;

  /// The cell of (model, scenario); nullptr when absent.
  const MatrixCell* Cell(const std::string& model,
                         const std::string& scenario) const;
  /// The scenario (excluding baseline) with the largest degradation for
  /// `model`; empty when the model has no cells.
  std::string WorstScenario(const std::string& model) const;
};

/// Builds the seeded world, trains the requested models on baseline
/// traffic, and scores every (model, scenario) cell.
ScenarioMatrixResult RunScenarioMatrix(const MatrixOptions& options);

/// Full per-cell table: model, scenario, MAE/RMSE/MAPE overall and on
/// difficult intervals, degradation ratio.
Table MatrixToTable(const ScenarioMatrixResult& result);

/// One row per model: baseline MAE, each scenario's degradation ratio, and
/// the worst scenario — the headline robustness ranking.
Table DegradationSummary(const ScenarioMatrixResult& result);

}  // namespace trafficbench::scenario

#endif  // TRAFFICBENCH_SCENARIO_MATRIX_H_
