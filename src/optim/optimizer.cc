#include "src/optim/optimizer.h"

#include <cmath>

#include "src/exec/execution_context.h"
#include "src/tensor/kernels.h"
#include "src/util/check.h"

namespace trafficbench::optim {

Optimizer::Optimizer(std::vector<Tensor> parameters)
    : parameters_(std::move(parameters)) {
  for (const Tensor& p : parameters_) {
    TB_CHECK(p.defined() && p.requires_grad())
        << "optimizer parameters must require grad";
  }
}

void Optimizer::ZeroGrad() {
  for (Tensor& p : parameters_) p.ZeroGrad();
}

double Optimizer::ClipGradNorm(double max_norm) {
  TB_CHECK_GT(max_norm, 0.0);
  double total = 0.0;
  for (const Tensor& p : parameters_) {
    for (float g : p.grad()) total += static_cast<double>(g) * g;
  }
  const double norm = std::sqrt(total);
  if (norm > max_norm) {
    const float scale = static_cast<float>(max_norm / (norm + 1e-12));
    for (Tensor& p : parameters_) {
      auto& grad = p.impl()->grad;
      for (float& g : grad) g *= scale;
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<Tensor> parameters, double learning_rate, double momentum)
    : Optimizer(std::move(parameters)), momentum_(momentum) {
  learning_rate_ = learning_rate;
  velocity_.resize(parameters_.size());
}

void Sgd::Step() {
  const float lr = static_cast<float>(learning_rate_);
  exec::ExecutionContext& ctx = exec::ExecutionContext::Current();
  for (size_t i = 0; i < parameters_.size(); ++i) {
    auto impl = parameters_[i].impl();
    if (impl->grad.empty()) continue;
    const int64_t n = static_cast<int64_t>(impl->data.size());
    exec::ScopedOpTimer timer(exec::OpKind::kAdamStep, 2.0 * n);
    if (momentum_ > 0.0) {
      if (velocity_[i].empty()) velocity_[i].assign(impl->data.size(), 0.0f);
      const float mu = static_cast<float>(momentum_);
      float* vel = velocity_[i].data();
      float* data = impl->data.data();
      const float* grad = impl->grad.data();
      kernels::ParallelMap(ctx, n, [&](int64_t j) {
        vel[j] = mu * vel[j] + grad[j];
        data[j] -= lr * vel[j];
      });
    } else {
      float* data = impl->data.data();
      const float* grad = impl->grad.data();
      kernels::ParallelMap(ctx, n,
                           [&](int64_t j) { data[j] -= lr * grad[j]; });
    }
  }
}

OptimizerState Sgd::GetState() const {
  OptimizerState state;
  state.slots = velocity_;
  return state;
}

Status Sgd::SetState(const OptimizerState& state) {
  if (state.slots.size() != velocity_.size()) {
    return Status::InvalidArgument(
        "SGD state has " + std::to_string(state.slots.size()) +
        " velocity slots, optimizer has " + std::to_string(velocity_.size()));
  }
  for (size_t i = 0; i < state.slots.size(); ++i) {
    if (!state.slots[i].empty() &&
        state.slots[i].size() != parameters_[i].impl()->data.size()) {
      return Status::InvalidArgument(
          "SGD velocity slot " + std::to_string(i) + " has " +
          std::to_string(state.slots[i].size()) + " floats, parameter has " +
          std::to_string(parameters_[i].impl()->data.size()));
    }
  }
  velocity_ = state.slots;
  return Status::Ok();
}

Adam::Adam(std::vector<Tensor> parameters, const AdamOptions& options)
    : Optimizer(std::move(parameters)), options_(options) {
  learning_rate_ = options.learning_rate;
  m_.resize(parameters_.size());
  v_.resize(parameters_.size());
}

void Adam::Step() {
  ++step_count_;
  const double beta1 = options_.beta1;
  const double beta2 = options_.beta2;
  const double bias1 = 1.0 - std::pow(beta1, static_cast<double>(step_count_));
  const double bias2 = 1.0 - std::pow(beta2, static_cast<double>(step_count_));
  const double lr = learning_rate_;
  exec::ExecutionContext& ctx = exec::ExecutionContext::Current();
  for (size_t i = 0; i < parameters_.size(); ++i) {
    auto impl = parameters_[i].impl();
    if (impl->grad.empty()) continue;
    if (m_[i].empty()) {
      m_[i].assign(impl->data.size(), 0.0f);
      v_[i].assign(impl->data.size(), 0.0f);
    }
    const int64_t n = static_cast<int64_t>(impl->data.size());
    exec::ScopedOpTimer timer(exec::OpKind::kAdamStep, 10.0 * n);
    float* m = m_[i].data();
    float* v = v_[i].data();
    float* data = impl->data.data();
    const float* grad = impl->grad.data();
    // Each element's update is independent, so the parallel map is
    // bit-identical to the serial loop.
    kernels::ParallelMap(ctx, n, [&](int64_t j) {
      const double g = grad[j];
      m[j] = static_cast<float>(beta1 * m[j] + (1.0 - beta1) * g);
      v[j] = static_cast<float>(beta2 * v[j] + (1.0 - beta2) * g * g);
      const double m_hat = m[j] / bias1;
      const double v_hat = v[j] / bias2;
      double update = lr * m_hat / (std::sqrt(v_hat) + options_.epsilon);
      if (options_.weight_decay > 0.0) {
        update += lr * options_.weight_decay * data[j];
      }
      data[j] -= static_cast<float>(update);
    });
  }
}

OptimizerState Adam::GetState() const {
  OptimizerState state;
  state.step_count = step_count_;
  state.slots.reserve(m_.size() + v_.size());
  for (const auto& m : m_) state.slots.push_back(m);
  for (const auto& v : v_) state.slots.push_back(v);
  return state;
}

Status Adam::SetState(const OptimizerState& state) {
  if (state.slots.size() != m_.size() + v_.size()) {
    return Status::InvalidArgument(
        "Adam state has " + std::to_string(state.slots.size()) +
        " slots, optimizer needs " + std::to_string(m_.size() + v_.size()) +
        " (m then v per parameter)");
  }
  const size_t n = m_.size();
  for (size_t i = 0; i < state.slots.size(); ++i) {
    const size_t param_size = parameters_[i % n].impl()->data.size();
    if (!state.slots[i].empty() && state.slots[i].size() != param_size) {
      return Status::InvalidArgument(
          "Adam slot " + std::to_string(i) + " has " +
          std::to_string(state.slots[i].size()) + " floats, parameter '" +
          std::to_string(i % n) + "' has " + std::to_string(param_size));
    }
  }
  step_count_ = state.step_count;
  for (size_t i = 0; i < n; ++i) {
    m_[i] = state.slots[i];
    v_[i] = state.slots[n + i];
  }
  return Status::Ok();
}

StepLrSchedule::StepLrSchedule(Optimizer* optimizer, int step_size,
                               double gamma)
    : optimizer_(optimizer), step_size_(step_size), gamma_(gamma) {
  TB_CHECK(optimizer != nullptr);
  TB_CHECK_GT(step_size, 0);
}

void StepLrSchedule::EpochEnd() {
  ++epoch_;
  if (epoch_ % step_size_ == 0) {
    optimizer_->set_learning_rate(optimizer_->learning_rate() * gamma_);
  }
}

}  // namespace trafficbench::optim
