#ifndef TRAFFICBENCH_OPTIM_OPTIMIZER_H_
#define TRAFFICBENCH_OPTIM_OPTIMIZER_H_

#include <vector>

#include "src/tensor/tensor.h"

namespace trafficbench::optim {

/// Base optimizer over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> parameters);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update from the accumulated gradients.
  virtual void Step() = 0;

  /// Clears all parameter gradients.
  void ZeroGrad();

  /// Scales gradients so their global L2 norm is at most `max_norm`.
  /// Returns the pre-clip norm.
  double ClipGradNorm(double max_norm);

  /// Current learning rate.
  double learning_rate() const { return learning_rate_; }
  void set_learning_rate(double lr) { learning_rate_ = lr; }

 protected:
  std::vector<Tensor> parameters_;
  double learning_rate_ = 1e-3;
};

/// Stochastic gradient descent with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> parameters, double learning_rate,
      double momentum = 0.0);

  void Step() override;

 private:
  double momentum_;
  std::vector<std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba) with bias correction and optional decoupled weight
/// decay; the models in this library all train with Adam, as in the paper's
/// original implementations.
struct AdamOptions {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double weight_decay = 0.0;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> parameters, const AdamOptions& options);

  void Step() override;

 private:
  AdamOptions options_;
  int64_t step_count_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

/// Multiplies the learning rate by `gamma` every `step_size` epochs.
class StepLrSchedule {
 public:
  StepLrSchedule(Optimizer* optimizer, int step_size, double gamma);

  /// Call once per epoch (after the epoch completes).
  void EpochEnd();

  int epoch() const { return epoch_; }

 private:
  Optimizer* optimizer_;
  int step_size_;
  double gamma_;
  int epoch_ = 0;
};

}  // namespace trafficbench::optim

#endif  // TRAFFICBENCH_OPTIM_OPTIMIZER_H_
