#ifndef TRAFFICBENCH_OPTIM_OPTIMIZER_H_
#define TRAFFICBENCH_OPTIM_OPTIMIZER_H_

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.h"
#include "src/util/status.h"

namespace trafficbench::optim {

/// Snapshot of an optimizer's internal buffers, used both by the guarded
/// training loop (rollback to the last good step after a NaN blow-up) and
/// by TBCKPT2 checkpoints (bit-identical resume). `slots` is
/// implementation-defined: Adam stores [m..., v...], SGD its velocities.
struct OptimizerState {
  int64_t step_count = 0;
  std::vector<std::vector<float>> slots;
};

/// Base optimizer over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> parameters);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update from the accumulated gradients.
  virtual void Step() = 0;

  /// Snapshot/restore of the optimizer's internal buffers (not the
  /// parameters themselves, which the caller snapshots separately).
  /// SetState rejects snapshots from a different optimizer type or
  /// parameter list.
  virtual OptimizerState GetState() const { return {}; }
  virtual Status SetState(const OptimizerState& state) {
    return state.slots.empty()
               ? Status::Ok()
               : Status::InvalidArgument(
                     "this optimizer carries no restorable state");
  }

  /// Clears all parameter gradients.
  void ZeroGrad();

  /// Scales gradients so their global L2 norm is at most `max_norm`.
  /// Returns the pre-clip norm.
  double ClipGradNorm(double max_norm);

  /// Current learning rate.
  double learning_rate() const { return learning_rate_; }
  void set_learning_rate(double lr) { learning_rate_ = lr; }

 protected:
  std::vector<Tensor> parameters_;
  double learning_rate_ = 1e-3;
};

/// Stochastic gradient descent with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> parameters, double learning_rate,
      double momentum = 0.0);

  void Step() override;
  OptimizerState GetState() const override;
  Status SetState(const OptimizerState& state) override;

 private:
  double momentum_;
  std::vector<std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba) with bias correction and optional decoupled weight
/// decay; the models in this library all train with Adam, as in the paper's
/// original implementations.
struct AdamOptions {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double weight_decay = 0.0;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> parameters, const AdamOptions& options);

  void Step() override;
  OptimizerState GetState() const override;
  Status SetState(const OptimizerState& state) override;

 private:
  AdamOptions options_;
  int64_t step_count_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

/// Multiplies the learning rate by `gamma` every `step_size` epochs.
class StepLrSchedule {
 public:
  StepLrSchedule(Optimizer* optimizer, int step_size, double gamma);

  /// Call once per epoch (after the epoch completes).
  void EpochEnd();

  int epoch() const { return epoch_; }
  /// Fast-forwards the epoch counter without touching the learning rate
  /// (resume restores the rate directly from the checkpoint).
  void SetEpoch(int epoch) { epoch_ = epoch; }

 private:
  Optimizer* optimizer_;
  int step_size_;
  double gamma_;
  int epoch_ = 0;
};

}  // namespace trafficbench::optim

#endif  // TRAFFICBENCH_OPTIM_OPTIMIZER_H_
