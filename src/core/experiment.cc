#include "src/core/experiment.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/util/check.h"

namespace trafficbench::core {

namespace {

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atof(value) : fallback;
}

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoll(value) : fallback;
}

}  // namespace

ExperimentConfig ExperimentConfig::FromEnv() {
  ExperimentConfig config;
  config.scale = EnvDouble("TB_SCALE", config.scale);
  config.epochs = static_cast<int>(EnvInt("TB_EPOCHS", config.epochs));
  config.repeats = static_cast<int>(EnvInt("TB_REPEATS", config.repeats));
  config.batch_size = EnvInt("TB_BATCH", config.batch_size);
  config.max_batches_per_epoch =
      EnvInt("TB_BATCHES", config.max_batches_per_epoch);
  config.eval_cap = EnvInt("TB_EVAL", config.eval_cap);
  config.learning_rate = EnvDouble("TB_LR", config.learning_rate);
  config.seed = static_cast<uint64_t>(EnvInt("TB_SEED", config.seed));
  config.threads =
      static_cast<int>(std::max<int64_t>(1, EnvInt("TB_THREADS", 1)));
  config.profile = EnvInt("TB_PROFILE", 0) != 0;
  config.verbose = EnvInt("TB_VERBOSE", 0) != 0;
  return config;
}

eval::MeanStd RunResult::Metric(const std::string& metric, int horizon,
                                bool difficult) const {
  const std::vector<eval::HorizonReport>& source =
      difficult ? difficult_trials : trials;
  std::vector<double> values;
  values.reserve(source.size());
  for (const eval::HorizonReport& report : source) {
    const eval::MetricValues* slice = nullptr;
    switch (horizon) {
      case 15:
        slice = &report.horizon15;
        break;
      case 30:
        slice = &report.horizon30;
        break;
      case 60:
        slice = &report.horizon60;
        break;
      default:
        slice = &report.average;
        break;
    }
    if (metric == "mae") {
      values.push_back(slice->mae);
    } else if (metric == "rmse") {
      values.push_back(slice->rmse);
    } else if (metric == "mape") {
      values.push_back(slice->mape);
    } else {
      TB_CHECK(false) << "unknown metric " << metric;
    }
  }
  return eval::Summarize(values);
}

RunResult RunModelOnDataset(const std::string& model_name,
                            const data::TrafficDataset& dataset,
                            const std::string& dataset_name,
                            const ExperimentConfig& config,
                            const std::vector<uint8_t>* difficult_mask) {
  RunResult result;
  result.model_name = model_name;
  result.dataset_name = dataset_name;
  exec::ExecutionContext exec_context(config.ExecConfig());
  const data::DatasetSplits splits = dataset.Splits();
  const int64_t test_end =
      config.eval_cap > 0
          ? std::min(splits.test_end, splits.test_begin + config.eval_cap)
          : splits.test_end;

  for (int trial = 0; trial < config.repeats; ++trial) {
    const uint64_t seed = config.seed + 1000ULL * (trial + 1);
    models::ModelContext context = models::MakeModelContext(dataset, seed);
    std::unique_ptr<models::TrafficModel> model =
        models::CreateModel(model_name, context);
    result.parameter_count = model->ParameterCount();

    eval::TrainConfig train_config;
    train_config.epochs = config.epochs;
    train_config.batch_size = config.batch_size;
    train_config.max_batches_per_epoch = config.max_batches_per_epoch;
    train_config.learning_rate = config.learning_rate;
    train_config.seed = seed ^ 0x5bd1e995ULL;
    train_config.verbose = config.verbose;
    train_config.exec = &exec_context;
    eval::TrainResult train_result =
        eval::TrainModel(model.get(), dataset, train_config);
    result.train_seconds_per_epoch.push_back(train_result.seconds_per_epoch);

    eval::EvalOptions eval_options;
    eval_options.exec = &exec_context;
    eval::HorizonReport report = eval::EvaluateModel(
        model.get(), dataset, splits.test_begin, test_end, eval_options);
    result.inference_seconds.push_back(report.inference_seconds);
    result.trials.push_back(report);

    if (difficult_mask != nullptr) {
      eval::EvalOptions options;
      options.difficult_mask = difficult_mask;
      options.exec = &exec_context;
      result.difficult_trials.push_back(
          eval::EvaluateModel(model.get(), dataset, splits.test_begin,
                              test_end, options));
    }
    if (config.verbose) {
      std::fprintf(stderr,
                   "[%s / %s] trial %d: avg MAE %.3f (train %.1fs/epoch)\n",
                   model_name.c_str(), dataset_name.c_str(), trial + 1,
                   report.average.mae, train_result.seconds_per_epoch);
    }
  }
  if (config.profile) {
    std::fprintf(stderr, "\n-- op profile [%s / %s] --\n%s",
                 model_name.c_str(), dataset_name.c_str(),
                 exec_context.ProfileTable().ToString().c_str());
  }
  return result;
}

void EmitTable(const std::string& title, const Table& table,
               const std::string& csv_name) {
  std::printf("\n== %s ==\n%s", title.c_str(), table.ToString().c_str());
  if (WriteFileOrWarn(csv_name, table.ToCsv())) {
    std::printf("(csv: %s)\n", csv_name.c_str());
  }
  std::fflush(stdout);
}

data::TrafficDataset BuildDataset(const data::DatasetProfile& profile,
                                  const ExperimentConfig& config) {
  return data::TrafficDataset::FromProfile(
      data::ScaleProfile(profile, config.scale));
}

}  // namespace trafficbench::core
