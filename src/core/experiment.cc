#include "src/core/experiment.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <sstream>
#include <string>

#include "src/util/check.h"
#include "src/util/fileio.h"

namespace trafficbench::core {

namespace {

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atof(value) : fallback;
}

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoll(value) : fallback;
}

}  // namespace

ExperimentConfig ExperimentConfig::FromEnv() {
  ExperimentConfig config;
  config.scale = EnvDouble("TB_SCALE", config.scale);
  config.epochs = static_cast<int>(EnvInt("TB_EPOCHS", config.epochs));
  config.repeats = static_cast<int>(EnvInt("TB_REPEATS", config.repeats));
  config.batch_size = EnvInt("TB_BATCH", config.batch_size);
  config.max_batches_per_epoch =
      EnvInt("TB_BATCHES", config.max_batches_per_epoch);
  config.eval_cap = EnvInt("TB_EVAL", config.eval_cap);
  config.learning_rate = EnvDouble("TB_LR", config.learning_rate);
  config.seed = static_cast<uint64_t>(EnvInt("TB_SEED", config.seed));
  config.threads =
      static_cast<int>(std::max<int64_t>(1, EnvInt("TB_THREADS", 1)));
  config.profile = EnvInt("TB_PROFILE", 0) != 0;
  config.verbose = EnvInt("TB_VERBOSE", 0) != 0;
  config.ckpt_every = static_cast<int>(
      std::max<int64_t>(0, EnvInt("TB_CKPT_EVERY", config.ckpt_every)));
  return config;
}

eval::MeanStd RunResult::Metric(const std::string& metric, int horizon,
                                bool difficult) const {
  const std::vector<eval::HorizonReport>& source =
      difficult ? difficult_trials : trials;
  std::vector<double> values;
  values.reserve(source.size());
  for (const eval::HorizonReport& report : source) {
    const eval::MetricValues* slice = nullptr;
    switch (horizon) {
      case 15:
        slice = &report.horizon15;
        break;
      case 30:
        slice = &report.horizon30;
        break;
      case 60:
        slice = &report.horizon60;
        break;
      default:
        slice = &report.average;
        break;
    }
    if (metric == "mae") {
      values.push_back(slice->mae);
    } else if (metric == "rmse") {
      values.push_back(slice->rmse);
    } else if (metric == "mape") {
      values.push_back(slice->mape);
    } else {
      TB_CHECK(false) << "unknown metric " << metric;
    }
  }
  return eval::Summarize(values);
}

namespace {

/// Everything one finished trial contributes to a RunResult (and what a
/// sweep's per-trial ".done" file round-trips).
struct TrialOutcome {
  int64_t parameter_count = 0;
  double train_seconds_per_epoch = 0.0;
  eval::HorizonReport report;
  eval::HorizonReport difficult_report;
  bool has_difficult = false;
  int64_t nonfinite_batches = 0;
  int rollbacks = 0;
};

/// One (model, trial) execution: build, train, evaluate. Recoverable
/// failures — divergence past the rollback budget, an unusable resume
/// checkpoint, contract violations from a numerically broken model —
/// come back as a Status so the caller can keep the sweep alive. The fault
/// injector's SimulatedCrash deliberately flies through (it models SIGKILL).
Status RunOneTrial(const std::string& model_name,
                   const data::TrafficDataset& dataset,
                   const ExperimentConfig& config, int trial,
                   exec::ExecutionContext* exec_context,
                   const std::vector<uint8_t>* difficult_mask,
                   const std::string& checkpoint_path, bool resume,
                   TrialOutcome* outcome) try {
  const data::DatasetSplits splits = dataset.Splits();
  const int64_t test_end =
      config.eval_cap > 0
          ? std::min(splits.test_end, splits.test_begin + config.eval_cap)
          : splits.test_end;
  const uint64_t seed = config.seed + 1000ULL * (trial + 1);
  models::ModelContext context = models::MakeModelContext(dataset, seed);
  std::unique_ptr<models::TrafficModel> model =
      models::CreateModel(model_name, context);
  outcome->parameter_count = model->ParameterCount();

  eval::TrainConfig train_config;
  train_config.epochs = config.epochs;
  train_config.batch_size = config.batch_size;
  train_config.max_batches_per_epoch = config.max_batches_per_epoch;
  train_config.learning_rate = config.learning_rate;
  train_config.seed = seed ^ 0x5bd1e995ULL;
  train_config.verbose = config.verbose;
  train_config.exec = exec_context;
  train_config.checkpoint_path = checkpoint_path;
  train_config.checkpoint_every =
      checkpoint_path.empty() ? 0 : config.ckpt_every;
  train_config.resume = resume;
  eval::TrainResult train_result =
      eval::TrainModel(model.get(), dataset, train_config);
  if (!train_result.status.ok()) return train_result.status;
  outcome->train_seconds_per_epoch = train_result.seconds_per_epoch;
  outcome->nonfinite_batches = train_result.nonfinite_batches;
  outcome->rollbacks = train_result.rollbacks;

  eval::EvalOptions eval_options;
  eval_options.exec = exec_context;
  outcome->report = eval::EvaluateModel(model.get(), dataset,
                                        splits.test_begin, test_end,
                                        eval_options);
  if (difficult_mask != nullptr) {
    eval::EvalOptions options;
    options.difficult_mask = difficult_mask;
    options.exec = exec_context;
    outcome->difficult_report = eval::EvaluateModel(
        model.get(), dataset, splits.test_begin, test_end, options);
    outcome->has_difficult = true;
  }
  return Status::Ok();
} catch (const internal_check::CheckError& error) {
  return Status::Internal(std::string("contract violation: ") + error.what());
} catch (const std::exception& error) {
  return Status::Internal(std::string("unexpected exception: ") +
                          error.what());
}

void AppendOutcome(const TrialOutcome& outcome, RunResult* result) {
  result->parameter_count = outcome.parameter_count;
  result->train_seconds_per_epoch.push_back(outcome.train_seconds_per_epoch);
  result->inference_seconds.push_back(outcome.report.inference_seconds);
  result->trials.push_back(outcome.report);
  if (outcome.has_difficult) {
    result->difficult_trials.push_back(outcome.difficult_report);
  }
  result->nonfinite_batches += outcome.nonfinite_batches;
  result->rollbacks += outcome.rollbacks;
}

// ---- Sweep persistence: tiny text ".done" files, one per finished trial.
// %.17g round-trips IEEE doubles exactly, so a resumed sweep reproduces
// the original metrics bit for bit.

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

void AppendMetricLine(std::ostringstream* out, const char* tag,
                      const eval::MetricValues& m) {
  *out << tag << ' ' << FormatDouble(m.mae) << ' ' << FormatDouble(m.rmse)
       << ' ' << FormatDouble(m.mape) << ' ' << m.count << '\n';
}

std::string DoneFileText(const TrialOutcome& outcome) {
  std::ostringstream out;
  out << "TBDONE1\n";
  out << "params " << outcome.parameter_count << '\n';
  out << "train_s " << FormatDouble(outcome.train_seconds_per_epoch) << '\n';
  out << "infer_s " << FormatDouble(outcome.report.inference_seconds) << '\n';
  out << "guard " << outcome.nonfinite_batches << ' ' << outcome.rollbacks
      << '\n';
  AppendMetricLine(&out, "h15", outcome.report.horizon15);
  AppendMetricLine(&out, "h30", outcome.report.horizon30);
  AppendMetricLine(&out, "h60", outcome.report.horizon60);
  AppendMetricLine(&out, "avg", outcome.report.average);
  return out.str();
}

Status ExpectTag(std::istringstream* in, const char* expected,
                 const std::string& path) {
  std::string tag;
  if (!(*in >> tag) || tag != expected) {
    return Status::InvalidArgument("corrupt trial record " + path +
                                   ": expected field '" + expected +
                                   "', got '" + tag + "'");
  }
  return Status::Ok();
}

Status ReadMetricLine(std::istringstream* in, const char* tag,
                      eval::MetricValues* m, const std::string& path) {
  Status status = ExpectTag(in, tag, path);
  if (!status.ok()) return status;
  if (!(*in >> m->mae >> m->rmse >> m->mape >> m->count)) {
    return Status::InvalidArgument("corrupt trial record " + path +
                                   ": truncated '" + tag + "' metrics");
  }
  return Status::Ok();
}

Result<TrialOutcome> ParseDoneFile(const std::string& text,
                                   const std::string& path) {
  std::istringstream in(text);
  std::string magic;
  if (!(in >> magic) || magic != "TBDONE1") {
    return Status::InvalidArgument("corrupt trial record " + path +
                                   ": bad magic");
  }
  TrialOutcome outcome;
  Status status = ExpectTag(&in, "params", path);
  if (!status.ok()) return status;
  if (!(in >> outcome.parameter_count)) {
    return Status::InvalidArgument("corrupt trial record " + path);
  }
  status = ExpectTag(&in, "train_s", path);
  if (!status.ok()) return status;
  if (!(in >> outcome.train_seconds_per_epoch)) {
    return Status::InvalidArgument("corrupt trial record " + path);
  }
  status = ExpectTag(&in, "infer_s", path);
  if (!status.ok()) return status;
  if (!(in >> outcome.report.inference_seconds)) {
    return Status::InvalidArgument("corrupt trial record " + path);
  }
  status = ExpectTag(&in, "guard", path);
  if (!status.ok()) return status;
  if (!(in >> outcome.nonfinite_batches >> outcome.rollbacks)) {
    return Status::InvalidArgument("corrupt trial record " + path);
  }
  for (auto [tag, slice] : {std::pair{"h15", &outcome.report.horizon15},
                            std::pair{"h30", &outcome.report.horizon30},
                            std::pair{"h60", &outcome.report.horizon60},
                            std::pair{"avg", &outcome.report.average}}) {
    status = ReadMetricLine(&in, tag, slice, path);
    if (!status.ok()) return status;
  }
  return outcome;
}

std::string SanitizeName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_';
    if (!keep) c = '_';
  }
  return out;
}

std::string TrialStem(const std::string& dir, const std::string& model_name,
                      int trial) {
  return (std::filesystem::path(dir) /
          (SanitizeName(model_name) + "_trial" + std::to_string(trial)))
      .string();
}

}  // namespace

RunResult RunModelOnDataset(const std::string& model_name,
                            const data::TrafficDataset& dataset,
                            const std::string& dataset_name,
                            const ExperimentConfig& config,
                            const std::vector<uint8_t>* difficult_mask) {
  RunResult result;
  result.model_name = model_name;
  result.dataset_name = dataset_name;
  exec::ExecutionContext exec_context(config.ExecConfig());

  for (int trial = 0; trial < config.repeats; ++trial) {
    TrialOutcome outcome;
    const Status status =
        RunOneTrial(model_name, dataset, config, trial, &exec_context,
                    difficult_mask, /*checkpoint_path=*/"",
                    /*resume=*/false, &outcome);
    if (!status.ok()) {
      result.status = status;
      std::fprintf(stderr, "[%s / %s] trial %d FAILED: %s\n",
                   model_name.c_str(), dataset_name.c_str(), trial + 1,
                   status.ToString().c_str());
      break;
    }
    AppendOutcome(outcome, &result);
    if (config.verbose) {
      std::fprintf(stderr,
                   "[%s / %s] trial %d: avg MAE %.3f (train %.1fs/epoch)\n",
                   model_name.c_str(), dataset_name.c_str(), trial + 1,
                   outcome.report.average.mae,
                   outcome.train_seconds_per_epoch);
    }
  }
  if (config.profile) {
    std::fprintf(stderr, "\n-- op profile [%s / %s] --\n%s",
                 model_name.c_str(), dataset_name.c_str(),
                 exec_context.ProfileTable().ToString().c_str());
  }
  return result;
}

std::vector<RunResult> RunExperiment(const data::TrafficDataset& dataset,
                                     const std::string& dataset_name,
                                     const ExperimentConfig& config,
                                     const SweepOptions& options) {
  models::RegisterBuiltinModels();
  std::vector<std::string> names = options.model_names;
  if (names.empty()) {
    names = models::BaselineModelNames();
    for (const std::string& name : models::PaperModelNames()) {
      names.push_back(name);
    }
  }
  if (!options.checkpoint_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.checkpoint_dir, ec);
    if (ec) {
      std::fprintf(stderr,
                   "warning: cannot create checkpoint dir %s (%s); "
                   "running without sweep persistence\n",
                   options.checkpoint_dir.c_str(), ec.message().c_str());
    }
  }
  const bool persist = !options.checkpoint_dir.empty();

  std::vector<RunResult> results;
  results.reserve(names.size());
  for (const std::string& name : names) {
    RunResult result;
    result.model_name = name;
    result.dataset_name = dataset_name;
    if (!models::ModelRegistry::Instance().Contains(name)) {
      result.status = Status::NotFound("unknown model '" + name + "'");
      std::fprintf(stderr, "[%s / %s] FAILED: %s\n", name.c_str(),
                   dataset_name.c_str(), result.status.ToString().c_str());
      results.push_back(std::move(result));
      continue;
    }
    exec::ExecutionContext exec_context(config.ExecConfig());
    for (int trial = 0; trial < config.repeats; ++trial) {
      const std::string stem =
          persist ? TrialStem(options.checkpoint_dir, name, trial)
                  : std::string();
      const std::string done_path = persist ? stem + ".done" : std::string();
      const std::string ckpt_path = persist ? stem + ".ckpt" : std::string();

      if (options.resume && persist &&
          std::filesystem::exists(done_path)) {
        Result<std::string> text = ReadFileToString(done_path);
        if (text.ok()) {
          Result<TrialOutcome> loaded =
              ParseDoneFile(text.value(), done_path);
          if (loaded.ok()) {
            AppendOutcome(loaded.value(), &result);
            if (config.verbose) {
              std::fprintf(stderr, "[%s / %s] trial %d: loaded from %s\n",
                           name.c_str(), dataset_name.c_str(), trial + 1,
                           done_path.c_str());
            }
            continue;
          }
          std::fprintf(stderr, "warning: %s — rerunning trial\n",
                       loaded.status().ToString().c_str());
        } else {
          std::fprintf(stderr, "warning: %s — rerunning trial\n",
                       text.status().ToString().c_str());
        }
      }

      const bool resume_trial = options.resume && persist &&
                                std::filesystem::exists(ckpt_path);
      TrialOutcome outcome;
      Status status =
          RunOneTrial(name, dataset, config, trial, &exec_context,
                      /*difficult_mask=*/nullptr, ckpt_path, resume_trial,
                      &outcome);
      if (!status.ok() && resume_trial &&
          status.code() != StatusCode::kInternal) {
        // The checkpoint itself was unusable (corrupt, truncated, wrong
        // shape) — discard it and rerun the trial from scratch rather
        // than failing the model. Divergence (kInternal) is not retried:
        // rerunning a diverging configuration reproduces the divergence.
        std::fprintf(stderr,
                     "warning: discarding unusable checkpoint %s (%s); "
                     "rerunning trial from scratch\n",
                     ckpt_path.c_str(), status.ToString().c_str());
        std::error_code ec;
        std::filesystem::remove(ckpt_path, ec);
        outcome = TrialOutcome();
        status = RunOneTrial(name, dataset, config, trial, &exec_context,
                             /*difficult_mask=*/nullptr, ckpt_path,
                             /*resume=*/false, &outcome);
      }
      if (!status.ok()) {
        result.status = status;
        std::fprintf(stderr, "[%s / %s] trial %d FAILED: %s\n", name.c_str(),
                     dataset_name.c_str(), trial + 1,
                     status.ToString().c_str());
        break;
      }
      AppendOutcome(outcome, &result);
      if (persist) {
        const Status write_status =
            WriteFileAtomic(done_path, DoneFileText(outcome));
        if (!write_status.ok()) {
          std::fprintf(stderr, "warning: could not record trial: %s\n",
                       write_status.ToString().c_str());
        }
        std::error_code ec;
        std::filesystem::remove(ckpt_path, ec);
      }
      if (config.verbose) {
        std::fprintf(stderr,
                     "[%s / %s] trial %d: avg MAE %.3f (train %.1fs/epoch)\n",
                     name.c_str(), dataset_name.c_str(), trial + 1,
                     outcome.report.average.mae,
                     outcome.train_seconds_per_epoch);
      }
    }
    if (config.profile) {
      std::fprintf(stderr, "\n-- op profile [%s / %s] --\n%s", name.c_str(),
                   dataset_name.c_str(),
                   exec_context.ProfileTable().ToString().c_str());
    }
    results.push_back(std::move(result));
  }
  return results;
}

Table SummarizeSweep(const std::vector<RunResult>& results) {
  Table table({"Model", "Params", "MAE", "RMSE", "MAPE (%)", "Train s/epoch",
               "Status"});
  for (const RunResult& result : results) {
    if (!result.status.ok()) {
      std::string reason = result.status.message();
      if (reason.size() > 60) reason = reason.substr(0, 57) + "...";
      table.AddRow({result.model_name,
                    std::to_string(result.parameter_count), "-", "-", "-",
                    "-", "FAILED(" + reason + ")"});
      continue;
    }
    const eval::MeanStd mae = result.Metric("mae", 0);
    const eval::MeanStd rmse = result.Metric("rmse", 0);
    const eval::MeanStd mape = result.Metric("mape", 0);
    const eval::MeanStd train_s =
        eval::Summarize(result.train_seconds_per_epoch);
    std::string status = "ok";
    if (result.rollbacks > 0) {
      status = "ok (" + std::to_string(result.rollbacks) + " rollbacks)";
    }
    table.AddRow({result.model_name, std::to_string(result.parameter_count),
                  Table::MeanStd(mae.mean, mae.stddev, 3),
                  Table::MeanStd(rmse.mean, rmse.stddev, 3),
                  Table::MeanStd(mape.mean, mape.stddev, 2),
                  Table::Num(train_s.mean, 2), status});
  }
  return table;
}

void EmitTable(const std::string& title, const Table& table,
               const std::string& csv_name) {
  std::printf("\n== %s ==\n%s", title.c_str(), table.ToString().c_str());
  if (!csv_name.empty() && WriteFileOrWarn(csv_name, table.ToCsv())) {
    std::printf("(csv: %s)\n", csv_name.c_str());
  }
  std::fflush(stdout);
}

data::TrafficDataset BuildDataset(const data::DatasetProfile& profile,
                                  const ExperimentConfig& config) {
  return data::TrafficDataset::FromProfile(
      data::ScaleProfile(profile, config.scale));
}

}  // namespace trafficbench::core
