#ifndef TRAFFICBENCH_CORE_EXPERIMENT_H_
#define TRAFFICBENCH_CORE_EXPERIMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/eval/difficult_intervals.h"
#include "src/eval/trainer.h"
#include "src/exec/execution_context.h"
#include "src/models/traffic_model.h"
#include "src/util/status.h"
#include "src/util/table.h"

namespace trafficbench::core {

/// Shared configuration of the experiment binaries. Every knob can be
/// overridden from the environment so the same binaries serve both the
/// quick default run and a full-fidelity reproduction:
///   TB_SCALE    dataset size multiplier (default 1.0)
///   TB_EPOCHS   training epochs          (default 3)
///   TB_REPEATS  repeated trials          (default 2; paper uses 5)
///   TB_BATCHES  max train batches/epoch  (default 40; 0 = full split)
///   TB_BATCH    batch size               (default 8; paper uses 64)
///   TB_EVAL     max test samples to score (default 160; 0 = full test set)
///   TB_THREADS  kernel worker threads     (default 1; results are
///               bit-identical at any value)
///   TB_PROFILE  1 = per-op profiling
///   TB_VERBOSE  1 = per-epoch logging
///   TB_CKPT_EVERY  epochs between sweep checkpoints (default 1; only
///               used when a checkpoint directory is configured)
struct ExperimentConfig {
  double scale = 1.0;
  int epochs = 3;
  int repeats = 2;
  int64_t batch_size = 8;
  int64_t max_batches_per_epoch = 40;
  int64_t eval_cap = 160;
  double learning_rate = 5e-3;
  uint64_t seed = 2021;  // ICDE 2021
  int threads = 1;
  bool profile = false;
  bool verbose = false;
  /// Epochs between TBCKPT2 checkpoints when a sweep persists progress.
  int ckpt_every = 1;

  static ExperimentConfig FromEnv();

  /// Execution options implied by this config.
  exec::ExecOptions ExecConfig() const { return {threads, profile}; }
};

/// Accuracy series of one (model, dataset) pair across repeated trials.
struct RunResult {
  std::string model_name;
  std::string dataset_name;
  int64_t parameter_count = 0;
  std::vector<eval::HorizonReport> trials;           // full test set
  std::vector<eval::HorizonReport> difficult_trials; // difficult subset
  std::vector<double> train_seconds_per_epoch;
  std::vector<double> inference_seconds;
  /// Ok unless the model failed (diverged past the rollback budget, hit a
  /// contract violation, or could not restore a checkpoint). Trials that
  /// completed before the failure are kept; the sweep moves on to the next
  /// model instead of aborting the process.
  Status status;
  /// Batches with non-finite loss/gradients and rollbacks, summed over
  /// trials (from the guarded training loop).
  int64_t nonfinite_batches = 0;
  int rollbacks = 0;

  /// mean ± std of a metric across trials. `metric` ∈ {"mae","rmse","mape"},
  /// `horizon` ∈ {15, 30, 60, 0 (= average)}; difficult selects the subset.
  eval::MeanStd Metric(const std::string& metric, int horizon,
                       bool difficult = false) const;
};

/// Trains `model_name` on `dataset` `config.repeats` times (fresh seeds)
/// and evaluates on the test split; when `difficult_mask` is non-null the
/// difficult-interval metrics are collected too.
RunResult RunModelOnDataset(const std::string& model_name,
                            const data::TrafficDataset& dataset,
                            const std::string& dataset_name,
                            const ExperimentConfig& config,
                            const std::vector<uint8_t>* difficult_mask = nullptr);

/// A fault-tolerant multi-model sweep (the CLI `experiment` command).
struct SweepOptions {
  /// Models to run, in order. Empty = naive baselines + the paper's eight
  /// deep models.
  std::vector<std::string> model_names;
  /// When non-empty, per-(model, trial) progress lands here: finished
  /// trials as small ".done" result files and in-flight training as
  /// TBCKPT2 ".ckpt" checkpoints (written every config.ckpt_every epochs).
  std::string checkpoint_dir;
  /// Continue a killed sweep from `checkpoint_dir`: finished trials are
  /// loaded from their .done files and a mid-training trial resumes from
  /// its checkpoint. The resumed sweep's metrics are bit-identical to an
  /// uninterrupted run. A corrupt checkpoint is discarded (with a warning)
  /// and the trial reruns from scratch.
  bool resume = false;
};

/// Runs every model in `options.model_names` over the dataset. A model
/// that fails — divergence past the rollback budget, contract violation,
/// unusable checkpoint — gets a non-ok RunResult::status and the sweep
/// continues with the next model; nothing short of SIGKILL (or the fault
/// injector's simulated crash) aborts the process.
std::vector<RunResult> RunExperiment(const data::TrafficDataset& dataset,
                                     const std::string& dataset_name,
                                     const ExperimentConfig& config,
                                     const SweepOptions& options = {});

/// Summary table of a sweep: one row per model, metrics as mean ± std, and
/// a FAILED(<reason>) status cell for models whose RunResult carries an
/// error.
Table SummarizeSweep(const std::vector<RunResult>& results);

/// Prints `table`; when `csv_name` is non-empty, also writes it as CSV at
/// that path (relative to the working directory) and echoes the path.
void EmitTable(const std::string& title, const Table& table,
               const std::string& csv_name);

/// Builds a dataset from a profile after applying config.scale.
data::TrafficDataset BuildDataset(const data::DatasetProfile& profile,
                                  const ExperimentConfig& config);

}  // namespace trafficbench::core

#endif  // TRAFFICBENCH_CORE_EXPERIMENT_H_
