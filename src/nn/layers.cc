#include "src/nn/layers.h"

#include <cmath>
#include <cstring>

#include "src/exec/execution_context.h"
#include "src/util/check.h"

namespace trafficbench::nn {

namespace {

/// Xavier-uniform initialization limit.
float XavierLimit(int64_t fan_in, int64_t fan_out) {
  return std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
}

}  // namespace

// ---- Linear -----------------------------------------------------------------

Linear::Linear(int64_t in_features, int64_t out_features, Rng* rng,
               bool use_bias)
    : in_features_(in_features), out_features_(out_features) {
  TB_CHECK_GT(in_features, 0);
  TB_CHECK_GT(out_features, 0);
  const float limit = XavierLimit(in_features, out_features);
  weight_ = RegisterParameter(
      "weight",
      Tensor::Rand(Shape({in_features, out_features}), rng, -limit, limit));
  if (use_bias) {
    bias_ = RegisterParameter("bias", Tensor::Zeros(Shape({out_features})));
  }
}

Tensor Linear::Forward(const Tensor& x) const {
  TB_CHECK(x.defined());
  TB_CHECK_GE(x.rank(), 1);
  TB_CHECK_EQ(x.dim(-1), in_features_);
  Tensor input = x;
  const bool was_vector = x.rank() == 1;
  if (was_vector) input = x.Unsqueeze(0);
  Tensor y = MatMul(input, weight_);
  if (bias_.defined()) y = y + bias_;
  if (was_vector) y = y.Squeeze(0);
  return y;
}

// ---- Embedding --------------------------------------------------------------

Embedding::Embedding(int64_t num_embeddings, int64_t dim, Rng* rng) {
  TB_CHECK_GT(num_embeddings, 0);
  TB_CHECK_GT(dim, 0);
  table_ = RegisterParameter(
      "table", Tensor::Randn(Shape({num_embeddings, dim}), rng, 0.1f));
}

Tensor Embedding::Forward(const std::vector<int64_t>& indices) const {
  return IndexSelect(table_, 0, indices);
}

// ---- LayerNorm ---------------------------------------------------------------

LayerNorm::LayerNorm(int64_t dim, float epsilon)
    : dim_(dim), epsilon_(epsilon) {
  TB_CHECK_GT(dim, 0);
  gain_ = RegisterParameter("gain", Tensor::Ones(Shape({dim})));
  bias_ = RegisterParameter("bias", Tensor::Zeros(Shape({dim})));
}

Tensor LayerNorm::Forward(const Tensor& x) const {
  TB_CHECK_EQ(x.dim(-1), dim_);
  Tensor mean = x.Mean({-1}, /*keepdim=*/true);
  Tensor centered = x - mean;
  Tensor variance = (centered * centered).Mean({-1}, /*keepdim=*/true);
  Tensor inv_std = (variance + epsilon_).Sqrt();
  return centered / inv_std * gain_ + bias_;
}

// ---- Dropout -----------------------------------------------------------------

Dropout::Dropout(float rate, uint64_t seed) : rate_(rate), rng_(seed) {
  TB_CHECK(rate >= 0.0f && rate < 1.0f);
}

Tensor Dropout::Forward(const Tensor& x) {
  if (!training() || rate_ == 0.0f) return x;
  const float keep = 1.0f - rate_;
  std::vector<float> mask(x.numel());
  {
    // The mask draw consumes sequential RNG state, so it stays serial at
    // every thread count (determinism), but it is profiled as its own kind.
    exec::ScopedOpTimer timer(exec::OpKind::kDropoutMask,
                              static_cast<double>(x.numel()));
    for (float& m : mask) m = rng_.Bernoulli(keep) ? 1.0f / keep : 0.0f;
  }
  return x * Tensor::FromVector(x.shape(), std::move(mask));
}

std::vector<uint8_t> Dropout::LocalState() const {
  const RngState state = rng_.GetState();
  std::vector<uint8_t> bytes(sizeof(RngState));
  std::memcpy(bytes.data(), &state, sizeof(RngState));
  return bytes;
}

bool Dropout::SetLocalState(const std::vector<uint8_t>& bytes) {
  if (bytes.size() != sizeof(RngState)) return false;
  RngState state;
  std::memcpy(&state, bytes.data(), sizeof(RngState));
  rng_.SetState(state);
  return true;
}

// ---- Conv2dLayer ----------------------------------------------------------------

Conv2dLayer::Conv2dLayer(int64_t in_channels, int64_t out_channels,
                         int kernel_h, int kernel_w, Rng* rng, int stride_h,
                         int stride_w, int pad_h, int pad_w, int dil_h,
                         int dil_w, bool use_bias)
    : stride_h_(stride_h),
      stride_w_(stride_w),
      pad_h_(pad_h),
      pad_w_(pad_w),
      dil_h_(dil_h),
      dil_w_(dil_w) {
  const int64_t fan_in = in_channels * kernel_h * kernel_w;
  const int64_t fan_out = out_channels * kernel_h * kernel_w;
  const float limit = XavierLimit(fan_in, fan_out);
  weight_ = RegisterParameter(
      "weight", Tensor::Rand(Shape({out_channels, in_channels, kernel_h,
                                    kernel_w}),
                             rng, -limit, limit));
  if (use_bias) {
    bias_ = RegisterParameter("bias", Tensor::Zeros(Shape({out_channels})));
  }
}

Tensor Conv2dLayer::Forward(const Tensor& x) const {
  return Conv2d(x, weight_, bias_, stride_h_, stride_w_, pad_h_, pad_w_,
                dil_h_, dil_w_);
}

// ---- GRUCell -----------------------------------------------------------------

GRUCell::GRUCell(int64_t input_size, int64_t hidden_size, Rng* rng)
    : hidden_size_(hidden_size) {
  gates_ = RegisterModule(
      "gates",
      std::make_shared<Linear>(input_size + hidden_size, 2 * hidden_size, rng));
  candidate_ = RegisterModule(
      "candidate",
      std::make_shared<Linear>(input_size + hidden_size, hidden_size, rng));
}

Tensor GRUCell::Forward(const Tensor& x, const Tensor& h) const {
  TB_CHECK_EQ(x.rank(), 2);
  TB_CHECK_EQ(h.rank(), 2);
  TB_CHECK_EQ(x.dim(0), h.dim(0));
  Tensor xh = Concat({x, h}, 1);
  Tensor gates = gates_->Forward(xh).Sigmoid();
  Tensor reset = gates.Slice(1, 0, hidden_size_);
  Tensor update = gates.Slice(1, hidden_size_, 2 * hidden_size_);
  Tensor cand = candidate_->Forward(Concat({x, reset * h}, 1)).Tanh();
  return update * h + (1.0f - update) * cand;
}

// ---- Attention ----------------------------------------------------------------

Tensor ScaledDotProductAttention(const Tensor& q, const Tensor& k,
                                 const Tensor& v) {
  TB_CHECK_GE(q.rank(), 2);
  const float scale = 1.0f / std::sqrt(static_cast<float>(q.dim(-1)));
  Tensor scores = MatMul(q, k.Transpose(-1, -2)) * scale;
  return MatMul(scores.Softmax(-1), v);
}

MultiHeadAttention::MultiHeadAttention(int64_t dim, int num_heads, Rng* rng)
    : dim_(dim), num_heads_(num_heads) {
  TB_CHECK_GT(num_heads, 0);
  TB_CHECK_EQ(dim % num_heads, 0)
      << "num_heads must divide dim (" << dim << " / " << num_heads << ")";
  wq_ = RegisterModule("wq", std::make_shared<Linear>(dim, dim, rng));
  wk_ = RegisterModule("wk", std::make_shared<Linear>(dim, dim, rng));
  wv_ = RegisterModule("wv", std::make_shared<Linear>(dim, dim, rng));
  wo_ = RegisterModule("wo", std::make_shared<Linear>(dim, dim, rng));
}

Tensor MultiHeadAttention::Forward(const Tensor& query, const Tensor& key,
                                   const Tensor& value) const {
  TB_CHECK_GE(query.rank(), 2);
  TB_CHECK_EQ(query.dim(-1), dim_);
  TB_CHECK_EQ(key.dim(-1), dim_);
  TB_CHECK_EQ(value.dim(-1), dim_);

  const Shape q_shape = query.shape();
  const int64_t lq = query.dim(-2);
  const int64_t lk = key.dim(-2);
  int64_t batch = 1;
  for (int i = 0; i < query.rank() - 2; ++i) batch *= query.dim(i);
  const int64_t dh = dim_ / num_heads_;

  // Split heads: [batch, L, dim] -> [batch * heads, L, dh].
  auto split_heads = [&](const Tensor& t, int64_t len) {
    return t.Reshape(Shape({batch, len, num_heads_, dh}))
        .Permute({0, 2, 1, 3})
        .Reshape(Shape({batch * num_heads_, len, dh}));
  };

  Tensor q = split_heads(
      wq_->Forward(query).Reshape(Shape({batch, lq, dim_})), lq);
  Tensor k = split_heads(
      wk_->Forward(key).Reshape(Shape({batch, lk, dim_})), lk);
  Tensor v = split_heads(
      wv_->Forward(value).Reshape(Shape({batch, lk, dim_})), lk);

  Tensor attended = ScaledDotProductAttention(q, k, v);

  Tensor merged = attended.Reshape(Shape({batch, num_heads_, lq, dh}))
                      .Permute({0, 2, 1, 3})
                      .Reshape(Shape({batch, lq, dim_}));

  std::vector<int64_t> out_dims = q_shape.dims();
  Tensor out = wo_->Forward(merged);
  return out.Reshape(Shape(std::move(out_dims)));
}

}  // namespace trafficbench::nn
