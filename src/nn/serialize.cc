#include "src/nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>
#include <vector>

namespace trafficbench::nn {

namespace {

constexpr char kMagic[] = "TBCKPT1\n";
constexpr size_t kMagicLen = 8;

template <typename T>
void WritePod(std::ofstream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

Status SaveCheckpoint(const Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out.write(kMagic, kMagicLen);
  const auto named = module.NamedParameters();
  WritePod<uint64_t>(out, named.size());
  for (const auto& [name, tensor] : named) {
    WritePod<uint32_t>(out, static_cast<uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    const auto& dims = tensor.shape().dims();
    WritePod<uint32_t>(out, static_cast<uint32_t>(dims.size()));
    for (int64_t d : dims) WritePod<int64_t>(out, d);
    out.write(reinterpret_cast<const char*>(tensor.data()),
              static_cast<std::streamsize>(tensor.numel() * sizeof(float)));
  }
  if (!out) return Status::IoError("failed writing " + path);
  return Status::Ok();
}

Status LoadCheckpoint(Module* module, const std::string& path) {
  if (module == nullptr) return Status::InvalidArgument("null module");
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  char magic[kMagicLen];
  in.read(magic, kMagicLen);
  if (!in || std::memcmp(magic, kMagic, kMagicLen) != 0) {
    return Status::InvalidArgument(path + " is not a TrafficBench checkpoint");
  }
  uint64_t count = 0;
  if (!ReadPod(in, &count)) return Status::IoError("truncated header");

  std::map<std::string, Tensor> live;
  for (auto& [name, tensor] : module->NamedParameters()) {
    live.emplace(name, tensor);
  }
  if (count != live.size()) {
    return Status::InvalidArgument(
        "checkpoint has " + std::to_string(count) + " parameters, module has " +
        std::to_string(live.size()));
  }

  for (uint64_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    if (!ReadPod(in, &name_len) || name_len > 4096) {
      return Status::IoError("corrupt parameter name");
    }
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    uint32_t rank = 0;
    if (!in || !ReadPod(in, &rank) || rank > 8) {
      return Status::IoError("corrupt parameter header for " + name);
    }
    std::vector<int64_t> dims(rank);
    for (uint32_t d = 0; d < rank; ++d) {
      if (!ReadPod(in, &dims[d]) || dims[d] < 0) {
        return Status::IoError("corrupt dims for " + name);
      }
    }
    auto it = live.find(name);
    if (it == live.end()) {
      return Status::NotFound("module has no parameter named " + name);
    }
    const Shape shape(dims);
    if (shape != it->second.shape()) {
      return Status::InvalidArgument(
          "shape mismatch for " + name + ": checkpoint " + shape.ToString() +
          " vs module " + it->second.shape().ToString());
    }
    in.read(reinterpret_cast<char*>(it->second.data()),
            static_cast<std::streamsize>(shape.numel() * sizeof(float)));
    if (!in) return Status::IoError("truncated data for " + name);
  }
  return Status::Ok();
}

}  // namespace trafficbench::nn
