#include "src/nn/serialize.h"

#include <cstring>
#include <map>
#include <set>

#include "src/util/crc32.h"
#include "src/util/fileio.h"

namespace trafficbench::nn {

namespace {

constexpr char kMagicV1[] = "TBCKPT1\n";
constexpr char kMagicV2[] = "TBCKPT2\n";
constexpr size_t kMagicLen = 8;
constexpr uint32_t kMaxNameLen = 4096;
constexpr uint32_t kMaxRank = 8;

// ---- In-memory payload building/parsing -------------------------------------
// Checkpoints are serialized into a memory buffer first: writes commit
// atomically in one pass (util/fileio), the CRC footer covers exactly the
// bytes on disk, and parse errors can report precise byte offsets.

class PayloadWriter {
 public:
  template <typename T>
  void WritePod(T value) {
    const char* raw = reinterpret_cast<const char*>(&value);
    buffer_.append(raw, sizeof(T));
  }

  void WriteBytes(const void* data, size_t size) {
    if (size == 0) return;  // empty vectors hand out null data()
    buffer_.append(static_cast<const char*>(data), size);
  }

  void WriteString(const std::string& text) {
    WritePod<uint32_t>(static_cast<uint32_t>(text.size()));
    buffer_.append(text);
  }

  const std::string& buffer() const { return buffer_; }

 private:
  std::string buffer_;
};

class PayloadReader {
 public:
  explicit PayloadReader(const std::string& buffer) : buffer_(buffer) {}

  template <typename T>
  bool ReadPod(T* value) {
    if (offset_ + sizeof(T) > buffer_.size()) return false;
    std::memcpy(value, buffer_.data() + offset_, sizeof(T));
    offset_ += sizeof(T);
    return true;
  }

  bool ReadBytes(void* out, size_t size) {
    if (offset_ + size > buffer_.size()) return false;
    if (size > 0) std::memcpy(out, buffer_.data() + offset_, size);
    offset_ += size;
    return true;
  }

  bool ReadString(std::string* out, uint32_t max_len) {
    uint32_t len = 0;
    if (!ReadPod(&len) || len > max_len) return false;
    if (offset_ + len > buffer_.size()) return false;
    out->assign(buffer_.data() + offset_, len);
    offset_ += len;
    return true;
  }

  size_t offset() const { return offset_; }
  size_t remaining() const { return buffer_.size() - offset_; }

 private:
  const std::string& buffer_;
  size_t offset_ = 0;
};

std::string At(const std::string& path, size_t offset) {
  return " in " + path + " at byte " + std::to_string(offset);
}

// ---- Parameter section (shared by TBCKPT1 and TBCKPT2) ----------------------

Status WriteParams(const Module& module, PayloadWriter* writer) {
  const auto named = module.NamedParameters();
  std::set<std::string> seen;
  for (const auto& [name, tensor] : named) {
    if (!seen.insert(name).second) {
      return Status::InvalidArgument(
          "module has duplicate parameter name '" + name +
          "'; checkpoints require unique names");
    }
    (void)tensor;
  }
  writer->WritePod<uint64_t>(named.size());
  for (const auto& [name, tensor] : named) {
    writer->WriteString(name);
    const auto& dims = tensor.shape().dims();
    writer->WritePod<uint32_t>(static_cast<uint32_t>(dims.size()));
    for (int64_t d : dims) writer->WritePod<int64_t>(d);
    writer->WriteBytes(tensor.data(), tensor.numel() * sizeof(float));
  }
  return Status::Ok();
}

Status ReadParams(PayloadReader* reader, Module* module,
                  const std::string& path) {
  uint64_t count = 0;
  if (!reader->ReadPod(&count)) {
    return Status::IoError("truncated header" + At(path, reader->offset()));
  }

  std::map<std::string, Tensor> live;
  for (auto& [name, tensor] : module->NamedParameters()) {
    live.emplace(name, tensor);
  }
  if (count != live.size()) {
    return Status::InvalidArgument(
        "checkpoint has " + std::to_string(count) + " parameters, module has " +
        std::to_string(live.size()) + " (" + path + ")");
  }

  std::set<std::string> loaded;
  for (uint64_t i = 0; i < count; ++i) {
    std::string name;
    if (!reader->ReadString(&name, kMaxNameLen)) {
      return Status::IoError("corrupt parameter name" +
                             At(path, reader->offset()));
    }
    uint32_t rank = 0;
    if (!reader->ReadPod(&rank) || rank > kMaxRank) {
      return Status::IoError("corrupt header for parameter '" + name + "'" +
                             At(path, reader->offset()));
    }
    std::vector<int64_t> dims(rank);
    for (uint32_t d = 0; d < rank; ++d) {
      if (!reader->ReadPod(&dims[d]) || dims[d] < 0) {
        return Status::IoError("corrupt dims for parameter '" + name + "'" +
                               At(path, reader->offset()));
      }
    }
    if (!loaded.insert(name).second) {
      return Status::InvalidArgument("duplicate parameter '" + name + "'" +
                                     At(path, reader->offset()));
    }
    auto it = live.find(name);
    if (it == live.end()) {
      return Status::NotFound("module has no parameter named '" + name + "'" +
                              At(path, reader->offset()));
    }
    const Shape shape(dims);
    if (shape != it->second.shape()) {
      return Status::InvalidArgument(
          "shape mismatch for parameter '" + name + "': checkpoint " +
          shape.ToString() + " vs module " + it->second.shape().ToString() +
          At(path, reader->offset()));
    }
    if (!reader->ReadBytes(it->second.data(), shape.numel() * sizeof(float))) {
      return Status::IoError("truncated data for parameter '" + name + "'" +
                             At(path, reader->offset()));
    }
  }
  return Status::Ok();
}

// ---- Train-state section (TBCKPT2 only) -------------------------------------

void WriteFloatVec(PayloadWriter* writer, const std::vector<float>& values) {
  writer->WritePod<uint64_t>(values.size());
  writer->WriteBytes(values.data(), values.size() * sizeof(float));
}

bool ReadFloatVec(PayloadReader* reader, std::vector<float>* out) {
  uint64_t n = 0;
  if (!reader->ReadPod(&n) || n > reader->remaining() / sizeof(float)) {
    return false;
  }
  out->resize(n);
  return reader->ReadBytes(out->data(), n * sizeof(float));
}

void WriteDoubleVec(PayloadWriter* writer, const std::vector<double>& values) {
  writer->WritePod<uint64_t>(values.size());
  writer->WriteBytes(values.data(), values.size() * sizeof(double));
}

bool ReadDoubleVec(PayloadReader* reader, std::vector<double>* out) {
  uint64_t n = 0;
  if (!reader->ReadPod(&n) || n > reader->remaining() / sizeof(double)) {
    return false;
  }
  out->resize(n);
  return reader->ReadBytes(out->data(), n * sizeof(double));
}

void WriteTrainState(const TrainState& state, PayloadWriter* writer) {
  writer->WritePod<int32_t>(state.epoch);
  writer->WritePod<double>(state.learning_rate);
  writer->WritePod<int32_t>(state.best_epoch);
  writer->WritePod<int32_t>(state.rollbacks);
  writer->WritePod<int64_t>(state.nonfinite_batches);
  WriteDoubleVec(writer, state.epoch_losses);
  WriteDoubleVec(writer, state.val_losses);

  writer->WritePod<int64_t>(state.optimizer.step_count);
  writer->WritePod<uint64_t>(state.optimizer.slots.size());
  for (const auto& slot : state.optimizer.slots) WriteFloatVec(writer, slot);

  for (uint64_t s : state.shuffle_rng.s) writer->WritePod<uint64_t>(s);
  writer->WritePod<uint8_t>(state.shuffle_rng.has_cached_normal ? 1 : 0);
  writer->WritePod<double>(state.shuffle_rng.cached_normal);

  writer->WritePod<uint64_t>(state.module_states.size());
  for (const auto& [name, bytes] : state.module_states) {
    writer->WriteString(name);
    writer->WritePod<uint64_t>(bytes.size());
    writer->WriteBytes(bytes.data(), bytes.size());
  }

  writer->WritePod<uint64_t>(state.best_snapshot.size());
  for (const auto& snapshot : state.best_snapshot) {
    WriteFloatVec(writer, snapshot);
  }
}

Status ReadTrainState(PayloadReader* reader, const std::string& path,
                      TrainState* state) {
  uint8_t cached = 0;
  const bool header_ok =
      reader->ReadPod(&state->epoch) &&
      reader->ReadPod(&state->learning_rate) &&
      reader->ReadPod(&state->best_epoch) &&
      reader->ReadPod(&state->rollbacks) &&
      reader->ReadPod(&state->nonfinite_batches) &&
      ReadDoubleVec(reader, &state->epoch_losses) &&
      ReadDoubleVec(reader, &state->val_losses);
  if (!header_ok) {
    return Status::IoError("truncated train-state header" +
                           At(path, reader->offset()));
  }

  uint64_t slot_count = 0;
  if (!reader->ReadPod(&state->optimizer.step_count) ||
      !reader->ReadPod(&slot_count) || slot_count > (1u << 20)) {
    return Status::IoError("corrupt optimizer state" +
                           At(path, reader->offset()));
  }
  state->optimizer.slots.resize(slot_count);
  for (uint64_t i = 0; i < slot_count; ++i) {
    if (!ReadFloatVec(reader, &state->optimizer.slots[i])) {
      return Status::IoError("truncated optimizer slot " + std::to_string(i) +
                             At(path, reader->offset()));
    }
  }

  for (uint64_t& s : state->shuffle_rng.s) {
    if (!reader->ReadPod(&s)) {
      return Status::IoError("truncated RNG state" +
                             At(path, reader->offset()));
    }
  }
  if (!reader->ReadPod(&cached) ||
      !reader->ReadPod(&state->shuffle_rng.cached_normal)) {
    return Status::IoError("truncated RNG state" + At(path, reader->offset()));
  }
  state->shuffle_rng.has_cached_normal = cached != 0;

  uint64_t module_states = 0;
  if (!reader->ReadPod(&module_states) || module_states > (1u << 20)) {
    return Status::IoError("corrupt module-state count" +
                           At(path, reader->offset()));
  }
  state->module_states.resize(module_states);
  for (uint64_t i = 0; i < module_states; ++i) {
    uint64_t size = 0;
    if (!reader->ReadString(&state->module_states[i].first, kMaxNameLen) ||
        !reader->ReadPod(&size) || size > reader->remaining()) {
      return Status::IoError("corrupt module state for '" +
                             state->module_states[i].first + "'" +
                             At(path, reader->offset()));
    }
    state->module_states[i].second.resize(size);
    if (!reader->ReadBytes(state->module_states[i].second.data(), size)) {
      return Status::IoError("truncated module state for '" +
                             state->module_states[i].first + "'" +
                             At(path, reader->offset()));
    }
  }

  uint64_t snapshots = 0;
  if (!reader->ReadPod(&snapshots) || snapshots > (1u << 20)) {
    return Status::IoError("corrupt best-snapshot count" +
                           At(path, reader->offset()));
  }
  state->best_snapshot.resize(snapshots);
  for (uint64_t i = 0; i < snapshots; ++i) {
    if (!ReadFloatVec(reader, &state->best_snapshot[i])) {
      return Status::IoError("truncated best-snapshot tensor " +
                             std::to_string(i) + At(path, reader->offset()));
    }
  }
  return Status::Ok();
}

/// Verifies the trailing CRC32 of a TBCKPT2 buffer and returns a reader
/// positioned after the magic, covering only the payload.
Status CheckV2Footer(const std::string& buffer, const std::string& path) {
  if (buffer.size() < kMagicLen + sizeof(uint32_t)) {
    return Status::IoError(path + " is too short to be a TBCKPT2 checkpoint (" +
                           std::to_string(buffer.size()) + " bytes)");
  }
  uint32_t stored = 0;
  std::memcpy(&stored, buffer.data() + buffer.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  const uint32_t actual =
      Crc32(buffer.data(), buffer.size() - sizeof(uint32_t));
  if (stored != actual) {
    return Status::IoError(
        path + " failed its CRC32 integrity check (stored " +
        std::to_string(stored) + ", computed " + std::to_string(actual) +
        " over " + std::to_string(buffer.size() - sizeof(uint32_t)) +
        " bytes) — the checkpoint is corrupt or was torn mid-write");
  }
  return Status::Ok();
}

}  // namespace

Status SaveCheckpoint(const Module& module, const std::string& path) {
  PayloadWriter writer;
  writer.WriteBytes(kMagicV1, kMagicLen);
  Status status = WriteParams(module, &writer);
  if (!status.ok()) return status;
  return WriteFileAtomic(path, writer.buffer());
}

Status LoadCheckpoint(Module* module, const std::string& path) {
  if (module == nullptr) return Status::InvalidArgument("null module");
  Result<std::string> contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  const std::string& buffer = contents.value();
  if (buffer.size() < kMagicLen) {
    return Status::InvalidArgument(path + " is not a TrafficBench checkpoint");
  }
  if (std::memcmp(buffer.data(), kMagicV1, kMagicLen) == 0) {
    PayloadReader reader(buffer);
    char magic[kMagicLen];
    reader.ReadBytes(magic, kMagicLen);
    return ReadParams(&reader, module, path);
  }
  if (std::memcmp(buffer.data(), kMagicV2, kMagicLen) == 0) {
    // Params-only view of a v2 checkpoint; the CRC still guards the load.
    Status status = CheckV2Footer(buffer, path);
    if (!status.ok()) return status;
    PayloadReader reader(buffer);
    char magic[kMagicLen];
    reader.ReadBytes(magic, kMagicLen);
    return ReadParams(&reader, module, path);
  }
  return Status::InvalidArgument(path + " is not a TrafficBench checkpoint");
}

Status SaveTrainCheckpoint(const Module& module, const TrainState& state,
                           const std::string& path) {
  PayloadWriter writer;
  writer.WriteBytes(kMagicV2, kMagicLen);
  Status status = WriteParams(module, &writer);
  if (!status.ok()) return status;
  WriteTrainState(state, &writer);
  std::string payload = writer.buffer();
  const uint32_t crc = Crc32(payload.data(), payload.size());
  payload.append(reinterpret_cast<const char*>(&crc), sizeof(uint32_t));
  return WriteFileAtomic(path, payload);
}

Result<TrainState> LoadTrainCheckpoint(Module* module,
                                       const std::string& path) {
  if (module == nullptr) return Status::InvalidArgument("null module");
  Result<std::string> contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  const std::string& buffer = contents.value();
  if (buffer.size() < kMagicLen ||
      std::memcmp(buffer.data(), kMagicV2, kMagicLen) != 0) {
    return Status::InvalidArgument(path +
                                   " is not a TBCKPT2 training checkpoint");
  }
  Status status = CheckV2Footer(buffer, path);
  if (!status.ok()) return status;

  // The CRC above vouches for the bytes; the remaining failure mode is a
  // structural mismatch (checkpoint from a different module), which
  // ReadParams can detect only partway through — a failed load may leave
  // the module partially written, so callers must treat it as
  // "reinitialize the model".
  PayloadReader reader(buffer);
  char magic[kMagicLen];
  reader.ReadBytes(magic, kMagicLen);
  status = ReadParams(&reader, module, path);
  if (!status.ok()) return status;

  TrainState state;
  status = ReadTrainState(&reader, path, &state);
  if (!status.ok()) return status;
  if (reader.remaining() != sizeof(uint32_t)) {
    return Status::IoError("unexpected " +
                           std::to_string(reader.remaining()) +
                           " trailing bytes" + At(path, reader.offset()));
  }
  return state;
}

}  // namespace trafficbench::nn
