#ifndef TRAFFICBENCH_NN_SERIALIZE_H_
#define TRAFFICBENCH_NN_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/nn/module.h"
#include "src/optim/optimizer.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace trafficbench::nn {

/// Writes all named parameters of `module` to a binary checkpoint.
///
/// Format TBCKPT1 (little-endian):
///   magic "TBCKPT1\n", uint64 parameter count, then per parameter:
///   uint32 name length, name bytes, uint32 rank, int64 dims[rank],
///   float32 data[numel].
///
/// The write is atomic: the payload lands in `path + ".tmp"` and is renamed
/// over `path` only once complete, so a crash mid-save can never destroy an
/// existing good checkpoint.
Status SaveCheckpoint(const Module& module, const std::string& path);

/// Loads a checkpoint previously written by SaveCheckpoint (TBCKPT1) or
/// SaveTrainCheckpoint (TBCKPT2; only the parameters are applied) into
/// `module`. Every parameter in the file must exist in the module with an
/// identical shape, and vice versa — partial loads are rejected so
/// silently-missing weights cannot corrupt an experiment. Corrupt or
/// truncated files are rejected with the offending parameter name and byte
/// offset in the Status message.
Status LoadCheckpoint(Module* module, const std::string& path);

/// Everything beyond the parameters that a resumed training run needs to be
/// bit-identical to an uninterrupted one.
struct TrainState {
  /// Number of fully completed epochs (resume starts at this epoch).
  int32_t epoch = 0;
  /// Learning rate in effect after `epoch` epochs (decay + any rollback
  /// backoff already applied).
  double learning_rate = 0.0;
  int32_t best_epoch = -1;
  int32_t rollbacks = 0;
  int64_t nonfinite_batches = 0;
  std::vector<double> epoch_losses;
  std::vector<double> val_losses;
  optim::OptimizerState optimizer;
  /// The training loop's shuffle stream, captured at the epoch boundary.
  RngState shuffle_rng;
  /// Non-parameter module state (e.g. dropout RNG streams).
  std::vector<std::pair<std::string, std::vector<uint8_t>>> module_states;
  /// Best-validation-epoch parameter snapshot (empty when selection is off
  /// or no epoch has been validated yet).
  std::vector<std::vector<float>> best_snapshot;
};

/// Writes parameters + TrainState as a TBCKPT2 checkpoint.
///
/// Format TBCKPT2 (little-endian):
///   magic "TBCKPT2\n"
///   parameter section (identical layout to TBCKPT1's body)
///   train-state section (epoch, LR, losses, optimizer slots, RNG state,
///   module states, best snapshot)
///   uint32 CRC32 footer over every preceding byte.
///
/// Writes are atomic (tmp + rename); LoadTrainCheckpoint verifies the CRC
/// before trusting any field, so bit flips and short writes are rejected
/// with precise diagnostics instead of corrupting a resumed run.
Status SaveTrainCheckpoint(const Module& module, const TrainState& state,
                           const std::string& path);

/// Loads a TBCKPT2 checkpoint: applies the parameters to `module` (same
/// strict matching as LoadCheckpoint) and returns the training state.
Result<TrainState> LoadTrainCheckpoint(Module* module,
                                       const std::string& path);

}  // namespace trafficbench::nn

#endif  // TRAFFICBENCH_NN_SERIALIZE_H_
