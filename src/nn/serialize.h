#ifndef TRAFFICBENCH_NN_SERIALIZE_H_
#define TRAFFICBENCH_NN_SERIALIZE_H_

#include <string>

#include "src/nn/module.h"
#include "src/util/status.h"

namespace trafficbench::nn {

/// Writes all named parameters of `module` to a binary checkpoint.
///
/// Format (little-endian):
///   magic "TBCKPT1\n", uint64 parameter count, then per parameter:
///   uint32 name length, name bytes, uint32 rank, int64 dims[rank],
///   float32 data[numel].
Status SaveCheckpoint(const Module& module, const std::string& path);

/// Loads a checkpoint previously written by SaveCheckpoint into `module`.
/// Every parameter in the file must exist in the module with an identical
/// shape, and vice versa — partial loads are rejected so silently-missing
/// weights cannot corrupt an experiment.
Status LoadCheckpoint(Module* module, const std::string& path);

}  // namespace trafficbench::nn

#endif  // TRAFFICBENCH_NN_SERIALIZE_H_
