#include "src/nn/module.h"

#include "src/util/check.h"

namespace trafficbench::nn {

Tensor Module::RegisterParameter(std::string name, Tensor tensor) {
  TB_CHECK(tensor.defined());
  tensor.set_requires_grad(true);
  parameters_.emplace_back(std::move(name), tensor);
  return parameters_.back().second;
}

void Module::RegisterModuleImpl(std::string name, std::shared_ptr<Module> m) {
  TB_CHECK(m != nullptr);
  children_.emplace_back(std::move(name), std::move(m));
}

void Module::CollectNamed(
    const std::string& prefix,
    std::vector<std::pair<std::string, Tensor>>* out) const {
  for (const auto& [name, tensor] : parameters_) {
    out->emplace_back(prefix.empty() ? name : prefix + "." + name, tensor);
  }
  for (const auto& [name, child] : children_) {
    child->CollectNamed(prefix.empty() ? name : prefix + "." + name, out);
  }
}

std::vector<std::pair<std::string, Tensor>> Module::NamedParameters() const {
  std::vector<std::pair<std::string, Tensor>> out;
  CollectNamed("", &out);
  return out;
}

std::vector<Tensor> Module::Parameters() const {
  std::vector<Tensor> out;
  for (auto& [name, tensor] : NamedParameters()) out.push_back(tensor);
  return out;
}

int64_t Module::ParameterCount() const {
  int64_t count = 0;
  for (const Tensor& t : Parameters()) count += t.numel();
  return count;
}

void Module::ZeroGrad() {
  for (Tensor& t : Parameters()) t.ZeroGrad();
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->SetTraining(training);
}

}  // namespace trafficbench::nn
