#include "src/nn/module.h"

#include "src/util/check.h"

namespace trafficbench::nn {

Tensor Module::RegisterParameter(std::string name, Tensor tensor) {
  TB_CHECK(tensor.defined());
  tensor.set_requires_grad(true);
  parameters_.emplace_back(std::move(name), tensor);
  return parameters_.back().second;
}

void Module::RegisterModuleImpl(std::string name, std::shared_ptr<Module> m) {
  TB_CHECK(m != nullptr);
  children_.emplace_back(std::move(name), std::move(m));
}

void Module::CollectNamed(
    const std::string& prefix,
    std::vector<std::pair<std::string, Tensor>>* out) const {
  for (const auto& [name, tensor] : parameters_) {
    out->emplace_back(prefix.empty() ? name : prefix + "." + name, tensor);
  }
  for (const auto& [name, child] : children_) {
    child->CollectNamed(prefix.empty() ? name : prefix + "." + name, out);
  }
}

std::vector<std::pair<std::string, Tensor>> Module::NamedParameters() const {
  std::vector<std::pair<std::string, Tensor>> out;
  CollectNamed("", &out);
  return out;
}

std::vector<Tensor> Module::Parameters() const {
  std::vector<Tensor> out;
  for (auto& [name, tensor] : NamedParameters()) out.push_back(tensor);
  return out;
}

int64_t Module::ParameterCount() const {
  int64_t count = 0;
  for (const Tensor& t : Parameters()) count += t.numel();
  return count;
}

void Module::ZeroGrad() {
  for (Tensor& t : Parameters()) t.ZeroGrad();
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->SetTraining(training);
}

void Module::CollectLocalStates(
    const std::string& prefix,
    std::vector<std::pair<std::string, std::vector<uint8_t>>>* out) const {
  std::vector<uint8_t> state = LocalState();
  if (!state.empty()) out->emplace_back(prefix, std::move(state));
  for (const auto& [name, child] : children_) {
    child->CollectLocalStates(prefix.empty() ? name : prefix + "." + name,
                              out);
  }
}

std::vector<std::pair<std::string, std::vector<uint8_t>>>
Module::NamedLocalStates() const {
  std::vector<std::pair<std::string, std::vector<uint8_t>>> out;
  CollectLocalStates("", &out);
  return out;
}

void Module::CollectModules(
    const std::string& prefix,
    std::vector<std::pair<std::string, Module*>>* out) {
  out->emplace_back(prefix, this);
  for (auto& [name, child] : children_) {
    child->CollectModules(prefix.empty() ? name : prefix + "." + name, out);
  }
}

Status Module::LoadNamedLocalStates(
    const std::vector<std::pair<std::string, std::vector<uint8_t>>>& states) {
  std::vector<std::pair<std::string, Module*>> modules;
  CollectModules("", &modules);
  for (const auto& [name, bytes] : states) {
    Module* target = nullptr;
    for (auto& [path, module] : modules) {
      if (path == name) {
        target = module;
        break;
      }
    }
    if (target == nullptr) {
      return Status::NotFound("module has no submodule named '" + name +
                              "' for checkpointed local state");
    }
    if (!target->SetLocalState(bytes)) {
      return Status::InvalidArgument("malformed local state for module '" +
                                     name + "' (" +
                                     std::to_string(bytes.size()) + " bytes)");
    }
  }
  return Status::Ok();
}

}  // namespace trafficbench::nn
