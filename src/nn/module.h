#ifndef TRAFFICBENCH_NN_MODULE_H_
#define TRAFFICBENCH_NN_MODULE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/tensor/tensor.h"
#include "src/util/status.h"

namespace trafficbench::nn {

/// Base class for neural-network components. Provides recursive parameter
/// registration (for optimizers, counting, and gradient zeroing) and a
/// training/eval mode flag (for dropout and teacher forcing).
class Module {
 public:
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All learnable tensors of this module and its registered children.
  std::vector<Tensor> Parameters() const;

  /// Parameters with dotted path names, e.g. "encoder.cell0.weight".
  std::vector<std::pair<std::string, Tensor>> NamedParameters() const;

  /// Total number of learnable scalars (the paper's "# of params").
  int64_t ParameterCount() const;

  /// Zeroes the gradient buffers of all parameters.
  void ZeroGrad();

  /// Switches train/eval behaviour recursively (dropout etc.).
  void SetTraining(bool training);
  bool training() const { return training_; }

  /// Opaque non-parameter state a training checkpoint must capture so a
  /// resumed run is bit-identical — e.g. a dropout layer's RNG stream.
  /// Modules without such state return empty (the default) and are omitted
  /// from checkpoints.
  virtual std::vector<uint8_t> LocalState() const { return {}; }
  /// Restores what LocalState() produced; false rejects malformed bytes.
  virtual bool SetLocalState(const std::vector<uint8_t>& bytes) {
    return bytes.empty();
  }

  /// Non-empty local states of this module tree with dotted path names
  /// (same naming scheme as NamedParameters).
  std::vector<std::pair<std::string, std::vector<uint8_t>>> NamedLocalStates()
      const;
  /// Restores states collected by NamedLocalStates. Unknown names and
  /// malformed payloads are errors (a checkpoint must match its module).
  Status LoadNamedLocalStates(
      const std::vector<std::pair<std::string, std::vector<uint8_t>>>& states);

 protected:
  Module() = default;

  /// Registers `tensor` as a learnable parameter and returns it (with
  /// requires_grad set).
  Tensor RegisterParameter(std::string name, Tensor tensor);

  /// Registers a child module; returns the argument for chaining.
  template <typename M>
  std::shared_ptr<M> RegisterModule(std::string name, std::shared_ptr<M> m) {
    RegisterModuleImpl(std::move(name), m);
    return m;
  }

 private:
  void RegisterModuleImpl(std::string name, std::shared_ptr<Module> m);
  void CollectNamed(const std::string& prefix,
                    std::vector<std::pair<std::string, Tensor>>* out) const;
  void CollectLocalStates(
      const std::string& prefix,
      std::vector<std::pair<std::string, std::vector<uint8_t>>>* out) const;
  /// Dotted name → module for this subtree ("" names this module itself).
  void CollectModules(const std::string& prefix,
                      std::vector<std::pair<std::string, Module*>>* out);

  std::vector<std::pair<std::string, Tensor>> parameters_;
  std::vector<std::pair<std::string, std::shared_ptr<Module>>> children_;
  bool training_ = true;
};

}  // namespace trafficbench::nn

#endif  // TRAFFICBENCH_NN_MODULE_H_
