#ifndef TRAFFICBENCH_NN_LAYERS_H_
#define TRAFFICBENCH_NN_LAYERS_H_

#include <memory>
#include <vector>

#include "src/nn/module.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace trafficbench::nn {

/// Affine map y = x W + b applied to the last axis of an arbitrary-rank
/// input: [..., in] -> [..., out]. Xavier-uniform initialization.
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng* rng,
         bool use_bias = true);

  Tensor Forward(const Tensor& x) const;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [out] (undefined if !use_bias)
};

/// Learnable lookup table: indices -> [len(indices), dim] rows.
class Embedding : public Module {
 public:
  Embedding(int64_t num_embeddings, int64_t dim, Rng* rng);

  /// Returns [indices.size(), dim].
  Tensor Forward(const std::vector<int64_t>& indices) const;

  /// The full table as a tensor [num_embeddings, dim] (differentiable).
  Tensor Table() const { return table_; }

 private:
  Tensor table_;
};

/// Layer normalization over the last axis, with learnable gain and bias.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t dim, float epsilon = 1e-5f);

  Tensor Forward(const Tensor& x) const;

 private:
  int64_t dim_;
  float epsilon_;
  Tensor gain_;
  Tensor bias_;
};

/// Inverted dropout. Identity in eval mode. Holds its own RNG stream so
/// training runs remain deterministic given the seed; the stream is exposed
/// as checkpointable local state so a resumed run draws identical masks.
class Dropout : public Module {
 public:
  Dropout(float rate, uint64_t seed);

  Tensor Forward(const Tensor& x);

  std::vector<uint8_t> LocalState() const override;
  bool SetLocalState(const std::vector<uint8_t>& bytes) override;

 private:
  float rate_;
  Rng rng_;
};

/// Conv2d module over NCHW input (used as a temporal conv with kernel 1xk).
class Conv2dLayer : public Module {
 public:
  Conv2dLayer(int64_t in_channels, int64_t out_channels, int kernel_h,
              int kernel_w, Rng* rng, int stride_h = 1, int stride_w = 1,
              int pad_h = 0, int pad_w = 0, int dil_h = 1, int dil_w = 1,
              bool use_bias = true);

  Tensor Forward(const Tensor& x) const;

 private:
  Tensor weight_;
  Tensor bias_;
  int stride_h_, stride_w_, pad_h_, pad_w_, dil_h_, dil_w_;
};

/// Gated recurrent unit cell: h' = GRU(x, h). Input [B, in], state [B, hidden].
class GRUCell : public Module {
 public:
  GRUCell(int64_t input_size, int64_t hidden_size, Rng* rng);

  Tensor Forward(const Tensor& x, const Tensor& h) const;

  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t hidden_size_;
  std::shared_ptr<Linear> gates_;      // produces [B, 2*hidden] (reset, update)
  std::shared_ptr<Linear> candidate_;  // produces [B, hidden]
};

/// Scaled dot-product attention: softmax(Q K^T / sqrt(d)) V.
/// Q: [..., Lq, d], K: [..., Lk, d], V: [..., Lk, dv] with broadcastable
/// leading axes. Returns [..., Lq, dv].
Tensor ScaledDotProductAttention(const Tensor& q, const Tensor& k,
                                 const Tensor& v);

/// Multi-head attention over the second-to-last axis.
/// Input/output [..., L, dim]; `num_heads` must divide `dim`.
class MultiHeadAttention : public Module {
 public:
  MultiHeadAttention(int64_t dim, int num_heads, Rng* rng);

  /// Self- or cross-attention; query [..., Lq, dim], key/value [..., Lk, dim].
  Tensor Forward(const Tensor& query, const Tensor& key,
                 const Tensor& value) const;

 private:
  int64_t dim_;
  int num_heads_;
  std::shared_ptr<Linear> wq_, wk_, wv_, wo_;
};

}  // namespace trafficbench::nn

#endif  // TRAFFICBENCH_NN_LAYERS_H_
