#ifndef TRAFFICBENCH_EVAL_TRAINER_H_
#define TRAFFICBENCH_EVAL_TRAINER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/eval/metrics.h"
#include "src/exec/execution_context.h"
#include "src/exec/shard.h"
#include "src/models/traffic_model.h"
#include "src/util/status.h"

namespace trafficbench::eval {

/// Gradient-descent training configuration (paper Sec. V: Adam, batch 64,
/// masked-MAE objective; sizes here default to laptop scale).
struct TrainConfig {
  int epochs = 3;
  int64_t batch_size = 16;
  double learning_rate = 2e-3;
  double grad_clip = 5.0;
  /// Caps the number of batches per epoch (0 = use the full train split).
  int64_t max_batches_per_epoch = 0;
  /// Halve-ish the LR every `lr_decay_every` epochs (0 = constant).
  int lr_decay_every = 0;
  double lr_decay = 0.7;
  uint64_t seed = 7;
  bool verbose = false;
  /// When true, masked MAE on the validation split is measured after each
  /// epoch and the best epoch's parameters are restored at the end
  /// (validation-based model selection over the paper's 7:1:2 split).
  bool select_best_on_validation = false;
  /// Validation batches per epoch when selecting on validation.
  int64_t max_val_batches = 8;
  /// Execution context bound around the whole training loop (kernels,
  /// backward passes and optimizer steps). Null keeps the caller's current
  /// context — by default the process-wide serial one.
  exec::ExecutionContext* exec = nullptr;

  // ---- Fault tolerance (guarded loop + checkpoint/resume) ----

  /// Detect non-finite loss/gradients per batch and roll back to the last
  /// good parameter+optimizer snapshot with LR backoff instead of letting a
  /// divergence poison the run. Costs one snapshot copy every
  /// `refresh_snapshot_every` good batches; numerics are untouched when no
  /// fault fires.
  bool guard = true;
  /// Rollback budget; exceeding it aborts training with a non-ok
  /// TrainResult::status ("diverged") instead of looping forever.
  int max_rollbacks = 4;
  /// LR multiplier applied on every rollback (exponential backoff).
  double rollback_lr_backoff = 0.5;
  /// Good batches between refreshes of the rollback snapshot.
  int64_t refresh_snapshot_every = 16;
  /// When non-empty, a TBCKPT2 checkpoint is written here atomically at
  /// epoch boundaries (`checkpoint_every` epochs apart, and always after
  /// the final epoch).
  std::string checkpoint_path;
  int checkpoint_every = 0;  // 0 disables periodic checkpointing
  /// Continue from `checkpoint_path` if it exists; a corrupt checkpoint
  /// fails the run with the loader's diagnostics (callers decide whether to
  /// retrain from scratch). Resumed runs finish bit-identical to
  /// uninterrupted ones.
  bool resume = false;
};

/// What the computation-time experiment (Table III) reports.
struct TrainResult {
  std::vector<double> epoch_losses;
  /// Per-epoch validation masked MAE (only with select_best_on_validation).
  std::vector<double> val_losses;
  /// Epoch whose parameters were kept (-1 when selection is off).
  int best_epoch = -1;
  double seconds_per_epoch = 0.0;
  double total_seconds = 0.0;
  int64_t batches_per_epoch = 0;
  /// Ok unless training aborted: divergence past the rollback budget, or a
  /// corrupt resume checkpoint. Divergence uses StatusCode::kInternal; the
  /// model keeps its last-good parameters either way.
  Status status;
  /// Batches whose loss or gradient norm came back non-finite.
  int64_t nonfinite_batches = 0;
  /// Rollbacks performed (each also backs the LR off).
  int rollbacks = 0;
  /// First epoch actually run (> 0 when resumed from a checkpoint).
  int start_epoch = 0;
};

/// Trains `model` on the dataset's train split with masked MAE in the raw
/// scale. For non-trainable baselines, calls Fit() instead.
TrainResult TrainModel(models::TrafficModel* model,
                       const data::TrafficDataset& dataset,
                       const TrainConfig& config);

/// Data-parallel training across a ShardGroup for the 2k/4k-node profiles.
/// `replicas` holds one identically-constructed model per shard (same
/// ModelContext, same seed — so identical initial parameter bits). Each
/// global batch is split into contiguous micro-batches (ShardGroup::Range);
/// shards forward/backward in parallel on their own ExecutionContext +
/// BufferPool, then gradients are combined with a fixed-order weighted
/// all-reduce (ReduceShardBuffers, ascending shard order, weights
/// micro_count / batch_count) and written into EVERY replica. Each shard
/// then clips and steps its own Adam on identical gradient bits, keeping
/// all replicas bitwise in lockstep — no parameter broadcast is ever
/// needed, and the result is identical whether the shards ran serially or
/// on threads (DESIGN.md §15).
///
/// Honors epochs / batch_size / learning_rate / grad_clip /
/// max_batches_per_epoch / lr_decay* / seed / verbose from `config`. The
/// guarded-loop, checkpoint/resume and validation-selection fields are
/// IGNORED here: the sharded path targets throughput experiments; wrap it
/// with TrainModel on a single shard when those are needed. `config.exec`
/// is also ignored (each shard binds its own context).
TrainResult TrainModelSharded(const std::vector<models::TrafficModel*>& replicas,
                              const data::TrafficDataset& dataset,
                              const TrainConfig& config,
                              exec::ShardGroup& shards);

/// Evaluation options.
struct EvalOptions {
  int64_t batch_size = 32;
  /// Optional per-(step, node) difficult-interval mask over the *series*
  /// (layout [num_steps * num_nodes]); when set, metrics only count target
  /// positions inside the mask (paper Sec. V-B).
  const std::vector<uint8_t>* difficult_mask = nullptr;
  /// Execution context bound around inference (null = current context).
  exec::ExecutionContext* exec = nullptr;
};

/// Per-horizon evaluation report: the paper reports 15/30/60-minute
/// horizons (steps 3, 6 and 12 of the 5-minute grid) plus the average
/// over all 12 steps.
struct HorizonReport {
  MetricValues horizon15;
  MetricValues horizon30;
  MetricValues horizon60;
  MetricValues average;
  double inference_seconds = 0.0;
  /// Windows scored; inference_seconds / windows is the offline per-window
  /// latency, directly comparable with the serving path's request latency.
  int64_t windows = 0;
};

/// Runs the model over samples [begin, end) and aggregates masked metrics
/// in the raw (denormalized) scale.
HorizonReport EvaluateModel(models::TrafficModel* model,
                            const data::TrafficDataset& dataset,
                            int64_t begin, int64_t end,
                            const EvalOptions& options = {});

/// Sharded evaluation: splits [begin, end) into batch-aligned contiguous
/// ranges (ShardGroup::Range with align = options.batch_size), scores each
/// range on its shard's replica in parallel, and merges the per-shard
/// metric accumulators in ascending shard order. Because the ranges are
/// batch-aligned, every shard sees exactly the batches the serial evaluator
/// would have built, so the merged sums match the unsharded report up to
/// the reordering of double-precision additions across shard boundaries.
/// `options.exec` is ignored (each shard binds its own context);
/// inference_seconds is the SUM of per-shard inference time (device-seconds,
/// not wall clock). `replicas` must hold one model per shard with identical
/// parameters.
HorizonReport EvaluateModelSharded(
    const std::vector<models::TrafficModel*>& replicas,
    const data::TrafficDataset& dataset, int64_t begin, int64_t end,
    exec::ShardGroup& shards, const EvalOptions& options = {});

/// Masked MAE at every horizon step 1..T_out over samples [begin, end) —
/// the full error-accumulation curve (the per-horizon slices of the
/// paper's Fig. 1 are points on this curve).
std::vector<double> HorizonCurve(models::TrafficModel* model,
                                 const data::TrafficDataset& dataset,
                                 int64_t begin, int64_t end,
                                 int64_t batch_size = 32);

/// Per-node MAE over samples [begin, end) (for the Fig. 3 case study).
std::vector<double> PerNodeMae(models::TrafficModel* model,
                               const data::TrafficDataset& dataset,
                               int64_t begin, int64_t end,
                               int64_t batch_size = 32);

/// Normalizes raw targets with the dataset scaler (teacher-forcing input).
Tensor NormalizeTargets(const Tensor& raw_targets,
                        const data::ZScoreScaler& scaler);

}  // namespace trafficbench::eval

#endif  // TRAFFICBENCH_EVAL_TRAINER_H_
