#include "src/eval/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/optim/optimizer.h"
#include "src/util/check.h"
#include "src/util/stopwatch.h"

namespace trafficbench::eval {

namespace {

/// Masked MAE over (up to) the first `max_batches` validation batches.
double ValidationLoss(models::TrafficModel* model,
                      const data::TrafficDataset& dataset,
                      const data::DatasetSplits& splits, int64_t batch_size,
                      int64_t max_batches) {
  model->SetTraining(false);
  NoGradGuard no_grad;
  double loss_sum = 0.0;
  int64_t batches = 0;
  for (int64_t base = splits.val_begin;
       base < splits.val_end && batches < max_batches;
       base += batch_size, ++batches) {
    const int64_t stop = std::min(splits.val_end, base + batch_size);
    data::Batch batch =
        dataset.MakeBatch(data::TrafficDataset::MakeIndices(base, stop));
    Tensor prediction = model->Forward(batch.x, Tensor());
    loss_sum += MaskedMaeLoss(dataset.scaler().Denormalize(prediction),
                              batch.y)
                    .Item();
  }
  model->SetTraining(true);
  return batches > 0 ? loss_sum / batches : 0.0;
}

/// Copies the raw values of every parameter (best-epoch snapshot).
std::vector<std::vector<float>> SnapshotParameters(
    const models::TrafficModel& model) {
  std::vector<std::vector<float>> snapshot;
  for (const Tensor& p : model.Parameters()) snapshot.push_back(p.ToVector());
  return snapshot;
}

void RestoreParameters(models::TrafficModel* model,
                       const std::vector<std::vector<float>>& snapshot) {
  auto params = model->Parameters();
  TB_CHECK_EQ(params.size(), snapshot.size());
  for (size_t i = 0; i < params.size(); ++i) {
    std::copy(snapshot[i].begin(), snapshot[i].end(), params[i].data());
  }
}

}  // namespace

Tensor NormalizeTargets(const Tensor& raw_targets,
                        const data::ZScoreScaler& scaler) {
  const float* src = raw_targets.data();
  std::vector<float> out(raw_targets.numel());
  for (int64_t i = 0; i < raw_targets.numel(); ++i) {
    out[i] = scaler.Normalize(src[i]);
  }
  return Tensor::FromVector(raw_targets.shape(), std::move(out));
}

TrainResult TrainModel(models::TrafficModel* model,
                       const data::TrafficDataset& dataset,
                       const TrainConfig& config) {
  TB_CHECK(model != nullptr);
  TrainResult result;
  Stopwatch total_watch;
  // One binding covers forward, backward, clipping and optimizer steps.
  exec::ExecutionContext::Bind bind_exec(config.exec);

  if (!model->IsTrainable()) {
    model->Fit(dataset);
    result.total_seconds = total_watch.ElapsedSeconds();
    return result;
  }

  const data::DatasetSplits splits = dataset.Splits();
  Rng shuffle_rng(config.seed);
  optim::AdamOptions adam_options;
  adam_options.learning_rate = config.learning_rate;
  optim::Adam optimizer(model->Parameters(), adam_options);
  optim::StepLrSchedule schedule(&optimizer,
                                 config.lr_decay_every > 0
                                     ? config.lr_decay_every
                                     : 1000000,
                                 config.lr_decay);

  std::vector<std::vector<float>> best_snapshot;
  model->SetTraining(true);
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    std::vector<int64_t> order = data::TrafficDataset::MakeIndices(
        splits.train_begin, splits.train_end, &shuffle_rng);
    int64_t num_batches =
        (static_cast<int64_t>(order.size()) + config.batch_size - 1) /
        config.batch_size;
    if (config.max_batches_per_epoch > 0) {
      num_batches = std::min(num_batches, config.max_batches_per_epoch);
    }
    result.batches_per_epoch = num_batches;

    double loss_sum = 0.0;
    for (int64_t b = 0; b < num_batches; ++b) {
      const int64_t begin = b * config.batch_size;
      const int64_t end = std::min<int64_t>(begin + config.batch_size,
                                            static_cast<int64_t>(order.size()));
      std::vector<int64_t> indices(order.begin() + begin, order.begin() + end);
      data::Batch batch = dataset.MakeBatch(indices);
      Tensor teacher = NormalizeTargets(batch.y, dataset.scaler());

      optimizer.ZeroGrad();
      Tensor prediction = model->Forward(batch.x, teacher);
      Tensor loss = MaskedMaeLoss(dataset.scaler().Denormalize(prediction),
                                  batch.y);
      loss.Backward();
      optimizer.ClipGradNorm(config.grad_clip);
      optimizer.Step();
      loss_sum += loss.Item();
    }
    const double epoch_loss = loss_sum / std::max<int64_t>(1, num_batches);
    result.epoch_losses.push_back(epoch_loss);
    if (config.select_best_on_validation) {
      const double val_loss = ValidationLoss(model, dataset, splits,
                                             config.batch_size,
                                             config.max_val_batches);
      result.val_losses.push_back(val_loss);
      if (result.best_epoch < 0 ||
          val_loss < result.val_losses[result.best_epoch]) {
        result.best_epoch = epoch;
        best_snapshot = SnapshotParameters(*model);
      }
    }
    schedule.EpochEnd();
    if (config.verbose) {
      std::fprintf(stderr, "  [%s] epoch %d/%d: train masked-MAE %.4f\n",
                   model->name().c_str(), epoch + 1, config.epochs,
                   epoch_loss);
    }
  }
  if (config.select_best_on_validation && !best_snapshot.empty()) {
    RestoreParameters(model, best_snapshot);
  }
  result.total_seconds = total_watch.ElapsedSeconds();
  result.seconds_per_epoch =
      result.total_seconds / std::max(1, config.epochs);
  return result;
}

namespace {

/// Difficult-interval include mask for one batch, aligned to y layout
/// [B, T_out, N]: entry is 1 iff the target's (series step, node) position
/// is marked difficult.
std::vector<uint8_t> BatchIncludeMask(
    const std::vector<int64_t>& sample_indices,
    const data::TrafficDataset& dataset, const std::vector<uint8_t>& mask) {
  const int64_t n = dataset.num_nodes();
  const int64_t t_out = dataset.output_len();
  const int64_t batch = static_cast<int64_t>(sample_indices.size());
  std::vector<uint8_t> include(batch * t_out * n);
  for (int64_t b = 0; b < batch; ++b) {
    const int64_t start = sample_indices[b];
    for (int64_t t = 0; t < t_out; ++t) {
      const int64_t step = start + dataset.input_len() + t;
      for (int64_t i = 0; i < n; ++i) {
        include[(b * t_out + t) * n + i] = mask[step * n + i];
      }
    }
  }
  return include;
}

}  // namespace

HorizonReport EvaluateModel(models::TrafficModel* model,
                            const data::TrafficDataset& dataset,
                            int64_t begin, int64_t end,
                            const EvalOptions& options) {
  TB_CHECK(model != nullptr);
  TB_CHECK_LT(begin, end);
  model->SetTraining(false);
  NoGradGuard no_grad;
  exec::ExecutionContext::Bind bind_exec(options.exec);

  MetricAccumulator acc15, acc30, acc60, acc_all;
  const int64_t n = dataset.num_nodes();
  const int64_t t_out = dataset.output_len();
  // 15/30/60 minutes on the 5-minute grid; clamp for shorter horizons.
  const int64_t step15 = std::min<int64_t>(2, t_out - 1);
  const int64_t step30 = std::min<int64_t>(5, t_out - 1);
  const int64_t step60 = std::min<int64_t>(11, t_out - 1);

  HorizonReport report;
  Stopwatch inference_watch;
  double inference_seconds = 0.0;

  for (int64_t base = begin; base < end; base += options.batch_size) {
    const int64_t stop = std::min(end, base + options.batch_size);
    std::vector<int64_t> indices =
        data::TrafficDataset::MakeIndices(base, stop);
    data::Batch batch = dataset.MakeBatch(indices);

    inference_watch.Reset();
    Tensor prediction = model->Forward(batch.x, Tensor());
    inference_seconds += inference_watch.ElapsedSeconds();

    // Denormalize on raw floats.
    std::vector<float> pred = prediction.ToVector();
    for (float& p : pred) p = dataset.scaler().Denormalize(p);
    const std::vector<float> target = batch.y.ToVector();

    std::vector<uint8_t> include;
    const uint8_t* include_ptr = nullptr;
    if (options.difficult_mask != nullptr) {
      include = BatchIncludeMask(indices, dataset, *options.difficult_mask);
      include_ptr = include.data();
    }

    const int64_t b_count = static_cast<int64_t>(indices.size());
    for (int64_t b = 0; b < b_count; ++b) {
      auto row = [&](int64_t t) { return (b * t_out + t) * n; };
      acc15.Add(pred.data() + row(step15), target.data() + row(step15), n,
                include_ptr ? include_ptr + row(step15) : nullptr);
      acc30.Add(pred.data() + row(step30), target.data() + row(step30), n,
                include_ptr ? include_ptr + row(step30) : nullptr);
      acc60.Add(pred.data() + row(step60), target.data() + row(step60), n,
                include_ptr ? include_ptr + row(step60) : nullptr);
      acc_all.Add(pred.data() + row(0), target.data() + row(0), t_out * n,
                  include_ptr ? include_ptr + row(0) : nullptr);
    }
  }

  report.horizon15 = acc15.Finalize();
  report.horizon30 = acc30.Finalize();
  report.horizon60 = acc60.Finalize();
  report.average = acc_all.Finalize();
  report.inference_seconds = inference_seconds;
  return report;
}

std::vector<double> HorizonCurve(models::TrafficModel* model,
                                 const data::TrafficDataset& dataset,
                                 int64_t begin, int64_t end,
                                 int64_t batch_size) {
  TB_CHECK(model != nullptr);
  TB_CHECK_LT(begin, end);
  model->SetTraining(false);
  NoGradGuard no_grad;
  const int64_t n = dataset.num_nodes();
  const int64_t t_out = dataset.output_len();
  std::vector<double> abs_sum(t_out, 0.0);
  std::vector<int64_t> count(t_out, 0);
  for (int64_t base = begin; base < end; base += batch_size) {
    const int64_t stop = std::min(end, base + batch_size);
    data::Batch batch =
        dataset.MakeBatch(data::TrafficDataset::MakeIndices(base, stop));
    Tensor prediction = model->Forward(batch.x, Tensor());
    const float* pred = prediction.data();
    const float* target = batch.y.data();
    const int64_t b_count = stop - base;
    for (int64_t b = 0; b < b_count; ++b) {
      for (int64_t t = 0; t < t_out; ++t) {
        for (int64_t i = 0; i < n; ++i) {
          const int64_t idx = (b * t_out + t) * n + i;
          if (target[idx] == 0.0f) continue;
          abs_sum[t] += std::fabs(
              dataset.scaler().Denormalize(pred[idx]) - target[idx]);
          ++count[t];
        }
      }
    }
  }
  std::vector<double> curve(t_out, 0.0);
  for (int64_t t = 0; t < t_out; ++t) {
    if (count[t] > 0) curve[t] = abs_sum[t] / static_cast<double>(count[t]);
  }
  return curve;
}

std::vector<double> PerNodeMae(models::TrafficModel* model,
                               const data::TrafficDataset& dataset,
                               int64_t begin, int64_t end,
                               int64_t batch_size) {
  TB_CHECK(model != nullptr);
  model->SetTraining(false);
  NoGradGuard no_grad;
  const int64_t n = dataset.num_nodes();
  const int64_t t_out = dataset.output_len();
  std::vector<double> abs_sum(n, 0.0);
  std::vector<int64_t> count(n, 0);
  for (int64_t base = begin; base < end; base += batch_size) {
    const int64_t stop = std::min(end, base + batch_size);
    std::vector<int64_t> indices =
        data::TrafficDataset::MakeIndices(base, stop);
    data::Batch batch = dataset.MakeBatch(indices);
    Tensor prediction = model->Forward(batch.x, Tensor());
    std::vector<float> pred = prediction.ToVector();
    const std::vector<float> target = batch.y.ToVector();
    for (size_t i = 0; i < pred.size(); ++i) {
      const float t = target[i];
      if (t == 0.0f) continue;
      const int64_t node = static_cast<int64_t>(i) % n;
      abs_sum[node] += std::fabs(dataset.scaler().Denormalize(pred[i]) - t);
      ++count[node];
    }
    (void)t_out;
  }
  std::vector<double> mae(n, 0.0);
  for (int64_t i = 0; i < n; ++i) {
    if (count[i] > 0) mae[i] = abs_sum[i] / static_cast<double>(count[i]);
  }
  return mae;
}

}  // namespace trafficbench::eval
