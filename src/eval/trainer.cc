#include "src/eval/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <memory>
#include <mutex>

#include "src/nn/serialize.h"
#include "src/optim/optimizer.h"
#include "src/util/check.h"
#include "src/util/fault.h"
#include "src/util/stopwatch.h"

namespace trafficbench::eval {

namespace {

/// Masked MAE over (up to) the first `max_batches` validation batches.
double ValidationLoss(models::TrafficModel* model,
                      const data::TrafficDataset& dataset,
                      const data::DatasetSplits& splits, int64_t batch_size,
                      int64_t max_batches) {
  model->SetTraining(false);
  NoGradGuard no_grad;
  double loss_sum = 0.0;
  int64_t batches = 0;
  for (int64_t base = splits.val_begin;
       base < splits.val_end && batches < max_batches;
       base += batch_size, ++batches) {
    const int64_t stop = std::min(splits.val_end, base + batch_size);
    data::Batch batch =
        dataset.MakeBatch(data::TrafficDataset::MakeIndices(base, stop));
    Tensor prediction = model->Forward(batch.x, Tensor());
    loss_sum += MaskedMaeLoss(dataset.scaler().Denormalize(prediction),
                              batch.y)
                    .Item();
  }
  model->SetTraining(true);
  return batches > 0 ? loss_sum / batches : 0.0;
}

/// Copies the raw values of every parameter (best-epoch snapshot).
std::vector<std::vector<float>> SnapshotParameters(
    const models::TrafficModel& model) {
  std::vector<std::vector<float>> snapshot;
  for (const Tensor& p : model.Parameters()) snapshot.push_back(p.ToVector());
  return snapshot;
}

void RestoreParameters(models::TrafficModel* model,
                       const std::vector<std::vector<float>>& snapshot) {
  auto params = model->Parameters();
  TB_CHECK_EQ(params.size(), snapshot.size());
  for (size_t i = 0; i < params.size(); ++i) {
    std::copy(snapshot[i].begin(), snapshot[i].end(), params[i].data());
  }
}

}  // namespace

Tensor NormalizeTargets(const Tensor& raw_targets,
                        const data::ZScoreScaler& scaler) {
  const float* src = raw_targets.data();
  std::vector<float> out(raw_targets.numel());
  for (int64_t i = 0; i < raw_targets.numel(); ++i) {
    out[i] = scaler.Normalize(src[i]);
  }
  return Tensor::FromVector(raw_targets.shape(), std::move(out));
}

namespace {

/// Last-good state the guarded loop rolls back to after a non-finite batch:
/// parameters, optimizer buffers, and the LR in effect when it was taken.
struct GoodState {
  std::vector<std::vector<float>> params;
  optim::OptimizerState optimizer;
  double learning_rate = 0.0;
};

}  // namespace

TrainResult TrainModel(models::TrafficModel* model,
                       const data::TrafficDataset& dataset,
                       const TrainConfig& config) {
  TB_CHECK(model != nullptr);
  TrainResult result;
  Stopwatch total_watch;
  // One binding covers forward, backward, clipping and optimizer steps.
  exec::ExecutionContext::Bind bind_exec(config.exec);

  if (!model->IsTrainable()) {
    model->Fit(dataset);
    result.total_seconds = total_watch.ElapsedSeconds();
    return result;
  }

  const data::DatasetSplits splits = dataset.Splits();
  Rng shuffle_rng(config.seed);
  optim::AdamOptions adam_options;
  adam_options.learning_rate = config.learning_rate;
  optim::Adam optimizer(model->Parameters(), adam_options);
  optim::StepLrSchedule schedule(&optimizer,
                                 config.lr_decay_every > 0
                                     ? config.lr_decay_every
                                     : 1000000,
                                 config.lr_decay);
  FaultInjector& fault = FaultInjector::Global();

  std::vector<std::vector<float>> best_snapshot;
  int start_epoch = 0;

  // ---- Resume: restore model + optimizer + RNG from a TBCKPT2 file so the
  // remaining epochs replay exactly what the uninterrupted run would do.
  if (config.resume && !config.checkpoint_path.empty() &&
      std::filesystem::exists(config.checkpoint_path)) {
    Result<nn::TrainState> loaded =
        nn::LoadTrainCheckpoint(model, config.checkpoint_path);
    if (!loaded.ok()) {
      result.status = loaded.status();
      return result;
    }
    const nn::TrainState& state = loaded.value();
    start_epoch = state.epoch;
    optimizer.set_learning_rate(state.learning_rate);
    Status status = optimizer.SetState(state.optimizer);
    if (status.ok()) status = model->LoadNamedLocalStates(state.module_states);
    if (!status.ok()) {
      result.status = status;
      return result;
    }
    shuffle_rng.SetState(state.shuffle_rng);
    schedule.SetEpoch(state.epoch);
    result.epoch_losses = state.epoch_losses;
    result.val_losses = state.val_losses;
    result.best_epoch = state.best_epoch;
    result.rollbacks = state.rollbacks;
    result.nonfinite_batches = state.nonfinite_batches;
    best_snapshot = state.best_snapshot;
    result.start_epoch = start_epoch;
    if (config.verbose) {
      std::fprintf(stderr, "  [%s] resumed from %s at epoch %d (lr %.2e)\n",
                   model->name().c_str(), config.checkpoint_path.c_str(),
                   start_epoch, state.learning_rate);
    }
  }

  GoodState good;
  const auto capture_good = [&] {
    good.params = SnapshotParameters(*model);
    good.optimizer = optimizer.GetState();
    good.learning_rate = optimizer.learning_rate();
  };
  const auto restore_good = [&] {
    RestoreParameters(model, good.params);
    TB_CHECK_OK(optimizer.SetState(good.optimizer));
    optimizer.set_learning_rate(good.learning_rate);
  };

  const auto save_checkpoint = [&](int completed_epochs) {
    nn::TrainState state;
    state.epoch = completed_epochs;
    state.learning_rate = optimizer.learning_rate();
    state.best_epoch = result.best_epoch;
    state.rollbacks = result.rollbacks;
    state.nonfinite_batches = result.nonfinite_batches;
    state.epoch_losses = result.epoch_losses;
    state.val_losses = result.val_losses;
    state.optimizer = optimizer.GetState();
    state.shuffle_rng = shuffle_rng.GetState();
    state.module_states = model->NamedLocalStates();
    state.best_snapshot = best_snapshot;
    Status status =
        nn::SaveTrainCheckpoint(*model, state, config.checkpoint_path);
    if (!status.ok()) {
      // A failed checkpoint must not kill a healthy run; resume just loses
      // this boundary.
      std::fprintf(stderr, "  [%s] checkpoint failed: %s\n",
                   model->name().c_str(), status.ToString().c_str());
    }
  };

  model->SetTraining(true);
  for (int epoch = start_epoch; epoch < config.epochs; ++epoch) {
    std::vector<int64_t> order = data::TrafficDataset::MakeIndices(
        splits.train_begin, splits.train_end, &shuffle_rng);
    int64_t num_batches =
        (static_cast<int64_t>(order.size()) + config.batch_size - 1) /
        config.batch_size;
    if (config.max_batches_per_epoch > 0) {
      num_batches = std::min(num_batches, config.max_batches_per_epoch);
    }
    result.batches_per_epoch = num_batches;

    if (config.guard) capture_good();
    int64_t good_since_snapshot = 0;
    double loss_sum = 0.0;
    int64_t counted_batches = 0;
    for (int64_t b = 0; b < num_batches; ++b) {
      const int64_t begin = b * config.batch_size;
      const int64_t end = std::min<int64_t>(begin + config.batch_size,
                                            static_cast<int64_t>(order.size()));
      std::vector<int64_t> indices(order.begin() + begin, order.begin() + end);
      data::Batch batch = dataset.MakeBatch(indices);
      Tensor teacher = NormalizeTargets(batch.y, dataset.scaler());

      optimizer.ZeroGrad();
      Tensor prediction = model->Forward(batch.x, teacher);
      Tensor loss = MaskedMaeLoss(dataset.scaler().Denormalize(prediction),
                                  batch.y);
      loss.Backward();

      double loss_value = loss.Item();
      if (fault.Should(FaultSite::kTrainLossNan)) {
        loss_value = std::numeric_limits<double>::quiet_NaN();
      }
      if (fault.Should(FaultSite::kTrainGradNan)) {
        auto params = model->Parameters();
        if (!params.empty() && !params[0].impl()->grad.empty()) {
          params[0].impl()->grad[0] =
              std::numeric_limits<float>::quiet_NaN();
        }
      }
      const double grad_norm = optimizer.ClipGradNorm(config.grad_clip);

      if (config.guard &&
          (!std::isfinite(loss_value) || !std::isfinite(grad_norm))) {
        ++result.nonfinite_batches;
        restore_good();
        if (result.rollbacks >= config.max_rollbacks) {
          result.status = Status::Internal(
              "training diverged: non-finite loss/gradients at epoch " +
              std::to_string(epoch + 1) + " batch " + std::to_string(b + 1) +
              " after " + std::to_string(result.rollbacks) +
              " rollbacks (nonfinite_batches=" +
              std::to_string(result.nonfinite_batches) +
              "); parameters restored to the last good snapshot");
          result.total_seconds = total_watch.ElapsedSeconds();
          result.seconds_per_epoch =
              result.total_seconds /
              std::max(1, epoch + 1 - start_epoch);
          return result;
        }
        ++result.rollbacks;
        const double lr =
            optimizer.learning_rate() * config.rollback_lr_backoff;
        optimizer.set_learning_rate(lr);
        good.learning_rate = lr;  // keep the backoff across rollbacks
        if (config.verbose) {
          std::fprintf(stderr,
                       "  [%s] non-finite batch at epoch %d batch %lld: "
                       "rolled back, lr -> %.2e (rollback %d/%d)\n",
                       model->name().c_str(), epoch + 1,
                       static_cast<long long>(b + 1), lr, result.rollbacks,
                       config.max_rollbacks);
        }
        continue;  // skip the poisoned batch
      }

      optimizer.Step();
      loss_sum += loss_value;
      ++counted_batches;
      if (config.guard &&
          ++good_since_snapshot >= config.refresh_snapshot_every) {
        capture_good();
        good_since_snapshot = 0;
      }
    }
    const double epoch_loss =
        loss_sum / std::max<int64_t>(1, counted_batches);
    result.epoch_losses.push_back(epoch_loss);
    if (config.select_best_on_validation) {
      const double val_loss = ValidationLoss(model, dataset, splits,
                                             config.batch_size,
                                             config.max_val_batches);
      result.val_losses.push_back(val_loss);
      if (result.best_epoch < 0 ||
          val_loss < result.val_losses[result.best_epoch]) {
        result.best_epoch = epoch;
        best_snapshot = SnapshotParameters(*model);
      }
    }
    schedule.EpochEnd();
    if (config.verbose) {
      std::fprintf(stderr, "  [%s] epoch %d/%d: train masked-MAE %.4f\n",
                   model->name().c_str(), epoch + 1, config.epochs,
                   epoch_loss);
    }
    if (!config.checkpoint_path.empty() && config.checkpoint_every > 0 &&
        ((epoch + 1) % config.checkpoint_every == 0 ||
         epoch + 1 == config.epochs)) {
      save_checkpoint(epoch + 1);
    }
    if (fault.Should(FaultSite::kCrash)) {
      throw SimulatedCrash{"epoch " + std::to_string(epoch + 1) + " of " +
                           model->name()};
    }
  }
  if (config.select_best_on_validation && !best_snapshot.empty()) {
    RestoreParameters(model, best_snapshot);
  }
  result.total_seconds = total_watch.ElapsedSeconds();
  result.seconds_per_epoch =
      result.total_seconds /
      std::max(1, config.epochs - start_epoch);
  return result;
}

TrainResult TrainModelSharded(
    const std::vector<models::TrafficModel*>& replicas,
    const data::TrafficDataset& dataset, const TrainConfig& config,
    exec::ShardGroup& shards) {
  const int num_shards = shards.shards();
  TB_CHECK_EQ(static_cast<int>(replicas.size()), num_shards);
  TrainResult result;
  Stopwatch total_watch;

  // Cache the parameter lists once; Parameters() rebuilds the vector but
  // the tensors alias the module parameters, so grads written through these
  // handles are the grads the optimizers step on.
  std::vector<std::vector<Tensor>> params(num_shards);
  for (int s = 0; s < num_shards; ++s) {
    TB_CHECK(replicas[s] != nullptr);
    TB_CHECK(replicas[s]->IsTrainable())
        << replicas[s]->name() << " is not trainable; sharded training only "
        << "covers gradient-descent models";
    params[s] = replicas[s]->Parameters();
    TB_CHECK_EQ(params[s].size(), params[0].size());
    for (size_t i = 0; i < params[s].size(); ++i) {
      TB_CHECK_EQ(params[s][i].numel(), params[0][i].numel())
          << "replica " << s << " disagrees on parameter " << i
          << ": replicas must be built from the same ModelContext and seed";
    }
  }
  const size_t num_params = params[0].size();

  const data::DatasetSplits splits = dataset.Splits();
  Rng shuffle_rng(config.seed);

  // One Adam per shard, stepping its own replica. Identical reduced
  // gradients keep all replicas (and their optimizer moments) in bitwise
  // lockstep, so no parameter broadcast is needed after the initial clone.
  optim::AdamOptions adam_options;
  adam_options.learning_rate = config.learning_rate;
  std::vector<std::unique_ptr<optim::Adam>> optimizers;
  std::vector<std::unique_ptr<optim::StepLrSchedule>> schedules;
  optimizers.reserve(num_shards);
  schedules.reserve(num_shards);
  for (int s = 0; s < num_shards; ++s) {
    optimizers.push_back(
        std::make_unique<optim::Adam>(params[s], adam_options));
    schedules.push_back(std::make_unique<optim::StepLrSchedule>(
        optimizers[s].get(),
        config.lr_decay_every > 0 ? config.lr_decay_every : 1000000,
        config.lr_decay));
  }

  for (models::TrafficModel* replica : replicas) replica->SetTraining(true);

  std::vector<double> micro_loss(num_shards);
  std::vector<int64_t> micro_count(num_shards);
  int64_t max_param = 0;
  for (const Tensor& p : params[0]) {
    max_param = std::max(max_param, p.numel());
  }
  std::vector<float> reduced(max_param);

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    std::vector<int64_t> order = data::TrafficDataset::MakeIndices(
        splits.train_begin, splits.train_end, &shuffle_rng);
    int64_t num_batches =
        (static_cast<int64_t>(order.size()) + config.batch_size - 1) /
        config.batch_size;
    if (config.max_batches_per_epoch > 0) {
      num_batches = std::min(num_batches, config.max_batches_per_epoch);
    }
    result.batches_per_epoch = num_batches;

    double loss_sum = 0.0;
    for (int64_t b = 0; b < num_batches; ++b) {
      const int64_t begin = b * config.batch_size;
      const int64_t end = std::min<int64_t>(
          begin + config.batch_size, static_cast<int64_t>(order.size()));
      const int64_t count = end - begin;

      // Forward/backward the contiguous micro-batches in parallel, one per
      // shard, each on its own ExecutionContext and buffer pool.
      shards.Run([&](int s) {
        const auto [mb, me] = shards.Range(s, count);
        micro_count[s] = me - mb;
        micro_loss[s] = 0.0;
        optimizers[s]->ZeroGrad();
        if (mb >= me) return;
        std::vector<int64_t> indices(order.begin() + begin + mb,
                                     order.begin() + begin + me);
        data::Batch batch = dataset.MakeBatch(indices);
        Tensor teacher = NormalizeTargets(batch.y, dataset.scaler());
        Tensor prediction = replicas[s]->Forward(batch.x, teacher);
        Tensor loss = MaskedMaeLoss(
            dataset.scaler().Denormalize(prediction), batch.y);
        loss.Backward();
        micro_loss[s] = loss.Item();
      });

      // Fixed-order weighted all-reduce on the caller's thread: shard s
      // contributes with weight micro_count / batch_count, accumulated in
      // ascending shard order, and the identical reduced bits are written
      // into every replica's gradients.
      std::vector<float> scales(num_shards);
      double batch_loss = 0.0;
      for (int s = 0; s < num_shards; ++s) {
        scales[s] = static_cast<float>(
            static_cast<double>(micro_count[s]) / static_cast<double>(count));
        batch_loss += (static_cast<double>(micro_count[s]) /
                       static_cast<double>(count)) *
                      micro_loss[s];
      }
      for (size_t i = 0; i < num_params; ++i) {
        const int64_t numel = params[0][i].numel();
        std::vector<const float*> grads(num_shards, nullptr);
        for (int s = 0; s < num_shards; ++s) {
          const std::vector<float>& g = params[s][i].impl()->grad;
          if (!g.empty()) grads[s] = g.data();
        }
        exec::ReduceShardBuffers(grads, scales, numel, reduced.data());
        for (int s = 0; s < num_shards; ++s) {
          params[s][i].impl()->grad.assign(reduced.begin(),
                                           reduced.begin() + numel);
        }
      }

      // Each shard clips and steps on the same gradient bits -> identical
      // clip norms, identical updates, replicas stay in lockstep.
      shards.Run([&](int s) {
        optimizers[s]->ClipGradNorm(config.grad_clip);
        optimizers[s]->Step();
      });
      loss_sum += batch_loss;
    }
    const double epoch_loss =
        loss_sum / std::max<int64_t>(1, num_batches);
    result.epoch_losses.push_back(epoch_loss);
    for (int s = 0; s < num_shards; ++s) schedules[s]->EpochEnd();
    if (config.verbose) {
      std::fprintf(stderr,
                   "  [%s x%d shards] epoch %d/%d: train masked-MAE %.4f\n",
                   replicas[0]->name().c_str(), num_shards, epoch + 1,
                   config.epochs, epoch_loss);
    }
  }

  result.total_seconds = total_watch.ElapsedSeconds();
  result.seconds_per_epoch =
      result.total_seconds / std::max(1, config.epochs);
  return result;
}

namespace {

/// Difficult-interval include mask for one batch, aligned to y layout
/// [B, T_out, N]: entry is 1 iff the target's (series step, node) position
/// is marked difficult.
std::vector<uint8_t> BatchIncludeMask(
    const std::vector<int64_t>& sample_indices,
    const data::TrafficDataset& dataset, const std::vector<uint8_t>& mask) {
  const int64_t n = dataset.num_nodes();
  const int64_t t_out = dataset.output_len();
  const int64_t batch = static_cast<int64_t>(sample_indices.size());
  std::vector<uint8_t> include(batch * t_out * n);
  for (int64_t b = 0; b < batch; ++b) {
    const int64_t start = sample_indices[b];
    for (int64_t t = 0; t < t_out; ++t) {
      const int64_t step = start + dataset.input_len() + t;
      for (int64_t i = 0; i < n; ++i) {
        include[(b * t_out + t) * n + i] = mask[step * n + i];
      }
    }
  }
  return include;
}

/// Per-range evaluation state: the four paper accumulators plus the time
/// spent inside Forward. Mergeable across shards in ascending order.
struct EvalAccumulators {
  MetricAccumulator acc15, acc30, acc60, acc_all;
  double inference_seconds = 0.0;
};

/// Shared core of the serial and sharded evaluators: scores samples
/// [begin, end) on whatever execution context is currently bound and folds
/// the masked errors into `out`. Thread-compatible — concurrent calls must
/// use distinct `out` (the eval fault-injection check is the one shared
/// touch point and is serialized below).
void AccumulateEval(models::TrafficModel* model,
                    const data::TrafficDataset& dataset, int64_t begin,
                    int64_t end, const EvalOptions& options,
                    EvalAccumulators* out) {
  const int64_t n = dataset.num_nodes();
  const int64_t t_out = dataset.output_len();
  // 15/30/60 minutes on the 5-minute grid; clamp for shorter horizons.
  const int64_t step15 = std::min<int64_t>(2, t_out - 1);
  const int64_t step30 = std::min<int64_t>(5, t_out - 1);
  const int64_t step60 = std::min<int64_t>(11, t_out - 1);

  Stopwatch inference_watch;

  for (int64_t base = begin; base < end; base += options.batch_size) {
    const int64_t stop = std::min(end, base + options.batch_size);
    std::vector<int64_t> indices =
        data::TrafficDataset::MakeIndices(base, stop);
    data::Batch batch = dataset.MakeBatch(indices);

    inference_watch.Reset();
    Tensor prediction = model->Forward(batch.x, Tensor());
    out->inference_seconds += inference_watch.ElapsedSeconds();

    // Denormalize on raw floats.
    std::vector<float> pred = prediction.ToVector();
    bool poison = false;
    {
      // The injector is not thread-safe; the sharded evaluator's workers
      // all pass through here (see the note in src/util/fault.h).
      static std::mutex fault_mutex;
      std::lock_guard<std::mutex> lock(fault_mutex);
      poison = FaultInjector::Global().Should(FaultSite::kEvalPredNan);
    }
    if (poison) {
      // Poison a handful of predictions; the masked metrics must skip
      // them rather than let one bad batch turn Table II into NaN.
      const size_t count = std::min<size_t>(pred.size(), 7);
      for (size_t i = 0; i < count; ++i) {
        pred[i] = std::numeric_limits<float>::quiet_NaN();
      }
    }
    for (float& p : pred) p = dataset.scaler().Denormalize(p);
    const std::vector<float> target = batch.y.ToVector();

    std::vector<uint8_t> include;
    const uint8_t* include_ptr = nullptr;
    if (options.difficult_mask != nullptr) {
      include = BatchIncludeMask(indices, dataset, *options.difficult_mask);
      include_ptr = include.data();
    }

    const int64_t b_count = static_cast<int64_t>(indices.size());
    for (int64_t b = 0; b < b_count; ++b) {
      auto row = [&](int64_t t) { return (b * t_out + t) * n; };
      out->acc15.Add(pred.data() + row(step15), target.data() + row(step15),
                     n, include_ptr ? include_ptr + row(step15) : nullptr);
      out->acc30.Add(pred.data() + row(step30), target.data() + row(step30),
                     n, include_ptr ? include_ptr + row(step30) : nullptr);
      out->acc60.Add(pred.data() + row(step60), target.data() + row(step60),
                     n, include_ptr ? include_ptr + row(step60) : nullptr);
      out->acc_all.Add(pred.data() + row(0), target.data() + row(0),
                       t_out * n, include_ptr ? include_ptr + row(0) : nullptr);
    }
  }
}

HorizonReport FinalizeReport(const EvalAccumulators& acc, int64_t windows) {
  HorizonReport report;
  report.horizon15 = acc.acc15.Finalize();
  report.horizon30 = acc.acc30.Finalize();
  report.horizon60 = acc.acc60.Finalize();
  report.average = acc.acc_all.Finalize();
  report.inference_seconds = acc.inference_seconds;
  report.windows = windows;
  return report;
}

}  // namespace

HorizonReport EvaluateModel(models::TrafficModel* model,
                            const data::TrafficDataset& dataset,
                            int64_t begin, int64_t end,
                            const EvalOptions& options) {
  TB_CHECK(model != nullptr);
  TB_CHECK_LT(begin, end);
  model->SetTraining(false);
  NoGradGuard no_grad;
  exec::ExecutionContext::Bind bind_exec(options.exec);

  EvalAccumulators acc;
  AccumulateEval(model, dataset, begin, end, options, &acc);
  return FinalizeReport(acc, end - begin);
}

HorizonReport EvaluateModelSharded(
    const std::vector<models::TrafficModel*>& replicas,
    const data::TrafficDataset& dataset, int64_t begin, int64_t end,
    exec::ShardGroup& shards, const EvalOptions& options) {
  TB_CHECK_EQ(static_cast<int>(replicas.size()), shards.shards());
  TB_CHECK_LT(begin, end);
  for (models::TrafficModel* replica : replicas) {
    TB_CHECK(replica != nullptr);
    replica->SetTraining(false);
  }

  std::vector<EvalAccumulators> accs(replicas.size());
  shards.Run([&](int s) {
    // Grad mode is thread-local: each shard thread needs its own guard.
    NoGradGuard no_grad;
    const auto [rb, re] =
        shards.Range(s, end - begin, options.batch_size);
    if (rb >= re) return;
    AccumulateEval(replicas[s], dataset, begin + rb, begin + re, options,
                   &accs[s]);
  });

  // Ascending-shard-order merge: the report is a pure function of the shard
  // results, independent of thread scheduling.
  EvalAccumulators total;
  for (EvalAccumulators& acc : accs) {
    total.acc15.Merge(acc.acc15);
    total.acc30.Merge(acc.acc30);
    total.acc60.Merge(acc.acc60);
    total.acc_all.Merge(acc.acc_all);
    total.inference_seconds += acc.inference_seconds;
  }
  return FinalizeReport(total, end - begin);
}

std::vector<double> HorizonCurve(models::TrafficModel* model,
                                 const data::TrafficDataset& dataset,
                                 int64_t begin, int64_t end,
                                 int64_t batch_size) {
  TB_CHECK(model != nullptr);
  TB_CHECK_LT(begin, end);
  model->SetTraining(false);
  NoGradGuard no_grad;
  const int64_t n = dataset.num_nodes();
  const int64_t t_out = dataset.output_len();
  std::vector<double> abs_sum(t_out, 0.0);
  std::vector<int64_t> count(t_out, 0);
  for (int64_t base = begin; base < end; base += batch_size) {
    const int64_t stop = std::min(end, base + batch_size);
    data::Batch batch =
        dataset.MakeBatch(data::TrafficDataset::MakeIndices(base, stop));
    Tensor prediction = model->Forward(batch.x, Tensor());
    const float* pred = prediction.data();
    const float* target = batch.y.data();
    const int64_t b_count = stop - base;
    for (int64_t b = 0; b < b_count; ++b) {
      for (int64_t t = 0; t < t_out; ++t) {
        for (int64_t i = 0; i < n; ++i) {
          const int64_t idx = (b * t_out + t) * n + i;
          if (target[idx] == 0.0f) continue;
          abs_sum[t] += std::fabs(
              dataset.scaler().Denormalize(pred[idx]) - target[idx]);
          ++count[t];
        }
      }
    }
  }
  std::vector<double> curve(t_out, 0.0);
  for (int64_t t = 0; t < t_out; ++t) {
    if (count[t] > 0) curve[t] = abs_sum[t] / static_cast<double>(count[t]);
  }
  return curve;
}

std::vector<double> PerNodeMae(models::TrafficModel* model,
                               const data::TrafficDataset& dataset,
                               int64_t begin, int64_t end,
                               int64_t batch_size) {
  TB_CHECK(model != nullptr);
  model->SetTraining(false);
  NoGradGuard no_grad;
  const int64_t n = dataset.num_nodes();
  const int64_t t_out = dataset.output_len();
  std::vector<double> abs_sum(n, 0.0);
  std::vector<int64_t> count(n, 0);
  for (int64_t base = begin; base < end; base += batch_size) {
    const int64_t stop = std::min(end, base + batch_size);
    std::vector<int64_t> indices =
        data::TrafficDataset::MakeIndices(base, stop);
    data::Batch batch = dataset.MakeBatch(indices);
    Tensor prediction = model->Forward(batch.x, Tensor());
    std::vector<float> pred = prediction.ToVector();
    const std::vector<float> target = batch.y.ToVector();
    for (size_t i = 0; i < pred.size(); ++i) {
      const float t = target[i];
      if (t == 0.0f) continue;
      const int64_t node = static_cast<int64_t>(i) % n;
      abs_sum[node] += std::fabs(dataset.scaler().Denormalize(pred[i]) - t);
      ++count[node];
    }
    (void)t_out;
  }
  std::vector<double> mae(n, 0.0);
  for (int64_t i = 0; i < n; ++i) {
    if (count[i] > 0) mae[i] = abs_sum[i] / static_cast<double>(count[i]);
  }
  return mae;
}

}  // namespace trafficbench::eval
