#include "src/eval/metrics.h"

#include <cmath>

#include "src/util/check.h"

namespace trafficbench::eval {

void MetricAccumulator::Add(const float* prediction, const float* target,
                            int64_t count, const uint8_t* include) {
  for (int64_t i = 0; i < count; ++i) {
    const float t = target[i];
    if (t == 0.0f) continue;  // missing reading
    if (include != nullptr && include[i] == 0) continue;
    if (!std::isfinite(t) || !std::isfinite(prediction[i])) continue;
    const double err = static_cast<double>(prediction[i]) - t;
    abs_sum_ += std::fabs(err);
    sq_sum_ += err * err;
    ++count_;
    if (std::fabs(t) >= kMapeTargetFloor) {
      ape_sum_ += std::fabs(err) / std::fabs(t);
      ++ape_count_;
    }
  }
}

void MetricAccumulator::Merge(const MetricAccumulator& other) {
  abs_sum_ += other.abs_sum_;
  sq_sum_ += other.sq_sum_;
  ape_sum_ += other.ape_sum_;
  count_ += other.count_;
  ape_count_ += other.ape_count_;
}

MetricValues MetricAccumulator::Finalize() const {
  MetricValues values;
  values.count = count_;
  if (count_ > 0) {
    values.mae = abs_sum_ / static_cast<double>(count_);
    values.rmse = std::sqrt(sq_sum_ / static_cast<double>(count_));
  }
  if (ape_count_ > 0) {
    values.mape = 100.0 * ape_sum_ / static_cast<double>(ape_count_);
  }
  return values;
}

MetricValues ComputeMetrics(const std::vector<float>& prediction,
                            const std::vector<float>& target) {
  TB_CHECK_EQ(prediction.size(), target.size());
  MetricAccumulator acc;
  acc.Add(prediction.data(), target.data(),
          static_cast<int64_t>(prediction.size()));
  return acc.Finalize();
}

Tensor MaskedMaeLoss(const Tensor& prediction, const Tensor& target) {
  TB_CHECK(prediction.shape() == target.shape())
      << prediction.shape().ToString() << " vs " << target.shape().ToString();
  const float* t = target.data();
  const int64_t n = target.numel();
  std::vector<float> mask(n);
  double mask_sum = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    mask[i] = t[i] != 0.0f ? 1.0f : 0.0f;
    mask_sum += mask[i];
  }
  Tensor mask_tensor = Tensor::FromVector(target.shape(), std::move(mask));
  Tensor diff = (prediction - target.Detach()).Abs() * mask_tensor;
  const float denom = static_cast<float>(std::max(1.0, mask_sum));
  return diff.SumAll() * (1.0f / denom);
}

MeanStd Summarize(const std::vector<double>& values) {
  MeanStd out;
  if (values.empty()) return out;
  double sum = 0.0;
  for (double v : values) sum += v;
  out.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double sq = 0.0;
    for (double v : values) sq += (v - out.mean) * (v - out.mean);
    out.stddev = std::sqrt(sq / static_cast<double>(values.size() - 1));
  }
  return out;
}

}  // namespace trafficbench::eval
