#include "src/eval/difficult_intervals.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace trafficbench::eval {

std::vector<float> MovingStd(const data::TrafficSeries& series,
                             int window_steps) {
  TB_CHECK_GE(window_steps, 2);
  const int64_t steps = series.num_steps;
  const int64_t n = series.num_nodes;
  std::vector<float> out(steps * n, 0.0f);
  for (int64_t node = 0; node < n; ++node) {
    for (int64_t step = 0; step < steps; ++step) {
      const int64_t begin = std::max<int64_t>(0, step - window_steps + 1);
      double sum = 0.0, sq = 0.0;
      int64_t count = 0;
      for (int64_t s = begin; s <= step; ++s) {
        const float v = series.at(s, node);
        if (v == 0.0f) continue;  // missing
        sum += v;
        sq += static_cast<double>(v) * v;
        ++count;
      }
      if (count >= 2) {
        const double mean = sum / count;
        const double var = std::max(0.0, sq / count - mean * mean);
        out[step * n + node] = static_cast<float>(std::sqrt(var));
      }
    }
  }
  return out;
}

std::vector<uint8_t> DifficultMask(const data::TrafficSeries& series,
                                   const DifficultIntervalOptions& options) {
  TB_CHECK(options.top_fraction > 0.0 && options.top_fraction <= 1.0);
  const std::vector<float> stds = MovingStd(series, options.window_steps);
  const int64_t steps = series.num_steps;
  const int64_t n = series.num_nodes;
  std::vector<uint8_t> mask(steps * n, 0);
  std::vector<float> column(steps);
  for (int64_t node = 0; node < n; ++node) {
    for (int64_t step = 0; step < steps; ++step) {
      column[step] = stds[step * n + node];
    }
    // Per-node quantile threshold.
    std::vector<float> sorted = column;
    const int64_t keep = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(options.top_fraction *
                                             static_cast<double>(steps))));
    std::nth_element(sorted.begin(), sorted.end() - keep, sorted.end());
    const float threshold = sorted[steps - keep];
    for (int64_t step = 0; step < steps; ++step) {
      if (column[step] >= threshold && column[step] > 0.0f) {
        mask[step * n + node] = 1;
      }
    }
  }
  return mask;
}

std::vector<uint8_t> IncidentDifficultMask(const data::TrafficSeries& series,
                                           int recovery_pad_steps) {
  TB_CHECK_GE(recovery_pad_steps, 0);
  const int64_t steps = series.num_steps;
  const int64_t n = series.num_nodes;
  std::vector<uint8_t> mask(steps * n, 0);
  for (const data::TrafficIncident& incident : series.incidents) {
    TB_CHECK(incident.node >= 0 && incident.node < n);
    const int64_t begin = std::max<int64_t>(0, incident.onset_step);
    const int64_t end = std::min<int64_t>(
        steps, incident.onset_step + incident.duration + recovery_pad_steps);
    for (int64_t step = begin; step < end; ++step) {
      mask[step * n + incident.node] = 1;
    }
  }
  return mask;
}

double MaskFraction(const std::vector<uint8_t>& mask) {
  if (mask.empty()) return 0.0;
  int64_t set = 0;
  for (uint8_t m : mask) set += m;
  return static_cast<double>(set) / static_cast<double>(mask.size());
}

}  // namespace trafficbench::eval
