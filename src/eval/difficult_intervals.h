#ifndef TRAFFICBENCH_EVAL_DIFFICULT_INTERVALS_H_
#define TRAFFICBENCH_EVAL_DIFFICULT_INTERVALS_H_

#include <cstdint>
#include <vector>

#include "src/data/traffic_simulator.h"

namespace trafficbench::eval {

/// Options for the paper's difficult-interval extraction (Sec. V-B):
/// a moving standard deviation with a 30-minute window (6 five-minute
/// steps), keeping the upper 25% of (step, node) positions.
struct DifficultIntervalOptions {
  int window_steps = 6;
  double top_fraction = 0.25;
};

/// Moving standard deviation of each node's series over a trailing window.
/// Output is [num_steps * num_nodes] row-major, matching the series layout;
/// the first window_steps-1 positions use the partial window. Missing (0)
/// readings inside a window are skipped.
std::vector<float> MovingStd(const data::TrafficSeries& series,
                             int window_steps);

/// Per-(step, node) mask (1 = difficult) selecting positions whose moving
/// std is in the upper `top_fraction` quantile, computed per node so every
/// road contributes its own most volatile intervals.
std::vector<uint8_t> DifficultMask(const data::TrafficSeries& series,
                                   const DifficultIntervalOptions& options);

/// Fraction of mask entries set (for sanity checks and reports).
double MaskFraction(const std::vector<uint8_t>& mask);

/// Ground-truth difficult-interval mask from the series' incident log
/// (TrafficSeries::incidents): marks [onset, onset + duration +
/// recovery_pad_steps) at each incident's epicentre node. Where the
/// simulator's moving-std mask *estimates* volatility post hoc, this one is
/// exact — a position is difficult iff an abrupt event was acting on it.
/// The scenario engine builds its own spatially-spread variant on top
/// (affected nodes within a hop radius); this helper covers the simulator's
/// point incidents.
std::vector<uint8_t> IncidentDifficultMask(const data::TrafficSeries& series,
                                           int recovery_pad_steps = 6);

}  // namespace trafficbench::eval

#endif  // TRAFFICBENCH_EVAL_DIFFICULT_INTERVALS_H_
