#ifndef TRAFFICBENCH_EVAL_METRICS_H_
#define TRAFFICBENCH_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.h"

namespace trafficbench::eval {

/// Targets with |t| below this floor are excluded from MAPE (but still
/// count toward MAE/RMSE). Near-zero speeds/flows would otherwise blow the
/// relative error up without bound — the paper-standard masking used by the
/// DCRNN / Graph-WaveNet reference implementations.
inline constexpr float kMapeTargetFloor = 1.0f;

/// The paper's three accuracy metrics. All are "masked": target entries
/// equal to 0 mark missing readings (PeMS convention) and are skipped, as
/// is any non-finite prediction/target pair; MAPE additionally skips
/// targets below kMapeTargetFloor to stay finite.
struct MetricValues {
  double mae = 0.0;
  double rmse = 0.0;
  double mape = 0.0;  // in percent
  int64_t count = 0;  // observations that entered the metrics
};

/// Accumulates masked errors across batches, then finalizes.
class MetricAccumulator {
 public:
  /// Adds |values| prediction/target pairs; an optional `include` mask of
  /// the same length further restricts which entries count (used for the
  /// difficult-interval experiment).
  void Add(const float* prediction, const float* target, int64_t count,
           const uint8_t* include = nullptr);

  /// Folds another accumulator's sums into this one. Merging per-shard
  /// accumulators in ascending shard order is how the sharded evaluator
  /// keeps its report a pure function of the shard results (DESIGN.md §15).
  void Merge(const MetricAccumulator& other);

  MetricValues Finalize() const;

 private:
  double abs_sum_ = 0.0;
  double sq_sum_ = 0.0;
  double ape_sum_ = 0.0;
  int64_t count_ = 0;
  int64_t ape_count_ = 0;
};

/// One-shot convenience over flat vectors (must be equal length).
MetricValues ComputeMetrics(const std::vector<float>& prediction,
                            const std::vector<float>& target);

/// Masked mean-absolute-error training loss in the *denormalized* scale,
/// as used by DCRNN / Graph-WaveNet reference implementations:
///   loss = sum(|pred - target| * mask) / max(1, sum(mask)),
/// with mask = [target != 0]. `prediction` and `target` must have equal
/// shapes; `target` is a constant (no gradient flows into it).
Tensor MaskedMaeLoss(const Tensor& prediction, const Tensor& target);

/// Mean and sample standard deviation of repeated-trial results.
struct MeanStd {
  double mean = 0.0;
  double stddev = 0.0;
};
MeanStd Summarize(const std::vector<double>& values);

}  // namespace trafficbench::eval

#endif  // TRAFFICBENCH_EVAL_METRICS_H_
