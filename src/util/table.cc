#include "src/util/table.h"

#include <cstdio>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "src/util/check.h"

namespace trafficbench {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  TB_CHECK(!header_.empty());
}

void Table::AddRow(std::vector<std::string> row) {
  TB_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " ") << std::left << std::setw(static_cast<int>(widths[c]))
          << row[c] << " |";
    }
    out << "\n";
  };
  emit_row(header_);
  for (size_t c = 0; c < header_.size(); ++c) {
    out << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

namespace {
std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += "\"";
  return out;
}
}  // namespace

std::string Table::ToCsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ",";
      out << CsvEscape(row[c]);
    }
    out << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string Table::Num(double value, int decimals) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(decimals) << value;
  return out.str();
}

std::string Table::MeanStd(double mean, double std, int decimals) {
  return Num(mean, decimals) + " ± " + Num(std, decimals);
}

bool WriteFileOrWarn(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: could not open %s for writing\n",
                 path.c_str());
    return false;
  }
  out << contents;
  return static_cast<bool>(out);
}

}  // namespace trafficbench
