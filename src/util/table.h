#ifndef TRAFFICBENCH_UTIL_TABLE_H_
#define TRAFFICBENCH_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace trafficbench {

/// Plain-text table renderer used by the experiment binaries to print the
/// paper's tables/figures as aligned rows, plus CSV export for plotting.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Number of data rows (excluding the header).
  size_t num_rows() const { return rows_.size(); }

  /// Renders an ASCII table with a separator under the header.
  std::string ToString() const;

  /// Renders RFC-4180-ish CSV (fields quoted when they contain , " or \n).
  std::string ToCsv() const;

  /// Formats a double with the given number of decimals.
  static std::string Num(double value, int decimals = 2);

  /// Formats "mean ± std".
  static std::string MeanStd(double mean, double std, int decimals = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes `contents` to `path`, returning false (and logging) on failure.
bool WriteFileOrWarn(const std::string& path, const std::string& contents);

}  // namespace trafficbench

#endif  // TRAFFICBENCH_UTIL_TABLE_H_
