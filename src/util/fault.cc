#include "src/util/fault.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "src/util/check.h"

namespace trafficbench {

namespace {

const char* const kSiteNames[kNumFaultSites] = {
    "train_loss",    "train_grad", "eval_pred", "ckpt_short_write",
    "ckpt_bit_flip", "io_open",    "io_write",  "crash",
    "serve_slow_worker", "plan_compile", "precision_verify",
    "degrade_ladder", "halo_exchange", "scenario_route",
};

bool SiteByName(const std::string& name, FaultSite* out) {
  for (int i = 0; i < kNumFaultSites; ++i) {
    if (name == kSiteNames[i]) {
      *out = static_cast<FaultSite>(i);
      return true;
    }
  }
  return false;
}

bool ParseDoubleStrict(const std::string& text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return !text.empty() && end != nullptr && *end == '\0';
}

bool ParseInt64Strict(const std::string& text, int64_t* out) {
  char* end = nullptr;
  *out = std::strtoll(text.c_str(), &end, 10);
  return !text.empty() && end != nullptr && *end == '\0';
}

}  // namespace

const char* FaultInjector::SiteName(FaultSite site) {
  const int index = static_cast<int>(site);
  TB_CHECK(index >= 0 && index < kNumFaultSites);
  return kSiteNames[index];
}

Result<FaultInjector> FaultInjector::Parse(const std::string& spec) {
  FaultInjector injector;
  if (spec.empty()) return injector;

  std::istringstream stream(spec);
  std::string clause;
  while (std::getline(stream, clause, ',')) {
    if (clause.empty()) continue;
    const size_t eq = clause.find('=');
    const size_t at = clause.find('@');
    if (eq != std::string::npos && clause.substr(0, eq) == "seed") {
      int64_t seed = 0;
      if (!ParseInt64Strict(clause.substr(eq + 1), &seed)) {
        return Status::InvalidArgument("TB_FAULT: bad seed in '" + clause +
                                       "'");
      }
      injector.seed_ = static_cast<uint64_t>(seed);
      continue;
    }
    FaultSite site;
    if (at != std::string::npos) {
      if (!SiteByName(clause.substr(0, at), &site)) {
        return Status::InvalidArgument("TB_FAULT: unknown site in '" + clause +
                                       "'");
      }
      int64_t n = 0;
      if (!ParseInt64Strict(clause.substr(at + 1), &n) || n < 1) {
        return Status::InvalidArgument(
            "TB_FAULT: '" + clause + "' needs a 1-based call index after @");
      }
      injector.sites_[static_cast<int>(site)].fire_at = n;
    } else if (eq != std::string::npos) {
      if (!SiteByName(clause.substr(0, eq), &site)) {
        return Status::InvalidArgument("TB_FAULT: unknown site in '" + clause +
                                       "'");
      }
      double p = 0.0;
      if (!ParseDoubleStrict(clause.substr(eq + 1), &p) || p < 0.0 ||
          p > 1.0) {
        return Status::InvalidArgument(
            "TB_FAULT: '" + clause + "' needs a probability in [0, 1]");
      }
      injector.sites_[static_cast<int>(site)].probability = p;
    } else {
      return Status::InvalidArgument(
          "TB_FAULT: clause '" + clause +
          "' must be seed=N, <site>=<prob> or <site>@<n>");
    }
    injector.enabled_ = true;
  }
  return injector;
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* global = [] {
    const char* spec = std::getenv("TB_FAULT");
    Result<FaultInjector> parsed =
        FaultInjector::Parse(spec != nullptr ? spec : "");
    TB_CHECK(parsed.ok()) << parsed.status().ToString();
    return new FaultInjector(std::move(parsed).value());
  }();
  return *global;
}

void FaultInjector::SetGlobal(FaultInjector injector) {
  Global() = std::move(injector);
}

bool FaultInjector::Should(FaultSite site) {
  if (!enabled_) return false;
  SiteState& state = sites_[static_cast<int>(site)];
  ++state.calls;
  bool fire = false;
  if (state.fire_at > 0 && state.calls == state.fire_at) fire = true;
  if (!fire && state.probability > 0.0) {
    if (!state.rng.has_value()) {
      // One independent stream per site so adding a site never perturbs
      // another site's decision sequence.
      state.rng.emplace(seed_ ^ (0x9e3779b97f4a7c15ULL *
                                 (static_cast<uint64_t>(site) + 1)));
    }
    fire = state.rng->Bernoulli(state.probability);
  }
  if (fire) ++state.fired;
  return fire;
}

int64_t FaultInjector::calls(FaultSite site) const {
  return sites_[static_cast<int>(site)].calls;
}

int64_t FaultInjector::fired(FaultSite site) const {
  return sites_[static_cast<int>(site)].fired;
}

}  // namespace trafficbench
