#ifndef TRAFFICBENCH_UTIL_CRC32_H_
#define TRAFFICBENCH_UTIL_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace trafficbench {

namespace internal_crc32 {

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace internal_crc32

/// CRC-32 (IEEE 802.3, the zlib polynomial) over a byte range. Used as the
/// integrity footer of TBCKPT2 checkpoints so bit flips and torn writes are
/// rejected at load time instead of silently corrupting a resumed run.
inline uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = internal_crc32::kTable[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace trafficbench

#endif  // TRAFFICBENCH_UTIL_CRC32_H_
