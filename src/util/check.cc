#include "src/util/check.h"

namespace trafficbench::internal_check {

void FailCheck(const char* file, int line, const char* expr,
               const std::string& message) {
  std::ostringstream out;
  out << "TB_CHECK failed at " << file << ":" << line << ": " << expr;
  if (!message.empty()) out << " — " << message;
  throw CheckError(out.str());
}

}  // namespace trafficbench::internal_check
