#ifndef TRAFFICBENCH_UTIL_FAULT_H_
#define TRAFFICBENCH_UTIL_FAULT_H_

// Deterministic fault injection. Long-running sweeps must survive NaN
// blow-ups, torn checkpoint writes and I/O failures; this harness makes
// those events reproducible so every recovery path is exercised by tests
// (tests/fault_tolerance_test.cc) instead of trusted.
//
// Faults are described by a spec string, e.g.
//
//   TB_FAULT="seed=7,train_loss=0.05,ckpt_bit_flip@1,crash@3"
//
// Clauses are comma-separated:
//   seed=N         seeds the per-site random streams (default 7)
//   <site>=<p>     the site fires with probability p per call, drawn from a
//                  deterministic seeded stream (p in [0, 1])
//   <site>@<n>     the site fires exactly once, on its n-th call (1-based)
//
// Sites (each named after the code path it corrupts):
//   train_loss       poison one training batch's loss with NaN
//   train_grad       poison one gradient buffer with NaN
//   eval_pred        poison evaluation predictions with NaN
//   ckpt_short_write truncate a checkpoint payload before commit
//   ckpt_bit_flip    flip one byte of a checkpoint payload
//   io_open          fail opening a file (reads and writes)
//   io_write         fail a write mid-stream
//   crash            simulated hard kill at a checkpoint boundary
//   serve_slow_worker stall one serving worker before it runs a micro-batch
//                    (latency-SLO metrics must observe it; results must not)
//   plan_compile     fail compiling an inference plan at model-load time
//                    (the registry must fall back to the eager forward)
//   precision_verify corrupt a packed reduced-precision weight panel at
//                    plan-compile time (the epsilon verification must
//                    reject the plan and walk the downgrade ladder
//                    reduced-precision -> fp32 plan -> eager)
//   degrade_ladder   force one submit's admission decision to the cache
//                    tier and corrupt the cache's most-recent entry (the
//                    checksum must detect the poisoned entry and the
//                    ladder must fall through to the tier-2 baseline
//                    instead of serving the corrupted prediction)
//   halo_exchange    corrupt one partition's halo gather buffer during
//                    partitioned SpMM (the halo verifier must detect the
//                    mismatch and fall back to the monolithic SpMM path,
//                    keeping results bit-identical)
//   scenario_route   corrupt one origin's routing table (shortest-path
//                    distance entry) in the scenario engine's assignment
//                    sweep (the path-cost invariant check must detect the
//                    violated relaxation and recompute that origin from
//                    scratch, keeping the emitted series bit-identical)

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "src/util/rng.h"
#include "src/util/status.h"

namespace trafficbench {

enum class FaultSite : int {
  kTrainLossNan = 0,
  kTrainGradNan,
  kEvalPredNan,
  kCkptShortWrite,
  kCkptBitFlip,
  kIoOpenFail,
  kIoWriteFail,
  kCrash,
  kServeSlowWorker,
  kPlanCompile,
  kPrecisionVerify,
  kDegradeLadder,
  kHaloExchange,
  kScenarioRoute,
};

inline constexpr int kNumFaultSites = 14;

/// Thrown when the "crash" site fires: simulates a hard kill at the point of
/// injection. Deliberately NOT derived from std::exception so that generic
/// error handlers cannot swallow it — like a real SIGKILL, only the
/// on-disk checkpoints survive it.
struct SimulatedCrash {
  std::string where;
};

/// Seeded, spec-driven fault injector. A default-constructed injector is
/// disabled and never fires; Should() then costs one branch. Not
/// thread-safe — call only from the orchestration thread (trainer,
/// serializer, experiment harness), never from kernel workers. Three
/// exceptions serialize their Should() calls through their own mutex: the
/// serving layer's workers (see src/serve/server.cc), the partitioned
/// SpMM driver's halo-exchange tasks (see src/tensor/partitioned.cc), and
/// the sharded evaluator's per-shard workers (see src/eval/trainer.cc).
class FaultInjector {
 public:
  FaultInjector() = default;

  /// Parses a spec string (see file header). Empty spec → disabled injector.
  static Result<FaultInjector> Parse(const std::string& spec);

  /// Process-wide injector, configured once from $TB_FAULT (a malformed
  /// spec aborts at first use with the parse error — fail fast, not
  /// mid-sweep). Tests replace it with SetGlobal().
  static FaultInjector& Global();
  static void SetGlobal(FaultInjector injector);

  bool enabled() const { return enabled_; }

  /// True when the fault at `site` fires now. Advances that site's call
  /// counter (and its random stream when probability-driven), so the
  /// decision sequence is a pure function of the spec.
  bool Should(FaultSite site);

  /// Observability for tests and the experiment harness.
  int64_t calls(FaultSite site) const;
  int64_t fired(FaultSite site) const;

  /// Spec token of a site, e.g. "train_loss".
  static const char* SiteName(FaultSite site);

 private:
  struct SiteState {
    double probability = 0.0;
    int64_t fire_at = 0;  // 1-based call index; 0 = not armed
    int64_t calls = 0;
    int64_t fired = 0;
    std::optional<Rng> rng;
  };

  bool enabled_ = false;
  uint64_t seed_ = 7;
  std::array<SiteState, kNumFaultSites> sites_;
};

}  // namespace trafficbench

#endif  // TRAFFICBENCH_UTIL_FAULT_H_
