#include "src/util/fileio.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/util/fault.h"

namespace trafficbench {

Result<std::string> ReadFileToString(const std::string& path) {
  if (FaultInjector::Global().Should(FaultSite::kIoOpenFail)) {
    return Status::IoError("injected open failure reading " + path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("failed reading " + path);
  return std::move(buffer).str();
}

Status WriteFileAtomic(const std::string& path, const std::string& payload) {
  FaultInjector& fault = FaultInjector::Global();
  if (fault.Should(FaultSite::kIoOpenFail)) {
    return Status::IoError("injected open failure writing " + path);
  }

  std::string bytes = payload;
  if (fault.Should(FaultSite::kCkptShortWrite)) {
    // Torn write: the tail is lost but the rename still lands, so the
    // loader must detect the truncation.
    bytes.resize(bytes.size() - std::min<size_t>(bytes.size(), 13));
  }
  if (fault.Should(FaultSite::kCkptBitFlip) && !bytes.empty()) {
    bytes[bytes.size() / 2] ^= 0x20;
  }

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open " + tmp + " for writing");
    if (fault.Should(FaultSite::kIoWriteFail)) {
      out.write(bytes.data(),
                static_cast<std::streamsize>(bytes.size() / 2));
      out.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return Status::IoError("injected write failure on " + tmp);
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return Status::IoError("failed writing " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return Status::IoError("cannot rename " + tmp + " to " + path + ": " +
                           ec.message());
  }
  return Status::Ok();
}

}  // namespace trafficbench
