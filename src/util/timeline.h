#ifndef TRAFFICBENCH_UTIL_TIMELINE_H_
#define TRAFFICBENCH_UTIL_TIMELINE_H_

// Seeded event-timeline primitives shared by every component that shapes a
// rate or severity over time: the serving layer's arrival traces
// (src/serve/arrival.cc) and the scenario engine's demand profiles and
// disruption envelopes (src/scenario/). Both used to implement these
// ad-hoc; a single set of pure functions keeps the two from drifting —
// serve-bench's "diurnal" arrival trace and the routing engine's diurnal
// demand profile are literally the same curve.

#include <cstdint>
#include <functional>
#include <vector>

namespace trafficbench::util {

/// Square wave over a normalized axis u in [0, 1): `cycles` periods, the
/// first `duty` fraction of each period at `hi`, the rest at `lo`.
double SquareWave(double u, double cycles, double duty, double hi, double lo);

/// Unnormalized Gaussian bump exp(-((u - center) / width)^2); the building
/// block of every rush-hour-shaped profile in the repo.
double GaussianPeak(double u, double center, double width);

/// `hi` inside [begin, end), `lo` elsewhere — a single flat spike.
double Window(double u, double begin, double end, double hi, double lo);

/// Onset/hold/recovery envelope in [0, 1] on a discrete step axis: 0 before
/// `start`, a linear ramp reaching 1 after `onset_steps` (>= 1), full
/// severity for `duration` steps, then exponential decay with time constant
/// `recovery_steps`. This is the temporal shape of both the simulator's
/// incidents and the scenario engine's scripted disruptions.
double PulseEnvelope(int64_t step, int64_t start, int64_t onset_steps,
                     int64_t duration, int64_t recovery_steps);

/// Arrival times (seconds from stream start) for `n` requests with mean
/// rate `base_rate`, shaped by `rate_multiplier` over run progress u = i/n.
/// The first request fires at t = 0; the multiplier at progress u shapes
/// the gap *after* request i. When `jitter` > 0 each gap is scaled by a
/// seeded Uniform(1 - jitter, 1 + jitter) draw; jitter == 0 draws nothing,
/// so a flat profile stays exactly periodic. Strictly nondecreasing and a
/// pure function of its arguments.
std::vector<double> ProfiledArrivalTimes(
    const std::function<double(double)>& rate_multiplier, double base_rate,
    int64_t n, uint64_t seed, double jitter);

}  // namespace trafficbench::util

#endif  // TRAFFICBENCH_UTIL_TIMELINE_H_
