#ifndef TRAFFICBENCH_UTIL_STATUS_H_
#define TRAFFICBENCH_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace trafficbench {

/// Error codes for recoverable failures (I/O, configuration, parsing).
/// Contract violations use the TB_CHECK macros instead (see check.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kIoError,
  kInternal,
  /// A bounded resource (e.g. the serving request queue) is full; the
  /// caller should back off and retry. Used for load shedding.
  kResourceExhausted,
};

/// A lightweight status object in the RocksDB / Abseil style: cheap to pass
/// by value, carries a code and a human-readable message on failure.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders e.g. "InvalidArgument: bad shape" or "OK".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value or an error status. Minimal analogue of absl::StatusOr.
template <typename T>
class Result {
 public:
  /// Implicit from value and from Status so call sites can `return value;`
  /// or `return Status::...;` directly.
  Result(T value) : status_(Status::Ok()), value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Requires ok(); accessing the value of a failed Result is a
  /// programming error (optional engagement is checked in debug builds).
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace trafficbench

#endif  // TRAFFICBENCH_UTIL_STATUS_H_
