#ifndef TRAFFICBENCH_UTIL_RNG_H_
#define TRAFFICBENCH_UTIL_RNG_H_

#include <array>
#include <cstdint>
#include <vector>

namespace trafficbench {

/// Complete serializable state of an Rng — what a training checkpoint must
/// capture so a resumed run draws the exact same stream it would have drawn
/// uninterrupted.
struct RngState {
  std::array<uint64_t, 4> s{};
  bool has_cached_normal = false;
  double cached_normal = 0.0;
};

/// Deterministic, fast pseudo-random generator (xoshiro256**), seeded via
/// SplitMix64. Every stochastic component in the library takes one of these
/// explicitly, so experiments are reproducible bit-for-bit across runs.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, 1).
  double Uniform();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box–Muller (cached second value).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli draw with probability p of returning true.
  bool Bernoulli(double p);

  /// Exponential with the given rate (mean 1/rate).
  double Exponential(double rate);

  /// Poisson-distributed count (Knuth's method; fine for small means).
  int Poisson(double mean);

  /// In-place Fisher–Yates shuffle of indices.
  void Shuffle(std::vector<int64_t>* values);

  /// Forks an independent stream (useful to give each component its own
  /// generator derived from one experiment seed).
  Rng Fork();

  /// Snapshot/restore of the full generator state (checkpoint/resume).
  RngState GetState() const;
  void SetState(const RngState& state);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace trafficbench

#endif  // TRAFFICBENCH_UTIL_RNG_H_
