#include "src/util/timeline.h"

#include <cmath>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace trafficbench::util {

double SquareWave(double u, double cycles, double duty, double hi, double lo) {
  const double phase = u * cycles - std::floor(u * cycles);
  return phase < duty ? hi : lo;
}

double GaussianPeak(double u, double center, double width) {
  const double d = (u - center) / width;
  return std::exp(-d * d);
}

double Window(double u, double begin, double end, double hi, double lo) {
  return (u >= begin && u < end) ? hi : lo;
}

double PulseEnvelope(int64_t step, int64_t start, int64_t onset_steps,
                     int64_t duration, int64_t recovery_steps) {
  if (step < start) return 0.0;
  const int64_t since = step - start;
  if (since < duration) {
    // Sharp onset: full severity after `onset_steps` steps.
    return std::min(1.0, static_cast<double>(since + 1) /
                             static_cast<double>(std::max<int64_t>(1, onset_steps)));
  }
  const double past = static_cast<double>(since - duration);
  return std::exp(-past / static_cast<double>(std::max<int64_t>(1, recovery_steps)));
}

std::vector<double> ProfiledArrivalTimes(
    const std::function<double(double)>& rate_multiplier, double base_rate,
    int64_t n, uint64_t seed, double jitter) {
  TB_CHECK_GT(base_rate, 0.0);
  TB_CHECK_GE(n, 0);
  Rng rng(seed);
  std::vector<double> times;
  times.reserve(static_cast<size_t>(n));
  double t = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double u = n > 0 ? static_cast<double>(i) / static_cast<double>(n)
                           : 0.0;
    const double rate = base_rate * rate_multiplier(u);
    times.push_back(t);
    double scale = 1.0;
    if (jitter > 0.0) scale = rng.Uniform(1.0 - jitter, 1.0 + jitter);
    t += scale / rate;
  }
  return times;
}

}  // namespace trafficbench::util
