#ifndef TRAFFICBENCH_UTIL_FILEIO_H_
#define TRAFFICBENCH_UTIL_FILEIO_H_

#include <string>

#include "src/util/status.h"

namespace trafficbench {

/// Reads a whole file into a byte string. Honors the io_open fault site.
Result<std::string> ReadFileToString(const std::string& path);

/// Crash-safe file write: the payload goes to `path + ".tmp"` first and is
/// renamed over `path` only after the stream is flushed and closed, so a
/// kill mid-write can never leave a half-written file under the final name.
///
/// Honors the fault sites io_open, io_write (the write fails cleanly; the
/// tmp file is removed) and ckpt_short_write / ckpt_bit_flip (the payload
/// is corrupted *before* the rename, simulating torn or bit-rotted storage
/// that the loader's validation must catch).
Status WriteFileAtomic(const std::string& path, const std::string& payload);

}  // namespace trafficbench

#endif  // TRAFFICBENCH_UTIL_FILEIO_H_
