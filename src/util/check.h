#ifndef TRAFFICBENCH_UTIL_CHECK_H_
#define TRAFFICBENCH_UTIL_CHECK_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace trafficbench::internal_check {

/// Thrown by TB_CHECK failures. Using an exception (rather than abort) keeps
/// contract violations unit-testable without death tests.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] void FailCheck(const char* file, int line, const char* expr,
                            const std::string& message);

/// Stream-style message collector used by the TB_CHECK macros. Constructed
/// only on the failure path; its destructor throws CheckError.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  ~CheckMessageBuilder() noexcept(false) {
    FailCheck(file_, line_, expr_, stream_.str());
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

/// Swallows the CheckMessageBuilder so the ternary in TB_CHECK has type void.
/// operator& binds looser than operator<<, so the whole message chain runs
/// before the builder is destroyed (and throws).
struct Voidify {
  void operator&(const CheckMessageBuilder&) {}
};

}  // namespace trafficbench::internal_check

/// Contract-violation check: TB_CHECK(cond) << "extra context";
/// Throws trafficbench::internal_check::CheckError when `cond` is false.
#define TB_CHECK(cond)                                     \
  (cond) ? (void)0                                         \
         : ::trafficbench::internal_check::Voidify() &     \
               ::trafficbench::internal_check::CheckMessageBuilder( \
                   __FILE__, __LINE__, #cond)

#define TB_CHECK_EQ(a, b) TB_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define TB_CHECK_NE(a, b) TB_CHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ") "
#define TB_CHECK_LT(a, b) TB_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define TB_CHECK_LE(a, b) TB_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define TB_CHECK_GT(a, b) TB_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define TB_CHECK_GE(a, b) TB_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

/// Checks that a Status-returning expression succeeded.
#define TB_CHECK_OK(expr)                                 \
  do {                                                    \
    const ::trafficbench::Status _tb_status = (expr);     \
    TB_CHECK(_tb_status.ok()) << _tb_status.ToString();   \
  } while (false)

#endif  // TRAFFICBENCH_UTIL_CHECK_H_
