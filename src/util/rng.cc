#include "src/util/rng.h"

#include <cmath>

#include "src/util/check.h"

namespace trafficbench {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits → double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  TB_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t value = NextUint64();
  while (value >= limit) value = NextUint64();
  return value % n;
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

double Rng::Exponential(double rate) {
  TB_CHECK_GT(rate, 0.0);
  double u = Uniform();
  while (u <= 1e-300) u = Uniform();
  return -std::log(u) / rate;
}

int Rng::Poisson(double mean) {
  TB_CHECK_GE(mean, 0.0);
  const double limit = std::exp(-mean);
  double product = Uniform();
  int count = 0;
  while (product > limit) {
    ++count;
    product *= Uniform();
  }
  return count;
}

void Rng::Shuffle(std::vector<int64_t>* values) {
  TB_CHECK(values != nullptr);
  for (size_t i = values->size(); i > 1; --i) {
    const size_t j = static_cast<size_t>(UniformInt(i));
    std::swap((*values)[i - 1], (*values)[j]);
  }
}

Rng Rng::Fork() { return Rng(NextUint64()); }

RngState Rng::GetState() const {
  RngState state;
  for (int i = 0; i < 4; ++i) state.s[i] = state_[i];
  state.has_cached_normal = has_cached_normal_;
  state.cached_normal = cached_normal_;
  return state;
}

void Rng::SetState(const RngState& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.s[i];
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

}  // namespace trafficbench
