#ifndef TRAFFICBENCH_PLAN_PLAN_H_
#define TRAFFICBENCH_PLAN_PLAN_H_

// Compiled inference plans (DESIGN.md §12).
//
// An InferencePlan is the static form of one traced forward pass: a
// topologically-ordered list of replay closures wired to *slots* instead of
// tensors. Slots come in three kinds — the plan input (rebound to the
// caller's pointer on every run), constants (weights and folded
// intermediates, kept alive by the plan), and buffers (intermediates the
// executor pre-binds once from the context's BufferPool). Executing a plan
// therefore performs zero allocations, zero shape checks and builds zero
// autograd nodes; its output is bit-identical to the eager forward it was
// traced from, at any thread count (see src/tensor/trace.h for the replay
// determinism contract).
//
// Compile() runs the pass pipeline over a Tracer's tape:
//   1. untraced-dataflow detection — refuse tapes whose output depends on a
//      tensor produced by an op that did not record a step (its value would
//      silently become a stale constant);
//   2. constant folding — a step whose inputs are all constants already
//      holds its result (the trace *ran*), so the step is dropped and its
//      output becomes a constant;
//   3. dead-step elimination — drop steps the output does not depend on;
//   4. reshape elision — pure-copy steps are removed by aliasing their
//      output to the producer's slot;
//   5. epilogue fusion — GEMM/SpMM followed by a constant bias-vector add
//      and/or an activation (conv: activation only) collapse into one fused
//      kernel dispatch (kernels::*Fused / conv::Conv2dPlan epilogues);
//   5½. precision lowering (DESIGN.md §13) — when options.precision is a
//      reduced tier, steps whose constant weight operand provides a
//      TraceStep::make_lowered factory are rewritten to pack that operand
//      (bf16 or int8 + per-column scales) once at compile time and dispatch
//      the reduced-precision kernels; the packed weight input leaves the
//      step, so its fp32 constant is never bound. fp32 plans are untouched
//      and keep the bitwise contract;
//   6. liveness buffer assignment — intermediates whose live ranges do not
//      overlap share pool buffers of the same bucket class. A buffer freed
//      at step i is reusable only by steps strictly after i, so a replay
//      never reads and writes the same memory.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/exec/execution_context.h"
#include "src/tensor/kernels.h"
#include "src/tensor/shape.h"
#include "src/tensor/tensor.h"
#include "src/tensor/trace.h"
#include "src/util/status.h"

namespace trafficbench::plan {

/// Per-plan weight-storage tier (kernels.h). fp32 plans replay bitwise
/// against the eager forward; reduced tiers are epsilon-verified by the
/// serving registry instead.
using Precision = kernels::Precision;

struct CompileOptions {
  bool fold_constants = true;
  bool elide_reshapes = true;
  bool fuse_epilogues = true;
  Precision precision = Precision::kFp32;
};

/// What the pass pipeline did, for logs and the serve-bench report.
struct CompileStats {
  int64_t traced_steps = 0;  // steps on the raw tape
  int64_t steps = 0;         // steps surviving all passes
  int64_t folded = 0;        // steps turned into constants
  int64_t dead = 0;          // steps the output never depended on
  int64_t elided = 0;        // reshapes removed by slot aliasing
  int64_t fused = 0;         // epilogue steps absorbed into their head
  int64_t buffers = 0;       // distinct pool buffers the executor binds
  int64_t buffer_bytes = 0;  // their total size
  int64_t lowered = 0;       // steps rewritten to a reduced-precision tier
  int64_t packed_bytes = 0;  // packed reduced-precision weight storage
};

/// One value in the plan's dataflow.
struct Slot {
  enum class Kind : int {
    kInput = 0,  // the plan input; rebound to the caller pointer per run
    kConstant,   // weight / folded value; `constant->data` is the storage
    kBuffer,     // intermediate; executor binds pool buffer `buffer`
  };
  Kind kind = Kind::kBuffer;
  int64_t size = 0;  // numel
  /// Keeps constant storage alive (kConstant only).
  std::shared_ptr<internal_tensor::TensorImpl> constant;
  /// Index into InferencePlan::buffer_sizes (kBuffer only).
  int buffer = -1;
};

/// One kernel dispatch: a replay closure plus the slot ids it reads and
/// writes. `aux` names scratch buffers private to this step.
struct PlanStep {
  std::string name;
  exec::OpKind kind = exec::OpKind::kUnary;
  double flops = 0.0;
  bool fused = false;
  std::vector<int> inputs;
  int output = -1;
  std::vector<int> aux;
  trace::ReplayFn replay;
};

/// An immutable compiled forward pass. Thread-safe to share; each executor
/// (src/exec/plan_executor.h) binds its own buffers against it.
struct InferencePlan {
  Shape input_shape;
  Shape output_shape;
  int input_slot = -1;
  /// May equal input_slot or name a constant slot when every step folded
  /// away; the executor then degenerates to one memcpy.
  int output_slot = -1;
  std::vector<Slot> slots;
  /// Pre-bind sizes (numel, bucket-rounded) of the shared buffer set.
  std::vector<int64_t> buffer_sizes;
  std::vector<PlanStep> steps;
  CompileStats stats;
  Precision precision = Precision::kFp32;

  /// e.g. "9 steps (4 fused, 2 folded, 3 elided, 14 traced) | 5 buffers,
  /// 1.3 MiB | bf16: 4 lowered, 0.2 MiB packed".
  std::string Summary() const;
};

/// Compiles a recorded trace into a plan. `input` is the tensor the caller
/// will rebind per run; `output` is the traced forward's result. Fails
/// (never aborts) on poisoned tapes, untraced dataflow, or an output that
/// does not descend from the tape — the registry falls back to the eager
/// path on failure.
Result<std::shared_ptr<const InferencePlan>> Compile(
    const trace::Tracer& tracer,
    const std::shared_ptr<internal_tensor::TensorImpl>& input,
    const std::shared_ptr<internal_tensor::TensorImpl>& output,
    const CompileOptions& options = {});

}  // namespace trafficbench::plan

#endif  // TRAFFICBENCH_PLAN_PLAN_H_
