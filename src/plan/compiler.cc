#include "src/plan/plan.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/tensor/buffer_pool.h"
#include "src/tensor/kernels.h"
#include "src/util/check.h"

namespace trafficbench::plan {

namespace {

using internal_tensor::TensorImpl;
using trace::OpPattern;
using trace::TraceStep;

/// Mutable compile-time view of one tape step. `live` steps survive into
/// the plan; inputs/output are canonical impl identities (reshape aliasing
/// rewrites them in place).
struct WorkStep {
  const TraceStep* traced = nullptr;
  bool live = true;
  std::string name;
  exec::OpKind kind;
  double flops = 0.0;
  bool fused = false;
  std::vector<const TensorImpl*> inputs;
  const TensorImpl* output = nullptr;
  std::vector<int64_t> aux_sizes;
  trace::ReplayFn replay;
  /// Epilogue parameters recorded by the fusion pass so precision lowering
  /// can rebuild the fused closure around the packed weights (defaults =
  /// "no epilogue" for unfused steps).
  int fused_act = 0;  // kernels::EpilogueAct as int
  float fused_slope = 0.0f;
  bool fused_bias = false;
};

/// True when `act` names an activation the fused epilogues implement.
bool IsActivation(OpPattern p) {
  return p == OpPattern::kRelu || p == OpPattern::kSigmoid ||
         p == OpPattern::kTanh || p == OpPattern::kLeakyRelu;
}

kernels::EpilogueAct ToEpilogueAct(OpPattern p) {
  switch (p) {
    case OpPattern::kRelu: return kernels::EpilogueAct::kRelu;
    case OpPattern::kSigmoid: return kernels::EpilogueAct::kSigmoid;
    case OpPattern::kTanh: return kernels::EpilogueAct::kTanh;
    case OpPattern::kLeakyRelu: return kernels::EpilogueAct::kLeakyRelu;
    default: return kernels::EpilogueAct::kNone;
  }
}

const char* FusedName(OpPattern head, bool with_bias, bool with_act) {
  switch (head) {
    case OpPattern::kMatMul:
      if (with_bias && with_act) return "MatMul+Bias+Act";
      return with_bias ? "MatMul+Bias" : "MatMul+Act";
    case OpPattern::kSpMM:
      if (with_bias && with_act) return "SpMM+Bias+Act";
      return with_bias ? "SpMM+Bias" : "SpMM+Act";
    case OpPattern::kConv2d:
      return "Conv2d+Act";
    default:
      return "Fused";
  }
}

/// True when `shape` broadcasts against a row of length n purely along the
/// last axis: numel == n and the last dim == n (every other dim 1). This is
/// what EpilogueSpec::bias[j]-per-column assumes.
bool IsRowBias(const Shape& shape, int64_t n) {
  if (shape.numel() != n) return false;
  if (shape.rank() == 0) return n == 1;
  return shape.dim(shape.rank() - 1) == n;
}

}  // namespace

std::string InferencePlan::Summary() const {
  std::string s = std::to_string(steps.size()) + " steps (" +
                  std::to_string(stats.fused) + " fused, " +
                  std::to_string(stats.folded) + " folded, " +
                  std::to_string(stats.elided) + " elided, " +
                  std::to_string(stats.traced_steps) + " traced) | " +
                  std::to_string(stats.buffers) + " buffers, ";
  const double mib =
      static_cast<double>(stats.buffer_bytes) / (1024.0 * 1024.0);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f MiB", mib);
  s += buf;
  if (precision != Precision::kFp32) {
    std::snprintf(buf, sizeof(buf), " | %s: %lld lowered, %.1f MiB packed",
                  kernels::PrecisionName(precision),
                  static_cast<long long>(stats.lowered),
                  static_cast<double>(stats.packed_bytes) / (1024.0 * 1024.0));
    s += buf;
  }
  return s;
}

Result<std::shared_ptr<const InferencePlan>> Compile(
    const trace::Tracer& tracer,
    const std::shared_ptr<TensorImpl>& input,
    const std::shared_ptr<TensorImpl>& output,
    const CompileOptions& options) {
  TB_CHECK(input != nullptr && output != nullptr);
  if (tracer.failed()) {
    return Status::InvalidArgument("trace poisoned: op '" + tracer.failure() +
                                   "' has no replay");
  }

  const std::vector<TraceStep>& tape = tracer.steps();

  // Producer index and impl-identity bookkeeping. `keep_alive` pins every
  // impl we may reference while passes run.
  std::unordered_map<const TensorImpl*, std::shared_ptr<TensorImpl>> pin;
  pin[input.get()] = input;
  pin[output.get()] = output;
  for (const TraceStep& t : tape) {
    for (const auto& in : t.inputs) pin[in.get()] = in;
    pin[t.output.get()] = t.output;
  }

  std::vector<WorkStep> work;
  work.reserve(tape.size());
  std::unordered_map<const TensorImpl*, int> producer;
  for (const TraceStep& t : tape) {
    WorkStep w;
    w.traced = &t;
    w.name = t.name;
    w.kind = t.kind;
    w.flops = t.flops;
    w.output = t.output.get();
    w.aux_sizes = t.aux_sizes;
    w.replay = t.replay;
    for (const auto& in : t.inputs) w.inputs.push_back(in.get());
    producer[w.output] = static_cast<int>(work.size());
    work.push_back(std::move(w));
  }

  CompileStats stats;
  stats.traced_steps = static_cast<int64_t>(tape.size());

  // Pass 1: untraced dataflow. Any referenced impl that MakeOp produced
  // under this tracer without a recorded step is a silent-constant hazard.
  auto untraced = [&](const TensorImpl* impl) {
    return tracer.IsUntraced(impl);
  };
  if (untraced(output.get())) {
    return Status::InvalidArgument(
        "plan output was produced by an untraced op");
  }
  for (const WorkStep& w : work) {
    for (const TensorImpl* in : w.inputs) {
      if (untraced(in)) {
        return Status::InvalidArgument(std::string("input of '") + w.name +
                                       "' was produced by an untraced op");
      }
    }
  }

  // A leaf is anything no step produced: the plan input, or a constant
  // (weights, adjacency supports, host-loaded features). Folding below may
  // grow the constant set.
  std::unordered_set<const TensorImpl*> constants;
  auto is_const = [&](const TensorImpl* impl) {
    return impl != input.get() && producer.find(impl) == producer.end();
  };

  // Pass 2: constant folding. The tape was recorded from a real forward, so
  // a step whose inputs are all constants already computed its result: drop
  // the step and let its (pinned) output impl become a constant leaf.
  if (options.fold_constants) {
    for (WorkStep& w : work) {
      bool all_const = true;
      for (const TensorImpl* in : w.inputs) {
        if (!is_const(in)) { all_const = false; break; }
      }
      if (all_const && w.output != output.get()) {
        w.live = false;
        producer.erase(w.output);  // now a leaf → constant
        ++stats.folded;
      }
    }
  }

  // Pass 3: dead-step elimination — keep only ancestors of the output.
  {
    std::vector<char> needed(work.size(), 0);
    std::vector<int> stack;
    auto need = [&](const TensorImpl* impl) {
      auto it = producer.find(impl);
      if (it != producer.end() && !needed[it->second]) {
        needed[it->second] = 1;
        stack.push_back(it->second);
      }
    };
    need(output.get());
    while (!stack.empty()) {
      const int i = stack.back();
      stack.pop_back();
      for (const TensorImpl* in : work[i].inputs) need(in);
    }
    for (size_t i = 0; i < work.size(); ++i) {
      if (work[i].live && !needed[i]) {
        work[i].live = false;
        producer.erase(work[i].output);
        ++stats.dead;
      }
    }
  }

  // Pass 4: reshape elision. A pure-copy step disappears by aliasing its
  // output to its input's canonical identity; later references are
  // rewritten. The plan output keeps its copy step so the caller's buffer
  // is still written.
  std::unordered_map<const TensorImpl*, const TensorImpl*> alias;
  auto canon = [&](const TensorImpl* impl) {
    while (true) {
      auto it = alias.find(impl);
      if (it == alias.end()) return impl;
      impl = it->second;
    }
  };
  if (options.elide_reshapes) {
    for (WorkStep& w : work) {
      if (!w.live || w.traced->info.pattern != OpPattern::kReshape) continue;
      if (w.output == output.get()) continue;
      alias[w.output] = canon(w.inputs[0]);
      w.live = false;
      producer.erase(w.output);
      ++stats.elided;
    }
    for (WorkStep& w : work) {
      if (!w.live) continue;
      for (const TensorImpl*& in : w.inputs) in = canon(in);
    }
  }

  // Use counts over the live steps (post-aliasing), for the single-consumer
  // checks of the fusion peephole.
  std::unordered_map<const TensorImpl*, int> uses;
  for (const WorkStep& w : work) {
    if (!w.live) continue;
    for (const TensorImpl* in : w.inputs) ++uses[in];
  }

  // Pass 5: epilogue fusion. Head step (MatMul/SpMM/Conv2d) → optional
  // constant row-bias add (GEMM/SpMM only) → optional activation, each link
  // requiring the intermediate to have exactly one consumer and not be the
  // plan output. The head's FusedReplayFactory builds the combined kernel;
  // the bias impl is appended as the step's LAST input (the convention the
  // factories were recorded with).
  if (options.fuse_epilogues) {
    // Index of the one live step consuming `impl` after step `after`, or -1
    // when it is the plan output / multiply-used / unused.
    auto sole_consumer = [&](const TensorImpl* impl, size_t after) -> int {
      if (impl == output.get()) return -1;
      auto it = uses.find(impl);
      if (it == uses.end() || it->second != 1) return -1;
      for (size_t j = after + 1; j < work.size(); ++j) {
        if (!work[j].live) continue;
        for (const TensorImpl* in : work[j].inputs) {
          if (in == impl) return static_cast<int>(j);
        }
      }
      return -1;
    };
    for (size_t i = 0; i < work.size(); ++i) {
      WorkStep& head = work[i];
      if (!head.live || head.traced->make_fused == nullptr) continue;
      const OpPattern hp = head.traced->info.pattern;
      const int64_t n = head.traced->info.n;

      // Optional constant row-bias add (GEMM/SpMM heads only).
      const TensorImpl* bias = nullptr;
      int bias_idx = -1;
      const TensorImpl* tail_out = head.output;
      size_t tail_idx = i;
      if (hp == OpPattern::kMatMul || hp == OpPattern::kSpMM) {
        const int ci = sole_consumer(tail_out, tail_idx);
        if (ci >= 0) {
          WorkStep& c = work[ci];
          if (c.traced->info.pattern == OpPattern::kAdd &&
              c.inputs.size() == 2 &&
              c.output->shape.numel() == tail_out->shape.numel()) {
            const TensorImpl* other =
                c.inputs[0] == tail_out ? c.inputs[1] : c.inputs[0];
            if (other != tail_out && is_const(other) &&
                IsRowBias(other->shape, n)) {
              bias = other;
              bias_idx = ci;
              tail_out = c.output;
              tail_idx = static_cast<size_t>(ci);
            }
          }
        }
      }

      // Optional activation tail.
      int act_idx = -1;
      OpPattern act = OpPattern::kOpaque;
      {
        const int ci = sole_consumer(tail_out, tail_idx);
        if (ci >= 0) {
          WorkStep& c = work[ci];
          if (IsActivation(c.traced->info.pattern) && c.inputs.size() == 1 &&
              c.inputs[0] == tail_out) {
            act_idx = ci;
            act = c.traced->info.pattern;
            tail_out = c.output;
          }
        }
      }

      if (bias_idx < 0 && act_idx < 0) continue;
      if (hp == OpPattern::kConv2d && act_idx < 0) continue;

      const float slope =
          act_idx >= 0 ? work[act_idx].traced->info.leaky_slope : 0.0f;
      head.replay = head.traced->make_fused(
          static_cast<int>(ToEpilogueAct(act)), slope, bias != nullptr);
      head.fused_act = static_cast<int>(ToEpilogueAct(act));
      head.fused_slope = slope;
      head.fused_bias = bias != nullptr;
      head.kind = exec::OpKind::kFusedEpilogue;
      head.fused = true;
      head.name = FusedName(hp, bias != nullptr, act_idx >= 0);
      if (bias != nullptr) {
        head.inputs.push_back(bias);
        ++uses[bias];
      }
      for (const int absorbed : {bias_idx, act_idx}) {
        if (absorbed < 0) continue;
        head.flops += work[absorbed].flops;
        work[absorbed].live = false;
        producer.erase(work[absorbed].output);
        ++stats.fused;
      }
      producer.erase(head.output);
      head.output = tail_out;
      producer[head.output] = static_cast<int>(i);
    }
  }

  // Pass 5½: precision lowering. A step whose op site provided a
  // make_lowered factory — and whose weight operand (if it is a step input)
  // is a constant — is rewritten to dispatch the reduced-precision kernels
  // over weights packed right here, at compile time. The packed storage
  // lives in the new replay closure (shared by every executor of this
  // plan, read-only after this point); the fp32 weight input leaves the
  // step so its constant slot is never created. Runs after fusion so the
  // packed kernel keeps the fused epilogue.
  if (options.precision != Precision::kFp32) {
    for (WorkStep& w : work) {
      if (!w.live || w.traced->make_lowered == nullptr) continue;
      const int wi = w.traced->info.weight_input;
      const float* weights = nullptr;
      if (wi >= 0) {
        if (wi >= static_cast<int>(w.inputs.size())) continue;
        const TensorImpl* wt = w.inputs[wi];
        if (!is_const(wt)) continue;  // activation operand — stays fp32
        weights = wt->data.data();
      }
      int64_t packed_bytes = 0;
      trace::ReplayFn lowered = w.traced->make_lowered(
          static_cast<int>(options.precision), w.fused_act, w.fused_slope,
          w.fused_bias, weights, &packed_bytes);
      if (lowered == nullptr) continue;
      w.replay = std::move(lowered);
      if (wi >= 0) w.inputs.erase(w.inputs.begin() + wi);
      w.name += std::string("·") + kernels::PrecisionName(options.precision);
      ++stats.lowered;
      stats.packed_bytes += packed_bytes;
    }
  }

  // ---- Slot assignment -----------------------------------------------------
  // Number every surviving impl; then liveness-scan to share pool buffers
  // between non-overlapping intermediates of the same bucket class.
  std::vector<Slot> slots;
  std::unordered_map<const TensorImpl*, int> slot_of;
  auto slot_for = [&](const TensorImpl* impl) {
    auto it = slot_of.find(impl);
    if (it != slot_of.end()) return it->second;
    Slot s;
    s.size = impl->shape.numel();
    if (impl == canon(input.get())) {
      s.kind = Slot::Kind::kInput;
    } else if (producer.find(impl) == producer.end()) {
      s.kind = Slot::Kind::kConstant;
      auto pit = pin.find(impl);
      TB_CHECK(pit != pin.end());
      s.constant = pit->second;
    } else {
      s.kind = Slot::Kind::kBuffer;
    }
    const int id = static_cast<int>(slots.size());
    slots.push_back(std::move(s));
    slot_of[impl] = id;
    return id;
  };

  const TensorImpl* cin = canon(input.get());
  const TensorImpl* cout = canon(output.get());
  const int input_slot = slot_for(cin);

  std::vector<PlanStep> steps;
  std::vector<std::vector<int64_t>> step_aux_sizes;
  for (WorkStep& w : work) {
    if (!w.live) continue;
    PlanStep p;
    p.name = std::move(w.name);
    p.kind = w.kind;
    p.flops = w.flops;
    p.fused = w.fused;
    for (const TensorImpl* in : w.inputs) p.inputs.push_back(slot_for(in));
    p.output = slot_for(w.output);
    p.replay = std::move(w.replay);
    steps.push_back(std::move(p));
    step_aux_sizes.push_back(w.aux_sizes);  // buffers assigned below
  }
  const int output_slot = slot_for(cout);
  // A constant output means the forward never routed the input through
  // traced ops (e.g. a host-computed baseline): executing such a "plan"
  // would replay a stale value, so refuse it.
  if (slots[output_slot].kind == Slot::Kind::kConstant) {
    return Status::InvalidArgument(
        "plan output does not depend on the input");
  }

  // Liveness: last step index reading each slot (the output slot is pinned
  // forever — it is the caller's memory).
  const int num_steps = static_cast<int>(steps.size());
  std::vector<int> last_use(slots.size(), -1);
  for (int i = 0; i < num_steps; ++i) {
    for (int s : steps[i].inputs) last_use[s] = std::max(last_use[s], i);
  }
  last_use[output_slot] = num_steps;  // never recycled

  // Greedy buffer assignment by bucket class. `free_at[cap]` holds
  // (buffer id, step it was freed at); a buffer freed at step j serves a
  // definition at step i only when i > j, so no replay aliases its own
  // inputs or scratch.
  std::vector<int64_t> buffer_sizes;
  std::unordered_map<int64_t, std::vector<std::pair<int, int>>> free_at;
  auto take_buffer = [&](int64_t numel, int step) {
    const int64_t cap = BufferPool::BucketCapacity(numel);
    auto& list = free_at[cap];
    for (size_t k = 0; k < list.size(); ++k) {
      if (list[k].second < step) {
        const int id = list[k].first;
        list.erase(list.begin() + k);
        return id;
      }
    }
    buffer_sizes.push_back(cap);
    return static_cast<int>(buffer_sizes.size() - 1);
  };
  for (int i = 0; i < num_steps; ++i) {
    PlanStep& p = steps[i];
    Slot& out = slots[p.output];
    if (out.kind == Slot::Kind::kBuffer && out.buffer < 0 &&
        p.output != output_slot) {
      out.buffer = take_buffer(out.size, i);
    }
    // Step-private scratch: defined and freed at i.
    for (int64_t sz : step_aux_sizes[i]) {
      const int id = take_buffer(sz, i);
      p.aux.push_back(id);
      free_at[buffer_sizes[id]].emplace_back(id, i);
    }
    for (int s : p.inputs) {
      if (slots[s].kind == Slot::Kind::kBuffer && last_use[s] == i &&
          s != output_slot && slots[s].buffer >= 0) {
        free_at[buffer_sizes[slots[s].buffer]].emplace_back(slots[s].buffer,
                                                            i);
      }
    }
  }

  auto result = std::make_shared<InferencePlan>();
  result->input_shape = input->shape;
  result->output_shape = output->shape;
  result->input_slot = input_slot;
  result->output_slot = output_slot;
  result->slots = std::move(slots);
  result->buffer_sizes = std::move(buffer_sizes);
  result->steps = std::move(steps);
  stats.steps = num_steps;
  stats.buffers = static_cast<int64_t>(result->buffer_sizes.size());
  for (int64_t b : result->buffer_sizes) {
    stats.buffer_bytes += b * static_cast<int64_t>(sizeof(float));
  }
  result->stats = stats;
  result->precision = options.precision;
  return std::shared_ptr<const InferencePlan>(std::move(result));
}

}  // namespace trafficbench::plan
