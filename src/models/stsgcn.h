#ifndef TRAFFICBENCH_MODELS_STSGCN_H_
#define TRAFFICBENCH_MODELS_STSGCN_H_

#include <memory>
#include <vector>

#include "src/models/common.h"
#include "src/models/traffic_model.h"
#include "src/nn/layers.h"

namespace trafficbench::models {

/// STSGCN (Song et al., AAAI 2020): spatial-temporal *synchronous* graph
/// convolution. Each module operates on a window of 3 consecutive steps
/// through a localized 3N x 3N adjacency (spatial edges within each step,
/// temporal self-edges between adjacent steps) and crops the middle step.
/// Modules are **individual** — not shared across windows — and each of the
/// 12 output horizons has its own FC head, which is why STSGCN carries the
/// largest parameter count in Table III.
class Stsgcn : public TrafficModel {
 public:
  explicit Stsgcn(const ModelContext& context);

  Tensor Forward(const Tensor& x, const Tensor& teacher) override;
  std::string name() const override { return "STSGCN"; }

 private:
  struct SyncModule {
    // Two gated graph convolutions on the 3N-node localized graph.
    std::shared_ptr<nn::Linear> conv1;  // D -> 2D (GLU)
    std::shared_ptr<nn::Linear> conv2;  // D -> 2D (GLU)
  };

  /// window: [B, 3N, D] -> cropped middle step [B, N, D].
  Tensor RunModule(const SyncModule& module, const Tensor& window) const;

  int64_t num_nodes_;
  int input_len_;
  int output_len_;
  // [3N, 3N]; mostly zeros (3 spatial blocks + temporal self-edge
  // diagonals out of 9 blocks), so it typically converts to CSR.
  GraphSupport local_adjacency_;

  std::shared_ptr<nn::Linear> input_embed_;    // 2 -> D
  std::vector<SyncModule> layer1_;             // T-2 individual modules
  std::vector<SyncModule> layer2_;             // T-4 individual modules
  struct Head {
    std::shared_ptr<nn::Linear> hidden;
    std::shared_ptr<nn::Linear> out;
  };
  std::vector<Head> heads_;  // one per output horizon
};

std::unique_ptr<TrafficModel> CreateStsgcn(const ModelContext& context);

}  // namespace trafficbench::models

#endif  // TRAFFICBENCH_MODELS_STSGCN_H_
