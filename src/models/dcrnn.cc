#include "src/models/dcrnn.h"

#include "src/graph/road_network.h"
#include "src/util/check.h"

namespace trafficbench::models {

namespace {
constexpr int64_t kHidden = 28;
constexpr int kDiffusionSteps = 2;
}  // namespace

std::vector<sparse::CsrPtr> DiffusionSupportsCsr(
    const sparse::CsrPtr& adjacency, int max_step) {
  std::vector<sparse::CsrPtr> supports;
  sparse::CsrPtr fwd = graph::RandomWalkTransitionCsr(adjacency);
  sparse::CsrPtr bwd = graph::ReverseRandomWalkTransitionCsr(adjacency);
  sparse::CsrPtr fwd_power = fwd;
  sparse::CsrPtr bwd_power = bwd;
  for (int k = 0; k < max_step; ++k) {
    supports.push_back(fwd_power);
    supports.push_back(bwd_power);
    if (k + 1 < max_step) {
      fwd_power = sparse::CsrMatrix::Multiply(*fwd_power, *fwd);
      bwd_power = sparse::CsrMatrix::Multiply(*bwd_power, *bwd);
    }
  }
  return supports;
}

std::vector<Tensor> DiffusionSupports(const Tensor& adjacency, int max_step) {
  NoGradGuard no_grad;
  std::vector<Tensor> supports;
  Tensor fwd = graph::RandomWalkTransition(adjacency);
  Tensor bwd = graph::ReverseRandomWalkTransition(adjacency);
  Tensor fwd_power = fwd;
  Tensor bwd_power = bwd;
  for (int k = 0; k < max_step; ++k) {
    supports.push_back(fwd_power.Detach());
    supports.push_back(bwd_power.Detach());
    if (k + 1 < max_step) {
      fwd_power = MatMul(fwd_power, fwd);
      bwd_power = MatMul(bwd_power, bwd);
    }
  }
  return supports;
}

DiffusionConv::DiffusionConv(std::vector<GraphSupport> supports,
                             int64_t in_features, int64_t out_features,
                             Rng* rng)
    : supports_(std::move(supports)) {
  const int64_t terms = static_cast<int64_t>(supports_.size()) + 1;
  mix_ = RegisterModule(
      "mix", std::make_shared<nn::Linear>(terms * in_features, out_features,
                                          rng));
}

Tensor DiffusionConv::Forward(const Tensor& x) const {
  std::vector<Tensor> terms;
  terms.reserve(supports_.size() + 1);
  terms.push_back(x);
  for (const GraphSupport& support : supports_) {
    terms.push_back(support.Apply(x));
  }
  return mix_->Forward(Concat(terms, -1));
}

DcGruCell::DcGruCell(const std::vector<GraphSupport>& supports,
                     int64_t input_size, int64_t hidden_size, Rng* rng)
    : hidden_size_(hidden_size) {
  gates_ = RegisterModule(
      "gates", std::make_shared<DiffusionConv>(
                   supports, input_size + hidden_size, 2 * hidden_size, rng));
  candidate_ = RegisterModule(
      "candidate", std::make_shared<DiffusionConv>(
                       supports, input_size + hidden_size, hidden_size, rng));
}

Tensor DcGruCell::Forward(const Tensor& x, const Tensor& h) const {
  Tensor xh = Concat({x, h}, -1);
  Tensor gates = gates_->Forward(xh).Sigmoid();
  Tensor reset = gates.Slice(-1, 0, hidden_size_);
  Tensor update = gates.Slice(-1, hidden_size_, 2 * hidden_size_);
  Tensor cand = candidate_->Forward(Concat({x, reset * h}, -1)).Tanh();
  return update * h + (1.0f - update) * cand;
}

Dcrnn::Dcrnn(const ModelContext& context)
    : num_nodes_(context.num_nodes),
      input_len_(context.input_len),
      output_len_(context.output_len) {
  Rng rng(context.seed);
  const std::vector<GraphSupport> supports =
      MakeSupports(DiffusionSupports(DenseAdjacency(context), kDiffusionSteps));
  encoder_ = RegisterModule(
      "encoder", std::make_shared<DcGruCell>(supports, 2, kHidden, &rng));
  decoder_ = RegisterModule(
      "decoder", std::make_shared<DcGruCell>(supports, 1, kHidden, &rng));
  projection_ = RegisterModule(
      "projection", std::make_shared<nn::Linear>(kHidden, 1, &rng));
}

Tensor Dcrnn::Forward(const Tensor& x, const Tensor& teacher) {
  TB_CHECK_EQ(x.rank(), 4);
  const int64_t batch = x.dim(0);
  TB_CHECK_EQ(x.dim(2), num_nodes_);

  // Encode the 12 history steps.
  Tensor h = Tensor::Zeros(Shape({batch, num_nodes_, kHidden}));
  for (int t = 0; t < input_len_; ++t) {
    Tensor step = x.Slice(1, t, t + 1).Squeeze(1);  // [B, N, 2]
    h = encoder_->Forward(step, h);
  }

  // Decode 12 future steps. GO symbol is the zero input.
  const bool use_teacher = training() && teacher.defined();
  Tensor decoder_input = Tensor::Zeros(Shape({batch, num_nodes_, 1}));
  std::vector<Tensor> outputs;
  outputs.reserve(output_len_);
  for (int t = 0; t < output_len_; ++t) {
    h = decoder_->Forward(decoder_input, h);
    Tensor y = projection_->Forward(h);  // [B, N, 1]
    outputs.push_back(y.Squeeze(2));     // [B, N]
    if (t + 1 == output_len_) break;
    if (use_teacher) {
      decoder_input = teacher.Slice(1, t, t + 1)  // [B, 1, N]
                          .Reshape(Shape({batch, num_nodes_, 1}))
                          .Detach();
    } else {
      decoder_input = y;
    }
  }
  return Stack(outputs, 1);  // [B, T_out, N]
}

std::unique_ptr<TrafficModel> CreateDcrnn(const ModelContext& context) {
  return std::make_unique<Dcrnn>(context);
}

}  // namespace trafficbench::models
