#include "src/models/stgcn.h"

#include <cmath>

#include "src/graph/road_network.h"
#include "src/models/common.h"
#include "src/tensor/trace.h"
#include "src/util/check.h"

namespace trafficbench::models {

namespace {
constexpr int kTemporalKernel = 3;  // Kt
constexpr int kChebOrder = 3;       // K
constexpr int64_t kC1 = 28;         // temporal conv channels
constexpr int64_t kC2 = 14;         // spatial conv channels
}  // namespace

Stgcn::Stgcn(const ModelContext& context)
    : num_nodes_(context.num_nodes),
      input_len_(context.input_len),
      output_len_(context.output_len) {
  TB_CHECK_GE(input_len_, 4 * (kTemporalKernel - 1) + 1)
      << "input too short for two ST-Conv blocks";
  Rng rng(context.seed);

  cheb_ = MakeSupports(graph::ChebyshevBasis(
      graph::ScaledLaplacian(DenseAdjacency(context)), kChebOrder));

  auto make_cheb_weights = [&](const char* prefix, int64_t c_in,
                               int64_t c_out, std::vector<Tensor>* weights,
                               Tensor* bias) {
    const float limit = std::sqrt(6.0f / static_cast<float>(c_in + c_out));
    for (int k = 0; k < kChebOrder; ++k) {
      weights->push_back(RegisterParameter(
          std::string(prefix) + "_w" + std::to_string(k),
          Tensor::Rand(Shape({c_in, c_out}), &rng, -limit, limit)));
    }
    *bias = RegisterParameter(std::string(prefix) + "_b",
                              Tensor::Zeros(Shape({c_out})));
  };

  t1a_ = RegisterModule("t1a", std::make_shared<nn::Conv2dLayer>(
                                   2, 2 * kC1, 1, kTemporalKernel, &rng));
  make_cheb_weights("g1", kC1, kC2, &g1_weights_, &g1_bias_);
  t1b_ = RegisterModule("t1b", std::make_shared<nn::Conv2dLayer>(
                                   kC2, 2 * kC1, 1, kTemporalKernel, &rng));
  ln1_ = RegisterModule("ln1", std::make_shared<nn::LayerNorm>(kC1));

  t2a_ = RegisterModule("t2a", std::make_shared<nn::Conv2dLayer>(
                                   kC1, 2 * kC1, 1, kTemporalKernel, &rng));
  make_cheb_weights("g2", kC1, kC2, &g2_weights_, &g2_bias_);
  t2b_ = RegisterModule("t2b", std::make_shared<nn::Conv2dLayer>(
                                   kC2, 2 * kC1, 1, kTemporalKernel, &rng));
  ln2_ = RegisterModule("ln2", std::make_shared<nn::LayerNorm>(kC1));

  const int64_t remaining_t =
      input_len_ - 4 * (kTemporalKernel - 1);  // after both blocks
  out_conv_ = RegisterModule(
      "out_conv", std::make_shared<nn::Conv2dLayer>(
                      kC1, kC1, 1, static_cast<int>(remaining_t), &rng));
  out_fc_ = RegisterModule("out_fc", std::make_shared<nn::Linear>(kC1, 1, &rng));
}

Tensor Stgcn::ChebConv(const Tensor& x, const std::vector<Tensor>& weights,
                       const Tensor& bias) const {
  // x: [B, C, N, T] -> [B, T, N, C] so MatMul mixes the node axis.
  Tensor features = FromBcnt(x);
  Tensor out;
  for (int k = 0; k < kChebOrder; ++k) {
    Tensor mixed = MatMul(cheb_[k].Apply(features), weights[k]);
    out = out.defined() ? out + mixed : mixed;
  }
  out = (out + bias).Relu();
  return ToBcnt(out);
}

Tensor Stgcn::PredictOneStep(const Tensor& window) {
  Tensor h = ToBcnt(window);  // [B, 2, N, T]
  // Block 1.
  h = GluChannels(t1a_->Forward(h));
  h = ChebConv(h, g1_weights_, g1_bias_);
  h = GluChannels(t1b_->Forward(h));
  h = ToBcnt(ln1_->Forward(FromBcnt(h)));
  // Block 2.
  h = GluChannels(t2a_->Forward(h));
  h = ChebConv(h, g2_weights_, g2_bias_);
  h = GluChannels(t2b_->Forward(h));
  h = ToBcnt(ln2_->Forward(FromBcnt(h)));
  // Output head: collapse time, then per-node FC -> one step.
  h = out_conv_->Forward(h).Relu();       // [B, kC1, N, 1]
  h = FromBcnt(h);                        // [B, 1, N, kC1]
  Tensor y = out_fc_->Forward(h);         // [B, 1, N, 1]
  return y.Reshape(Shape({y.dim(0), num_nodes_}));
}

Tensor Stgcn::Forward(const Tensor& x, const Tensor& teacher) {
  TB_CHECK_EQ(x.rank(), 4);
  const int64_t batch = x.dim(0);

  if (training() && teacher.defined()) {
    // Many-to-one training: optimize the one-step prediction; fill the
    // remaining horizon with detached teacher values (no gradient).
    Tensor one = PredictOneStep(x).Unsqueeze(1);  // [B, 1, N]
    Tensor filler = teacher.Slice(1, 1, output_len_).Detach();
    return Concat({one, filler}, 1);
  }

  // Autoregressive rollout: feed each prediction back as the next input.
  Tensor window = x;
  std::vector<Tensor> steps;
  steps.reserve(output_len_);
  for (int t = 0; t < output_len_; ++t) {
    Tensor pred = PredictOneStep(window);  // [B, N]
    steps.push_back(pred);
    if (t + 1 == output_len_) break;
    // Append (pred, next time-of-day) and drop the oldest step. The
    // time-of-day read goes through HostOp so compiled plans keep it
    // input-dependent (same arithmetic as LastTimeOfDay + the old inline
    // rollout loop).
    Tensor tod_tensor = trace::HostOp(
        "StgcnTod", {x}, Shape({batch, 1, num_nodes_, 1}),
        [batch, t_in = input_len_, n = num_nodes_, t](
            const float* const* inputs, float* out) {
          const float* data = inputs[0];
          for (int64_t b = 0; b < batch; ++b) {
            const float tod = data[((b * t_in + (t_in - 1)) * n + 0) * 2 + 1];
            float next = tod + static_cast<float>(t + 1) / 288.0f;
            next -= std::floor(next);
            for (int64_t i = 0; i < n; ++i) out[b * n + i] = next;
          }
        });
    Tensor new_step =
        Concat({pred.Reshape(Shape({batch, 1, num_nodes_, 1})), tod_tensor},
               3);  // [B, 1, N, 2]
    window = Concat({window.Slice(1, 1, input_len_), new_step}, 1);
  }
  return Stack(steps, 1);  // [B, T_out, N]
}

std::unique_ptr<TrafficModel> CreateStgcn(const ModelContext& context) {
  return std::make_unique<Stgcn>(context);
}

}  // namespace trafficbench::models
