// Registers the full model zoo (paper order) plus the naive baselines.

#include <memory>
#include <mutex>

#include "src/models/ablation.h"
#include "src/models/astgcn.h"
#include "src/models/baselines.h"
#include "src/models/dcrnn.h"
#include "src/models/gman.h"
#include "src/models/graph_wavenet.h"
#include "src/models/st_metanet.h"
#include "src/models/stg2seq.h"
#include "src/models/stgcn.h"
#include "src/models/stsgcn.h"
#include "src/models/traffic_model.h"

namespace trafficbench::models {

void RegisterBuiltinModels() {
  static std::once_flag once;
  std::call_once(once, [] {
    ModelRegistry& registry = ModelRegistry::Instance();
    registry.Register("STGCN", CreateStgcn);
    registry.Register("DCRNN", CreateDcrnn);
    registry.Register("ASTGCN", CreateAstgcn);
    registry.Register("ST-MetaNet", CreateStMetaNet);
    registry.Register("Graph-WaveNet", CreateGraphWaveNet);
    registry.Register("STG2Seq", CreateStg2Seq);
    registry.Register("STSGCN", CreateStsgcn);
    registry.Register("GMAN", CreateGman);
    registry.Register("HistoricalAverage", CreateHistoricalAverage);
    registry.Register("LastValue", CreateLastValue);

    // Ablation backbones (benches A1/A2): fixed temporal module while the
    // spatial family varies, and vice versa.
    auto register_backbone = [&registry](const std::string& name,
                                         SpatialKind spatial,
                                         TemporalKind temporal) {
      registry.Register(name, [spatial, temporal](const ModelContext& ctx) {
        return std::unique_ptr<TrafficModel>(
            std::make_unique<StBackbone>(ctx, spatial, temporal));
      });
    };
    register_backbone("AB-spatial-none", SpatialKind::kNone,
                      TemporalKind::kTcn);
    register_backbone("AB-spatial-cheb", SpatialKind::kChebyshev,
                      TemporalKind::kTcn);
    register_backbone("AB-spatial-diffusion", SpatialKind::kDiffusion,
                      TemporalKind::kTcn);
    register_backbone("AB-spatial-adaptive", SpatialKind::kAdaptive,
                      TemporalKind::kTcn);
    register_backbone("AB-temporal-gru", SpatialKind::kDiffusion,
                      TemporalKind::kGru);
    register_backbone("AB-temporal-tcn", SpatialKind::kDiffusion,
                      TemporalKind::kTcn);
    register_backbone("AB-temporal-attention", SpatialKind::kDiffusion,
                      TemporalKind::kAttention);
  });
}

}  // namespace trafficbench::models
