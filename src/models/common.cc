#include "src/models/common.h"

#include <atomic>
#include <utility>

#include "src/graph/road_network.h"
#include "src/util/check.h"

namespace trafficbench::models {

namespace {
// Stored as an atomic so test guards can flip it around model construction
// without synchronizing with other threads' reads. Models only read it in
// their constructors (support conversion is a build-time decision).
std::atomic<double> g_support_density_threshold{
    sparse::kDefaultDensityThreshold};
}  // namespace

double GraphSupportDensityThreshold() {
  return g_support_density_threshold.load(std::memory_order_relaxed);
}

void SetGraphSupportDensityThreshold(double threshold) {
  g_support_density_threshold.store(threshold, std::memory_order_relaxed);
}

GraphSupport::GraphSupport(Tensor dense) : dense_(std::move(dense)) {
  TB_CHECK(dense_.defined());
  TB_CHECK_EQ(dense_.rank(), 2);
  nnz_ = graph::SupportNnz(dense_);
  csr_ = sparse::CsrMatrix::FromDenseIfSparse(dense_,
                                              GraphSupportDensityThreshold());
}

Tensor GraphSupport::Apply(const Tensor& features) const {
  TB_CHECK(dense_.defined()) << "applying a default-constructed GraphSupport";
  if (csr_ != nullptr) return SparseMatMul(csr_, features);
  return GraphMix(dense_, features);
}

double GraphSupport::density() const {
  const int64_t numel = dense_.defined() ? dense_.numel() : 0;
  return numel > 0 ? static_cast<double>(nnz_) / static_cast<double>(numel)
                   : 0.0;
}

std::vector<GraphSupport> MakeSupports(const std::vector<Tensor>& dense) {
  std::vector<GraphSupport> supports;
  supports.reserve(dense.size());
  for (const Tensor& t : dense) supports.emplace_back(t);
  return supports;
}

std::vector<float> LastTimeOfDay(const Tensor& x) {
  TB_CHECK_EQ(x.rank(), 4);
  TB_CHECK_EQ(x.dim(3), 2);
  const int64_t batch = x.dim(0);
  const int64_t t_in = x.dim(1);
  const int64_t n = x.dim(2);
  std::vector<float> out(batch);
  const float* data = x.data();
  for (int64_t b = 0; b < batch; ++b) {
    out[b] = data[((b * t_in + (t_in - 1)) * n + 0) * 2 + 1];
  }
  return out;
}

Tensor GluChannels(const Tensor& x) {
  TB_CHECK_EQ(x.rank(), 4);
  const int64_t channels = x.dim(1);
  TB_CHECK_EQ(channels % 2, 0);
  Tensor p = x.Slice(1, 0, channels / 2);
  Tensor q = x.Slice(1, channels / 2, channels);
  return p * q.Sigmoid();
}

}  // namespace trafficbench::models
