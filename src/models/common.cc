#include "src/models/common.h"

#include "src/util/check.h"

namespace trafficbench::models {

std::vector<float> LastTimeOfDay(const Tensor& x) {
  TB_CHECK_EQ(x.rank(), 4);
  TB_CHECK_EQ(x.dim(3), 2);
  const int64_t batch = x.dim(0);
  const int64_t t_in = x.dim(1);
  const int64_t n = x.dim(2);
  std::vector<float> out(batch);
  const float* data = x.data();
  for (int64_t b = 0; b < batch; ++b) {
    out[b] = data[((b * t_in + (t_in - 1)) * n + 0) * 2 + 1];
  }
  return out;
}

Tensor GluChannels(const Tensor& x) {
  TB_CHECK_EQ(x.rank(), 4);
  const int64_t channels = x.dim(1);
  TB_CHECK_EQ(channels % 2, 0);
  Tensor p = x.Slice(1, 0, channels / 2);
  Tensor q = x.Slice(1, channels / 2, channels);
  return p * q.Sigmoid();
}

}  // namespace trafficbench::models
