#include "src/models/common.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "src/graph/partition.h"
#include "src/graph/road_network.h"
#include "src/util/check.h"

namespace trafficbench::models {

namespace {
// Stored as atomics so test guards can flip them around model construction
// without synchronizing with other threads' reads. Models only read them in
// their constructors (support conversion and partitioning are build-time
// decisions).
std::atomic<double> g_support_density_threshold{
    sparse::kDefaultDensityThreshold};
std::atomic<int64_t> g_partition_node_threshold{1024};
std::atomic<int> g_partition_forced_parts{0};
}  // namespace

double GraphSupportDensityThreshold() {
  return g_support_density_threshold.load(std::memory_order_relaxed);
}

void SetGraphSupportDensityThreshold(double threshold) {
  g_support_density_threshold.store(threshold, std::memory_order_relaxed);
}

int64_t GraphPartitionNodeThreshold() {
  return g_partition_node_threshold.load(std::memory_order_relaxed);
}

void SetGraphPartitionNodeThreshold(int64_t threshold) {
  g_partition_node_threshold.store(threshold, std::memory_order_relaxed);
}

int GraphPartitionParts(int64_t num_nodes) {
  const int forced = g_partition_forced_parts.load(std::memory_order_relaxed);
  if (forced > 0) return forced;
  return static_cast<int>(
      std::clamp<int64_t>(num_nodes / 1024, int64_t{2}, int64_t{8}));
}

void SetGraphPartitionForcedParts(int parts) {
  g_partition_forced_parts.store(parts, std::memory_order_relaxed);
}

GraphPartitionGuard::GraphPartitionGuard(int64_t node_threshold,
                                         int forced_parts)
    : previous_threshold_(GraphPartitionNodeThreshold()),
      previous_parts_(g_partition_forced_parts.load(
          std::memory_order_relaxed)) {
  SetGraphPartitionNodeThreshold(node_threshold);
  SetGraphPartitionForcedParts(forced_parts);
}

GraphPartitionGuard::~GraphPartitionGuard() {
  SetGraphPartitionNodeThreshold(previous_threshold_);
  SetGraphPartitionForcedParts(previous_parts_);
}

GraphSupport::GraphSupport(Tensor dense) : dense_(std::move(dense)) {
  TB_CHECK(dense_.defined());
  TB_CHECK_EQ(dense_.rank(), 2);
  nnz_ = graph::SupportNnz(dense_);
  csr_ = sparse::CsrMatrix::FromDenseIfSparse(dense_,
                                              GraphSupportDensityThreshold());
  MaybePartition();
}

GraphSupport::GraphSupport(sparse::CsrPtr csr) : csr_(std::move(csr)) {
  TB_CHECK(csr_ != nullptr);
  nnz_ = csr_->nnz();
  MaybePartition();
}

void GraphSupport::MaybePartition() {
  if (csr_ == nullptr || csr_->rows() != csr_->cols()) return;
  if (csr_->rows() < GraphPartitionNodeThreshold()) return;
  const graph::GraphPartition partition =
      graph::PartitionCsr(*csr_, GraphPartitionParts(csr_->rows()));
  partitioned_ = sparse::PartitionedCsr::Build(csr_, partition);
}

Tensor GraphSupport::Apply(const Tensor& features) const {
  if (partitioned_ != nullptr) return SparseMatMul(partitioned_, features);
  if (csr_ != nullptr) return SparseMatMul(csr_, features);
  TB_CHECK(dense_.defined()) << "applying a default-constructed GraphSupport";
  return GraphMix(dense_, features);
}

double GraphSupport::density() const {
  const int64_t numel =
      dense_.defined() ? dense_.numel()
                       : (csr_ != nullptr ? csr_->rows() * csr_->cols() : 0);
  return numel > 0 ? static_cast<double>(nnz_) / static_cast<double>(numel)
                   : 0.0;
}

std::vector<GraphSupport> MakeSupports(const std::vector<Tensor>& dense) {
  std::vector<GraphSupport> supports;
  supports.reserve(dense.size());
  for (const Tensor& t : dense) supports.emplace_back(t);
  return supports;
}

std::vector<GraphSupport> MakeSupports(
    const std::vector<sparse::CsrPtr>& csr) {
  std::vector<GraphSupport> supports;
  supports.reserve(csr.size());
  for (const sparse::CsrPtr& c : csr) supports.emplace_back(c);
  return supports;
}

std::vector<float> LastTimeOfDay(const Tensor& x) {
  TB_CHECK_EQ(x.rank(), 4);
  TB_CHECK_EQ(x.dim(3), 2);
  const int64_t batch = x.dim(0);
  const int64_t t_in = x.dim(1);
  const int64_t n = x.dim(2);
  std::vector<float> out(batch);
  const float* data = x.data();
  for (int64_t b = 0; b < batch; ++b) {
    out[b] = data[((b * t_in + (t_in - 1)) * n + 0) * 2 + 1];
  }
  return out;
}

Tensor GluChannels(const Tensor& x) {
  TB_CHECK_EQ(x.rank(), 4);
  const int64_t channels = x.dim(1);
  TB_CHECK_EQ(channels % 2, 0);
  Tensor p = x.Slice(1, 0, channels / 2);
  Tensor q = x.Slice(1, channels / 2, channels);
  return p * q.Sigmoid();
}

}  // namespace trafficbench::models
