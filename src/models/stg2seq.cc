#include "src/models/stg2seq.h"

#include <cmath>

#include "src/graph/road_network.h"
#include "src/util/check.h"

namespace trafficbench::models {

namespace {
constexpr int64_t kDim = 32;
constexpr int kLongLayers = 3;
constexpr int kShortLayers = 2;
constexpr int kShortWindow = 3;
}  // namespace

Stg2Seq::Stg2Seq(const ModelContext& context)
    : num_nodes_(context.num_nodes),
      input_len_(context.input_len),
      output_len_(context.output_len) {
  Rng rng(context.seed);
  Tensor sym = graph::SymmetricNormalizedAdjacency(DenseAdjacency(context));
  support_ = GraphSupport(sym);
  {
    NoGradGuard no_grad;
    support2_ = GraphSupport(MatMul(sym, sym).Detach());
  }

  auto make_stack = [&](const char* prefix, int layers,
                        std::vector<Ggcm>* stack) {
    for (int l = 0; l < layers; ++l) {
      const int64_t d_in = l == 0 ? 2 : kDim;
      Ggcm ggcm;
      ggcm.mix = RegisterModule(
          std::string(prefix) + std::to_string(l) + ".mix",
          std::make_shared<nn::Linear>(2 * d_in, 2 * kDim, &rng));
      ggcm.residual = RegisterModule(
          std::string(prefix) + std::to_string(l) + ".residual",
          std::make_shared<nn::Linear>(d_in, kDim, &rng, /*use_bias=*/false));
      stack->push_back(std::move(ggcm));
    }
  };
  make_stack("long", kLongLayers, &long_encoder_);
  make_stack("short", kShortLayers, &short_encoder_);

  horizon_embedding_ = RegisterParameter(
      "horizon_embedding",
      Tensor::Randn(Shape({output_len_, kDim}), &rng, 0.3f));
  query_proj_ = RegisterModule(
      "query_proj", std::make_shared<nn::Linear>(kDim, kDim, &rng));
  head_hidden_ = RegisterModule(
      "head_hidden", std::make_shared<nn::Linear>(2 * kDim, kDim, &rng));
  head_out_ = RegisterModule("head_out",
                             std::make_shared<nn::Linear>(kDim, 1, &rng));
}

Tensor Stg2Seq::RunGgcm(const Ggcm& ggcm, const Tensor& h) const {
  Tensor hop1 = support_.Apply(h);
  Tensor hop2 = support2_.Apply(h);
  Tensor mixed = ggcm.mix->Forward(Concat({hop1, hop2}, -1));  // [..., 2D]
  const int64_t d_out = mixed.dim(-1) / 2;
  Tensor value = mixed.Slice(-1, 0, d_out);
  Tensor gate = mixed.Slice(-1, d_out, 2 * d_out);
  return value * gate.Sigmoid() + ggcm.residual->Forward(h);
}

Tensor Stg2Seq::Forward(const Tensor& x, const Tensor& teacher) {
  (void)teacher;
  TB_CHECK_EQ(x.rank(), 4);
  const int64_t batch = x.dim(0);

  // Long-term encoder over all steps at once: [B, T, N, C] flows through
  // the GGCM stack (graph conv acts on the N axis).
  Tensor long_features = x;
  for (const Ggcm& ggcm : long_encoder_) {
    long_features = RunGgcm(ggcm, long_features);
  }
  // long_features: [B, T_in, N, D]

  // Short-term encoder over the last kShortWindow steps, mean-pooled.
  Tensor short_features = x.Slice(1, input_len_ - kShortWindow, input_len_);
  for (const Ggcm& ggcm : short_encoder_) {
    short_features = RunGgcm(ggcm, short_features);
  }
  Tensor short_summary = short_features.Mean({1});  // [B, N, D]

  // Attention output module: one learned query per horizon step attends
  // over the encoded history (per node).
  Tensor queries = query_proj_->Forward(horizon_embedding_);  // [T_out, D]
  const float scale = 1.0f / std::sqrt(static_cast<float>(kDim));
  // scores[b, t_out, t_in, n] = <F[b, t_in, n, :], q[t_out, :]> * scale
  // Compute via matmul: F [B, T_in, N, D] x q^T [D, T_out]
  Tensor scores = MatMul(long_features, queries.Transpose(0, 1)) * scale;
  // [B, T_in, N, T_out] -> softmax over T_in
  Tensor alpha = scores.Softmax(1);
  std::vector<Tensor> outputs;
  outputs.reserve(output_len_);
  for (int t = 0; t < output_len_; ++t) {
    Tensor a = alpha.Slice(3, t, t + 1);              // [B, T_in, N, 1]
    Tensor context = (long_features * a).Sum({1});    // [B, N, D]
    Tensor combined = Concat({context, short_summary}, -1);
    Tensor y = head_out_->Forward(head_hidden_->Forward(combined).Relu());
    outputs.push_back(y.Squeeze(2));  // [B, N]
  }
  (void)batch;
  return Stack(outputs, 1);
}

std::unique_ptr<TrafficModel> CreateStg2Seq(const ModelContext& context) {
  return std::make_unique<Stg2Seq>(context);
}

}  // namespace trafficbench::models
