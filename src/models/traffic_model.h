#ifndef TRAFFICBENCH_MODELS_TRAFFIC_MODEL_H_
#define TRAFFICBENCH_MODELS_TRAFFIC_MODEL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/nn/module.h"
#include "src/tensor/sparse.h"
#include "src/tensor/tensor.h"

namespace trafficbench::models {

/// Common interface of every traffic prediction model in the zoo.
///
/// Inputs follow the paper's protocol: T' = 12 historical steps with two
/// channels (z-scored reading, time of day) map to T = 12 future steps.
class TrafficModel : public nn::Module {
 public:
  /// x: [B, T_in, N, 2]. Returns normalized predictions [B, T_out, N].
  ///
  /// `teacher` optionally carries normalized targets [B, T_out, N] for
  /// sequence-to-sequence teacher forcing; models that use it must fall
  /// back to autoregressive decoding when it is undefined (evaluation).
  virtual Tensor Forward(const Tensor& x, const Tensor& teacher) = 0;

  /// Model name as reported in the paper's tables.
  virtual std::string name() const = 0;

  /// False for closed-form baselines (historical average, persistence)
  /// that are fitted, not trained by gradient descent.
  virtual bool IsTrainable() const { return true; }

  /// Hook for non-trainable baselines to estimate their statistics from
  /// the training split. Default: no-op.
  virtual void Fit(const data::TrafficDataset& dataset) { (void)dataset; }
};

/// Everything a model constructor needs about its deployment.
struct ModelContext {
  /// Number of sensors N.
  int64_t num_nodes = 0;
  /// Input/output sequence lengths (both 12 in the paper's protocol).
  int input_len = 12;
  int output_len = 12;
  /// Gaussian-kernel weighted adjacency [N, N]. Undefined for city-scale
  /// contexts (num_nodes >= graph::kDenseAdjacencyNodeLimit), where only
  /// `adjacency_csr` is populated — models needing the full matrix go
  /// through DenseAdjacency() below.
  Tensor adjacency;
  /// Sparse form of the adjacency, populated instead of `adjacency` for
  /// city-scale contexts (built by RoadNetwork::SparseGaussianAdjacency, so
  /// no N x N tensor ever exists on that path).
  sparse::CsrPtr adjacency_csr;
  /// Seed for parameter initialization and dropout streams.
  uint64_t seed = 1;
};

/// The dense adjacency of a context: `adjacency` when defined, otherwise
/// `adjacency_csr` materialized. Models whose operators are inherently
/// dense (spectral embeddings, Chebyshev bases) call this — at city scale
/// they pay the N x N cost explicitly rather than silently.
Tensor DenseAdjacency(const ModelContext& context);

using ModelFactory =
    std::function<std::unique_ptr<TrafficModel>(const ModelContext&)>;

/// Global model registry (names match the paper: "STGCN", "DCRNN", ...).
class ModelRegistry {
 public:
  static ModelRegistry& Instance();

  void Register(const std::string& name, ModelFactory factory);
  std::unique_ptr<TrafficModel> Create(const std::string& name,
                                       const ModelContext& context) const;
  bool Contains(const std::string& name) const;
  /// Registered names in registration order.
  std::vector<std::string> Names() const;

 private:
  ModelRegistry() = default;
  std::vector<std::pair<std::string, ModelFactory>> factories_;
};

/// Builds the ModelContext for a dataset.
ModelContext MakeModelContext(const data::TrafficDataset& dataset,
                              uint64_t seed);

/// The eight deep models of the paper, in its presentation order.
std::vector<std::string> PaperModelNames();
/// The naive baselines (historical average, last-value persistence).
std::vector<std::string> BaselineModelNames();

/// Registers all built-in models; idempotent, called by CreateModel and the
/// experiment binaries.
void RegisterBuiltinModels();

/// Convenience: RegisterBuiltinModels() + registry lookup.
std::unique_ptr<TrafficModel> CreateModel(const std::string& name,
                                          const ModelContext& context);

}  // namespace trafficbench::models

#endif  // TRAFFICBENCH_MODELS_TRAFFIC_MODEL_H_
