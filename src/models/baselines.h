#ifndef TRAFFICBENCH_MODELS_BASELINES_H_
#define TRAFFICBENCH_MODELS_BASELINES_H_

#include <memory>
#include <vector>

#include "src/models/traffic_model.h"

namespace trafficbench::models {

/// Historical average: per-node mean of the training series in 15-minute
/// time-of-day buckets, separately for weekdays and weekends. Anchors the
/// error scale of the learned models.
class HistoricalAverage : public TrafficModel {
 public:
  explicit HistoricalAverage(const ModelContext& context);

  Tensor Forward(const Tensor& x, const Tensor& teacher) override;
  std::string name() const override { return "HistoricalAverage"; }
  bool IsTrainable() const override { return false; }
  void Fit(const data::TrafficDataset& dataset) override;

 private:
  static constexpr int kBuckets = 96;  // 15-minute buckets over the day
  int64_t num_nodes_;
  int output_len_;
  // means_[bucket * num_nodes + node], normalized scale.
  std::vector<float> means_;
  float global_mean_norm_ = 0.0f;
};

/// Persistence: repeat the last observed (normalized) reading for every
/// horizon. The weakest sensible baseline.
class LastValue : public TrafficModel {
 public:
  explicit LastValue(const ModelContext& context);

  Tensor Forward(const Tensor& x, const Tensor& teacher) override;
  std::string name() const override { return "LastValue"; }
  bool IsTrainable() const override { return false; }

 private:
  int output_len_;
};

std::unique_ptr<TrafficModel> CreateHistoricalAverage(
    const ModelContext& context);
std::unique_ptr<TrafficModel> CreateLastValue(const ModelContext& context);

}  // namespace trafficbench::models

#endif  // TRAFFICBENCH_MODELS_BASELINES_H_
