#include "src/models/stsgcn.h"

#include "src/graph/road_network.h"
#include "src/util/check.h"

namespace trafficbench::models {

namespace {
constexpr int64_t kDim = 16;
constexpr int64_t kHeadHidden = 32;
}  // namespace

Stsgcn::Stsgcn(const ModelContext& context)
    : num_nodes_(context.num_nodes),
      input_len_(context.input_len),
      output_len_(context.output_len) {
  TB_CHECK_GE(input_len_, 5) << "STSGCN needs at least two window layers";
  Rng rng(context.seed);

  // Localized spatio-temporal adjacency over 3 consecutive steps:
  // diagonal blocks are the (normalized) spatial graph, off-diagonal
  // blocks connect each node to itself at the adjacent step.
  {
    Tensor sym = graph::SymmetricNormalizedAdjacency(DenseAdjacency(context));
    const int64_t n = num_nodes_;
    std::vector<float> local(9 * n * n, 0.0f);
    const float* s = sym.data();
    const int64_t stride = 3 * n;
    for (int block = 0; block < 3; ++block) {
      const int64_t offset = block * n;
      for (int64_t i = 0; i < n; ++i) {
        for (int64_t j = 0; j < n; ++j) {
          local[(offset + i) * stride + offset + j] = s[i * n + j];
        }
      }
    }
    for (int block = 0; block + 1 < 3; ++block) {
      const int64_t a = block * n;
      const int64_t b = (block + 1) * n;
      for (int64_t i = 0; i < n; ++i) {
        local[(a + i) * stride + b + i] = 0.8f;  // forward temporal edge
        local[(b + i) * stride + a + i] = 0.8f;  // backward temporal edge
      }
    }
    local_adjacency_ = GraphSupport(
        Tensor::FromVector(Shape({stride, stride}), std::move(local)));
  }

  input_embed_ = RegisterModule(
      "input_embed", std::make_shared<nn::Linear>(2, kDim, &rng));

  auto make_layer = [&](const char* prefix, int count,
                        std::vector<SyncModule>* layer) {
    for (int w = 0; w < count; ++w) {
      SyncModule module;
      const std::string name = std::string(prefix) + std::to_string(w);
      module.conv1 = RegisterModule(
          name + ".conv1", std::make_shared<nn::Linear>(kDim, 2 * kDim, &rng));
      module.conv2 = RegisterModule(
          name + ".conv2", std::make_shared<nn::Linear>(kDim, 2 * kDim, &rng));
      layer->push_back(std::move(module));
    }
  };
  make_layer("l1_", input_len_ - 2, &layer1_);
  make_layer("l2_", input_len_ - 4, &layer2_);

  const int64_t t_final = input_len_ - 4;
  for (int t = 0; t < output_len_; ++t) {
    Head head;
    head.hidden = RegisterModule(
        "head" + std::to_string(t) + ".hidden",
        std::make_shared<nn::Linear>(t_final * kDim, kHeadHidden, &rng));
    head.out = RegisterModule(
        "head" + std::to_string(t) + ".out",
        std::make_shared<nn::Linear>(kHeadHidden, 1, &rng));
    heads_.push_back(std::move(head));
  }
}

Tensor Stsgcn::RunModule(const SyncModule& module, const Tensor& window) const {
  // GLU graph conv 1.
  Tensor h = local_adjacency_.Apply(window);
  Tensor mixed = module.conv1->Forward(h);
  Tensor value = mixed.Slice(-1, 0, kDim);
  Tensor gate = mixed.Slice(-1, kDim, 2 * kDim);
  h = value * gate.Sigmoid() + window;  // residual
  // GLU graph conv 2.
  Tensor h2 = local_adjacency_.Apply(h);
  mixed = module.conv2->Forward(h2);
  value = mixed.Slice(-1, 0, kDim);
  gate = mixed.Slice(-1, kDim, 2 * kDim);
  h = value * gate.Sigmoid() + h;
  // Crop the middle step's nodes.
  return h.Slice(1, num_nodes_, 2 * num_nodes_);
}

Tensor Stsgcn::Forward(const Tensor& x, const Tensor& teacher) {
  (void)teacher;
  TB_CHECK_EQ(x.rank(), 4);
  const int64_t batch = x.dim(0);

  Tensor h = input_embed_->Forward(x).Relu();  // [B, T, N, D]

  auto run_layer = [&](const std::vector<SyncModule>& layer,
                       const Tensor& features) {
    const int64_t t_len = features.dim(1);
    std::vector<Tensor> outputs;
    outputs.reserve(layer.size());
    for (size_t w = 0; w < layer.size(); ++w) {
      Tensor window = features.Slice(1, static_cast<int64_t>(w),
                                     static_cast<int64_t>(w) + 3);
      // [B, 3, N, D] -> [B, 3N, D]
      window = window.Reshape(
          Shape({batch, 3 * num_nodes_, kDim}));
      outputs.push_back(RunModule(layer[w], window));  // [B, N, D]
    }
    (void)t_len;
    return Stack(outputs, 1);  // [B, T-2, N, D]
  };

  h = run_layer(layer1_, h);
  h = run_layer(layer2_, h);  // [B, T-4, N, D]

  // Individual per-horizon heads over flattened (T_final, D) per node.
  const int64_t t_final = h.dim(1);
  Tensor features = h.Permute({0, 2, 1, 3})
                        .Reshape(Shape({batch, num_nodes_, t_final * kDim}));
  std::vector<Tensor> outputs;
  outputs.reserve(output_len_);
  for (int t = 0; t < output_len_; ++t) {
    Tensor y = heads_[t].out->Forward(
        heads_[t].hidden->Forward(features).Relu());
    outputs.push_back(y.Squeeze(2));
  }
  return Stack(outputs, 1);
}

std::unique_ptr<TrafficModel> CreateStsgcn(const ModelContext& context) {
  return std::make_unique<Stsgcn>(context);
}

}  // namespace trafficbench::models
