#ifndef TRAFFICBENCH_MODELS_GMAN_H_
#define TRAFFICBENCH_MODELS_GMAN_H_

#include <memory>
#include <vector>

#include "src/models/traffic_model.h"
#include "src/nn/layers.h"

namespace trafficbench::models {

/// GMAN (Zheng et al., AAAI 2020): encoder–decoder built entirely from
/// attention. Every position carries a spatio-temporal embedding (STE):
/// a graph (spectral) node embedding plus a time-of-day encoding. Encoder
/// and decoder blocks run spatial attention (over nodes) and temporal
/// attention (over steps) in parallel and merge them with a gated fusion;
/// a **transform attention** maps the encoded history directly onto each
/// future step — which is why GMAN does not recurse and keeps its accuracy
/// at the 60-minute horizon, at the price of the heaviest computation.
class Gman : public TrafficModel {
 public:
  explicit Gman(const ModelContext& context);

  Tensor Forward(const Tensor& x, const Tensor& teacher) override;
  std::string name() const override { return "GMAN"; }

 private:
  struct StAttentionBlock {
    std::shared_ptr<nn::MultiHeadAttention> spatial;
    std::shared_ptr<nn::MultiHeadAttention> temporal;
    std::shared_ptr<nn::Linear> fuse_s, fuse_t;  // gated fusion
    std::shared_ptr<nn::LayerNorm> norm;
  };

  /// h, ste: [B, T, N, D].
  Tensor RunBlock(const StAttentionBlock& block, const Tensor& h,
                  const Tensor& ste) const;

  /// Projected Fourier time-of-day embedding [B, steps, 1, D], computed
  /// from `x`'s time channel through trace::HostOp so compiled plans keep
  /// it input-dependent. `future` rolls the last history step forward.
  Tensor TemporalFeatures(const Tensor& x, bool future) const;

  StAttentionBlock MakeBlock(const std::string& prefix, Rng* rng);

  int64_t num_nodes_;
  int input_len_;
  int output_len_;

  Tensor spatial_base_;                      // [N, kGeoDim] spectral embedding
  std::shared_ptr<nn::Linear> se_proj_;      // kGeoDim -> D
  std::shared_ptr<nn::Linear> te_proj_;      // Fourier dims -> D
  std::shared_ptr<nn::Linear> input_proj_;   // 2 -> D
  StAttentionBlock encoder_;
  std::shared_ptr<nn::MultiHeadAttention> transform_;
  StAttentionBlock decoder_;
  std::shared_ptr<nn::Linear> out_hidden_;   // D -> D
  std::shared_ptr<nn::Linear> out_proj_;     // D -> 1
};

std::unique_ptr<TrafficModel> CreateGman(const ModelContext& context);

}  // namespace trafficbench::models

#endif  // TRAFFICBENCH_MODELS_GMAN_H_
