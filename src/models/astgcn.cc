#include "src/models/astgcn.h"

#include <cmath>

#include "src/graph/road_network.h"
#include "src/models/common.h"
#include "src/util/check.h"

namespace trafficbench::models {

namespace {
constexpr int kChebOrder = 3;
constexpr int64_t kChannels = 32;
constexpr int64_t kAttentionDim = 16;
constexpr int64_t kHeadHidden = 64;
}  // namespace

Astgcn::Astgcn(const ModelContext& context)
    : num_nodes_(context.num_nodes),
      input_len_(context.input_len),
      output_len_(context.output_len) {
  Rng rng(context.seed);
  cheb_ = MakeSupports(graph::ChebyshevBasis(
      graph::ScaledLaplacian(DenseAdjacency(context)), kChebOrder));

  auto make_block = [&](int64_t c_in, int64_t c_out, int index) {
    Block block;
    const std::string prefix = "block" + std::to_string(index);
    block.t_query = RegisterModule(
        prefix + ".tq", std::make_shared<nn::Linear>(c_in, kAttentionDim, &rng));
    block.t_key = RegisterModule(
        prefix + ".tk", std::make_shared<nn::Linear>(c_in, kAttentionDim, &rng));
    block.t_score = RegisterModule(
        prefix + ".ts",
        std::make_shared<nn::Linear>(kAttentionDim, 1, &rng, false));
    block.s_query = RegisterModule(
        prefix + ".sq", std::make_shared<nn::Linear>(c_in, kAttentionDim, &rng));
    block.s_key = RegisterModule(
        prefix + ".sk", std::make_shared<nn::Linear>(c_in, kAttentionDim, &rng));
    block.s_score = RegisterModule(
        prefix + ".ss",
        std::make_shared<nn::Linear>(kAttentionDim, 1, &rng, false));
    const float limit = std::sqrt(6.0f / static_cast<float>(c_in + c_out));
    for (int k = 0; k < kChebOrder; ++k) {
      block.cheb_weights.push_back(RegisterParameter(
          prefix + ".cheb_w" + std::to_string(k),
          Tensor::Rand(Shape({c_in, c_out}), &rng, -limit, limit)));
    }
    block.cheb_bias = RegisterParameter(prefix + ".cheb_b",
                                        Tensor::Zeros(Shape({c_out})));
    block.temporal = RegisterModule(
        prefix + ".temporal",
        std::make_shared<nn::Conv2dLayer>(c_out, c_out, 1, 3, &rng, 1, 1, 0,
                                          1));
    block.residual = RegisterModule(
        prefix + ".residual",
        std::make_shared<nn::Conv2dLayer>(c_in, c_out, 1, 1, &rng));
    block.norm =
        RegisterModule(prefix + ".norm", std::make_shared<nn::LayerNorm>(c_out));
    blocks_.push_back(std::move(block));
  };
  make_block(2, kChannels, 0);
  make_block(kChannels, kChannels, 1);

  head_hidden_ = RegisterModule(
      "head_hidden",
      std::make_shared<nn::Linear>(input_len_ * kChannels, kHeadHidden, &rng));
  head_out_ = RegisterModule(
      "head_out", std::make_shared<nn::Linear>(kHeadHidden, output_len_, &rng));
}

namespace {

/// Additive attention map over `L` positions: features [B, L, C] ->
/// softmax scores [B, L, L] (row i attends over all j).
Tensor AdditiveAttention(const nn::Linear& query, const nn::Linear& key,
                         const nn::Linear& score, const Tensor& features) {
  Tensor q = query.Forward(features).Unsqueeze(2);  // [B, L, 1, D]
  Tensor k = key.Forward(features).Unsqueeze(1);    // [B, 1, L, D]
  Tensor e = score.Forward((q + k).Tanh()).Squeeze(3);  // [B, L, L]
  return e.Softmax(-1);
}

}  // namespace

Tensor Astgcn::RunBlock(const Block& block, const Tensor& x) const {
  const int64_t t_len = x.dim(3);

  // --- Temporal attention: reweight time steps -----------------------------
  // Mean over nodes: [B, C, N, T] -> [B, T, C].
  Tensor time_features = x.Mean({2}).Permute({0, 2, 1});
  Tensor e = AdditiveAttention(*block.t_query, *block.t_key, *block.t_score,
                               time_features);  // [B, T, T]
  // x_t[..., t] = sum_s E[t, s] * x[..., s]: contract the last axis.
  Tensor xt = MatMul(x, e.Unsqueeze(1).Transpose(-1, -2));  // [B, C, N, T]

  // --- Spatial attention: modulate the Chebyshev supports -------------------
  // Mean over time: [B, C, N, T] -> [B, N, C].
  Tensor node_features = xt.Mean({3}).Permute({0, 2, 1});
  Tensor s = AdditiveAttention(*block.s_query, *block.s_key, *block.s_score,
                               node_features);  // [B, N, N]

  // --- Chebyshev graph convolution with attention-scaled supports -----------
  Tensor features = FromBcnt(xt);  // [B, T, N, C]
  Tensor mixed;
  for (int k = 0; k < kChebOrder; ++k) {
    // T_k ⊙ S: [N, N] * [B, 1, N, N] (broadcast over batch and time).
    Tensor support = cheb_[k].dense() * s.Unsqueeze(1);
    Tensor term = MatMul(MatMul(support, features), block.cheb_weights[k]);
    mixed = mixed.defined() ? mixed + term : term;
  }
  mixed = (mixed + block.cheb_bias).Relu();
  Tensor h = ToBcnt(mixed);  // [B, C_out, N, T]

  // --- Temporal convolution + residual + layer norm --------------------------
  h = block.temporal->Forward(h);
  TB_CHECK_EQ(h.dim(3), t_len);
  h = (h + block.residual->Forward(x)).Relu();
  return ToBcnt(block.norm->Forward(FromBcnt(h)));
}

Tensor Astgcn::Forward(const Tensor& x, const Tensor& teacher) {
  (void)teacher;
  TB_CHECK_EQ(x.rank(), 4);
  const int64_t batch = x.dim(0);

  Tensor h = ToBcnt(x);
  for (const Block& block : blocks_) h = RunBlock(block, h);

  // Head: flatten (T, C) per node, two-layer FC to all horizons.
  Tensor features = h.Permute({0, 2, 3, 1})  // [B, N, T, C]
                        .Reshape(Shape({batch, num_nodes_,
                                        input_len_ * kChannels}));
  Tensor hidden = head_hidden_->Forward(features).Relu();
  Tensor out = head_out_->Forward(hidden);  // [B, N, T_out]
  return out.Permute({0, 2, 1});
}

std::unique_ptr<TrafficModel> CreateAstgcn(const ModelContext& context) {
  return std::make_unique<Astgcn>(context);
}

}  // namespace trafficbench::models
