#ifndef TRAFFICBENCH_MODELS_ASTGCN_H_
#define TRAFFICBENCH_MODELS_ASTGCN_H_

#include <memory>
#include <vector>

#include "src/models/common.h"
#include "src/models/traffic_model.h"
#include "src/nn/layers.h"

namespace trafficbench::models {

/// ASTGCN (Guo et al., AAAI 2019), recent-component branch: each block
/// computes a temporal attention map reweighting the input time steps, a
/// spatial attention map modulating the Chebyshev graph convolution
/// supports, then a temporal convolution with a residual connection.
/// A final per-node fully-connected head emits all 12 horizons at once.
///
/// (The paper's daily/weekly periodic branches require history longer than
/// the T' = 12 protocol window, so — like the benchmark's unified setup —
/// only the recent component is active.)
class Astgcn : public TrafficModel {
 public:
  explicit Astgcn(const ModelContext& context);

  Tensor Forward(const Tensor& x, const Tensor& teacher) override;
  std::string name() const override { return "ASTGCN"; }

 private:
  struct Block {
    // Additive temporal attention over mean-pooled node features.
    std::shared_ptr<nn::Linear> t_query, t_key, t_score;
    // Additive spatial attention over mean-pooled time features.
    std::shared_ptr<nn::Linear> s_query, s_key, s_score;
    // Chebyshev weights (per polynomial order).
    std::vector<Tensor> cheb_weights;
    Tensor cheb_bias;
    // Temporal convolution (same-length, kernel (1,3)).
    std::shared_ptr<nn::Conv2dLayer> temporal;
    // Residual 1x1 channel alignment.
    std::shared_ptr<nn::Conv2dLayer> residual;
    std::shared_ptr<nn::LayerNorm> norm;
  };

  /// x: [B, C, N, T] -> [B, C', N, T].
  Tensor RunBlock(const Block& block, const Tensor& x) const;

  int64_t num_nodes_;
  int input_len_;
  int output_len_;
  // Chebyshev basis. ASTGCN scales every T_k elementwise by a per-batch
  // spatial-attention map before propagating, so the effective support is
  // a batched dense tensor — GraphSupport::dense() keeps that product on
  // the blocked GEMM path while still reporting density stats.
  std::vector<GraphSupport> cheb_;
  std::vector<Block> blocks_;
  std::shared_ptr<nn::Linear> head_hidden_;
  std::shared_ptr<nn::Linear> head_out_;
};

std::unique_ptr<TrafficModel> CreateAstgcn(const ModelContext& context);

}  // namespace trafficbench::models

#endif  // TRAFFICBENCH_MODELS_ASTGCN_H_
