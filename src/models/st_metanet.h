#ifndef TRAFFICBENCH_MODELS_ST_METANET_H_
#define TRAFFICBENCH_MODELS_ST_METANET_H_

#include <memory>
#include <vector>

#include "src/models/traffic_model.h"
#include "src/nn/layers.h"

namespace trafficbench::models {

/// ST-MetaNet (Pan et al., KDD 2019): a sequence-to-sequence GRU whose
/// weights are *generated per node* by meta-learners conditioned on static
/// node meta-knowledge (here: the spectral embedding of the road graph,
/// standing in for the paper's geo-features), plus a GAT-style spatial
/// layer whose projections are likewise meta-generated.
///
/// Because every learned map is a function of invariant node knowledge,
/// the model carries the fewest parameters in the zoo — and, as the paper
/// observes, adapts worst when conditions change abruptly.
class StMetaNet : public TrafficModel {
 public:
  explicit StMetaNet(const ModelContext& context);

  Tensor Forward(const Tensor& x, const Tensor& teacher) override;
  std::string name() const override { return "ST-MetaNet"; }

 private:
  /// Per-node GRU step with meta-generated weights.
  /// x: [B, N, in], h: [B, N, H] -> [B, N, H].
  Tensor MetaGruStep(const Tensor& x, const Tensor& h,
                     const Tensor& gate_weights, const Tensor& cand_weights,
                     int64_t input_size) const;

  /// Meta-GAT over the adjacency mask: h [B, N, H] -> [B, N, H].
  Tensor MetaGat(const Tensor& h) const;

  /// Applies a per-node generated weight bank:
  /// input [B, N, D_in] x weights [N, D_in, D_out] -> [B, N, D_out].
  static Tensor PerNodeLinear(const Tensor& input, const Tensor& weights);

  int64_t num_nodes_;
  int input_len_;
  int output_len_;

  Tensor meta_knowledge_;  // [N, meta_dim], derived + learned projection
  Tensor adjacency_bias_;  // [N, N]: 0 on edges, -inf elsewhere

  // Meta-learners (shared Linear layers generating per-node weights).
  std::shared_ptr<nn::Linear> meta_proj_;
  std::shared_ptr<nn::Linear> gen_enc_gates_, gen_enc_cand_;
  std::shared_ptr<nn::Linear> gen_dec_gates_, gen_dec_cand_;
  std::shared_ptr<nn::Linear> gen_gat_proj_;
  // Edge meta-MLP: scores every (i, j) pair from the projected hidden
  // states of both endpoints plus their static meta-knowledge.
  std::shared_ptr<nn::Linear> edge_hidden_;
  std::shared_ptr<nn::Linear> edge_score_;
  std::shared_ptr<nn::Linear> gat_out_;
  std::shared_ptr<nn::Linear> projection_;
};

std::unique_ptr<TrafficModel> CreateStMetaNet(const ModelContext& context);

}  // namespace trafficbench::models

#endif  // TRAFFICBENCH_MODELS_ST_METANET_H_
