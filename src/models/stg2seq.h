#ifndef TRAFFICBENCH_MODELS_STG2SEQ_H_
#define TRAFFICBENCH_MODELS_STG2SEQ_H_

#include <memory>
#include <vector>

#include "src/models/common.h"
#include "src/models/traffic_model.h"
#include "src/nn/layers.h"

namespace trafficbench::models {

/// STG2Seq (Bai et al., IJCAI 2019): purely graph-convolutional
/// sequence-to-sequence forecasting. A long-term encoder applies stacked
/// gated graph convolution modules (GGCMs, spatial-based GCN + GLU gating)
/// to every history step; a short-term encoder summarizes the most recent
/// steps; an attention-based output module generates each horizon step from
/// a learned horizon query attending over the encoded history.
class Stg2Seq : public TrafficModel {
 public:
  explicit Stg2Seq(const ModelContext& context);

  Tensor Forward(const Tensor& x, const Tensor& teacher) override;
  std::string name() const override { return "STG2Seq"; }

 private:
  struct Ggcm {
    // Two-hop graph conv with GLU gating: GLU([A h ‖ A² h] W) + residual.
    std::shared_ptr<nn::Linear> mix;          // 2*D_in -> 2*D_out
    std::shared_ptr<nn::Linear> residual;     // D_in -> D_out (1x1 align)
  };

  /// h: [..., N, D_in] -> [..., N, D_out].
  Tensor RunGgcm(const Ggcm& ggcm, const Tensor& h) const;

  int64_t num_nodes_;
  int input_len_;
  int output_len_;
  GraphSupport support_;   // A_sym
  GraphSupport support2_;  // A_sym^2 (denser; may fall back to GEMM)

  std::vector<Ggcm> long_encoder_;
  std::vector<Ggcm> short_encoder_;
  Tensor horizon_embedding_;                 // [T_out, D]
  std::shared_ptr<nn::Linear> query_proj_;   // D -> D
  std::shared_ptr<nn::Linear> head_hidden_;  // 2D -> D
  std::shared_ptr<nn::Linear> head_out_;     // D -> 1
};

std::unique_ptr<TrafficModel> CreateStg2Seq(const ModelContext& context);

}  // namespace trafficbench::models

#endif  // TRAFFICBENCH_MODELS_STG2SEQ_H_
