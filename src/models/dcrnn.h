#ifndef TRAFFICBENCH_MODELS_DCRNN_H_
#define TRAFFICBENCH_MODELS_DCRNN_H_

#include <memory>
#include <vector>

#include "src/models/common.h"
#include "src/models/traffic_model.h"
#include "src/nn/layers.h"

namespace trafficbench::models {

/// Bidirectional diffusion convolution (Li et al., ICLR 2018): features are
/// propagated K steps along the forward random-walk transition matrix and K
/// steps along the reverse one, concatenated, and linearly mixed.
class DiffusionConv : public nn::Module {
 public:
  /// `supports` are the K-step propagation matrices (already includes both
  /// directions and powers); identity is prepended implicitly.
  DiffusionConv(std::vector<GraphSupport> supports, int64_t in_features,
                int64_t out_features, Rng* rng);

  /// x: [B, N, C_in] -> [B, N, C_out].
  Tensor Forward(const Tensor& x) const;

 private:
  std::vector<GraphSupport> supports_;
  std::shared_ptr<nn::Linear> mix_;
};

/// GRU cell whose dense maps are replaced by diffusion convolutions.
class DcGruCell : public nn::Module {
 public:
  DcGruCell(const std::vector<GraphSupport>& supports, int64_t input_size,
            int64_t hidden_size, Rng* rng);

  /// x: [B, N, in], h: [B, N, hidden] -> new hidden state.
  Tensor Forward(const Tensor& x, const Tensor& h) const;

  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t hidden_size_;
  std::shared_ptr<DiffusionConv> gates_;
  std::shared_ptr<DiffusionConv> candidate_;
};

/// DCRNN: encoder–decoder of DcGruCells. Teacher forcing during training,
/// autoregressive decoding at evaluation — the error-accumulation behaviour
/// the paper attributes to RNN seq2seq models at long horizons.
class Dcrnn : public TrafficModel {
 public:
  explicit Dcrnn(const ModelContext& context);

  Tensor Forward(const Tensor& x, const Tensor& teacher) override;
  std::string name() const override { return "DCRNN"; }

 private:
  int64_t num_nodes_;
  int input_len_;
  int output_len_;
  std::shared_ptr<DcGruCell> encoder_;
  std::shared_ptr<DcGruCell> decoder_;
  std::shared_ptr<nn::Linear> projection_;
};

std::unique_ptr<TrafficModel> CreateDcrnn(const ModelContext& context);

/// Builds [P, P^2, P_rev, P_rev^2] diffusion supports from an adjacency.
std::vector<Tensor> DiffusionSupports(const Tensor& adjacency, int max_step);

/// Sparse-native counterpart for city-scale adjacencies: the same support
/// family built entirely in CSR form (row-normalization plus SpGemm powers),
/// never materializing an N x N tensor.
std::vector<sparse::CsrPtr> DiffusionSupportsCsr(
    const sparse::CsrPtr& adjacency, int max_step);

}  // namespace trafficbench::models

#endif  // TRAFFICBENCH_MODELS_DCRNN_H_
