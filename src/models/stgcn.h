#ifndef TRAFFICBENCH_MODELS_STGCN_H_
#define TRAFFICBENCH_MODELS_STGCN_H_

#include <memory>
#include <vector>

#include "src/models/common.h"
#include "src/models/traffic_model.h"
#include "src/nn/layers.h"

namespace trafficbench::models {

/// STGCN (Yu et al., IJCAI 2018): two ST-Conv blocks — gated temporal
/// convolution, Chebyshev spectral graph convolution, gated temporal
/// convolution — followed by an output head that predicts **one** step
/// (the many-to-one architecture the paper calls out).
///
/// Training optimizes the one-step-ahead prediction only (the remaining
/// horizon slots are filled with detached teacher values so the loss
/// tensor has the uniform [B, T_out, N] shape but no gradient flows into
/// the filler). Evaluation rolls the model out autoregressively for all
/// 12 steps, which is why STGCN pairs the cheapest training epoch with a
/// slow inference pass in Table III.
class Stgcn : public TrafficModel {
 public:
  explicit Stgcn(const ModelContext& context);

  Tensor Forward(const Tensor& x, const Tensor& teacher) override;
  std::string name() const override { return "STGCN"; }

 private:
  /// One-step prediction from a [B, T_in, N, 2] window -> [B, N].
  Tensor PredictOneStep(const Tensor& window);

  /// Chebyshev graph convolution over [B, C, N, T].
  Tensor ChebConv(const Tensor& x, const std::vector<Tensor>& weights,
                  const Tensor& bias) const;

  int64_t num_nodes_;
  int input_len_;
  int output_len_;
  // T_0..T_{K-1} of the scaled Laplacian; T_0 (identity) and sparse
  // Laplacians run as CSR SpMM, dense ones fall back to blocked GEMM.
  std::vector<GraphSupport> cheb_;

  // Block 1.
  std::shared_ptr<nn::Conv2dLayer> t1a_;  // 2 -> 2*c1 (GLU)
  std::vector<Tensor> g1_weights_;        // K x [c1, c2]
  Tensor g1_bias_;
  std::shared_ptr<nn::Conv2dLayer> t1b_;  // c2 -> 2*c1
  std::shared_ptr<nn::LayerNorm> ln1_;

  // Block 2.
  std::shared_ptr<nn::Conv2dLayer> t2a_;
  std::vector<Tensor> g2_weights_;
  Tensor g2_bias_;
  std::shared_ptr<nn::Conv2dLayer> t2b_;
  std::shared_ptr<nn::LayerNorm> ln2_;

  // Output head: temporal collapse + per-node FC to one step.
  std::shared_ptr<nn::Conv2dLayer> out_conv_;
  std::shared_ptr<nn::Linear> out_fc_;
};

std::unique_ptr<TrafficModel> CreateStgcn(const ModelContext& context);

}  // namespace trafficbench::models

#endif  // TRAFFICBENCH_MODELS_STGCN_H_
