#include "src/models/graph_wavenet.h"

#include "src/models/common.h"
#include "src/models/dcrnn.h"  // DiffusionSupports
#include "src/util/check.h"

namespace trafficbench::models {

namespace {
constexpr int64_t kResidual = 16;
constexpr int64_t kSkip = 32;
constexpr int64_t kEnd = 48;
constexpr int64_t kEmbeddingDim = 10;
constexpr int kDiffusionSteps = 1;  // one hop per fixed support
constexpr int kDilations[] = {1, 2, 1, 2};
}  // namespace

GraphWaveNet::GraphWaveNet(const ModelContext& context)
    : num_nodes_(context.num_nodes),
      input_len_(context.input_len),
      output_len_(context.output_len) {
  Rng rng(context.seed);
  supports_ = MakeSupports(DiffusionSupports(DenseAdjacency(context), kDiffusionSteps));

  e1_ = RegisterParameter(
      "e1", Tensor::Randn(Shape({num_nodes_, kEmbeddingDim}), &rng, 0.3f));
  e2_ = RegisterParameter(
      "e2", Tensor::Randn(Shape({num_nodes_, kEmbeddingDim}), &rng, 0.3f));

  input_conv_ = RegisterModule(
      "input", std::make_shared<nn::Conv2dLayer>(2, kResidual, 1, 1, &rng));

  const int64_t terms =
      1 + static_cast<int64_t>(supports_.size()) + 1;  // x, fixed, adaptive
  int index = 0;
  for (int dilation : kDilations) {
    Layer layer;
    layer.dilation = dilation;
    const std::string prefix = "layer" + std::to_string(index++);
    layer.gated = RegisterModule(
        prefix + ".gated",
        std::make_shared<nn::Conv2dLayer>(kResidual, 2 * kResidual, 1, 2,
                                          &rng, 1, 1, 0, 0, 1, dilation));
    layer.gcn_mix = RegisterModule(
        prefix + ".gcn",
        std::make_shared<nn::Conv2dLayer>(terms * kResidual, kResidual, 1, 1,
                                          &rng));
    layer.residual = RegisterModule(
        prefix + ".residual",
        std::make_shared<nn::Conv2dLayer>(kResidual, kResidual, 1, 1, &rng));
    layer.skip = RegisterModule(
        prefix + ".skip",
        std::make_shared<nn::Conv2dLayer>(kResidual, kSkip, 1, 1, &rng));
    layers_.push_back(std::move(layer));
  }
  end1_ = RegisterModule(
      "end1", std::make_shared<nn::Conv2dLayer>(kSkip, kEnd, 1, 1, &rng));
  end2_ = RegisterModule(
      "end2", std::make_shared<nn::Conv2dLayer>(kEnd, output_len_, 1, 1, &rng));
}

Tensor GraphWaveNet::Gcn(const Tensor& x, int layer) const {
  // Adaptive adjacency is recomputed each call so its gradient reaches the
  // node embeddings.
  Tensor adaptive = MatMul(e1_, e2_.Transpose(0, 1)).Relu().Softmax(-1);
  std::vector<Tensor> terms;
  terms.reserve(2 + supports_.size());
  terms.push_back(x);
  for (const GraphSupport& support : supports_) {
    terms.push_back(support.Apply(x));
  }
  terms.push_back(MatMul(adaptive, x));
  return layers_[layer].gcn_mix->Forward(Concat(terms, 1));
}

Tensor GraphWaveNet::Forward(const Tensor& x, const Tensor& teacher) {
  (void)teacher;  // predicts all horizons at once
  TB_CHECK_EQ(x.rank(), 4);
  const int64_t batch = x.dim(0);

  Tensor h = input_conv_->Forward(ToBcnt(x));  // [B, R, N, T]
  Tensor skip_sum;
  for (size_t l = 0; l < layers_.size(); ++l) {
    Tensor residual_in = h;
    // Gated dilated causal convolution (shrinks T by dilation).
    h = GluChannels(layers_[l].gated->Forward(h));
    // Skip contribution from the newest timestep.
    const int64_t t_now = h.dim(3);
    Tensor skip =
        layers_[l].skip->Forward(h.Slice(3, t_now - 1, t_now));
    skip_sum = skip_sum.defined() ? skip_sum + skip : skip;
    // Graph convolution + residual connection (align T by truncation).
    h = Gcn(h, static_cast<int>(l));
    h = layers_[l].residual->Forward(h) +
        residual_in.Slice(3, residual_in.dim(3) - t_now, residual_in.dim(3));
  }
  Tensor out = end1_->Forward(skip_sum.Relu()).Relu();
  out = end2_->Forward(out);  // [B, T_out, N, 1]
  return out.Reshape(Shape({batch, output_len_, num_nodes_}));
}

std::unique_ptr<TrafficModel> CreateGraphWaveNet(const ModelContext& context) {
  return std::make_unique<GraphWaveNet>(context);
}

}  // namespace trafficbench::models
