#include "src/models/traffic_model.h"

#include "src/graph/road_network.h"
#include "src/util/check.h"

namespace trafficbench::models {

ModelRegistry& ModelRegistry::Instance() {
  static ModelRegistry* registry = new ModelRegistry();
  return *registry;
}

void ModelRegistry::Register(const std::string& name, ModelFactory factory) {
  TB_CHECK(!Contains(name)) << "duplicate model registration: " << name;
  factories_.emplace_back(name, std::move(factory));
}

bool ModelRegistry::Contains(const std::string& name) const {
  for (const auto& [existing, factory] : factories_) {
    if (existing == name) return true;
  }
  return false;
}

std::unique_ptr<TrafficModel> ModelRegistry::Create(
    const std::string& name, const ModelContext& context) const {
  for (const auto& [existing, factory] : factories_) {
    if (existing == name) return factory(context);
  }
  TB_CHECK(false) << "unknown model: " << name;
  return nullptr;
}

std::vector<std::string> ModelRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

ModelContext MakeModelContext(const data::TrafficDataset& dataset,
                              uint64_t seed) {
  ModelContext context;
  context.num_nodes = dataset.num_nodes();
  context.input_len = dataset.input_len();
  context.output_len = dataset.output_len();
  if (dataset.num_nodes() >= graph::kDenseAdjacencyNodeLimit) {
    // City scale: the dense builder's O(N^3) Floyd–Warshall and N x N
    // tensors are prohibitive; stay sparse end to end.
    context.adjacency_csr = dataset.network().SparseGaussianAdjacency();
  } else {
    context.adjacency = dataset.network().GaussianAdjacency();
  }
  context.seed = seed;
  return context;
}

Tensor DenseAdjacency(const ModelContext& context) {
  if (context.adjacency.defined()) return context.adjacency;
  TB_CHECK(context.adjacency_csr != nullptr)
      << "ModelContext carries no adjacency";
  return context.adjacency_csr->ToDense();
}

std::vector<std::string> PaperModelNames() {
  return {"STGCN",         "DCRNN",   "ASTGCN", "ST-MetaNet",
          "Graph-WaveNet", "STG2Seq", "STSGCN", "GMAN"};
}

std::vector<std::string> BaselineModelNames() {
  return {"HistoricalAverage", "LastValue"};
}

std::unique_ptr<TrafficModel> CreateModel(const std::string& name,
                                          const ModelContext& context) {
  RegisterBuiltinModels();
  return ModelRegistry::Instance().Create(name, context);
}

}  // namespace trafficbench::models
