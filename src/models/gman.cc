#include "src/models/gman.h"

#include <cmath>

#include "src/graph/road_network.h"
#include "src/models/common.h"
#include "src/tensor/trace.h"
#include "src/util/check.h"

namespace trafficbench::models {

namespace {
constexpr int64_t kGeoDim = 16;
constexpr int64_t kDim = 40;
constexpr int kHeads = 4;
constexpr int64_t kFourier = 6;  // sin/cos at 1, 2, 4 cycles per day
}  // namespace

Gman::StAttentionBlock Gman::MakeBlock(const std::string& prefix, Rng* rng) {
  StAttentionBlock block;
  block.spatial = RegisterModule(
      prefix + ".spatial",
      std::make_shared<nn::MultiHeadAttention>(kDim, kHeads, rng));
  block.temporal = RegisterModule(
      prefix + ".temporal",
      std::make_shared<nn::MultiHeadAttention>(kDim, kHeads, rng));
  block.fuse_s = RegisterModule(
      prefix + ".fuse_s", std::make_shared<nn::Linear>(kDim, kDim, rng));
  block.fuse_t = RegisterModule(
      prefix + ".fuse_t",
      std::make_shared<nn::Linear>(kDim, kDim, rng, /*use_bias=*/false));
  block.norm =
      RegisterModule(prefix + ".norm", std::make_shared<nn::LayerNorm>(kDim));
  return block;
}

Gman::Gman(const ModelContext& context)
    : num_nodes_(context.num_nodes),
      input_len_(context.input_len),
      output_len_(context.output_len) {
  Rng rng(context.seed);
  // GMAN never multiplies by a support matrix: the adjacency only seeds the
  // spectral node embeddings, and all spatial mixing is learned attention
  // over dense softmax maps — exactly the case the sparse engine's density
  // threshold exists to keep on the blocked GEMM path.
  spatial_base_ = graph::SpectralNodeEmbedding(DenseAdjacency(context), kGeoDim);
  se_proj_ = RegisterModule("se_proj",
                            std::make_shared<nn::Linear>(kGeoDim, kDim, &rng));
  te_proj_ = RegisterModule("te_proj",
                            std::make_shared<nn::Linear>(kFourier, kDim, &rng));
  input_proj_ = RegisterModule("input_proj",
                               std::make_shared<nn::Linear>(2, kDim, &rng));
  encoder_ = MakeBlock("encoder", &rng);
  transform_ = RegisterModule(
      "transform", std::make_shared<nn::MultiHeadAttention>(kDim, kHeads, &rng));
  decoder_ = MakeBlock("decoder", &rng);
  out_hidden_ = RegisterModule("out_hidden",
                               std::make_shared<nn::Linear>(kDim, kDim, &rng));
  out_proj_ = RegisterModule("out_proj",
                             std::make_shared<nn::Linear>(kDim, 1, &rng));
}

Tensor Gman::TemporalFeatures(const Tensor& x, bool future) const {
  const int64_t batch = x.dim(0);
  const int64_t t_in = input_len_;
  const int64_t steps = future ? output_len_ : input_len_;
  const int64_t n = num_nodes_;
  // The time channel is read on the host, so this must go through HostOp:
  // in a compiled plan the closure re-reads the bound input on every run
  // instead of the traced values being baked in as constants.
  trace::HostFn fn = [batch, t_in, steps, n, future](
                         const float* const* inputs, float* out) {
    const float* data = inputs[0];
    for (int64_t b = 0; b < batch; ++b) {
      for (int64_t t = 0; t < steps; ++t) {
        float tod;
        if (future) {
          const float last = data[((b * t_in + (t_in - 1)) * n + 0) * 2 + 1];
          float next = last + static_cast<float>(t + 1) / 288.0f;
          next -= std::floor(next);
          tod = next;
        } else {
          tod = data[((b * t_in + t) * n + 0) * 2 + 1];
        }
        const double tau = 2.0 * M_PI * tod;
        float* f = out + (b * steps + t) * kFourier;
        f[0] = static_cast<float>(std::sin(tau));
        f[1] = static_cast<float>(std::cos(tau));
        f[2] = static_cast<float>(std::sin(2.0 * tau));
        f[3] = static_cast<float>(std::cos(2.0 * tau));
        f[4] = static_cast<float>(std::sin(4.0 * tau));
        f[5] = static_cast<float>(std::cos(4.0 * tau));
      }
    }
  };
  Tensor raw = trace::HostOp(future ? "GmanTodFuture" : "GmanTodHist", {x},
                             Shape({batch, steps, 1, kFourier}),
                             std::move(fn));
  return te_proj_->Forward(raw);  // [B, T, 1, D]
}

Tensor Gman::RunBlock(const StAttentionBlock& block, const Tensor& h,
                      const Tensor& ste) const {
  Tensor input = h + ste;
  // Spatial attention: attend over the node axis.
  Tensor hs = block.spatial->Forward(input, input, input);
  // Temporal attention: attend over the step axis.
  Tensor input_t = input.Permute({0, 2, 1, 3});  // [B, N, T, D]
  Tensor ht = block.temporal->Forward(input_t, input_t, input_t)
                  .Permute({0, 2, 1, 3});
  // Gated fusion.
  Tensor z = (block.fuse_s->Forward(hs) + block.fuse_t->Forward(ht)).Sigmoid();
  Tensor fused = z * hs + (1.0f - z) * ht;
  return block.norm->Forward(fused + h);
}

Tensor Gman::Forward(const Tensor& x, const Tensor& teacher) {
  (void)teacher;
  TB_CHECK_EQ(x.rank(), 4);
  const int64_t batch = x.dim(0);

  // --- Spatio-temporal embeddings -------------------------------------------
  Tensor se = se_proj_->Forward(spatial_base_);  // [N, D]

  // Time-of-day embeddings from the input's time channel (via HostOp so
  // the read stays input-dependent in compiled plans).
  Tensor ste_hist = TemporalFeatures(x, /*future=*/false) + se;  // [B,T,N,D]
  Tensor ste_future = TemporalFeatures(x, /*future=*/true) + se;

  // --- Encoder -----------------------------------------------------------------
  Tensor h = input_proj_->Forward(x);  // [B, T_in, N, D]
  h = RunBlock(encoder_, h, ste_hist);

  // --- Transform attention: history steps -> future steps (per node) ------------
  Tensor query = ste_future.Permute({0, 2, 1, 3});       // [B, N, T_out, D]
  Tensor key = (h + ste_hist).Permute({0, 2, 1, 3});     // [B, N, T_in, D]
  Tensor value = h.Permute({0, 2, 1, 3});
  Tensor transformed =
      transform_->Forward(query, key, value).Permute({0, 2, 1, 3});

  // --- Decoder -------------------------------------------------------------------
  Tensor d = RunBlock(decoder_, transformed, ste_future);

  // --- Output head ------------------------------------------------------------------
  Tensor y = out_proj_->Forward(out_hidden_->Forward(d).Relu());
  return y.Reshape(Shape({batch, output_len_, num_nodes_}));
}

std::unique_ptr<TrafficModel> CreateGman(const ModelContext& context) {
  return std::make_unique<Gman>(context);
}

}  // namespace trafficbench::models
