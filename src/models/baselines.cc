#include "src/models/baselines.h"

#include <cmath>

#include "src/models/common.h"
#include "src/util/check.h"

namespace trafficbench::models {

HistoricalAverage::HistoricalAverage(const ModelContext& context)
    : num_nodes_(context.num_nodes), output_len_(context.output_len) {
  means_.assign(kBuckets * num_nodes_, 0.0f);
}

void HistoricalAverage::Fit(const data::TrafficDataset& dataset) {
  const data::TrafficSeries& series = dataset.series();
  const data::DatasetSplits splits = dataset.Splits();
  const int64_t train_steps = splits.train_end + dataset.input_len();
  std::vector<double> sums(kBuckets * num_nodes_, 0.0);
  std::vector<int64_t> counts(kBuckets * num_nodes_, 0);
  double global_sum = 0.0;
  int64_t global_count = 0;
  for (int64_t step = 0; step < std::min(train_steps, series.num_steps);
       ++step) {
    const int bucket = std::min<int>(
        kBuckets - 1,
        static_cast<int>(series.time_of_day[step] * kBuckets));
    for (int64_t node = 0; node < num_nodes_; ++node) {
      const float v = series.at(step, node);
      if (v == 0.0f) continue;
      const float norm = dataset.scaler().Normalize(v);
      sums[bucket * num_nodes_ + node] += norm;
      ++counts[bucket * num_nodes_ + node];
      global_sum += norm;
      ++global_count;
    }
  }
  global_mean_norm_ = global_count > 0
                          ? static_cast<float>(global_sum / global_count)
                          : 0.0f;
  for (int64_t i = 0; i < kBuckets * num_nodes_; ++i) {
    means_[i] = counts[i] > 0 ? static_cast<float>(sums[i] / counts[i])
                              : global_mean_norm_;
  }
}

Tensor HistoricalAverage::Forward(const Tensor& x, const Tensor& teacher) {
  (void)teacher;
  TB_CHECK_EQ(x.rank(), 4);
  const int64_t batch = x.dim(0);
  const int64_t n = x.dim(2);
  TB_CHECK_EQ(n, num_nodes_);
  const std::vector<float> last_tod = LastTimeOfDay(x);
  std::vector<float> out(batch * output_len_ * n);
  for (int64_t b = 0; b < batch; ++b) {
    for (int t = 0; t < output_len_; ++t) {
      float tod = last_tod[b] + static_cast<float>(t + 1) / 288.0f;
      tod -= std::floor(tod);
      const int bucket =
          std::min<int>(kBuckets - 1, static_cast<int>(tod * kBuckets));
      for (int64_t i = 0; i < n; ++i) {
        out[(b * output_len_ + t) * n + i] = means_[bucket * n + i];
      }
    }
  }
  return Tensor::FromVector(Shape({batch, output_len_, n}), std::move(out));
}

LastValue::LastValue(const ModelContext& context)
    : output_len_(context.output_len) {}

Tensor LastValue::Forward(const Tensor& x, const Tensor& teacher) {
  (void)teacher;
  TB_CHECK_EQ(x.rank(), 4);
  const int64_t batch = x.dim(0);
  const int64_t t_in = x.dim(1);
  const int64_t n = x.dim(2);
  std::vector<float> out(batch * output_len_ * n);
  const float* data = x.data();
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t i = 0; i < n; ++i) {
      const float last = data[((b * t_in + (t_in - 1)) * n + i) * 2];
      for (int t = 0; t < output_len_; ++t) {
        out[(b * output_len_ + t) * n + i] = last;
      }
    }
  }
  return Tensor::FromVector(Shape({batch, output_len_, n}), std::move(out));
}

std::unique_ptr<TrafficModel> CreateHistoricalAverage(
    const ModelContext& context) {
  return std::make_unique<HistoricalAverage>(context);
}

std::unique_ptr<TrafficModel> CreateLastValue(const ModelContext& context) {
  return std::make_unique<LastValue>(context);
}

}  // namespace trafficbench::models
