#ifndef TRAFFICBENCH_MODELS_GRAPH_WAVENET_H_
#define TRAFFICBENCH_MODELS_GRAPH_WAVENET_H_

#include <memory>
#include <vector>

#include "src/models/common.h"
#include "src/models/traffic_model.h"
#include "src/nn/layers.h"

namespace trafficbench::models {

/// Graph-WaveNet (Wu et al., IJCAI 2019): a stack of gated dilated causal
/// temporal convolutions, each followed by a graph convolution over (a) the
/// forward/backward random-walk transition matrices and (b) a learned
/// **adaptive adjacency** softmax(relu(E1 E2^T)); skip connections feed an
/// output head that emits all 12 horizons at once (hence the fastest
/// inference in Table III).
class GraphWaveNet : public TrafficModel {
 public:
  explicit GraphWaveNet(const ModelContext& context);

  Tensor Forward(const Tensor& x, const Tensor& teacher) override;
  std::string name() const override { return "Graph-WaveNet"; }

 private:
  /// Graph convolution over fixed supports + the adaptive adjacency.
  /// x: [B, C, N, T].
  Tensor Gcn(const Tensor& x, int layer) const;

  int64_t num_nodes_;
  int input_len_;
  int output_len_;

  // P_fwd, P_bwd (fixed, CSR when sparse enough). The adaptive adjacency
  // is recomputed from e1_/e2_ every call and is inherently dense (softmax
  // output), so it always rides the blocked GEMM path.
  std::vector<GraphSupport> supports_;
  Tensor e1_, e2_;  // adaptive-adjacency node embeddings

  std::shared_ptr<nn::Conv2dLayer> input_conv_;
  struct Layer {
    std::shared_ptr<nn::Conv2dLayer> gated;     // R -> 2R, kernel (1,2), dilated
    std::shared_ptr<nn::Conv2dLayer> gcn_mix;   // (terms*R) -> R, 1x1
    std::shared_ptr<nn::Conv2dLayer> residual;  // R -> R, 1x1
    std::shared_ptr<nn::Conv2dLayer> skip;      // R -> S, 1x1
    int dilation = 1;
  };
  std::vector<Layer> layers_;
  std::shared_ptr<nn::Conv2dLayer> end1_;  // S -> E, 1x1
  std::shared_ptr<nn::Conv2dLayer> end2_;  // E -> T_out, 1x1
};

std::unique_ptr<TrafficModel> CreateGraphWaveNet(const ModelContext& context);

}  // namespace trafficbench::models

#endif  // TRAFFICBENCH_MODELS_GRAPH_WAVENET_H_
