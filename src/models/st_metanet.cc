#include "src/models/st_metanet.h"

#include "src/graph/road_network.h"
#include "src/tensor/sparse.h"
#include "src/util/check.h"

namespace trafficbench::models {

namespace {
constexpr int64_t kHidden = 10;
constexpr int64_t kGeoDim = 8;    // spectral-embedding input dim
constexpr int64_t kMetaDim = 12;  // meta-knowledge latent dim
constexpr int64_t kGatDim = 6;
constexpr int64_t kEncIn = 2;
constexpr int64_t kDecIn = 1;
}  // namespace

StMetaNet::StMetaNet(const ModelContext& context)
    : num_nodes_(context.num_nodes),
      input_len_(context.input_len),
      output_len_(context.output_len) {
  Rng rng(context.seed);

  // Static geo-knowledge: spectral embedding of the road graph.
  const Tensor adjacency = DenseAdjacency(context);
  Tensor geo = graph::SpectralNodeEmbedding(adjacency, kGeoDim);
  meta_knowledge_ = geo;  // constant input to the meta-learners

  // Edge mask: additive bias 0 on (directed) edges + self, -1e9 elsewhere.
  // Built from the CSR sparsity structure — the mask only depends on which
  // entries are present, so scattering nnz positions beats scanning N^2.
  {
    const int64_t n = num_nodes_;
    sparse::CsrPtr adj = context.adjacency_csr != nullptr
                             ? context.adjacency_csr
                             : sparse::CsrMatrix::FromDense(adjacency);
    std::vector<float> bias(n * n, -1e9f);
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t k = adj->row_ptr()[i]; k < adj->row_ptr()[i + 1]; ++k) {
        if (adj->values()[k] > 0.0f) bias[i * n + adj->col_idx()[k]] = 0.0f;
      }
    }
    adjacency_bias_ = Tensor::FromVector(Shape({n, n}), std::move(bias));
  }

  meta_proj_ = RegisterModule(
      "meta_proj", std::make_shared<nn::Linear>(kGeoDim, kMetaDim, &rng));
  gen_enc_gates_ = RegisterModule(
      "gen_enc_gates",
      std::make_shared<nn::Linear>(kMetaDim,
                                   (kEncIn + kHidden) * 2 * kHidden, &rng));
  gen_enc_cand_ = RegisterModule(
      "gen_enc_cand",
      std::make_shared<nn::Linear>(kMetaDim, (kEncIn + kHidden) * kHidden,
                                   &rng));
  gen_dec_gates_ = RegisterModule(
      "gen_dec_gates",
      std::make_shared<nn::Linear>(kMetaDim,
                                   (kDecIn + kHidden) * 2 * kHidden, &rng));
  gen_dec_cand_ = RegisterModule(
      "gen_dec_cand",
      std::make_shared<nn::Linear>(kMetaDim, (kDecIn + kHidden) * kHidden,
                                   &rng));
  gen_gat_proj_ = RegisterModule(
      "gen_gat_proj",
      std::make_shared<nn::Linear>(kMetaDim, kHidden * kGatDim, &rng));
  edge_hidden_ = RegisterModule(
      "edge_hidden",
      std::make_shared<nn::Linear>(2 * kGatDim + 2 * kMetaDim, 16, &rng));
  edge_score_ = RegisterModule(
      "edge_score", std::make_shared<nn::Linear>(16, 1, &rng, false));
  gat_out_ = RegisterModule(
      "gat_out", std::make_shared<nn::Linear>(kGatDim, kHidden, &rng));
  projection_ = RegisterModule(
      "projection", std::make_shared<nn::Linear>(kHidden, 1, &rng));
}

Tensor StMetaNet::PerNodeLinear(const Tensor& input, const Tensor& weights) {
  // input [B, N, D_in], weights [N, D_in, D_out]:
  // rearrange so the node axis is the (broadcast) batch of the matmul.
  Tensor by_node = input.Permute({1, 0, 2});     // [N, B, D_in]
  Tensor out = MatMul(by_node, weights);         // [N, B, D_out]
  return out.Permute({1, 0, 2});                 // [B, N, D_out]
}

Tensor StMetaNet::MetaGruStep(const Tensor& x, const Tensor& h,
                              const Tensor& gate_weights,
                              const Tensor& cand_weights,
                              int64_t input_size) const {
  Tensor xh = Concat({x, h}, -1);  // [B, N, in + H]
  (void)input_size;
  Tensor gates = PerNodeLinear(xh, gate_weights).Sigmoid();  // [B, N, 2H]
  Tensor reset = gates.Slice(-1, 0, kHidden);
  Tensor update = gates.Slice(-1, kHidden, 2 * kHidden);
  Tensor cand =
      PerNodeLinear(Concat({x, reset * h}, -1), cand_weights).Tanh();
  return update * h + (1.0f - update) * cand;
}

Tensor StMetaNet::MetaGat(const Tensor& h) const {
  Tensor meta = meta_proj_->Forward(meta_knowledge_).Tanh();  // [N, meta]
  Tensor proj_weights = gen_gat_proj_->Forward(meta).Reshape(
      Shape({num_nodes_, kHidden, kGatDim}));
  Tensor p = PerNodeLinear(h, proj_weights);  // [B, N, D]
  // Edge meta-attention: e_ij = MLP([p_i ‖ p_j ‖ meta_i ‖ meta_j]),
  // evaluated for every node pair — the per-edge meta-learner that makes
  // ST-MetaNet's spatial step expensive despite its tiny parameter count.
  const int64_t batch = h.dim(0);
  Shape pair_shape({batch, num_nodes_, num_nodes_, kGatDim});
  Shape meta_pair_shape({batch, num_nodes_, num_nodes_, kMetaDim});
  Tensor p_i = p.Unsqueeze(2).BroadcastTo(pair_shape);
  Tensor p_j = p.Unsqueeze(1).BroadcastTo(pair_shape);
  Tensor meta_i = meta.Unsqueeze(1).Unsqueeze(0).BroadcastTo(meta_pair_shape);
  Tensor meta_j = meta.Unsqueeze(0).Unsqueeze(0).BroadcastTo(meta_pair_shape);
  Tensor pair = Concat({p_i, p_j, meta_i, meta_j}, -1);
  Tensor scores =
      edge_score_->Forward(edge_hidden_->Forward(pair).Tanh()).Squeeze(3);
  scores = scores.LeakyRelu(0.2f) + adjacency_bias_;
  Tensor alpha = scores.Softmax(-1);
  Tensor attended = MatMul(alpha, p);  // [B, N, D]
  return h + gat_out_->Forward(attended).Tanh();
}

Tensor StMetaNet::Forward(const Tensor& x, const Tensor& teacher) {
  TB_CHECK_EQ(x.rank(), 4);
  const int64_t batch = x.dim(0);
  TB_CHECK_EQ(x.dim(2), num_nodes_);

  // Generate all per-node weights from the (static) meta-knowledge.
  Tensor meta = meta_proj_->Forward(meta_knowledge_).Tanh();
  Tensor enc_gates = gen_enc_gates_->Forward(meta).Reshape(
      Shape({num_nodes_, kEncIn + kHidden, 2 * kHidden}));
  Tensor enc_cand = gen_enc_cand_->Forward(meta).Reshape(
      Shape({num_nodes_, kEncIn + kHidden, kHidden}));
  Tensor dec_gates = gen_dec_gates_->Forward(meta).Reshape(
      Shape({num_nodes_, kDecIn + kHidden, 2 * kHidden}));
  Tensor dec_cand = gen_dec_cand_->Forward(meta).Reshape(
      Shape({num_nodes_, kDecIn + kHidden, kHidden}));

  // Encoder over history; meta-GAT mixes hidden states spatially.
  Tensor h = Tensor::Zeros(Shape({batch, num_nodes_, kHidden}));
  for (int t = 0; t < input_len_; ++t) {
    Tensor step = x.Slice(1, t, t + 1).Squeeze(1);  // [B, N, 2]
    h = MetaGruStep(step, h, enc_gates, enc_cand, kEncIn);
    if (t % 3 == 2) h = MetaGat(h);  // spatial mixing along the encoder
  }

  // Decoder with teacher forcing during training.
  const bool use_teacher = training() && teacher.defined();
  Tensor decoder_input = Tensor::Zeros(Shape({batch, num_nodes_, 1}));
  std::vector<Tensor> outputs;
  outputs.reserve(output_len_);
  for (int t = 0; t < output_len_; ++t) {
    h = MetaGruStep(decoder_input, h, dec_gates, dec_cand, kDecIn);
    h = MetaGat(h);  // spatial mixing at every decoder step
    Tensor y = projection_->Forward(h);  // [B, N, 1]
    outputs.push_back(y.Squeeze(2));
    if (t + 1 == output_len_) break;
    if (use_teacher) {
      decoder_input = teacher.Slice(1, t, t + 1)
                          .Reshape(Shape({batch, num_nodes_, 1}))
                          .Detach();
    } else {
      decoder_input = y;
    }
  }
  return Stack(outputs, 1);
}

std::unique_ptr<TrafficModel> CreateStMetaNet(const ModelContext& context) {
  return std::make_unique<StMetaNet>(context);
}

}  // namespace trafficbench::models
