#include "src/models/ablation.h"

#include "src/graph/road_network.h"
#include "src/models/common.h"
#include "src/models/dcrnn.h"
#include "src/util/check.h"

namespace trafficbench::models {

namespace {
constexpr int64_t kDim = 24;
constexpr int kChebOrder = 3;
}  // namespace

std::string ToString(SpatialKind kind) {
  switch (kind) {
    case SpatialKind::kNone:
      return "none";
    case SpatialKind::kChebyshev:
      return "spectral-cheb";
    case SpatialKind::kDiffusion:
      return "spatial-diffusion";
    case SpatialKind::kAdaptive:
      return "adaptive-adj";
  }
  return "?";
}

std::string ToString(TemporalKind kind) {
  switch (kind) {
    case TemporalKind::kGru:
      return "rnn-gru";
    case TemporalKind::kTcn:
      return "gated-tcn";
    case TemporalKind::kAttention:
      return "attention";
  }
  return "?";
}

StBackbone::StBackbone(const ModelContext& context, SpatialKind spatial,
                       TemporalKind temporal)
    : num_nodes_(context.num_nodes),
      input_len_(context.input_len),
      output_len_(context.output_len),
      spatial_(spatial),
      temporal_(temporal) {
  Rng rng(context.seed);
  input_proj_ =
      RegisterModule("input_proj", std::make_shared<nn::Linear>(2, kDim, &rng));

  int64_t terms = 1;
  switch (spatial) {
    case SpatialKind::kNone:
      break;
    case SpatialKind::kChebyshev:
      supports_ = MakeSupports(graph::ChebyshevBasis(
          graph::ScaledLaplacian(DenseAdjacency(context)), kChebOrder));
      terms = kChebOrder;
      break;
    case SpatialKind::kDiffusion:
      // City-scale contexts carry only the CSR adjacency; the diffusion
      // supports (and their squares) are then built sparse-natively, so no
      // N x N tensor exists anywhere in this model.
      supports_ = context.adjacency_csr != nullptr
                      ? MakeSupports(
                            DiffusionSupportsCsr(context.adjacency_csr, 2))
                      : MakeSupports(DiffusionSupports(context.adjacency, 2));
      terms = 1 + static_cast<int64_t>(supports_.size());
      break;
    case SpatialKind::kAdaptive:
      e1_ = RegisterParameter(
          "e1", Tensor::Randn(Shape({num_nodes_, 8}), &rng, 0.3f));
      e2_ = RegisterParameter(
          "e2", Tensor::Randn(Shape({num_nodes_, 8}), &rng, 0.3f));
      terms = 3;  // x, A x, A^2 x
      break;
  }
  if (spatial != SpatialKind::kNone) {
    spatial_mix_ = RegisterModule(
        "spatial_mix", std::make_shared<nn::Linear>(terms * kDim, kDim, &rng));
  }

  switch (temporal) {
    case TemporalKind::kGru:
      gru_ = RegisterModule("gru",
                            std::make_shared<nn::GRUCell>(kDim, kDim, &rng));
      gru_out_ = RegisterModule("gru_out",
                                std::make_shared<nn::Linear>(kDim, 1, &rng));
      break;
    case TemporalKind::kTcn:
      tcn1_ = RegisterModule(
          "tcn1",
          std::make_shared<nn::Conv2dLayer>(kDim, 2 * kDim, 1, 3, &rng));
      tcn2_ = RegisterModule(
          "tcn2", std::make_shared<nn::Conv2dLayer>(kDim, 2 * kDim, 1, 3,
                                                    &rng, 1, 1, 0, 0, 1, 2));
      tcn_head_ = RegisterModule(
          "tcn_head",
          std::make_shared<nn::Linear>((input_len_ - 6) * kDim, output_len_,
                                       &rng));
      break;
    case TemporalKind::kAttention:
      attention_ = RegisterModule(
          "attention", std::make_shared<nn::MultiHeadAttention>(kDim, 4, &rng));
      horizon_queries_ = RegisterParameter(
          "horizon_queries",
          Tensor::Randn(Shape({output_len_, kDim}), &rng, 0.3f));
      attn_head_ = RegisterModule(
          "attn_head", std::make_shared<nn::Linear>(kDim, 1, &rng));
      break;
  }
}

std::string StBackbone::name() const {
  return "backbone[" + ToString(spatial_) + "+" + ToString(temporal_) + "]";
}

Tensor StBackbone::SpatialMix(const Tensor& features) const {
  if (spatial_ == SpatialKind::kNone) return features;
  std::vector<Tensor> terms;
  if (spatial_ == SpatialKind::kChebyshev) {
    for (const GraphSupport& support : supports_) {
      terms.push_back(support.Apply(features));
    }
  } else if (spatial_ == SpatialKind::kDiffusion) {
    terms.push_back(features);
    for (const GraphSupport& support : supports_) {
      terms.push_back(support.Apply(features));
    }
  } else {  // kAdaptive
    Tensor adaptive = MatMul(e1_, e2_.Transpose(0, 1)).Relu().Softmax(-1);
    Tensor hop1 = MatMul(adaptive, features);
    terms.push_back(features);
    terms.push_back(hop1);
    terms.push_back(MatMul(adaptive, hop1));
  }
  return spatial_mix_->Forward(Concat(terms, -1)).Relu() + features;
}

Tensor StBackbone::Forward(const Tensor& x, const Tensor& teacher) {
  (void)teacher;
  TB_CHECK_EQ(x.rank(), 4);
  const int64_t batch = x.dim(0);

  // Shared trunk: project and spatially mix every history step.
  Tensor features = SpatialMix(input_proj_->Forward(x));  // [B, T, N, D]

  switch (temporal_) {
    case TemporalKind::kGru: {
      // Per-node GRU over time (nodes folded into the batch axis).
      Tensor h = Tensor::Zeros(Shape({batch * num_nodes_, kDim}));
      for (int t = 0; t < input_len_; ++t) {
        Tensor step = features.Slice(1, t, t + 1)
                          .Reshape(Shape({batch * num_nodes_, kDim}));
        h = gru_->Forward(step, h);
      }
      // Autoregressive decoding with zero inputs (state carries the signal).
      Tensor zero = Tensor::Zeros(Shape({batch * num_nodes_, kDim}));
      std::vector<Tensor> outputs;
      for (int t = 0; t < output_len_; ++t) {
        h = gru_->Forward(zero, h);
        outputs.push_back(gru_out_->Forward(h).Reshape(
            Shape({batch, num_nodes_})));
      }
      return Stack(outputs, 1);
    }
    case TemporalKind::kTcn: {
      Tensor h = ToBcnt(features);  // [B, D, N, T]
      h = GluChannels(tcn1_->Forward(h));
      h = GluChannels(tcn2_->Forward(h));
      const int64_t t_len = h.dim(3);
      Tensor flat = h.Permute({0, 2, 3, 1})
                        .Reshape(Shape({batch, num_nodes_, t_len * kDim}));
      return tcn_head_->Forward(flat).Permute({0, 2, 1});
    }
    case TemporalKind::kAttention: {
      // Horizon queries cross-attend the history per node.
      Tensor history = features.Permute({0, 2, 1, 3});  // [B, N, T, D]
      Tensor queries = horizon_queries_.Unsqueeze(0).Unsqueeze(0).BroadcastTo(
          Shape({batch, num_nodes_, output_len_, kDim}));
      Tensor attended = attention_->Forward(queries, history, history);
      Tensor y = attn_head_->Forward(attended);  // [B, N, T_out, 1]
      return y.Reshape(Shape({batch, num_nodes_, output_len_}))
          .Permute({0, 2, 1});
    }
  }
  TB_CHECK(false) << "unreachable";
  return Tensor();
}

}  // namespace trafficbench::models
