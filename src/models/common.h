#ifndef TRAFFICBENCH_MODELS_COMMON_H_
#define TRAFFICBENCH_MODELS_COMMON_H_

// Shared helpers for the model zoo.

#include <vector>

#include "src/tensor/sparse.h"
#include "src/tensor/tensor.h"

namespace trafficbench::models {

/// [B, T, N, C] -> [B, C, N, T] (the NCHW layout the temporal convolutions
/// consume, with nodes as "height" and time as "width").
inline Tensor ToBcnt(const Tensor& x) { return x.Permute({0, 3, 2, 1}); }

/// [B, C, N, T] -> [B, T, N, C].
inline Tensor FromBcnt(const Tensor& x) { return x.Permute({0, 3, 2, 1}); }

/// Graph propagation: support [N, N] applied to node-major features
/// [..., N, C] -> [..., N, C] (leading axes broadcast through MatMul).
inline Tensor GraphMix(const Tensor& support, const Tensor& features) {
  return MatMul(support, features);
}

/// Process-wide density threshold for GraphSupport's dense→CSR conversion.
/// Defaults to sparse::kDefaultDensityThreshold; tests override it (0.0
/// forces every support dense, 1.0 forces every support sparse) to compare
/// the two paths on identical models.
double GraphSupportDensityThreshold();
void SetGraphSupportDensityThreshold(double threshold);

/// RAII override of the GraphSupport density threshold (test helper).
class GraphSupportThresholdGuard {
 public:
  explicit GraphSupportThresholdGuard(double threshold)
      : previous_(GraphSupportDensityThreshold()) {
    SetGraphSupportDensityThreshold(threshold);
  }
  ~GraphSupportThresholdGuard() { SetGraphSupportDensityThreshold(previous_); }
  GraphSupportThresholdGuard(const GraphSupportThresholdGuard&) = delete;
  GraphSupportThresholdGuard& operator=(const GraphSupportThresholdGuard&) =
      delete;

 private:
  double previous_;
};

/// One graph-propagation support, converted to CSR at model-build time when
/// sparse enough and kept dense otherwise. Models construct these once per
/// support matrix and route every propagation through Apply(), which
/// dispatches to the deterministic SpMM kernels (sparse) or the blocked
/// GEMM path (dense fallback) — numerically equivalent up to float
/// reassociation, bit-identical across thread counts on either path.
class GraphSupport {
 public:
  GraphSupport() = default;
  /// Converts `dense` ([N, N], constant) with the process-wide threshold.
  explicit GraphSupport(Tensor dense);

  /// support @ features: [..., N, C] -> [..., N, C].
  Tensor Apply(const Tensor& features) const;

  /// The dense form, always retained — ASTGCN-style per-batch attention
  /// modulation needs the full matrix even when the CSR form exists.
  const Tensor& dense() const { return dense_; }
  bool is_sparse() const { return csr_ != nullptr; }
  int64_t nnz() const { return nnz_; }
  /// nnz / numel of the support (reported per dataset by bench_table3).
  double density() const;

 private:
  Tensor dense_;
  sparse::CsrPtr csr_;
  int64_t nnz_ = 0;
};

/// Converts a whole support set (diffusion steps, Chebyshev basis, ...).
std::vector<GraphSupport> MakeSupports(const std::vector<Tensor>& dense);

/// Time-of-day feature of the last input step, per batch element:
/// x is [B, T, N, 2]; returns flat [B] values.
std::vector<float> LastTimeOfDay(const Tensor& x);

/// Gated linear unit over the channel axis of [B, 2C, N, T]:
/// splits into (P, Q) and returns P * sigmoid(Q), [B, C, N, T].
Tensor GluChannels(const Tensor& x);

}  // namespace trafficbench::models

#endif  // TRAFFICBENCH_MODELS_COMMON_H_
