#ifndef TRAFFICBENCH_MODELS_COMMON_H_
#define TRAFFICBENCH_MODELS_COMMON_H_

// Shared helpers for the model zoo.

#include <vector>

#include "src/tensor/tensor.h"

namespace trafficbench::models {

/// [B, T, N, C] -> [B, C, N, T] (the NCHW layout the temporal convolutions
/// consume, with nodes as "height" and time as "width").
inline Tensor ToBcnt(const Tensor& x) { return x.Permute({0, 3, 2, 1}); }

/// [B, C, N, T] -> [B, T, N, C].
inline Tensor FromBcnt(const Tensor& x) { return x.Permute({0, 3, 2, 1}); }

/// Graph propagation: support [N, N] applied to node-major features
/// [..., N, C] -> [..., N, C] (leading axes broadcast through MatMul).
inline Tensor GraphMix(const Tensor& support, const Tensor& features) {
  return MatMul(support, features);
}

/// Time-of-day feature of the last input step, per batch element:
/// x is [B, T, N, 2]; returns flat [B] values.
std::vector<float> LastTimeOfDay(const Tensor& x);

/// Gated linear unit over the channel axis of [B, 2C, N, T]:
/// splits into (P, Q) and returns P * sigmoid(Q), [B, C, N, T].
Tensor GluChannels(const Tensor& x);

}  // namespace trafficbench::models

#endif  // TRAFFICBENCH_MODELS_COMMON_H_
