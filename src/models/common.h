#ifndef TRAFFICBENCH_MODELS_COMMON_H_
#define TRAFFICBENCH_MODELS_COMMON_H_

// Shared helpers for the model zoo.

#include <cstdint>
#include <vector>

#include "src/tensor/partitioned.h"
#include "src/tensor/sparse.h"
#include "src/tensor/tensor.h"

namespace trafficbench::models {

/// [B, T, N, C] -> [B, C, N, T] (the NCHW layout the temporal convolutions
/// consume, with nodes as "height" and time as "width").
inline Tensor ToBcnt(const Tensor& x) { return x.Permute({0, 3, 2, 1}); }

/// [B, C, N, T] -> [B, T, N, C].
inline Tensor FromBcnt(const Tensor& x) { return x.Permute({0, 3, 2, 1}); }

/// Graph propagation: support [N, N] applied to node-major features
/// [..., N, C] -> [..., N, C] (leading axes broadcast through MatMul).
inline Tensor GraphMix(const Tensor& support, const Tensor& features) {
  return MatMul(support, features);
}

/// Process-wide density threshold for GraphSupport's dense→CSR conversion.
/// Defaults to sparse::kDefaultDensityThreshold; tests override it (0.0
/// forces every support dense, 1.0 forces every support sparse) to compare
/// the two paths on identical models.
double GraphSupportDensityThreshold();
void SetGraphSupportDensityThreshold(double threshold);

/// RAII override of the GraphSupport density threshold (test helper).
class GraphSupportThresholdGuard {
 public:
  explicit GraphSupportThresholdGuard(double threshold)
      : previous_(GraphSupportDensityThreshold()) {
    SetGraphSupportDensityThreshold(threshold);
  }
  ~GraphSupportThresholdGuard() { SetGraphSupportDensityThreshold(previous_); }
  GraphSupportThresholdGuard(const GraphSupportThresholdGuard&) = delete;
  GraphSupportThresholdGuard& operator=(const GraphSupportThresholdGuard&) =
      delete;

 private:
  double previous_;
};

/// Process-wide node count at which square CSR supports are additionally
/// split into a PartitionedCsr (see src/tensor/partitioned.h). Defaults to
/// 1024 — METR-LA/PeMS-BAY-scale supports stay monolithic, the synth-2k/4k
/// profiles partition. Tests lower it to exercise the partitioned path on
/// small graphs.
int64_t GraphPartitionNodeThreshold();
void SetGraphPartitionNodeThreshold(int64_t threshold);

/// Partition count for an N-node support: clamp(N / 1024, 2, 8) — a pure
/// function of N (never of thread count or machine), so partitioned results
/// are reproducible across hosts. Tests may pin it via the guard below.
int GraphPartitionParts(int64_t num_nodes);
void SetGraphPartitionForcedParts(int parts);  // 0 = use the N-based rule

/// RAII override of the partition knobs (test helper): supports with at
/// least `node_threshold` nodes partition into `forced_parts` parts
/// (0 keeps the N-based rule).
class GraphPartitionGuard {
 public:
  GraphPartitionGuard(int64_t node_threshold, int forced_parts = 0);
  ~GraphPartitionGuard();
  GraphPartitionGuard(const GraphPartitionGuard&) = delete;
  GraphPartitionGuard& operator=(const GraphPartitionGuard&) = delete;

 private:
  int64_t previous_threshold_;
  int previous_parts_;
};

/// One graph-propagation support, converted to CSR at model-build time when
/// sparse enough and kept dense otherwise. Models construct these once per
/// support matrix and route every propagation through Apply(), which
/// dispatches to the deterministic SpMM kernels (sparse) or the blocked
/// GEMM path (dense fallback) — numerically equivalent up to float
/// reassociation, bit-identical across thread counts on either path.
/// Square CSR supports with at least GraphPartitionNodeThreshold() nodes
/// are further split into a PartitionedCsr; the partitioned dispatch is
/// bitwise equal to the monolithic SpMM (see src/tensor/partitioned.h).
class GraphSupport {
 public:
  GraphSupport() = default;
  /// Converts `dense` ([N, N], constant) with the process-wide threshold.
  explicit GraphSupport(Tensor dense);
  /// Sparse-native support for city-scale graphs: no dense form is ever
  /// materialized, so dense() stays undefined (callers that need the full
  /// matrix — ASTGCN-style attention modulation — must build from a Tensor).
  explicit GraphSupport(sparse::CsrPtr csr);

  /// support @ features: [..., N, C] -> [..., N, C].
  Tensor Apply(const Tensor& features) const;

  /// The dense form, always retained on the dense-construction path —
  /// ASTGCN-style per-batch attention modulation needs the full matrix even
  /// when the CSR form exists. Undefined for sparse-native supports.
  const Tensor& dense() const { return dense_; }
  bool is_sparse() const { return csr_ != nullptr; }
  bool is_partitioned() const { return partitioned_ != nullptr; }
  const sparse::CsrPtr& csr() const { return csr_; }
  const sparse::PartitionedCsrPtr& partitioned() const { return partitioned_; }
  int64_t nnz() const { return nnz_; }
  /// nnz / numel of the support (reported per dataset by bench_table3).
  double density() const;

 private:
  void MaybePartition();

  Tensor dense_;
  sparse::CsrPtr csr_;
  sparse::PartitionedCsrPtr partitioned_;
  int64_t nnz_ = 0;
};

/// Converts a whole support set (diffusion steps, Chebyshev basis, ...).
std::vector<GraphSupport> MakeSupports(const std::vector<Tensor>& dense);
/// Sparse-native overload (city-scale diffusion supports).
std::vector<GraphSupport> MakeSupports(const std::vector<sparse::CsrPtr>& csr);

/// Time-of-day feature of the last input step, per batch element:
/// x is [B, T, N, 2]; returns flat [B] values.
std::vector<float> LastTimeOfDay(const Tensor& x);

/// Gated linear unit over the channel axis of [B, 2C, N, T]:
/// splits into (P, Q) and returns P * sigmoid(Q), [B, C, N, T].
Tensor GluChannels(const Tensor& x);

}  // namespace trafficbench::models

#endif  // TRAFFICBENCH_MODELS_COMMON_H_
