#ifndef TRAFFICBENCH_MODELS_ABLATION_H_
#define TRAFFICBENCH_MODELS_ABLATION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/models/common.h"
#include "src/models/traffic_model.h"
#include "src/nn/layers.h"

namespace trafficbench::models {

/// Spatial-module families from the paper's Table II.
enum class SpatialKind {
  kNone,       // no spatial mixing (control)
  kChebyshev,  // spectral GCN (STGCN/ASTGCN family)
  kDiffusion,  // spatial GCN on random-walk transitions (DCRNN/GWN family)
  kAdaptive,   // learned adaptive adjacency only (Graph-WaveNet's addition)
};

/// Temporal-module families from the paper's Table II.
enum class TemporalKind {
  kGru,        // RNN (DCRNN/ST-MetaNet family) — autoregressive decoding
  kTcn,        // gated temporal convolution (STGCN/GWN family) — direct
  kAttention,  // temporal self-attention (ASTGCN/GMAN family) — direct
};

std::string ToString(SpatialKind kind);
std::string ToString(TemporalKind kind);

/// A single backbone with swappable spatial and temporal modules, used by
/// the ablation benches to isolate the paper's component-level findings
/// (spectral vs spatial GCN; RNN vs CNN vs attention at long horizons).
class StBackbone : public TrafficModel {
 public:
  StBackbone(const ModelContext& context, SpatialKind spatial,
             TemporalKind temporal);

  Tensor Forward(const Tensor& x, const Tensor& teacher) override;
  std::string name() const override;

 private:
  /// Applies the configured spatial mixing to [..., N, C] features.
  Tensor SpatialMix(const Tensor& features) const;

  int64_t num_nodes_;
  int input_len_;
  int output_len_;
  SpatialKind spatial_;
  TemporalKind temporal_;

  std::vector<GraphSupport> supports_;  // chebyshev or diffusion matrices
  Tensor e1_, e2_;                // adaptive embeddings (kAdaptive)
  std::shared_ptr<nn::Linear> spatial_mix_;
  std::shared_ptr<nn::Linear> input_proj_;

  // kGru
  std::shared_ptr<nn::GRUCell> gru_;
  std::shared_ptr<nn::Linear> gru_out_;
  // kTcn
  std::shared_ptr<nn::Conv2dLayer> tcn1_, tcn2_;
  std::shared_ptr<nn::Linear> tcn_head_;
  // kAttention
  std::shared_ptr<nn::MultiHeadAttention> attention_;
  Tensor horizon_queries_;
  std::shared_ptr<nn::Linear> attn_head_;
};

}  // namespace trafficbench::models

#endif  // TRAFFICBENCH_MODELS_ABLATION_H_
