// Quickstart: generate a synthetic METR-LA-like dataset, train
// Graph-WaveNet for a couple of epochs, and report masked MAE / RMSE /
// MAPE at the paper's three horizons.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart

#include <cstdio>

#include "src/core/experiment.h"
#include "src/data/dataset.h"
#include "src/eval/trainer.h"
#include "src/models/traffic_model.h"

namespace tb = trafficbench;

int main() {
  // 1. A dataset: 32 sensors, 12 days of 5-minute readings, LA-like
  //    incident rate. FromProfile generates the road network and the
  //    traffic series deterministically from the profile seed.
  tb::data::DatasetProfile profile =
      tb::data::ProfileByName("METR-LA-S").value();
  tb::data::TrafficDataset dataset =
      tb::data::TrafficDataset::FromProfile(profile);
  std::printf("dataset %s: %lld sensors, %lld five-minute steps\n",
              profile.name.c_str(),
              static_cast<long long>(dataset.num_nodes()),
              static_cast<long long>(dataset.series().num_steps));

  // 2. A model from the zoo. The ModelContext carries the road graph's
  //    Gaussian-kernel adjacency and the T'=12 -> T=12 protocol.
  tb::models::ModelContext context =
      tb::models::MakeModelContext(dataset, /*seed=*/42);
  auto model = tb::models::CreateModel("Graph-WaveNet", context);
  std::printf("model %s: %lld parameters\n", model->name().c_str(),
              static_cast<long long>(model->ParameterCount()));

  // 3. Train with the paper's protocol: Adam on masked MAE.
  tb::eval::TrainConfig train_config;
  train_config.epochs = 3;
  train_config.batch_size = 8;
  train_config.max_batches_per_epoch = 40;
  train_config.verbose = true;
  tb::eval::TrainResult train =
      tb::eval::TrainModel(model.get(), dataset, train_config);
  std::printf("trained %d epochs (%.1f s/epoch)\n", train_config.epochs,
              train.seconds_per_epoch);

  // 4. Evaluate on the chronological test split.
  const tb::data::DatasetSplits splits = dataset.Splits();
  tb::eval::HorizonReport report =
      tb::eval::EvaluateModel(model.get(), dataset, splits.test_begin,
                              std::min(splits.test_begin + 240,
                                       splits.test_end));
  auto print = [](const char* label, const tb::eval::MetricValues& m) {
    std::printf("  %-7s MAE %.3f  RMSE %.3f  MAPE %.2f%%\n", label, m.mae,
                m.rmse, m.mape);
  };
  print("15 min", report.horizon15);
  print("30 min", report.horizon30);
  print("60 min", report.horizon60);
  print("average", report.average);
  return 0;
}
