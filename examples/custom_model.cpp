// Custom model tutorial: how a downstream user extends the library.
// Defines a new TrafficModel (a two-layer GCN-MLP over the last observed
// step), registers it in the model registry, and benchmarks it against
// the persistence baseline — entirely through the public API.
//
//   ./build/examples/example_custom_model

#include <cstdio>
#include <memory>

#include "src/core/experiment.h"
#include "src/data/dataset.h"
#include "src/eval/trainer.h"
#include "src/graph/road_network.h"
#include "src/models/traffic_model.h"
#include "src/nn/layers.h"

namespace tb = trafficbench;

namespace {

/// A deliberately simple spatiotemporal model: take the most recent K
/// observations, mix them over the road graph, and regress all horizons.
class GcnMlp : public tb::models::TrafficModel {
 public:
  explicit GcnMlp(const tb::models::ModelContext& context)
      : num_nodes_(context.num_nodes),
        input_len_(context.input_len),
        output_len_(context.output_len) {
    tb::Rng rng(context.seed);
    support_ = tb::graph::SymmetricNormalizedAdjacency(context.adjacency);
    constexpr int64_t kRecent = 4;  // steps fed to the MLP
    recent_ = kRecent;
    mix_ = RegisterModule(
        "mix", std::make_shared<tb::nn::Linear>(kRecent * 2, 32, &rng));
    hidden_ = RegisterModule(
        "hidden", std::make_shared<tb::nn::Linear>(2 * 32, 32, &rng));
    out_ = RegisterModule(
        "out", std::make_shared<tb::nn::Linear>(32, output_len_, &rng));
  }

  tb::Tensor Forward(const tb::Tensor& x, const tb::Tensor& teacher) override {
    (void)teacher;
    const int64_t batch = x.dim(0);
    // Last `recent_` steps, flattened per node: [B, N, recent*2].
    tb::Tensor tail = x.Slice(1, input_len_ - recent_, input_len_)
                          .Permute({0, 2, 1, 3})
                          .Reshape(tb::Shape({batch, num_nodes_, recent_ * 2}));
    tb::Tensor h = mix_->Forward(tail).Relu();          // [B, N, 32]
    tb::Tensor mixed = tb::MatMul(support_, h);         // graph smoothing
    h = hidden_->Forward(tb::Concat({h, mixed}, -1)).Relu();
    return out_->Forward(h).Permute({0, 2, 1});         // [B, T_out, N]
  }

  std::string name() const override { return "GCN-MLP"; }

 private:
  int64_t num_nodes_;
  int input_len_;
  int output_len_;
  int64_t recent_;
  tb::Tensor support_;
  std::shared_ptr<tb::nn::Linear> mix_, hidden_, out_;
};

}  // namespace

int main() {
  // Register the custom model alongside the built-ins.
  tb::models::RegisterBuiltinModels();
  tb::models::ModelRegistry::Instance().Register(
      "GCN-MLP", [](const tb::models::ModelContext& context) {
        return std::unique_ptr<tb::models::TrafficModel>(
            std::make_unique<GcnMlp>(context));
      });

  tb::core::ExperimentConfig config = tb::core::ExperimentConfig::FromEnv();
  config.repeats = 1;
  tb::data::TrafficDataset dataset = tb::core::BuildDataset(
      tb::data::ProfileByName("PEMS-BAY-S").value(), config);

  for (const char* name : {"LastValue", "GCN-MLP", "Graph-WaveNet"}) {
    tb::core::RunResult result =
        tb::core::RunModelOnDataset(name, dataset, "PEMS-BAY-S", config);
    std::printf("%-14s params=%-6lld avg MAE %.3f (60 min: %.3f)\n", name,
                static_cast<long long>(result.parameter_count),
                result.Metric("mae", 0).mean, result.Metric("mae", 60).mean);
  }
  std::printf("\nA custom model beats persistence but not the zoo's best —\n"
              "swap in your own architecture via ModelRegistry::Register.\n");
  return 0;
}
