// Difficult-intervals walkthrough: the paper's Sec. V-B pipeline on one
// model, end to end through the public API — extract the volatile
// intervals of a dataset, evaluate a trained model on the full test set
// and on the difficult subset, and report the decline.
//
//   ./build/examples/example_difficult_intervals [model] [dataset]

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/experiment.h"
#include "src/data/dataset.h"
#include "src/eval/difficult_intervals.h"
#include "src/eval/trainer.h"
#include "src/models/traffic_model.h"

namespace tb = trafficbench;

int main(int argc, char** argv) {
  const std::string model_name = argc > 1 ? argv[1] : "Graph-WaveNet";
  const std::string dataset_name = argc > 2 ? argv[2] : "METR-LA-S";

  tb::core::ExperimentConfig config = tb::core::ExperimentConfig::FromEnv();
  tb::data::TrafficDataset dataset = tb::core::BuildDataset(
      tb::data::ProfileByName(dataset_name).value(), config);

  // 1. Extract difficult intervals: moving std over a 30-minute window,
  //    keep the per-node upper quartile (the paper's exact recipe).
  tb::eval::DifficultIntervalOptions options;  // window=6 steps, top 25%
  std::vector<uint8_t> mask =
      tb::eval::DifficultMask(dataset.series(), options);
  std::printf("%s: %.1f%% of (step, node) positions marked difficult\n",
              dataset_name.c_str(),
              100.0 * tb::eval::MaskFraction(mask));

  // 2. Train the model.
  auto model = tb::models::CreateModel(
      model_name, tb::models::MakeModelContext(dataset, config.seed));
  tb::eval::TrainConfig train_config;
  train_config.epochs = config.epochs;
  train_config.batch_size = config.batch_size;
  train_config.max_batches_per_epoch = config.max_batches_per_epoch;
  train_config.learning_rate = config.learning_rate;
  train_config.verbose = true;
  TrainModel(model.get(), dataset, train_config);

  // 3. Evaluate twice: full test split, then difficult positions only.
  const tb::data::DatasetSplits splits = dataset.Splits();
  const int64_t end =
      config.eval_cap > 0
          ? std::min(splits.test_end, splits.test_begin + config.eval_cap)
          : splits.test_end;
  tb::eval::HorizonReport all =
      tb::eval::EvaluateModel(model.get(), dataset, splits.test_begin, end);
  tb::eval::EvalOptions eval_options;
  eval_options.difficult_mask = &mask;
  tb::eval::HorizonReport hard = tb::eval::EvaluateModel(
      model.get(), dataset, splits.test_begin, end, eval_options);

  const double decline =
      100.0 * (hard.average.mae - all.average.mae) / all.average.mae;
  std::printf("\n%s on %s\n", model_name.c_str(), dataset_name.c_str());
  std::printf("  full test set : MAE %.3f  RMSE %.3f  MAPE %.2f%% (n=%lld)\n",
              all.average.mae, all.average.rmse, all.average.mape,
              static_cast<long long>(all.average.count));
  std::printf("  difficult only: MAE %.3f  RMSE %.3f  MAPE %.2f%% (n=%lld)\n",
              hard.average.mae, hard.average.rmse, hard.average.mape,
              static_cast<long long>(hard.average.count));
  std::printf("  relative decline: %.1f%%  (paper observes 67–180%% across "
              "the zoo)\n",
              decline);
  return 0;
}
