// Dataset explorer: generates each of the seven PeMS-mirror profiles,
// prints its network/series statistics, extracts the paper's difficult
// intervals, and exports one series to CSV for inspection.
//
//   ./build/examples/example_dataset_explorer [output.csv]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/eval/difficult_intervals.h"
#include "src/util/table.h"

namespace tb = trafficbench;

namespace {

struct SeriesStats {
  double mean = 0.0, stddev = 0.0, min = 1e30, max = -1e30;
  double missing_pct = 0.0;
};

SeriesStats Describe(const tb::data::TrafficSeries& series) {
  SeriesStats stats;
  double sum = 0.0, sq = 0.0;
  int64_t count = 0, missing = 0;
  for (float v : series.values) {
    if (v == 0.0f) {
      ++missing;
      continue;
    }
    sum += v;
    sq += static_cast<double>(v) * v;
    stats.min = std::min(stats.min, static_cast<double>(v));
    stats.max = std::max(stats.max, static_cast<double>(v));
    ++count;
  }
  if (count > 0) {
    stats.mean = sum / count;
    stats.stddev = std::sqrt(std::max(0.0, sq / count - stats.mean * stats.mean));
  }
  stats.missing_pct = 100.0 * missing / static_cast<double>(series.values.size());
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<tb::data::DatasetProfile> profiles = tb::data::SpeedProfiles();
  for (const auto& p : tb::data::FlowProfiles()) profiles.push_back(p);

  tb::Table table({"Profile", "Mirrors", "Task", "Nodes", "Steps", "Mean",
                   "Std", "Min", "Max", "Missing%", "Difficult%"});
  for (const tb::data::DatasetProfile& profile : profiles) {
    tb::data::TrafficDataset dataset =
        tb::data::TrafficDataset::FromProfile(profile);
    const SeriesStats stats = Describe(dataset.series());
    std::vector<uint8_t> mask =
        tb::eval::DifficultMask(dataset.series(), {});
    table.AddRow(
        {profile.name, profile.mirrors,
         profile.kind == tb::data::FeatureKind::kSpeed ? "speed" : "flow",
         std::to_string(dataset.num_nodes()),
         std::to_string(dataset.series().num_steps),
         tb::Table::Num(stats.mean, 1), tb::Table::Num(stats.stddev, 1),
         tb::Table::Num(stats.min, 1), tb::Table::Num(stats.max, 1),
         tb::Table::Num(stats.missing_pct, 2),
         tb::Table::Num(100.0 * tb::eval::MaskFraction(mask), 1)});
  }
  std::printf("%s", table.ToString().c_str());

  // Export one series for plotting.
  const std::string path = argc > 1 ? argv[1] : "metr_la_s_series.csv";
  tb::data::TrafficDataset metr = tb::data::TrafficDataset::FromProfile(
      tb::data::ProfileByName("METR-LA-S").value());
  tb::Status status = tb::data::WriteSeriesCsv(metr.series(), path);
  if (!status.ok()) {
    std::fprintf(stderr, "export failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("\nexported METR-LA-S series to %s\n", path.c_str());

  // Show one morning of one sensor, with its difficult intervals marked.
  const tb::data::TrafficSeries& series = metr.series();
  std::vector<uint8_t> mask = tb::eval::DifficultMask(series, {});
  std::printf("\nsensor 0, day 2, 06:00-10:00 (* = difficult interval):\n");
  for (int64_t step = 2 * 288 + 72; step < 2 * 288 + 120; step += 4) {
    const int hour = static_cast<int>(step % 288) / 12;
    const int minute = (static_cast<int>(step % 288) % 12) * 5;
    const float v = series.at(step, 0);
    const int bars = static_cast<int>(v / 2.0f);
    std::printf("  %02d:%02d %6.1f %s%s\n", hour, minute, v,
                std::string(std::max(0, bars), '#').c_str(),
                mask[step * series.num_nodes + 0] ? " *" : "");
  }
  return 0;
}
