// Model comparison: the paper's experiment in miniature. Trains a chosen
// subset of the zoo on one dataset and prints the per-horizon leaderboard
// plus parameter counts and timing — a smaller, configurable version of
// the bench binaries.
//
//   ./build/examples/example_model_comparison [dataset] [model...]
// e.g.
//   ./build/examples/example_model_comparison PEMSD8-F Graph-WaveNet GMAN

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/experiment.h"
#include "src/data/dataset.h"
#include "src/models/traffic_model.h"
#include "src/util/table.h"

namespace tb = trafficbench;

int main(int argc, char** argv) {
  const std::string dataset_name = argc > 1 ? argv[1] : "PEMSD8-F";
  std::vector<std::string> model_names;
  for (int i = 2; i < argc; ++i) model_names.push_back(argv[i]);
  if (model_names.empty()) {
    model_names = {"LastValue", "HistoricalAverage", "STGCN", "DCRNN",
                   "Graph-WaveNet", "GMAN"};
  }

  tb::Result<tb::data::DatasetProfile> profile =
      tb::data::ProfileByName(dataset_name);
  if (!profile.ok()) {
    std::fprintf(stderr, "%s\navailable profiles:",
                 profile.status().ToString().c_str());
    for (const auto& p : tb::data::SpeedProfiles()) {
      std::fprintf(stderr, " %s", p.name.c_str());
    }
    for (const auto& p : tb::data::FlowProfiles()) {
      std::fprintf(stderr, " %s", p.name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 1;
  }

  tb::core::ExperimentConfig config = tb::core::ExperimentConfig::FromEnv();
  config.repeats = 1;
  tb::data::TrafficDataset dataset =
      tb::core::BuildDataset(profile.value(), config);
  std::printf("comparing %zu models on %s (%lld nodes, %lld steps)\n",
              model_names.size(), dataset_name.c_str(),
              static_cast<long long>(dataset.num_nodes()),
              static_cast<long long>(dataset.series().num_steps));

  tb::Table table({"Model", "Params", "Train s/epoch", "MAE 15", "MAE 30",
                   "MAE 60"});
  for (const std::string& name : model_names) {
    tb::core::RunResult result =
        tb::core::RunModelOnDataset(name, dataset, dataset_name, config);
    table.AddRow({name, std::to_string(result.parameter_count),
                  tb::Table::Num(result.train_seconds_per_epoch.front(), 2),
                  tb::Table::Num(result.Metric("mae", 15).mean, 3),
                  tb::Table::Num(result.Metric("mae", 30).mean, 3),
                  tb::Table::Num(result.Metric("mae", 60).mean, 3)});
    std::fprintf(stderr, "  done: %s\n", name.c_str());
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
