#!/usr/bin/env python3
"""Plot the paper's figures from the bench binaries' CSV output.

Usage:
    # after running the bench binaries (CSVs land in the working directory)
    python3 scripts/plot_figures.py [--dir .] [--out figures/]

Produces, when the corresponding CSV exists:
    fig1_speed.png / fig1_flow.png   - grouped bars of MAE/RMSE/MAPE per
                                       model x dataset x horizon (Fig. 1)
    fig2_difficult.png               - MAE all-vs-difficult + decline (Fig. 2)
    fig3_series.png                  - truth vs prediction for the stable and
                                       the abruptly-changing road (Fig. 3)

Only needs matplotlib; degrades gracefully (skips missing files).
"""

import argparse
import csv
import os
import sys
from collections import defaultdict


def read_csv(path):
    with open(path, newline="") as f:
        return list(csv.DictReader(f))


def plot_fig1(rows, metric, out_path, plt):
    datasets = sorted({r["dataset"] for r in rows})
    horizons = ["15", "30", "60"]
    fig, axes = plt.subplots(1, len(datasets), figsize=(6 * len(datasets), 4),
                             squeeze=False)
    for ax, dataset in zip(axes[0], datasets):
        models, means, stds = defaultdict(dict), defaultdict(dict), defaultdict(dict)
        for r in rows:
            if r["dataset"] != dataset or r["metric"] != metric:
                continue
            models[r["model"]][r["horizon_min"]] = float(r["mean"])
            stds[r["model"]][r["horizon_min"]] = float(r["std"])
        names = list(models)
        width = 0.8 / len(horizons)
        for h_index, horizon in enumerate(horizons):
            xs = [i + h_index * width for i in range(len(names))]
            ys = [models[m].get(horizon, 0.0) for m in names]
            es = [stds[m].get(horizon, 0.0) for m in names]
            ax.bar(xs, ys, width=width, yerr=es, capsize=2,
                   label=f"{horizon} min")
        ax.set_xticks([i + width for i in range(len(names))])
        ax.set_xticklabels(names, rotation=45, ha="right", fontsize=8)
        ax.set_title(f"{dataset} — {metric.upper()}")
        ax.legend(fontsize=8)
    fig.tight_layout()
    fig.savefig(out_path, dpi=120)
    print("wrote", out_path)


def plot_fig2(rows, out_path, plt):
    names = [r["model"] for r in rows]
    all_mae = [float(r["mae_all"]) for r in rows]
    hard_mae = [float(r["mae_difficult"]) for r in rows]
    decline = [float(r["decline_pct"]) for r in rows]
    fig, (top, bottom) = plt.subplots(2, 1, figsize=(8, 6), sharex=True)
    xs = range(len(names))
    top.bar([x - 0.2 for x in xs], all_mae, width=0.4, label="all")
    top.bar([x + 0.2 for x in xs], hard_mae, width=0.4, label="difficult")
    top.set_ylabel("MAE")
    top.legend()
    bottom.bar(xs, decline, color="tab:red")
    bottom.set_ylabel("decline %")
    bottom.set_xticks(list(xs))
    bottom.set_xticklabels(names, rotation=45, ha="right")
    fig.suptitle("Difficult intervals (METR-LA mirror) — Fig. 2")
    fig.tight_layout()
    fig.savefig(out_path, dpi=120)
    print("wrote", out_path)


def plot_fig3(rows, out_path, plt):
    ts = [int(r["t"]) for r in rows]
    fig, (a, b) = plt.subplots(2, 1, figsize=(9, 6), sharex=True)
    a.plot(ts, [float(r["truth_A"]) for r in rows], label="truth", lw=1)
    a.plot(ts, [float(r["pred_A"]) for r in rows], label="prediction",
           color="tab:red", lw=1)
    a.set_title("A: stable road")
    a.legend()
    b.plot(ts, [float(r["truth_B"]) for r in rows], lw=1)
    b.plot(ts, [float(r["pred_B"]) for r in rows], color="tab:red", lw=1)
    b.set_title("B: abruptly changing road")
    b.set_xlabel("test step (5-minute grid)")
    fig.suptitle("Per-road case study (PeMS-BAY mirror) — Fig. 3")
    fig.tight_layout()
    fig.savefig(out_path, dpi=120)
    print("wrote", out_path)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--dir", default=".", help="directory with the CSVs")
    parser.add_argument("--out", default="figures", help="output directory")
    args = parser.parse_args()

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    os.makedirs(args.out, exist_ok=True)
    jobs = [
        ("fig1_speed.csv", lambda rows: plot_fig1(
            rows, "mae", os.path.join(args.out, "fig1_speed.png"), plt)),
        ("fig1_flow.csv", lambda rows: plot_fig1(
            rows, "mae", os.path.join(args.out, "fig1_flow.png"), plt)),
        ("fig2_difficult_long.csv", lambda rows: plot_fig2(
            rows, os.path.join(args.out, "fig2_difficult.png"), plt)),
        ("fig3_series.csv", lambda rows: plot_fig3(
            rows, os.path.join(args.out, "fig3_series.png"), plt)),
    ]
    for name, plot in jobs:
        path = os.path.join(args.dir, name)
        if os.path.exists(path):
            plot(read_csv(path))
        else:
            print("skipping missing", path)


if __name__ == "__main__":
    main()
