#!/usr/bin/env bash
# Repo verification: tier-1 build + tests, then (optionally) a
# ThreadSanitizer build of the execution-layer tests.
#
#   scripts/check.sh          # tier-1 only
#   TSAN=1 scripts/check.sh   # tier-1 + TSAN pass over exec_test
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build =="
cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure -j)

if [[ "${TSAN:-0}" == "1" ]]; then
  echo "== tsan: build (TRAFFICBENCH_TSAN=ON) =="
  cmake -B build-tsan -S . -DTRAFFICBENCH_TSAN=ON >/dev/null
  cmake --build build-tsan -j --target trafficbench_tests >/dev/null
  echo "== tsan: exec tests =="
  ./build-tsan/tests/trafficbench_tests \
    --gtest_filter='ExecutionContext.*:Determinism.*:OpProfiler.*'
fi

echo "OK"
