#!/usr/bin/env bash
# Repo verification: tier-1 build + tests, then (optionally) sanitizer
# builds of the concurrency- and memory-sensitive tests.
#
#   scripts/check.sh          # tier-1 only
#   TSAN=1 scripts/check.sh   # + ThreadSanitizer pass (exec layer + pool +
#                             #   sparse + serving queue/batcher/server +
#                             #   compiled inference plans + scenario engine)
#   ASAN=1 scripts/check.sh   # + ASan/UBSan pass (tensor/kernel/pool/
#                             #   sparse/serve/scenario tests)
#   FAULT=1 scripts/check.sh  # + fault-injection suite under ASan/UBSan
#                             #   (guarded loop, TBCKPT2, kill-and-resume)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build =="
cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure -j)

if [[ "${TSAN:-0}" == "1" ]]; then
  echo "== tsan: build (TRAFFICBENCH_TSAN=ON) =="
  cmake -B build-tsan -S . -DTRAFFICBENCH_TSAN=ON >/dev/null
  cmake --build build-tsan -j --target trafficbench_tests >/dev/null
  echo "== tsan: exec + pool + sparse + serve + plan + precision + ladder + partition + scenario tests =="
  ./build-tsan/tests/trafficbench_tests \
    --gtest_filter='ExecutionContext.*:Determinism.*:OpProfiler.*:BufferPool.*:SpmmProperty.*:SparseModelParity.*:Serve*.*:*ServeDeterminismTest.*:Plan*.*:Precision*.*:Admission*.*:ResponseCache*.*:ArrivalTrace.*:DegradeFault.*:Partition*.*:Shard*.*:Scenario*.*'
fi

if [[ "${ASAN:-0}" == "1" ]]; then
  echo "== asan/ubsan: build (TRAFFICBENCH_ASAN=ON) =="
  cmake -B build-asan -S . -DTRAFFICBENCH_ASAN=ON >/dev/null
  cmake --build build-asan -j --target trafficbench_tests >/dev/null
  echo "== asan/ubsan: tensor/kernel/pool/sparse/serve/plan/precision/ladder/partition/scenario tests =="
  ./build-asan/tests/trafficbench_tests \
    --gtest_filter='Tensor*.*:Autograd*.*:GradCheck*.*:ElementwiseOps.*:MatMul*.*:Conv*.*:SoftmaxOp.*:Reductions.*:ShapeOps.*:StructuralOps.*:KernelProperty.*:BufferPool.*:Determinism.*:SparseCsr.*:SpmmProperty.*:SparseGraphSupport.*:Serve*.*:*ServeDeterminismTest.*:Plan*.*:Precision*.*:Admission*.*:ResponseCache*.*:ArrivalTrace.*:DegradeFault.*:Partition*.*:Shard*.*:Scenario*.*'
fi

if [[ "${FAULT:-0}" == "1" ]]; then
  echo "== fault: build (TRAFFICBENCH_ASAN=ON) =="
  cmake -B build-asan -S . -DTRAFFICBENCH_ASAN=ON >/dev/null
  cmake --build build-asan -j --target trafficbench_tests >/dev/null
  echo "== fault: guarded loop / checkpoint / resume / degrade-ladder / halo / scenario-route suite =="
  ./build-asan/tests/trafficbench_tests \
    --gtest_filter='FaultInjector.*:GuardedLoop.*:TrainCheckpoint.*:KillAndResume.*:Sweep.*:Evaluation.*:CsvRobustness.*:AtomicWrite.*:Serialize.*:PlanFault.*:PrecisionFault.*:DegradeFault.*:HaloFault.*:ScenarioFault.*'
fi

echo "OK"
