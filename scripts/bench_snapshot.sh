#!/usr/bin/env bash
# Snapshots the GEMM/SpMM micro-benchmarks into the repo-root BENCH_<PR>.json
# so the perf trajectory is tracked across PRs. The snapshot is the raw
# google-benchmark JSON of the filtered run; BM_MatMulRef rows are the
# retained pre-blocking naive kernel, so each snapshot self-contains its
# before/after comparison (BM_MatMulRef/N vs BM_MatMul/N), and BM_SpMM rows
# compare CSR propagation against the dense BM_MatMul path at the same shape.
#
# The benchmarks are always built in a dedicated Release build directory with
# TRAFFICBENCH_NATIVE=ON: BENCH_2.json was recorded from whatever ./build
# happened to contain, which made the recorded speedups untrustworthy. The
# system libbenchmark is a Debian build without NDEBUG, so the JSON context's
# "library_build_type" still reads "debug" — that refers to the *harness*
# library only; the repo's own kernels are -O2 + native. The snapshot context
# is annotated with "trafficbench_build_type" to record this.
#
# Usage: scripts/bench_snapshot.sh [PR_NUMBER]   (default 4)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build-bench}"
PR="${1:-4}"
OUT="$ROOT/BENCH_${PR}.json"

cmake -S "$ROOT" -B "$BUILD" \
  -DCMAKE_BUILD_TYPE=Release -DTRAFFICBENCH_NATIVE=ON >/dev/null
cmake --build "$BUILD" --target bench_micro_ops -j >/dev/null

"$BUILD/bench/bench_micro_ops" \
  --benchmark_filter='BM_MatMul(Ref)?/|BM_GraphConvMetrLa|BM_MatMulThreads|BM_SpMM/|BM_SpmmGraphConvMetrLa' \
  --benchmark_out="$OUT" --benchmark_out_format=json

# Annotate the context with the repo-side build type and print the headline
# ratios: blocked-vs-naive GEMM, and sparse-vs-dense propagation at METR-LA
# scale (same [207, 207] x [207, 207] shape, support at the real ~4% density).
python3 - "$OUT" <<'EOF'
import json, sys

path = sys.argv[1]
with open(path) as f:
    snap = json.load(f)
snap["context"]["trafficbench_build_type"] = "Release -O2 TRAFFICBENCH_NATIVE"
with open(path, "w") as f:
    json.dump(snap, f, indent=2)
    f.write("\n")

rows = {b["name"]: b for b in snap["benchmarks"]}

def headline(label, slow, fast, key):
    if slow in rows and fast in rows:
        ratio = rows[slow][key] / rows[fast][key]
        print(f"{label}: {ratio:.2f}x ({slow} vs {fast})")

# Blocked GEMM vs the retained naive kernel (items/s, higher is better).
if "BM_MatMul/128" in rows and "BM_MatMulRef/128" in rows:
    r = rows["BM_MatMul/128"]["items_per_second"] / \
        rows["BM_MatMulRef/128"]["items_per_second"]
    print(f"BM_MatMul/128 blocked vs naive: {r:.2f}x")
# Sparse vs dense at METR-LA shape/density (wall time, lower is better).
headline("SpMM vs dense MatMul at METR-LA density",
         "BM_MatMul/207", "BM_SpMM/207/40", "real_time")
headline("SpMM vs dense at PeMS-BAY scale/density",
         "BM_MatMul/325", "BM_SpMM/325/25", "real_time")
EOF
echo "snapshot: $OUT"
