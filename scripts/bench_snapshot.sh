#!/usr/bin/env bash
# Snapshots the GEMM micro-benchmarks into the repo-root BENCH_<PR>.json so
# the perf trajectory is tracked across PRs. The snapshot is the raw
# google-benchmark JSON of the filtered run; BM_MatMulRef rows are the
# retained pre-blocking naive kernel, so each snapshot self-contains its
# before/after comparison (BM_MatMulRef/N vs BM_MatMul/N).
#
# Usage: scripts/bench_snapshot.sh [PR_NUMBER]   (default 2)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
PR="${1:-2}"
OUT="$ROOT/BENCH_${PR}.json"

cmake -S "$ROOT" -B "$BUILD" >/dev/null
cmake --build "$BUILD" --target bench_micro_ops -j >/dev/null

"$BUILD/bench/bench_micro_ops" \
  --benchmark_filter='BM_MatMul(Ref)?/|BM_GraphConvMetrLa|BM_MatMulThreads' \
  --benchmark_out="$OUT" --benchmark_out_format=json

# Headline: blocked vs naive single-thread items/sec on the large MatMul.
awk '
  /"name": "BM_MatMulRef\/128"/ { in_ref = 1 }
  /"name": "BM_MatMul\/128"/ { in_new = 1 }
  /"items_per_second":/ {
    gsub(/[^0-9.e+]/, "", $2)
    if (in_ref) { ref = $2; in_ref = 0 }
    else if (in_new) { new_ips = $2; in_new = 0 }
  }
  END {
    if (ref > 0 && new_ips > 0) {
      printf "BM_MatMul/128: %.3gG items/s blocked vs %.3gG naive -> %.2fx\n",
             new_ips / 1e9, ref / 1e9, new_ips / ref
    }
  }
' "$OUT"
echo "snapshot: $OUT"
