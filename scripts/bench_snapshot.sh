#!/usr/bin/env bash
# Snapshots the GEMM/SpMM micro-benchmarks into the repo-root BENCH_<PR>.json
# so the perf trajectory is tracked across PRs. The snapshot is the raw
# google-benchmark JSON of the filtered run; BM_MatMulRef rows are the
# retained pre-blocking naive kernel, so each snapshot self-contains its
# before/after comparison (BM_MatMulRef/N vs BM_MatMul/N), and BM_SpMM rows
# compare CSR propagation against the dense BM_MatMul path at the same shape.
#
# The benchmarks are always built in a dedicated Release build directory with
# TRAFFICBENCH_NATIVE=ON: BENCH_2.json was recorded from whatever ./build
# happened to contain, which made the recorded speedups untrustworthy. The
# system libbenchmark is a Debian build without NDEBUG, so the JSON context's
# "library_build_type" still reads "debug" — that refers to the *harness*
# library only; the repo's own kernels are -O2 + native. The snapshot context
# is annotated with "trafficbench_build_type" to record this.
#
# The snapshot also records the serving subsystem's headline numbers: a
# serve-bench replay of test windows through the dynamic micro-batching
# server (all eight models, bit-identity verified against batch-of-1) lands
# under the "serve_bench" key, giving Table III a deployment-shaped
# latency/throughput counterpart tracked across PRs. Since PR 6 each model
# is replayed twice — compiled-inference-plan pass and eager autograd pass —
# so the per-model rows carry "windows/s" (plan), "auto w/s" (autograd) and
# "speedup" columns.
#
# Usage: scripts/bench_snapshot.sh [PR_NUMBER]   (default 6)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build-bench}"
PR="${1:-6}"
OUT="$ROOT/BENCH_${PR}.json"

cmake -S "$ROOT" -B "$BUILD" \
  -DCMAKE_BUILD_TYPE=Release -DTRAFFICBENCH_NATIVE=ON >/dev/null
cmake --build "$BUILD" --target bench_micro_ops trafficbench_cli -j >/dev/null

"$BUILD/bench/bench_micro_ops" \
  --benchmark_filter='BM_MatMul(Ref)?/|BM_GraphConvMetrLa|BM_MatMulThreads|BM_SpMM/|BM_SpmmGraphConvMetrLa' \
  --benchmark_out="$OUT" --benchmark_out_format=json

# Annotate the context with the repo-side build type and print the headline
# ratios: blocked-vs-naive GEMM, and sparse-vs-dense propagation at METR-LA
# scale (same [207, 207] x [207, 207] shape, support at the real ~4% density).
python3 - "$OUT" <<'EOF'
import json, sys

path = sys.argv[1]
with open(path) as f:
    snap = json.load(f)
snap["context"]["trafficbench_build_type"] = "Release -O2 TRAFFICBENCH_NATIVE"
with open(path, "w") as f:
    json.dump(snap, f, indent=2)
    f.write("\n")

rows = {b["name"]: b for b in snap["benchmarks"]}

def headline(label, slow, fast, key):
    if slow in rows and fast in rows:
        ratio = rows[slow][key] / rows[fast][key]
        print(f"{label}: {ratio:.2f}x ({slow} vs {fast})")

# Blocked GEMM vs the retained naive kernel (items/s, higher is better).
if "BM_MatMul/128" in rows and "BM_MatMulRef/128" in rows:
    r = rows["BM_MatMul/128"]["items_per_second"] / \
        rows["BM_MatMulRef/128"]["items_per_second"]
    print(f"BM_MatMul/128 blocked vs naive: {r:.2f}x")
# Sparse vs dense at METR-LA shape/density (wall time, lower is better).
headline("SpMM vs dense MatMul at METR-LA density",
         "BM_MatMul/207", "BM_SpMM/207/40", "real_time")
headline("SpMM vs dense at PeMS-BAY scale/density",
         "BM_MatMul/325", "BM_SpMM/325/25", "real_time")
EOF
# Serve-bench replay: all eight models on METR-LA-S, micro-batching server,
# bit-identity verified across served/plan/eager. The default mode runs a
# compiled-plan pass and an autograd pass per model; both throughputs and
# their ratio land in the per-model CSV folded into the snapshot.
(cd "$BUILD" && ./tools/trafficbench serve-bench --dataset METR-LA-S \
  --requests 64 --batch-max 8 --workers 2 --verify >/dev/null)

python3 - "$OUT" "$BUILD/serve_bench.csv" <<'EOF'
import csv, json, sys

out_path, csv_path = sys.argv[1], sys.argv[2]
with open(out_path) as f:
    snap = json.load(f)
with open(csv_path) as f:
    rows = list(csv.DictReader(f))
snap["serve_bench"] = {
    "config": "METR-LA-S, 64 requests/model, batch-max 8, 2 workers, "
              "verify, plan+autograd passes",
    "models": rows,
}
with open(out_path, "w") as f:
    json.dump(snap, f, indent=2)
    f.write("\n")

by_rate = sorted(rows, key=lambda r: float(r["windows/s"]))
print("serve-bench headlines (p50 ms | plan windows/s | autograd windows/s | speedup):")
for r in (by_rate[-1], by_rate[0]):
    print(f"  {r['Model']}: {r['p50 ms']} ms p50 | {r['windows/s']} w/s"
          f" | {r.get('auto w/s', '-')} w/s | {r.get('speedup', '-')}")
by_speed = [r for r in rows if r.get("speedup", "-") != "-"]
if by_speed:
    best = max(by_speed, key=lambda r: float(r["speedup"].rstrip("x")))
    print(f"  best plan speedup: {best['Model']} {best['speedup']}")
EOF
echo "snapshot: $OUT"
