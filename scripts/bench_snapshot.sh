#!/usr/bin/env bash
# Snapshots the GEMM/SpMM micro-benchmarks into the repo-root BENCH_<PR>.json
# so the perf trajectory is tracked across PRs. The snapshot is the raw
# google-benchmark JSON of the filtered run; BM_MatMulRef rows are the
# retained pre-blocking naive kernel, so each snapshot self-contains its
# before/after comparison (BM_MatMulRef/N vs BM_MatMul/N), and BM_SpMM rows
# compare CSR propagation against the dense BM_MatMul path at the same shape.
#
# The benchmarks are always built in a dedicated Release build directory with
# TRAFFICBENCH_NATIVE=ON: BENCH_2.json was recorded from whatever ./build
# happened to contain, which made the recorded speedups untrustworthy. The
# system libbenchmark is a Debian build without NDEBUG, so the JSON context's
# "library_build_type" still reads "debug" — that refers to the *harness*
# library only; the repo's own kernels are -O2 + native. The snapshot context
# is annotated with "trafficbench_build_type" to record this.
#
# The snapshot also records the serving subsystem's headline numbers: a
# serve-bench replay of test windows through the dynamic micro-batching
# server (all eight models, bit-identity verified against batch-of-1) lands
# under the "serve_bench" key, giving Table III a deployment-shaped
# latency/throughput counterpart tracked across PRs. Since PR 6 each model
# is replayed twice — compiled-inference-plan pass and eager autograd pass —
# so the per-model rows carry "windows/s" (plan), "auto w/s" (autograd) and
# "speedup" columns.
#
# Since PR 7 the snapshot also records the reduced-precision tier
# (DESIGN.md §13) under "precision_bench": a plan-only fp32 pass and a
# plan-only bf16 pass per model, with the bf16-vs-fp32-plan throughput
# ratio and the verify-mode MAE delta vs the fp32 eager forward. The
# BM_GemmPlan* rows capture the per-kernel view at serving shapes: fp32
# per-call-packed GEMM vs the pre-panelized bf16/int8 kernels.
#
# Since PR 8 the snapshot also records the overload behaviour under
# "overload_bench": each model is replayed closed-loop at 10x its own
# measured plan throughput (the BENCH_5-equivalent arrival rate) with the
# bursty arrival trace and the admission ladder enabled — the fold keeps
# per-tier response counts, the hard-drop count (must be 0 with the ladder
# on) and the all-tier p99.
#
# Since PR 9 the snapshot also records the partitioned-execution view
# under the BM_SpMMCity / BM_PartitionedSpMM / BM_DenseDispatchCity rows:
# city-scale CSR propagation at 2k/4k nodes (~1-3% density, built straight
# from COO — no N x N dense tensor), the same shapes through the
# edge-cut-partitioned halo-exchange path, and the dense-dispatch "before"
# row at 2048 nodes. The fold prints the per-node-cost-vs-N headline
# (ns per nonzero per feature column, flat-ness across 325 -> 2k -> 4k) and
# the partitioned-vs-dense-dispatch speedup at 2k, and lands both under the
# "partition_bench" key.
#
# Since PR 10 the snapshot also records the scenario-robustness view under
# "scenario_bench": the full models x scenarios matrix (DESIGN.md §16) —
# every model trained on an undisturbed capacity-routed world, then scored
# on scripted closure / surge / gridlock / blackout scenarios — with
# per-cell overall + difficult-interval metrics and the per-model
# degradation ratios. The fold prints the headline: each model family's
# worst scenario and its worst-case MAE degradation ratio.
#
# Usage: scripts/bench_snapshot.sh [PR_NUMBER]   (default 10)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build-bench}"
PR="${1:-10}"
OUT="$ROOT/BENCH_${PR}.json"

cmake -S "$ROOT" -B "$BUILD" \
  -DCMAKE_BUILD_TYPE=Release -DTRAFFICBENCH_NATIVE=ON >/dev/null
cmake --build "$BUILD" --target bench_micro_ops trafficbench_cli \
  bench_scenario_matrix -j >/dev/null

"$BUILD/bench/bench_micro_ops" \
  --benchmark_filter='BM_MatMul(Ref)?/|BM_GraphConvMetrLa|BM_MatMulThreads|BM_SpMM/|BM_SpMMCity/|BM_PartitionedSpMM/|BM_DenseDispatchCity/|BM_SpmmGraphConvMetrLa|BM_GemmPlan' \
  --benchmark_out="$OUT" --benchmark_out_format=json

# Annotate the context with the repo-side build type and print the headline
# ratios: blocked-vs-naive GEMM, and sparse-vs-dense propagation at METR-LA
# scale (same [207, 207] x [207, 207] shape, support at the real ~4% density).
python3 - "$OUT" <<'EOF'
import json, sys

path = sys.argv[1]
with open(path) as f:
    snap = json.load(f)
snap["context"]["trafficbench_build_type"] = "Release -O2 TRAFFICBENCH_NATIVE"
with open(path, "w") as f:
    json.dump(snap, f, indent=2)
    f.write("\n")

rows = {b["name"]: b for b in snap["benchmarks"]}

def headline(label, slow, fast, key):
    if slow in rows and fast in rows:
        ratio = rows[slow][key] / rows[fast][key]
        print(f"{label}: {ratio:.2f}x ({slow} vs {fast})")

# Blocked GEMM vs the retained naive kernel (items/s, higher is better).
if "BM_MatMul/128" in rows and "BM_MatMulRef/128" in rows:
    r = rows["BM_MatMul/128"]["items_per_second"] / \
        rows["BM_MatMulRef/128"]["items_per_second"]
    print(f"BM_MatMul/128 blocked vs naive: {r:.2f}x")
# Sparse vs dense at METR-LA shape/density (wall time, lower is better).
headline("SpMM vs dense MatMul at METR-LA density",
         "BM_MatMul/207", "BM_SpMM/207/40", "real_time")
headline("SpMM vs dense at PeMS-BAY scale/density",
         "BM_MatMul/325", "BM_SpMM/325/25", "real_time")
# Reduced-precision plan GEMM vs the fp32 plan GEMM at a serving shape.
for tier in ("Bf16", "Int8"):
    name = f"BM_GemmPlan{tier}/1656"
    if name in rows and "BM_GemmPlanFp32/1656" in rows:
        r = rows["BM_GemmPlanFp32/1656"]["real_time"] / rows[name]["real_time"]
        print(f"plan GEMM {tier.lower()} vs fp32 (m=1656,k=n=64): {r:.2f}x")

# Partitioned execution (PR 9): per-node-cost-vs-N curve and the
# partitioned-vs-dense-dispatch speedup at 2k nodes. "Per-node cost" is
# normalized per unit of SpMM work — ns per nonzero per feature column —
# so the 325-node baseline and the 2k/4k rows are directly comparable
# even though average degree differs across the profiles.
def unit_cost(name):
    """ns per (nnz * feature column) of the monolithic/partitioned rows."""
    b = rows.get(name)
    if b is None:
        return None
    return b["real_time"] / (b["nnz"] * 64.0)

partition_bench = {"unit_cost_ns_per_nnz_col": {}, "headlines": {}}
base = unit_cost("BM_SpMMCity/325/25")
print("per-node SpMM cost vs N (ns per nnz per feature column):")
for name in ("BM_SpMMCity/325/25", "BM_SpMMCity/2048/15",
             "BM_SpMMCity/4096/10", "BM_PartitionedSpMM/2048/15/2",
             "BM_PartitionedSpMM/4096/10/4"):
    c = unit_cost(name)
    if c is None:
        continue
    partition_bench["unit_cost_ns_per_nnz_col"][name] = round(c, 4)
    rel = f" ({c / base:.2f}x of 325-node baseline)" if base else ""
    print(f"  {name}: {c:.3f}{rel}")
if ("BM_PartitionedSpMM/2048/15/2" in rows
        and "BM_DenseDispatchCity/2048" in rows):
    speedup = (rows["BM_DenseDispatchCity/2048"]["real_time"]
               / rows["BM_PartitionedSpMM/2048/15/2"]["real_time"])
    partition_bench["headlines"]["partitioned_vs_dense_dispatch_2048"] = \
        round(speedup, 2)
    print(f"partitioned vs dense dispatch at 2048 nodes: {speedup:.1f}x "
          f"(contract: >= 2x)")
for big in ("BM_SpMMCity/2048/15", "BM_SpMMCity/4096/10"):
    c = unit_cost(big)
    if base and c:
        partition_bench["headlines"][f"{big}_unit_cost_vs_325"] = \
            round(c / base, 3)
snap["partition_bench"] = partition_bench
with open(path, "w") as f:
    json.dump(snap, f, indent=2)
    f.write("\n")
EOF
# Serve-bench replay: all eight models on METR-LA-S, micro-batching server,
# bit-identity verified across served/plan/eager. The default mode runs a
# compiled-plan pass and an autograd pass per model; both throughputs and
# their ratio land in the per-model CSV folded into the snapshot.
(cd "$BUILD" && ./tools/trafficbench serve-bench --dataset METR-LA-S \
  --requests 64 --batch-max 8 --workers 2 --verify \
  --csv serve_bench.csv >/dev/null)

python3 - "$OUT" "$BUILD/serve_bench.csv" <<'EOF'
import csv, json, sys

out_path, csv_path = sys.argv[1], sys.argv[2]
with open(out_path) as f:
    snap = json.load(f)
with open(csv_path) as f:
    rows = list(csv.DictReader(f))
snap["serve_bench"] = {
    "config": "METR-LA-S, 64 requests/model, batch-max 8, 2 workers, "
              "verify, plan+autograd passes",
    "models": rows,
}
with open(out_path, "w") as f:
    json.dump(snap, f, indent=2)
    f.write("\n")

by_rate = sorted(rows, key=lambda r: float(r["windows/s"]))
print("serve-bench headlines (p50 ms | plan windows/s | autograd windows/s | speedup):")
for r in (by_rate[-1], by_rate[0]):
    print(f"  {r['Model']}: {r['p50 ms']} ms p50 | {r['windows/s']} w/s"
          f" | {r.get('auto w/s', '-')} w/s | {r.get('speedup', '-')}")
by_speed = [r for r in rows if r.get("speedup", "-") != "-"]
if by_speed:
    best = max(by_speed, key=lambda r: float(r["speedup"].rstrip("x")))
    print(f"  best plan speedup: {best['Model']} {best['speedup']}")
EOF
# Precision tier A/B: plan-only fp32 pass vs plan-only bf16 pass, single
# worker so the tier ratio is not confounded by worker contention on small
# machines. Serve throughput on a loaded host is noisy (+-10%), so each
# pass runs REPS times and the fold below keeps the best windows/s per
# model per tier — the standard best-of-N for throughput A/Bs. The bf16
# pass runs --verify, whose reduced mode prints per-model max-abs/max-rel/
# MAE-delta error vs the fp32 eager forward instead of asserting bitwise.
REPS=${REPS:-3}
for rep in $(seq 1 "$REPS"); do
  (cd "$BUILD" && ./tools/trafficbench serve-bench --dataset METR-LA-S \
    --requests 128 --batch-max 8 --workers 1 --plan --precision fp32 \
    --csv "serve_bench_fp32_$rep.csv" >/dev/null)
  (cd "$BUILD" && ./tools/trafficbench serve-bench --dataset METR-LA-S \
    --requests 128 --batch-max 8 --workers 1 --plan --precision bf16 \
    --verify --csv "serve_bench_bf16_$rep.csv" >serve_bench_bf16.log)
done

python3 - "$OUT" "$BUILD" "$REPS" <<'EOF'
import csv, glob, json, re, sys

out_path, build, reps = sys.argv[1], sys.argv[2], int(sys.argv[3])

with open(out_path) as f:
    snap = json.load(f)

def load(tier):
    """Best windows/s per model across the tier's repetitions."""
    best = {}
    for path in glob.glob(f"{build}/serve_bench_{tier}_*.csv"):
        for r in csv.DictReader(open(path)):
            cur = best.get(r["Model"])
            if cur is None or float(r["windows/s"]) > float(cur["windows/s"]):
                best[r["Model"]] = r
    return best

fp32, bf16 = load("fp32"), load("bf16")
# verify[bf16]: <model> max abs X, max rel Y, mae delta Z vs fp32 eager ...
errors = {}
with open(f"{build}/serve_bench_bf16.log") as f:
    for line in f:
        m = re.match(r"verify\[\w+\]: (\S+) max abs (\S+), max rel (\S+), "
                     r"mae delta (\S+)", line)
        if m:
            errors[m.group(1)] = {"max_abs": float(m.group(2)),
                                  "max_rel": float(m.group(3)),
                                  "mae_delta": float(m.group(4))}
models = []
for name, f32 in fp32.items():
    b16 = bf16.get(name)
    if b16 is None:
        continue
    row = {"model": name,
           "fp32_windows_per_s": float(f32["windows/s"]),
           "bf16_windows_per_s": float(b16["windows/s"]),
           "bf16_served_precision": b16.get("precision", "bf16"),
           "bf16_vs_fp32_plan":
               round(float(b16["windows/s"]) / float(f32["windows/s"]), 3)}
    row.update(errors.get(name, {}))
    models.append(row)
snap["precision_bench"] = {
    "config": f"METR-LA-S, 128 requests/model, batch-max 8, 1 worker "
              f"(uncontended A/B), plan-only passes, best of {reps} runs "
              f"per tier; bf16 errors vs fp32 eager from --verify",
    "models": models,
}
with open(out_path, "w") as f:
    json.dump(snap, f, indent=2)
    f.write("\n")

print("precision-bench headlines (bf16-plan vs fp32-plan serve throughput):")
for row in sorted(models, key=lambda r: -r["bf16_vs_fp32_plan"]):
    mae = row.get("mae_delta")
    mae_s = f", mae delta {mae:.2e}" if mae is not None else ""
    mark = " >=1.5x" if row["bf16_vs_fp32_plan"] >= 1.5 else ""
    print(f"  {row['model']}: {row['bf16_vs_fp32_plan']:.2f}x{mae_s}{mark}")
EOF
# Overload run (DESIGN.md §14): flood each model at 10x its own measured
# compiled-plan throughput — the arrival rate the serve_bench section above
# says this model can sustain, times ten — with the bursty trace and the
# degradation ladder on. A small queue keeps the pressure on the admission
# controller instead of on queueing slack. --verify pins that tier-0
# responses stay bitwise-identical to direct inference while the ladder
# degrades around them.
rm -f "$BUILD"/overload_*.csv
python3 - "$BUILD/serve_bench.csv" <<'EOF' > "$BUILD/overload_rates.txt"
import csv, sys
for r in csv.DictReader(open(sys.argv[1])):
    print(r["Model"], 10.0 * float(r["windows/s"]))
EOF
i=0
while read -r model rate; do
  i=$((i + 1))
  (cd "$BUILD" && ./tools/trafficbench serve-bench --dataset METR-LA-S \
    --models "$model" --requests 192 --rate "$rate" --trace burst \
    --trace-seed 2021 --admission --slo-ms 50 --queue-cap 16 \
    --batch-max 8 --workers 2 --plan --verify \
    --csv "overload_$i.csv" >/dev/null)
done < "$BUILD/overload_rates.txt"

python3 - "$OUT" "$BUILD" <<'EOF'
import csv, glob, json, sys

out_path, build = sys.argv[1], sys.argv[2]
with open(out_path) as f:
    snap = json.load(f)

rates = {}
with open(f"{build}/overload_rates.txt") as f:
    for line in f:
        model, rate = line.split()
        rates[model] = float(rate)

models = []
for path in sorted(glob.glob(f"{build}/overload_*.csv")):
    for r in csv.DictReader(open(path)):
        t0, t1, t2 = (int(x) for x in r["t0/t1/t2"].split("/"))
        models.append({
            "model": r["Model"],
            "arrival_rate_per_s": round(rates.get(r["Model"], 0.0), 1),
            "ok": int(r["ok"]),
            "hard_dropped": int(r["shed"]),
            "tier0": t0, "tier1": t1, "tier2": t2,
            "p99_ms_all_tiers": float(r["p99 ms"]),
            "windows_per_s": float(r["windows/s"]),
        })
snap["overload_bench"] = {
    "config": "METR-LA-S, 192 requests/model at 10x the model's own "
              "serve_bench plan windows/s, burst trace (seed 2021), "
              "admission ladder on (slo 50 ms), queue cap 16, batch-max 8, "
              "2 workers, verify (tier-0 bitwise vs direct inference)",
    "models": models,
}
with open(out_path, "w") as f:
    json.dump(snap, f, indent=2)
    f.write("\n")

print("overload-bench headlines (10x arrival, burst trace, ladder on):")
drops = sum(m["hard_dropped"] for m in models)
print(f"  hard drops across all models: {drops} (ladder contract: 0)")
for m in models:
    total = max(1, m["tier0"] + m["tier1"] + m["tier2"])
    degraded = 100.0 * (m["tier1"] + m["tier2"]) / total
    print(f"  {m['model']}: {m['arrival_rate_per_s']}/s in, "
          f"tiers {m['tier0']}/{m['tier1']}/{m['tier2']} "
          f"({degraded:.0f}% degraded), p99 {m['p99_ms_all_tiers']} ms")
EOF
# Scenario robustness matrix (DESIGN.md §16): every model trained on the
# undisturbed routed world, scored on each scripted disruption class. The
# run honours the TB_* environment knobs like every experiment binary.
(cd "$BUILD" && ./bench/bench_scenario_matrix > scenario_matrix.log)

python3 - "$OUT" "$BUILD" <<'EOF'
import csv, json, sys

out_path, build = sys.argv[1], sys.argv[2]
with open(out_path) as f:
    snap = json.load(f)
with open(f"{build}/scenario_matrix.csv") as f:
    cells = list(csv.DictReader(f))
with open(f"{build}/scenario_degradation.csv") as f:
    degradation = list(csv.DictReader(f))
scenarios = []
with open(f"{build}/scenario_matrix.log") as f:
    for line in f:
        if line.startswith("scenario "):
            scenarios.append(line.strip())
snap["scenario_bench"] = {
    "config": "48-node grid+arterial world, 6 train days, 2 eval days per "
              "scenario, shared noise stream and training scaler across "
              "scenario columns; cells carry overall and difficult-interval "
              "MAE/RMSE/MAPE plus the MAE degradation vs the model's own "
              "baseline column",
    "scenarios": scenarios,
    "matrix": cells,
    "degradation": degradation,
}
with open(out_path, "w") as f:
    json.dump(snap, f, indent=2)
    f.write("\n")

print("scenario-bench headlines (worst scenario-induced MAE degradation):")
worst_overall = None
for row in degradation:
    ratios = {k[1:]: float(v) for k, v in row.items()
              if k.startswith("x") and v not in ("-", "")}
    if not ratios:
        continue
    scen, ratio = max(ratios.items(), key=lambda kv: kv[1])
    print(f"  {row['Model']}: x{ratio:.3f} under {scen} "
          f"(baseline MAE {row['BaselineMAE']})")
    if worst_overall is None or ratio > worst_overall[2]:
        worst_overall = (row["Model"], scen, ratio)
if worst_overall:
    print(f"  most fragile cell: {worst_overall[0]} under {worst_overall[1]} "
          f"(x{worst_overall[2]:.3f})")
EOF
echo "snapshot: $OUT"
