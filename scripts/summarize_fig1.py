#!/usr/bin/env python3
"""Summarize fig1 CSVs into average ranks per model (diagnostics aid).

Usage: python3 scripts/summarize_fig1.py fig1_speed.csv [fig1_flow.csv ...]
Prints, per metric/horizon and averaged, each model's mean rank across
datasets — the "who wins where" view of the paper's Fig. 1.
"""

import csv
import sys
from collections import defaultdict

BASELINES = {"HistoricalAverage", "LastValue"}


def main(paths):
    rows = []
    for path in paths:
        with open(path, newline="") as f:
            rows.extend(csv.DictReader(f))
    if not rows:
        sys.exit("no rows")

    # ranks[model] -> list of ranks across (dataset, metric, horizon) cells
    ranks = defaultdict(list)
    ranks60 = defaultdict(list)
    cells = defaultdict(dict)
    for r in rows:
        if r["model"] in BASELINES:
            continue
        key = (r["dataset"], r["metric"], r["horizon_min"])
        cells[key][r["model"]] = float(r["mean"])
    for key, values in cells.items():
        ordered = sorted(values, key=values.get)
        for rank, model in enumerate(ordered, 1):
            ranks[model].append(rank)
            if key[2] == "60":
                ranks60[model].append(rank)

    print(f"{'model':16s} {'avg rank':>9s} {'rank@60min':>11s}")
    for model in sorted(ranks, key=lambda m: sum(ranks[m]) / len(ranks[m])):
        avg = sum(ranks[model]) / len(ranks[model])
        avg60 = sum(ranks60[model]) / max(1, len(ranks60[model]))
        print(f"{model:16s} {avg:9.2f} {avg60:11.2f}")


if __name__ == "__main__":
    main(sys.argv[1:] or ["fig1_speed.csv"])
