// Extension experiment (paper Sec. VII future work): *why* does accuracy
// vary with traffic patterns? The paper conjectures model error tracks the
// (moving) standard deviation of the interval. This bench quantifies that:
// a trained Graph-WaveNet's MAE is stratified by the moving-std quintile
// of each target position — if the conjecture holds, MAE rises
// monotonically across quintiles.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "src/core/experiment.h"
#include "src/data/dataset.h"
#include "src/eval/difficult_intervals.h"
#include "src/eval/trainer.h"
#include "src/models/traffic_model.h"
#include "src/util/table.h"

namespace tb = trafficbench;

int main() {
  tb::core::ExperimentConfig config = tb::core::ExperimentConfig::FromEnv();
  std::printf("Extension: MAE stratified by moving-std quintile "
              "(Graph-WaveNet on METR-LA-S)\n");

  tb::data::DatasetProfile profile =
      tb::data::ProfileByName("METR-LA-S").value();
  tb::data::TrafficDataset dataset = tb::core::BuildDataset(profile, config);
  const tb::data::DatasetSplits splits = dataset.Splits();
  const int64_t test_end =
      config.eval_cap > 0
          ? std::min(splits.test_end, splits.test_begin + config.eval_cap)
          : splits.test_end;

  auto model = tb::models::CreateModel(
      "Graph-WaveNet", tb::models::MakeModelContext(dataset, config.seed));
  tb::eval::TrainConfig train_config;
  train_config.epochs = config.epochs;
  train_config.batch_size = config.batch_size;
  train_config.max_batches_per_epoch = config.max_batches_per_epoch;
  train_config.learning_rate = config.learning_rate;
  TrainModel(model.get(), dataset, train_config);

  // Moving std per (step, node) and its per-node quintile thresholds.
  const std::vector<float> stds = tb::eval::MovingStd(dataset.series(), 6);
  const int64_t n = dataset.num_nodes();

  // Collect per-quintile error sums by scoring each target position.
  constexpr int kBuckets = 5;
  std::vector<double> abs_err(kBuckets, 0.0);
  std::vector<int64_t> count(kBuckets, 0);
  std::vector<double> std_sum(kBuckets, 0.0);

  // Per-node sorted stds over the whole series give quintile thresholds.
  std::vector<std::vector<float>> thresholds(n);
  for (int64_t node = 0; node < n; ++node) {
    std::vector<float> column;
    column.reserve(dataset.series().num_steps);
    for (int64_t s = 0; s < dataset.series().num_steps; ++s) {
      column.push_back(stds[s * n + node]);
    }
    std::sort(column.begin(), column.end());
    for (int q = 1; q < kBuckets; ++q) {
      thresholds[node].push_back(
          column[column.size() * q / kBuckets]);
    }
  }
  auto bucket_of = [&](int64_t node, float value) {
    int bucket = 0;
    for (float t : thresholds[node]) {
      if (value >= t) ++bucket;
    }
    return bucket;
  };

  model->SetTraining(false);
  tb::NoGradGuard no_grad;
  for (int64_t base = splits.test_begin; base < test_end; base += 32) {
    const int64_t stop = std::min(test_end, base + 32);
    std::vector<int64_t> indices =
        tb::data::TrafficDataset::MakeIndices(base, stop);
    tb::data::Batch batch = dataset.MakeBatch(indices);
    tb::Tensor pred = model->Forward(batch.x, tb::Tensor());
    for (int64_t b = 0; b < static_cast<int64_t>(indices.size()); ++b) {
      for (int64_t t = 0; t < dataset.output_len(); ++t) {
        const int64_t step = indices[b] + dataset.input_len() + t;
        for (int64_t i = 0; i < n; ++i) {
          const float target = batch.y.At({b, t, i});
          if (target == 0.0f) continue;
          const float value = dataset.scaler().Denormalize(
              pred.At({b, t, i}));
          const float sigma = stds[step * n + i];
          const int bucket = bucket_of(i, sigma);
          abs_err[bucket] += std::fabs(value - target);
          std_sum[bucket] += sigma;
          ++count[bucket];
        }
      }
    }
  }

  tb::Table table({"Moving-std quintile", "Mean moving std", "MAE", "n"});
  double previous = 0.0;
  bool monotone = true;
  for (int q = 0; q < kBuckets; ++q) {
    const double mae = count[q] > 0 ? abs_err[q] / count[q] : 0.0;
    table.AddRow({"Q" + std::to_string(q + 1),
                  tb::Table::Num(count[q] > 0 ? std_sum[q] / count[q] : 0, 2),
                  tb::Table::Num(mae, 3), std::to_string(count[q])});
    if (q > 0 && mae < previous) monotone = false;
    previous = mae;
  }
  tb::core::EmitTable(
      "Extension: error vs interval volatility (Sec. VII conjecture)", table,
      "ext_stratified.csv");
  std::printf("MAE monotone across quintiles: %s\n",
              monotone ? "yes — error tracks interval volatility"
                       : "no (see table)");
  return 0;
}
