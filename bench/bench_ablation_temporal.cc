// Ablation A2 (paper Sec. V-A / VI findings): with a fixed diffusion-GCN
// spatial module, swap the temporal family — autoregressive GRU / gated
// TCN / horizon attention — and measure how accuracy degrades from the
// 15-minute to the 60-minute horizon. The paper observes RNN error
// accumulation at long horizons and attention's long-term advantage.

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/experiment.h"
#include "src/data/dataset.h"
#include "src/util/table.h"

namespace tb = trafficbench;

int main() {
  tb::core::ExperimentConfig config = tb::core::ExperimentConfig::FromEnv();
  std::printf("Ablation A2: temporal module family (fixed diffusion spatial)\n");

  tb::data::DatasetProfile profile =
      tb::data::ProfileByName("METR-LA-S").value();
  tb::data::TrafficDataset dataset = tb::core::BuildDataset(profile, config);

  const std::vector<std::string> variants = {
      "AB-temporal-gru", "AB-temporal-tcn", "AB-temporal-attention"};
  tb::Table table({"Temporal module", "MAE 15min", "MAE 60min",
                   "Degradation 15->60 (%)"});
  for (const std::string& name : variants) {
    tb::core::RunResult result =
        tb::core::RunModelOnDataset(name, dataset, profile.name, config);
    const double mae15 = result.Metric("mae", 15).mean;
    const double mae60 = result.Metric("mae", 60).mean;
    const double degradation =
        mae15 > 0.0 ? 100.0 * (mae60 - mae15) / mae15 : 0.0;
    table.AddRow({name.substr(12),  // strip "AB-temporal-"
                  tb::Table::Num(mae15, 3), tb::Table::Num(mae60, 3),
                  tb::Table::Num(degradation, 1)});
    std::fprintf(stderr, "  done: %s\n", name.c_str());
  }
  tb::core::EmitTable("Ablation A2: temporal family on METR-LA-S", table,
                      "ablation_temporal.csv");
  return 0;
}
