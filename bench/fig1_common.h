#ifndef TRAFFICBENCH_BENCH_FIG1_COMMON_H_
#define TRAFFICBENCH_BENCH_FIG1_COMMON_H_

// Shared driver for the Fig. 1 accuracy benches (speed and flow).

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/experiment.h"
#include "src/data/dataset.h"
#include "src/models/traffic_model.h"
#include "src/util/table.h"

namespace trafficbench::bench {

/// Trains and evaluates the whole model zoo on each profile and prints a
/// per-dataset table in the paper's Fig. 1 structure (MAE/RMSE/MAPE at
/// 15/30/60 minutes, mean ± std over repeated trials). Also writes a
/// long-format CSV for plotting.
inline int RunFigure1(const std::string& task_label,
                      const std::vector<data::DatasetProfile>& profiles,
                      const std::string& csv_name) {
  core::ExperimentConfig config = core::ExperimentConfig::FromEnv();
  std::printf(
      "Fig. 1 reproduction (%s prediction): %d trials, %d epochs, "
      "scale %.2f\n",
      task_label.c_str(), config.repeats, config.epochs, config.scale);

  std::vector<std::string> model_names = models::PaperModelNames();
  for (const std::string& name : models::BaselineModelNames()) {
    model_names.push_back(name);
  }

  Table csv({"dataset", "model", "horizon_min", "metric", "mean", "std"});
  for (const data::DatasetProfile& profile : profiles) {
    data::TrafficDataset dataset = core::BuildDataset(profile, config);
    std::fprintf(stderr, "dataset %s: N=%lld, steps=%lld\n",
                 profile.name.c_str(),
                 static_cast<long long>(dataset.num_nodes()),
                 static_cast<long long>(dataset.series().num_steps));

    Table table({"Model", "MAE 15/30/60", "RMSE 15/30/60", "MAPE% 15/30/60"});
    for (const std::string& model_name : model_names) {
      core::RunResult result =
          core::RunModelOnDataset(model_name, dataset, profile.name, config);
      auto cell = [&](const std::string& metric) {
        std::string out;
        for (int horizon : {15, 30, 60}) {
          eval::MeanStd ms = result.Metric(metric, horizon);
          if (!out.empty()) out += " / ";
          out += Table::MeanStd(ms.mean, ms.stddev);
          csv.AddRow({profile.name, model_name, std::to_string(horizon),
                      metric, Table::Num(ms.mean, 4),
                      Table::Num(ms.stddev, 4)});
        }
        return out;
      };
      table.AddRow({model_name, cell("mae"), cell("rmse"), cell("mape")});
      std::fprintf(stderr, "  done: %s\n", model_name.c_str());
    }
    core::EmitTable("Fig. 1 (" + task_label + "): " + profile.name +
                        "  [mirrors " + profile.mirrors + "]",
                    table, profile.name + "_fig1.csv");
  }
  WriteFileOrWarn(csv_name, csv.ToCsv());
  std::printf("(long-format csv: %s)\n", csv_name.c_str());
  return 0;
}

}  // namespace trafficbench::bench

#endif  // TRAFFICBENCH_BENCH_FIG1_COMMON_H_
