// Ablation A3 (paper Sec. VI open question): sensitivity of the
// difficult-interval experiment to the extraction parameters. One trained
// Graph-WaveNet is evaluated against masks built with different moving-std
// window sizes and top-quantile thresholds; MAE should rise monotonically
// as the mask narrows to the most volatile intervals.

#include <cstdio>
#include <memory>
#include <vector>

#include "src/core/experiment.h"
#include "src/data/dataset.h"
#include "src/eval/difficult_intervals.h"
#include "src/eval/trainer.h"
#include "src/models/traffic_model.h"
#include "src/util/table.h"

namespace tb = trafficbench;

int main() {
  tb::core::ExperimentConfig config = tb::core::ExperimentConfig::FromEnv();
  std::printf("Ablation A3: difficult-interval extraction parameters "
              "(Graph-WaveNet on METR-LA-S)\n");

  tb::data::DatasetProfile profile =
      tb::data::ProfileByName("METR-LA-S").value();
  tb::data::TrafficDataset dataset = tb::core::BuildDataset(profile, config);
  const tb::data::DatasetSplits splits = dataset.Splits();
  const int64_t test_end =
      config.eval_cap > 0
          ? std::min(splits.test_end, splits.test_begin + config.eval_cap)
          : splits.test_end;

  tb::models::ModelContext context =
      tb::models::MakeModelContext(dataset, config.seed);
  auto model = tb::models::CreateModel("Graph-WaveNet", context);
  tb::eval::TrainConfig train_config;
  train_config.epochs = config.epochs;
  train_config.batch_size = config.batch_size;
  train_config.max_batches_per_epoch = config.max_batches_per_epoch;
  train_config.learning_rate = config.learning_rate;
  tb::eval::TrainModel(model.get(), dataset, train_config);

  const tb::eval::HorizonReport base = tb::eval::EvaluateModel(
      model.get(), dataset, splits.test_begin, test_end);
  std::printf("baseline MAE over the full test range: %.3f\n",
              base.average.mae);

  tb::Table table({"Window (steps)", "Top fraction", "Mask %", "MAE",
                   "Decline %"});
  for (int window : {3, 6, 12}) {
    for (double top : {0.10, 0.25, 0.50}) {
      tb::eval::DifficultIntervalOptions options;
      options.window_steps = window;
      options.top_fraction = top;
      std::vector<uint8_t> mask =
          tb::eval::DifficultMask(dataset.series(), options);
      tb::eval::EvalOptions eval_options;
      eval_options.difficult_mask = &mask;
      tb::eval::HorizonReport report =
          tb::eval::EvaluateModel(model.get(), dataset, splits.test_begin,
                                  test_end, eval_options);
      const double decline =
          base.average.mae > 0.0
              ? 100.0 * (report.average.mae - base.average.mae) /
                    base.average.mae
              : 0.0;
      table.AddRow({std::to_string(window), tb::Table::Num(top, 2),
                    tb::Table::Num(100.0 * tb::eval::MaskFraction(mask), 1),
                    tb::Table::Num(report.average.mae, 3),
                    tb::Table::Num(decline, 1)});
    }
  }
  tb::core::EmitTable("Ablation A3: extraction-parameter sweep", table,
                      "ablation_window.csv");
  return 0;
}
