// Reproduces Fig. 2: MAE on difficult intervals (moving-std top 25%,
// 30-minute window) with the METR-LA mirror, and the relative performance
// decline of each model versus its full-testset MAE.

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/experiment.h"
#include "src/data/dataset.h"
#include "src/eval/difficult_intervals.h"
#include "src/models/traffic_model.h"
#include "src/util/table.h"

namespace tb = trafficbench;

int main() {
  tb::core::ExperimentConfig config = tb::core::ExperimentConfig::FromEnv();
  std::printf(
      "Fig. 2 reproduction: difficult intervals on METR-LA-S "
      "(moving std window = 30 min, upper 25%%)\n");

  tb::data::DatasetProfile profile =
      tb::data::ProfileByName("METR-LA-S").value();
  tb::data::TrafficDataset dataset = tb::core::BuildDataset(profile, config);

  tb::eval::DifficultIntervalOptions options;  // paper defaults
  std::vector<uint8_t> mask =
      tb::eval::DifficultMask(dataset.series(), options);
  std::printf("difficult fraction of (step, node) positions: %.1f%%\n",
              100.0 * tb::eval::MaskFraction(mask));

  tb::Table table({"Model", "MAE (all)", "MAE (difficult)", "Decline %"});
  tb::Table csv({"model", "mae_all", "mae_difficult", "decline_pct"});
  for (const std::string& name : tb::models::PaperModelNames()) {
    tb::core::RunResult result =
        tb::core::RunModelOnDataset(name, dataset, profile.name, config, &mask);
    const tb::eval::MeanStd all = result.Metric("mae", 0);
    const tb::eval::MeanStd hard = result.Metric("mae", 0, /*difficult=*/true);
    const double decline = all.mean > 0.0
                               ? 100.0 * (hard.mean - all.mean) / all.mean
                               : 0.0;
    table.AddRow({name, tb::Table::MeanStd(all.mean, all.stddev),
                  tb::Table::MeanStd(hard.mean, hard.stddev),
                  tb::Table::Num(decline, 1)});
    csv.AddRow({name, tb::Table::Num(all.mean, 4),
                tb::Table::Num(hard.mean, 4), tb::Table::Num(decline, 2)});
    std::fprintf(stderr, "  done: %s\n", name.c_str());
  }
  tb::core::EmitTable(
      "Fig. 2: MAE and relative degradation on difficult intervals (METR-LA)",
      table, "fig2_difficult.csv");
  tb::WriteFileOrWarn("fig2_difficult_long.csv", csv.ToCsv());
  return 0;
}
