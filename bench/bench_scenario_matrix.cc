// The models x scenarios robustness matrix (DESIGN.md §16): every paper
// model plus the naive baselines, trained on an undisturbed capacity-routed
// grid+arterial world and scored against each scripted disruption class
// (closure, surge, gridlock, blackout). Emits the full per-cell table and
// the per-model degradation summary as CSV for bench_snapshot.sh.

#include <cstdio>
#include <string>

#include "src/core/experiment.h"
#include "src/scenario/matrix.h"
#include "src/util/table.h"

namespace tb = trafficbench;

int main() {
  tb::scenario::MatrixOptions options;
  options.config = tb::core::ExperimentConfig::FromEnv();

  std::printf(
      "Scenario robustness matrix: %lld-node grid+arterial world, "
      "%lld train days, %lld eval days per scenario, %d epochs\n",
      static_cast<long long>(options.num_nodes),
      static_cast<long long>(options.train_days),
      static_cast<long long>(options.eval_days), options.config.epochs);

  const tb::scenario::ScenarioMatrixResult result =
      tb::scenario::RunScenarioMatrix(options);
  for (const tb::scenario::ScenarioSummary& s : result.scenarios) {
    std::printf("scenario %-10s %2lld events, %.1f%% difficult positions, "
                "%lld blacked-out readings\n",
                s.name.c_str(), static_cast<long long>(s.events),
                100.0 * s.difficult_fraction,
                static_cast<long long>(s.masked_entries));
  }
  tb::core::EmitTable("Models x scenarios robustness matrix",
                      tb::scenario::MatrixToTable(result),
                      "scenario_matrix.csv");
  tb::core::EmitTable("Scenario-induced MAE degradation (x baseline)",
                      tb::scenario::DegradationSummary(result),
                      "scenario_degradation.csv");
  for (const std::string& failure : result.failed_models) {
    std::fprintf(stderr, "FAILED %s\n", failure.c_str());
  }
  return result.failed_models.empty() ? 0 : 1;
}
