// Reproduces Fig. 3: the per-road case study on the PeMS-BAY mirror with
// Graph-WaveNet. The same trained model is accurate on a stable road and
// several times worse on a road with abruptly changing speed; the bench
// prints both roads' MAE, their moving-std character, and a short
// prediction-vs-truth excerpt for each.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/experiment.h"
#include "src/data/dataset.h"
#include "src/eval/difficult_intervals.h"
#include "src/eval/trainer.h"
#include "src/models/traffic_model.h"
#include "src/util/table.h"

namespace tb = trafficbench;

int main() {
  tb::core::ExperimentConfig config = tb::core::ExperimentConfig::FromEnv();
  std::printf("Fig. 3 reproduction: per-road accuracy case study "
              "(Graph-WaveNet on PEMS-BAY-S)\n");

  tb::data::DatasetProfile profile =
      tb::data::ProfileByName("PEMS-BAY-S").value();
  tb::data::TrafficDataset dataset = tb::core::BuildDataset(profile, config);
  const tb::data::DatasetSplits splits = dataset.Splits();
  const int64_t test_end =
      config.eval_cap > 0
          ? std::min(splits.test_end, splits.test_begin + config.eval_cap)
          : splits.test_end;

  // Train one Graph-WaveNet.
  tb::models::ModelContext context =
      tb::models::MakeModelContext(dataset, config.seed);
  auto model = tb::models::CreateModel("Graph-WaveNet", context);
  tb::eval::TrainConfig train_config;
  train_config.epochs = config.epochs;
  train_config.batch_size = config.batch_size;
  train_config.max_batches_per_epoch = config.max_batches_per_epoch;
  train_config.learning_rate = config.learning_rate;
  tb::eval::TrainModel(model.get(), dataset, train_config);

  // Per-node MAE over the test range.
  std::vector<double> mae = tb::eval::PerNodeMae(
      model.get(), dataset, splits.test_begin, test_end, config.batch_size);
  int64_t best = 0, worst = 0;
  for (int64_t i = 1; i < dataset.num_nodes(); ++i) {
    if (mae[i] < mae[best]) best = i;
    if (mae[i] > mae[worst]) worst = i;
  }

  // Moving-std character of each road over the test range.
  std::vector<float> moving_std = tb::eval::MovingStd(dataset.series(), 6);
  auto mean_std = [&](int64_t node) {
    double sum = 0.0;
    int64_t count = 0;
    for (int64_t s = splits.test_begin; s < test_end; ++s) {
      sum += moving_std[(s + dataset.input_len()) * dataset.num_nodes() + node];
      ++count;
    }
    return sum / std::max<int64_t>(1, count);
  };

  tb::Table table({"Road", "MAE", "Mean moving std", "Interpretation"});
  table.AddRow({"road " + std::to_string(best) + " (A)",
                tb::Table::Num(mae[best], 2), tb::Table::Num(mean_std(best), 2),
                "stable speed, model tracks the trend"});
  table.AddRow({"road " + std::to_string(worst) + " (B)",
                tb::Table::Num(mae[worst], 2),
                tb::Table::Num(mean_std(worst), 2),
                "abruptly changing speed, error inflates"});
  tb::core::EmitTable("Fig. 3: stable vs difficult road (Graph-WaveNet)",
                      table, "fig3_case_study.csv");
  std::printf("MAE ratio (difficult / stable road): %.2fx  (paper: ~4.5x)\n",
              mae[best] > 0 ? mae[worst] / mae[best] : 0.0);

  // Excerpt: one day of truth vs 15-minute-ahead prediction for both roads.
  {
    tb::NoGradGuard no_grad;
    model->SetTraining(false);
    const int64_t excerpt = std::min<int64_t>(test_end - splits.test_begin,
                                              tb::data::kStepsPerDay / 4);
    std::vector<int64_t> indices(excerpt);
    for (int64_t i = 0; i < excerpt; ++i) indices[i] = splits.test_begin + i;
    tb::data::Batch batch = dataset.MakeBatch(indices);
    tb::Tensor pred = model->Forward(batch.x, tb::Tensor());
    tb::Table series({"t", "truth_A", "pred_A", "truth_B", "pred_B"});
    const int horizon = 2;  // 15-minute-ahead slice
    for (int64_t i = 0; i < excerpt; ++i) {
      auto value = [&](const tb::Tensor& t, int64_t node, bool denorm) {
        const float v = t.At({i, horizon, node});
        return denorm ? dataset.scaler().Denormalize(v) : v;
      };
      series.AddRow({std::to_string(i),
                     tb::Table::Num(value(batch.y, best, false), 1),
                     tb::Table::Num(value(pred, best, true), 1),
                     tb::Table::Num(value(batch.y, worst, false), 1),
                     tb::Table::Num(value(pred, worst, true), 1)});
    }
    tb::WriteFileOrWarn("fig3_series.csv", series.ToCsv());
    std::printf("(prediction-vs-truth excerpt: fig3_series.csv, %lld rows)\n",
                static_cast<long long>(series.num_rows()));
  }
  return 0;
}
