// Reproduces Fig. 1 (bottom row): model accuracy on the four flow datasets
// (PeMSD3, PeMSD4, PeMSD7, PeMSD8 mirrors) — MAE / RMSE / MAPE at the 15-,
// 30- and 60-minute horizons, mean ± std over repeated trials.

#include "bench/fig1_common.h"

int main() {
  return trafficbench::bench::RunFigure1(
      "flow", trafficbench::data::FlowProfiles(), "fig1_flow.csv");
}
