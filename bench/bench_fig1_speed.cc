// Reproduces Fig. 1 (top row): model accuracy on the three speed datasets
// (METR-LA, PeMS-BAY, PeMSD7(M) mirrors) — MAE / RMSE / MAPE at the 15-,
// 30- and 60-minute horizons, mean ± std over repeated trials.

#include "bench/fig1_common.h"

int main() {
  return trafficbench::bench::RunFigure1(
      "speed", trafficbench::data::SpeedProfiles(), "fig1_speed.csv");
}
