// Ablation A1 (paper Sec. V-A finding): with a fixed gated-TCN temporal
// module, swap the spatial family — none / spectral Chebyshev GCN /
// spatial diffusion GCN / learned adaptive adjacency — and compare
// accuracy. The paper observes spatial-based GCNs beating spectral ones.

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/experiment.h"
#include "src/data/dataset.h"
#include "src/util/table.h"

namespace tb = trafficbench;

int main() {
  tb::core::ExperimentConfig config = tb::core::ExperimentConfig::FromEnv();
  std::printf("Ablation A1: spatial module family (fixed gated-TCN temporal)\n");

  tb::data::DatasetProfile profile =
      tb::data::ProfileByName("METR-LA-S").value();
  tb::data::TrafficDataset dataset = tb::core::BuildDataset(profile, config);

  const std::vector<std::string> variants = {
      "AB-spatial-none", "AB-spatial-cheb", "AB-spatial-diffusion",
      "AB-spatial-adaptive"};
  tb::Table table({"Spatial module", "MAE 15min", "MAE 30min", "MAE 60min",
                   "MAE avg"});
  for (const std::string& name : variants) {
    tb::core::RunResult result =
        tb::core::RunModelOnDataset(name, dataset, profile.name, config);
    table.AddRow({name.substr(11),  // strip "AB-spatial-"
                  tb::Table::Num(result.Metric("mae", 15).mean, 3),
                  tb::Table::Num(result.Metric("mae", 30).mean, 3),
                  tb::Table::Num(result.Metric("mae", 60).mean, 3),
                  tb::Table::Num(result.Metric("mae", 0).mean, 3)});
    std::fprintf(stderr, "  done: %s\n", name.c_str());
  }
  tb::core::EmitTable("Ablation A1: spatial family on METR-LA-S", table,
                      "ablation_spatial.csv");
  return 0;
}
