// Micro-benchmarks of the tensor engine's hot ops (google-benchmark),
// at the shapes the model zoo actually uses. The *_Threads variants bind
// an ExecutionContext with 1/2/4 workers around the same kernels (results
// are bit-identical; only the wall time may change). Besides the console
// table, the run writes machine-readable bench_micro_ops.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/exec/execution_context.h"
#include "src/graph/partition.h"
#include "src/nn/layers.h"
#include "src/tensor/kernels.h"
#include "src/tensor/partitioned.h"
#include "src/tensor/sparse.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace trafficbench {
namespace {

/// Dense [n, n] support with ~`density` of entries nonzero (same generator
/// shape the sparse property tests use).
Tensor RandomSupport(int64_t n, double density, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> data(n * n, 0.0f);
  for (float& x : data) {
    if (rng.Uniform(0.0, 1.0) < density) {
      x = static_cast<float>(rng.Normal());
    }
  }
  return Tensor::FromVector(Shape({n, n}), std::move(data));
}

/// FLOP/s rate counter (renders with an SI suffix, e.g. "13.9G/s").
void SetFlopsCounter(benchmark::State& state, double flops_per_iter) {
  state.counters["FLOPS"] = benchmark::Counter(
      flops_per_iter * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn(Shape({n, n}), &rng);
  Tensor b = Tensor::Randn(Shape({n, n}), &rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b).data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  SetFlopsCounter(state, 2.0 * static_cast<double>(n * n * n));
}
// 207 = METR-LA node count, 325 = PeMS-BAY (the paper's two large graphs).
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128)->Arg(207)->Arg(325);

void BM_MatMulRef(benchmark::State& state) {
  // The pre-blocking naive kernel (retained as GemmRefNNRows): the "before"
  // row of the perf trajectory in BENCH_2.json.
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn(Shape({n, n}), &rng);
  Tensor b = Tensor::Randn(Shape({n, n}), &rng);
  std::vector<float> c(n * n);
  for (auto _ : state) {
    std::fill(c.begin(), c.end(), 0.0f);
    kernels::GemmRefNNRows(a.data(), b.data(), c.data(), 0, n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  SetFlopsCounter(state, 2.0 * static_cast<double>(n * n * n));
}
BENCHMARK(BM_MatMulRef)->Arg(128)->Arg(207);

void BM_GraphConvMetrLa(benchmark::State& state) {
  // Graph convolution at METR-LA scale: [207, 207] support applied to
  // [B, T, 207, C] features, the hot GEMM of the paper's GNN models.
  const int64_t nodes = 207, b = 8, t = 12, c = 32;
  Rng rng(1);
  Tensor support = Tensor::Randn(Shape({nodes, nodes}), &rng);
  Tensor features = Tensor::Randn(Shape({b, t, nodes, c}), &rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(support, features).data());
  }
  SetFlopsCounter(state,
                  2.0 * static_cast<double>(b * t) *
                      static_cast<double>(nodes * nodes * c));
}
BENCHMARK(BM_GraphConvMetrLa);

void BM_SpMM(benchmark::State& state) {
  // CSR support at real road-network densities applied to a dense [n, n]
  // operand — the same shape as BM_MatMul, so BM_SpMM/{207,40} vs
  // BM_MatMul/207 is a direct sparse-vs-dense comparison. Densities are
  // permille: 40‰ ≈ METR-LA (1515 edges / 207 nodes), 25‰ ≈ PeMS-BAY
  // (2369 edges / 325 nodes), 250‰ = the CSR dispatch threshold.
  const int64_t n = state.range(0);
  const double density = static_cast<double>(state.range(1)) / 1000.0;
  Tensor support = RandomSupport(n, density, 1);
  sparse::CsrPtr csr = sparse::CsrMatrix::FromDense(support);
  Rng rng(2);
  Tensor features = Tensor::Randn(Shape({n, n}), &rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SparseMatMul(csr, features).data());
  }
  const double flops = 2.0 * static_cast<double>(csr->nnz()) *
                       static_cast<double>(n);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(csr->nnz()) * n);
  state.counters["nnz"] = static_cast<double>(csr->nnz());
  SetFlopsCounter(state, flops);
}
BENCHMARK(BM_SpMM)
    ->Args({207, 40})    // METR-LA scale + density
    ->Args({207, 100})
    ->Args({207, 250})   // density threshold boundary
    ->Args({325, 25});   // PeMS-BAY scale + density

/// Random square CSR built directly in COO form — no N x N dense tensor is
/// ever materialized, which is the whole point at 2k/4k nodes.
sparse::CsrPtr RandomCooCsr(int64_t n, double density, uint64_t seed) {
  Rng rng(seed);
  const int64_t target =
      static_cast<int64_t>(density * static_cast<double>(n) *
                           static_cast<double>(n));
  std::vector<sparse::CooEntry> coo;
  coo.reserve(target);
  for (int64_t i = 0; i < target; ++i) {
    coo.push_back({static_cast<int32_t>(rng.UniformInt(
                       static_cast<uint64_t>(n))),
                   static_cast<int32_t>(rng.UniformInt(
                       static_cast<uint64_t>(n))),
                   static_cast<float>(rng.Normal())});
  }
  return sparse::CsrMatrix::FromCoo(n, n, std::move(coo));
}

// City-scale SpMM: [n, n] CSR support at road-network densities against a
// [n, 64] feature block. Args are {nodes, density permille}; the 325-row is
// the per-node-cost baseline for the 2k/4k rows (BENCH_9 headline:
// seconds / (nnz * 64) should stay flat as n grows). Monolithic dispatch.
void BM_SpMMCity(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t f = 64;
  const double density = static_cast<double>(state.range(1)) / 1000.0;
  sparse::CsrPtr csr = RandomCooCsr(n, density, 1);
  Rng rng(2);
  Tensor features = Tensor::Randn(Shape({n, f}), &rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SparseMatMul(csr, features).data());
  }
  const double flops =
      2.0 * static_cast<double>(csr->nnz()) * static_cast<double>(f);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(csr->nnz()) * f);
  state.counters["nnz"] = static_cast<double>(csr->nnz());
  state.counters["nodes"] = static_cast<double>(n);
  SetFlopsCounter(state, flops);
}
BENCHMARK(BM_SpMMCity)
    ->Args({325, 25})    // PeMS-BAY: the per-node-cost baseline
    ->Args({2048, 15})   // ~1.5% density, avg degree ~31
    ->Args({4096, 10});  // ~1.0% density, avg degree ~41

// Same shapes through the partitioned path: {nodes, density permille,
// parts}. Blocks gather their halo columns and run per-partition SpMM —
// bit-identical to BM_SpMMCity's monolithic result (tests pin this).
void BM_PartitionedSpMM(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t f = 64;
  const double density = static_cast<double>(state.range(1)) / 1000.0;
  const int parts = static_cast<int>(state.range(2));
  sparse::CsrPtr csr = RandomCooCsr(n, density, 1);
  const graph::GraphPartition partition = graph::PartitionCsr(*csr, parts);
  sparse::PartitionedCsrPtr partitioned =
      sparse::PartitionedCsr::Build(csr, partition);
  Rng rng(2);
  Tensor features = Tensor::Randn(Shape({n, f}), &rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SparseMatMul(partitioned, features).data());
  }
  const double flops =
      2.0 * static_cast<double>(csr->nnz()) * static_cast<double>(f);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(csr->nnz()) * f);
  state.counters["nnz"] = static_cast<double>(csr->nnz());
  state.counters["nodes"] = static_cast<double>(n);
  SetFlopsCounter(state, flops);
}
BENCHMARK(BM_PartitionedSpMM)
    ->Args({2048, 15, 2})
    ->Args({4096, 10, 4});

// The "before" row for the 2k headline: what dispatching the same support
// densely would cost ([n, n] MatMul against the same [n, 64] features).
// BM_PartitionedSpMM/2048 must beat this by >= 2x (it does by far more —
// dense does n/avg_degree times the work).
void BM_DenseDispatchCity(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t f = 64;
  Rng rng(1);
  Tensor support = RandomSupport(n, 0.015, 1);
  Tensor features = Tensor::Randn(Shape({n, f}), &rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(support, features).data());
  }
  state.counters["nodes"] = static_cast<double>(n);
  SetFlopsCounter(state, 2.0 * static_cast<double>(n) *
                             static_cast<double>(n) * static_cast<double>(f));
}
BENCHMARK(BM_DenseDispatchCity)->Arg(2048);

// Plan-tier weight GEMM at a serving shape (m activation rows against a
// constant [64, 64] layer weight, GMAN/STGCN-like). The fp32 row packs its
// B panel per 16-row chunk on every call; the reduced tiers read the panel
// buffer pre-packed at plan-compile time (PackBf16Panels/PackInt8Panels),
// so BM_GemmPlanBf16/N vs BM_GemmPlanFp32/N is the per-step speedup the
// bf16 execution tier buys (DESIGN.md §13).
void BM_GemmPlanFp32(benchmark::State& state) {
  const int64_t m = state.range(0), k = 64, n = 64;
  Rng rng(1);
  Tensor a = Tensor::Randn(Shape({m, k}), &rng);
  Tensor b = Tensor::Randn(Shape({k, n}), &rng);
  std::vector<float> c(m * n);
  for (auto _ : state) {
    std::fill(c.begin(), c.end(), 0.0f);
    kernels::GemmAccNNRows(a.data(), b.data(), c.data(), 0, m, k, n);
    benchmark::DoNotOptimize(c.data());
  }
  SetFlopsCounter(state, 2.0 * static_cast<double>(m * k * n));
}
BENCHMARK(BM_GemmPlanFp32)->Arg(256)->Arg(1656);

void BM_GemmPlanBf16(benchmark::State& state) {
  const int64_t m = state.range(0), k = 64, n = 64;
  Rng rng(1);
  Tensor a = Tensor::Randn(Shape({m, k}), &rng);
  Tensor b = Tensor::Randn(Shape({k, n}), &rng);
  std::vector<uint16_t> packed(kernels::PackedPanelElems(k, n));
  kernels::PackBf16Panels(b.data(), k, n, packed.data());
  std::vector<float> c(m * n);
  for (auto _ : state) {
    std::fill(c.begin(), c.end(), 0.0f);
    kernels::GemmBf16AccNNRows(a.data(), packed.data(), c.data(), 0, m, k, n);
    benchmark::DoNotOptimize(c.data());
  }
  SetFlopsCounter(state, 2.0 * static_cast<double>(m * k * n));
}
BENCHMARK(BM_GemmPlanBf16)->Arg(256)->Arg(1656);

void BM_GemmPlanInt8(benchmark::State& state) {
  const int64_t m = state.range(0), k = 64, n = 64;
  Rng rng(1);
  Tensor a = Tensor::Randn(Shape({m, k}), &rng);
  Tensor b = Tensor::Randn(Shape({k, n}), &rng);
  std::vector<int8_t> row_q(k * n);
  std::vector<float> col_scales(n);
  kernels::QuantizeInt8PerColumn(b.data(), k, n, row_q.data(),
                                 col_scales.data());
  std::vector<int8_t> q(kernels::PackedPanelElems(k, n));
  kernels::PackInt8Panels(row_q.data(), k, n, q.data());
  std::vector<float> scales(kernels::PaddedScaleElems(n));
  kernels::PadScales(col_scales.data(), n, scales.data());
  std::vector<float> c(m * n);
  for (auto _ : state) {
    std::fill(c.begin(), c.end(), 0.0f);
    kernels::GemmInt8AccNNRows(a.data(), q.data(), scales.data(), c.data(),
                               0, m, k, n);
    benchmark::DoNotOptimize(c.data());
  }
  SetFlopsCounter(state, 2.0 * static_cast<double>(m * k * n));
}
BENCHMARK(BM_GemmPlanInt8)->Arg(256)->Arg(1656);

void BM_SpmmGraphConvMetrLa(benchmark::State& state) {
  // Sparse counterpart of BM_GraphConvMetrLa: CSR support at METR-LA's
  // real ~4% density applied to batched [B, T, 207, C] features.
  const int64_t nodes = 207, b = 8, t = 12, c = 32;
  Tensor support = RandomSupport(nodes, 0.04, 1);
  sparse::CsrPtr csr = sparse::CsrMatrix::FromDense(support);
  Rng rng(2);
  Tensor features = Tensor::Randn(Shape({b, t, nodes, c}), &rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SparseMatMul(csr, features).data());
  }
  state.counters["nnz"] = static_cast<double>(csr->nnz());
  SetFlopsCounter(state, 2.0 * static_cast<double>(b * t) *
                             static_cast<double>(csr->nnz()) *
                             static_cast<double>(c));
}
BENCHMARK(BM_SpmmGraphConvMetrLa);

void BM_BatchedGraphMix(benchmark::State& state) {
  // The dominant model op: [N, N] support applied to [B, T, N, C].
  Rng rng(1);
  Tensor support = Tensor::Randn(Shape({32, 32}), &rng);
  Tensor features = Tensor::Randn(Shape({8, 12, 32, 24}), &rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(support, features).data());
  }
}
BENCHMARK(BM_BatchedGraphMix);

void BM_TemporalConv(benchmark::State& state) {
  Rng rng(1);
  Tensor x = Tensor::Randn(Shape({8, 24, 32, 12}), &rng);
  Tensor w = Tensor::Randn(Shape({48, 24, 1, 3}), &rng);
  Tensor b = Tensor::Zeros(Shape({48}));
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Conv2d(x, w, b).data());
  }
}
BENCHMARK(BM_TemporalConv);

void BM_Softmax(benchmark::State& state) {
  Rng rng(1);
  Tensor x = Tensor::Randn(Shape({96, 32, 32}), &rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(x.Softmax(-1).data());
  }
}
BENCHMARK(BM_Softmax);

void BM_MultiHeadAttention(benchmark::State& state) {
  Rng rng(1);
  nn::MultiHeadAttention mha(40, 4, &rng);
  Tensor x = Tensor::Randn(Shape({8, 12, 32, 40}), &rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mha.Forward(x, x, x).data());
  }
}
BENCHMARK(BM_MultiHeadAttention);

void BM_ElementwiseChain(benchmark::State& state) {
  Rng rng(1);
  Tensor a = Tensor::Randn(Shape({8, 12, 32, 24}), &rng);
  Tensor b = Tensor::Randn(Shape({8, 12, 32, 24}), &rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(((a * b).Sigmoid() + a).Tanh().data());
  }
}
BENCHMARK(BM_ElementwiseChain);

void BM_MatMulThreads(benchmark::State& state) {
  // Blocked matmul across worker counts: the speedup criterion of the
  // parallel kernel path (n is large enough for several row chunks).
  const int64_t n = 192;
  const int threads = static_cast<int>(state.range(0));
  exec::ExecutionContext context(
      exec::ExecOptions{.threads = threads, .profile = false});
  exec::ExecutionContext::Bind bind(&context);
  Rng rng(1);
  Tensor a = Tensor::Randn(Shape({n, n}), &rng);
  Tensor b = Tensor::Randn(Shape({n, n}), &rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b).data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  SetFlopsCounter(state, 2.0 * static_cast<double>(n * n * n));
}
BENCHMARK(BM_MatMulThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_ElementwiseThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  exec::ExecutionContext context(
      exec::ExecOptions{.threads = threads, .profile = false});
  exec::ExecutionContext::Bind bind(&context);
  Rng rng(1);
  Tensor a = Tensor::Randn(Shape({32, 12, 64, 24}), &rng);
  Tensor b = Tensor::Randn(Shape({32, 12, 64, 24}), &rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(((a * b).Sigmoid() + a).Tanh().data());
  }
  state.SetItemsProcessed(state.iterations() * a.numel());
}
BENCHMARK(BM_ElementwiseThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_BackwardMlp(benchmark::State& state) {
  Rng rng(1);
  Tensor w1 = Tensor::Randn(Shape({24, 48}), &rng).set_requires_grad(true);
  Tensor w2 = Tensor::Randn(Shape({48, 12}), &rng).set_requires_grad(true);
  Tensor x = Tensor::Randn(Shape({256, 24}), &rng);
  for (auto _ : state) {
    w1.ZeroGrad();
    w2.ZeroGrad();
    Tensor loss = MatMul(MatMul(x, w1).Tanh(), w2).Abs().MeanAll();
    loss.Backward();
    benchmark::DoNotOptimize(w1.grad().data());
  }
}
BENCHMARK(BM_BackwardMlp);

}  // namespace
}  // namespace trafficbench

// Custom main: console output as usual, plus a JSON dump of every
// benchmark (bench_micro_ops.json by default) for machine consumption.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=bench_micro_ops.json";
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!has_out) std::printf("(json: bench_micro_ops.json)\n");
  return 0;
}
