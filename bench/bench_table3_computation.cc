// Reproduces Table III: computation time of the models with the METR-LA
// dataset — training time per epoch, inference time over the test set, and
// parameter count. Absolute numbers differ from the paper (CPU tensor
// engine vs. Titan RTX GPUs); the *ordering* is the reproduced result.
//
// A per-model "Top ops" column (from the op profiler) attributes each
// model's wall time to its dominant kernel kinds, explaining *why* the
// ordering comes out the way it does (e.g. GMAN's attention MatMuls).

#include <algorithm>
#include <cstdio>

#include "src/core/experiment.h"
#include "src/data/dataset.h"
#include "src/eval/trainer.h"
#include "src/exec/execution_context.h"
#include "src/graph/road_network.h"
#include "src/models/common.h"
#include "src/models/dcrnn.h"
#include "src/models/traffic_model.h"
#include "src/serve/model_registry.h"
#include "src/util/stopwatch.h"
#include "src/util/table.h"

namespace tb = trafficbench;

namespace {

/// Per-dataset support-matrix densities (nnz / N^2): which graph operators
/// each dataset hands the models, and whether they fall under the sparse
/// engine's CSR dispatch threshold. Only the road network is generated here
/// (same seed-fork order as TrafficDataset::FromProfile); no simulation runs.
void PrintSupportDensities(const tb::core::ExperimentConfig& config) {
  const double threshold = tb::models::GraphSupportDensityThreshold();
  tb::Table table({"Dataset", "Nodes", "Adjacency", "Random walk",
                   "Chebyshev T0/T1/T2", "Diffusion (max)"});
  auto cell = [&](const tb::Tensor& support) {
    const double d = tb::graph::SupportDensity(support);
    return tb::Table::Num(d, 3) + (d <= threshold ? " (CSR)" : "");
  };
  for (const tb::data::DatasetProfile& base : tb::data::SpeedProfiles()) {
    tb::data::DatasetProfile profile =
        tb::data::ScaleProfile(base, config.scale);
    tb::Rng rng(profile.seed);
    tb::Rng net_rng = rng.Fork();
    tb::graph::RoadNetwork network = tb::graph::RoadNetwork::Generate(
        profile.topology, profile.num_nodes, &net_rng);
    tb::Tensor adjacency = network.GaussianAdjacency();
    std::vector<tb::Tensor> cheb = tb::graph::ChebyshevBasis(
        tb::graph::ScaledLaplacian(adjacency), 3);
    double diffusion_max = 0.0;
    for (const tb::Tensor& support :
         tb::models::DiffusionSupports(adjacency, 2)) {
      diffusion_max =
          std::max(diffusion_max, tb::graph::SupportDensity(support));
    }
    table.AddRow(
        {profile.name, std::to_string(network.num_nodes()), cell(adjacency),
         cell(tb::graph::RandomWalkTransition(adjacency)),
         cell(cheb[0]) + " / " + cell(cheb[1]) + " / " + cell(cheb[2]),
         tb::Table::Num(diffusion_max, 3) +
             (diffusion_max <= threshold ? " (CSR)" : "")});
  }
  std::printf(
      "\nSupport-matrix density (nnz/N^2) per dataset; \"(CSR)\" marks "
      "supports at or below the sparse dispatch threshold (%.2f):\n",
      threshold);
  std::printf("%s", table.ToString().c_str());
}

}  // namespace

int main() {
  tb::core::ExperimentConfig config = tb::core::ExperimentConfig::FromEnv();
  std::printf(
      "Table III reproduction: computation time with METR-LA-S "
      "(scale=%.2f, %lld train batches/epoch, batch=%lld, threads=%d)\n",
      config.scale, static_cast<long long>(config.max_batches_per_epoch),
      static_cast<long long>(config.batch_size), config.threads);
  PrintSupportDensities(config);

  tb::data::DatasetProfile profile =
      tb::data::ProfileByName("METR-LA-S").value();
  tb::data::TrafficDataset dataset = tb::core::BuildDataset(profile, config);
  const tb::data::DatasetSplits splits = dataset.Splits();

  tb::exec::ExecOptions exec_options = config.ExecConfig();
  exec_options.profile = true;  // the breakdown column needs the profiler
  tb::exec::ExecutionContext exec_context(exec_options);

  tb::Table table({"Model", "Training time/epoch", "Inference time",
                   "Inference/window", "Plan/window", "# of params",
                   "Top ops (time share)"});
  for (const std::string& name : tb::models::PaperModelNames()) {
    tb::models::ModelContext context =
        tb::models::MakeModelContext(dataset, config.seed);
    auto model = tb::models::CreateModel(name, context);

    exec_context.profiler().Reset();  // per-model attribution
    exec_context.buffer_pool()->ResetStats();
    tb::eval::TrainConfig train_config;
    train_config.epochs = 1;  // one measured epoch
    train_config.batch_size = config.batch_size;
    train_config.max_batches_per_epoch = config.max_batches_per_epoch;
    train_config.learning_rate = config.learning_rate;
    train_config.seed = config.seed;
    train_config.exec = &exec_context;
    tb::eval::TrainResult train =
        tb::eval::TrainModel(model.get(), dataset, train_config);

    const int64_t test_end =
        config.eval_cap > 0
            ? std::min(splits.test_end, splits.test_begin + config.eval_cap)
            : splits.test_end;
    tb::eval::EvalOptions eval_options;
    eval_options.exec = &exec_context;
    tb::eval::HorizonReport report = tb::eval::EvaluateModel(
        model.get(), dataset, splits.test_begin, test_end, eval_options);

    std::string top_ops = exec_context.profiler().TopKindsSummary(3);
    if (top_ops.empty()) top_ops = "-";  // non-trainable baselines
    // Testset time ÷ windows: the offline per-window latency the serving
    // path's serve-bench percentiles are compared against.
    const double ms_per_window =
        report.windows > 0
            ? report.inference_seconds * 1e3 / static_cast<double>(report.windows)
            : 0.0;

    // Compiled-plan counterpart of "Inference/window": the trained model
    // becomes a serving entry (which compiles its static plan on the first
    // bucket) and replays a capped slice of the same test windows; "-"
    // marks entries without a plan (e.g. host-computed baselines).
    const int64_t params = model->ParameterCount();
    std::string plan_cell = "-";
    {
      const int64_t batch = std::max<int64_t>(1, config.batch_size);
      const int64_t count = std::min<int64_t>(test_end - splits.test_begin,
                                              4 * batch);
      auto make_batch = [&](int64_t begin, int64_t k) {
        std::vector<int64_t> samples;
        for (int64_t j = 0; j < k; ++j) {
          samples.push_back(splits.test_begin + begin + j);
        }
        return dataset.MakeBatch(samples).x;
      };
      auto entry = std::make_shared<const tb::serve::LoadedModel>(
          std::move(model), dataset, name, profile.name);
      entry->Predict(make_batch(0, std::min(batch, count)));  // compile+warm
      if (entry->plans_active() && count > 0) {
        tb::Stopwatch watch;
        for (int64_t done = 0; done < count; done += batch) {
          entry->Predict(make_batch(done, std::min(batch, count - done)));
        }
        plan_cell = tb::Table::Num(
                        watch.ElapsedSeconds() * 1e3 /
                            static_cast<double>(count), 3) + " ms";
      }
    }

    table.AddRow({name, tb::Table::Num(train.seconds_per_epoch, 2) + " secs",
                  tb::Table::Num(report.inference_seconds, 2) + " secs",
                  tb::Table::Num(ms_per_window, 3) + " ms", plan_cell,
                  std::to_string(params / 1000) + "." +
                      std::to_string((params % 1000) / 100) + "k",
                  top_ops});
    const std::string pool = exec_context.PoolSummary();
    std::fprintf(stderr, "  done: %s%s%s\n", name.c_str(),
                 pool.empty() ? "" : " | ", pool.c_str());
  }
  tb::core::EmitTable("Computation time of the models (Table III)", table,
                      "table3_computation.csv");
  return 0;
}
