// trafficbench — command-line interface to the library.
//
//   trafficbench list
//   trafficbench simulate --dataset METR-LA-S --out-network net.csv
//                         --out-series series.csv
//   trafficbench train    --model Graph-WaveNet --dataset METR-LA-S
//                         [--epochs 3] [--batches 40] [--lr 5e-3]
//                         [--threads N] [--profile]
//                         [--validate] [--checkpoint model.ckpt]
//                         [--ckpt-every N] [--resume]
//   trafficbench evaluate --model Graph-WaveNet --dataset METR-LA-S
//                         --checkpoint model.ckpt [--difficult]
//                         [--threads N] [--profile]
//   trafficbench experiment --dataset METR-LA-S
//                         [--models A,B,C] [--ckpt-dir DIR] [--resume]
//   trafficbench scenario-matrix [--nodes N] [--train-days D]
//                         [--eval-days D] [--models A,B,C] [--seed S]
//                         [--threads K] [--csv F] [--summary-csv F]
//   trafficbench serve-bench --dataset METR-LA-S
//                         [--models A,B,C] [--requests N] [--rate R]
//                         [--trace uniform|burst|diurnal|flash]
//                         [--trace-seed S] [--admission] [--slo-ms X]
//                         [--cache-cap N] [--max-age-ms A]
//                         [--batch-max B] [--max-delay-ms D] [--workers W]
//                         [--threads K] [--queue-cap Q] [--checkpoint F]
//                         [--verify] [--precision fp32|bf16|int8] [--csv F]
//
// --threads N runs tensor kernels on N worker threads; results are
// bit-identical to --threads 1. --profile prints a per-op time/FLOP table.
//
// `experiment` runs a fault-tolerant multi-model sweep: a diverging model
// gets a FAILED row instead of killing the process, and with --ckpt-dir a
// killed sweep restarted with --resume finishes with bit-identical metrics
// (TB_CKPT_EVERY controls the checkpoint cadence, TB_FAULT injects
// deterministic faults; see DESIGN.md §9).
//
// Instead of --dataset, pass --network net.csv --series series.csv
// [--flow] to run on imported (e.g. real PeMS) data.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/core/experiment.h"
#include "src/data/dataset.h"
#include "src/serve/arrival.h"
#include "src/serve/model_registry.h"
#include "src/serve/server.h"
#include "src/data/io.h"
#include "src/eval/difficult_intervals.h"
#include "src/eval/trainer.h"
#include "src/exec/execution_context.h"
#include "src/models/traffic_model.h"
#include "src/nn/serialize.h"
#include "src/scenario/matrix.h"
#include "src/tensor/kernels.h"
#include "src/util/fault.h"
#include "src/util/table.h"

namespace tb = trafficbench;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  bool Has(const std::string& key) const { return options.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = options.find(key);
    return it != options.end() ? it->second : fallback;
  }
};

Args Parse(int argc, char** argv) {
  Args args;
  if (argc > 1) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    key = key.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.options[key] = argv[++i];
    } else {
      args.options[key] = "1";  // boolean flag
    }
  }
  return args;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: trafficbench <list|simulate|train|evaluate|experiment|"
      "scenario-matrix|serve-bench> [options]\n"
      "  list                         models and dataset profiles\n"
      "  simulate --dataset NAME --out-network F --out-series F\n"
      "  train    --model M (--dataset NAME | --network F --series F"
      " [--flow])\n"
      "           [--epochs N] [--batches N] [--batch N] [--lr X]\n"
      "           [--seed N] [--threads N] [--profile]\n"
      "           [--validate] [--checkpoint F] [--ckpt-every N]"
      " [--resume]\n"
      "  evaluate --model M (--dataset ... | --network/--series ...)\n"
      "           --checkpoint F [--difficult] [--threads N] [--profile]\n"
      "  experiment (--dataset ... | --network/--series ...)\n"
      "           [--models A,B,C] [--ckpt-dir DIR] [--resume]\n"
      "           (TB_EPOCHS/TB_REPEATS/TB_CKPT_EVERY/TB_FAULT/... "
      "tune the sweep)\n"
      "  scenario-matrix [--nodes N] [--train-days D] [--eval-days D]\n"
      "           [--models A,B,C] [--seed S] [--threads K]\n"
      "           [--csv F] [--summary-csv F]\n"
      "           (models x disruption scenarios robustness matrix on a\n"
      "            procedural capacity-routed city; TB_EPOCHS/TB_BATCHES/\n"
      "            TB_EVAL tune training fidelity, DESIGN.md §16)\n"
      "  serve-bench (--dataset ... | --network/--series ...)\n"
      "           [--models A,B,C] [--requests N] [--rate R/s]\n"
      "           [--trace uniform|burst|diurnal|flash] [--trace-seed S]\n"
      "           (deterministic arrival shapes; --rate is the mean)\n"
      "           [--admission] [--slo-ms X] [--cache-cap N]"
      " [--max-age-ms A]\n"
      "           (degradation ladder: degrade under overload instead of"
      " shedding)\n"
      "           [--batch-max B] [--max-delay-ms D] [--workers W]\n"
      "           [--threads K] [--queue-cap Q] [--checkpoint F]"
      " [--verify]\n"
      "           [--plan | --no-plan]  (default: both passes + speedup"
      " column)\n"
      "           [--precision fp32|bf16|int8]  (plan weight tier,"
      " DESIGN.md §13)\n"
      "           [--csv F]  (write the table as CSV to F; default: none)\n");
  return 2;
}

/// Execution context from --threads / --profile (threads default 1 keeps
/// the single-threaded behaviour).
tb::exec::ExecOptions ExecOptionsFromArgs(const Args& args) {
  tb::exec::ExecOptions options;
  options.threads = std::max(1, std::atoi(args.Get("threads", "1").c_str()));
  options.profile = args.Has("profile");
  return options;
}

void MaybePrintProfile(const tb::exec::ExecutionContext& context) {
  if (!context.profiling_enabled()) return;
  std::printf("\n-- op profile (%d thread%s) --\n%s",
              context.threads(), context.threads() == 1 ? "" : "s",
              context.ProfileTable().ToString().c_str());
}

std::optional<tb::data::TrafficDataset> OpenDataset(const Args& args) {
  if (args.Has("dataset")) {
    tb::Result<tb::data::DatasetProfile> profile =
        tb::data::ProfileByName(args.Get("dataset", ""));
    if (!profile.ok()) {
      std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
      return std::nullopt;
    }
    return tb::data::TrafficDataset::FromProfile(profile.value());
  }
  if (args.Has("network") && args.Has("series")) {
    const tb::data::FeatureKind kind = args.Has("flow")
                                           ? tb::data::FeatureKind::kFlow
                                           : tb::data::FeatureKind::kSpeed;
    tb::Result<tb::data::TrafficDataset> loaded = tb::data::LoadDatasetCsv(
        args.Get("network", ""), args.Get("series", ""), kind);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return std::nullopt;
    }
    return std::move(loaded).value();
  }
  std::fprintf(stderr,
               "need --dataset NAME or --network F --series F [--flow]\n");
  return std::nullopt;
}

int CmdList() {
  tb::models::RegisterBuiltinModels();
  std::printf("models:\n");
  for (const std::string& name :
       tb::models::ModelRegistry::Instance().Names()) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf("dataset profiles:\n");
  for (const auto& p : tb::data::SpeedProfiles()) {
    std::printf("  %-12s (speed, mirrors %s)\n", p.name.c_str(),
                p.mirrors.c_str());
  }
  for (const auto& p : tb::data::FlowProfiles()) {
    std::printf("  %-12s (flow,  mirrors %s)\n", p.name.c_str(),
                p.mirrors.c_str());
  }
  for (const auto& p : tb::data::CityScaleProfiles()) {
    std::printf("  %-12s (speed, %lld nodes, partitioned execution)\n",
                p.name.c_str(), static_cast<long long>(p.num_nodes));
  }
  return 0;
}

int CmdSimulate(const Args& args) {
  std::optional<tb::data::TrafficDataset> dataset = OpenDataset(args);
  if (!dataset) return 1;
  const std::string net_path = args.Get("out-network", "network.csv");
  const std::string series_path = args.Get("out-series", "series.csv");
  tb::Status status =
      tb::data::WriteNetworkCsv(dataset->network(), net_path);
  if (status.ok()) {
    status = tb::data::WriteSeriesCsv(dataset->series(), series_path);
  }
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%lld sensors) and %s (%lld steps)\n",
              net_path.c_str(),
              static_cast<long long>(dataset->num_nodes()),
              series_path.c_str(),
              static_cast<long long>(dataset->series().num_steps));
  return 0;
}

void PrintReport(const tb::eval::HorizonReport& report) {
  tb::Table table({"Horizon", "MAE", "RMSE", "MAPE%", "n"});
  auto row = [&](const char* label, const tb::eval::MetricValues& m) {
    table.AddRow({label, tb::Table::Num(m.mae, 3), tb::Table::Num(m.rmse, 3),
                  tb::Table::Num(m.mape, 2), std::to_string(m.count)});
  };
  row("15 min", report.horizon15);
  row("30 min", report.horizon30);
  row("60 min", report.horizon60);
  row("average", report.average);
  std::printf("%s", table.ToString().c_str());
}

int CmdTrain(const Args& args) {
  std::optional<tb::data::TrafficDataset> dataset = OpenDataset(args);
  if (!dataset) return 1;
  const std::string model_name = args.Get("model", "Graph-WaveNet");
  const uint64_t seed = std::strtoull(args.Get("seed", "2021").c_str(),
                                      nullptr, 10);
  auto model = tb::models::CreateModel(
      model_name, tb::models::MakeModelContext(*dataset, seed));
  std::printf("training %s (%lld parameters)\n", model_name.c_str(),
              static_cast<long long>(model->ParameterCount()));

  tb::eval::TrainConfig config;
  config.epochs = std::atoi(args.Get("epochs", "3").c_str());
  config.max_batches_per_epoch =
      std::atoll(args.Get("batches", "40").c_str());
  config.batch_size = std::atoll(args.Get("batch", "8").c_str());
  config.learning_rate = std::atof(args.Get("lr", "5e-3").c_str());
  config.select_best_on_validation = args.Has("validate");
  config.verbose = true;
  tb::exec::ExecutionContext exec_context(ExecOptionsFromArgs(args));
  config.exec = &exec_context;
  const std::string ckpt_path = args.Get("checkpoint", "");
  if (!ckpt_path.empty() && model->IsTrainable()) {
    // TrainModel owns the checkpoint: TBCKPT2 with optimizer/RNG state at
    // every --ckpt-every epoch boundary (and after the final epoch), so a
    // killed run can --resume bit-identically.
    config.checkpoint_path = ckpt_path;
    config.checkpoint_every =
        std::max(1, std::atoi(args.Get("ckpt-every", "1").c_str()));
    config.resume = args.Has("resume");
  }
  tb::eval::TrainResult result = TrainModel(model.get(), *dataset, config);
  if (!result.status.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 result.status.ToString().c_str());
    return 1;
  }
  if (result.start_epoch > 0) {
    std::printf("resumed from epoch %d\n", result.start_epoch);
  }
  if (result.rollbacks > 0) {
    std::printf("guarded loop: %lld non-finite batches, %d rollbacks\n",
                static_cast<long long>(result.nonfinite_batches),
                result.rollbacks);
  }
  if (config.select_best_on_validation) {
    std::printf("kept epoch %d (val masked-MAE %.4f)\n", result.best_epoch + 1,
                result.best_epoch >= 0
                    ? result.val_losses[result.best_epoch]
                    : 0.0);
  }

  const tb::data::DatasetSplits splits = dataset->Splits();
  tb::eval::EvalOptions eval_options;
  eval_options.exec = &exec_context;
  PrintReport(tb::eval::EvaluateModel(model.get(), *dataset,
                                      splits.test_begin, splits.test_end,
                                      eval_options));
  MaybePrintProfile(exec_context);

  if (!ckpt_path.empty()) {
    if (!model->IsTrainable()) {
      // Non-trainable baselines have no training state; a plain TBCKPT1
      // parameter checkpoint is all there is to save.
      tb::Status status = tb::nn::SaveCheckpoint(*model, ckpt_path);
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return 1;
      }
    }
    std::printf("checkpoint saved to %s\n", ckpt_path.c_str());
  }
  return 0;
}

int CmdEvaluate(const Args& args) {
  std::optional<tb::data::TrafficDataset> dataset = OpenDataset(args);
  if (!dataset) return 1;
  const std::string model_name = args.Get("model", "Graph-WaveNet");
  const uint64_t seed = std::strtoull(args.Get("seed", "2021").c_str(),
                                      nullptr, 10);
  auto model = tb::models::CreateModel(
      model_name, tb::models::MakeModelContext(*dataset, seed));
  model->Fit(*dataset);  // no-op for trainable models
  if (args.Has("checkpoint")) {
    tb::Status status =
        tb::nn::LoadCheckpoint(model.get(), args.Get("checkpoint", ""));
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  const tb::data::DatasetSplits splits = dataset->Splits();
  tb::exec::ExecutionContext exec_context(ExecOptionsFromArgs(args));
  tb::eval::EvalOptions options;
  options.exec = &exec_context;
  std::vector<uint8_t> mask;
  if (args.Has("difficult")) {
    mask = tb::eval::DifficultMask(dataset->series(), {});
    options.difficult_mask = &mask;
    std::printf("difficult intervals only (%.1f%% of positions)\n",
                100.0 * tb::eval::MaskFraction(mask));
  }
  PrintReport(tb::eval::EvaluateModel(model.get(), *dataset,
                                      splits.test_begin, splits.test_end,
                                      options));
  MaybePrintProfile(exec_context);
  return 0;
}

std::vector<std::string> SplitCommaList(const std::string& text) {
  std::vector<std::string> out;
  std::string item;
  for (char c : text) {
    if (c == ',') {
      if (!item.empty()) out.push_back(item);
      item.clear();
    } else {
      item += c;
    }
  }
  if (!item.empty()) out.push_back(item);
  return out;
}

int CmdExperiment(const Args& args) {
  std::optional<tb::data::TrafficDataset> dataset = OpenDataset(args);
  if (!dataset) return 1;
  tb::core::ExperimentConfig config = tb::core::ExperimentConfig::FromEnv();
  if (args.Has("threads")) {
    config.threads = std::max(1, std::atoi(args.Get("threads", "1").c_str()));
  }
  tb::core::SweepOptions options;
  options.model_names = SplitCommaList(args.Get("models", ""));
  options.checkpoint_dir = args.Get("ckpt-dir", "");
  options.resume = args.Has("resume");
  if (options.resume && options.checkpoint_dir.empty()) {
    std::fprintf(stderr, "--resume needs --ckpt-dir DIR\n");
    return 2;
  }

  const std::string dataset_name = args.Get("dataset", "imported");
  const std::vector<tb::core::RunResult> results =
      tb::core::RunExperiment(*dataset, dataset_name, config, options);
  tb::core::EmitTable("Fault-tolerant sweep (" + dataset_name + ")",
                      tb::core::SummarizeSweep(results),
                      "experiment_summary.csv");
  int failed = 0;
  for (const tb::core::RunResult& result : results) {
    if (!result.status.ok()) ++failed;
  }
  if (failed > 0) {
    std::fprintf(stderr, "%d of %zu models failed (see FAILED rows)\n",
                 failed, results.size());
  }
  return 0;
}

// The models x scenarios robustness matrix (DESIGN.md §16): trains every
// requested model on an undisturbed capacity-routed world and scores it on
// each scripted disruption class, reporting overall and difficult-interval
// metrics per cell plus the per-model degradation ranking.
int CmdScenarioMatrix(const Args& args) {
  tb::scenario::MatrixOptions options;
  options.config = tb::core::ExperimentConfig::FromEnv();
  options.num_nodes =
      std::max<int64_t>(8, std::atoll(args.Get("nodes", "48").c_str()));
  options.train_days =
      std::max<int64_t>(1, std::atoll(args.Get("train-days", "6").c_str()));
  options.eval_days =
      std::max<int64_t>(1, std::atoll(args.Get("eval-days", "2").c_str()));
  options.model_names = SplitCommaList(args.Get("models", ""));
  if (args.Has("seed")) {
    options.config.seed =
        std::strtoull(args.Get("seed", "2021").c_str(), nullptr, 10);
  }
  if (args.Has("threads")) {
    options.config.threads =
        std::max(1, std::atoi(args.Get("threads", "1").c_str()));
  }

  std::printf(
      "scenario-matrix: %lld-node grid+arterial world, %lld train days, "
      "%lld eval days/scenario, seed %llu, %d epochs\n",
      static_cast<long long>(options.num_nodes),
      static_cast<long long>(options.train_days),
      static_cast<long long>(options.eval_days),
      static_cast<unsigned long long>(options.config.seed),
      options.config.epochs);

  const tb::scenario::ScenarioMatrixResult result =
      tb::scenario::RunScenarioMatrix(options);
  for (const tb::scenario::ScenarioSummary& s : result.scenarios) {
    std::printf(
        "scenario %-10s %2lld events, %.1f%% difficult positions%s%s\n",
        s.name.c_str(), static_cast<long long>(s.events),
        100.0 * s.difficult_fraction,
        s.masked_entries > 0
            ? (", " + std::to_string(s.masked_entries) + " blacked out")
                  .c_str()
            : "",
        s.fault_recomputes > 0
            ? (", " + std::to_string(s.fault_recomputes) + " route recomputes")
                  .c_str()
            : "");
  }
  tb::core::EmitTable("Models x scenarios robustness matrix",
                      tb::scenario::MatrixToTable(result),
                      args.Get("csv", "scenario_matrix.csv"));
  tb::core::EmitTable("Scenario-induced MAE degradation (x baseline)",
                      tb::scenario::DegradationSummary(result),
                      args.Get("summary-csv", "scenario_degradation.csv"));
  if (!result.failed_models.empty()) {
    for (const std::string& failure : result.failed_models) {
      std::fprintf(stderr, "FAILED %s\n", failure.c_str());
    }
    return 1;
  }
  return 0;
}

// Deployment-shaped counterpart of Table III: replays held-out test windows
// through the serving subsystem (registry -> bounded queue -> dynamic
// micro-batcher -> workers) at a configurable open-loop arrival rate and
// reports per-model latency SLO percentiles and throughput.
//
// By default every model is replayed twice — once served from compiled
// inference plans and once from the eager autograd forward — and the table
// reports both throughputs plus their ratio. --plan / --no-plan restrict
// the run to a single pass.
int CmdServeBench(const Args& args) {
  std::optional<tb::data::TrafficDataset> dataset = OpenDataset(args);
  if (!dataset) return 1;
  const std::string dataset_name = args.Get("dataset", "imported");
  const uint64_t seed =
      std::strtoull(args.Get("seed", "2021").c_str(), nullptr, 10);

  // --models A,B,C like `experiment`; --model X like `train`/`evaluate`.
  std::vector<std::string> model_names =
      SplitCommaList(args.Get("models", args.Get("model", "")));
  if (model_names.empty()) model_names = tb::models::PaperModelNames();
  const std::string checkpoint = args.Get("checkpoint", "");
  if (!checkpoint.empty() && model_names.size() != 1) {
    std::fprintf(stderr, "--checkpoint needs a single --models entry\n");
    return 2;
  }

  const int64_t requests = std::max<int64_t>(
      1, std::atoll(args.Get("requests", "64").c_str()));
  const double rate = std::atof(args.Get("rate", "0").c_str());
  tb::serve::ServerOptions server_options;
  server_options.workers =
      std::max(1, std::atoi(args.Get("workers", "1").c_str()));
  server_options.threads_per_worker =
      std::max(1, std::atoi(args.Get("threads", "1").c_str()));
  server_options.batch.max_batch_size =
      std::max<int64_t>(1, std::atoll(args.Get("batch-max", "8").c_str()));
  server_options.batch.max_queue_delay_ms =
      std::atof(args.Get("max-delay-ms", "2").c_str());
  server_options.queue_capacity =
      std::max<int64_t>(1, std::atoll(args.Get("queue-cap", "256").c_str()));
  server_options.batch.max_lane_age_ms =
      std::atof(args.Get("max-age-ms", "0").c_str());
  tb::serve::TraceKind trace = tb::serve::TraceKind::kUniform;
  if (!tb::serve::ParseTraceKind(args.Get("trace", "uniform"), &trace)) {
    std::fprintf(stderr, "--trace must be uniform, burst, diurnal or flash\n");
    return 2;
  }
  const uint64_t trace_seed =
      std::strtoull(args.Get("trace-seed", "2021").c_str(), nullptr, 10);
  const bool admission = args.Has("admission");
  server_options.admission.enabled = admission;
  server_options.admission.slo_ms = std::atof(args.Get("slo-ms", "50").c_str());
  // The response cache (ladder tier 1) defaults on with admission, off
  // without — matching the server's seed behaviour for plain benches.
  server_options.cache_capacity = std::atoll(
      args.Get("cache-cap", admission ? "1024" : "0").c_str());
  const bool verify = args.Has("verify");
  if (args.Has("plan") && args.Has("no-plan")) {
    std::fprintf(stderr, "--plan and --no-plan are mutually exclusive\n");
    return 2;
  }
  const bool run_plan = !args.Has("no-plan");
  const bool run_eager = !args.Has("plan");
  tb::plan::Precision precision = tb::plan::Precision::kFp32;
  if (!tb::kernels::ParsePrecision(args.Get("precision", "fp32"),
                                   &precision)) {
    std::fprintf(stderr, "--precision must be fp32, bf16 or int8\n");
    return 2;
  }
  const std::string csv_path = args.Get("csv", "");

  const tb::data::DatasetSplits splits = dataset->Splits();
  const int64_t test_count = splits.test_end - splits.test_begin;
  if (test_count <= 0) {
    std::fprintf(stderr, "dataset has no test windows\n");
    return 1;
  }

  std::printf(
      "serve-bench: %s | %lld requests/model, rate %s (%s trace), "
      "batch-max %lld, "
      "max-delay %.2f ms, %d worker(s) x %d thread(s), queue cap %lld, "
      "pass: %s, precision: %s%s\n",
      dataset_name.c_str(), static_cast<long long>(requests),
      rate > 0 ? (tb::Table::Num(rate, 1) + "/s").c_str() : "unthrottled",
      tb::serve::TraceKindName(trace),
      static_cast<long long>(server_options.batch.max_batch_size),
      server_options.batch.max_queue_delay_ms, server_options.workers,
      server_options.threads_per_worker,
      static_cast<long long>(server_options.queue_capacity),
      run_plan && run_eager ? "plan+autograd" : (run_plan ? "plan" : "autograd"),
      tb::kernels::PrecisionName(precision),
      admission ? ", admission ladder ON" : "");

  tb::serve::ModelRegistry registry;
  // Tier 2 of the degradation ladder answers from the registry's
  // training-free fallback; make sure one is loaded when the ladder is on.
  if (admission) {
    tb::serve::ModelSpec fallback_spec;
    fallback_spec.model_name = "HistoricalAverage";
    fallback_spec.dataset_name = dataset_name;
    fallback_spec.dataset = &*dataset;
    fallback_spec.seed = seed;
    tb::Status loaded = registry.Load(fallback_spec);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.ToString().c_str());
      return 1;
    }
  }
  tb::Table table({"Model", "precision", "ok", "t0/t1/t2", "shed", "p50 ms",
                   "p95 ms", "p99 ms", "max ms", "windows/s", "auto w/s",
                   "speedup", "mean batch", "queue depth"});
  bool verify_failed = false;
  for (const std::string& name : model_names) {
    tb::serve::ModelSpec spec;
    spec.model_name = name;
    spec.dataset_name = dataset_name;
    spec.dataset = &*dataset;
    spec.checkpoint_path = checkpoint;
    spec.seed = seed;
    spec.precision = precision;
    tb::Status loaded = registry.Load(spec);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.ToString().c_str());
      return 1;
    }
    tb::serve::LoadedModelPtr entry = registry.Find(name, dataset_name);
    if (run_plan) {
      // Warm every micro-batch bucket the batcher can form so plan
      // compilation is billed to model load, not to the timed replay.
      for (int64_t b = 1; b <= server_options.batch.max_batch_size; b *= 2) {
        std::vector<int64_t> samples;
        for (int64_t j = 0; j < b; ++j) {
          samples.push_back(splits.test_begin + (j % test_count));
        }
        entry->Predict(dataset->MakeBatch(samples).x);
      }
    }

    // The tier actually served after the lazy compile + verification walked
    // the downgrade ladder ("eager" when plans are off for this entry).
    const bool plans_on = run_plan && entry->plans_active();
    const std::string served_tier =
        plans_on ? tb::kernels::PrecisionName(entry->plan_precision())
                 : "eager";
    const bool reduced =
        plans_on && entry->plan_precision() != tb::plan::Precision::kFp32;
    double verify_max_abs = 0.0, verify_max_rel = 0.0;
    double verify_abs_sum = 0.0;
    int64_t verify_elems = 0, verify_windows = 0;

    struct PassStats {
      tb::serve::LatencySummary summary;
      int64_t ok = 0, shed = 0, failed = 0;
      std::string recorder_table;
    };
    // One full open-loop replay of the request stream against a fresh
    // server in the given execution mode.
    auto run_pass = [&](bool use_plan) -> PassStats {
      tb::serve::ServerOptions pass_options = server_options;
      pass_options.use_plan = use_plan;
      tb::serve::Server server(&registry, pass_options);
      server.Start();
      // Arrival schedule: precomputed, deterministic, shaped by --trace
      // (uniform reproduces the old fixed-rate pacing bit for bit).
      std::vector<double> arrivals;
      if (rate > 0) {
        arrivals = tb::serve::ArrivalTimes(trace, rate, requests, trace_seed);
      }
      const auto t0 = std::chrono::steady_clock::now();
      std::vector<std::future<tb::serve::PredictResponse>> futures;
      std::vector<int64_t> sample_of;
      futures.reserve(requests);
      for (int64_t i = 0; i < requests; ++i) {
        if (rate > 0) {
          std::this_thread::sleep_until(
              t0 + std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(arrivals[i])));
        }
        const int64_t sample = splits.test_begin + (i % test_count);
        tb::serve::PredictRequest request;
        request.model_name = name;
        request.dataset_name = dataset_name;
        request.window =
            dataset->MakeBatch({sample}).x;  // [1, T_in, N, 2] accepted
        futures.push_back(server.Submit(std::move(request)));
        sample_of.push_back(sample);
      }

      PassStats stats;
      std::vector<std::pair<int64_t, tb::Tensor>> to_verify;
      for (size_t i = 0; i < futures.size(); ++i) {
        tb::serve::PredictResponse response = futures[i].get();
        if (response.status.ok()) {
          ++stats.ok;
          // Only tier-0 responses carry the full model's prediction; the
          // bitwise spot check below is a statement about that path (and
          // must hold even while the ladder degrades other requests).
          if (verify && response.tier == 0 && to_verify.size() < 4) {
            to_verify.emplace_back(sample_of[i], response.prediction);
          }
        } else if (response.status.code() ==
                   tb::StatusCode::kResourceExhausted) {
          ++stats.shed;
        } else {
          ++stats.failed;
          std::fprintf(stderr, "%s: %s\n", name.c_str(),
                       response.status.ToString().c_str());
        }
      }
      server.Stop();
      stats.summary = server.recorder().Summary();
      stats.recorder_table = server.recorder().ToTable().ToString();
      // Spot check, deliberately after Stop() and Summary(): the direct
      // runs must not steal CPU from (or serialize against) the measured
      // replay. fp32 tier: the served predictions must equal a batch-of-1
      // run of the same window through both the compiled plan and the
      // eager reference forward, byte for byte. Reduced tier: the served
      // output is still bitwise against this pass's execution path (plan
      // determinism), but against the fp32 eager forward it is only
      // epsilon-close — report the max abs/rel error instead of asserting.
      for (const auto& [sample, prediction] : to_verify) {
        const tb::Tensor window = dataset->MakeBatch({sample}).x;
        const std::vector<float> served = prediction.ToVector();
        const std::vector<float> plan = entry->Predict(window).ToVector();
        const std::vector<float> eager =
            entry->PredictReference(window).ToVector();
        if (served.size() != plan.size() || plan.size() != eager.size()) {
          std::fprintf(stderr, "verify FAILED: %s window %lld shape\n",
                       name.c_str(), static_cast<long long>(sample));
          verify_failed = true;
          continue;
        }
        const std::vector<float>& expect_bits = use_plan ? plan : eager;
        if (std::memcmp(served.data(), expect_bits.data(),
                        served.size() * sizeof(float)) != 0 ||
            (!reduced &&
             std::memcmp(plan.data(), eager.data(),
                         plan.size() * sizeof(float)) != 0)) {
          std::fprintf(stderr,
                       "verify FAILED: %s window %lld differs across "
                       "served/plan/eager\n",
                       name.c_str(), static_cast<long long>(sample));
          verify_failed = true;
        }
        if (reduced) {
          for (size_t j = 0; j < plan.size(); ++j) {
            const double abs_err =
                std::fabs(static_cast<double>(plan[j]) - eager[j]);
            verify_max_abs = std::max(verify_max_abs, abs_err);
            verify_max_rel = std::max(
                verify_max_rel,
                abs_err / std::max(1e-6, std::fabs(
                                             static_cast<double>(eager[j]))));
            verify_abs_sum += abs_err;
          }
          verify_elems += static_cast<int64_t>(plan.size());
          ++verify_windows;
        }
      }
      return stats;
    };

    // Autograd first so the plan pass reuses every warmed cache.
    PassStats eager_stats, plan_stats;
    if (run_eager) eager_stats = run_pass(false);
    if (run_plan) plan_stats = run_pass(true);
    const PassStats& primary = run_plan ? plan_stats : eager_stats;
    const bool both = run_plan && run_eager;
    const tb::serve::LatencySummary& s = primary.summary;
    table.AddRow({name, served_tier, std::to_string(primary.ok),
                  std::to_string(s.tier0) + "/" + std::to_string(s.tier1) +
                      "/" + std::to_string(s.tier2),
                  std::to_string(primary.shed),
                  tb::Table::Num(s.request_p50 * 1e3, 3),
                  tb::Table::Num(s.request_p95 * 1e3, 3),
                  tb::Table::Num(s.request_p99 * 1e3, 3),
                  tb::Table::Num(s.request_max * 1e3, 3),
                  tb::Table::Num(s.throughput, 1),
                  both ? tb::Table::Num(eager_stats.summary.throughput, 1)
                       : "-",
                  both && eager_stats.summary.throughput > 0
                      ? tb::Table::Num(s.throughput /
                                           eager_stats.summary.throughput,
                                       2) + "x"
                      : "-",
                  tb::Table::Num(s.mean_batch_size, 2),
                  tb::Table::Num(s.mean_queue_depth, 2)});
    if (primary.failed > 0 || (both && eager_stats.failed > 0)) return 1;
    if (verify && reduced && verify_windows > 0) {
      std::printf(
          "verify[%s]: %s max abs %.3e, max rel %.3e, mae delta %.3e "
          "vs fp32 eager (%lld windows)\n",
          served_tier.c_str(), name.c_str(), verify_max_abs, verify_max_rel,
          verify_abs_sum / static_cast<double>(std::max<int64_t>(
                               1, verify_elems)),
          static_cast<long long>(verify_windows));
    }
    if (model_names.size() == 1) {
      std::printf("\n%s", primary.recorder_table.c_str());
    }
  }
  tb::core::EmitTable("Serving latency/throughput (" + dataset_name + ")",
                      table, csv_path);
  if (verify) {
    std::printf("verify: %s\n", verify_failed ? "FAILED" : "OK");
  }
  return verify_failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) try {
  Args args = Parse(argc, argv);
  if (args.command == "list") return CmdList();
  if (args.command == "simulate") return CmdSimulate(args);
  if (args.command == "train") return CmdTrain(args);
  if (args.command == "evaluate") return CmdEvaluate(args);
  if (args.command == "experiment") return CmdExperiment(args);
  if (args.command == "scenario-matrix") return CmdScenarioMatrix(args);
  if (args.command == "serve-bench") return CmdServeBench(args);
  return Usage();
} catch (const tb::SimulatedCrash& crash) {
  // The fault injector's stand-in for SIGKILL: die loudly, leaving only
  // the on-disk checkpoints behind, exactly like a real kill would.
  std::fprintf(stderr, "simulated crash at %s\n", crash.where.c_str());
  return 3;
}
